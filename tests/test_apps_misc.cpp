// IIR, eigen, and SVM kernels on a clean FPU.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "apps/configs.h"
#include "apps/eigen_app.h"
#include "apps/iir_app.h"
#include "apps/svm_app.h"
#include "core/fault_env.h"
#include "core/variants.h"
#include "linalg/random.h"
#include "signal/metrics.h"
#include "signal/signals.h"

namespace {

using namespace robustify;

TEST(Iir, StableFilterProducesBoundedOutput) {
  const signal::IirCoefficients coeffs = signal::MakeStableIir(5, 5, 63);
  EXPECT_EQ(coeffs.b.size(), 5u);
  EXPECT_EQ(coeffs.a.size(), 5u);
  const auto input = signal::SineMix(500, {3.0, 17.0}, {1.0, 0.5});
  const auto y = apps::BaselineIir<double>(coeffs, input);
  for (std::size_t t = 0; t < y.size(); ++t) {
    ASSERT_TRUE(std::isfinite(y[t]));
    ASSERT_LT(std::abs(y[t]), 100.0);
  }
}

TEST(RateZero, RobustIirMatchesRecursion) {
  const signal::IirCoefficients coeffs = signal::MakeStableIir(5, 5, 63);
  const auto input = signal::SineMix(200, {3.0}, {1.0});
  const auto clean = apps::BaselineIir<double>(coeffs, input);
  core::FaultEnvironment env;
  const auto y = core::WithFaultyFpu(
      env, [&] { return apps::RobustIir<faulty::Real>(coeffs, input, apps::IirSgdLs()); });
  EXPECT_LT(signal::ErrorToSignalRatio(y, clean), 1e-6);
}

TEST(Eigen, JacobiAndRayleighAgreeOnCleanFpu) {
  std::mt19937_64 rng(72);
  const auto a = linalg::RandomSymmetricMatrix(8, rng);
  const auto oracle = apps::JacobiEigenSym(a);
  ASSERT_EQ(oracle.size(), 8u);
  for (std::size_t k = 0; k + 1 < oracle.size(); ++k) {
    EXPECT_GE(oracle[k].value, oracle[k + 1].value);  // sorted descending
  }
  core::FaultEnvironment env;
  apps::RayleighOptions options;
  options.iterations = 400;
  const auto pairs = core::WithFaultyFpu(
      env, [&] { return apps::TopEigenpairsRayleigh<faulty::Real>(a, 3, options); });
  ASSERT_EQ(pairs.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(pairs[k].value, oracle[k].value,
                0.02 * std::max(1.0, std::abs(oracle[k].value)))
        << "pair " << k;
  }
}

TEST(Svm, SeparableBlobsReachHighTrainAccuracy) {
  const apps::SvmDataset data = apps::MakeBlobsDataset(40, 6, 4.0, 11);
  EXPECT_EQ(data.x.rows(), 80u);
  core::FaultEnvironment env;
  const apps::SvmResult r = core::WithFaultyFpu(env, [&] {
    return apps::TrainSvm<faulty::Real>(
        data, 0.01, core::MakeSgd(300, 1.0, opt::StepScaling::kSqrt));
  });
  EXPECT_GE(r.train_accuracy, 0.95);
}

}  // namespace
