// Harness: trials, sweeps, table extraction, CSV writing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/csv.h"
#include "harness/sweep.h"
#include "harness/table.h"
#include "harness/trial.h"

namespace {

using namespace robustify;

harness::TrialFn FailAboveRate(double cutoff) {
  return [cutoff](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    out.success = env.fault_rate <= cutoff;
    out.metric = env.fault_rate;
    return out;
  };
}

TEST(RunTrials, CountsSuccessesAndVariesSeeds) {
  std::vector<std::uint64_t> seeds;
  const harness::TrialFn fn = [&seeds](const core::FaultEnvironment& env) {
    seeds.push_back(env.seed);
    harness::TrialOutcome out;
    out.success = env.seed % 2 == 0;
    out.metric = static_cast<double>(env.seed);
    return out;
  };
  core::FaultEnvironment env;
  env.seed = 10;
  const harness::TrialSummary s = harness::RunTrials(fn, env, 4);
  EXPECT_EQ(s.trials, 4);
  EXPECT_EQ(s.successes, 2);
  EXPECT_DOUBLE_EQ(s.success_rate_pct, 50.0);
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{10, 11, 12, 13}));
}

TEST(RunTrials, NonFiniteMetricsCountAsInfinityInMedian) {
  int call = 0;
  const harness::TrialFn fn = [&call](const core::FaultEnvironment&) {
    harness::TrialOutcome out;
    out.metric = (call++ % 2 == 0) ? std::nan("") : 1.0;
    return out;
  };
  core::FaultEnvironment env;
  const harness::TrialSummary s = harness::RunTrials(fn, env, 4);
  EXPECT_TRUE(std::isinf(s.median_metric));  // upper median of {1, 1, inf, inf}
  EXPECT_DOUBLE_EQ(s.mean_metric, 1.0);      // mean over finite metrics
}

TEST(Sweep, RunsEverySeriesAtEveryRate) {
  harness::SweepConfig config;
  config.fault_rates = {0.0, 0.1, 0.2};
  config.trials = 3;
  config.base_seed = 1;
  const auto series = harness::RunFaultRateSweep(
      config, {{"lenient", FailAboveRate(0.15)}, {"strict", FailAboveRate(0.05)}});
  ASSERT_EQ(series.size(), 2u);
  ASSERT_EQ(series[0].points.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].points[1].summary.success_rate_pct, 100.0);
  EXPECT_DOUBLE_EQ(series[1].points[1].summary.success_rate_pct, 0.0);
}

TEST(Table, PrintsOneRowPerRateAndOneColumnPerSeries) {
  harness::SweepConfig config;
  config.fault_rates = {0.0, 0.5};
  config.trials = 2;
  const auto series =
      harness::RunFaultRateSweep(config, {{"SGD+AS,LS", FailAboveRate(0.25)}});
  std::ostringstream os;
  harness::PrintSweepTable(os, "title", series, harness::TableValue::kSuccessRatePct,
                           "success (%)");
  const std::string text = os.str();
  EXPECT_NE(text.find("SGD+AS,LS"), std::string::npos);
  EXPECT_NE(text.find("fault_rate"), std::string::npos);
  EXPECT_NE(text.find("100.0"), std::string::npos);
  EXPECT_NE(text.find("0.5"), std::string::npos);
}

TEST(Csv, WritesQuotedHeadersAndThrowsOnBadPath) {
  harness::SweepConfig config;
  config.fault_rates = {0.0};
  config.trials = 1;
  const auto series =
      harness::RunFaultRateSweep(config, {{"SGD+AS,LS", FailAboveRate(1.0)}});
  const std::string path = ::testing::TempDir() + "/robustify_test_sweep.csv";
  harness::WriteSweepCsv(path, series);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("\"SGD+AS,LS success_pct\""), std::string::npos);
  std::remove(path.c_str());

  EXPECT_THROW(harness::WriteSweepCsv("/nonexistent_dir_zzz/x.csv", series),
               std::runtime_error);
}

}  // namespace
