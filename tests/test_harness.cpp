// Harness: trials, sweeps, table extraction, CSV writing, and the
// golden-CSV determinism guarantees (thread-count and injector-strategy
// invariance of sweep output).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "apps/configs.h"
#include "apps/sort_app.h"
#include "core/fault_env.h"
#include "harness/csv.h"
#include "harness/sweep.h"
#include "harness/table.h"
#include "harness/trial.h"

namespace {

using namespace robustify;

harness::TrialFn FailAboveRate(double cutoff) {
  return [cutoff](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    out.success = env.fault_rate <= cutoff;
    out.metric = env.fault_rate;
    return out;
  };
}

TEST(RunTrials, CountsSuccessesAndVariesSeeds) {
  std::vector<std::uint64_t> seeds;
  const harness::TrialFn fn = [&seeds](const core::FaultEnvironment& env) {
    seeds.push_back(env.seed);
    harness::TrialOutcome out;
    out.success = env.seed % 2 == 0;
    out.metric = static_cast<double>(env.seed);
    return out;
  };
  core::FaultEnvironment env;
  env.seed = 10;
  const harness::TrialSummary s = harness::RunTrials(fn, env, 4);
  EXPECT_EQ(s.trials, 4);
  EXPECT_EQ(s.successes, 2);
  EXPECT_DOUBLE_EQ(s.success_rate_pct, 50.0);
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{10, 11, 12, 13}));
}

TEST(RunTrials, NonFiniteMetricsCountAsInfinityInMedian) {
  int call = 0;
  const harness::TrialFn fn = [&call](const core::FaultEnvironment&) {
    harness::TrialOutcome out;
    out.metric = (call++ % 2 == 0) ? std::nan("") : 1.0;
    return out;
  };
  core::FaultEnvironment env;
  const harness::TrialSummary s = harness::RunTrials(fn, env, 4);
  EXPECT_TRUE(std::isinf(s.median_metric));  // upper median of {1, 1, inf, inf}
  EXPECT_DOUBLE_EQ(s.mean_metric, 1.0);      // mean over finite metrics
}

TEST(Sweep, RunsEverySeriesAtEveryRate) {
  harness::SweepConfig config;
  config.fault_rates = {0.0, 0.1, 0.2};
  config.trials = 3;
  config.base_seed = 1;
  const auto series = harness::RunFaultRateSweep(
      config, {{"lenient", FailAboveRate(0.15)}, {"strict", FailAboveRate(0.05)}});
  ASSERT_EQ(series.size(), 2u);
  ASSERT_EQ(series[0].points.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].points[1].summary.success_rate_pct, 100.0);
  EXPECT_DOUBLE_EQ(series[1].points[1].summary.success_rate_pct, 0.0);
}

TEST(Table, PrintsOneRowPerRateAndOneColumnPerSeries) {
  harness::SweepConfig config;
  config.fault_rates = {0.0, 0.5};
  config.trials = 2;
  const auto series =
      harness::RunFaultRateSweep(config, {{"SGD+AS,LS", FailAboveRate(0.25)}});
  std::ostringstream os;
  harness::PrintSweepTable(os, "title", series, harness::TableValue::kSuccessRatePct,
                           "success (%)");
  const std::string text = os.str();
  EXPECT_NE(text.find("SGD+AS,LS"), std::string::npos);
  EXPECT_NE(text.find("fault_rate"), std::string::npos);
  EXPECT_NE(text.find("100.0"), std::string::npos);
  EXPECT_NE(text.find("0.5"), std::string::npos);
}

TEST(Csv, WritesQuotedHeadersAndThrowsOnBadPath) {
  harness::SweepConfig config;
  config.fault_rates = {0.0};
  config.trials = 1;
  const auto series =
      harness::RunFaultRateSweep(config, {{"SGD+AS,LS", FailAboveRate(1.0)}});
  const std::string path = ::testing::TempDir() + "/robustify_test_sweep.csv";
  harness::WriteSweepCsv(path, series);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("\"SGD+AS,LS success_pct\""), std::string::npos);
  std::remove(path.c_str());

  EXPECT_THROW(harness::WriteSweepCsv("/nonexistent_dir_zzz/x.csv", series),
               std::runtime_error);
}

// --- golden-CSV determinism -------------------------------------------------

// A real kernel under real fault injection, pinned to one injector
// strategy: robust sort on a seed-derived 4-element input.
harness::TrialFn SortTrial(faulty::FaultInjector::Strategy strategy) {
  return [strategy](const core::FaultEnvironment& base) {
    core::FaultEnvironment env = base;
    env.strategy = strategy;
    std::mt19937_64 rng(env.seed * 7919);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    std::vector<double> input(4);
    for (double& v : input) v = dist(rng);
    apps::LpSolveConfig config = apps::SortSgdAsSqs();
    config.sgd.iterations = 150;  // full descent shape, test-sized budget
    harness::TrialOutcome out;
    const apps::RobustSortResult r = core::WithFaultyFpu(
        env, [&] { return apps::RobustSort<faulty::Real>(input, config); },
        &out.fpu_stats);
    out.success = r.valid && apps::IsSortedCopyOf(r.output, input);
    out.metric = static_cast<double>(out.fpu_stats.faults_injected);
    return out;
  };
}

std::string SweepCsvBytes(const harness::SweepConfig& config,
                          const std::vector<harness::NamedTrial>& trials,
                          const std::string& tag) {
  const auto series = harness::RunFaultRateSweep(config, trials);
  const std::string path = ::testing::TempDir() + "/robustify_golden_" + tag + ".csv";
  harness::WriteSweepCsv(path, series);
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

// The sweep contract: output is a pure function of (config, trial fns) —
// never of the worker count.  Byte-identical CSVs for 1, 2, and 8 threads,
// at rate 0 and under heavy fault injection alike.
TEST(Sweep, GoldenCsvByteIdenticalAcrossThreadCounts) {
  using Strategy = faulty::FaultInjector::Strategy;
  harness::SweepConfig config;
  config.fault_rates = {0.0, 0.05};
  config.trials = 4;
  config.base_seed = 33;
  const std::vector<harness::NamedTrial> trials = {
      {"SGD+AS,SQS", SortTrial(Strategy::kAuto)}};

  config.threads = 1;
  const std::string one = SweepCsvBytes(config, trials, "t1");
  config.threads = 2;
  const std::string two = SweepCsvBytes(config, trials, "t2");
  config.threads = 8;
  const std::string eight = SweepCsvBytes(config, trials, "t8");

  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

// At rate 0 no strategy ever samples a gap or flips a bit, so the injector
// implementation must be invisible: skip-ahead and the per-op oracle have
// to produce byte-identical sweep output.
TEST(Sweep, GoldenCsvByteIdenticalAcrossStrategiesAtRateZero) {
  using Strategy = faulty::FaultInjector::Strategy;
  harness::SweepConfig config;
  config.fault_rates = {0.0};
  config.trials = 3;
  config.base_seed = 44;
  config.threads = 1;

  const std::string skip = SweepCsvBytes(
      config, {{"SGD+AS,SQS", SortTrial(Strategy::kSkipAhead)}}, "skip");
  const std::string perop = SweepCsvBytes(
      config, {{"SGD+AS,SQS", SortTrial(Strategy::kPerOp)}}, "perop");

  EXPECT_FALSE(skip.empty());
  EXPECT_EQ(skip, perop);
}

}  // namespace
