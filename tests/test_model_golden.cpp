// Regression lock for the default fault model (transient single-bit,
// arithmetic + comparison op classes): the fault-model axis added for richer
// models must leave the historical behavior untouched.  These tests compare
// sweep and campaign CSV bytes, and a digest of the raw injector fault
// stream, against goldens captured from the pre-fault-model binaries —
// under both injector strategies and both kernel engines, across thread
// counts.
//
// Regenerating (only when the default stream is *intentionally* changed):
//   ROBUSTIFY_REGEN_GOLDEN=1 ./robustify_tests --gtest_filter='ModelGolden.*'
// rewrites the files under tests/golden/ in the source tree.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "apps/configs.h"
#include "apps/sort_app.h"
#include "campaign/runner.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"
#include "core/fault_env.h"
#include "harness/csv.h"
#include "harness/sweep.h"
#include "harness/trial.h"

#ifndef ROBUSTIFY_SOURCE_DIR
#error "robustify_tests must be compiled with ROBUSTIFY_SOURCE_DIR"
#endif

namespace {

using namespace robustify;
using Strategy = faulty::FaultInjector::Strategy;

bool RegenRequested() { return std::getenv("ROBUSTIFY_REGEN_GOLDEN") != nullptr; }

std::string GoldenPath(const std::string& name) {
  return std::string(ROBUSTIFY_SOURCE_DIR) + "/tests/golden/" + name;
}

// Compares `bytes` against the committed golden, or rewrites the golden in
// regen mode.  The diff failure prints both forms whole — the artifacts are
// small CSVs/digest tables, and the byte that moved is the whole story.
void CheckGolden(const std::string& name, const std::string& bytes) {
  ASSERT_FALSE(bytes.empty()) << name;
  const std::string path = GoldenPath(name);
  if (RegenRequested()) {
    std::ofstream os(path, std::ios::binary);
    ASSERT_TRUE(os.good()) << "cannot write golden " << path;
    os << bytes;
    return;
  }
  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.good()) << "missing golden " << path
                         << " (regenerate with ROBUSTIFY_REGEN_GOLDEN=1)";
  std::stringstream buffer;
  buffer << is.rdbuf();
  EXPECT_EQ(buffer.str(), bytes) << "default-model output drifted from the "
                                    "pre-fault-model golden " << name;
}

// The real-kernel trial the goldens run: robust sort on a seed-derived
// 4-element input, with the injector strategy and kernel engine pinned so
// every golden is invariant to the ROBUSTIFY_INJECTOR / ROBUSTIFY_ENGINE /
// ROBUSTIFY_RNG / ROBUSTIFY_FAULT_MODEL CI legs.
harness::TrialFn SortTrial(Strategy strategy, faulty::Engine engine) {
  return [strategy, engine](const core::FaultEnvironment& base) {
    core::FaultEnvironment env = base;
    env.strategy = strategy;
    env.engine = engine;
    // Pin the temporal model and RNG layout: these goldens lock the
    // *default* stream and must hold under the ROBUSTIFY_FAULT_MODEL=stuck
    // and ROBUSTIFY_RNG=fused CI legs too (the goldens were generated with
    // the split draw order).
    env.model.temporal = faulty::Temporal::kTransient;
    env.rng = faulty::RngMode::kSplit;
    std::mt19937_64 rng(env.seed * 7919);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    std::vector<double> input(4);
    for (double& v : input) v = dist(rng);
    apps::LpSolveConfig config = apps::SortSgdAsSqs();
    config.sgd.iterations = 150;
    harness::TrialOutcome out;
    const apps::RobustSortResult r = core::WithFaultyFpu(
        env, [&] { return apps::RobustSort<faulty::Real>(input, config); },
        &out.fpu_stats);
    out.success = r.valid && apps::IsSortedCopyOf(r.output, input);
    out.metric = static_cast<double>(out.fpu_stats.faults_injected);
    return out;
  };
}

std::string SweepCsvBytes(Strategy strategy, faulty::Engine engine, int threads) {
  harness::SweepConfig config;
  config.fault_rates = {0.0, 0.05, 0.25};
  config.trials = 4;
  config.base_seed = 33;
  config.threads = threads;
  const auto series = harness::RunFaultRateSweep(
      config, {{"SGD+AS,SQS", SortTrial(strategy, engine)}});
  const std::string path = ::testing::TempDir() + "/robustify_model_golden.csv";
  harness::WriteSweepCsv(path, series);
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

TEST(ModelGolden, SweepCsvMatchesPreModelBinaries) {
  CheckGolden("model_default_sweep_skip_block.csv",
              SweepCsvBytes(Strategy::kSkipAhead, faulty::Engine::kBlock, 1));
  CheckGolden("model_default_sweep_skip_scalar.csv",
              SweepCsvBytes(Strategy::kSkipAhead, faulty::Engine::kScalar, 1));
  CheckGolden("model_default_sweep_perop_block.csv",
              SweepCsvBytes(Strategy::kPerOp, faulty::Engine::kBlock, 1));
  CheckGolden("model_default_sweep_perop_scalar.csv",
              SweepCsvBytes(Strategy::kPerOp, faulty::Engine::kScalar, 1));
}

TEST(ModelGolden, SweepCsvThreadCountInvariantAgainstGolden) {
  CheckGolden("model_default_sweep_skip_block.csv",
              SweepCsvBytes(Strategy::kSkipAhead, faulty::Engine::kBlock, 2));
  CheckGolden("model_default_sweep_skip_block.csv",
              SweepCsvBytes(Strategy::kSkipAhead, faulty::Engine::kBlock, 8));
}

std::string CampaignCsvBytes(bool adaptive, int threads) {
  campaign::CampaignSpec spec;
  spec.name = "golden_model";
  spec.app = "golden_model";
  spec.fault_rates = {0.0, 0.05, 0.25};
  spec.fixed_trials = 4;
  spec.max_trials = 8;
  spec.min_trials = 4;
  spec.ci_half_width = 0.2;
  spec.base_seed = 33;

  campaign::Scenario scenario;
  scenario.app = spec.app;
  scenario.series.push_back(
      {"SGD+AS,SQS", SortTrial(Strategy::kSkipAhead, faulty::Engine::kBlock)});

  campaign::RunnerOptions options;
  options.threads = threads;
  options.adaptive = adaptive;
  const campaign::CampaignResult result =
      campaign::RunCampaign(spec, scenario, options);

  const std::string path = ::testing::TempDir() + "/robustify_model_campaign.csv";
  harness::WriteSweepCsv(path, result.series);
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

TEST(ModelGolden, CampaignCsvMatchesPreModelBinaries) {
  CheckGolden("model_default_campaign_fixed.csv",
              CampaignCsvBytes(/*adaptive=*/false, /*threads=*/1));
  CheckGolden("model_default_campaign_adaptive.csv",
              CampaignCsvBytes(/*adaptive=*/true, /*threads=*/1));
}

TEST(ModelGolden, CampaignCsvThreadCountInvariantAgainstGolden) {
  CheckGolden("model_default_campaign_adaptive.csv",
              CampaignCsvBytes(/*adaptive=*/true, /*threads=*/8));
}

// ---- raw fault-stream digest ------------------------------------------------
//
// The CSVs prove end-to-end stability; this pins the injector's raw output
// stream — every corrupted word and inverted predicate, in order — so a
// drift that happens to cancel out in one app's CSV still trips the lock.

void MixInto(std::uint64_t* hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    *hash ^= (value >> (8 * i)) & 0xff;
    *hash *= 1099511628211ull;  // FNV prime
  }
}

std::uint64_t StreamDigest(double rate, Strategy strategy, faulty::RngMode rng_mode) {
  faulty::FaultInjector injector(
      rate, faulty::SharedBitDistribution(faulty::BitModel::kBimodal),
      /*seed=*/987, strategy, rng_mode);
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  for (int i = 0; i < 20000; ++i) {
    if (i % 7 == 3) {
      // Mixed op stream: comparisons consume the schedule differently from
      // arithmetic (gap-half-only fused draws), so interleave both kinds.
      MixInto(&hash, injector.ExecuteComparison((i & 1) != 0) ? 1 : 0);
    } else {
      const double result = injector.Execute(1.0 + 0.5 * static_cast<double>(i));
      std::uint64_t word;
      std::memcpy(&word, &result, sizeof(word));
      MixInto(&hash, word);
    }
  }
  const faulty::ContextStats stats = injector.stats();
  MixInto(&hash, stats.faulty_flops);
  MixInto(&hash, stats.faults_injected);
  return hash;
}

TEST(ModelGolden, FaultStreamDigestMatchesPreModelBinaries) {
  const double rates[] = {1e-3, 0.05, 0.25};
  struct Combo {
    const char* name;
    Strategy strategy;
    faulty::RngMode rng;
  };
  const Combo combos[] = {
      {"skip/split", Strategy::kSkipAhead, faulty::RngMode::kSplit},
      {"skip/fused", Strategy::kSkipAhead, faulty::RngMode::kFused},
      {"perop/split", Strategy::kPerOp, faulty::RngMode::kSplit},
  };
  std::ostringstream os;
  for (const double rate : rates) {
    for (const Combo& combo : combos) {
      char line[96];
      std::snprintf(line, sizeof(line), "rate=%g %s digest=%016llx\n", rate,
                    combo.name,
                    static_cast<unsigned long long>(
                        StreamDigest(rate, combo.strategy, combo.rng)));
      os << line;
    }
  }
  CheckGolden("model_default_stream.txt", os.str());
}

}  // namespace
