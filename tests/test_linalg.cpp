// Linear algebra: vectors, matrices, and the direct least-squares solvers.
#include <gtest/gtest.h>

#include <random>

#include "apps/least_squares.h"
#include "linalg/lsq.h"
#include "linalg/matrix.h"
#include "linalg/random.h"
#include "linalg/vector.h"
#include "signal/metrics.h"

namespace {

using robustify::apps::LsqProblem;
using robustify::apps::MakeRandomLsqProblem;
namespace linalg = robustify::linalg;

TEST(Vector, BasicOpsAndDot) {
  linalg::Vector<double> a{1.0, 2.0, 3.0};
  linalg::Vector<double> b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(NormSquared(a), 14.0);
  EXPECT_TRUE(AllFinite(a));
  a[0] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(AllFinite(a));
}

TEST(Matrix, MatVecAndTranspose) {
  linalg::Matrix<double> m(2, 3);
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  const linalg::Vector<double> x{1.0, 1.0, 1.0};
  const auto y = MatVec(m, x);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  const linalg::Vector<double> z{1.0, 1.0};
  const auto w = MatTVec(m, z);
  EXPECT_DOUBLE_EQ(w[0], 5.0);
  EXPECT_DOUBLE_EQ(w[2], 9.0);
}

class DirectSolvers : public ::testing::TestWithParam<linalg::LsqBaseline> {};

TEST_P(DirectSolvers, RecoversExactSolutionOnCleanFpu) {
  const LsqProblem p = MakeRandomLsqProblem(60, 8, 17);
  const auto x = SolveLsqDirect(p.a, p.b, GetParam());
  EXPECT_LT(robustify::signal::RelativeError(x, p.exact), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, DirectSolvers,
                         ::testing::Values(linalg::LsqBaseline::kQr,
                                           linalg::LsqBaseline::kSvd,
                                           linalg::LsqBaseline::kCholesky));

TEST(RandomGenerators, SymmetricMatrixIsSymmetric) {
  std::mt19937_64 rng(5);
  const auto a = linalg::RandomSymmetricMatrix(6, rng);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(a(i, j), a(j, i));
    }
  }
}

TEST(Metrics, RelativeErrorHandlesNonFinite) {
  linalg::Vector<double> ref{1.0, 2.0};
  linalg::Vector<double> bad{std::nan(""), 2.0};
  EXPECT_TRUE(std::isinf(robustify::signal::RelativeError(bad, ref)));
  EXPECT_NEAR(robustify::signal::RelativeError(ref, ref), 0.0, 1e-15);
}

}  // namespace
