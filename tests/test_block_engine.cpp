// Block-engine equivalence: the faulty-BLAS bulk kernels must be
// observationally identical to the per-scalar faulty::Real path.
//
// The contract (src/faulty/block_engine.h): for a fixed (seed, rate,
// strategy), the block and scalar engines execute the same IEEE-754 op
// sequence and consume the injector RNG at the same op positions, so every
// trial result is bit-identical and the flop/fault accounting matches
// exactly.  These tests hold each dispatched kernel family to that, and the
// sweep harness to byte-identical CSVs across engines at rates spanning
// "no faults" to "fault every ~20 ops".
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "apps/configs.h"
#include "apps/eigen_app.h"
#include "apps/iir_app.h"
#include "apps/least_squares.h"
#include "apps/svm_app.h"
#include "core/fault_env.h"
#include "harness/csv.h"
#include "harness/sweep.h"
#include "linalg/lsq.h"
#include "opt/cg.h"
#include "opt/workspace.h"
#include "signal/signals.h"

namespace {

using namespace robustify;
using faulty::Engine;

// Runs `fn` under a fault scope pinned to `engine`, returning the result;
// stats (flops + faults) land in *stats.
template <class Fn>
auto RunEngine(Engine engine, double rate, std::uint64_t seed, const Fn& fn,
               faulty::ContextStats* stats) {
  core::FaultEnvironment env;
  env.fault_rate = rate;
  env.seed = seed;
  env.engine = engine;
  return core::WithFaultyFpu(env, fn, stats);
}

// Bitwise comparison of double vectors (faults produce NaNs; EXPECT_EQ on
// doubles would treat those as unequal-to-themselves).
void ExpectBitEqual(const linalg::Vector<double>& a, const linalg::Vector<double>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t wa, wb;
    std::memcpy(&wa, &a[i], sizeof(wa));
    std::memcpy(&wb, &b[i], sizeof(wb));
    EXPECT_EQ(wa, wb) << what << " differs at [" << i << "]";
  }
}

const double kRates[] = {0.0, 1e-5, 1e-3, 0.05};

// Every dispatched solver stack end to end: SGD least squares (matvec +
// fused residual objective), with TMR voting and adaptive acceptance so the
// Value path runs too.
TEST(BlockEngine, LsqSgdBitIdenticalAcrossEngines) {
  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(23, 7, 11);
  opt::SgdOptions options = apps::LsqSgdAsLs();
  options.iterations = 120;
  for (const double rate : kRates) {
    faulty::ContextStats scalar_stats, block_stats;
    const linalg::Vector<double> scalar = RunEngine(
        Engine::kScalar, rate, 77,
        [&] { return apps::SolveLsqSgd<faulty::Real>(problem, options); },
        &scalar_stats);
    const linalg::Vector<double> block = RunEngine(
        Engine::kBlock, rate, 77,
        [&] { return apps::SolveLsqSgd<faulty::Real>(problem, options); },
        &block_stats);
    ExpectBitEqual(scalar, block, "lsq sgd");
    EXPECT_EQ(scalar_stats.faulty_flops, block_stats.faulty_flops) << "rate " << rate;
    EXPECT_EQ(scalar_stats.faults_injected, block_stats.faults_injected)
        << "rate " << rate;
  }
}

TEST(BlockEngine, CglsBitIdenticalAcrossEngines) {
  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(23, 7, 13);
  opt::CgOptions options;
  options.iterations = 12;
  options.restart_every = 4;
  for (const double rate : kRates) {
    faulty::ContextStats scalar_stats, block_stats;
    const opt::CgResult scalar = RunEngine(
        Engine::kScalar, rate, 91,
        [&] { return apps::SolveLsqCg<faulty::Real>(problem, options); },
        &scalar_stats);
    const opt::CgResult block = RunEngine(
        Engine::kBlock, rate, 91,
        [&] { return apps::SolveLsqCg<faulty::Real>(problem, options); },
        &block_stats);
    ExpectBitEqual(scalar.x, block.x, "cgls");
    EXPECT_EQ(scalar.iterations, block.iterations);
    std::uint64_t ra, rb;
    std::memcpy(&ra, &scalar.residual_norm, sizeof(ra));
    std::memcpy(&rb, &block.residual_norm, sizeof(rb));
    EXPECT_EQ(ra, rb) << "residual norm, rate " << rate;
    EXPECT_EQ(scalar_stats.faulty_flops, block_stats.faulty_flops) << "rate " << rate;
    EXPECT_EQ(scalar_stats.faults_injected, block_stats.faults_injected);
  }
}

// The strided kernels under the direct baselines (QR / Jacobi SVD /
// Cholesky: DotAcc[Neg], Axpy/Axmy, Rot, JacobiDots).
TEST(BlockEngine, DirectBaselinesBitIdenticalAcrossEngines) {
  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(19, 6, 17);
  for (const auto which : {linalg::LsqBaseline::kQr, linalg::LsqBaseline::kSvd,
                           linalg::LsqBaseline::kCholesky}) {
    for (const double rate : kRates) {
      faulty::ContextStats scalar_stats, block_stats;
      const linalg::Vector<double> scalar = RunEngine(
          Engine::kScalar, rate, 29,
          [&] { return apps::SolveLsqBaseline<faulty::Real>(problem, which); },
          &scalar_stats);
      const linalg::Vector<double> block = RunEngine(
          Engine::kBlock, rate, 29,
          [&] { return apps::SolveLsqBaseline<faulty::Real>(problem, which); },
          &block_stats);
      ExpectBitEqual(scalar, block, "direct baseline");
      EXPECT_EQ(scalar_stats.faulty_flops, block_stats.faulty_flops)
          << "baseline " << static_cast<int>(which) << " rate " << rate;
      EXPECT_EQ(scalar_stats.faults_injected, block_stats.faults_injected);
    }
  }
}

// The banded IIR kernels (ramp-up, steady region, ramp-down tail).
TEST(BlockEngine, IirBitIdenticalAcrossEngines) {
  const signal::IirCoefficients coeffs = signal::MakeStableIir(4, 4, 5);
  const linalg::Vector<double> input = signal::SineMix(64, {3.0, 7.0}, {1.0, 0.4});
  opt::SgdOptions options = apps::IirSgdLs();
  options.iterations = 60;
  for (const double rate : kRates) {
    faulty::ContextStats scalar_stats, block_stats;
    const linalg::Vector<double> scalar = RunEngine(
        Engine::kScalar, rate, 41,
        [&] { return apps::RobustIir<faulty::Real>(coeffs, input, options); },
        &scalar_stats);
    const linalg::Vector<double> block = RunEngine(
        Engine::kBlock, rate, 41,
        [&] { return apps::RobustIir<faulty::Real>(coeffs, input, options); },
        &block_stats);
    ExpectBitEqual(scalar, block, "iir");
    EXPECT_EQ(scalar_stats.faulty_flops, block_stats.faulty_flops) << "rate " << rate;
    EXPECT_EQ(scalar_stats.faults_injected, block_stats.faults_injected);
  }
}

// The SVM kernels (DotAcc margins, Scal regularizer, SubScaled2 rows) plus
// the faulty comparisons in the accuracy readout.
TEST(BlockEngine, SvmBitIdenticalAcrossEngines) {
  const apps::SvmDataset data = apps::MakeBlobsDataset(20, 5, 2.0, 3);
  opt::SgdOptions options;
  options.iterations = 80;
  options.base_step = 0.5;
  options.scaling = opt::StepScaling::kLinear;
  for (const double rate : kRates) {
    faulty::ContextStats scalar_stats, block_stats;
    const apps::SvmResult scalar = RunEngine(
        Engine::kScalar, rate, 53,
        [&] { return apps::TrainSvm<faulty::Real>(data, 0.01, options); },
        &scalar_stats);
    const apps::SvmResult block = RunEngine(
        Engine::kBlock, rate, 53,
        [&] { return apps::TrainSvm<faulty::Real>(data, 0.01, options); },
        &block_stats);
    ExpectBitEqual(scalar.w, block.w, "svm weights");
    EXPECT_EQ(scalar.train_accuracy, block.train_accuracy);
    EXPECT_EQ(scalar_stats.faulty_flops, block_stats.faulty_flops) << "rate " << rate;
    EXPECT_EQ(scalar_stats.faults_injected, block_stats.faults_injected);
  }
}

// Rayleigh power ascent (Dot, Axpy/Axmy, DivScal, MatVec, Norm).
TEST(BlockEngine, EigenBitIdenticalAcrossEngines) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const std::size_t n = 12;
  linalg::Matrix<double> a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      a(i, j) = dist(rng);
      a(j, i) = a(i, j);
    }
  }
  apps::RayleighOptions options;
  options.iterations = 40;
  for (const double rate : kRates) {
    faulty::ContextStats scalar_stats, block_stats;
    const auto scalar = RunEngine(
        Engine::kScalar, rate, 67,
        [&] { return apps::TopEigenpairsRayleigh<faulty::Real>(a, 2, options); },
        &scalar_stats);
    const auto block = RunEngine(
        Engine::kBlock, rate, 67,
        [&] { return apps::TopEigenpairsRayleigh<faulty::Real>(a, 2, options); },
        &block_stats);
    ASSERT_EQ(scalar.size(), block.size());
    for (std::size_t p = 0; p < scalar.size(); ++p) {
      std::uint64_t va, vb;
      std::memcpy(&va, &scalar[p].value, sizeof(va));
      std::memcpy(&vb, &block[p].value, sizeof(vb));
      EXPECT_EQ(va, vb) << "eigenvalue " << p << " rate " << rate;
      ExpectBitEqual(scalar[p].vector, block[p].vector, "eigenvector");
    }
    EXPECT_EQ(scalar_stats.faulty_flops, block_stats.faulty_flops) << "rate " << rate;
    EXPECT_EQ(scalar_stats.faults_injected, block_stats.faults_injected);
  }
}

// Under the per-op oracle injector the clean run is always zero, so block
// kernels must walk op by op and reproduce the oracle stream exactly.
TEST(BlockEngine, PerOpInjectorBitIdenticalAcrossEngines) {
  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(17, 5, 19);
  opt::SgdOptions options = apps::LsqSgdLs();
  options.iterations = 60;
  for (const double rate : {1e-3, 0.05}) {
    linalg::Vector<double> results[2];
    faulty::ContextStats stats[2];
    int i = 0;
    for (const Engine engine : {Engine::kScalar, Engine::kBlock}) {
      core::FaultEnvironment env;
      env.fault_rate = rate;
      env.seed = 101;
      env.engine = engine;
      env.strategy = faulty::FaultInjector::Strategy::kPerOp;
      results[i] = core::WithFaultyFpu(
          env, [&] { return apps::SolveLsqSgd<faulty::Real>(problem, options); },
          &stats[i]);
      ++i;
    }
    ExpectBitEqual(results[0], results[1], "per-op oracle");
    EXPECT_EQ(stats[0].faulty_flops, stats[1].faulty_flops) << "rate " << rate;
    EXPECT_EQ(stats[0].faults_injected, stats[1].faults_injected);
  }
}

// --- sweep-level golden CSVs -------------------------------------------------

harness::TrialFn LsqSgdTrial(Engine engine, const apps::LsqProblem* problem) {
  return [engine, problem](const core::FaultEnvironment& base) {
    core::FaultEnvironment env = base;
    env.engine = engine;
    opt::SgdOptions options = apps::LsqSgdAsLs();
    options.iterations = 100;
    harness::TrialOutcome out;
    const linalg::Vector<double> x = core::WithFaultyFpu(
        env, [&] { return apps::SolveLsqSgd<faulty::Real>(*problem, options); },
        &out.fpu_stats);
    out.metric = linalg::AsDouble(Norm(x));
    out.success = std::isfinite(out.metric);
    return out;
  };
}

harness::TrialFn CglsTrial(Engine engine, const apps::LsqProblem* problem) {
  return [engine, problem](const core::FaultEnvironment& base) {
    core::FaultEnvironment env = base;
    env.engine = engine;
    opt::CgOptions options;
    options.iterations = 10;
    options.restart_every = 5;
    harness::TrialOutcome out;
    const opt::CgResult r = core::WithFaultyFpu(
        env, [&] { return apps::SolveLsqCg<faulty::Real>(*problem, options); },
        &out.fpu_stats);
    out.metric = r.residual_norm;
    out.success = std::isfinite(out.metric);
    return out;
  };
}

std::string SweepCsvBytes(const std::vector<harness::NamedTrial>& trials,
                          const std::string& tag) {
  harness::SweepConfig config;
  config.fault_rates = {0.0, 1e-5, 1e-3, 0.05};
  config.trials = 5;
  config.base_seed = 71;
  config.threads = 1;
  const auto series = harness::RunFaultRateSweep(config, trials);
  const std::string path = ::testing::TempDir() + "/robustify_engine_" + tag + ".csv";
  harness::WriteSweepCsv(path, series);
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

// The headline guarantee: whole sweep CSVs (success rates, median metrics,
// mean flop counts) are byte-identical between the engines at every rate.
TEST(BlockEngine, GoldenSweepCsvByteIdenticalAcrossEngines) {
  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(23, 7, 5);
  const std::string scalar = SweepCsvBytes(
      {{"SGD+AS,LS", LsqSgdTrial(Engine::kScalar, &problem)},
       {"CG,N=10", CglsTrial(Engine::kScalar, &problem)}},
      "scalar");
  const std::string block = SweepCsvBytes(
      {{"SGD+AS,LS", LsqSgdTrial(Engine::kBlock, &problem)},
       {"CG,N=10", CglsTrial(Engine::kBlock, &problem)}},
      "block");
  EXPECT_FALSE(scalar.empty());
  EXPECT_EQ(scalar, block);
}

}  // namespace
