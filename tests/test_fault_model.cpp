// Semantics of the non-default fault models (faulty/fault_model.h) and the
// guarded trial executor (core/guard.h): stuck-at forcing windows, burst
// adjacency, intermittent high-rate windows, op-class thinning, engine and
// thread-count equivalence under sticky state, guard verdicts, and the
// campaign plumbing (spec round-trip, registry completion under every
// model).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "apps/configs.h"
#include "apps/sort_app.h"
#include "campaign/runner.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"
#include "core/fault_env.h"
#include "core/guard.h"
#include "faulty/fault_injector.h"
#include "faulty/fault_model.h"
#include "harness/sweep.h"
#include "harness/trial.h"
#include "linalg/vector.h"

namespace {

using namespace robustify;
using faulty::FaultInjector;
using faulty::FaultModel;
using faulty::Temporal;
using Strategy = FaultInjector::Strategy;

FaultInjector MakeInjector(const FaultModel& model, double rate,
                           std::uint64_t seed,
                           Strategy strategy = Strategy::kSkipAhead) {
  return FaultInjector(rate, faulty::SharedBitDistribution(faulty::BitModel::kBimodal),
                       seed, model, strategy);
}

std::uint64_t WordOf(double v) {
  std::uint64_t w;
  std::memcpy(&w, &v, sizeof(w));
  return w;
}

// ---- stuck-at ----------------------------------------------------------------

TEST(StuckAtModel, ForcesOneBitAndPinsCleanRunWhileLive) {
  FaultModel model;
  model.temporal = Temporal::kStuckAt;
  model.stuck_mean_ops = 32.0;
  for (const Strategy strategy : {Strategy::kSkipAhead, Strategy::kPerOp}) {
    FaultInjector injector = MakeInjector(model, 5e-3, 99, strategy);
    // clean = 0.0: a stuck-at-1 window sets exactly its bit on every forced
    // op (visible); stuck-at-0 windows are invisible on this input.
    const double clean = 0.0;
    int corruptions = 0;
    int sticky_repeats = 0;  // corrupting op forcing the same bit as the last
    std::uint64_t run_diff = 0;
    for (int i = 0; i < 200000; ++i) {
      const std::uint64_t clean_run = injector.CleanRun();
      const double out = injector.Execute(clean);
      const std::uint64_t diff = WordOf(out) ^ WordOf(clean);
      if (diff == 0) {
        run_diff = 0;
        continue;
      }
      ++corruptions;
      // Any corrupting op must have been reachable by the schedule or a
      // live window — either way the clean-run promise was 0.
      EXPECT_EQ(clean_run, 0u) << "op " << i;
      // Forced ops set exactly one bit.
      EXPECT_EQ(__builtin_popcountll(diff), 1) << "op " << i;
      if (diff == run_diff) ++sticky_repeats;
      run_diff = diff;
    }
    const faulty::ContextStats stats = injector.stats();
    EXPECT_EQ(stats.faulty_flops, 200000u);
    EXPECT_GT(stats.windows_opened, 0u);
    EXPECT_GT(corruptions, 0);
    // Stickiness: most corrupting ops repeat the previous op's forced bit
    // (a nested scheduled fault may re-arm a new bit mid-run, so the runs
    // are not perfectly uniform — but a transient model would almost never
    // repeat the exact bit back to back).
    EXPECT_GT(sticky_repeats, corruptions / 2);
    // Visible windows force the bit across many ops: far more corruptions
    // than scheduled window-openers.
    EXPECT_GT(stats.faults_injected, stats.windows_opened);
    EXPECT_EQ(stats.faults_injected, stats.faults_arith);
    EXPECT_EQ(stats.faults_compare, 0u);
    EXPECT_EQ(stats.faults_memory, 0u);
  }
}

TEST(StuckAtModel, ComparisonsPassThroughButOpenWindows) {
  FaultModel model;
  model.temporal = Temporal::kStuckAt;
  model.stuck_mean_ops = 16.0;
  FaultInjector injector = MakeInjector(model, 0.01, 7);
  for (int i = 0; i < 100000; ++i) {
    const bool clean = (i & 1) != 0;
    // Comparison predicates have no result word to force: a scheduled stuck
    // fault arms the window without inverting anything.
    EXPECT_EQ(injector.ExecuteComparison(clean), clean) << "op " << i;
  }
  const faulty::ContextStats stats = injector.stats();
  EXPECT_EQ(stats.faulty_flops, 100000u);
  EXPECT_GT(stats.windows_opened, 0u);
  EXPECT_EQ(stats.faults_injected, 0u);
}

// ---- burst -------------------------------------------------------------------

TEST(BurstModel, FlipsContiguousBitsWithinConfiguredWidth) {
  FaultModel model;
  model.temporal = Temporal::kBurst;
  model.burst_width_max = 6;
  for (const Strategy strategy : {Strategy::kSkipAhead, Strategy::kPerOp}) {
    FaultInjector injector = MakeInjector(model, 0.01, 123, strategy);
    const double clean = 1.5;
    int bursts = 0;
    for (int i = 0; i < 100000; ++i) {
      const double out = injector.Execute(clean);
      const std::uint64_t diff = WordOf(out) ^ WordOf(clean);
      if (diff == 0) continue;
      ++bursts;
      const int base = __builtin_ctzll(diff);
      const int width = __builtin_popcountll(diff);
      EXPECT_GE(width, 1);
      EXPECT_LE(width, 6);
      EXPECT_EQ(diff >> base, (1ull << width) - 1)
          << "burst bits must be adjacent, op " << i;
    }
    EXPECT_GT(bursts, 100);
    const faulty::ContextStats stats = injector.stats();
    EXPECT_EQ(stats.faulty_flops, 100000u);
    EXPECT_EQ(stats.windows_opened, 0u);  // bursts are memoryless
    EXPECT_EQ(stats.faults_injected, static_cast<std::uint64_t>(bursts));
  }
}

TEST(BurstModel, ComparisonFaultInvertsPredicate) {
  FaultModel model;
  model.temporal = Temporal::kBurst;
  FaultInjector injector = MakeInjector(model, 0.05, 31);
  int inversions = 0;
  for (int i = 0; i < 20000; ++i) {
    const bool clean = (i % 3) == 0;
    if (injector.ExecuteComparison(clean) != clean) ++inversions;
  }
  EXPECT_GT(inversions, 500);
  EXPECT_EQ(injector.stats().faults_compare,
            static_cast<std::uint64_t>(inversions));
}

// ---- intermittent ------------------------------------------------------------

TEST(IntermittentModel, WindowsClusterFaultsAboveTheBaseRate) {
  FaultModel model;
  model.temporal = Temporal::kIntermittent;
  model.window_mean_ops = 32.0;
  model.window_rate = 1.0;  // every in-window op faults: maximal clustering
  FaultInjector injector = MakeInjector(model, 1e-3, 55);
  const double clean = 1.5;
  int corruptions = 0;
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t clean_run = injector.CleanRun();
    const double out = injector.Execute(clean);
    if (WordOf(out) != WordOf(clean)) {
      EXPECT_EQ(clean_run, 0u) << "op " << i;
      ++corruptions;
    }
  }
  const faulty::ContextStats stats = injector.stats();
  EXPECT_EQ(stats.faulty_flops, 200000u);
  EXPECT_GT(stats.windows_opened, 0u);
  // Each window contributes its opener plus ~window_mean in-window faults:
  // the fault count must far exceed both the window count and the ~200
  // faults the base rate alone would produce.
  EXPECT_GT(stats.faults_injected, 4 * stats.windows_opened);
  EXPECT_GT(corruptions, 1000);
}

// ---- op-class thinning -------------------------------------------------------

TEST(OpClassMask, DisabledClassSeesZeroFaults) {
  for (const Strategy strategy : {Strategy::kSkipAhead, Strategy::kPerOp}) {
    // Arithmetic only: comparisons never invert.
    FaultModel arith_only;
    arith_only.temporal = Temporal::kTransient;
    arith_only.op_classes = faulty::kOpClassArith;
    FaultInjector a = MakeInjector(arith_only, 0.05, 17, strategy);
    int arith_faults = 0;
    for (int i = 0; i < 40000; ++i) {
      if (i % 3 == 0) {
        EXPECT_EQ(a.ExecuteComparison(true), true);
      } else if (WordOf(a.Execute(2.5)) != WordOf(2.5)) {
        ++arith_faults;
      }
    }
    EXPECT_GT(arith_faults, 0);
    EXPECT_EQ(a.stats().faults_compare, 0u);
    EXPECT_EQ(a.stats().faults_arith, static_cast<std::uint64_t>(arith_faults));

    // Comparison only: arithmetic results come back bit-clean.
    FaultModel cmp_only;
    cmp_only.temporal = Temporal::kTransient;
    cmp_only.op_classes = faulty::kOpClassCompare;
    FaultInjector c = MakeInjector(cmp_only, 0.05, 18, strategy);
    int cmp_faults = 0;
    for (int i = 0; i < 40000; ++i) {
      if (i % 3 == 0) {
        if (c.ExecuteComparison(false)) ++cmp_faults;
      } else {
        EXPECT_EQ(WordOf(c.Execute(2.5)), WordOf(2.5)) << "op " << i;
      }
    }
    EXPECT_GT(cmp_faults, 0);
    EXPECT_EQ(c.stats().faults_arith, 0u);
    EXPECT_EQ(c.stats().faults_compare, static_cast<std::uint64_t>(cmp_faults));
  }
}

TEST(OpClassMask, MemoryLoadsRouteOnlyWhenEnabled) {
  // Default model: loads stay entirely off the injector.
  FaultModel defaults;
  FaultInjector plain = MakeInjector(defaults, 0.05, 3);
  EXPECT_FALSE(plain.routes_loads());

  FaultModel mem;
  mem.temporal = Temporal::kTransient;
  mem.op_classes = faulty::kOpClassAll;
  FaultInjector routed = MakeInjector(mem, 0.05, 4);
  EXPECT_TRUE(routed.routes_loads());
  int load_faults = 0;
  for (int i = 0; i < 40000; ++i) {
    if (WordOf(routed.ExecuteLoad(3.25)) != WordOf(3.25)) ++load_faults;
  }
  EXPECT_GT(load_faults, 0);
  const faulty::ContextStats stats = routed.stats();
  EXPECT_EQ(stats.faults_memory, static_cast<std::uint64_t>(load_faults));
  EXPECT_EQ(stats.faulty_flops, 40000u);  // routed loads count as ops

  // Non-default temporal model without the memory class: still no routing.
  FaultModel stuck;
  stuck.temporal = Temporal::kStuckAt;
  FaultInjector stuck_inj = MakeInjector(stuck, 0.05, 5);
  EXPECT_FALSE(stuck_inj.routes_loads());
}

// Scope-level: LoadsRouted() reflects the active environment's model, and a
// memory-class trial actually corrupts through the linalg load hooks.
TEST(OpClassMask, ScopeRoutesLoadsThroughLinalgKernels) {
  core::FaultEnvironment env;
  env.fault_rate = 0.2;
  env.seed = 11;
  env.model.temporal = Temporal::kTransient;
  env.model.op_classes = faulty::kOpClassMemory;  // loads fail, arith clean
  faulty::ContextStats stats;
  core::WithFaultyFpu(
      env,
      [&] {
        EXPECT_TRUE(faulty::LoadsRouted());
        linalg::Vector<faulty::Real> x(64), y(64);
        for (int i = 0; i < 64; ++i) {
          x[static_cast<std::size_t>(i)] = faulty::Real(1.0);
          y[static_cast<std::size_t>(i)] = faulty::Real(2.0);
        }
        (void)linalg::Dot(x, y);
      },
      &stats);
  EXPECT_FALSE(faulty::LoadsRouted());
  EXPECT_GT(stats.faults_memory, 0u);
  EXPECT_EQ(stats.faults_arith, 0u);
  EXPECT_EQ(stats.faults_compare, 0u);
}

// ---- engine / thread-count equivalence under sticky models -------------------

harness::TrialFn ModelSortTrial(const FaultModel& model, Strategy strategy,
                                faulty::Engine engine) {
  return [model, strategy, engine](const core::FaultEnvironment& base) {
    core::FaultEnvironment env = base;
    env.model = model;
    env.strategy = strategy;
    env.engine = engine;
    std::mt19937_64 rng(env.seed * 7919);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    std::vector<double> input(4);
    for (double& v : input) v = dist(rng);
    apps::LpSolveConfig config = apps::SortSgdAsSqs();
    config.sgd.iterations = 120;
    harness::TrialOutcome out;
    const apps::RobustSortResult r = core::WithFaultyFpu(
        env, [&] { return apps::RobustSort<faulty::Real>(input, config); },
        &out.fpu_stats);
    out.success = r.valid && apps::IsSortedCopyOf(r.output, input);
    out.metric = static_cast<double>(out.fpu_stats.faults_injected);
    return out;
  };
}

void ExpectSameOutcome(const harness::TrialOutcome& a,
                       const harness::TrialOutcome& b, const std::string& what) {
  EXPECT_EQ(a.success, b.success) << what;
  EXPECT_EQ(WordOf(a.metric), WordOf(b.metric)) << what;
  EXPECT_EQ(a.fpu_stats.faulty_flops, b.fpu_stats.faulty_flops) << what;
  EXPECT_EQ(a.fpu_stats.faults_injected, b.fpu_stats.faults_injected) << what;
  EXPECT_EQ(a.fpu_stats.faults_arith, b.fpu_stats.faults_arith) << what;
  EXPECT_EQ(a.fpu_stats.faults_compare, b.fpu_stats.faults_compare) << what;
  EXPECT_EQ(a.fpu_stats.faults_memory, b.fpu_stats.faults_memory) << what;
  EXPECT_EQ(a.fpu_stats.windows_opened, b.fpu_stats.windows_opened) << what;
}

TEST(EngineEquivalence, StickyModelsBitIdenticalAcrossEngines) {
  std::vector<FaultModel> models(3);
  models[0].temporal = Temporal::kStuckAt;
  models[0].stuck_mean_ops = 32.0;
  models[1].temporal = Temporal::kIntermittent;
  models[2].temporal = Temporal::kBurst;
  models[2].op_classes = faulty::kOpClassAll;  // routed loads too
  core::FaultEnvironment env;
  env.fault_rate = 0.02;
  for (const FaultModel& model : models) {
    for (const Strategy strategy : {Strategy::kSkipAhead, Strategy::kPerOp}) {
      for (int trial = 0; trial < 6; ++trial) {
        const harness::TrialOutcome block = harness::RunSingleTrial(
            ModelSortTrial(model, strategy, faulty::Engine::kBlock), env, trial);
        const harness::TrialOutcome scalar = harness::RunSingleTrial(
            ModelSortTrial(model, strategy, faulty::Engine::kScalar), env, trial);
        std::ostringstream what;
        what << "model " << faulty::TemporalName(model.temporal) << " strategy "
             << (strategy == Strategy::kPerOp ? "perop" : "skip") << " trial "
             << trial;
        ExpectSameOutcome(block, scalar, what.str());
      }
    }
  }
}

TEST(EngineEquivalence, StuckSweepThreadCountInvariant) {
  FaultModel model;
  model.temporal = Temporal::kStuckAt;
  harness::SweepConfig config;
  config.fault_rates = {0.0, 0.02, 0.2};
  config.trials = 4;
  config.base_seed = 77;
  config.model = model;
  const std::vector<harness::NamedTrial> trials = {
      {"sort", ModelSortTrial(model, Strategy::kSkipAhead, faulty::Engine::kBlock)}};
  config.threads = 1;
  const auto serial = harness::RunFaultRateSweep(config, trials);
  config.threads = 4;
  const auto parallel = harness::RunFaultRateSweep(config, trials);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t s = 0; s < serial.size(); ++s) {
    ASSERT_EQ(serial[s].points.size(), parallel[s].points.size());
    for (std::size_t r = 0; r < serial[s].points.size(); ++r) {
      const harness::TrialSummary& a = serial[s].points[r].summary;
      const harness::TrialSummary& b = parallel[s].points[r].summary;
      EXPECT_EQ(a.successes, b.successes);
      EXPECT_EQ(WordOf(a.median_metric), WordOf(b.median_metric));
      EXPECT_EQ(WordOf(a.mean_faulty_flops), WordOf(b.mean_faulty_flops));
    }
  }
}

// ---- the guarded trial executor ---------------------------------------------

TEST(Guard, InactiveGuardIsInvisible) {
  core::TrialGuard off;
  EXPECT_FALSE(off.Active());
  core::GuardScope scope(off);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(core::GuardStop());
  EXPECT_FALSE(core::GuardBailoutEnabled());
  core::GuardReportDivergence();  // ignored while inactive
  EXPECT_EQ(core::ResolveVerdict(true), core::TrialVerdict::kSuccess);
  EXPECT_EQ(core::ResolveVerdict(false), core::TrialVerdict::kWrongResult);
}

TEST(Guard, IterationCapLatchesBudgetVerdict) {
  core::TrialGuard guard;
  guard.max_iterations = 5;
  core::GuardScope scope(guard);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(core::GuardStop()) << i;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(core::GuardStop());  // latched
  EXPECT_EQ(core::ResolveVerdict(false), core::TrialVerdict::kBudgetExhausted);
  // A correct answer is never reclassified by a tripped cap.
  EXPECT_EQ(core::ResolveVerdict(true), core::TrialVerdict::kSuccess);
}

TEST(Guard, DivergenceOutranksBudgetExhaustion) {
  core::TrialGuard guard;
  guard.max_iterations = 1;
  guard.nonfinite_bailout = true;
  core::GuardScope scope(guard);
  EXPECT_TRUE(core::GuardBailoutEnabled());
  while (!core::GuardStop()) {
  }
  core::GuardReportDivergence();
  EXPECT_EQ(core::ResolveVerdict(false), core::TrialVerdict::kDiverged);
}

TEST(Guard, FlopCapReadsTheActiveInjector) {
  core::TrialGuard guard;
  guard.max_flops = 50;
  core::GuardScope scope(guard);
  core::FaultEnvironment env;  // rate 0: pure flop counting
  core::WithFaultyFpu(env, [&] {
    int stopped_at = -1;
    for (int i = 0; i < 200; ++i) {
      (void)faulty::Execute(1.0);
      if (core::GuardStop()) {
        stopped_at = i;
        break;
      }
    }
    EXPECT_GE(stopped_at, 49);  // not before the cap
    EXPECT_LT(stopped_at, 60);  // but promptly after it
  });
}

TEST(Guard, RunSingleTrialResolvesAndCountsVerdicts) {
  core::FaultEnvironment env;
  env.guard.max_iterations = 3;
  env.guard.nonfinite_bailout = true;

  const harness::TrialFn budget_trial = [](const core::FaultEnvironment&) {
    harness::TrialOutcome out;
    while (!core::GuardStop()) {
    }
    out.success = false;
    return out;
  };
  const harness::TrialOutcome budget = harness::RunSingleTrial(budget_trial, env, 0);
  EXPECT_EQ(budget.verdict, core::TrialVerdict::kBudgetExhausted);

  const harness::TrialFn diverged_trial = [](const core::FaultEnvironment&) {
    harness::TrialOutcome out;
    core::GuardReportDivergence();
    out.success = false;
    return out;
  };
  const harness::TrialOutcome diverged =
      harness::RunSingleTrial(diverged_trial, env, 0);
  EXPECT_EQ(diverged.verdict, core::TrialVerdict::kDiverged);

  const harness::TrialFn success_trial = [](const core::FaultEnvironment&) {
    harness::TrialOutcome out;
    while (!core::GuardStop()) {
    }
    out.success = true;  // hit the cap but still produced a correct answer
    return out;
  };
  const harness::TrialOutcome ok = harness::RunSingleTrial(success_trial, env, 0);
  EXPECT_EQ(ok.verdict, core::TrialVerdict::kSuccess);

  const std::vector<harness::TrialOutcome> outcomes = {budget, diverged, ok};
  const harness::TrialSummary summary = harness::SummarizeOutcomes(outcomes);
  EXPECT_EQ(summary.trials, 3);
  EXPECT_EQ(summary.successes, 1);
  EXPECT_EQ(summary.wrong_results, 0);
  EXPECT_EQ(summary.diverged, 1);
  EXPECT_EQ(summary.budget_exhausted, 1);
}

TEST(Guard, IterationCapBoundsARealSolve) {
  FaultModel model;  // default transient model; the guard does the bounding
  core::FaultEnvironment env;
  env.fault_rate = 0.0;
  const harness::TrialFn trial =
      ModelSortTrial(model, Strategy::kSkipAhead, faulty::Engine::kBlock);
  const harness::TrialOutcome unguarded = harness::RunSingleTrial(trial, env, 0);
  env.guard.max_iterations = 2;
  const harness::TrialOutcome guarded = harness::RunSingleTrial(trial, env, 0);
  // The cap stops the SGD phase loop almost immediately: far fewer routed
  // flops than the full solve.
  EXPECT_LT(guarded.fpu_stats.faulty_flops, unguarded.fpu_stats.faulty_flops / 4);
  if (!guarded.success) {
    EXPECT_EQ(guarded.verdict, core::TrialVerdict::kBudgetExhausted);
  }
}

// ---- spec round-trip and fingerprints ---------------------------------------

TEST(SpecModelAxis, RoundTripsAndPreservesDefaultFingerprint) {
  campaign::CampaignSpec base;
  base.name = "axis";
  base.app = "fig6_1";
  base.fault_rates = {0.0, 0.1};
  const std::uint64_t base_print = campaign::SpecFingerprint(base);
  // A default model/guard emits no extra keys: pre-model fingerprints (and
  // therefore existing journals) stay valid.  ("bit_model" predates the
  // model axis and is always emitted.)
  EXPECT_EQ(campaign::FormatSpec(base).find("\nmodel"), std::string::npos);
  EXPECT_EQ(campaign::FormatSpec(base).find("guard"), std::string::npos);

  campaign::CampaignSpec spec = base;
  spec.model.temporal = Temporal::kIntermittent;
  spec.model.op_classes = faulty::kOpClassAll;
  spec.model.stuck_mean_ops = 100.0;
  spec.model.burst_width_max = 7;
  spec.model.window_mean_ops = 48.0;
  spec.model.window_rate = 0.5;
  spec.guard.max_flops = 1000000;
  spec.guard.max_iterations = 250;
  spec.guard.nonfinite_bailout = true;
  EXPECT_NE(campaign::SpecFingerprint(spec), base_print);

  std::istringstream is(campaign::FormatSpec(spec));
  const campaign::CampaignSpec parsed = campaign::ParseSpec(is);
  EXPECT_EQ(parsed.model.temporal, spec.model.temporal);
  EXPECT_EQ(parsed.model.op_classes, spec.model.op_classes);
  EXPECT_EQ(parsed.model.stuck_mean_ops, spec.model.stuck_mean_ops);
  EXPECT_EQ(parsed.model.burst_width_max, spec.model.burst_width_max);
  EXPECT_EQ(parsed.model.window_mean_ops, spec.model.window_mean_ops);
  EXPECT_EQ(parsed.model.window_rate, spec.model.window_rate);
  EXPECT_EQ(parsed.guard.max_flops, spec.guard.max_flops);
  EXPECT_EQ(parsed.guard.max_iterations, spec.guard.max_iterations);
  EXPECT_EQ(parsed.guard.nonfinite_bailout, spec.guard.nonfinite_bailout);
  EXPECT_EQ(campaign::SpecFingerprint(parsed), campaign::SpecFingerprint(spec));
}

TEST(SpecModelAxis, RejectsMalformedModelKeys) {
  const auto parse = [](const std::string& body) {
    std::istringstream is("app = fig6_1\nrates = 0, 0.1\n" + body);
    return campaign::ParseSpec(is);
  };
  EXPECT_THROW(parse("model = cosmic\n"), std::runtime_error);
  EXPECT_THROW(parse("op_classes = arith,warp\n"), std::runtime_error);
  EXPECT_THROW(parse("window_rate = 1.5\n"), std::runtime_error);
  EXPECT_THROW(parse("burst_width = 0\n"), std::runtime_error);
  EXPECT_THROW(parse("stuck_mean = 0\n"), std::runtime_error);
  EXPECT_THROW(parse("guard_iters = -1\n"), std::runtime_error);
  EXPECT_NO_THROW(parse("model = stuck\nguard_bailout = 1\n"));
}

// ---- campaigns under every model --------------------------------------------

// Every registered campaign must run to completion under every temporal
// model with the guard armed — one trial per cell at one mid-axis rate
// keeps this tractable while still exercising each scenario's real solvers
// under sticky fault state.
TEST(ModelCampaigns, FullRegistryCompletesUnderEveryModel) {
  for (const Temporal temporal :
       {Temporal::kStuckAt, Temporal::kBurst, Temporal::kIntermittent}) {
    for (const std::string& name : campaign::RegistryNames()) {
      campaign::CampaignSpec spec = campaign::RegistrySpec(name);
      spec.fault_rates = {
          spec.fault_rates[spec.fault_rates.size() / 2]};
      spec.fixed_trials = 1;
      spec.model.temporal = temporal;
      spec.guard.max_iterations = 20000;
      spec.guard.nonfinite_bailout = true;
      const campaign::Scenario scenario = campaign::BuildScenario(spec);
      campaign::RunnerOptions options;
      options.adaptive = false;
      const campaign::CampaignResult result =
          campaign::RunCampaign(spec, scenario, options);
      EXPECT_EQ(result.total_trials,
                static_cast<long>(scenario.series.size()))
          << name << " under " << faulty::TemporalName(temporal);
    }
  }
}

TEST(ModelCampaigns, ModelCampaignDeterministicAcrossRuns) {
  for (const Temporal temporal :
       {Temporal::kStuckAt, Temporal::kBurst, Temporal::kIntermittent}) {
    campaign::CampaignSpec spec = campaign::RegistrySpec("fig6_1");
    spec.fault_rates = {0.0, 0.05};
    spec.fixed_trials = 3;
    spec.model.temporal = temporal;
    spec.guard.max_iterations = 20000;
    spec.guard.nonfinite_bailout = true;
    const campaign::Scenario scenario = campaign::BuildScenario(spec);
    campaign::RunnerOptions options;
    options.adaptive = false;
    const campaign::CampaignResult a = campaign::RunCampaign(spec, scenario, options);
    options.threads = 4;
    const campaign::CampaignResult b = campaign::RunCampaign(spec, scenario, options);
    ASSERT_EQ(a.series.size(), b.series.size());
    for (std::size_t s = 0; s < a.series.size(); ++s) {
      for (std::size_t r = 0; r < a.series[s].points.size(); ++r) {
        const harness::TrialSummary& x = a.series[s].points[r].summary;
        const harness::TrialSummary& y = b.series[s].points[r].summary;
        EXPECT_EQ(x.successes, y.successes)
            << faulty::TemporalName(temporal) << " " << a.series[s].name;
        EXPECT_EQ(WordOf(x.median_metric), WordOf(y.median_metric));
        EXPECT_EQ(x.diverged, y.diverged);
        EXPECT_EQ(x.budget_exhausted, y.budget_exhausted);
      }
    }
  }
}

}  // namespace
