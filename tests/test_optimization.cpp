// Optimization correctness at fault rate 0: the robustified solvers must
// agree with the exact answers when the FPU is clean.
#include <gtest/gtest.h>

#include <random>

#include "apps/configs.h"
#include "apps/least_squares.h"
#include "apps/matching_app.h"
#include "apps/sort_app.h"
#include "core/fault_env.h"
#include "graph/generators.h"
#include "signal/metrics.h"

namespace {

using namespace robustify;

TEST(RateZero, SgdLeastSquaresConvergesToExactSolution) {
  const apps::LsqProblem p = apps::MakeRandomLsqProblem(100, 10, 7);
  core::FaultEnvironment env;  // rate 0
  const auto x = core::WithFaultyFpu(
      env, [&] { return apps::SolveLsqSgd<faulty::Real>(p, apps::LsqSgdLs()); });
  EXPECT_LT(signal::RelativeError(x, p.exact), 1e-8);
}

TEST(RateZero, AdaptiveSgdAlsoConverges) {
  const apps::LsqProblem p = apps::MakeRandomLsqProblem(100, 10, 8);
  core::FaultEnvironment env;
  const auto x = core::WithFaultyFpu(
      env, [&] { return apps::SolveLsqSgd<faulty::Real>(p, apps::LsqSgdAsLs()); });
  EXPECT_LT(signal::RelativeError(x, p.exact), 1e-8);
}

TEST(RateZero, CgLeastSquaresConvergesToExactSolution) {
  const apps::LsqProblem p = apps::MakeRandomLsqProblem(100, 10, 9);
  core::FaultEnvironment env;
  const opt::CgResult r = core::WithFaultyFpu(
      env, [&] { return apps::SolveLsqCg<faulty::Real>(p, apps::LsqCg(40)); });
  EXPECT_LT(signal::RelativeError(r.x, p.exact), 1e-8);
  EXPECT_EQ(r.iterations, 40);
}

// The paper's CG iteration: G = A^T A precomputed once, one mat-vec per
// step.  At rate 0 it must reach the same solution as the CGLS form, and
// its flop count per trial must be lower (one n-vector mat-vec per step
// instead of two m-vector ones) — that gap is the fig6_7 energy deviation
// the normal_equations flag exists to close.
TEST(RateZero, CgNormalEquationsConvergesToExactSolution) {
  const apps::LsqProblem p = apps::MakeRandomLsqProblem(100, 10, 9);
  core::FaultEnvironment env;
  faulty::ContextStats ne_stats;
  const opt::CgResult ne = core::WithFaultyFpu(
      env, [&] { return apps::SolveLsqCg<faulty::Real>(p, apps::LsqCgNormal(40)); },
      &ne_stats);
  EXPECT_LT(signal::RelativeError(ne.x, p.exact), 1e-8);
  EXPECT_EQ(ne.iterations, 40);
  EXPECT_LT(ne.residual_norm, 1e-6);

  faulty::ContextStats cgls_stats;
  const opt::CgResult cgls = core::WithFaultyFpu(
      env, [&] { return apps::SolveLsqCg<faulty::Real>(p, apps::LsqCg(40)); },
      &cgls_stats);
  EXPECT_LT(signal::RelativeError(cgls.x, ne.x), 1e-6);
  EXPECT_LT(ne_stats.faulty_flops, cgls_stats.faulty_flops);
}

TEST(RateZero, RobustSortSortsRandomArrays) {
  core::FaultEnvironment env;
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> input(5);
    for (double& v : input) v = dist(rng);
    const apps::RobustSortResult r = core::WithFaultyFpu(env, [&] {
      return apps::RobustSort<faulty::Real>(input, apps::SortSgdAsSqs());
    });
    EXPECT_TRUE(r.valid);
    EXPECT_TRUE(apps::IsSortedCopyOf(r.output, input)) << "trial " << trial;
  }
}

TEST(RateZero, BaselineSortIsExact) {
  core::FaultEnvironment env;
  const std::vector<double> input{0.9, 0.1, 0.6, 0.3, 0.7};
  const auto sorted = core::WithFaultyFpu(
      env, [&] { return apps::BaselineSort<faulty::Real>(input); });
  EXPECT_TRUE(apps::IsSortedCopyOf(sorted, input));
}

TEST(RateZero, RobustMatchingMatchesHungarianOptimum) {
  const graph::BipartiteGraph g = graph::RandomBipartite(5, 6, 30, 3);
  core::FaultEnvironment env;
  const apps::MatchingResult r = core::WithFaultyFpu(env, [&] {
    return apps::RobustMatching<faulty::Real>(g, apps::MatchingSgdAsLs());
  });
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(apps::MatchesOptimal(g, r.matching));
}

TEST(RateZero, BaselineHungarianIsOptimal) {
  const graph::BipartiteGraph g = graph::RandomBipartite(5, 6, 30, 11);
  core::FaultEnvironment env;
  const graph::Matching m = core::WithFaultyFpu(
      env, [&] { return apps::BaselineMatching<faulty::Real>(g); });
  EXPECT_TRUE(apps::MatchesOptimal(g, m));
}

TEST(SortApp, IsSortedCopyOfRejectsWrongMultisets) {
  EXPECT_TRUE(apps::IsSortedCopyOf({1.0, 2.0, 3.0}, {3.0, 1.0, 2.0}));
  EXPECT_FALSE(apps::IsSortedCopyOf({1.0, 3.0, 2.0}, {3.0, 1.0, 2.0}));  // unsorted
  EXPECT_FALSE(apps::IsSortedCopyOf({1.0, 2.0, 2.0}, {3.0, 1.0, 2.0}));  // wrong values
}

}  // namespace
