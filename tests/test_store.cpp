// Result store + query service: the serving tier over the trial engine.
//
// The load-bearing guarantees:
//   * N shard runs of one spec merge into the store and reduce to a CSV
//     byte-identical to the single-process run (N ∈ {2, 3}, including a
//     shard interrupted mid-run and resumed, and a shard journal with a
//     torn tail);
//   * merge is deterministic and idempotent — duplicate cells resolve to
//     the higher trial count, re-ingestion is a no-op, and a journal from
//     a different spec (fingerprint mismatch) is rejected;
//   * a query served from cache at equal-or-looser precision returns the
//     identical interval and runs zero trials; a miss runs fresh trials
//     that extend the cell's deterministic sequence and writes them back;
//   * the logistic cliff surrogate agrees with every stored on-grid cell
//     to within that cell's Wilson half-width, and off-grid queries inside
//     its support are answered without touching the trial engine.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/adaptive.h"
#include "campaign/checkpoint.h"
#include "campaign/runner.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"
#include "core/fault_env.h"
#include "harness/csv.h"
#include "service/query_service.h"
#include "service/surrogate.h"
#include "store/result_store.h"
#include "telemetry/telemetry.h"

namespace {

using namespace robustify;

// Deterministic synthetic trial with an exactly-logistic cliff in log-rate:
// p(success) = 1 / (1 + (rate / 0.1)^2), so the surrogate's model class
// contains the truth and on-grid agreement is a sharp test of the fit.
harness::TrialFn CliffTrial() {
  return [](const core::FaultEnvironment& env) {
    std::uint64_t h = env.seed * 0x9E3779B97F4A7C15ull;
    std::uint64_t rate_bits = 0;
    std::memcpy(&rate_bits, &env.fault_rate, sizeof(rate_bits));
    h ^= rate_bits + 0xBF58476D1CE4E5B9ull + (h << 6) + (h >> 2);
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    h ^= h >> 31;
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    const double ratio = env.fault_rate / 0.1;
    const double p = 1.0 / (1.0 + ratio * ratio);
    harness::TrialOutcome out;
    out.success = u < p;
    out.metric = u;
    out.fpu_stats.faulty_flops = 50 + (h % 17);
    out.fpu_stats.faults_injected = h % 3;
    return out;
  };
}

campaign::CampaignSpec StoreSpec() {
  campaign::CampaignSpec spec;
  spec.name = "store_synth";
  spec.app = "store_synth";
  spec.fault_rates = {0.02, 0.05, 0.1, 0.2, 0.4};
  spec.min_trials = 6;
  spec.max_trials = 40;
  spec.ci_half_width = 0.12;
  spec.fixed_trials = 40;
  spec.base_seed = 31337;
  return spec;
}

campaign::Scenario StoreScenario() {
  campaign::Scenario scenario;
  scenario.app = "store_synth";
  scenario.title = "store_synth";
  scenario.value = harness::TableValue::kSuccessRatePct;
  scenario.value_label = "success rate (%)";
  scenario.csv_name = "store_synth.csv";
  scenario.series = {{"A", CliffTrial()}, {"B", CliffTrial()}};
  return scenario;
}

std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "/robustify_store_" + tag;
}

std::string CsvBytes(const std::vector<harness::Series>& series,
                     const std::string& tag) {
  const std::string path = TempPath(tag) + ".csv";
  harness::WriteSweepCsv(path, series);
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

// Runs the spec unsharded (journal-free) and returns its CSV bytes.
std::string GoldenCsv(const campaign::CampaignSpec& spec,
                      const campaign::Scenario& scenario,
                      const std::string& tag) {
  campaign::RunnerOptions options;
  options.threads = 2;
  const campaign::CampaignResult result =
      campaign::RunCampaign(spec, scenario, options);
  return CsvBytes(result.series, tag);
}

// Runs shard i/N with a journal, returning the journal path.
std::string RunShard(const campaign::CampaignSpec& base,
                     const campaign::Scenario& scenario, int index, int count,
                     const std::string& tag) {
  campaign::CampaignSpec spec = base;
  spec.shard_index = index;
  spec.shard_count = count;
  campaign::RunnerOptions options;
  options.threads = 2;
  options.journal_path = TempPath(tag) + ".shard" + std::to_string(index) +
                         "of" + std::to_string(count) + ".journal";
  campaign::RunCampaign(spec, scenario, options);
  return options.journal_path;
}

std::string MergedCsv(store::ResultStore* rs,
                      const campaign::CampaignSpec& spec,
                      const campaign::Scenario& scenario,
                      const std::string& tag) {
  const store::StoredCells stored = rs->Load(spec);
  const campaign::CampaignResult result =
      campaign::ReduceRecords(spec, scenario, stored.records, /*adaptive=*/true);
  return CsvBytes(result.series, tag);
}

TEST(ResultStore, ShardedMergeIsByteIdenticalToSingleProcessRun) {
  const campaign::CampaignSpec spec = StoreSpec();
  const campaign::Scenario scenario = StoreScenario();
  const std::string golden = GoldenCsv(spec, scenario, "golden");
  ASSERT_FALSE(golden.empty());

  for (const int shards : {2, 3}) {
    const std::string tag = "merge_n" + std::to_string(shards);
    std::filesystem::remove_all(TempPath(tag) + ".store");
    store::ResultStore rs(TempPath(tag) + ".store");
    for (int i = 0; i < shards; ++i) {
      const std::string journal = RunShard(spec, scenario, i, shards, tag);
      rs.IngestJournal(spec, journal);
      std::remove(journal.c_str());
    }
    EXPECT_EQ(MergedCsv(&rs, spec, scenario, tag), golden) << shards;
  }
}

// A shard killed mid-run leaves a journal holding a prefix (possibly with a
// torn final line); resuming completes it and the merge is still exact.
TEST(ResultStore, InterruptedShardResumesAndMergesExactly) {
  const campaign::CampaignSpec spec = StoreSpec();
  const campaign::Scenario scenario = StoreScenario();
  const std::string golden = GoldenCsv(spec, scenario, "golden_resume");

  std::filesystem::remove_all(TempPath("resume") + ".store");
  store::ResultStore rs(TempPath("resume") + ".store");

  // Shard 0 runs fully; shard 1's journal is truncated mid-record to model
  // a SIGKILL between flushes, then resumed.
  rs.IngestJournal(spec, RunShard(spec, scenario, 0, 2, "resume"));
  const std::string shard1 = RunShard(spec, scenario, 1, 2, "resume");
  {
    std::ifstream in(shard1, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string bytes = buffer.str();
    ASSERT_GT(bytes.size(), 120u);
    bytes.resize(bytes.size() * 2 / 3);  // torn tail: mid-line truncation
    std::ofstream out(shard1, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  campaign::CampaignSpec shard_spec = spec;
  shard_spec.shard_index = 1;
  shard_spec.shard_count = 2;
  campaign::RunnerOptions resume;
  resume.threads = 2;
  resume.journal_path = shard1;
  resume.resume = true;
  campaign::RunCampaign(shard_spec, scenario, resume);
  rs.IngestJournal(spec, shard1);
  std::remove(shard1.c_str());

  EXPECT_EQ(MergedCsv(&rs, spec, scenario, "resume"), golden);
}

// A torn tail in an ingested journal is dropped, never merged: ingesting
// the truncated journal plus the intact one still reproduces the golden.
TEST(ResultStore, TornTailDoesNotPoisonMerge) {
  const campaign::CampaignSpec spec = StoreSpec();
  const campaign::Scenario scenario = StoreScenario();
  const std::string golden = GoldenCsv(spec, scenario, "golden_torn");

  std::filesystem::remove_all(TempPath("torn") + ".store");
  store::ResultStore rs(TempPath("torn") + ".store");
  const std::string shard0 = RunShard(spec, scenario, 0, 2, "torn");
  const std::string shard1 = RunShard(spec, scenario, 1, 2, "torn");
  {
    // Tear the tail of shard 0's journal, then ingest BOTH the torn copy
    // and the intact original: the torn records must be re-supplied by the
    // intact ingest, and nothing malformed may survive.
    std::ifstream in(shard0, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string bytes = buffer.str();
    const std::string torn = shard0 + ".torn";
    std::ofstream out(torn, std::ios::binary);
    out << bytes.substr(0, bytes.size() - 7) << std::flush;
    rs.IngestJournal(spec, torn);
    std::remove(torn.c_str());
  }
  rs.IngestJournal(spec, shard0);
  rs.IngestJournal(spec, shard1);
  std::remove(shard0.c_str());
  std::remove(shard1.c_str());
  EXPECT_EQ(MergedCsv(&rs, spec, scenario, "torn"), golden);
}

TEST(ResultStore, DuplicateCellHigherTrialCountWinsAndIngestIsIdempotent) {
  const campaign::CampaignSpec spec = StoreSpec();
  std::filesystem::remove_all(TempPath("dup") + ".store");
  store::ResultStore rs(TempPath("dup") + ".store");

  const auto record = [](int trial, bool success) {
    campaign::TrialRecord r;
    r.series = 0;
    r.rate = 1;
    r.trial = trial;
    r.success = success;
    r.verdict = success ? 0 : 1;  // journal lines must be verdict-consistent
    r.metric = 0.5;
    return r;
  };
  std::vector<campaign::TrialRecord> shorter, longer;
  for (int t = 0; t < 5; ++t) shorter.push_back(record(t, t % 2 == 0));
  for (int t = 0; t < 9; ++t) longer.push_back(record(t, t % 2 == 0));

  store::ResultStore::IngestStats stats = rs.IngestRecords(spec, shorter);
  EXPECT_EQ(stats.cells_updated, 1);
  EXPECT_EQ(stats.records_added, 5);
  // The same cell from a second shard run with more trials: longer wins.
  stats = rs.IngestRecords(spec, longer);
  EXPECT_EQ(stats.cells_updated, 1);
  EXPECT_EQ(stats.records_added, 4);
  EXPECT_EQ(rs.Load(spec).records.size(), 9u);
  // Re-ingesting the shorter duplicate is a no-op, in either order.
  stats = rs.IngestRecords(spec, shorter);
  EXPECT_EQ(stats.cells_updated, 0);
  EXPECT_EQ(stats.records_added, 0);
  stats = rs.IngestRecords(spec, longer);
  EXPECT_EQ(stats.cells_updated, 0);
  EXPECT_EQ(rs.Load(spec).records.size(), 9u);
}

TEST(ResultStore, NonContiguousRecordsTruncateAtTheGap) {
  const campaign::CampaignSpec spec = StoreSpec();
  std::filesystem::remove_all(TempPath("gap") + ".store");
  store::ResultStore rs(TempPath("gap") + ".store");
  std::vector<campaign::TrialRecord> records;
  for (const int t : {0, 1, 3, 4}) {  // trial 2 missing
    campaign::TrialRecord r;
    r.series = 1;
    r.rate = 0;
    r.trial = t;
    r.verdict = 1;  // success == false
    records.push_back(r);
  }
  const store::ResultStore::IngestStats stats = rs.IngestRecords(spec, records);
  EXPECT_EQ(stats.records_added, 2);  // only the contiguous prefix {0, 1}
  EXPECT_EQ(rs.Load(spec).records.size(), 2u);
}

TEST(ResultStore, MismatchedFingerprintIsRejected) {
  const campaign::CampaignSpec spec = StoreSpec();
  const campaign::Scenario scenario = StoreScenario();
  const std::string journal = RunShard(spec, scenario, 0, 2, "fpr");

  campaign::CampaignSpec other = spec;
  other.base_seed += 1;  // a different campaign's outcome sequences
  std::filesystem::remove_all(TempPath("fpr") + ".store");
  store::ResultStore rs(TempPath("fpr") + ".store");
  EXPECT_THROW(rs.IngestJournal(other, journal), std::runtime_error);
  // Allocation knobs do NOT refingerprint: the same journal ingests under a
  // tighter ci / larger budget.
  campaign::CampaignSpec tighter = spec;
  tighter.ci_half_width = 0.01;
  tighter.max_trials = 500;
  EXPECT_GT(rs.IngestJournal(tighter, journal).records_added, 0);
  std::remove(journal.c_str());
}

// ---- query service ----------------------------------------------------------

struct ServiceFixture {
  campaign::CampaignSpec spec = StoreSpec();
  campaign::Scenario scenario = StoreScenario();
  std::unique_ptr<store::ResultStore> rs;
  std::unique_ptr<service::QueryService> qs;

  explicit ServiceFixture(const std::string& tag, bool prefill = true) {
    const std::string root = TempPath(tag) + ".store";
    std::filesystem::remove_all(root);
    rs = std::make_unique<store::ResultStore>(root);
    qs = std::make_unique<service::QueryService>(rs.get());
    qs->RegisterSpec(spec, StoreScenario());
    if (prefill) {
      const std::string journal = RunShard(spec, scenario, 0, 1, tag);
      rs->IngestJournal(spec, journal);
      std::remove(journal.c_str());
    }
  }

  service::Query Q(const std::string& series, double rate, double ci) const {
    service::Query q;
    q.app = spec.app;
    q.series = series;
    q.rate = rate;
    q.ci = ci;
    return q;
  }
};

TEST(QueryService, CachedCellServedAtEqualOrLooserPrecision) {
  ServiceFixture f("hit");
  // The campaign ran at ci=0.12; a looser request must be a pure cache hit.
  const service::Answer a = f.qs->Handle(f.Q("A", 0.1, 0.3));
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.source, "cache");
  EXPECT_EQ(a.fresh_trials, 0);
  EXPECT_TRUE(a.on_grid);
  EXPECT_TRUE(a.settled);
  EXPECT_LE(a.half_width, 0.3);
  EXPECT_GE(a.trials, f.spec.min_trials);
  // Asking again — and again at a looser ci — returns the same interval.
  const service::Answer b = f.qs->Handle(f.Q("A", 0.1, 0.3));
  const service::Answer c = f.qs->Handle(f.Q("A", 0.1, 0.45));
  for (const service::Answer* r : {&b, &c}) {
    EXPECT_EQ(r->source, "cache");
    EXPECT_EQ(r->fresh_trials, 0);
    EXPECT_EQ(r->success_rate, a.success_rate);
    EXPECT_EQ(r->half_width, a.half_width);
    EXPECT_EQ(r->trials, a.trials);
  }
}

TEST(QueryService, TighterPrecisionRunsFreshTrialsOnceThenCaches) {
  ServiceFixture f("tighten");
  campaign::CampaignSpec wide = f.spec;
  wide.max_trials = 400;  // allocation knob: same fingerprint, deeper budget
  f.qs->RegisterSpec(wide, StoreScenario());

  const int before = static_cast<int>(f.rs->Load(f.spec).records.size());
  service::Query tight = f.Q("A", 0.1, 0.05);
  const service::Answer fresh = f.qs->Handle(tight);
  ASSERT_TRUE(fresh.ok) << fresh.error;
  EXPECT_EQ(fresh.source, "fresh-trials");
  EXPECT_GT(fresh.fresh_trials, 0);
  EXPECT_TRUE(fresh.settled);
  EXPECT_LE(fresh.half_width, 0.05);
  // The extension was written back.
  EXPECT_GT(static_cast<int>(f.rs->Load(f.spec).records.size()), before);

  // Repeat at the same ci: zero trials, identical interval.
  const service::Answer again = f.qs->Handle(tight);
  EXPECT_EQ(again.source, "cache");
  EXPECT_EQ(again.fresh_trials, 0);
  EXPECT_EQ(again.success_rate, fresh.success_rate);
  EXPECT_EQ(again.half_width, fresh.half_width);
  EXPECT_EQ(again.trials, fresh.trials);

  // And the campaign's own CSV is unaffected by the deeper store cell:
  // reduction truncates at the spec's stopping point.
  const std::string golden = GoldenCsv(f.spec, f.scenario, "tighten_golden");
  EXPECT_EQ(MergedCsv(f.rs.get(), f.spec, f.scenario, "tighten_after"), golden);
}

// Fresh trials extend the SAME deterministic sequence the campaign would
// run: a cell answered fresh from an empty store matches the campaign's
// tally for the same (cell, trial count).
TEST(QueryService, FreshTrialsExtendTheDeterministicSequence) {
  ServiceFixture f("det", /*prefill=*/false);
  const service::Answer a = f.qs->Handle(f.Q("B", 0.2, 0.12));
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.source, "fresh-trials");

  campaign::RunnerOptions options;
  options.threads = 1;
  const campaign::CampaignResult campaign_run =
      campaign::RunCampaign(f.spec, f.scenario, options);
  // Series B is index 1; rate 0.2 is index 3.
  const harness::TrialSummary& cell = campaign_run.series[1].points[3].summary;
  EXPECT_EQ(a.trials, cell.trials);
  EXPECT_EQ(a.successes, cell.successes);
}

TEST(QueryService, MissWithFreshDisallowedFailsLoudly) {
  ServiceFixture f("nofresh", /*prefill=*/false);
  service::Query q = f.Q("A", 0.1, 0.12);
  q.allow_fresh = false;
  q.allow_surrogate = false;
  const service::Answer a = f.qs->Handle(q);
  EXPECT_FALSE(a.ok);
  EXPECT_NE(a.error.find("fresh trials disallowed"), std::string::npos);
  // Unknown series and apps are errors, not crashes.
  EXPECT_FALSE(f.qs->Handle(f.Q("NoSuchSeries", 0.1, 0.1)).ok);
  service::Query bad = f.Q("A", 0.1, 0.1);
  bad.app = "no_such_app";
  EXPECT_FALSE(f.qs->Handle(bad).ok);
}

TEST(QueryService, SurrogateAgreesWithStoredCellsWithinWilsonHalfWidths) {
  ServiceFixture f("surr");
  // Build the surrogate exactly as the service does and check every stored
  // on-grid cell of series A.
  const store::StoredCells stored = f.rs->Load(f.spec);
  std::vector<service::CellTally> tallies;
  for (std::size_t r = 0; r < f.spec.fault_rates.size(); ++r) {
    int trials = 0, successes = 0;
    for (const campaign::TrialRecord& rec : stored.records) {
      if (rec.series != 0 || rec.rate != static_cast<int>(r)) continue;
      ++trials;
      if (rec.success) ++successes;
    }
    ASSERT_GT(trials, 0) << "rate index " << r;
    tallies.push_back({f.spec.fault_rates[r], successes, trials});
  }
  const service::CliffSurrogate fit = service::FitCliffSurrogate(tallies);
  ASSERT_TRUE(fit.valid);
  for (const service::CellTally& cell : tallies) {
    const double observed =
        static_cast<double>(cell.successes) / cell.trials;
    const double hw = campaign::WilsonHalfWidth(cell.successes, cell.trials);
    EXPECT_NEAR(fit.Predict(cell.rate), observed, hw)
        << "rate " << cell.rate;
  }

  // Off-grid inside the support: answered by the surrogate, zero trials.
  const service::Answer off = f.qs->Handle(f.Q("A", 0.07, 0.3));
  ASSERT_TRUE(off.ok) << off.error;
  EXPECT_EQ(off.source, "surrogate");
  EXPECT_EQ(off.fresh_trials, 0);
  EXPECT_FALSE(off.on_grid);
  EXPECT_GT(off.success_rate, 0.0);
  EXPECT_LT(off.success_rate, 1.0);
  // Outside the support it refuses to extrapolate; with fresh trials also
  // disallowed that is a hard error.
  service::Query beyond = f.Q("A", 0.9, 0.3);
  beyond.allow_fresh = false;
  const service::Answer out = f.qs->Handle(beyond);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("support"), std::string::npos);
}

TEST(Surrogate, RefusesDegenerateFits) {
  // Fewer than three usable cells, or all cells at one rate: invalid.
  EXPECT_FALSE(service::FitCliffSurrogate({}).valid);
  EXPECT_FALSE(
      service::FitCliffSurrogate({{0.1, 5, 10}, {0.2, 3, 10}}).valid);
  EXPECT_FALSE(service::FitCliffSurrogate(
                   {{0.1, 5, 10}, {0.1, 6, 10}, {0.1, 4, 10}})
                   .valid);
  // Rate-0 cells cannot enter a log-rate fit and must be skipped.
  EXPECT_FALSE(
      service::FitCliffSurrogate({{0.0, 9, 10}, {0.1, 5, 10}, {0.2, 2, 10}})
          .valid);
}

TEST(QueryService, NdjsonQueryRoundTrip) {
  service::Query q;
  std::string error;
  ASSERT_TRUE(service::QueryService::ParseQueryJson(
      R"({"app":"store_synth","series":"A","rate":0.1,"ci":0.05,)"
      R"("fresh":false,"surrogate":true})",
      &q, &error))
      << error;
  EXPECT_EQ(q.app, "store_synth");
  EXPECT_EQ(q.series, "A");
  EXPECT_DOUBLE_EQ(q.rate, 0.1);
  EXPECT_DOUBLE_EQ(q.ci, 0.05);
  EXPECT_FALSE(q.allow_fresh);
  EXPECT_TRUE(q.allow_surrogate);

  // Escapes in series names (they contain commas and may quote).
  ASSERT_TRUE(service::QueryService::ParseQueryJson(
      R"({"app":"fig6_1","series":"SGD+AS,\"SQS\"","rate":1e-3})", &q, &error));
  EXPECT_EQ(q.series, "SGD+AS,\"SQS\"");
  EXPECT_DOUBLE_EQ(q.rate, 1e-3);
  EXPECT_TRUE(q.allow_fresh);  // defaults

  for (const char* bad : {
           "",                                           // not an object
           "[]",                                         // wrong type
           "{}",                                         // empty
           R"({"app":"x","series":"A"})",                // missing rate
           R"({"app":"x","rate":1})",                    // missing series
           R"({"app":"x","series":"A","rate":"fast"})",  // wrong value type
           R"({"app":"x","series":"A","rate":1,"nope":2})",  // unknown key
           R"({"app":"x","series":"A","rate":1)",        // unterminated
       }) {
    EXPECT_FALSE(service::QueryService::ParseQueryJson(bad, &q, &error)) << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(QueryService, AnswerJsonShapes) {
  service::Answer a;
  a.ok = true;
  a.source = "cache";
  a.success_rate = 0.625;
  a.half_width = 0.0859375;
  a.trials = 64;
  a.successes = 40;
  a.on_grid = true;
  a.settled = true;
  const std::string json = service::QueryService::AnswerJson(a);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"source\":\"cache\""), std::string::npos);
  EXPECT_NE(json.find("\"success_rate\":0.625"), std::string::npos);
  EXPECT_NE(json.find("\"trials\":64"), std::string::npos);
  EXPECT_NE(json.find("\"settled\":true"), std::string::npos);

  service::Answer err;
  err.error = "bad \"quote\"";
  EXPECT_EQ(service::QueryService::AnswerJson(err),
            "{\"ok\":false,\"error\":\"bad \\\"quote\\\"\"}");
}

TEST(QueryService, ServeLoopAnswersOnePerLine) {
  ServiceFixture f("serve");
  std::istringstream in(
      "{\"app\":\"store_synth\",\"series\":\"A\",\"rate\":0.1,\"ci\":0.3}\n"
      "\n"  // blank keep-alive line: skipped, no output
      "not json\n"
      "{\"app\":\"store_synth\",\"series\":\"A\",\"rate\":0.07,\"ci\":0.3}\n");
  std::ostringstream out;
  f.qs->Serve(in, out);
  std::vector<std::string> lines;
  std::istringstream split(out.str());
  for (std::string line; std::getline(split, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"source\":\"cache\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(lines[2].find("\"source\":\"surrogate\""), std::string::npos);
}

// ---- stats + manifest -------------------------------------------------------

TEST(ResultStore, ManifestListsCampaignsAndAchievedCells) {
  ServiceFixture empty("manifest_empty", /*prefill=*/false);
  EXPECT_TRUE(empty.rs->Manifest().empty());

  ServiceFixture f("manifest");
  const auto manifest = f.rs->Manifest();
  ASSERT_EQ(manifest.size(), 1u);
  const store::ResultStore::ManifestEntry& entry = manifest[0];
  EXPECT_EQ(entry.fingerprint.size(), 16u);
  EXPECT_EQ(entry.fingerprint.find_first_not_of("0123456789abcdef"),
            std::string::npos);
  EXPECT_EQ(entry.app, "store_synth");
  // 2 series x 5 rates, all owned by the single prefill shard.
  ASSERT_EQ(entry.cells.size(), 10u);
  for (const store::ResultStore::ManifestCell& cell : entry.cells) {
    EXPECT_GE(cell.series, 0);
    EXPECT_LT(cell.series, 2);
    EXPECT_GE(cell.rate, 0);
    EXPECT_LT(cell.rate, 5);
    EXPECT_GE(cell.trials, f.spec.min_trials);
    EXPECT_LE(cell.trials, f.spec.max_trials);
    EXPECT_GE(cell.successes, 0);
    EXPECT_LE(cell.successes, cell.trials);
    // The achieved half-width is the Wilson interval of the tally.
    EXPECT_DOUBLE_EQ(cell.half_width,
                     campaign::WilsonHalfWidth(cell.successes, cell.trials));
  }
}

TEST(QueryService, ParseQueryJsonStatsCmd) {
  service::Query q;
  std::string error;
  // A stats command needs no app/series/rate.
  ASSERT_TRUE(
      service::QueryService::ParseQueryJson(R"({"cmd":"stats"})", &q, &error))
      << error;
  EXPECT_EQ(q.cmd, "stats");

  EXPECT_FALSE(
      service::QueryService::ParseQueryJson(R"({"cmd":"bogus"})", &q, &error));
  EXPECT_NE(error.find("unknown cmd"), std::string::npos);
}

TEST(QueryService, StatsJsonReportsLatencyAndManifest) {
  ServiceFixture f("stats");
  telemetry::SetCountersEnabled(true);
  telemetry::ResetCounters();
  ASSERT_TRUE(f.qs->Handle(f.Q("A", 0.1, 0.3)).ok);  // one cache answer

  const std::string json = f.qs->StatsJson();
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"cmd\":\"stats\""), std::string::npos);
  // All three per-source latency summaries are always present.
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"fresh_trials\":{\"count\":"), std::string::npos);
  EXPECT_NE(json.find("\"surrogate\":{\"count\":0"), std::string::npos);
#if ROBUSTIFY_TELEMETRY_ENABLED
  EXPECT_NE(json.find("\"cache\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"store.hits\":1"), std::string::npos);
#else
  EXPECT_NE(json.find("\"counters\":{}"), std::string::npos);
#endif
  // The store manifest rides along: the campaign and its cell tallies.
  EXPECT_NE(json.find("\"campaigns\":[{\"fingerprint\":\""),
            std::string::npos);
  const auto manifest = f.rs->Manifest();
  ASSERT_EQ(manifest.size(), 1u);
  EXPECT_NE(json.find(manifest[0].fingerprint), std::string::npos);
  EXPECT_NE(json.find("\"app\":\"store_synth\""), std::string::npos);
  EXPECT_NE(json.find("\"half_width\":"), std::string::npos);
}

TEST(QueryService, ServeLoopAnswersStatsCmd) {
  ServiceFixture f("serve_stats");
  std::istringstream in(
      "{\"app\":\"store_synth\",\"series\":\"A\",\"rate\":0.1,\"ci\":0.3}\n"
      "{\"cmd\":\"stats\"}\n"
      "{\"cmd\":\"bogus\"}\n");
  std::ostringstream out;
  f.qs->Serve(in, out);
  std::vector<std::string> lines;
  std::istringstream split(out.str());
  for (std::string line; std::getline(split, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"source\":\"cache\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"cmd\":\"stats\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"campaigns\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(lines[2].find("unknown cmd"), std::string::npos);
}

// Reduction of stored records replays the spec's own stopping rule, so the
// runner and ReduceRecords agree exactly on a round-tripped journal.
TEST(ReduceRecords, MatchesRunnerOnItsOwnJournal) {
  const campaign::CampaignSpec spec = StoreSpec();
  const campaign::Scenario scenario = StoreScenario();
  campaign::RunnerOptions options;
  options.threads = 2;
  options.journal_path = TempPath("reduce") + ".journal";
  const campaign::CampaignResult direct =
      campaign::RunCampaign(spec, scenario, options);
  const campaign::CampaignJournal::Loaded loaded =
      campaign::CampaignJournal::Load(options.journal_path);
  ASSERT_TRUE(loaded.exists);
  const campaign::CampaignResult reduced = campaign::ReduceRecords(
      spec, scenario, loaded.records, /*adaptive=*/true);
  std::remove(options.journal_path.c_str());
  EXPECT_EQ(CsvBytes(reduced.series, "reduce_a"),
            CsvBytes(direct.series, "reduce_b"));
  EXPECT_EQ(reduced.total_trials, direct.total_trials);
  EXPECT_EQ(reduced.settled_cells, direct.settled_cells);
}

}  // namespace
