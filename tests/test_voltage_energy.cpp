// Voltage/error-rate curve and energy model.
#include <gtest/gtest.h>

#include "faulty/energy.h"
#include "faulty/voltage_model.h"

namespace {

using robustify::faulty::EnergyModel;
using robustify::faulty::VoltageModel;

TEST(VoltageModel, MonotoneDecreasingInVoltage) {
  const VoltageModel model;
  double prev = model.error_rate(0.60);
  for (double v = 0.625; v <= 1.0001; v += 0.025) {
    const double rate = model.error_rate(v);
    EXPECT_LT(rate, prev) << "at voltage " << v;
    prev = rate;
  }
}

TEST(VoltageModel, NominalIsNearZeroAndFloorIsLarge) {
  const VoltageModel model;
  EXPECT_LE(model.error_rate(1.0), 1e-12);
  EXPECT_GE(model.error_rate(0.60), 0.1);
  // Knee: orders of magnitude between 0.9 V and 0.7 V.
  EXPECT_GE(model.error_rate(0.70) / model.error_rate(0.90), 1e5);
}

TEST(VoltageModel, InverseLookupRoundTrips) {
  const VoltageModel model;
  for (const double rate : {1e-9, 1e-7, 1e-5, 1e-3, 1e-2}) {
    const double v = model.voltage_for_error_rate(rate);
    EXPECT_GE(v, model.min_voltage());
    EXPECT_LE(v, model.nominal_voltage());
    // The rate at the returned voltage must not exceed the tolerated rate
    // by more than interpolation slack.
    EXPECT_LE(model.error_rate(v), rate * 1.5);
  }
}

TEST(EnergyModel, PowerScalesQuadratically) {
  const EnergyModel model;
  EXPECT_DOUBLE_EQ(model.relative_power(1.0), 1.0);
  EXPECT_NEAR(model.relative_power(0.5), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(model.energy(1000, 1.0), 1000.0);
  EXPECT_NEAR(model.energy(1000, 0.8), 640.0, 1e-9);
}

}  // namespace
