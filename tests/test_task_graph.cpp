// TaskGraph scheduler tests: dependency derivation from declared resource
// accesses, submission-order serialization of inout chains, parallel
// execution, and exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "harness/task_graph.h"

namespace {

using namespace robustify;

// Records execution order under a mutex; Position() gives a task's slot.
struct OrderRecorder {
  std::mutex mu;
  std::vector<int> order;

  void Record(int id) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
  }
  int Position(int id) const {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == id) return static_cast<int>(i);
    }
    return -1;
  }
};

TEST(TaskGraph, RunsEveryTaskExactlyOnce) {
  harness::TaskGraph graph;
  graph.Reset(4);
  for (int t = 0; t < 12; ++t) {
    const int id = graph.AddTask({t, 0, 0, 0});
    graph.Writes(id, static_cast<std::size_t>(t % 4));
  }
  for (const int threads : {1, 3, 16}) {
    std::vector<std::atomic<int>> counts(12);
    for (auto& c : counts) c = 0;
    graph.Run(threads, [&](int id, const harness::TaskTag&) {
      counts[static_cast<std::size_t>(id)]++;
    });
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
  }
}

TEST(TaskGraph, TagRoundTripsThroughRun) {
  harness::TaskGraph graph;
  graph.Reset(1);
  const int id = graph.AddTask({7, 1, 2, 3});
  graph.Writes(id, 0);
  graph.Run(1, [&](int got_id, const harness::TaskTag& tag) {
    EXPECT_EQ(got_id, id);
    EXPECT_EQ(tag.kind, 7);
    EXPECT_EQ(tag.i, 1);
    EXPECT_EQ(tag.j, 2);
    EXPECT_EQ(tag.k, 3);
  });
}

// An inout chain on one resource (every task Writes the same slot) must
// execute in submission order at any worker count — the property that makes
// per-task injector streams reproducible.
TEST(TaskGraph, InoutChainExecutesInSubmissionOrder) {
  harness::TaskGraph graph;
  graph.Reset(1);
  const int n = 16;
  for (int t = 0; t < n; ++t) {
    const int id = graph.AddTask({t, 0, 0, 0});
    graph.Writes(id, 0);
  }
  for (const int threads : {1, 4, 8}) {
    OrderRecorder rec;
    graph.Run(threads, [&](int id, const harness::TaskTag&) { rec.Record(id); });
    ASSERT_EQ(rec.order.size(), static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) EXPECT_EQ(rec.order[static_cast<std::size_t>(t)], t);
  }
}

// Diamond: A writes r0; B and C read r0 and write their own slots; D reads
// both.  A must precede B/C, which must precede D.  The write-after-read
// case: E writes r0 again and must wait for readers B and C.
TEST(TaskGraph, DerivesFlowAntiAndOutputDependencies) {
  harness::TaskGraph graph;
  graph.Reset(3);
  const int a = graph.AddTask({0, 0, 0, 0});
  graph.Writes(a, 0);
  const int b = graph.AddTask({1, 0, 0, 0});
  graph.Reads(b, 0);
  graph.Writes(b, 1);
  const int c = graph.AddTask({2, 0, 0, 0});
  graph.Reads(c, 0);
  graph.Writes(c, 2);
  const int d = graph.AddTask({3, 0, 0, 0});
  graph.Reads(d, 1);
  graph.Reads(d, 2);
  const int e = graph.AddTask({4, 0, 0, 0});
  graph.Writes(e, 0);

  for (const int threads : {1, 4}) {
    OrderRecorder rec;
    graph.Run(threads, [&](int id, const harness::TaskTag&) { rec.Record(id); });
    ASSERT_EQ(rec.order.size(), 5u);
    EXPECT_LT(rec.Position(a), rec.Position(b));
    EXPECT_LT(rec.Position(a), rec.Position(c));
    EXPECT_LT(rec.Position(b), rec.Position(d));
    EXPECT_LT(rec.Position(c), rec.Position(d));
    EXPECT_LT(rec.Position(b), rec.Position(e));
    EXPECT_LT(rec.Position(c), rec.Position(e));
  }
}

TEST(TaskGraph, BodyExceptionPropagatesSeriallyAndInParallel) {
  harness::TaskGraph graph;
  graph.Reset(1);
  for (int t = 0; t < 6; ++t) {
    const int id = graph.AddTask({t, 0, 0, 0});
    graph.Writes(id, 0);
  }
  for (const int threads : {1, 4}) {
    EXPECT_THROW(graph.Run(threads,
                           [&](int id, const harness::TaskTag&) {
                             if (id == 3) throw std::runtime_error("tile failed");
                           }),
                 std::runtime_error);
  }
}

TEST(TaskGraph, EmptyGraphAndOversubscribedWorkersAreFine) {
  harness::TaskGraph graph;
  graph.Reset(0);
  graph.Run(8, [&](int, const harness::TaskTag&) { FAIL() << "no tasks exist"; });

  graph.Reset(1);
  const int only = graph.AddTask({0, 0, 0, 0});
  graph.Writes(only, 0);
  int runs = 0;
  graph.Run(64, [&](int, const harness::TaskTag&) { ++runs; });
  EXPECT_EQ(runs, 1);
}

// Reset must fully clear the access history: a stale last-writer edge from
// the previous build would deadlock or misorder the next one.
TEST(TaskGraph, ResetClearsAccessHistory) {
  harness::TaskGraph graph;
  graph.Reset(2);
  const int a = graph.AddTask({0, 0, 0, 0});
  graph.Writes(a, 0);
  const int b = graph.AddTask({1, 0, 0, 0});
  graph.Reads(b, 0);
  graph.Writes(b, 1);
  graph.Run(2, [](int, const harness::TaskTag&) {});

  graph.Reset(2);
  const int c = graph.AddTask({2, 0, 0, 0});
  graph.Writes(c, 1);
  OrderRecorder rec;
  graph.Run(2, [&](int id, const harness::TaskTag&) { rec.Record(id); });
  ASSERT_EQ(rec.order.size(), 1u);
  EXPECT_EQ(rec.order[0], c);
}

}  // namespace
