// Statistical equivalence of the injector strategies.
//
// The gap-table skip-ahead sampler replaced the per-op Bernoulli draw as
// the production strategy for the whole rate range; the per-op
// implementation survives only as the reference oracle these tests compare
// against.  Two observables fully characterize the injector: the
// fault-to-fault gap distribution (must be Geometric(rate)) and the
// flipped-bit-position distribution (must match the BitDistribution).  At
// every rate both strategies are held to the theoretical law by chi-square
// goodness-of-fit (equal-expected-count pooled bins), to each other by a
// two-sample chi-square, and the gap samples additionally by a two-sample
// Kolmogorov-Smirnov distance.  All draws are seeded: the observed
// statistics are deterministic, so a pass is reproducible bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "faulty/bit_distribution.h"
#include "faulty/fault_injector.h"
#include "faulty/gap_sampler.h"
#include "faulty/lfsr.h"

namespace {

using robustify::faulty::BitDistribution;
using robustify::faulty::BitModel;
using robustify::faulty::FaultInjector;
using robustify::faulty::GeometricGapSampler;
using robustify::faulty::kWordBits;
using robustify::faulty::Lfsr;
using robustify::faulty::RngMode;
using robustify::faulty::SharedBitDistribution;

using Strategy = FaultInjector::Strategy;

constexpr double kRates[] = {1e-5, 1e-3, 0.05, 0.25};
constexpr int kTargetFaults = 1200;

// Chi-square quantile at p = 0.999 (i.e. a 1-in-1000 false-positive bound
// if the draws were random; they are seeded, so a pass is permanent) via
// the Wilson-Hilferty approximation — good to ~1% for dof >= 3, and we
// only ever pool into >= 4 bins.
double ChiSquareCrit999(int dof) {
  const double z = 3.0902;  // Phi^{-1}(0.999)
  const double d = static_cast<double>(dof);
  const double t = 1.0 - 2.0 / (9.0 * d) + z * std::sqrt(2.0 / (9.0 * d));
  return d * t * t * t;
}

struct FaultSample {
  std::vector<std::uint64_t> gaps;       // clean ops between injected faults
  std::array<int, kWordBits> bit_counts{};  // flipped-bit histogram
};

// Streams clean ops through an injector and records every corruption: the
// gap since the previous fault and which bit flipped (recovered by XOR
// against the clean value; the injector flips exactly one bit).
FaultSample CollectFaults(Strategy strategy, double rate, std::uint64_t seed,
                          int target_faults, RngMode rng = RngMode::kSplit) {
  FaultInjector injector(rate, SharedBitDistribution(BitModel::kBimodal), seed,
                         strategy, rng);
  FaultSample sample;
  sample.gaps.reserve(static_cast<std::size_t>(target_faults));
  const double clean = 1.5;
  std::uint64_t clean_word;
  std::memcpy(&clean_word, &clean, sizeof(clean_word));
  std::uint64_t since_last = 0;
  while (static_cast<int>(sample.gaps.size()) < target_faults) {
    const double out = injector.Execute(clean);
    if (out == clean) {
      ++since_last;
      continue;
    }
    std::uint64_t out_word;
    std::memcpy(&out_word, &out, sizeof(out_word));
    const std::uint64_t diff = clean_word ^ out_word;
    EXPECT_EQ(__builtin_popcountll(diff), 1) << "multi-bit corruption";
    sample.bit_counts[static_cast<std::size_t>(__builtin_ctzll(diff))] += 1;
    sample.gaps.push_back(since_last);
    since_last = 0;
  }
  EXPECT_EQ(injector.stats().faults_injected,
            static_cast<std::uint64_t>(target_faults));
  return sample;
}

// Equal-expected-count pooling of the geometric pmf: consecutive gap values
// are merged until each bin's expected count reaches kMinExpected; the tail
// (everything past the last edge) is its own bin.  Returns bin upper edges
// (inclusive); the tail bin is implicit.
std::vector<std::uint64_t> GeometricBinEdges(double rate, int n_samples) {
  constexpr double kMinExpected = 30.0;
  std::vector<std::uint64_t> edges;
  double bin_mass = 0.0;
  double tail_mass = 1.0;  // P(gap > current edge)
  double pmf = rate;       // P(gap = g), updated as g advances
  for (std::uint64_t g = 0;; ++g) {
    bin_mass += pmf;
    tail_mass -= pmf;
    pmf *= 1.0 - rate;
    if (bin_mass * n_samples >= kMinExpected) {
      // Close this bin, but only if what remains can still fill a tail bin.
      if (tail_mass * n_samples < kMinExpected) break;
      edges.push_back(g);
      bin_mass = 0.0;
    }
    if (g > 100000000ull) break;  // safety; unreachable for tested rates
  }
  return edges;
}

// Observed counts per pooled bin (edges inclusive; one extra tail bin).
std::vector<double> BinGaps(const std::vector<std::uint64_t>& gaps,
                            const std::vector<std::uint64_t>& edges) {
  std::vector<double> counts(edges.size() + 1, 0.0);
  for (const std::uint64_t g : gaps) {
    const auto it = std::lower_bound(edges.begin(), edges.end(), g);
    counts[static_cast<std::size_t>(it - edges.begin())] += 1.0;
  }
  return counts;
}

// Expected probability mass per pooled bin under Geometric(rate):
// P(gap <= e) = 1 - (1-rate)^{e+1}.
std::vector<double> BinProbabilities(double rate,
                                     const std::vector<std::uint64_t>& edges) {
  std::vector<double> probs;
  double prev_cdf = 0.0;
  for (const std::uint64_t e : edges) {
    const double cdf =
        1.0 - std::exp(std::log1p(-rate) * static_cast<double>(e + 1));
    probs.push_back(cdf - prev_cdf);
    prev_cdf = cdf;
  }
  probs.push_back(1.0 - prev_cdf);
  return probs;
}

double ChiSquareGoodnessOfFit(const std::vector<double>& observed,
                              const std::vector<double>& probs, int n) {
  double chi2 = 0.0;
  for (std::size_t b = 0; b < observed.size(); ++b) {
    const double expected = probs[b] * n;
    const double d = observed[b] - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

double ChiSquareTwoSample(const std::vector<double>& a, const std::vector<double>& b) {
  double na = 0.0, nb = 0.0;
  for (const double c : a) na += c;
  for (const double c : b) nb += c;
  const double ka = std::sqrt(nb / na);
  const double kb = std::sqrt(na / nb);
  double chi2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double total = a[i] + b[i];
    if (total == 0.0) continue;
    const double d = ka * a[i] - kb * b[i];
    chi2 += d * d / total;
  }
  return chi2;
}

// Two-sample Kolmogorov-Smirnov distance between sorted gap samples.
double KsDistance(std::vector<std::uint64_t> a, std::vector<std::uint64_t> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const std::uint64_t v = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= v) ++i;
    while (j < b.size() && b[j] <= v) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / a.size() -
                             static_cast<double>(j) / b.size()));
  }
  return d;
}

// Pool the 64 bit positions (in index order) into bins with enough expected
// mass for a chi-square; returns parallel (observed per strategy, probs).
void PoolBitBins(const std::array<int, kWordBits>& skip_counts,
                 const std::array<int, kWordBits>& perop_counts,
                 const BitDistribution& dist, int n,
                 std::vector<double>* skip_bins, std::vector<double>* perop_bins,
                 std::vector<double>* probs) {
  constexpr double kMinExpected = 20.0;
  double bin_p = 0.0, bin_skip = 0.0, bin_perop = 0.0;
  for (int b = 0; b < kWordBits; ++b) {
    bin_p += dist.probability(b);
    bin_skip += skip_counts[static_cast<std::size_t>(b)];
    bin_perop += perop_counts[static_cast<std::size_t>(b)];
    if (bin_p * n >= kMinExpected) {
      probs->push_back(bin_p);
      skip_bins->push_back(bin_skip);
      perop_bins->push_back(bin_perop);
      bin_p = bin_skip = bin_perop = 0.0;
    }
  }
  if (bin_p > 0.0) {
    // Merge the leftover mass into the last closed bin.
    probs->back() += bin_p;
    skip_bins->back() += bin_skip;
    perop_bins->back() += bin_perop;
  }
}

// --- gap distribution: both strategies vs. Geometric(rate), and vs. each
// other ---------------------------------------------------------------------

TEST(StatisticalEquivalence, GapDistributionMatchesGeometricLaw) {
  for (const double rate : kRates) {
    const FaultSample skip = CollectFaults(Strategy::kSkipAhead, rate, 1001, kTargetFaults);
    const FaultSample perop = CollectFaults(Strategy::kPerOp, rate, 2002, kTargetFaults);

    const std::vector<std::uint64_t> edges = GeometricBinEdges(rate, kTargetFaults);
    ASSERT_GE(edges.size(), 3u) << "rate " << rate;  // enough resolution to mean anything
    const std::vector<double> probs = BinProbabilities(rate, edges);
    const std::vector<double> skip_bins = BinGaps(skip.gaps, edges);
    const std::vector<double> perop_bins = BinGaps(perop.gaps, edges);
    const int dof = static_cast<int>(probs.size()) - 1;
    const double crit = ChiSquareCrit999(dof);

    EXPECT_LT(ChiSquareGoodnessOfFit(skip_bins, probs, kTargetFaults), crit)
        << "skip-ahead gaps vs geometric law, rate " << rate;
    EXPECT_LT(ChiSquareGoodnessOfFit(perop_bins, probs, kTargetFaults), crit)
        << "per-op gaps vs geometric law, rate " << rate;
    EXPECT_LT(ChiSquareTwoSample(skip_bins, perop_bins), crit)
        << "skip-ahead vs per-op gap histograms, rate " << rate;
  }
}

TEST(StatisticalEquivalence, GapSamplesPassTwoSampleKs) {
  // KS critical distance at alpha = 0.001: c(alpha) * sqrt((n1+n2)/(n1*n2))
  // with c = 1.95.
  const double crit =
      1.95 * std::sqrt(2.0 / static_cast<double>(kTargetFaults));
  for (const double rate : kRates) {
    const FaultSample skip = CollectFaults(Strategy::kSkipAhead, rate, 3003, kTargetFaults);
    const FaultSample perop = CollectFaults(Strategy::kPerOp, rate, 4004, kTargetFaults);
    EXPECT_LT(KsDistance(skip.gaps, perop.gaps), crit) << "rate " << rate;
  }
}

// --- bit-position distribution: both strategies vs. the configured
// BitDistribution, and vs. each other ---------------------------------------

TEST(StatisticalEquivalence, BitPositionsMatchConfiguredDistribution) {
  const BitDistribution& dist = SharedBitDistribution(BitModel::kBimodal);
  for (const double rate : kRates) {
    const FaultSample skip = CollectFaults(Strategy::kSkipAhead, rate, 5005, kTargetFaults);
    const FaultSample perop = CollectFaults(Strategy::kPerOp, rate, 6006, kTargetFaults);

    std::vector<double> skip_bins, perop_bins, probs;
    PoolBitBins(skip.bit_counts, perop.bit_counts, dist, kTargetFaults,
                &skip_bins, &perop_bins, &probs);
    ASSERT_GE(probs.size(), 4u);
    const int dof = static_cast<int>(probs.size()) - 1;
    const double crit = ChiSquareCrit999(dof);

    EXPECT_LT(ChiSquareGoodnessOfFit(skip_bins, probs, kTargetFaults), crit)
        << "skip-ahead bit positions, rate " << rate;
    EXPECT_LT(ChiSquareGoodnessOfFit(perop_bins, probs, kTargetFaults), crit)
        << "per-op bit positions, rate " << rate;
    EXPECT_LT(ChiSquareTwoSample(skip_bins, perop_bins), crit)
        << "skip-ahead vs per-op bit positions, rate " << rate;
  }
}

// --- the fused RNG layout (ROBUSTIFY_RNG=fused) ------------------------------
//
// One LFSR word serves both the gap draw (high 32 bits) and the bit draw
// (low 32 bits), with 26-bit alias residuals.  The fused stream must obey
// the same laws as the split one: gaps Geometric(rate) and bits matching
// the configured BitDistribution, plus two-sample agreement with split.

TEST(FusedRng, GapDistributionMatchesGeometricLaw) {
  for (const double rate : kRates) {
    const FaultSample fused =
        CollectFaults(Strategy::kSkipAhead, rate, 7007, kTargetFaults, RngMode::kFused);
    const FaultSample split =
        CollectFaults(Strategy::kSkipAhead, rate, 8008, kTargetFaults, RngMode::kSplit);

    const std::vector<std::uint64_t> edges = GeometricBinEdges(rate, kTargetFaults);
    ASSERT_GE(edges.size(), 3u) << "rate " << rate;
    const std::vector<double> probs = BinProbabilities(rate, edges);
    const std::vector<double> fused_bins = BinGaps(fused.gaps, edges);
    const std::vector<double> split_bins = BinGaps(split.gaps, edges);
    const int dof = static_cast<int>(probs.size()) - 1;
    const double crit = ChiSquareCrit999(dof);

    EXPECT_LT(ChiSquareGoodnessOfFit(fused_bins, probs, kTargetFaults), crit)
        << "fused gaps vs geometric law, rate " << rate;
    EXPECT_LT(ChiSquareTwoSample(fused_bins, split_bins), crit)
        << "fused vs split gap histograms, rate " << rate;
  }
}

TEST(FusedRng, GapSamplesPassTwoSampleKsAgainstSplit) {
  const double crit = 1.95 * std::sqrt(2.0 / static_cast<double>(kTargetFaults));
  for (const double rate : kRates) {
    const FaultSample fused =
        CollectFaults(Strategy::kSkipAhead, rate, 9009, kTargetFaults, RngMode::kFused);
    const FaultSample split =
        CollectFaults(Strategy::kSkipAhead, rate, 1010, kTargetFaults, RngMode::kSplit);
    EXPECT_LT(KsDistance(fused.gaps, split.gaps), crit) << "rate " << rate;
  }
}

TEST(FusedRng, BitPositionsMatchConfiguredDistribution) {
  const BitDistribution& dist = SharedBitDistribution(BitModel::kBimodal);
  for (const double rate : kRates) {
    const FaultSample fused =
        CollectFaults(Strategy::kSkipAhead, rate, 2020, kTargetFaults, RngMode::kFused);
    const FaultSample split =
        CollectFaults(Strategy::kSkipAhead, rate, 3030, kTargetFaults, RngMode::kSplit);

    std::vector<double> fused_bins, split_bins, probs;
    PoolBitBins(fused.bit_counts, split.bit_counts, dist, kTargetFaults,
                &fused_bins, &split_bins, &probs);
    ASSERT_GE(probs.size(), 4u);
    const int dof = static_cast<int>(probs.size()) - 1;
    const double crit = ChiSquareCrit999(dof);

    EXPECT_LT(ChiSquareGoodnessOfFit(fused_bins, probs, kTargetFaults), crit)
        << "fused bit positions, rate " << rate;
    EXPECT_LT(ChiSquareTwoSample(fused_bins, split_bins), crit)
        << "fused vs split bit positions, rate " << rate;
  }
}

// A fixed (seed, rate, mode) must reproduce the same fault stream: the
// fused layout is a measured optimization, not a nondeterminism source.
TEST(FusedRng, DeterministicForFixedSeed) {
  const FaultSample a =
      CollectFaults(Strategy::kSkipAhead, 0.05, 4242, 400, RngMode::kFused);
  const FaultSample b =
      CollectFaults(Strategy::kSkipAhead, 0.05, 4242, 400, RngMode::kFused);
  EXPECT_EQ(a.gaps, b.gaps);
  EXPECT_EQ(a.bit_counts, b.bit_counts);
}

// --- the gap sampler itself -------------------------------------------------

TEST(GeometricGapSampler, TableKicksInAtTheDocumentedRate) {
  const GeometricGapSampler low(GeometricGapSampler::kTableMinRate / 2.0);
  EXPECT_FALSE(low.uses_table());
  const GeometricGapSampler high(GeometricGapSampler::kTableMinRate);
  EXPECT_TRUE(high.uses_table());
}

TEST(GeometricGapSampler, SharedReturnsOneInstancePerRate) {
  const GeometricGapSampler& a = GeometricGapSampler::Shared(0.125);
  const GeometricGapSampler& b = GeometricGapSampler::Shared(0.125);
  EXPECT_EQ(&a, &b);
  const GeometricGapSampler& c = GeometricGapSampler::Shared(0.25);
  EXPECT_NE(&a, &c);
}

// --- fault-model laws (faulty/fault_model.h) ---------------------------------
//
// The temporal models draw from three per-fault laws: stuck-window duration
// and intermittent-window length (both Geometric on {1,2,...} with
// p = 1/mean) and burst width (Uniform{1..max}).  The samplers are held to
// the exact laws by chi-square, and the end-to-end injector streams are
// held skip-ahead vs per-op by two-sample gates — the temporal machinery
// sits above the scheduling strategy, so the observable corruption stream
// must not depend on which strategy runs underneath.

using robustify::faulty::FaultModel;
using robustify::faulty::SampleBurstWidth;
using robustify::faulty::SampleStuckDuration;
using robustify::faulty::SampleWindowLength;
using robustify::faulty::Temporal;
using robustify::faulty::TemporalName;

// Chi-square GoF of geometric-on-{1,2,...} draws with the given mean:
// shift to {0,1,...} and reuse the gap-law bins with rate = 1/mean.
void ExpectGeometricDurations(const std::vector<std::uint64_t>& durations,
                              double mean, const char* what) {
  ASSERT_FALSE(durations.empty());
  for (const std::uint64_t d : durations) ASSERT_GE(d, 1u) << what;
  std::vector<std::uint64_t> shifted;
  shifted.reserve(durations.size());
  for (const std::uint64_t d : durations) shifted.push_back(d - 1);
  const double rate = 1.0 / mean;
  const int n = static_cast<int>(shifted.size());
  const std::vector<std::uint64_t> edges = GeometricBinEdges(rate, n);
  ASSERT_GE(edges.size(), 3u) << what;
  const std::vector<double> probs = BinProbabilities(rate, edges);
  const std::vector<double> bins = BinGaps(shifted, edges);
  const int dof = static_cast<int>(probs.size()) - 1;
  EXPECT_LT(ChiSquareGoodnessOfFit(bins, probs, n), ChiSquareCrit999(dof))
      << what;
}

TEST(ModelLaws, StuckDurationMatchesGeometricLaw) {
  constexpr int kDraws = 4000;
  for (const double mean : {8.0, 64.0, 256.0}) {
    Lfsr rng(11011);
    std::vector<std::uint64_t> draws;
    draws.reserve(kDraws);
    for (int i = 0; i < kDraws; ++i) {
      draws.push_back(SampleStuckDuration(mean, rng));
    }
    ExpectGeometricDurations(draws, mean, "stuck duration");
  }
  // Degenerate means collapse to the constant 1, never 0.
  Lfsr rng(22022);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(SampleStuckDuration(0.5, rng), 1u);
}

TEST(ModelLaws, WindowLengthMatchesGeometricLaw) {
  constexpr int kDraws = 4000;
  for (const double mean : {16.0, 64.0}) {
    Lfsr rng(33033);
    std::vector<std::uint64_t> draws;
    draws.reserve(kDraws);
    for (int i = 0; i < kDraws; ++i) {
      draws.push_back(SampleWindowLength(mean, rng));
    }
    ExpectGeometricDurations(draws, mean, "window length");
  }
}

TEST(ModelLaws, BurstWidthMatchesUniformLaw) {
  constexpr int kDraws = 8000;
  for (const int width_max : {2, 4, 8}) {
    Lfsr rng(44044);
    std::vector<double> counts(static_cast<std::size_t>(width_max), 0.0);
    for (int i = 0; i < kDraws; ++i) {
      const int w = SampleBurstWidth(width_max, rng);
      ASSERT_GE(w, 1);
      ASSERT_LE(w, width_max);
      counts[static_cast<std::size_t>(w - 1)] += 1.0;
    }
    const std::vector<double> probs(static_cast<std::size_t>(width_max),
                                    1.0 / width_max);
    const int dof = width_max - 1;
    EXPECT_LT(ChiSquareGoodnessOfFit(counts, probs, kDraws),
              ChiSquareCrit999(std::max(dof, 3)))
        << "width_max " << width_max;
  }
  Lfsr rng(55055);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(SampleBurstWidth(1, rng), 1);
}

// End-to-end corruption streams per temporal model, observed strictly
// through the public Execute() surface: the op index of every corrupting op
// and the number of bits that changed.
struct ModelSample {
  std::vector<std::uint64_t> gaps;  // clean ops between corrupting ops
  std::vector<double> width_counts = std::vector<double>(kWordBits + 1, 0.0);
};

ModelSample CollectModelFaults(Temporal temporal, Strategy strategy,
                               double rate, std::uint64_t seed, double clean,
                               int target_events) {
  FaultModel model;
  model.temporal = temporal;
  FaultInjector injector(rate, SharedBitDistribution(BitModel::kBimodal), seed,
                         model, strategy);
  ModelSample sample;
  sample.gaps.reserve(static_cast<std::size_t>(target_events));
  std::uint64_t clean_word;
  std::memcpy(&clean_word, &clean, sizeof(clean_word));
  std::uint64_t since_last = 0;
  while (static_cast<int>(sample.gaps.size()) < target_events) {
    const double out = injector.Execute(clean);
    std::uint64_t out_word;
    std::memcpy(&out_word, &out, sizeof(out_word));
    const std::uint64_t diff = clean_word ^ out_word;
    if (diff == 0) {
      ++since_last;
      continue;
    }
    sample.width_counts[static_cast<std::size_t>(__builtin_popcountll(diff))] +=
        1.0;
    sample.gaps.push_back(since_last);
    since_last = 0;
  }
  return sample;
}

// The corruption stream of every non-default model must be strategy
// independent in distribution: two-sample KS on the inter-corruption gaps
// and two-sample chi-square on the changed-bit-width histogram.  (The gap
// law itself is not geometric for stuck/intermittent — windows cluster
// corruptions — which is exactly why the cross-strategy gate matters.)
TEST(ModelLaws, CorruptionStreamsStrategyInvariantInDistribution) {
  constexpr int kEvents = 1200;
  constexpr double kRate = 2e-3;
  const double ks_crit = 1.95 * std::sqrt(2.0 / static_cast<double>(kEvents));
  const struct {
    Temporal temporal;
    double clean;
  } cases[] = {
      // 0.0 makes a stuck-at-1 window visible on every forced op.
      {Temporal::kStuckAt, 0.0},
      {Temporal::kBurst, 1.5},
      {Temporal::kIntermittent, 1.5},
  };
  for (const auto& c : cases) {
    const ModelSample skip = CollectModelFaults(c.temporal, Strategy::kSkipAhead,
                                                kRate, 12121, c.clean, kEvents);
    const ModelSample perop = CollectModelFaults(c.temporal, Strategy::kPerOp,
                                                 kRate, 21212, c.clean, kEvents);
    EXPECT_LT(KsDistance(skip.gaps, perop.gaps), ks_crit)
        << "gaps, model " << TemporalName(c.temporal);
    int occupied = 0;
    for (std::size_t w = 0; w < skip.width_counts.size(); ++w) {
      if (skip.width_counts[w] + perop.width_counts[w] > 0.0) ++occupied;
    }
    const double crit = ChiSquareCrit999(std::max(occupied - 1, 3));
    EXPECT_LT(ChiSquareTwoSample(skip.width_counts, perop.width_counts), crit)
        << "widths, model " << TemporalName(c.temporal);
  }
}

// Burst widths through the injector follow Uniform{1..max} once clamping at
// the word edge cannot bite: condition on bursts whose base bit leaves room
// (the contiguous flipped run starts at the lowest changed bit).
TEST(ModelLaws, BurstWidthsThroughInjectorMatchUniformLaw) {
  constexpr int kEvents = 2400;
  FaultModel model;
  model.temporal = Temporal::kBurst;
  FaultInjector injector(0.01, SharedBitDistribution(BitModel::kBimodal), 31313,
                         model, Strategy::kSkipAhead);
  const double clean = 1.5;
  std::uint64_t clean_word;
  std::memcpy(&clean_word, &clean, sizeof(clean_word));
  std::vector<double> counts(4, 0.0);
  int kept = 0;
  for (int events = 0; events < kEvents;) {
    const double out = injector.Execute(clean);
    std::uint64_t out_word;
    std::memcpy(&out_word, &out, sizeof(out_word));
    const std::uint64_t diff = clean_word ^ out_word;
    if (diff == 0) continue;
    ++events;
    const int base = __builtin_ctzll(diff);
    const int width = __builtin_popcountll(diff);
    EXPECT_EQ(diff >> base, (1ull << width) - 1) << "burst must be contiguous";
    if (base <= 64 - 4) {  // clamp-free: the full Uniform{1..4} support fits
      ASSERT_GE(width, 1);
      ASSERT_LE(width, 4);
      counts[static_cast<std::size_t>(width - 1)] += 1.0;
      ++kept;
    }
  }
  ASSERT_GE(kept, 1000);
  const std::vector<double> probs(4, 0.25);
  EXPECT_LT(ChiSquareGoodnessOfFit(counts, probs, kept), ChiSquareCrit999(3));
}

// --- the gap sampler itself (continued) --------------------------------------

// Both sampler forms must produce the geometric law; exercise each just on
// its side of the table threshold, where a regression would otherwise hide.
TEST(GeometricGapSampler, BothFormsMatchGeometricLawNearThreshold) {
  constexpr int kDraws = 4000;
  for (const double rate : {GeometricGapSampler::kTableMinRate * 0.9,
                            GeometricGapSampler::kTableMinRate * 1.1}) {
    const GeometricGapSampler sampler(rate);
    Lfsr rng(777);
    std::vector<std::uint64_t> gaps;
    gaps.reserve(kDraws);
    for (int i = 0; i < kDraws; ++i) gaps.push_back(sampler.Sample(rng));

    const std::vector<std::uint64_t> edges = GeometricBinEdges(rate, kDraws);
    const std::vector<double> probs = BinProbabilities(rate, edges);
    const std::vector<double> bins = BinGaps(gaps, edges);
    const int dof = static_cast<int>(probs.size()) - 1;
    EXPECT_LT(ChiSquareGoodnessOfFit(bins, probs, kDraws), ChiSquareCrit999(dof))
        << "rate " << rate << " (table=" << sampler.uses_table() << ")";
  }
}

}  // namespace
