// Roofline perf model: kernel-family table, placement arithmetic, machine
// profile round-trip, and the quantile interpolation the stats exports use.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "harness/perf_report.h"
#include "perfmodel/calibrate.h"
#include "perfmodel/roofline.h"
#include "telemetry/telemetry.h"

namespace {

using namespace robustify;

// Every faulty-BLAS family bench_roofline measures must be in the table
// with well-formed traits; names are the perf-section names, so they are
// part of the BENCH_*.json contract.
TEST(Perfmodel, KernelFamilyTableIsCompleteAndWellFormed) {
  const std::set<std::string> expected = {
      "dot",  "axpy",   "xpby",        "scal",     "sub", "sub_scaled2",
      "nrm2", "matvec", "mattvec",     "residual", "rot", "jacobi_dots"};
  std::set<std::string> seen;
  for (const auto& traits : perfmodel::KernelFamilyTable()) {
    EXPECT_GT(traits.flops_per_element, 0.0) << traits.family;
    EXPECT_GT(traits.bytes_per_element, 0.0) << traits.family;
    EXPECT_GT(traits.arithmetic_intensity(), 0.0) << traits.family;
    EXPECT_TRUE(seen.insert(traits.family).second)
        << "duplicate family " << traits.family;
  }
  EXPECT_EQ(seen, expected);

  const perfmodel::KernelTraits* dot = perfmodel::FindKernelTraits("dot");
  ASSERT_NE(dot, nullptr);
  EXPECT_DOUBLE_EQ(dot->flops_per_element, 2.0);
  EXPECT_DOUBLE_EQ(dot->bytes_per_element, 16.0);
  EXPECT_EQ(perfmodel::FindKernelTraits("not-a-kernel"), nullptr);
}

perfmodel::MachineProfile SyntheticProfile() {
  perfmodel::MachineProfile p;
  p.valid = true;
  p.scalar_peak_gops = 3.0;
  p.vector_peak_gops = 10.0;
  p.triad_bandwidth_gbps = 30.0;
  p.sustained_bandwidth_gbps = 40.0;
  p.calibration_seconds = 1.25;
  p.created_utc = "2026-08-08T00:00:00Z";
  return p;
}

TEST(Perfmodel, PlaceKernelMemoryBound) {
  // dot: AI = 2/16 = 0.125; memory roof 0.125 * 40 = 5 < vector peak 10.
  const auto* dot = perfmodel::FindKernelTraits("dot");
  ASSERT_NE(dot, nullptr);
  const perfmodel::RooflinePlacement placement =
      perfmodel::PlaceKernel(*dot, 2.5, SyntheticProfile());
  ASSERT_TRUE(placement.valid);
  EXPECT_DOUBLE_EQ(placement.arithmetic_intensity, 0.125);
  EXPECT_DOUBLE_EQ(placement.ceiling_gops, 5.0);
  EXPECT_TRUE(placement.memory_bound);
  EXPECT_DOUBLE_EQ(placement.efficiency, 0.5);
}

TEST(Perfmodel, PlaceKernelComputeBound) {
  // jacobi_dots: AI = 6/16 = 0.375; memory roof 15 > vector peak 10.
  const auto* jd = perfmodel::FindKernelTraits("jacobi_dots");
  ASSERT_NE(jd, nullptr);
  const perfmodel::RooflinePlacement placement =
      perfmodel::PlaceKernel(*jd, 5.0, SyntheticProfile());
  ASSERT_TRUE(placement.valid);
  EXPECT_DOUBLE_EQ(placement.arithmetic_intensity, 0.375);
  EXPECT_DOUBLE_EQ(placement.ceiling_gops, 10.0);
  EXPECT_FALSE(placement.memory_bound);
  EXPECT_DOUBLE_EQ(placement.efficiency, 0.5);

  // The scalar engine's compute roof is lower: min(3, 15) = 3.
  const perfmodel::RooflinePlacement scalar = perfmodel::PlaceKernel(
      *jd, 1.5, SyntheticProfile(), /*use_vector_peak=*/false);
  ASSERT_TRUE(scalar.valid);
  EXPECT_DOUBLE_EQ(scalar.ceiling_gops, 3.0);
  EXPECT_FALSE(scalar.memory_bound);
  EXPECT_DOUBLE_EQ(scalar.efficiency, 0.5);
}

TEST(Perfmodel, PlaceKernelRejectsBadInputs) {
  const auto* dot = perfmodel::FindKernelTraits("dot");
  ASSERT_NE(dot, nullptr);
  perfmodel::MachineProfile invalid;  // valid == false
  EXPECT_FALSE(perfmodel::PlaceKernel(*dot, 2.5, invalid).valid);

  perfmodel::KernelTraits degenerate;  // zero flops/bytes
  EXPECT_FALSE(
      perfmodel::PlaceKernel(degenerate, 2.5, SyntheticProfile()).valid);

  const double nan = std::nan("");
  EXPECT_FALSE(perfmodel::PlaceKernel(*dot, nan, SyntheticProfile()).valid);
  EXPECT_FALSE(perfmodel::PlaceKernel(*dot, -1.0, SyntheticProfile()).valid);
}

TEST(Perfmodel, MachineProfileJsonRoundTrip) {
  const perfmodel::MachineProfile written = SyntheticProfile();
  const std::string path =
      ::testing::TempDir() + "/robustify_machine_profile.json";
  perfmodel::WriteMachineProfile(path, written);
  const perfmodel::MachineProfile loaded = perfmodel::LoadMachineProfile(path);
  std::remove(path.c_str());

  ASSERT_TRUE(loaded.valid);
  // The writer prints 9 significant digits; compare to that precision.
  EXPECT_NEAR(loaded.scalar_peak_gops, written.scalar_peak_gops, 1e-7);
  EXPECT_NEAR(loaded.vector_peak_gops, written.vector_peak_gops, 1e-7);
  EXPECT_NEAR(loaded.triad_bandwidth_gbps, written.triad_bandwidth_gbps, 1e-7);
  EXPECT_NEAR(loaded.sustained_bandwidth_gbps,
              written.sustained_bandwidth_gbps, 1e-7);
}

TEST(Perfmodel, LoadMachineProfileNeverThrows) {
  EXPECT_FALSE(
      perfmodel::LoadMachineProfile("/nonexistent/machine_profile.json").valid);

  const std::string path = ::testing::TempDir() + "/robustify_garbage.json";
  {
    std::ofstream out(path);
    out << "this is not json {{{";
  }
  EXPECT_FALSE(perfmodel::LoadMachineProfile(path).valid);
  std::remove(path.c_str());
}

// A quick calibration is noisy but must still produce a usable profile:
// finite positive rates and a provenance timestamp.
TEST(Perfmodel, QuickCalibrationProducesValidProfile) {
  const perfmodel::MachineProfile profile =
      perfmodel::Calibrate(perfmodel::CalibrationOptions::Quick());
  ASSERT_TRUE(profile.valid);
  EXPECT_TRUE(std::isfinite(profile.scalar_peak_gops));
  EXPECT_TRUE(std::isfinite(profile.vector_peak_gops));
  EXPECT_TRUE(std::isfinite(profile.triad_bandwidth_gbps));
  EXPECT_TRUE(std::isfinite(profile.sustained_bandwidth_gbps));
  EXPECT_GT(profile.scalar_peak_gops, 0.0);
  EXPECT_GT(profile.vector_peak_gops, 0.0);
  EXPECT_GT(profile.triad_bandwidth_gbps, 0.0);
  // Sustained is the best stream probe, so it can only improve on triad.
  EXPECT_GE(profile.sustained_bandwidth_gbps, profile.triad_bandwidth_gbps);
  EXPECT_GT(profile.calibration_seconds, 0.0);
  EXPECT_FALSE(profile.created_utc.empty());
}

// The exact interpolation contract of telemetry.cpp's HistogramQuantile:
// ranks interpolate linearly inside a bucket's [2^(b-1), 2^b) range.
TEST(Perfmodel, HistogramQuantileInterpolation) {
  std::uint64_t buckets[telemetry::kHistogramBuckets] = {};
  EXPECT_DOUBLE_EQ(telemetry::HistogramQuantile(buckets, 0.5), 0.0);  // empty

  buckets[0] = 5;  // all-zero values: any quantile reads 0
  EXPECT_DOUBLE_EQ(telemetry::HistogramQuantile(buckets, 0.99), 0.0);
  buckets[0] = 0;

  // Single bucket 3 = [4, 8), 4 samples: p50 lands halfway through it.
  buckets[3] = 4;
  EXPECT_DOUBLE_EQ(telemetry::HistogramQuantile(buckets, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(telemetry::HistogramQuantile(buckets, 0.5), 6.0);
  EXPECT_DOUBLE_EQ(telemetry::HistogramQuantile(buckets, 1.0), 8.0);
  EXPECT_DOUBLE_EQ(telemetry::HistogramQuantile(buckets, 2.0), 8.0);  // clamp
  buckets[3] = 0;

  // Two buckets: 2 samples in [1, 2), 2 in [8, 16).
  buckets[1] = 2;
  buckets[4] = 2;
  EXPECT_DOUBLE_EQ(telemetry::HistogramQuantile(buckets, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(telemetry::HistogramQuantile(buckets, 0.75), 12.0);
  EXPECT_DOUBLE_EQ(telemetry::HistogramQuantile(buckets, 1.0), 16.0);
}

// WritePerfJson carries the roofline fields bench_roofline fills; a section
// without a ceiling omits them (they are opt-in, not zero-filled noise).
TEST(Perfmodel, PerfJsonCarriesRooflineFields) {
  harness::PerfReport report;
  report.bench = "roofline_test";
  harness::PerfSection placed;
  placed.name = "dot";
  placed.wall_seconds = 0.1;
  placed.kernel_gops = 2.5;
  placed.arithmetic_intensity = 0.125;
  placed.roofline_ceiling_gops = 5.0;
  placed.roofline_efficiency = 0.5;
  harness::PerfSection unplaced;
  unplaced.name = "setup";
  unplaced.wall_seconds = 0.01;
  report.sections = {placed, unplaced};

  const std::string path = ::testing::TempDir() + "/robustify_roofline.json";
  harness::WritePerfJson(path, report);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  const std::string json = buffer.str();

  EXPECT_NE(json.find("\"kernel_gops\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"arithmetic_intensity\": 0.125"), std::string::npos);
  EXPECT_NE(json.find("\"roofline_ceiling_gops\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"roofline_efficiency\": 0.5"), std::string::npos);
  // Exactly one section carries the fields.
  EXPECT_EQ(json.find("kernel_gops"), json.rfind("kernel_gops"));
}

}  // namespace
