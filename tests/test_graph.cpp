// Graph generators, oracles, and the templated combinatorial baselines on a
// clean FPU.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/apsp_app.h"
#include "apps/configs.h"
#include "apps/maxflow_app.h"
#include "core/fault_env.h"
#include "graph/generators.h"
#include "graph/maxflow.h"
#include "graph/shortest_paths.h"

namespace {

using namespace robustify;

TEST(Generators, BipartiteIsCompleteWhenRequested) {
  const graph::BipartiteGraph g = graph::RandomBipartite(5, 6, 30, 3);
  EXPECT_EQ(g.left, 5);
  EXPECT_EQ(g.right, 6);
  EXPECT_EQ(g.edges.size(), 30u);
}

TEST(Generators, DigraphIsStronglyConnected) {
  const graph::Digraph g = graph::RandomDigraph(5, 6, 15);
  EXPECT_EQ(g.edges.size(), 6u);
  const auto dist = graph::AllPairsDijkstra(g);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_LT(dist(i, j), graph::kUnreachable) << i << "->" << j;
    }
  }
}

TEST(MaxFlow, EdmondsKarpMatchesPushRelabelOnCleanFpu) {
  for (std::uint64_t seed : {12u, 13u, 14u}) {
    const graph::FlowNetwork net = graph::RandomFlowNetwork(6, 6, seed);
    const double exact = graph::PushRelabelMaxFlow(net);
    EXPECT_GT(exact, 0.0);
    const graph::MaxFlowResult ek = graph::EdmondsKarpMaxFlow<double>(net);
    EXPECT_NEAR(ek.value, exact, 1e-9 * std::max(1.0, exact)) << "seed " << seed;
  }
}

TEST(ShortestPaths, FloydWarshallMatchesDijkstraOnCleanFpu) {
  const graph::Digraph g = graph::RandomDigraph(5, 6, 15);
  const auto fw = graph::FloydWarshall<double>(g);
  const auto dj = graph::AllPairsDijkstra(g);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(fw(i, j), dj(i, j), 1e-12);
    }
  }
}

TEST(RateZero, RobustMaxFlowWithinTolerance) {
  const graph::FlowNetwork net = graph::RandomFlowNetwork(6, 6, 12);
  const double exact = graph::PushRelabelMaxFlow(net);
  core::FaultEnvironment env;
  const apps::FlowResult r = core::WithFaultyFpu(env, [&] {
    return apps::RobustMaxFlow<faulty::Real>(net, apps::MaxFlowConfig());
  });
  EXPECT_TRUE(r.valid);
  EXPECT_LT(std::abs(r.value - exact) / exact, 0.05);
}

TEST(RateZero, RobustApspWithinTolerance) {
  const graph::Digraph g = graph::RandomDigraph(5, 6, 15);
  const auto exact = graph::AllPairsDijkstra(g);
  core::FaultEnvironment env;
  const apps::ApspResult r = core::WithFaultyFpu(
      env, [&] { return apps::RobustApsp<faulty::Real>(g, apps::ApspConfig()); });
  EXPECT_TRUE(r.valid);
  EXPECT_LT(apps::MaxAbsDistanceError(r.distances, exact), 0.05);
}

}  // namespace
