// Tests for the faulty subsystem: LFSR determinism, bit-distribution region
// masses, injector fault-rate accuracy, and scope save/restore.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/fault_env.h"
#include "faulty/bit_distribution.h"
#include "faulty/fault_injector.h"
#include "faulty/lfsr.h"
#include "faulty/real.h"

namespace {

using robustify::faulty::BitDistribution;
using robustify::faulty::BitModel;
using robustify::faulty::ContextStats;
using robustify::faulty::FaultInjector;
using robustify::faulty::kWordBits;
using robustify::faulty::Lfsr;
using robustify::faulty::Real;
using robustify::faulty::SharedBitDistribution;

using Strategy = FaultInjector::Strategy;

TEST(Lfsr, DeterministicSequence) {
  Lfsr a(42);
  Lfsr b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Lfsr, DifferentSeedsDiverge) {
  Lfsr a(42);
  Lfsr b(43);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 32);
}

TEST(Lfsr, ZeroSeedIsRemapped) {
  Lfsr z(0);
  EXPECT_NE(z.state(), 0u);
  EXPECT_NE(z.next(), 0u);
}

TEST(Lfsr, UniformInUnitInterval) {
  Lfsr rng(7);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

double RegionMass(const BitDistribution& dist, int lo, int hi) {
  double m = 0.0;
  for (int b = lo; b <= hi; ++b) m += dist.probability(b);
  return m;
}

TEST(BitDistribution, BimodalRegionMasses) {
  const BitDistribution dist(BitModel::kBimodal);
  double total = 0.0;
  for (int b = 0; b < kWordBits; ++b) total += dist.probability(b);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Bimodal: heavy low and high-mantissa modes, a valley in the middle.
  EXPECT_GT(RegionMass(dist, 0, 11), 0.30);
  EXPECT_GT(RegionMass(dist, 40, 51), 0.30);
  EXPECT_LT(RegionMass(dist, 12, 39), 0.10);
  // Exponent+sign corruption possible but rare.
  const double high = RegionMass(dist, 52, 63);
  EXPECT_GT(high, 0.0);
  EXPECT_LT(high, 0.10);
}

TEST(BitDistribution, LsbOnlyAndMsbOnly) {
  const BitDistribution lsb(BitModel::kLsbOnly);
  EXPECT_NEAR(RegionMass(lsb, 0, 11), 1.0, 1e-12);
  const BitDistribution msb(BitModel::kMsbOnly);
  EXPECT_NEAR(RegionMass(msb, 52, 63), 1.0, 1e-12);
}

TEST(BitDistribution, SampleMatchesProbabilities) {
  const BitDistribution dist(BitModel::kBimodal);
  Lfsr rng(123);
  std::array<double, kWordBits> histogram{};
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const int b = dist.sample(rng);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, kWordBits);
    histogram[static_cast<std::size_t>(b)] += 1.0 / kSamples;
  }
  for (int b = 0; b < kWordBits; ++b) {
    EXPECT_NEAR(histogram[static_cast<std::size_t>(b)], dist.probability(b), 0.01);
  }
}

TEST(FaultInjector, RateZeroCountsButNeverCorrupts) {
  for (const Strategy strategy : {Strategy::kSkipAhead, Strategy::kPerOp}) {
    FaultInjector injector(0.0, SharedBitDistribution(BitModel::kBimodal), 5,
                           strategy);
    for (int i = 0; i < 10000; ++i) {
      EXPECT_EQ(injector.Execute(1.25), 1.25);
    }
    EXPECT_EQ(injector.stats().faulty_flops, 10000u);
    EXPECT_EQ(injector.stats().faults_injected, 0u);
  }
}

TEST(FaultInjector, RateOneCorruptsEveryOp) {
  for (const Strategy strategy : {Strategy::kSkipAhead, Strategy::kPerOp}) {
    FaultInjector injector(1.0, SharedBitDistribution(BitModel::kBimodal), 5,
                           strategy);
    for (int i = 0; i < 10000; ++i) {
      EXPECT_NE(injector.Execute(1.25), 1.25);  // a bit flip never round-trips
    }
    EXPECT_EQ(injector.stats().faulty_flops, 10000u);
    EXPECT_EQ(injector.stats().faults_injected, 10000u);
  }
}

TEST(FaultInjector, FaultRateWithinStatisticalTolerance) {
  constexpr double kRate = 0.1;
  constexpr int kOps = 1000000;
  FaultInjector injector(kRate, SharedBitDistribution(BitModel::kBimodal), 99);
  for (int i = 0; i < kOps; ++i) injector.Execute(3.0);
  const double observed =
      static_cast<double>(injector.stats().faults_injected) / kOps;
  EXPECT_NEAR(observed, kRate, 0.003);  // ~10 sigma
}

// The geometric skip-ahead and per-op Bernoulli strategies must agree in
// law: at every rate both fault counts sit inside the binomial confidence
// band around kOps * rate.
TEST(FaultInjector, SkipAheadStatisticallyEquivalentToPerOp) {
  constexpr int kOps = 2000000;
  for (const double rate : {1e-3, 1e-2, 0.05}) {
    FaultInjector skip(rate, SharedBitDistribution(BitModel::kBimodal), 1234,
                       Strategy::kSkipAhead);
    FaultInjector perop(rate, SharedBitDistribution(BitModel::kBimodal), 4321,
                        Strategy::kPerOp);
    for (int i = 0; i < kOps; ++i) {
      skip.Execute(3.0);
      perop.Execute(3.0);
    }
    EXPECT_EQ(skip.stats().faulty_flops, static_cast<std::uint64_t>(kOps));
    EXPECT_EQ(perop.stats().faulty_flops, static_cast<std::uint64_t>(kOps));
    const double expected = kOps * rate;
    const double tolerance = 6.0 * std::sqrt(kOps * rate * (1.0 - rate));
    EXPECT_NEAR(static_cast<double>(skip.stats().faults_injected), expected,
                tolerance)
        << "skip-ahead at rate " << rate;
    EXPECT_NEAR(static_cast<double>(perop.stats().faults_injected), expected,
                tolerance)
        << "per-op at rate " << rate;
  }
}

// Comparisons share the same countdown stream and the same statistics.
TEST(FaultInjector, ComparisonFaultRateWithinTolerance) {
  constexpr double kRate = 0.01;
  constexpr int kOps = 1000000;
  FaultInjector injector(kRate, SharedBitDistribution(BitModel::kBimodal), 7,
                         Strategy::kSkipAhead);
  int inverted = 0;
  for (int i = 0; i < kOps; ++i) {
    if (!injector.ExecuteComparison(true)) ++inverted;
  }
  EXPECT_EQ(injector.stats().faulty_flops, static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(injector.stats().faults_injected, static_cast<std::uint64_t>(inverted));
  EXPECT_NEAR(static_cast<double>(inverted), kOps * kRate,
              6.0 * std::sqrt(kOps * kRate * (1.0 - kRate)));
}

TEST(FaultInjector, DeterministicForFixedSeedAndStrategy) {
  for (const Strategy strategy : {Strategy::kSkipAhead, Strategy::kPerOp}) {
    FaultInjector a(0.01, SharedBitDistribution(BitModel::kBimodal), 99, strategy);
    FaultInjector b(0.01, SharedBitDistribution(BitModel::kBimodal), 99, strategy);
    for (int i = 0; i < 100000; ++i) {
      const double clean = 1.0 + i * 0.5;
      ASSERT_EQ(a.Execute(clean), b.Execute(clean));
    }
    EXPECT_EQ(a.stats().faults_injected, b.stats().faults_injected);
    EXPECT_EQ(a.stats().faulty_flops, b.stats().faulty_flops);
  }
}

TEST(FaultInjector, AutoStrategyIsSkipAheadAtEveryRate) {
  if (std::getenv("ROBUSTIFY_INJECTOR") != nullptr &&
      std::string(std::getenv("ROBUSTIFY_INJECTOR")) == "perop") {
    GTEST_SKIP() << "ROBUSTIFY_INJECTOR=perop overrides kAuto";
  }
  // The gap-table sampler removed the high-rate per-op fallback: one
  // strategy covers the whole range, per-op is oracle-only.
  for (const double rate : {1e-7, 0.001, 0.1, 0.5}) {
    const FaultInjector inj(rate, SharedBitDistribution(BitModel::kBimodal), 1);
    EXPECT_EQ(inj.strategy(), Strategy::kSkipAhead) << "rate " << rate;
  }
}

TEST(FaultInjector, CorruptionFlipsExactlyOneBit) {
  FaultInjector injector(1.0, SharedBitDistribution(BitModel::kBimodal), 17);
  for (int i = 0; i < 1000; ++i) {
    const double clean = 1.0 + i * 0.125;
    const double corrupted = injector.Execute(clean);
    std::uint64_t a, b;
    std::memcpy(&a, &clean, sizeof(a));
    std::memcpy(&b, &corrupted, sizeof(b));
    EXPECT_EQ(__builtin_popcountll(a ^ b), 1);
  }
}

TEST(WithFaultyFpu, RestoresCleanStateOnExit) {
  using robustify::core::FaultEnvironment;
  using robustify::core::WithFaultyFpu;
  EXPECT_FALSE(robustify::faulty::InjectorActive());
  FaultEnvironment env;
  env.fault_rate = 0.5;
  env.seed = 11;
  ContextStats stats;
  const double result = WithFaultyFpu(
      env,
      [] {
        EXPECT_TRUE(robustify::faulty::InjectorActive());
        Real a(1.5), b(2.5);
        return (a + b).value();
      },
      &stats);
  (void)result;
  EXPECT_FALSE(robustify::faulty::InjectorActive());
  EXPECT_EQ(stats.faulty_flops, 1u);
  // Outside the scope Real arithmetic is clean and uncounted.
  Real a(1.5), b(2.5);
  EXPECT_EQ((a + b).value(), 4.0);
}

TEST(WithFaultyFpu, RestoresOnException) {
  using robustify::core::FaultEnvironment;
  using robustify::core::WithFaultyFpu;
  FaultEnvironment env;
  env.fault_rate = 0.5;
  try {
    WithFaultyFpu(env, []() -> int { throw std::runtime_error("boom"); });
    FAIL() << "expected throw";
  } catch (const std::runtime_error&) {
  }
  EXPECT_FALSE(robustify::faulty::InjectorActive());
}

TEST(WithFaultyFpu, RateZeroArithmeticIsExact) {
  using robustify::core::FaultEnvironment;
  using robustify::core::WithFaultyFpu;
  FaultEnvironment env;  // rate 0
  ContextStats stats;
  const double result = WithFaultyFpu(
      env,
      [] {
        Real acc(0);
        for (int i = 1; i <= 100; ++i) acc += Real(i);
        return acc.value();
      },
      &stats);
  EXPECT_EQ(result, 5050.0);
  EXPECT_EQ(stats.faulty_flops, 100u);
  EXPECT_EQ(stats.faults_injected, 0u);
}

TEST(FaultyReal, ComparisonsCostAFlop) {
  using robustify::core::FaultEnvironment;
  using robustify::core::WithFaultyFpu;
  FaultEnvironment env;
  ContextStats stats;
  WithFaultyFpu(
      env,
      [] {
        Real a(1.0), b(2.0);
        return a < b;
      },
      &stats);
  EXPECT_EQ(stats.faulty_flops, 1u);
}

}  // namespace
