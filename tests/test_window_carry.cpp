// Regression tests for the sticky-window hand-off (core::TrialFaultScope +
// FaultInjector::ExportWindow/AdoptWindow).
//
// The bug being pinned: a stuck-at / intermittent window used to die with
// its injector scope, so a bit that the model declared stuck for thousands
// of ops silently healed at every WithFaultyFpu boundary — kernels that
// split a trial into several scoped calls saw far fewer sticky faults than
// the model specified.  Inside a TrialFaultScope the live window must now
// survive the scope exit and keep forcing the same bit in the next call.
#include <gtest/gtest.h>

#include "core/fault_env.h"
#include "faulty/fault_injector.h"
#include "faulty/real.h"
#include "linalg/scalar.h"

namespace {

using namespace robustify;

// One faulty FP op: 1.25 + 2.5.  Read out reliably.
double FaultyAdd() {
  const faulty::Real r = faulty::Real(1.25) + faulty::Real(2.5);
  return linalg::AsDouble(r);
}

core::FaultEnvironment StuckOpener(std::uint64_t seed) {
  core::FaultEnvironment env;
  env.fault_rate = 1.0;  // the first routed op opens a stuck window
  env.seed = seed;
  env.model.temporal = faulty::Temporal::kStuckAt;
  env.model.stuck_mean_ops = 1e9;  // the window outlives both scopes
  return env;
}

TEST(WindowCarry, StuckBitSurvivesConsecutiveScopesOfOneTrial) {
  const double clean = 1.25 + 2.5;
  core::FaultEnvironment opener = StuckOpener(1);
  core::FaultEnvironment follower = opener;
  follower.fault_rate = 0.0;  // cannot open (or re-arm) a window on its own

  core::TrialFaultScope trial;
  faulty::ContextStats first_stats;
  const double first = core::WithFaultyFpu(opener, FaultyAdd, &first_stats);
  ASSERT_GE(first_stats.windows_opened, 1u);
  ASSERT_EQ(first_stats.faults_injected, 1u);

  faulty::ContextStats second_stats;
  const double second = core::WithFaultyFpu(follower, FaultyAdd, &second_stats);
  // The adopted window is not a new window, but its forcing still fires.
  EXPECT_EQ(second_stats.windows_opened, 0u);
  EXPECT_EQ(second_stats.faults_injected, 1u);
  EXPECT_EQ(second_stats.faulty_flops, 1u);
  // The same bit is forced to the same value in both kernel calls: the two
  // results are bitwise equal (and, for this seed, visibly corrupted).
  EXPECT_EQ(first, second);
  EXPECT_NE(first, clean);
}

TEST(WindowCarry, NoCarryOutsideATrialFaultScope) {
  const double clean = 1.25 + 2.5;
  core::FaultEnvironment opener = StuckOpener(1);
  core::FaultEnvironment follower = opener;
  follower.fault_rate = 0.0;

  faulty::ContextStats first_stats;
  core::WithFaultyFpu(opener, FaultyAdd, &first_stats);
  ASSERT_GE(first_stats.windows_opened, 1u);

  faulty::ContextStats second_stats;
  const double second = core::WithFaultyFpu(follower, FaultyAdd, &second_stats);
  EXPECT_EQ(second_stats.faults_injected, 0u);
  EXPECT_EQ(second, clean);
}

TEST(WindowCarry, ExpiredWindowIsNotCarried) {
  core::FaultEnvironment opener = StuckOpener(7);
  opener.model.stuck_mean_ops = 1.0;  // degenerate: every window lasts 1 op
  core::FaultEnvironment follower = opener;
  follower.fault_rate = 0.0;

  core::TrialFaultScope trial;
  core::WithFaultyFpu(opener, FaultyAdd);  // window opens and expires in-scope

  faulty::ContextStats second_stats;
  const double second = core::WithFaultyFpu(follower, FaultyAdd, &second_stats);
  EXPECT_EQ(second_stats.faults_injected, 0u);
  EXPECT_EQ(second, 1.25 + 2.5);
}

TEST(WindowCarry, DefaultTransientModelIsUntouched) {
  core::FaultEnvironment env;
  env.fault_rate = 0.5;
  env.seed = 11;
  core::TrialFaultScope trial;
  faulty::ContextStats a, b;
  const double first = core::WithFaultyFpu(env, FaultyAdd, &a);
  const double second = core::WithFaultyFpu(env, FaultyAdd, &b);
  // Identical env + seed: both scopes replay the same stream whether or not
  // a session is active — the carry hooks are no-ops under the default model.
  EXPECT_EQ(first, second);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.windows_opened, 0u);
}

TEST(WindowCarry, CarriedWindowIsNotAdoptedByADifferentTemporalModel) {
  core::FaultEnvironment opener = StuckOpener(13);
  core::FaultEnvironment follower;
  follower.fault_rate = 0.0;
  follower.seed = 13;
  follower.model.temporal = faulty::Temporal::kIntermittent;  // mismatched

  core::TrialFaultScope trial;
  core::WithFaultyFpu(opener, FaultyAdd);

  faulty::ContextStats second_stats;
  const double second = core::WithFaultyFpu(follower, FaultyAdd, &second_stats);
  EXPECT_EQ(second_stats.faults_injected, 0u);
  EXPECT_EQ(second, 1.25 + 2.5);
}

}  // namespace
