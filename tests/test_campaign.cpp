// Campaign subsystem: spec parsing/registry, the Wilson stopping rule, the
// adaptive runner's determinism contract (thread-count, batch-size, and
// kill/resume invariance, byte-for-byte), and the golden adaptive-vs-fixed
// comparison on the real figure scenarios.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/adaptive.h"
#include "campaign/checkpoint.h"
#include "campaign/runner.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"
#include "harness/csv.h"
#include "harness/trial.h"

namespace {

using namespace robustify;

// ---- spec format ------------------------------------------------------------

campaign::CampaignSpec SampleSpec() {
  campaign::CampaignSpec spec;
  spec.name = "sample";
  spec.app = "fig6_1";
  spec.series = {"Base", "SGD+AS,SQS"};
  spec.fault_rates = {0.0, 1e-4, 0.25};
  spec.fixed_trials = 7;
  spec.max_trials = 40;
  spec.min_trials = 5;
  spec.batch = 9;
  spec.ci_half_width = 0.08;
  spec.base_seed = 123;
  spec.bit_model = faulty::BitModel::kUniform;
  return spec;
}

TEST(CampaignSpec, FormatParseRoundTrip) {
  const campaign::CampaignSpec spec = SampleSpec();
  const std::string text = campaign::FormatSpec(spec);
  std::istringstream is(text);
  const campaign::CampaignSpec parsed = campaign::ParseSpec(is);
  EXPECT_EQ(campaign::FormatSpec(parsed), text);
  EXPECT_EQ(parsed.series, spec.series);
  EXPECT_EQ(parsed.fault_rates, spec.fault_rates);
  EXPECT_EQ(parsed.max_trials, spec.max_trials);
  EXPECT_EQ(campaign::SpecFingerprint(parsed), campaign::SpecFingerprint(spec));
}

// Batch size schedules speculation only — accepted tallies are invariant
// to it (CsvByteIdenticalAcrossThreadsAndBatches) — so a journal written
// under one batch size must resume under another.
TEST(CampaignSpec, FingerprintIgnoresBatch) {
  const campaign::CampaignSpec base = SampleSpec();
  campaign::CampaignSpec changed = base;
  changed.batch = base.batch + 7;
  EXPECT_EQ(campaign::SpecFingerprint(base), campaign::SpecFingerprint(changed));
}

TEST(CampaignSpec, ParseRateAxisSharedWithCli) {
  EXPECT_EQ(campaign::ParseRateAxis("0, 1e-4 ,0.25"),
            (std::vector<double>{0.0, 1e-4, 0.25}));
  EXPECT_THROW(campaign::ParseRateAxis("0.1,"), std::runtime_error);
  EXPECT_THROW(campaign::ParseRateAxis(""), std::runtime_error);
  EXPECT_THROW(campaign::ParseRateAxis("0.1,x"), std::runtime_error);
}

TEST(CampaignSpec, FingerprintSeesEveryOutcomeField) {
  const campaign::CampaignSpec base = SampleSpec();
  campaign::CampaignSpec changed = base;
  changed.fault_rates.push_back(0.5);
  EXPECT_NE(campaign::SpecFingerprint(base), campaign::SpecFingerprint(changed));
  changed = base;
  changed.base_seed += 1;
  EXPECT_NE(campaign::SpecFingerprint(base), campaign::SpecFingerprint(changed));
  changed = base;
  changed.series = {"Base"};
  EXPECT_NE(campaign::SpecFingerprint(base), campaign::SpecFingerprint(changed));
  changed = base;
  changed.guard.max_flops = 12345;
  EXPECT_NE(campaign::SpecFingerprint(base), campaign::SpecFingerprint(changed));
}

// Trial allocation decides how far each cell's deterministic outcome
// sequence gets sampled, never what the outcomes are — every run journals
// a prefix of the same sequences — so none of the allocation knobs may
// fragment the fingerprint (store cells cached at one ci must serve
// queries at another).
TEST(CampaignSpec, FingerprintIgnoresTrialAllocation) {
  const campaign::CampaignSpec base = SampleSpec();
  campaign::CampaignSpec changed = base;
  changed.ci_half_width = 0.0801;
  changed.min_trials += 3;
  changed.max_trials += 50;
  changed.fixed_trials += 2;
  EXPECT_EQ(campaign::SpecFingerprint(base), campaign::SpecFingerprint(changed));
}

TEST(CampaignSpec, FingerprintIgnoresShard) {
  const campaign::CampaignSpec base = SampleSpec();
  campaign::CampaignSpec changed = base;
  changed.shard_index = 2;
  changed.shard_count = 5;
  EXPECT_EQ(campaign::SpecFingerprint(base), campaign::SpecFingerprint(changed));
}

TEST(CampaignSpec, ShardRoundTripsThroughSpecText) {
  campaign::CampaignSpec spec = SampleSpec();
  spec.shard_index = 1;
  spec.shard_count = 3;
  const std::string text = campaign::FormatSpec(spec);
  EXPECT_NE(text.find("shard = 1/3"), std::string::npos);
  std::istringstream is(text);
  const campaign::CampaignSpec parsed = campaign::ParseSpec(is);
  EXPECT_EQ(parsed.shard_index, 1);
  EXPECT_EQ(parsed.shard_count, 3);
}

TEST(CampaignSpec, ParseShardRejectsMalformedSelections) {
  EXPECT_EQ(campaign::ParseShard("0/1"), (std::pair<int, int>{0, 1}));
  EXPECT_EQ(campaign::ParseShard("2/3"), (std::pair<int, int>{2, 3}));
  // i >= N or N == 0 would silently own zero cells — must be loud.
  EXPECT_THROW(campaign::ParseShard("3/3"), std::runtime_error);
  EXPECT_THROW(campaign::ParseShard("0/0"), std::runtime_error);
  EXPECT_THROW(campaign::ParseShard("-1/3"), std::runtime_error);
  EXPECT_THROW(campaign::ParseShard("x/2"), std::runtime_error);
  EXPECT_THROW(campaign::ParseShard("1"), std::runtime_error);
  EXPECT_THROW(campaign::ParseShard("1/"), std::runtime_error);
  EXPECT_THROW(campaign::ParseShard("/3"), std::runtime_error);
  EXPECT_THROW(campaign::ParseShard(""), std::runtime_error);
}

TEST(CampaignSpec, ParseRejectsMalformedInput) {
  const auto parse = [](const std::string& text) {
    std::istringstream is(text);
    return campaign::ParseSpec(is);
  };
  EXPECT_THROW(parse("rates = 0,0.1\n"), std::runtime_error);  // missing app
  EXPECT_THROW(parse("app = fig6_1\n"), std::runtime_error);   // missing rates
  EXPECT_THROW(parse("app = fig6_1\nrates = 0\nbogus_key = 1\n"),
               std::runtime_error);
  EXPECT_THROW(parse("app = fig6_1\nrates = 0,zzz\n"), std::runtime_error);
  EXPECT_THROW(parse("app = fig6_1\nrates = 0\nmin_trials = 9\nbudget = 3\n"),
               std::runtime_error);
  // Shard selections that would own zero cells, and malformed i/N strings.
  EXPECT_THROW(parse("app = fig6_1\nrates = 0\nshard = 3/3\n"),
               std::runtime_error);
  EXPECT_THROW(parse("app = fig6_1\nrates = 0\nshard = 0/0\n"),
               std::runtime_error);
  EXPECT_THROW(parse("app = fig6_1\nrates = 0\nshard = x/2\n"),
               std::runtime_error);
  EXPECT_THROW(parse("app = fig6_1\nrates = 0\nshard = 1\n"),
               std::runtime_error);
}

TEST(CampaignSpec, ParseAcceptsCommentsAndSeriesLines) {
  std::istringstream is(
      "# a campaign\n"
      "app = fig6_1   # scenario key\n"
      "rates = 0, 0.1\n"
      "series = SGD+AS,SQS\n"
      "series = Base\n");
  const campaign::CampaignSpec spec = campaign::ParseSpec(is);
  EXPECT_EQ(spec.name, "fig6_1");  // defaults to the app
  ASSERT_EQ(spec.series.size(), 2u);
  EXPECT_EQ(spec.series[0], "SGD+AS,SQS");  // order preserved
  EXPECT_EQ(spec.fault_rates, (std::vector<double>{0.0, 0.1}));
}

TEST(CampaignRegistry, EveryEntryBuildsItsScenario) {
  ASSERT_FALSE(campaign::RegistryNames().empty());
  for (const std::string& name : campaign::RegistryNames()) {
    const campaign::CampaignSpec& spec = campaign::RegistrySpec(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.fault_rates.empty()) << name;
    const campaign::Scenario scenario = campaign::BuildScenario(spec);
    EXPECT_GE(scenario.series.size(), 2u) << name;
    EXPECT_FALSE(scenario.csv_name.empty()) << name;
  }
  EXPECT_EQ(campaign::FindRegistrySpec("no_such_campaign"), nullptr);
  EXPECT_THROW(campaign::RegistrySpec("no_such_campaign"), std::runtime_error);
}

TEST(CampaignScenario, SeriesSubsetSelectsAndReorders) {
  campaign::CampaignSpec spec = campaign::RegistrySpec("fig6_1");
  spec.series = {"SGD+AS,SQS", "Base"};
  const campaign::Scenario scenario = campaign::BuildScenario(spec);
  ASSERT_EQ(scenario.series.size(), 2u);
  EXPECT_EQ(scenario.series[0].name, "SGD+AS,SQS");
  EXPECT_EQ(scenario.series[1].name, "Base");
  spec.series = {"NoSuchSeries"};
  EXPECT_THROW(campaign::BuildScenario(spec), std::runtime_error);
}

// ---- the stopping rule ------------------------------------------------------

TEST(WilsonHalfWidth, MatchesClosedForm) {
  EXPECT_TRUE(std::isinf(campaign::WilsonHalfWidth(0, 0)));
  // p-hat = 1: half-width = z^2 / (2 (n + z^2)) with z = 1.96.
  EXPECT_NEAR(campaign::WilsonHalfWidth(8, 8), 0.16222, 1e-4);
  EXPECT_NEAR(campaign::WilsonHalfWidth(40, 40), 0.04381, 1e-4);
  // Symmetric in successes/failures.
  EXPECT_DOUBLE_EQ(campaign::WilsonHalfWidth(3, 10), campaign::WilsonHalfWidth(7, 10));
  // Tightens with n at fixed p-hat.
  EXPECT_LT(campaign::WilsonHalfWidth(50, 100), campaign::WilsonHalfWidth(5, 10));
}

TEST(CellController, StopsAtTheFirstQualifyingTrial) {
  campaign::AdaptiveConfig config;
  config.min_trials = 4;
  config.max_trials = 100;
  config.ci_half_width = 0.17;
  // All successes: half-width at p-hat = 1 crosses 0.17 at n = 8.
  campaign::CellController ctl(config);
  int n = 0;
  while (!ctl.done()) {
    ctl.Record(true);
    ++n;
  }
  EXPECT_EQ(n, 8);
  EXPECT_TRUE(ctl.settled());
  EXPECT_EQ(ctl.trials(), 8);
  EXPECT_EQ(ctl.successes(), 8);
}

TEST(CellController, RespectsFloorAndBudget) {
  campaign::AdaptiveConfig config;
  config.min_trials = 12;
  config.max_trials = 20;
  config.ci_half_width = 0.9;  // trivially met — but not before the floor
  campaign::CellController floor_ctl(config);
  int n = 0;
  while (!floor_ctl.done()) {
    floor_ctl.Record(true);
    ++n;
  }
  EXPECT_EQ(n, 12);
  EXPECT_TRUE(floor_ctl.settled());

  config.ci_half_width = 1e-6;  // unreachable: budget must cap the cell
  campaign::CellController cap_ctl(config);
  n = 0;
  while (!cap_ctl.done()) {
    cap_ctl.Record(n % 2 == 0);
    ++n;
  }
  EXPECT_EQ(n, 20);
  EXPECT_FALSE(cap_ctl.settled());
}

// ---- the runner: determinism contract ---------------------------------------

// A cheap deterministic stand-in for a real kernel: outcome is a pure
// function of (seed, fault_rate), success probability falling with rate.
harness::TrialFn SyntheticTrial() {
  return [](const core::FaultEnvironment& env) {
    std::uint64_t h = env.seed * 0x9E3779B97F4A7C15ull;
    std::uint64_t rate_bits = 0;
    std::memcpy(&rate_bits, &env.fault_rate, sizeof(rate_bits));
    h ^= rate_bits + 0xBF58476D1CE4E5B9ull + (h << 6) + (h >> 2);
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    h ^= h >> 31;
    harness::TrialOutcome out;
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    out.success = u > env.fault_rate * 1.6;
    out.metric = u;
    out.fpu_stats.faulty_flops = 100 + (h % 41);
    out.fpu_stats.faults_injected = h % 5;
    return out;
  };
}

campaign::CampaignSpec SyntheticSpec() {
  campaign::CampaignSpec spec;
  spec.name = "synthetic";
  spec.app = "synthetic";
  spec.fault_rates = {0.0, 0.3, 0.62};
  spec.fixed_trials = 30;
  spec.max_trials = 30;
  spec.min_trials = 4;
  spec.batch = 8;
  spec.ci_half_width = 0.2;
  spec.base_seed = 977;
  return spec;
}

campaign::Scenario SyntheticScenario() {
  campaign::Scenario scenario;
  scenario.app = "synthetic";
  scenario.title = "synthetic";
  scenario.value = harness::TableValue::kSuccessRatePct;
  scenario.value_label = "success rate (%)";
  scenario.csv_name = "synthetic.csv";
  scenario.series = {{"A", SyntheticTrial()}, {"B", SyntheticTrial()}};
  return scenario;
}

std::string CampaignCsvBytes(const campaign::CampaignResult& result,
                             const std::string& tag) {
  const std::string path = ::testing::TempDir() + "/robustify_campaign_" + tag + ".csv";
  harness::WriteSweepCsv(path, result.series);
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

// The adaptive run of a cell is an exact prefix of the fixed run: same
// seeds, same outcomes, stopped at the deterministic point.
TEST(Campaign, AdaptiveCellsArePrefixesOfTheFixedSweep) {
  const campaign::CampaignSpec spec = SyntheticSpec();
  const campaign::Scenario scenario = SyntheticScenario();

  campaign::RunnerOptions fixed;
  fixed.threads = 1;
  fixed.adaptive = false;
  const campaign::CampaignResult full =
      campaign::RunCampaign(spec, scenario, fixed);

  campaign::RunnerOptions adaptive;
  adaptive.threads = 1;
  const campaign::CampaignResult adaptive_result =
      campaign::RunCampaign(spec, scenario, adaptive);

  ASSERT_EQ(adaptive_result.series.size(), full.series.size());
  for (std::size_t s = 0; s < full.series.size(); ++s) {
    for (std::size_t r = 0; r < full.series[s].points.size(); ++r) {
      const harness::TrialSummary& a = adaptive_result.series[s].points[r].summary;
      const harness::TrialSummary& f = full.series[s].points[r].summary;
      ASSERT_LE(a.trials, f.trials);
      // Re-run the prefix directly to confirm outcome-level identity.
      std::vector<harness::TrialOutcome> prefix;
      core::FaultEnvironment env;
      env.fault_rate = spec.fault_rates[r];
      env.seed = spec.base_seed;
      for (int t = 0; t < a.trials; ++t) {
        prefix.push_back(harness::RunSingleTrial(scenario.series[s].fn, env, t));
      }
      const harness::TrialSummary expect = harness::SummarizeOutcomes(prefix);
      EXPECT_EQ(a.successes, expect.successes);
      EXPECT_EQ(a.median_metric, expect.median_metric);
      EXPECT_EQ(a.mean_metric, expect.mean_metric);
      EXPECT_EQ(a.mean_faulty_flops, expect.mean_faulty_flops);
    }
  }
  EXPECT_LT(adaptive_result.total_trials, full.total_trials);
}

TEST(Campaign, CsvByteIdenticalAcrossThreadsAndBatches) {
  campaign::CampaignSpec spec = SyntheticSpec();
  const campaign::Scenario scenario = SyntheticScenario();

  campaign::RunnerOptions options;
  options.threads = 1;
  spec.batch = 8;
  const std::string reference =
      CampaignCsvBytes(campaign::RunCampaign(spec, scenario, options), "ref");
  EXPECT_FALSE(reference.empty());

  for (const int threads : {2, 8}) {
    for (const int batch : {1, 3, 32}) {
      options.threads = threads;
      spec.batch = batch;
      const std::string got = CampaignCsvBytes(
          campaign::RunCampaign(spec, scenario, options),
          "t" + std::to_string(threads) + "b" + std::to_string(batch));
      EXPECT_EQ(got, reference) << threads << " threads, batch " << batch;
    }
  }
}

// ---- the runner: kill/resume contract ---------------------------------------

// Simulates a kill by truncating the journal to a prefix (including a torn
// final line) and resuming: the final CSV must be byte-identical to the
// uninterrupted run's.
TEST(Campaign, ResumeFromTruncatedJournalIsByteIdentical) {
  const campaign::CampaignSpec spec = SyntheticSpec();
  const campaign::Scenario scenario = SyntheticScenario();
  const std::string journal = ::testing::TempDir() + "/robustify_resume.journal";

  campaign::RunnerOptions options;
  options.threads = 2;
  options.journal_path = journal;
  const std::string uninterrupted =
      CampaignCsvBytes(campaign::RunCampaign(spec, scenario, options), "full");

  // Read the completed journal once; replay increasingly short prefixes.
  std::ifstream in(journal);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  in.close();
  ASSERT_GT(lines.size(), 20u);

  for (const std::size_t keep : {lines.size() / 4, lines.size() / 2, 1ul}) {
    {
      std::ofstream out(journal, std::ios::trunc);
      for (std::size_t i = 0; i < keep; ++i) out << lines[i] << "\n";
      out << "t 1 2 9 1 0x1.8p+1 12";  // torn mid-write: no trailing fields
    }
    campaign::RunnerOptions resume = options;
    resume.resume = true;
    const campaign::CampaignResult result =
        campaign::RunCampaign(spec, scenario, resume);
    EXPECT_EQ(CampaignCsvBytes(result, "resume" + std::to_string(keep)),
              uninterrupted)
        << "resumed from " << keep << " journal lines";
    if (keep > 1) EXPECT_GT(result.resumed_trials, 0);
  }
  std::remove(journal.c_str());
}

TEST(Campaign, ResumeRejectsMismatchedSpec) {
  campaign::CampaignSpec spec = SyntheticSpec();
  const campaign::Scenario scenario = SyntheticScenario();
  const std::string journal = ::testing::TempDir() + "/robustify_mismatch.journal";

  campaign::RunnerOptions options;
  options.threads = 1;
  options.journal_path = journal;
  campaign::RunCampaign(spec, scenario, options);

  spec.fault_rates.push_back(0.9);  // different axis, same journal
  options.resume = true;
  EXPECT_THROW(campaign::RunCampaign(spec, scenario, options), std::runtime_error);

  options.journal_path = ::testing::TempDir() + "/robustify_absent.journal";
  EXPECT_THROW(campaign::RunCampaign(spec, scenario, options), std::runtime_error);
  std::remove(journal.c_str());
}

// ---- golden comparison on the real figures ----------------------------------
//
// Acceptance contract: an adaptive campaign reproduces the fixed-budget
// success rate of every cell within the statistical tolerance of the two
// estimates (their Wilson half-widths; the adaptive tallies are an exact
// prefix of the fixed ones, so this is the whole discrepancy bound).  Axes
// and series are reduced to keep the suite fast; the full-axis version of
// the same comparison is what the committed perf JSONs measure.

void GoldenCompare(const std::string& fig, std::vector<double> rates,
                   std::vector<std::string> series, int budget, double ci) {
  campaign::CampaignSpec spec = campaign::RegistrySpec(fig);
  spec.fault_rates = std::move(rates);
  spec.series = std::move(series);
  spec.fixed_trials = budget;
  spec.max_trials = budget;
  spec.ci_half_width = ci;
  const campaign::Scenario scenario = campaign::BuildScenario(spec);

  campaign::RunnerOptions fixed;
  fixed.adaptive = false;
  const campaign::CampaignResult full = campaign::RunCampaign(spec, scenario, fixed);

  campaign::RunnerOptions adaptive;
  const campaign::CampaignResult adapt = campaign::RunCampaign(spec, scenario, adaptive);

  for (std::size_t s = 0; s < full.series.size(); ++s) {
    for (std::size_t r = 0; r < full.series[s].points.size(); ++r) {
      const harness::TrialSummary& f = full.series[s].points[r].summary;
      const harness::TrialSummary& a = adapt.series[s].points[r].summary;
      const double tolerance =
          campaign::WilsonHalfWidth(a.successes, a.trials) +
          campaign::WilsonHalfWidth(f.successes, f.trials);
      EXPECT_LE(std::abs(a.success_rate_pct - f.success_rate_pct) / 100.0,
                tolerance)
          << fig << " series " << full.series[s].name << " rate "
          << full.series[s].points[r].fault_rate << ": adaptive "
          << a.success_rate_pct << "% over " << a.trials << " trials vs fixed "
          << f.success_rate_pct << "% over " << f.trials;
    }
  }
  EXPECT_LE(adapt.total_trials, full.total_trials);
}

TEST(CampaignGolden, Fig61AdaptiveMatchesFixedWithinCi) {
  GoldenCompare("fig6_1", {0.0, 0.05, 0.3}, {"Base", "SGD+AS,SQS"}, 16, 0.2);
}

TEST(CampaignGolden, Fig62AdaptiveMatchesFixedWithinCi) {
  GoldenCompare("fig6_2", {0.0, 1e-3, 0.05}, {}, 16, 0.2);
}

TEST(CampaignGolden, Fig66AdaptiveMatchesFixedWithinCi) {
  GoldenCompare("fig6_6", {0.0, 1e-3, 1e-1}, {}, 16, 0.2);
}

}  // namespace
