// Flight-recorder telemetry: the observe-only contract and the registry.
//
// The load-bearing guarantees:
//   * sweep and campaign CSVs are byte-identical with counters disabled,
//     enabled, and with full tracing on, at any thread count — telemetry
//     never consumes simulation RNG or reorders a fault stream;
//   * counter totals are a pure function of the work performed, so they are
//     thread-count independent (shards merge losslessly across the pool
//     workers' exits);
//   * the injector counters agree exactly with the ContextStats that feed
//     the published CSVs;
//   * WriteTrace emits well-formed Chrome trace JSON (balanced B/E pairs —
//     tools/trace_validate.py enforces the same invariants in CI).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "apps/configs.h"
#include "apps/sort_app.h"
#include "campaign/runner.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"
#include "core/fault_env.h"
#include "harness/csv.h"
#include "harness/parallel.h"
#include "harness/sweep.h"
#include "linalg/scalar.h"
#include "service/query_service.h"
#include "store/result_store.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace {

using namespace robustify;

harness::TrialFn SortTrial() {
  return [](const core::FaultEnvironment& base) {
    core::FaultEnvironment env = base;
    std::mt19937_64 rng(env.seed * 7919);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    std::vector<double> input(4);
    for (double& v : input) v = dist(rng);
    apps::LpSolveConfig config = apps::SortSgdAsSqs();
    config.sgd.iterations = 150;
    harness::TrialOutcome out;
    const apps::RobustSortResult r = core::WithFaultyFpu(
        env, [&] { return apps::RobustSort<faulty::Real>(input, config); },
        &out.fpu_stats);
    out.success = r.valid && apps::IsSortedCopyOf(r.output, input);
    out.metric = static_cast<double>(out.fpu_stats.faults_injected);
    return out;
  };
}

harness::SweepConfig SmallSweep(int threads) {
  harness::SweepConfig config;
  config.fault_rates = {0.0, 0.05};
  config.trials = 4;
  config.base_seed = 77;
  config.threads = threads;
  return config;
}

std::string CsvBytes(const std::vector<harness::Series>& series,
                     const std::string& tag) {
  const std::string path =
      ::testing::TempDir() + "/robustify_telemetry_" + tag + ".csv";
  harness::WriteSweepCsv(path, series);
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

std::string SweepCsvBytes(int threads, const std::string& tag) {
  const auto series = harness::RunFaultRateSweep(
      SmallSweep(threads), {{"SGD+AS,SQS", SortTrial()}});
  return CsvBytes(series, tag);
}

// Small adaptive campaign (the cli-smoke shape): fig6_6 on a reduced axis.
std::string CampaignCsvBytes(int threads, const std::string& tag) {
  campaign::CampaignSpec spec = campaign::RegistrySpec("fig6_6");
  spec.fault_rates = {0.0, 1e-3};
  spec.max_trials = 6;
  spec.min_trials = 2;
  spec.ci_half_width = 0.2;
  const campaign::Scenario scenario = campaign::BuildScenario(spec);
  campaign::RunnerOptions options;
  options.threads = threads;
  const campaign::CampaignResult result =
      campaign::RunCampaign(spec, scenario, options);
  return CsvBytes(result.series, tag);
}

// Telemetry must be observe-only: identical CSV bytes with counters off,
// counters on, and full span tracing, across thread counts.
TEST(Telemetry, SweepCsvInvariantUnderTelemetryStateAndThreads) {
  telemetry::SetCountersEnabled(false);
  const std::string off_t1 = SweepCsvBytes(1, "off_t1");
  telemetry::SetCountersEnabled(true);
  const std::string on_t1 = SweepCsvBytes(1, "on_t1");
  const std::string on_t2 = SweepCsvBytes(2, "on_t2");
  const std::string on_t8 = SweepCsvBytes(8, "on_t8");
#if ROBUSTIFY_TELEMETRY_ENABLED
  telemetry::StartTracing();
  const std::string traced_t8 = SweepCsvBytes(8, "traced_t8");
  telemetry::StopTracing();
  EXPECT_EQ(off_t1, traced_t8);
#endif
  EXPECT_FALSE(off_t1.empty());
  EXPECT_EQ(off_t1, on_t1);
  EXPECT_EQ(off_t1, on_t2);
  EXPECT_EQ(off_t1, on_t8);
}

TEST(Telemetry, CampaignCsvInvariantUnderTelemetryStateAndThreads) {
  telemetry::SetCountersEnabled(false);
  const std::string off_t1 = CampaignCsvBytes(1, "c_off_t1");
  telemetry::SetCountersEnabled(true);
  const std::string on_t1 = CampaignCsvBytes(1, "c_on_t1");
  const std::string on_t8 = CampaignCsvBytes(8, "c_on_t8");
#if ROBUSTIFY_TELEMETRY_ENABLED
  telemetry::StartTracing();
  const std::string traced_t8 = CampaignCsvBytes(8, "c_traced_t8");
  telemetry::StopTracing();
  EXPECT_EQ(off_t1, traced_t8);
#endif
  EXPECT_FALSE(off_t1.empty());
  EXPECT_EQ(off_t1, on_t1);
  EXPECT_EQ(off_t1, on_t8);
}

#if ROBUSTIFY_TELEMETRY_ENABLED

// Counter totals must not depend on how the grid was fanned out: the
// per-thread shards (including those of exited pool workers) merge to the
// same totals for 1 and 8 threads.
TEST(Telemetry, CounterTotalsThreadCountInvariant) {
  telemetry::SetCountersEnabled(true);
  telemetry::ResetCounters();
  SweepCsvBytes(1, "inv_t1");
  const telemetry::CounterSnapshot one = telemetry::SnapshotCounters();

  telemetry::ResetCounters();
  SweepCsvBytes(8, "inv_t8");
  const telemetry::CounterSnapshot eight = telemetry::SnapshotCounters();

  EXPECT_GT(one.value(telemetry::Counter::kInjectorScopes), 0u);
  EXPECT_GT(one.value(telemetry::Counter::kInjectorFlops), 0u);
  EXPECT_GT(one.value(telemetry::Counter::kSgdSolves), 0u);
  for (int c = 0; c < telemetry::kNumCounters; ++c) {
    EXPECT_EQ(one.counters[c], eight.counters[c])
        << "counter " << telemetry::CounterName(static_cast<telemetry::Counter>(c));
  }
  for (int h = 0; h < telemetry::kNumHistograms; ++h) {
    for (int b = 0; b < telemetry::kHistogramBuckets; ++b) {
      EXPECT_EQ(one.histograms[h][b], eight.histograms[h][b])
          << telemetry::HistogramName(static_cast<telemetry::Histogram>(h))
          << " bucket " << b;
    }
  }
}

// The fault-model and guard counters (faults by op class, windows opened,
// guard-trip verdicts) obey the same shard-merge contract as the rest: a
// sticky-model sweep under tight guard budgets produces identical totals at
// every thread count, and actually exercises each new counter.
TEST(Telemetry, ModelAndGuardCountersThreadCountInvariant) {
  telemetry::SetCountersEnabled(true);
  const auto run = [](int threads) {
    harness::SweepConfig config = SmallSweep(threads);
    config.fault_rates = {0.05, 0.25};
    config.trials = 8;
    config.model.temporal = faulty::Temporal::kStuckAt;
    config.guard.max_iterations = 5;  // trips long before SGD converges
    config.guard.nonfinite_bailout = true;
    telemetry::ResetCounters();
    harness::RunFaultRateSweep(config, {{"SGD+AS,SQS", SortTrial()}});
    return telemetry::SnapshotCounters();
  };
  const telemetry::CounterSnapshot one = run(1);
  const telemetry::CounterSnapshot eight = run(8);
  EXPECT_GT(one.value(telemetry::Counter::kInjectorFaultsArith), 0u);
  EXPECT_GT(one.value(telemetry::Counter::kInjectorWindows), 0u);
  EXPECT_GT(one.value(telemetry::Counter::kTrialsBudgetExhausted), 0u);
  for (int c = 0; c < telemetry::kNumCounters; ++c) {
    EXPECT_EQ(one.counters[c], eight.counters[c])
        << "counter " << telemetry::CounterName(static_cast<telemetry::Counter>(c));
  }
}

// The injector counters are fed from the same ContextStats that the CSVs
// publish — they must agree exactly.
TEST(Telemetry, InjectorCountersMatchContextStats) {
  telemetry::SetCountersEnabled(true);
  telemetry::ResetCounters();
  core::FaultEnvironment env;
  env.fault_rate = 0.01;
  env.seed = 123;
  // The closing histogram assertion is a law of the skip-ahead transient
  // path specifically (the per-op oracle draws no gaps to observe, and a
  // sticky window counts many forced faults per sampled gap), so pin both
  // against the ROBUSTIFY_INJECTOR / ROBUSTIFY_FAULT_MODEL CI legs.
  env.strategy = faulty::FaultInjector::Strategy::kSkipAhead;
  env.model.temporal = faulty::Temporal::kTransient;
  faulty::ContextStats stats;
  core::WithFaultyFpu(
      env,
      [] {
        faulty::Real acc(0.0);
        for (int i = 0; i < 50000; ++i) acc = acc + faulty::Real(1.0);
        return linalg::AsDouble(acc);
      },
      &stats);
  const telemetry::CounterSnapshot snap = telemetry::SnapshotCounters();
  EXPECT_EQ(snap.value(telemetry::Counter::kInjectorScopes), 1u);
  EXPECT_EQ(snap.value(telemetry::Counter::kInjectorFlops), stats.faulty_flops);
  EXPECT_EQ(snap.value(telemetry::Counter::kInjectorFaults), stats.faults_injected);
  EXPECT_GT(stats.faults_injected, 0u);
  // Every sampled gap lands one clean-run observation; rate-0/rate-1 paths
  // aside, faults and gap observations track each other 1:1 here.
  EXPECT_EQ(snap.histogram_total(telemetry::Histogram::kInjectorCleanRun),
            stats.faults_injected);
}

TEST(Telemetry, HistogramBucketsAreLog2) {
  telemetry::SetCountersEnabled(true);
  telemetry::ResetCounters();
  const auto h = telemetry::Histogram::kCampaignTrialsToStop;
  telemetry::Observe(h, 0);    // bucket 0
  telemetry::Observe(h, 1);    // bucket 1: [1, 2)
  telemetry::Observe(h, 2);    // bucket 2: [2, 4)
  telemetry::Observe(h, 3);    // bucket 2
  telemetry::Observe(h, 4);    // bucket 3: [4, 8)
  telemetry::Observe(h, 255);  // bucket 8: [128, 256)
  telemetry::Observe(h, 256);  // bucket 9: [256, 512)
  const telemetry::CounterSnapshot snap = telemetry::SnapshotCounters();
  const int hi = static_cast<int>(h);
  EXPECT_EQ(snap.histograms[hi][0], 1u);
  EXPECT_EQ(snap.histograms[hi][1], 1u);
  EXPECT_EQ(snap.histograms[hi][2], 2u);
  EXPECT_EQ(snap.histograms[hi][3], 1u);
  EXPECT_EQ(snap.histograms[hi][8], 1u);
  EXPECT_EQ(snap.histograms[hi][9], 1u);
  EXPECT_EQ(snap.histogram_total(h), 7u);
  EXPECT_EQ(telemetry::HistogramBucketLowerBound(0), 0u);
  EXPECT_EQ(telemetry::HistogramBucketLowerBound(1), 1u);
  EXPECT_EQ(telemetry::HistogramBucketLowerBound(9), 256u);
}

// Shards of exited threads fold into the retired totals: counts made on
// short-lived pool workers must survive the workers.
TEST(Telemetry, RegistryMergesRetiredWorkerShards) {
  telemetry::SetCountersEnabled(true);
  telemetry::ResetCounters();
  constexpr int kUnits = 64;
  harness::ParallelFor(kUnits, 4, [](int) {
    telemetry::Count(telemetry::Counter::kCampaignTrials, 3);
  });
  // The pool is created and joined inside ParallelFor, so every worker
  // shard has retired by now.
  const telemetry::CounterSnapshot snap = telemetry::SnapshotCounters();
  EXPECT_EQ(snap.value(telemetry::Counter::kCampaignTrials),
            static_cast<std::uint64_t>(kUnits) * 3u);
}

// The result-store counters obey the same contracts as the rest: every one
// of store.{hits,misses,fresh_trials,ingested_cells} fires on the
// run → ingest → query pipeline, and the totals are identical whether the
// store-filling campaign ran on 1 worker or 8 (fresh query trials are
// serial on the calling thread; the campaign is the only fanned-out stage).
TEST(Telemetry, StoreCountersNonzeroAndThreadCountInvariant) {
  telemetry::SetCountersEnabled(true);
  const auto trial = [](const core::FaultEnvironment& env) {
    std::uint64_t h = env.seed * 0x9E3779B97F4A7C15ull;
    std::uint64_t rate_bits = 0;
    std::memcpy(&rate_bits, &env.fault_rate, sizeof(rate_bits));
    h ^= rate_bits + 0xBF58476D1CE4E5B9ull + (h << 6) + (h >> 2);
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h ^= h >> 31;
    harness::TrialOutcome out;
    out.success = static_cast<double>(h >> 11) * 0x1.0p-53 > env.fault_rate;
    out.metric = 0.0;
    return out;
  };
  const auto run = [&](int threads) {
    const std::string base = ::testing::TempDir() + "/robustify_store_counters_t" +
                             std::to_string(threads);
    std::filesystem::remove_all(base);
    campaign::CampaignSpec spec;
    spec.name = spec.app = "store_counters";
    spec.fault_rates = {0.2, 0.45, 0.7};
    spec.min_trials = 4;
    spec.max_trials = 12;
    spec.ci_half_width = 0.3;
    spec.base_seed = 4242;
    campaign::Scenario scenario;
    scenario.app = "store_counters";
    scenario.series = {{"A", trial}, {"B", trial}};

    telemetry::ResetCounters();
    campaign::RunnerOptions options;
    options.threads = threads;
    options.journal_path = base + ".journal";
    campaign::RunCampaign(spec, scenario, options);

    store::ResultStore result_store(base + ".store");
    result_store.IngestJournal(spec, base + ".journal");

    service::QueryService service_engine(&result_store);
    service_engine.RegisterSpec(spec, scenario);
    service::Query query;
    query.app = "store_counters";
    query.series = "A";
    query.rate = 0.45;
    query.ci = 0.4;  // looser than stored — a hit
    EXPECT_EQ(service_engine.Handle(query).source, "cache");
    query.ci = 0.18;  // tighter than stored — miss, fresh trials, write-back
    const service::Answer fresh = service_engine.Handle(query);
    EXPECT_EQ(fresh.source, "fresh-trials");
    EXPECT_GT(fresh.fresh_trials, 0);
    // Repeat at the same ci: served from the extended cell, zero trials.
    const service::Answer repeat = service_engine.Handle(query);
    EXPECT_EQ(repeat.source, "cache");
    EXPECT_EQ(repeat.fresh_trials, 0);
    EXPECT_EQ(repeat.success_rate, fresh.success_rate);
    EXPECT_EQ(repeat.half_width, fresh.half_width);

    const telemetry::CounterSnapshot snap = telemetry::SnapshotCounters();
    std::filesystem::remove_all(base + ".store");
    std::filesystem::remove((base + ".journal").c_str());
    return snap;
  };

  const telemetry::CounterSnapshot one = run(1);
  const telemetry::CounterSnapshot eight = run(8);
  EXPECT_GT(one.value(telemetry::Counter::kStoreHits), 0u);
  EXPECT_GT(one.value(telemetry::Counter::kStoreMisses), 0u);
  EXPECT_GT(one.value(telemetry::Counter::kStoreFreshTrials), 0u);
  EXPECT_GT(one.value(telemetry::Counter::kStoreIngestedCells), 0u);
  for (int c = 0; c < telemetry::kNumCounters; ++c) {
    EXPECT_EQ(one.counters[c], eight.counters[c])
        << "counter " << telemetry::CounterName(static_cast<telemetry::Counter>(c));
  }
}

TEST(Telemetry, WriteTraceEmitsBalancedChromeJson) {
  telemetry::SetCountersEnabled(true);
  telemetry::StartTracing();
  SweepCsvBytes(2, "trace");
  {
    // One query against an empty store: Handle() opens the `query` span on
    // every path, so even this error answer must appear in the trace.
    store::ResultStore result_store(::testing::TempDir() +
                                    "/robustify_trace_store");
    service::QueryService service_engine(&result_store);
    service::Query query;
    query.app = "no_such_app";
    query.series = "A";
    query.rate = 0.1;
    EXPECT_FALSE(service_engine.Handle(query).ok);
  }
  const std::string path = ::testing::TempDir() + "/robustify_trace_test.json";
  ASSERT_TRUE(telemetry::WriteTrace(path));
  EXPECT_FALSE(telemetry::TracingActive());  // the writer stops collection

  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  const std::string json = buffer.str();
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"sweep\""), std::string::npos);
  EXPECT_NE(json.find("\"trial\""), std::string::npos);
  EXPECT_NE(json.find("\"solve.sgd\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"query\""), std::string::npos);

  // Balanced B/E pairs: the writer's repair pass guarantees it even when a
  // ring overwrote its oldest events.
  std::size_t begins = 0, ends = 0, pos = 0;
  while ((pos = json.find("\"ph\": \"B\"", pos)) != std::string::npos) {
    ++begins;
    pos += 1;
  }
  pos = 0;
  while ((pos = json.find("\"ph\": \"E\"", pos)) != std::string::npos) {
    ++ends;
    pos += 1;
  }
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
}

#else  // telemetry compiled out: the API must still compile and no-op

TEST(Telemetry, CompiledOutApiIsInert) {
  telemetry::Count(telemetry::Counter::kInjectorFaults, 5);
  telemetry::Observe(telemetry::Histogram::kInjectorCleanRun, 42);
  telemetry::SpanScope span("trial");
  EXPECT_FALSE(telemetry::TracingActive());
  EXPECT_FALSE(telemetry::CountersEnabled());
  const telemetry::CounterSnapshot snap = telemetry::SnapshotCounters();
  for (int c = 0; c < telemetry::kNumCounters; ++c) {
    EXPECT_EQ(snap.counters[c], 0u);
  }
}

#endif  // ROBUSTIFY_TELEMETRY_ENABLED

}  // namespace
