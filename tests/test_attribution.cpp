// Wall-time attribution ledger: the self/total accounting contract.
//
// Load-bearing guarantees:
//   * per (thread, category): self <= total, and each thread's self times
//     sum to exactly its root span's total — every instant inside the root
//     is attributed to exactly one innermost span (the ISSUE's "child
//     self-times sum to <= parent total" holds with equality per thread);
//   * sweep and campaign CSVs are byte-identical with attribution off and
//     on, at threads 1/2/8 — the ledger observes, it never participates;
//   * attribution is off by default and costs nothing until enabled;
//   * compiled out (-DROBUSTIFY_TELEMETRY=OFF) the whole API is inert.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "apps/configs.h"
#include "apps/sort_app.h"
#include "campaign/runner.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"
#include "core/fault_env.h"
#include "harness/csv.h"
#include "harness/sweep.h"
#include "telemetry/attribution.h"
#include "telemetry/trace.h"

namespace {

using namespace robustify;

harness::TrialFn SortTrial() {
  return [](const core::FaultEnvironment& base) {
    core::FaultEnvironment env = base;
    std::mt19937_64 rng(env.seed * 7919);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    std::vector<double> input(4);
    for (double& v : input) v = dist(rng);
    apps::LpSolveConfig config = apps::SortSgdAsSqs();
    config.sgd.iterations = 150;
    harness::TrialOutcome out;
    const apps::RobustSortResult r = core::WithFaultyFpu(
        env, [&] { return apps::RobustSort<faulty::Real>(input, config); },
        &out.fpu_stats);
    out.success = r.valid && apps::IsSortedCopyOf(r.output, input);
    out.metric = static_cast<double>(out.fpu_stats.faults_injected);
    return out;
  };
}

std::string CsvBytes(const std::vector<harness::Series>& series,
                     const std::string& tag) {
  const std::string path =
      ::testing::TempDir() + "/robustify_attr_" + tag + ".csv";
  harness::WriteSweepCsv(path, series);
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

std::string SweepCsvBytes(int threads, const std::string& tag) {
  harness::SweepConfig config;
  config.fault_rates = {0.0, 0.05};
  config.trials = 4;
  config.base_seed = 77;
  config.threads = threads;
  const auto series =
      harness::RunFaultRateSweep(config, {{"SGD+AS,SQS", SortTrial()}});
  return CsvBytes(series, tag);
}

std::string CampaignCsvBytes(int threads, const std::string& tag) {
  campaign::CampaignSpec spec = campaign::RegistrySpec("fig6_6");
  spec.fault_rates = {0.0, 1e-3};
  spec.max_trials = 6;
  spec.min_trials = 2;
  spec.ci_half_width = 0.2;
  const campaign::Scenario scenario = campaign::BuildScenario(spec);
  campaign::RunnerOptions options;
  options.threads = threads;
  const campaign::CampaignResult result =
      campaign::RunCampaign(spec, scenario, options);
  return CsvBytes(result.series, tag);
}

// The ledger must never change published bytes, enabled or not, at any
// thread count.
TEST(Attribution, SweepCsvInvariantUnderAttributionAndThreads) {
  telemetry::SetAttributionEnabled(false);
  const std::string off_t1 = SweepCsvBytes(1, "off_t1");
  telemetry::SetAttributionEnabled(true);
  const std::string on_t1 = SweepCsvBytes(1, "on_t1");
  const std::string on_t2 = SweepCsvBytes(2, "on_t2");
  const std::string on_t8 = SweepCsvBytes(8, "on_t8");
  telemetry::SetAttributionEnabled(false);
  EXPECT_FALSE(off_t1.empty());
  EXPECT_EQ(off_t1, on_t1);
  EXPECT_EQ(off_t1, on_t2);
  EXPECT_EQ(off_t1, on_t8);
}

TEST(Attribution, CampaignCsvInvariantUnderAttributionAndThreads) {
  telemetry::SetAttributionEnabled(false);
  const std::string off_t1 = CampaignCsvBytes(1, "c_off_t1");
  telemetry::SetAttributionEnabled(true);
  const std::string on_t1 = CampaignCsvBytes(1, "c_on_t1");
  const std::string on_t2 = CampaignCsvBytes(2, "c_on_t2");
  const std::string on_t8 = CampaignCsvBytes(8, "c_on_t8");
  telemetry::SetAttributionEnabled(false);
  EXPECT_FALSE(off_t1.empty());
  EXPECT_EQ(off_t1, on_t1);
  EXPECT_EQ(off_t1, on_t2);
  EXPECT_EQ(off_t1, on_t8);
}

#if ROBUSTIFY_TELEMETRY_ENABLED

TEST(Attribution, DisabledByDefaultAndSnapshotEmptyUntilEnabled) {
  // Whatever earlier tests did, a reset + disabled state observes nothing.
  telemetry::SetAttributionEnabled(false);
  telemetry::ResetAttribution();
  EXPECT_FALSE(telemetry::AttributionActive());
  { telemetry::SpanScope span("sweep"); }
  const telemetry::AttributionSnapshot snapshot =
      telemetry::SnapshotAttribution();
  for (const auto& ledger : snapshot.threads) {
    for (int c = 0; c < telemetry::kNumAttrCategories; ++c) {
      EXPECT_EQ(ledger.totals[c].count, 0u);
      EXPECT_EQ(ledger.totals[c].total_ns, 0u);
    }
  }
}

// Nested spans on one thread: self + child == total for the parent, child
// totals never exceed the parent's, recursion counts the outermost span
// only, and every category keeps self <= total.
TEST(Attribution, SelfTotalHierarchyOnNestedSpans) {
  telemetry::ResetAttribution();
  telemetry::SetAttributionEnabled(true);
  {
    telemetry::SpanScope campaign("campaign");
    for (int i = 0; i < 2; ++i) {
      telemetry::SpanScope cell("cell");
      telemetry::SpanScope trial("trial");  // nested distinct categories
      volatile double x = 1.0;
      for (int k = 0; k < 50000; ++k) x = x * 1.0000001 + 1e-9;
    }
    {
      telemetry::SpanScope outer("cell");
      telemetry::SpanScope inner("cell");  // recursion: outermost only
    }
  }
  telemetry::SetAttributionEnabled(false);
  const telemetry::AttributionSnapshot snapshot =
      telemetry::SnapshotAttribution();

  const telemetry::AttrTotals& campaign =
      snapshot.total(telemetry::AttrCategory::kCampaign);
  const telemetry::AttrTotals& cell =
      snapshot.total(telemetry::AttrCategory::kCell);
  const telemetry::AttrTotals& trial =
      snapshot.total(telemetry::AttrCategory::kTrial);

  EXPECT_EQ(campaign.count, 1u);
  EXPECT_EQ(cell.count, 3u);  // two loop cells + one outermost recursive cell
  EXPECT_EQ(trial.count, 2u);
  EXPECT_GT(campaign.total_ns, 0u);

  // Child totals fit inside the parent; self <= total everywhere.
  EXPECT_LE(cell.total_ns, campaign.total_ns);
  EXPECT_LE(trial.total_ns, cell.total_ns);
  for (int c = 0; c < telemetry::kNumAttrCategories; ++c) {
    EXPECT_LE(snapshot.merged[c].self_ns, snapshot.merged[c].total_ns);
  }
  // The root's time decomposes exactly into the self times of the tree:
  // every instant belongs to exactly one innermost span.
  std::uint64_t self_sum = 0;
  for (int c = 0; c < telemetry::kNumAttrCategories; ++c) {
    self_sum += snapshot.merged[c].self_ns;
  }
  EXPECT_EQ(self_sum, campaign.total_ns);
}

// A real threaded campaign: per-thread ledgers each decompose exactly —
// the thread's self times sum to its root category's total (campaign on
// the submitting thread, cell on the workers), which is the strong form of
// "child self-times sum to <= parent total".
TEST(Attribution, CampaignDecomposesPerThread) {
  telemetry::ResetAttribution();
  telemetry::SetAttributionEnabled(true);
  CampaignCsvBytes(8, "decomp_t8");
  telemetry::SetAttributionEnabled(false);
  const telemetry::AttributionSnapshot snapshot =
      telemetry::SnapshotAttribution();

  ASSERT_FALSE(snapshot.threads.empty());
  EXPECT_EQ(snapshot.total(telemetry::AttrCategory::kCampaign).count, 1u);
  EXPECT_GT(snapshot.total(telemetry::AttrCategory::kCell).count, 0u);
  EXPECT_GT(snapshot.total(telemetry::AttrCategory::kTrial).count, 0u);

  for (const auto& ledger : snapshot.threads) {
    std::uint64_t self_sum = 0;
    std::uint64_t root_total = 0;
    for (int c = 0; c < telemetry::kNumAttrCategories; ++c) {
      EXPECT_LE(ledger.totals[c].self_ns, ledger.totals[c].total_ns)
          << "tid " << ledger.tid << " category "
          << telemetry::AttrCategoryName(
                 static_cast<telemetry::AttrCategory>(c));
      self_sum += ledger.totals[c].self_ns;
      // The thread's root category is the one whose spans enclose all its
      // others; its total is the per-thread maximum.
      if (ledger.totals[c].total_ns > root_total) {
        root_total = ledger.totals[c].total_ns;
      }
    }
    EXPECT_EQ(self_sum, root_total) << "tid " << ledger.tid;
  }

  // Merged view sums the per-thread ledgers.
  for (int c = 0; c < telemetry::kNumAttrCategories; ++c) {
    std::uint64_t total = 0, self = 0, count = 0;
    for (const auto& ledger : snapshot.threads) {
      total += ledger.totals[c].total_ns;
      self += ledger.totals[c].self_ns;
      count += ledger.totals[c].count;
    }
    EXPECT_EQ(snapshot.merged[c].total_ns, total);
    EXPECT_EQ(snapshot.merged[c].self_ns, self);
    EXPECT_EQ(snapshot.merged[c].count, count);
  }
}

TEST(Attribution, ResetClearsEveryLedger) {
  telemetry::ResetAttribution();
  telemetry::SetAttributionEnabled(true);
  SweepCsvBytes(2, "reset_t2");
  telemetry::SetAttributionEnabled(false);
  EXPECT_GT(telemetry::SnapshotAttribution()
                .total(telemetry::AttrCategory::kSweep)
                .count,
            0u);
  telemetry::ResetAttribution();
  const telemetry::AttributionSnapshot snapshot =
      telemetry::SnapshotAttribution();
  for (const auto& ledger : snapshot.threads) {
    for (int c = 0; c < telemetry::kNumAttrCategories; ++c) {
      EXPECT_EQ(ledger.totals[c].count, 0u);
      EXPECT_EQ(ledger.totals[c].total_ns, 0u);
      EXPECT_EQ(ledger.totals[c].self_ns, 0u);
    }
  }
}

TEST(Attribution, ReportFormatAndFileWriter) {
  telemetry::ResetAttribution();
  telemetry::SetAttributionEnabled(true);
  SweepCsvBytes(1, "report_t1");
  telemetry::SetAttributionEnabled(false);

  std::ostringstream report;
  telemetry::FormatAttributionReport(telemetry::SnapshotAttribution(), report);
  const std::string text = report.str();
  EXPECT_NE(text.find("# wall-time attribution"), std::string::npos);
  EXPECT_NE(text.find("sweep"), std::string::npos);
  EXPECT_NE(text.find("trial"), std::string::npos);
  EXPECT_NE(text.find("merged"), std::string::npos);

  const std::string path = ::testing::TempDir() + "/robustify_attr_report.txt";
  ASSERT_TRUE(telemetry::WriteAttributionReport(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), text);
  std::remove(path.c_str());
  EXPECT_FALSE(telemetry::WriteAttributionReport(
      "/nonexistent-dir-robustify/report.txt"));
}

#else  // !ROBUSTIFY_TELEMETRY_ENABLED

// Compiled out, the API is inert: enabling is a no-op, snapshots are empty,
// and the file writer reports failure instead of writing an empty report.
TEST(Attribution, CompiledOutApiIsInert) {
  telemetry::SetAttributionEnabled(true);
  EXPECT_FALSE(telemetry::AttributionActive());
  { telemetry::SpanScope span("sweep"); }
  const telemetry::AttributionSnapshot snapshot =
      telemetry::SnapshotAttribution();
  EXPECT_TRUE(snapshot.threads.empty());
  for (int c = 0; c < telemetry::kNumAttrCategories; ++c) {
    EXPECT_EQ(snapshot.merged[c].count, 0u);
  }
  EXPECT_FALSE(telemetry::WriteAttributionReport(
      ::testing::TempDir() + "/robustify_attr_noop.txt"));
}

#endif  // ROBUSTIFY_TELEMETRY_ENABLED

}  // namespace
