// Parallel harness: thread pool, parallel-for, thread-count resolution, and
// the determinism guarantee — sweep output is identical for every worker
// count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "core/fault_env.h"
#include "faulty/real.h"
#include "harness/parallel.h"
#include "harness/sweep.h"
#include "harness/trial.h"

namespace {

using namespace robustify;

TEST(ResolveThreadCount, ExplicitRequestWins) {
  EXPECT_EQ(harness::ResolveThreadCount(3), 3);
  EXPECT_EQ(harness::ResolveThreadCount(1), 1);
}

TEST(ResolveThreadCount, EnvOverrideAppliesWhenUnspecified) {
  ASSERT_EQ(setenv("ROBUSTIFY_THREADS", "5", 1), 0);
  EXPECT_EQ(harness::ResolveThreadCount(0), 5);
  EXPECT_EQ(harness::ResolveThreadCount(2), 2);  // explicit still wins
  ASSERT_EQ(unsetenv("ROBUSTIFY_THREADS"), 0);
  EXPECT_GE(harness::ResolveThreadCount(0), 1);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  harness::ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> visits(257);
    for (auto& v : visits) v.store(0);
    harness::ParallelFor(static_cast<int>(visits.size()), threads,
                         [&](int i) { visits[static_cast<std::size_t>(i)].fetch_add(1); });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelFor, PropagatesTheFirstException) {
  EXPECT_THROW(
      harness::ParallelFor(64, 4,
                           [](int i) {
                             if (i % 7 == 0) throw std::runtime_error("cell failed");
                           }),
      std::runtime_error);
}

// A trial that actually exercises the faulty FPU, so the determinism check
// covers injector seeding, not just the harness plumbing.
harness::TrialFn FaultyAccumulateTrial() {
  return [](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const double sum = core::WithFaultyFpu(
        env,
        [&] {
          faulty::Real acc(0);
          for (int i = 1; i <= 2000; ++i) acc += faulty::Real(1.0 / i);
          return acc.value();
        },
        &out.fpu_stats);
    out.metric = sum;
    out.success = std::isfinite(sum);
    return out;
  };
}

bool SummariesIdentical(const harness::TrialSummary& a, const harness::TrialSummary& b) {
  return a.trials == b.trials && a.successes == b.successes &&
         a.success_rate_pct == b.success_rate_pct &&
         a.median_metric == b.median_metric && a.mean_metric == b.mean_metric &&
         a.mean_faulty_flops == b.mean_faulty_flops &&
         a.mean_faults_injected == b.mean_faults_injected;
}

TEST(Sweep, ByteIdenticalResultsForEveryThreadCount) {
  const auto run = [](int threads) {
    harness::SweepConfig config;
    config.fault_rates = {0.0, 0.01, 0.3};  // spans skip-ahead and per-op
    config.trials = 6;
    config.base_seed = 17;
    config.threads = threads;
    return harness::RunFaultRateSweep(
        config, {{"a", FaultyAccumulateTrial()}, {"b", FaultyAccumulateTrial()}});
  };
  const auto serial = run(1);
  for (const int threads : {2, 8}) {
    const auto parallel = run(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t s = 0; s < serial.size(); ++s) {
      ASSERT_EQ(parallel[s].points.size(), serial[s].points.size());
      for (std::size_t p = 0; p < serial[s].points.size(); ++p) {
        EXPECT_EQ(parallel[s].points[p].fault_rate, serial[s].points[p].fault_rate);
        EXPECT_TRUE(SummariesIdentical(parallel[s].points[p].summary,
                                       serial[s].points[p].summary))
            << "series " << s << " point " << p << " differs with " << threads
            << " threads";
      }
    }
  }
}

TEST(RunTrials, ParallelMatchesSerial) {
  core::FaultEnvironment env;
  env.fault_rate = 0.02;
  env.seed = 5;
  const harness::TrialFn fn = FaultyAccumulateTrial();
  const harness::TrialSummary serial = harness::RunTrials(fn, env, 8, 1);
  const harness::TrialSummary parallel = harness::RunTrials(fn, env, 8, 4);
  EXPECT_TRUE(SummariesIdentical(serial, parallel));
}

}  // namespace
