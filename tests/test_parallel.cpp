// Parallel harness: thread pool, parallel-for, thread-count resolution, and
// the determinism guarantee — sweep output is identical for every worker
// count.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/fault_env.h"
#include "faulty/real.h"
#include "harness/parallel.h"
#include "harness/sweep.h"
#include "harness/trial.h"

namespace {

using namespace robustify;

TEST(ResolveThreadCount, ExplicitRequestWins) {
  EXPECT_EQ(harness::ResolveThreadCount(3), 3);
  EXPECT_EQ(harness::ResolveThreadCount(1), 1);
}

TEST(ResolveThreadCount, EnvOverrideAppliesWhenUnspecified) {
  ASSERT_EQ(setenv("ROBUSTIFY_THREADS", "5", 1), 0);
  EXPECT_EQ(harness::ResolveThreadCount(0), 5);
  EXPECT_EQ(harness::ResolveThreadCount(2), 2);  // explicit still wins
  ASSERT_EQ(unsetenv("ROBUSTIFY_THREADS"), 0);
  EXPECT_GE(harness::ResolveThreadCount(0), 1);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  harness::ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> visits(257);
    for (auto& v : visits) v.store(0);
    harness::ParallelFor(static_cast<int>(visits.size()), threads,
                         [&](int i) { visits[static_cast<std::size_t>(i)].fetch_add(1); });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

// --- load balance under skewed per-item cost ---------------------------------
//
// ParallelFor's contract is dynamic claiming from one shared counter, which
// is what bounds idle imbalance when cells cost wildly different amounts
// (the adaptive campaign runner's exact shape: one transition cell can cost
// 20x a saturated one).  On this 1-CPU container wall-clock speedup is ~1.0
// by construction, so these tests pin the *scheduling* properties instead:
// a worker stuck on an arbitrarily expensive item must never strand queued
// items behind it, and results must not depend on the schedule.

// The most skewed cost distribution possible: item 0 cannot finish until
// every other item has run.  Static chunking would assign items 1..15 to
// the stuck worker and deadlock; dynamic claiming lets the other workers
// drain the whole queue, so this test terminating at all is the proof.
TEST(ParallelFor, StuckItemDoesNotStrandQueuedItems) {
  constexpr int kItems = 64;
  std::mutex mu;
  std::condition_variable done_cv;
  int done = 0;
  std::map<std::thread::id, std::vector<int>> claims;
  harness::ParallelFor(kItems, 4, [&](int i) {
    {
      std::unique_lock<std::mutex> lock(mu);
      claims[std::this_thread::get_id()].push_back(i);
    }
    if (i == 0) {
      std::unique_lock<std::mutex> lock(mu);
      done_cv.wait(lock, [&] { return done == kItems - 1; });
      return;
    }
    std::unique_lock<std::mutex> lock(mu);
    ++done;
    if (done == kItems - 1) done_cv.notify_all();
  });

  // Idle-imbalance bound: while one worker was pinned to the expensive
  // item, the others drained everything — the stuck worker claimed item 0
  // and nothing else, and at least two workers participated.
  int total = 0;
  for (const auto& [id, items] : claims) {
    total += static_cast<int>(items.size());
    for (const int i : items) {
      if (i == 0) EXPECT_EQ(items.size(), 1u) << "stuck worker claimed more work";
    }
  }
  EXPECT_EQ(total, kItems);
  EXPECT_GE(claims.size(), 2u);
}

// Oversubscription (4x more workers than this container has cores) with a
// skewed busy-work distribution: every index still runs exactly once and
// the output is identical to the serial schedule.
TEST(ParallelFor, OversubscribedSkewedCostsStayDeterministic) {
  constexpr int kItems = 300;
  const auto cost = [](int i) { return (i % 97 == 0) ? 40000 : 400; };
  const auto work = [&](int i) {
    // Deterministic busy work proportional to the item's cost skew.
    std::uint64_t acc = static_cast<std::uint64_t>(i) * 0x9E3779B97F4A7C15ull;
    for (int k = 0; k < cost(i); ++k) acc = acc * 6364136223846793005ull + 1442695040888963407ull;
    return acc;
  };
  std::vector<std::uint64_t> serial(kItems);
  for (int i = 0; i < kItems; ++i) serial[static_cast<std::size_t>(i)] = work(i);

  for (const int threads : {4, 16}) {
    std::vector<std::uint64_t> parallel(kItems, 0);
    std::vector<std::atomic<int>> visits(kItems);
    for (auto& v : visits) v.store(0);
    harness::ParallelFor(kItems, threads, [&](int i) {
      visits[static_cast<std::size_t>(i)].fetch_add(1);
      parallel[static_cast<std::size_t>(i)] = work(i);
    });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
    EXPECT_EQ(parallel, serial) << threads << " threads";
  }
}

TEST(ParallelFor, PropagatesTheFirstException) {
  EXPECT_THROW(
      harness::ParallelFor(64, 4,
                           [](int i) {
                             if (i % 7 == 0) throw std::runtime_error("cell failed");
                           }),
      std::runtime_error);
}

// A trial that actually exercises the faulty FPU, so the determinism check
// covers injector seeding, not just the harness plumbing.
harness::TrialFn FaultyAccumulateTrial() {
  return [](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const double sum = core::WithFaultyFpu(
        env,
        [&] {
          faulty::Real acc(0);
          for (int i = 1; i <= 2000; ++i) acc += faulty::Real(1.0 / i);
          return acc.value();
        },
        &out.fpu_stats);
    out.metric = sum;
    out.success = std::isfinite(sum);
    return out;
  };
}

bool SummariesIdentical(const harness::TrialSummary& a, const harness::TrialSummary& b) {
  return a.trials == b.trials && a.successes == b.successes &&
         a.success_rate_pct == b.success_rate_pct &&
         a.median_metric == b.median_metric && a.mean_metric == b.mean_metric &&
         a.mean_faulty_flops == b.mean_faulty_flops &&
         a.mean_faults_injected == b.mean_faults_injected;
}

TEST(Sweep, ByteIdenticalResultsForEveryThreadCount) {
  const auto run = [](int threads) {
    harness::SweepConfig config;
    config.fault_rates = {0.0, 0.01, 0.3};  // spans skip-ahead and per-op
    config.trials = 6;
    config.base_seed = 17;
    config.threads = threads;
    return harness::RunFaultRateSweep(
        config, {{"a", FaultyAccumulateTrial()}, {"b", FaultyAccumulateTrial()}});
  };
  const auto serial = run(1);
  for (const int threads : {2, 8}) {
    const auto parallel = run(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t s = 0; s < serial.size(); ++s) {
      ASSERT_EQ(parallel[s].points.size(), serial[s].points.size());
      for (std::size_t p = 0; p < serial[s].points.size(); ++p) {
        EXPECT_EQ(parallel[s].points[p].fault_rate, serial[s].points[p].fault_rate);
        EXPECT_TRUE(SummariesIdentical(parallel[s].points[p].summary,
                                       serial[s].points[p].summary))
            << "series " << s << " point " << p << " differs with " << threads
            << " threads";
      }
    }
  }
}

TEST(RunTrials, ParallelMatchesSerial) {
  core::FaultEnvironment env;
  env.fault_rate = 0.02;
  env.seed = 5;
  const harness::TrialFn fn = FaultyAccumulateTrial();
  const harness::TrialSummary serial = harness::RunTrials(fn, env, 8, 1);
  const harness::TrialSummary parallel = harness::RunTrials(fn, env, 8, 4);
  EXPECT_TRUE(SummariesIdentical(serial, parallel));
}

}  // namespace
