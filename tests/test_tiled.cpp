// Tiled direct-solver tests (linalg/tiled.h): rate-0 bit-identity against
// the monolithic lsq.h baselines, block==scalar equivalence under
// injection, worker-count independence (the determinism contract, pinned at
// n = 2048 under injection), and byte-identical campaign CSVs across the
// in-solve worker knob.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/least_squares.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"
#include "core/fault_env.h"
#include "harness/csv.h"
#include "harness/sweep.h"
#include "linalg/lsq.h"
#include "linalg/tiled.h"

namespace {

using namespace robustify;

bool SameBits(const linalg::Vector<double>& a, const linalg::Vector<double>& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

std::string Hex(double v) {
  std::uint64_t w;
  std::memcpy(&w, &v, sizeof(w));
  std::ostringstream os;
  os << std::hex << w;
  return os.str();
}

// First mismatching element, for actionable failure output.
::testing::AssertionResult BitIdentical(const linalg::Vector<double>& a,
                                        const linalg::Vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t wa, wb;
    std::memcpy(&wa, &a[i], sizeof(wa));
    std::memcpy(&wb, &b[i], sizeof(wb));
    if (wa != wb) {
      return ::testing::AssertionFailure()
             << "x[" << i << "]: " << Hex(a[i]) << " vs " << Hex(b[i]);
    }
  }
  return ::testing::AssertionSuccess();
}

// The tiled Cholesky must reproduce the monolithic normal-equations solve
// bit for bit at fault rate 0, for dividing and non-dividing tile sizes and
// for the single-tile degenerate case.
TEST(TiledCholesky, BitIdenticalToMonolithicAtRateZero) {
  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(40, 24, 91);
  const linalg::Vector<double> mono =
      apps::SolveLsqBaseline<faulty::Real>(problem, linalg::LsqBaseline::kCholesky);
  for (const std::size_t tile : {std::size_t{24}, std::size_t{8}, std::size_t{7}}) {
    for (const int threads : {1, 4}) {
      linalg::TiledOptions options;
      options.tile = tile;
      options.threads = threads;
      const linalg::Vector<double> tiled = apps::SolveLsqTiled<faulty::Real>(
          problem, linalg::LsqBaseline::kCholesky, options);
      EXPECT_TRUE(BitIdentical(tiled, mono))
          << "tile=" << tile << " threads=" << threads;
    }
  }
}

TEST(TiledQr, BitIdenticalToMonolithicAtRateZero) {
  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(36, 20, 92);
  const linalg::Vector<double> mono =
      apps::SolveLsqBaseline<faulty::Real>(problem, linalg::LsqBaseline::kQr);
  for (const std::size_t tile : {std::size_t{20}, std::size_t{8}, std::size_t{5}}) {
    for (const int threads : {1, 4}) {
      linalg::TiledOptions options;
      options.tile = tile;
      options.threads = threads;
      const linalg::Vector<double> tiled = apps::SolveLsqTiled<faulty::Real>(
          problem, linalg::LsqBaseline::kQr, options);
      EXPECT_TRUE(BitIdentical(tiled, mono))
          << "tile=" << tile << " threads=" << threads;
    }
  }
}

// The double instantiation is the clean oracle: same kernels, no injector
// plumbing.  At rate 0 it must agree with the faulty::Real run bit for bit.
TEST(TiledCholesky, CleanOracleTypeMatchesRealAtRateZero) {
  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(32, 16, 93);
  linalg::TiledOptions options;
  options.tile = 8;
  linalg::Vector<double> real_x, oracle_x;
  linalg::TiledLsqEngine<faulty::Real> real_engine;
  linalg::TiledLsqEngine<double> oracle_engine;
  real_engine.SolveCholesky(problem.a, problem.b, options, &real_x);
  oracle_engine.SolveCholesky(problem.a, problem.b, options, &oracle_x);
  EXPECT_TRUE(BitIdentical(real_x, oracle_x));
}

// Block and scalar engines must agree bit for bit under injection inside
// tile tasks, exactly like they do inside WithFaultyFpu scopes.
TEST(Tiled, BlockAndScalarEnginesBitIdenticalUnderInjection) {
  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(48, 24, 94);
  for (const linalg::LsqBaseline which :
       {linalg::LsqBaseline::kCholesky, linalg::LsqBaseline::kQr}) {
    core::FaultEnvironment env;
    env.fault_rate = 1e-3;
    env.seed = 4242;
    linalg::TiledOptions options;
    options.tile = 8;
    options.fault = apps::TileConfigFromEnv(env);

    options.fault.engine = faulty::Engine::kBlock;
    faulty::ContextStats block_stats;
    const linalg::Vector<double> block_x =
        apps::SolveLsqTiled<faulty::Real>(problem, which, options, &block_stats);

    options.fault.engine = faulty::Engine::kScalar;
    faulty::ContextStats scalar_stats;
    const linalg::Vector<double> scalar_x =
        apps::SolveLsqTiled<faulty::Real>(problem, which, options, &scalar_stats);

    EXPECT_TRUE(BitIdentical(block_x, scalar_x));
    EXPECT_EQ(block_stats.faulty_flops, scalar_stats.faulty_flops);
    EXPECT_EQ(block_stats.faults_injected, scalar_stats.faults_injected);
    EXPECT_GT(block_stats.faults_injected, 0u);
  }
}

// The acceptance pin: a large tiled Cholesky under injection is
// bit-identical at 1, 2, and 8 in-solve workers, with identical summed
// injector stats.  n = 2048 (tridiagonal SPD system, formed directly so the
// test budget goes to the factorization).
TEST(TiledCholesky, BitIdenticalAcrossWorkerCountsAtN2048UnderInjection) {
  const std::size_t n = 2048;
  linalg::Matrix<double> g(n, n);
  linalg::Vector<double> c(n);
  for (std::size_t i = 0; i < n; ++i) {
    g(i, i) = 4.0;
    if (i + 1 < n) {
      g(i, i + 1) = -1.0;
      g(i + 1, i) = -1.0;
    }
    c[i] = 4.0 - (i > 0 ? 1.0 : 0.0) - (i + 1 < n ? 1.0 : 0.0);  // G * ones
  }

  core::FaultEnvironment env;
  env.fault_rate = 1e-6;
  env.seed = 20480;
  linalg::TiledOptions options;
  options.tile = 256;
  options.fault = apps::TileConfigFromEnv(env);

  linalg::TiledLsqEngine<faulty::Real> engine;
  linalg::Vector<double> reference;
  faulty::ContextStats reference_stats;
  for (const int workers : {1, 2, 8}) {
    options.threads = workers;
    linalg::Vector<double> x;
    faulty::ContextStats stats;
    engine.SolveSpd(g, c, options, &x, &stats);
    if (workers == 1) {
      reference = x;
      reference_stats = stats;
      EXPECT_GT(stats.faults_injected, 0u) << "rate 1e-6 over ~n^3/3 ops";
    } else {
      EXPECT_TRUE(BitIdentical(x, reference)) << "workers=" << workers;
      EXPECT_EQ(stats.faulty_flops, reference_stats.faulty_flops);
      EXPECT_EQ(stats.faults_injected, reference_stats.faults_injected);
    }
  }
}

// Different solve seeds must give different fault streams (the per-task
// stream derivation must not collapse the seed).
TEST(Tiled, SolveSeedChangesTheFaultStream) {
  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(48, 24, 95);
  core::FaultEnvironment env;
  env.fault_rate = 1e-3;
  env.seed = 1;
  linalg::TiledOptions options;
  options.tile = 8;
  options.fault = apps::TileConfigFromEnv(env);
  const linalg::Vector<double> a = apps::SolveLsqTiled<faulty::Real>(
      problem, linalg::LsqBaseline::kCholesky, options);
  options.fault.seed = 2;
  const linalg::Vector<double> b = apps::SolveLsqTiled<faulty::Real>(
      problem, linalg::LsqBaseline::kCholesky, options);
  EXPECT_FALSE(SameBits(a, b));
}

// The in-solve worker knob (ROBUSTIFY_TILE_THREADS, read when
// options.threads == 0) must leave campaign CSVs byte-identical: the whole
// tiled_cholesky scenario is swept at 1, 2, and 8 workers and the CSV bytes
// compared.
TEST(Tiled, CampaignCsvBytesIndependentOfTileWorkers) {
  const campaign::CampaignSpec& spec = campaign::RegistrySpec("tiled_cholesky");
  const campaign::Scenario scenario = campaign::BuildScenario(spec);
  harness::SweepConfig sweep = campaign::ToSweepConfig(spec);
  sweep.fault_rates = {0.0, 1e-5, 1e-3};
  sweep.trials = 2;
  sweep.threads = 1;  // outer trial loop serial; the knob under test is inner

  std::string reference;
  for (const int workers : {1, 2, 8}) {
    ::setenv("ROBUSTIFY_TILE_THREADS", std::to_string(workers).c_str(), 1);
    const std::vector<harness::Series> series =
        harness::RunFaultRateSweep(sweep, scenario.series);
    const std::string path =
        "tiled_csv_w" + std::to_string(workers) + ".csv";
    harness::WriteSweepCsv(path, series);
    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is.good());
    std::ostringstream bytes;
    bytes << is.rdbuf();
    if (workers == 1) {
      reference = bytes.str();
      EXPECT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(bytes.str(), reference) << "workers=" << workers;
    }
  }
  ::unsetenv("ROBUSTIFY_TILE_THREADS");
}

// Accuracy sanity at rate 0 (bit-identity alone would also pass for a
// solver that is deterministically wrong).
TEST(Tiled, SolvesTheProblemAtRateZero) {
  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(60, 20, 96);
  for (const linalg::LsqBaseline which :
       {linalg::LsqBaseline::kCholesky, linalg::LsqBaseline::kQr}) {
    linalg::TiledOptions options;
    options.tile = 8;
    const linalg::Vector<double> x =
        apps::SolveLsqTiled<faulty::Real>(problem, which, options);
    ASSERT_EQ(x.size(), problem.exact.size());
    double err = 0.0, norm = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      err += (x[i] - problem.exact[i]) * (x[i] - problem.exact[i]);
      norm += problem.exact[i] * problem.exact[i];
    }
    EXPECT_LT(err, 1e-16 * norm);
  }
}

}  // namespace
