// Allocation regression tests: the hot paths must not touch the heap.
//
// This TU replaces the global operator new/delete for the test binary with
// counting wrappers (test-only: nothing in the library depends on them).
// The counter is thread-local and only armed inside an AllocationProbe
// scope, so gtest's own bookkeeping outside the probe is never counted.
//
// The contract under test (see opt/workspace.h): after one warm-up solve
// on a workspace, a complete SGD or CGLS solve — engine loop plus every
// objective Value/Gradient evaluation, on the clean scalar and under the
// fault injector alike — performs zero heap allocations.  PR 2 measured
// 6.3M allocations per fig6_1 run from exactly these paths; this test is
// what keeps them from coming back.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "apps/configs.h"
#include "apps/least_squares.h"
#include "apps/sort_app.h"
#include "core/fault_env.h"
#include "opt/cg.h"
#include "opt/sgd.h"
#include "opt/workspace.h"

namespace {

thread_local std::int64_t tls_alloc_count = 0;
thread_local bool tls_alloc_armed = false;

// Arms the counter for its lifetime; read the tally after disarming.
class AllocationProbe {
 public:
  AllocationProbe() {
    tls_alloc_count = 0;
    tls_alloc_armed = true;
  }
  ~AllocationProbe() { tls_alloc_armed = false; }
  AllocationProbe(const AllocationProbe&) = delete;
  AllocationProbe& operator=(const AllocationProbe&) = delete;
};

std::int64_t ArmedAllocations() { return tls_alloc_count; }

void* CountingAlloc(std::size_t size) {
  if (tls_alloc_armed) ++tls_alloc_count;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountingAlloc(size); }
void* operator new[](std::size_t size) { return CountingAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace robustify;

// An SgdOptions that exercises every engine buffer: TMR gradient voting,
// momentum, adaptive accept/reject (Value calls), and Polyak averaging.
opt::SgdOptions EverythingOnSgd(int iterations) {
  opt::SgdOptions options;
  options.iterations = iterations;
  options.base_step = 0.05;
  options.scaling = opt::StepScaling::kSqrt;
  options.adaptive = true;
  options.gradient_votes = 3;
  options.momentum_beta = 0.5;
  options.average_tail = 0.25;
  options.phases = core::AnnealedPenalty(3, 4.0);
  return options;
}

TEST(AllocationFree, SortSgdInnerLoopAfterWarmup) {
  const std::vector<double> input{0.9, 0.1, 0.6, 0.3, 0.7};
  const std::size_t n = input.size();
  opt::Workspace<double> ws;
  apps::detail::SortObjective<double> objective(input, 10.0, &ws);
  const opt::SgdOptions options = EverythingOnSgd(40);

  linalg::Vector<double> warm(n * n, 1.0 / n);
  warm = opt::MinimizeSgd(objective, std::move(warm), options, &ws);

  linalg::Vector<double> x(n * n, 1.0 / n);
  std::int64_t allocations;
  {
    AllocationProbe probe;
    x = opt::MinimizeSgd(objective, std::move(x), options, &ws);
    allocations = ArmedAllocations();
  }
  EXPECT_EQ(allocations, 0) << "SGD sort solve allocated on a warmed workspace";
  EXPECT_TRUE(AllFinite(x));
}

TEST(AllocationFree, SortSgdInnerLoopUnderFaultInjection) {
  const std::vector<double> input{0.9, 0.1, 0.6, 0.3, 0.7};
  const std::size_t n = input.size();
  opt::Workspace<faulty::Real> ws;
  apps::detail::SortObjective<faulty::Real> objective(input, 10.0, &ws);
  const opt::SgdOptions options = EverythingOnSgd(40);

  core::FaultEnvironment env;
  env.fault_rate = 0.01;  // gap-table shared sampler is built on warm-up
  env.seed = 7;

  linalg::Vector<faulty::Real> warm(n * n, faulty::Real(1.0 / n));
  core::WithFaultyFpu(env, [&] {
    warm = opt::MinimizeSgd(objective, std::move(warm), options, &ws);
  });

  linalg::Vector<faulty::Real> x(n * n, faulty::Real(1.0 / n));
  std::int64_t allocations;
  {
    AllocationProbe probe;
    core::WithFaultyFpu(env, [&] {
      x = opt::MinimizeSgd(objective, std::move(x), options, &ws);
    });
    allocations = ArmedAllocations();
  }
  EXPECT_EQ(allocations, 0)
      << "faulty SGD sort solve allocated on a warmed workspace";
}

TEST(AllocationFree, LeastSquaresSgdInnerLoopAfterWarmup) {
  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(40, 8, 17);
  opt::Workspace<double> ws;
  const linalg::Matrix<double>& a = problem.a;
  const linalg::Vector<double>& b = problem.b;
  apps::detail::LsqObjective<double> objective(a, b, &ws);
  const opt::SgdOptions options = EverythingOnSgd(40);

  linalg::Vector<double> warm(a.cols());
  warm = opt::MinimizeSgd(objective, std::move(warm), options, &ws);

  linalg::Vector<double> x(a.cols());
  std::int64_t allocations;
  {
    AllocationProbe probe;
    x = opt::MinimizeSgd(objective, std::move(x), options, &ws);
    allocations = ArmedAllocations();
  }
  EXPECT_EQ(allocations, 0)
      << "SGD least-squares solve allocated on a warmed workspace";
}

TEST(AllocationFree, CglsInnerLoopAfterWarmup) {
  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(40, 8, 23);
  opt::Workspace<double> ws;
  const linalg::Matrix<double>& a = problem.a;
  const linalg::Vector<double>& b = problem.b;
  opt::CgOptions options;
  options.iterations = 12;
  options.restart_every = 4;

  opt::CgResult result;
  opt::SolveCglsInto(a, b, options, &ws, &result);  // warm-up sizes everything

  std::int64_t allocations;
  {
    AllocationProbe probe;
    opt::SolveCglsInto(a, b, options, &ws, &result);
    allocations = ArmedAllocations();
  }
  EXPECT_EQ(allocations, 0) << "CGLS solve allocated on a warmed workspace";
  // Sanity only (convergence has its own tests): the solve really ran.
  EXPECT_EQ(result.iterations, 12);
  EXPECT_LT(result.residual_norm, 1e-3);
}

TEST(AllocationFree, CglsUnderFaultInjection) {
  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(40, 8, 29);
  opt::Workspace<faulty::Real> ws;
  const linalg::Matrix<faulty::Real> a = linalg::Cast<faulty::Real>(problem.a);
  const linalg::Vector<faulty::Real> b = linalg::Cast<faulty::Real>(problem.b);
  opt::CgOptions options;
  options.iterations = 12;
  options.restart_every = 4;

  core::FaultEnvironment env;
  env.fault_rate = 0.001;
  env.seed = 31;

  opt::CgResult result;
  core::WithFaultyFpu(env, [&] { opt::SolveCglsInto(a, b, options, &ws, &result); });

  std::int64_t allocations;
  {
    AllocationProbe probe;
    core::WithFaultyFpu(env,
                        [&] { opt::SolveCglsInto(a, b, options, &ws, &result); });
    allocations = ArmedAllocations();
  }
  EXPECT_EQ(allocations, 0) << "faulty CGLS solve allocated on a warmed workspace";
}

// The block-engine kernels (linalg/faulty_blas.h) must uphold the same
// contract: bulk clean runs borrow no scratch and the engine fork itself
// allocates nothing.  Pin each engine explicitly — the kAuto default would
// let ROBUSTIFY_ENGINE silently test one path twice.
TEST(AllocationFree, BlockAndScalarEnginesAllocationFreeAfterWarmup) {
  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(40, 8, 37);
  for (const faulty::Engine engine :
       {faulty::Engine::kBlock, faulty::Engine::kScalar}) {
    opt::Workspace<faulty::Real> ws;
    const linalg::Matrix<faulty::Real> a = linalg::Cast<faulty::Real>(problem.a);
    const linalg::Vector<faulty::Real> b = linalg::Cast<faulty::Real>(problem.b);
    apps::detail::LsqObjective<faulty::Real> objective(a, b, &ws);
    const opt::SgdOptions options = EverythingOnSgd(40);
    opt::CgOptions cg;
    cg.iterations = 12;
    cg.restart_every = 4;

    core::FaultEnvironment env;
    env.fault_rate = 0.01;  // bulk runs a few elements long: many boundaries
    env.seed = 43;
    env.engine = engine;

    linalg::Vector<faulty::Real> warm(a.cols());
    opt::CgResult cg_result;
    core::WithFaultyFpu(env, [&] {
      warm = opt::MinimizeSgd(objective, std::move(warm), options, &ws);
      opt::SolveCglsInto(a, b, cg, &ws, &cg_result);
    });

    linalg::Vector<faulty::Real> x(a.cols());
    std::int64_t allocations;
    {
      AllocationProbe probe;
      core::WithFaultyFpu(env, [&] {
        x = opt::MinimizeSgd(objective, std::move(x), options, &ws);
        opt::SolveCglsInto(a, b, cg, &ws, &cg_result);
      });
      allocations = ArmedAllocations();
    }
    EXPECT_EQ(allocations, 0)
        << (engine == faulty::Engine::kBlock ? "block" : "scalar")
        << " engine allocated on a warmed workspace";
  }
}

// The tiled direct solvers hold their tile buffers and task graph in the
// engine: after one warm-up solve, a repeat solve of the same shape —
// clean or under injection, on the inline threads=1 scheduler path —
// performs zero heap allocations.  (Per-task FaultInjectors live on the
// stack and capture the shared bit distribution by pointer.)
TEST(AllocationFree, TiledCholeskyAndQrAfterWarmup) {
  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(40, 24, 41);
  linalg::TiledOptions options;
  options.tile = 8;
  options.threads = 1;
  core::FaultEnvironment env;
  env.fault_rate = 1e-3;
  env.seed = 47;
  linalg::TiledOptions faulty_options = options;
  faulty_options.fault = apps::TileConfigFromEnv(env);

  linalg::TiledLsqEngine<faulty::Real> engine;
  linalg::Vector<double> x;
  engine.SolveCholesky(problem.a, problem.b, options, &x);
  engine.SolveCholesky(problem.a, problem.b, faulty_options, &x);
  engine.SolveQr(problem.a, problem.b, options, &x);

  std::int64_t allocations;
  {
    AllocationProbe probe;
    engine.SolveCholesky(problem.a, problem.b, options, &x);
    allocations = ArmedAllocations();
  }
  EXPECT_EQ(allocations, 0) << "tiled Cholesky allocated on a warmed engine";
  {
    AllocationProbe probe;
    engine.SolveCholesky(problem.a, problem.b, faulty_options, &x);
    allocations = ArmedAllocations();
  }
  EXPECT_EQ(allocations, 0)
      << "faulty tiled Cholesky allocated on a warmed engine";
  {
    AllocationProbe probe;
    engine.SolveQr(problem.a, problem.b, options, &x);
    allocations = ArmedAllocations();
  }
  EXPECT_EQ(allocations, 0) << "tiled QR allocated on a warmed engine";
}

// The thread-local default workspace gives whole app kernels the same
// guarantee across trials without any caller plumbing: the second
// RobustSort on this thread reuses the first one's buffers.
TEST(AllocationFree, ThreadWorkspaceIsWarmAcrossKernelCalls) {
  const std::vector<double> input{0.9, 0.1, 0.6, 0.3, 0.7};
  apps::LpSolveConfig config = apps::SortSgdAsSqs();
  config.sgd.iterations = 40;

  const apps::RobustSortResult warm = apps::RobustSort<double>(input, config);
  ASSERT_TRUE(warm.valid);

  opt::Workspace<double>& ws = opt::ThreadWorkspace<double>();
  apps::detail::SortObjective<double> objective(input, config.penalty_weight, &ws);
  linalg::Vector<double> p(input.size() * input.size(),
                           1.0 / static_cast<double>(input.size()));
  std::int64_t allocations;
  {
    AllocationProbe probe;
    p = opt::MinimizeSgd(objective, std::move(p), config.sgd, &ws);
    allocations = ArmedAllocations();
  }
  EXPECT_EQ(allocations, 0);
}

}  // namespace
