// Convenience constructors for the paper's named descent variants.
#pragma once

#include "core/phases.h"
#include "opt/sgd.h"

namespace robustify::core {

inline opt::SgdOptions MakeSgd(int iterations, double base_step,
                               opt::StepScaling scaling) {
  opt::SgdOptions options;
  options.iterations = iterations;
  options.base_step = base_step;
  options.scaling = scaling;
  return options;
}

inline opt::SgdOptions MakeAdaptiveSgd(int iterations, double base_step,
                                       opt::StepScaling scaling) {
  opt::SgdOptions options = MakeSgd(iterations, base_step, scaling);
  options.adaptive = true;
  return options;
}

}  // namespace robustify::core
