// TrialGuard: per-trial budget caps and divergence bailout for the guarded
// trial executor.
//
// Under the richer fault models (stuck-at bits, intermittent windows) a
// solver can wander far longer than under transient upsets — a stuck
// exponent bit can keep an objective non-finite for thousands of
// iterations.  The guard bounds one trial's work with deterministic caps
// (routed-flop and solver-iteration budgets — never wall clock, so results
// stay byte-identical across machines and thread counts) and lets solvers
// bail out of a sustained non-finite objective instead of grinding to the
// iteration limit.  The outcome is a four-way verdict: success,
// wrong-result (clean finish, wrong answer), diverged (non-finite bailout),
// or budget-exhausted.
//
// An inactive guard (all fields zero/false — the default everywhere) is
// behaviorally invisible: GuardStop() returns false without reading any
// state the solvers would not have read, so pre-guard goldens hold.
#pragma once

#include <cstdint>

#include "faulty/fault_injector.h"

namespace robustify::core {

struct TrialGuard {
  // Stop the trial once the injector has routed this many FP ops (0 = no
  // cap).  Read from the active scope's ContextStats, so the cap is exact
  // and deterministic for a given seed and config.
  std::uint64_t max_flops = 0;
  // Stop after this many solver iterations across the trial (0 = no cap).
  int max_iterations = 0;
  // Let solvers abandon a sustained non-finite objective/gradient streak
  // (the solver defines "sustained"; see opt/sgd.h, opt/cg.h).
  bool nonfinite_bailout = false;

  bool Active() const {
    return max_flops != 0 || max_iterations != 0 || nonfinite_bailout;
  }
};

// Mutually exclusive per-trial outcome.  kSuccess is exactly the historical
// success flag; the three failure kinds split the historical failure by
// *why* — a guard trip never reclassifies a trial that still produced a
// correct answer.
enum class TrialVerdict {
  kSuccess,
  kWrongResult,      // finished cleanly with a wrong answer
  kDiverged,         // non-finite bailout tripped
  kBudgetExhausted,  // flop or iteration cap tripped
};

inline const char* TrialVerdictName(TrialVerdict verdict) {
  switch (verdict) {
    case TrialVerdict::kSuccess: return "success";
    case TrialVerdict::kWrongResult: return "wrong_result";
    case TrialVerdict::kDiverged: return "diverged";
    case TrialVerdict::kBudgetExhausted: return "budget_exhausted";
  }
  return "";
}

namespace detail {

struct GuardState {
  TrialGuard config;
  bool active = false;
  bool budget_tripped = false;
  bool diverged_tripped = false;
  std::uint64_t iterations = 0;
};

// The active guard for this thread (inactive by default: every check
// short-circuits on `active`).
inline thread_local GuardState tls_guard;

}  // namespace detail

// RAII: arm the guard for one trial, restore the previous state on exit
// (trials never nest in practice, but the restore keeps the scope honest).
class GuardScope {
 public:
  explicit GuardScope(const TrialGuard& config) : previous_(detail::tls_guard) {
    detail::GuardState& g = detail::tls_guard;
    g.config = config;
    g.active = config.Active();
    g.budget_tripped = false;
    g.diverged_tripped = false;
    g.iterations = 0;
  }
  ~GuardScope() { detail::tls_guard = previous_; }
  GuardScope(const GuardScope&) = delete;
  GuardScope& operator=(const GuardScope&) = delete;

 private:
  detail::GuardState previous_;
};

// One call per solver iteration: counts the iteration and returns true when
// the trial's budget is exhausted and the solve should stop where it
// stands.  Latches — once tripped, every further call returns true, so a
// trial composed of several solves stops as a whole.
inline bool GuardStop() {
  detail::GuardState& g = detail::tls_guard;
  if (!g.active) return false;
  if (g.budget_tripped || g.diverged_tripped) return true;
  ++g.iterations;
  if (g.config.max_iterations > 0 &&
      g.iterations > static_cast<std::uint64_t>(g.config.max_iterations)) {
    g.budget_tripped = true;
    return true;
  }
  if (g.config.max_flops != 0) {
    const faulty::FaultInjector* inj = faulty::detail::tls_injector;
    if (inj != nullptr && inj->stats().faulty_flops >= g.config.max_flops) {
      g.budget_tripped = true;
      return true;
    }
  }
  return false;
}

// True when solvers should track non-finite streaks at all.
inline bool GuardBailoutEnabled() {
  const detail::GuardState& g = detail::tls_guard;
  return g.active && g.config.nonfinite_bailout;
}

// A solver reports a sustained non-finite streak; the trial's verdict
// becomes kDiverged (unless it still ends up succeeding).
inline void GuardReportDivergence() {
  detail::GuardState& g = detail::tls_guard;
  if (g.active && g.config.nonfinite_bailout) g.diverged_tripped = true;
}

inline bool GuardDiverged() { return detail::tls_guard.diverged_tripped; }
inline bool GuardBudgetExhausted() { return detail::tls_guard.budget_tripped; }

// The four-way verdict for a finished trial: divergence outranks budget
// exhaustion (a bailed-out trial usually also looks cheap), and success is
// never reclassified.
inline TrialVerdict ResolveVerdict(bool success) {
  if (success) return TrialVerdict::kSuccess;
  if (GuardDiverged()) return TrialVerdict::kDiverged;
  if (GuardBudgetExhausted()) return TrialVerdict::kBudgetExhausted;
  return TrialVerdict::kWrongResult;
}

}  // namespace robustify::core
