// Optimizer phase schedules (large-step exploration / refinement) shared by
// the SGD engine and the app configs.  Also the benches' umbrella include
// for the core layer: pulls in the fault environment and faulty::Real.
#pragma once

#include <cmath>
#include <vector>

#include "core/fault_env.h"

namespace robustify::core {

// One phase of a descent run.  The iteration budget of SgdOptions is split
// across phases by `fraction`; within a phase the base step is multiplied by
// `step_scale` and the constraint-penalty weight by `penalty_scale`.
struct Phase {
  double fraction = 1.0;
  double step_scale = 1.0;
  double penalty_scale = 1.0;
};

using PhaseSchedule = std::vector<Phase>;

// Large steps for the first `explore_fraction` of the budget, then refine at
// the base step.  The paper's descent runs open with aggressive steps to
// escape the noise floor quickly and shrink for the endgame.
inline PhaseSchedule LargeStepRefine(double explore_fraction, double explore_scale) {
  return {{explore_fraction, explore_scale, 1.0}, {1.0 - explore_fraction, 1.0, 1.0}};
}

// Penalty annealing: `count` equal phases whose penalty weight grows by
// `factor` per phase, ending at the configured weight.  Early phases see a
// soft landscape (easy to move through), late phases enforce feasibility.
inline PhaseSchedule AnnealedPenalty(int count, double factor) {
  PhaseSchedule schedule;
  for (int i = 0; i < count; ++i) {
    schedule.push_back({1.0 / count, 1.0, std::pow(factor, i - (count - 1))});
  }
  return schedule;
}

}  // namespace robustify::core
