// FaultEnvironment + WithFaultyFpu: scoped activation of the faulty FPU.
//
// A FaultEnvironment describes one operating point of the stochastic
// processor (per-op fault rate, bit-position model, RNG seed).
// WithFaultyFpu(env, fn, &stats) installs a FaultInjector for the current
// thread, runs fn — every faulty::Real op inside routes through the
// injector — and restores the previous (normally clean) FPU state on exit,
// exception-safely.
#pragma once

#include <cstdint>
#include <utility>

#include "core/guard.h"
#include "faulty/bit_distribution.h"
#include "faulty/block_engine.h"
#include "faulty/fault_injector.h"
#include "faulty/real.h"
#include "telemetry/telemetry.h"

namespace robustify::core {

struct FaultEnvironment {
  double fault_rate = 0.0;  // probability a given FP op is corrupted
  std::uint64_t seed = 1;   // drives the injector LFSR (and trial inputs)
  faulty::BitModel bit_model = faulty::BitModel::kBimodal;
  // kAuto defers to ROBUSTIFY_INJECTOR, else skip-ahead; set explicitly to
  // pin a trial to one implementation (strategy A/B tests, the rate-0
  // golden-CSV determinism test).
  faulty::FaultInjector::Strategy strategy = faulty::FaultInjector::Strategy::kAuto;
  // Kernel engine for the scope: kAuto defers to ROBUSTIFY_ENGINE, else the
  // block engine; pin to kScalar to run the per-scalar equivalence oracle
  // (same fault stream bit-for-bit — tests/test_block_engine.cpp).
  faulty::Engine engine = faulty::Engine::kAuto;
  // Per-fault RNG draw layout: kAuto defers to ROBUSTIFY_RNG, else split;
  // pin to kFused/kSplit for the statistical A/B tests.
  faulty::RngMode rng = faulty::RngMode::kAuto;
  // What a scheduled fault does (temporal model + op-class mask).  The
  // default — temporal kAuto, resolved here through ROBUSTIFY_FAULT_MODEL,
  // else transient — reproduces the historical injector bit-for-bit; pin
  // model.temporal explicitly to make a trial immune to the env override.
  faulty::FaultModel model;
  // Per-trial budget caps and divergence bailout (inactive by default —
  // behaviorally invisible).  Armed by the trial executor
  // (harness::RunSingleTrial), not by WithFaultyFpu, so one trial's guard
  // spans every scope the trial opens.
  TrialGuard guard;
};

namespace detail {

// Per-thread trial session for the sticky-window hand-off.  While active, a
// live stuck-at / intermittent window outlives the WithFaultyFpu scope that
// opened it and resumes in the trial's next scope — a stuck line in silicon
// doesn't heal between kernel calls.
struct TrialFaultSession {
  bool active = false;
  faulty::CarriedWindow window;
};

inline thread_local TrialFaultSession tls_trial_session;

// Feed the injector telemetry counters once per scope, from the same
// ContextStats the injector already maintains for the CSVs — telemetry adds
// nothing to the per-op path and cannot diverge from the published numbers.
inline void CountScopeTelemetry(const faulty::ContextStats& stats) {
  telemetry::Count(telemetry::Counter::kInjectorScopes);
  telemetry::Count(telemetry::Counter::kInjectorFaults, stats.faults_injected);
  telemetry::Count(telemetry::Counter::kInjectorFlops, stats.faulty_flops);
  telemetry::Count(telemetry::Counter::kInjectorFaultsArith, stats.faults_arith);
  telemetry::Count(telemetry::Counter::kInjectorFaultsCompare, stats.faults_compare);
  telemetry::Count(telemetry::Counter::kInjectorFaultsMemory, stats.faults_memory);
  telemetry::Count(telemetry::Counter::kInjectorWindows, stats.windows_opened);
}

// RAII: swap the thread's injector in, restore the previous one on exit.
class FaultScope {
 public:
  explicit FaultScope(faulty::FaultInjector* injector)
      : previous_(faulty::detail::ExchangeThreadInjector(injector)) {}
  ~FaultScope() { faulty::detail::ExchangeThreadInjector(previous_); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  faulty::FaultInjector* previous_;
};

}  // namespace detail

// RAII marker for "one trial runs on this thread": while alive, consecutive
// WithFaultyFpu scopes hand live sticky windows to each other (the injector
// AdoptWindow/ExportWindow pair).  Installed by harness::RunSingleTrial so
// every trial gets the hand-off for free; nesting restores the outer
// session on exit.  Under the default transient model both hooks are no-ops
// and the historical op/fault streams are untouched.
class TrialFaultScope {
 public:
  TrialFaultScope() : previous_(detail::tls_trial_session) {
    detail::tls_trial_session = {};
    detail::tls_trial_session.active = true;
  }
  ~TrialFaultScope() { detail::tls_trial_session = previous_; }
  TrialFaultScope(const TrialFaultScope&) = delete;
  TrialFaultScope& operator=(const TrialFaultScope&) = delete;

 private:
  detail::TrialFaultSession previous_;
};

template <class Fn>
auto WithFaultyFpu(const FaultEnvironment& env, Fn&& fn,
                   faulty::ContextStats* stats = nullptr) -> decltype(fn()) {
  // The sampling tables are built once per process and shared by every
  // trial; the injector only keeps a pointer (building a BitDistribution
  // per trial was measurable across a sweep's thousands of trials).
  faulty::FaultInjector injector(env.fault_rate,
                                 faulty::SharedBitDistribution(env.bit_model),
                                 env.seed, faulty::ResolveFaultModel(env.model),
                                 env.strategy, env.rng);
  detail::TrialFaultSession& session = detail::tls_trial_session;
  if (session.active) injector.AdoptWindow(session.window);
  if constexpr (std::is_void_v<decltype(fn())>) {
    {
      faulty::EngineScope engine_scope(env.engine);
      detail::FaultScope scope(&injector);
      std::forward<Fn>(fn)();
    }
    if (session.active) session.window = injector.ExportWindow();
    const faulty::ContextStats final_stats = injector.stats();
    if (stats) *stats = final_stats;
    detail::CountScopeTelemetry(final_stats);
  } else {
    struct Finalizer {
      faulty::FaultInjector& injector;
      faulty::ContextStats* stats;
      detail::TrialFaultSession& session;
      ~Finalizer() {
        if (session.active) session.window = injector.ExportWindow();
        const faulty::ContextStats final_stats = injector.stats();
        if (stats) *stats = final_stats;
        detail::CountScopeTelemetry(final_stats);
      }
    };
    faulty::EngineScope engine_scope(env.engine);
    detail::FaultScope scope(&injector);
    Finalizer finalize{injector, stats, session};
    return std::forward<Fn>(fn)();
  }
}

}  // namespace robustify::core
