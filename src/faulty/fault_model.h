// FaultModel: the campaign-sweepable description of *how* the stochastic
// processor corrupts, separated from *how often* (the fault rate).
//
// The paper's evaluation fixes a single model — one transient single-bit
// upset per corrupted op — and explicitly leaves other silicon failure
// modes to future work.  Real voltage-overscaled hardware also exhibits
// stuck-at bits (a latch that holds its value for many cycles), multi-bit
// bursts (adjacent datapath lines failing together), and intermittent
// clusters (a marginal path that degrades for a short window).  FaultModel
// describes one such temporal behavior plus an op-class mask saying which
// kinds of routed operations can fail: arithmetic results, comparison
// predicates, and (new) memory loads of vector/matrix elements.
//
// Semantics (all models share the scheduled fault stream of the configured
// rate; the temporal model decides what a scheduled fault *does*):
//
//  * kTransient  — today's locked-in default: flip one sampled bit of the
//    faulting op's result.  Byte-identical to the pre-model injector.
//  * kStuckAt    — the scheduled fault samples a bit position, a stuck
//    value (0 or 1), and a duration D ~ Geometric(1/stuck_mean_ops); for
//    the next D routed ops the bit is forced in every arithmetic/load
//    result (comparisons have no result word and pass through).  While the
//    window is live the injector reports CleanRun() == 0, so block kernels
//    degrade to the per-scalar boundary path and both engines stay
//    bit-identical.
//  * kBurst      — the scheduled fault flips k adjacent bits starting at
//    the sampled position, k ~ Uniform{1..burst_width_max} (clamped at the
//    word edge).
//  * kIntermittent — the scheduled fault flips one sampled bit and opens a
//    window of W ~ Geometric(1/window_mean_ops) routed ops during which
//    every op additionally faults with probability window_rate (each an
//    independent single-bit flip).  CleanRun() is 0 while the window is
//    open, for the same engine-equivalence reason as stuck-at.
//
// The op-class mask thins the scheduled stream per class: a scheduled
// fault landing on an op whose class is masked out re-arms the schedule
// without corrupting (and without counting a fault), so each enabled class
// independently sees the configured per-op rate and a disabled class sees
// zero.  Memory loads are only routed through the injector at all when
// kOpClassMemory is enabled — the default op stream is unchanged.
#pragma once

#include <cstdint>
#include <string>

#include "faulty/lfsr.h"

namespace robustify::faulty {

enum class Temporal {
  kAuto,          // defer to ROBUSTIFY_FAULT_MODEL, else transient
  kTransient,     // single-bit upset per scheduled fault (the default)
  kStuckAt,       // sampled bit sticks at 0/1 for a sampled duration
  kBurst,         // k adjacent bits flip, k sampled per fault
  kIntermittent,  // a fault opens a short high-rate window
};

// Op-class mask bits.  The historical injector routes arithmetic results
// and comparison predicates; memory-load corruption is opt-in.
inline constexpr unsigned kOpClassArith = 1u;
inline constexpr unsigned kOpClassCompare = 2u;
inline constexpr unsigned kOpClassMemory = 4u;
inline constexpr unsigned kOpClassDefault = kOpClassArith | kOpClassCompare;
inline constexpr unsigned kOpClassAll =
    kOpClassArith | kOpClassCompare | kOpClassMemory;

struct FaultModel {
  Temporal temporal = Temporal::kAuto;
  unsigned op_classes = kOpClassDefault;

  // kStuckAt: mean of the geometric stuck-window duration, in routed ops.
  double stuck_mean_ops = 256.0;
  // kBurst: widths are Uniform{1 .. burst_width_max}.
  int burst_width_max = 4;
  // kIntermittent: mean window length in routed ops, and the per-op fault
  // probability while the window is open.
  double window_mean_ops = 64.0;
  double window_rate = 0.25;
};

// True when `model` (after kAuto resolution) is behaviorally the historical
// default: transient temporal model, arithmetic + comparison classes.  The
// parameter fields are ignored — no other temporal model reads them.
bool IsDefaultModel(const FaultModel& model);

// Resolves temporal == kAuto through the ROBUSTIFY_FAULT_MODEL environment
// override ("transient" | "stuck" | "burst" | "intermittent", cached on
// first use), else to kTransient.  Explicit temporal values pass through
// untouched, so tests that pin a model are immune to the override.
FaultModel ResolveFaultModel(const FaultModel& model);

// Name/parse pair for the temporal axis ("transient", "stuck", "burst",
// "intermittent"; kAuto formats as "").  Parse returns kAuto for
// unrecognized text.
const char* TemporalName(Temporal temporal);
Temporal ParseTemporal(const std::string& text);

// Name/parse pair for an op-class mask: comma-joined "arith,cmp,mem"
// subsets.  Parse throws std::runtime_error on unknown class names or an
// empty mask.
std::string OpClassesName(unsigned op_classes);
unsigned ParseOpClasses(const std::string& text);

// ---- per-fault samplers -----------------------------------------------------
//
// Exposed so the statistical gates (tests/test_statistical.cpp) can hold
// the sampled laws to chi-square criteria against the exact distributions
// the injector draws from.

// D ~ Geometric on {1, 2, ...} with P(D = d) = p (1-p)^(d-1), p = 1/mean
// (mean <= 1 degenerates to the constant 1).
std::uint64_t SampleStuckDuration(double mean_ops, Lfsr& rng);

// k ~ Uniform{1 .. width_max} via a 32-bit multiply-shift (bias 2^-32).
int SampleBurstWidth(int width_max, Lfsr& rng);

// W ~ Geometric on {1, 2, ...} with mean window_mean_ops, same law as
// SampleStuckDuration.
std::uint64_t SampleWindowLength(double mean_ops, Lfsr& rng);

}  // namespace robustify::faulty
