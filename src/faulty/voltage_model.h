// Calibrated supply-voltage → FPU error-rate curve (paper Figure 5.2).
//
// The curve is near-zero at the nominal 1.0 V, has a guardband knee around
// 0.9 V, and rises by orders of magnitude as the FPU is overscaled further.
// It is stored as a calibration table interpolated log-linearly in the rate;
// the inverse lookup answers "how far may I overscale for a tolerated rate".
#pragma once

#include <cstddef>
#include <vector>

namespace robustify::faulty {

class VoltageModel {
 public:
  VoltageModel();

  // Errors per FP operation at supply voltage `v` (volts, nominal 1.0).
  double error_rate(double v) const;

  // Lowest voltage whose error rate is still <= `rate` (inverse lookup).
  double voltage_for_error_rate(double rate) const;

  double nominal_voltage() const { return kNominal; }
  double min_voltage() const { return kMin; }

  static constexpr double kNominal = 1.0;
  static constexpr double kMin = 0.60;

 private:
  struct Point {
    double voltage;
    double log10_rate;
  };
  std::vector<Point> table_;  // descending voltage
};

}  // namespace robustify::faulty
