// Per-thread FP fault injector.
//
// Models the paper's "stochastic processor": a voltage-overscaled FPU whose
// arithmetic results are occasionally corrupted by a single-bit upset, while
// the integer/control core stays reliable.  Every faulty::Real arithmetic
// operation routes its IEEE-754 double result through the thread-local
// injector, which counts the op and, with probability `fault_rate`, flips
// one bit sampled from the configured BitDistribution.
//
// Hot path (geometric skip-ahead): instead of one Bernoulli RNG draw per
// op, the injector samples the number of clean ops until the next fault
// once per *fault* — from a shared per-rate GeometricGapSampler — and
// Execute() is then a single counter decrement + compare until the
// countdown hits zero.  The gap sampler's alias-table form keeps the
// per-fault cost at one draw + one probe even when a fault lands every few
// ops, so skip-ahead is the single strategy for the whole rate range
// (1e-7 .. 0.5 and beyond); the original per-op Bernoulli implementation
// survives only as the statistical test oracle, selectable explicitly or
// via ROBUSTIFY_INJECTOR=perop.  Flop accounting stays exact in both modes
// (skip-ahead derives it from the scheduled-gap arithmetic, so the hot path
// does not even touch a counter), and a fixed seed + strategy still
// reproduces the trial bit-for-bit.  Note: the *fault stream* for a given
// seed differs between the strategies — they are statistically, not
// bitwise, equivalent (tests/test_statistical.cpp holds them to that).
#pragma once

#include <cstdint>

#include "faulty/bit_distribution.h"
#include "faulty/fault_model.h"
#include "faulty/gap_sampler.h"
#include "faulty/lfsr.h"

// The countdown branch is taken for all but ~rate of the ops; telling the
// compiler keeps the fault machinery out of the fall-through path.
#if defined(__GNUC__) || defined(__clang__)
#define ROBUSTIFY_LIKELY(x) __builtin_expect(!!(x), 1)
#else
#define ROBUSTIFY_LIKELY(x) (x)
#endif

namespace robustify::faulty {

// Accounting for one activation scope (see core::WithFaultyFpu).
struct ContextStats {
  std::uint64_t faulty_flops = 0;    // FP ops executed on the faulty FPU
  std::uint64_t faults_injected = 0; // how many of them were corrupted
  // Corruptions split by op class (they sum to faults_injected), plus the
  // number of sticky/intermittent windows the temporal model opened.  All
  // zero except faults_arith/faults_compare under the default model.
  std::uint64_t faults_arith = 0;
  std::uint64_t faults_compare = 0;
  std::uint64_t faults_memory = 0;
  std::uint64_t windows_opened = 0;
};

// How many LFSR words one fault costs.  Split (the historical default)
// spends one word on the gap draw and one on the bit-position draw; fused
// carves both out of a single word — high 32 bits pick the gap, low 32 the
// bit — halving the per-fault RNG cost that dominates high-rate cells
// (every alias probe then reads a 26-bit residual against the top 26 bits
// of the 58-bit stay thresholds; the 2^-26 probability quantization is far
// below what the statistical gates can resolve, and
// tests/test_statistical.cpp holds the fused stream to the same
// chi-square/KS criteria as the split one).  The fault *streams* differ
// between modes for a fixed seed — they are statistically, not bitwise,
// equivalent, exactly like the skip-ahead/per-op strategy pair.
enum class RngMode {
  kAuto,   // defer to ROBUSTIFY_RNG, else split
  kSplit,  // one word per draw: gap, then bit position
  kFused,  // one word per fault: high 32 bits gap, low 32 bits bit
};

// The ROBUSTIFY_RNG override every kAuto scope resolves through: kFused for
// "fused", kSplit for "split", kAuto when unset or unrecognized.  Cached on
// first use.
RngMode EnvRngMode();

// Perf-report label for a mode: "fused", "split", or "" for kAuto (the
// unset default; perf JSON writers omit the field).  One mapping shared by
// every report producer so the JSONs cannot drift.
const char* RngModeName(RngMode mode);

// A live sticky (stuck-at / intermittent) window snapshotted at injector
// scope exit so the next scope of the same trial can resume it — a stuck
// line in silicon doesn't heal between kernel calls (see
// core::TrialFaultScope).  Dead (ops_left == 0) under the default model and
// for scopes whose window expired naturally.
struct CarriedWindow {
  std::uint64_t ops_left = 0;
  std::uint64_t stuck_or = 0;       // stuck-at-1 forcing mask
  std::uint64_t stuck_and = ~0ull;  // stuck-at-0 forcing mask
  Temporal temporal = Temporal::kTransient;
  bool live() const { return ops_left != 0; }
};

class FaultInjector {
 public:
  enum class Strategy {
    kAuto,       // skip-ahead, unless ROBUSTIFY_INJECTOR overrides
    kSkipAhead,  // geometric countdown (the production strategy, all rates)
    kPerOp,      // per-op Bernoulli draw (reference oracle for the tests)
  };

  // `bits` is captured by pointer and must outlive the injector; use
  // SharedBitDistribution() for the built-in models.  kAuto resolves via
  // the ROBUSTIFY_INJECTOR environment variable ("skip" or "perop") when
  // set, else to kSkipAhead; rng kAuto resolves via ROBUSTIFY_RNG, else to
  // kSplit (the per-op oracle always draws split, preserving its stream).
  FaultInjector(double fault_rate, const BitDistribution& bits, std::uint64_t seed,
                Strategy strategy = Strategy::kAuto, RngMode rng = RngMode::kAuto);
  // Fault-model form.  `model.temporal == kAuto` is taken as kTransient
  // here — the ROBUSTIFY_FAULT_MODEL override is resolved by the scope
  // layer (core::WithFaultyFpu via ResolveFaultModel), never by the
  // injector itself, so tests and benches that construct injectors
  // directly are immune to the env override.  Non-default models always
  // draw split RNG words (the fused layout applies only to the default
  // transient model).
  FaultInjector(double fault_rate, const BitDistribution& bits, std::uint64_t seed,
                const FaultModel& model, Strategy strategy = Strategy::kAuto,
                RngMode rng = RngMode::kAuto);
  // A temporary would dangle (only a pointer is kept); make it a compile
  // error instead of a use-after-free on the first injected fault.
  FaultInjector(double fault_rate, BitDistribution&& bits, std::uint64_t seed,
                Strategy strategy = Strategy::kAuto, RngMode rng = RngMode::kAuto) = delete;

  // Hot path: clean until the countdown expires.  In per-op mode the
  // countdown is pinned to zero, so control falls through to the original
  // inline Bernoulli decision on every op.
  double Execute(double clean_result) {
    const std::uint64_t remaining = countdown_;
    if (ROBUSTIFY_LIKELY(remaining != 0)) {
      countdown_ = remaining - 1;
      return clean_result;
    }
    if (per_op_) {
      if (!model_default_) return ModelFault(clean_result, kOpClassArith);
      ++scheduled_;
      if (threshold_ != 0 && rng_.next() < threshold_) return Corrupt(clean_result);
      return clean_result;
    }
    return FaultPath(clean_result);
  }

  // FP comparisons run through the subtractor and the comparator flags; a
  // timing fault there inverts the predicate outcome.
  bool ExecuteComparison(bool clean_result) {
    const std::uint64_t remaining = countdown_;
    if (ROBUSTIFY_LIKELY(remaining != 0)) {
      countdown_ = remaining - 1;
      return clean_result;
    }
    if (per_op_) {
      if (!model_default_) return ModelComparisonFault(clean_result);
      ++scheduled_;
      if (threshold_ != 0 && rng_.next() < threshold_) {
        ++faults_;
        ++faults_compare_;
        return !clean_result;
      }
      return clean_result;
    }
    return FaultPathComparison(clean_result);
  }

  // Memory-load corruption (op class kOpClassMemory): the linalg kernel
  // layer routes element reads through here when the model enables the
  // class (callers must check routes_loads() first — the default model
  // keeps loads entirely off the injector, preserving the historical op
  // stream).  A routed load counts as one scheduled op, exactly like an
  // arithmetic result.
  double ExecuteLoad(double clean_value) {
    const std::uint64_t remaining = countdown_;
    if (ROBUSTIFY_LIKELY(remaining != 0)) {
      countdown_ = remaining - 1;
      return clean_value;
    }
    return ModelFault(clean_value, kOpClassMemory);
  }

  // True when the active model corrupts memory loads.  Implies a
  // non-default model, so dispatch layers force the templated per-scalar
  // kernels (where the load hooks live) on both engines.
  bool routes_loads() const { return routes_loads_; }

  const FaultModel& model() const { return model_; }

  // ---- block-engine API (src/faulty/block_engine.h, linalg/faulty_blas) --
  //
  // A block kernel executes the next `CleanRun()` ops as one tight loop over
  // raw doubles and then accounts for them with a single ConsumeClean —
  // observationally identical to that many Execute calls (the countdown is
  // the only per-op state, and stats derive from it), but with nothing of
  // the injector on the clean path.  In per-op oracle mode the countdown is
  // pinned at zero, so CleanRun() is 0 and block kernels degrade to the
  // per-scalar boundary path op by op, preserving the oracle's RNG stream.

  // Ops guaranteed clean from now under the deterministic gap schedule.
  // While a sticky window (stuck-at / intermittent) is live the countdown
  // is pinned at zero, so this returns 0 and block kernels degrade to the
  // per-scalar boundary path op by op — which is exactly what keeps the
  // block and scalar engines bit-identical under the sticky models.
  std::uint64_t CleanRun() const { return countdown_; }

  // Accounts for `n` clean ops executed outside Execute().  Precondition:
  // n <= CleanRun().
  void ConsumeClean(std::uint64_t n) { countdown_ -= n; }

  // Above this rate the mean clean run is too short for bulk loops to beat
  // the per-scalar path (the per-fault machinery dominates both), so the
  // block engine's dispatch falls back to the per-scalar loops — which are
  // bit-identical by construction, so the choice is invisible to results.
  static constexpr double kBulkProfitableMaxRate = 1.0 / 32.0;
  bool BulkProfitable() const { return bulk_profitable_; }

  ContextStats stats() const {
    ContextStats s;
    // Single invariant for both strategies (mod 2^64): ops executed =
    // scheduled_ - countdown_.  Skip-ahead keeps countdown_ inside the last
    // sampled gap; per-op mode pins countdown_ at 0 and bumps scheduled_
    // once per op, so the same subtraction is the plain op count.  A live
    // sticky window moves the suspended remainder of the gap to
    // pending_gap_ (outside both terms) and restores it symmetrically on
    // expiry, so the invariant holds through every window transition.
    s.faulty_flops = scheduled_ - countdown_;
    s.faults_injected = faults_;
    s.faults_arith = faults_arith_;
    s.faults_compare = faults_compare_;
    s.faults_memory = faults_memory_;
    s.windows_opened = windows_opened_;
    return s;
  }

  Strategy strategy() const { return per_op_ ? Strategy::kPerOp : Strategy::kSkipAhead; }
  RngMode rng_mode() const { return fused_ ? RngMode::kFused : RngMode::kSplit; }

  // ---- window hand-off across scopes (core::TrialFaultScope) -------------
  //
  // Historically a live stuck/intermittent window died with its injector
  // scope: a bit reported "stuck" healed the moment one kernel call returned
  // and the next began.  ExportWindow snapshots the live window at scope
  // exit; AdoptWindow re-arms it in the next scope's injector (suspending
  // that injector's gap schedule exactly as OpenWindow would) so the window
  // runs out its remaining ops across scope boundaries.  Adoption is not a
  // new window: stats().windows_opened counts only windows the temporal
  // model opened.  A no-op unless the carried window is live and this
  // injector runs the same non-default temporal model.
  CarriedWindow ExportWindow() const;
  void AdoptWindow(const CarriedWindow& window);

 private:
  static constexpr std::uint64_t kNever = ~0ull;

  // Cold paths (out of line, src/faulty/fault_injector.cpp): corrupt the
  // result and, in skip-ahead mode, re-arm the countdown.
  double FaultPath(double clean_result);
  bool FaultPathComparison(bool clean_result);
  std::uint64_t SampleGap();
  double Corrupt(double value);
  static double FlipBit(double value, int bit);

  // Non-default temporal-model machinery (cold, out of line).  ModelFault /
  // ModelComparisonFault own the whole op under a non-default model:
  // schedule bookkeeping, firing the scheduled fault, and applying any live
  // window effect (stuck-bit forcing, intermittent in-window corruption).
  double ModelFault(double clean_result, unsigned op_class);
  bool ModelComparisonFault(bool clean_result);
  double FireScheduledFault(double value, unsigned op_class);
  void ArmStuckWindow();
  void OpenWindow(std::uint64_t length);
  void CloseWindow();
  double CorruptClass(double value, unsigned op_class);
  void CountClassFault(unsigned op_class);

  const BitDistribution* bits_;
  const GeometricGapSampler* gaps_ = nullptr;  // null at rates 0 and 1
  Lfsr rng_;
  std::uint64_t countdown_ = 0;   // clean ops left before the next fault
  std::uint64_t scheduled_ = 0;   // ops covered: sampled gaps (skip-ahead)
                                  // or one per op (per-op oracle)
  std::uint64_t faults_ = 0;
  std::uint64_t threshold_ = 0;   // fault_rate scaled to the uint64 range
  bool per_op_ = false;
  bool fused_ = false;            // one LFSR word serves the gap + bit draws
  bool bulk_profitable_ = true;   // rate low enough for bulk clean runs

  // ---- temporal-model state (untouched under the default model) ----------
  FaultModel model_{};
  bool model_default_ = true;     // fast-path flag: skip all of the below
  bool routes_loads_ = false;     // model routes memory loads (kOpClassMemory)
  std::uint64_t window_ops_left_ = 0;  // live stuck/intermittent window ops
  std::uint64_t pending_gap_ = 0;  // skip-ahead gap suspended by the window
  std::uint64_t stuck_or_ = 0;     // live stuck-at-1 forcing mask
  std::uint64_t stuck_and_ = ~0ull;  // live stuck-at-0 forcing mask
  std::uint64_t window_threshold_ = 0;  // window_rate scaled to uint64
  std::uint64_t faults_arith_ = 0;
  std::uint64_t faults_compare_ = 0;
  std::uint64_t faults_memory_ = 0;
  std::uint64_t windows_opened_ = 0;
};

// The ROBUSTIFY_INJECTOR override every kAuto injector resolves through:
// kSkipAhead for "skip"/"skipahead"/"skip-ahead", kPerOp for "perop"/
// "per-op", kAuto when unset or unrecognized.  Cached on first use.
FaultInjector::Strategy EnvInjectorStrategy();

namespace detail {

// The active injector for this thread; null means "clean FPU".
inline thread_local FaultInjector* tls_injector = nullptr;

// Swap the active injector, returning the previous one (for RAII restore).
inline FaultInjector* ExchangeThreadInjector(FaultInjector* next) {
  FaultInjector* prev = tls_injector;
  tls_injector = next;
  return prev;
}

}  // namespace detail

// Routes one FP result through the thread's injector (clean when inactive).
inline double Execute(double clean_result) {
  FaultInjector* inj = detail::tls_injector;
  return inj ? inj->Execute(clean_result) : clean_result;
}

// Routes one FP comparison outcome through the thread's injector.
inline bool ExecuteComparison(bool clean_result) {
  FaultInjector* inj = detail::tls_injector;
  return inj ? inj->ExecuteComparison(clean_result) : clean_result;
}

// True when a fault-injection scope is active on this thread.
inline bool InjectorActive() { return detail::tls_injector != nullptr; }

// True when the active scope's model corrupts memory loads — the linalg
// kernels consult this before routing element reads through ExecuteLoad,
// and the engine dispatch forces the templated per-scalar loops (which
// carry the load hooks) whenever it holds.
inline bool LoadsRouted() {
  const FaultInjector* inj = detail::tls_injector;
  return inj != nullptr && inj->routes_loads();
}

// Routes one memory load through the thread's injector.  Callers must have
// checked LoadsRouted(); the null test here is only a safety net for
// kernels instantiated outside a scope.
inline double ExecuteLoad(double clean_value) {
  FaultInjector* inj = detail::tls_injector;
  return inj ? inj->ExecuteLoad(clean_value) : clean_value;
}

}  // namespace robustify::faulty
