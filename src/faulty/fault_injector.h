// Per-thread FP fault injector.
//
// Models the paper's "stochastic processor": a voltage-overscaled FPU whose
// arithmetic results are occasionally corrupted by a single-bit upset, while
// the integer/control core stays reliable.  Every faulty::Real arithmetic
// operation routes its IEEE-754 double result through the thread-local
// injector, which counts the op and, with probability `fault_rate`, flips
// one bit sampled from the configured BitDistribution.
#pragma once

#include <cstdint>
#include <cstring>

#include "faulty/bit_distribution.h"
#include "faulty/lfsr.h"

namespace robustify::faulty {

// Accounting for one activation scope (see core::WithFaultyFpu).
struct ContextStats {
  std::uint64_t faulty_flops = 0;    // FP ops executed on the faulty FPU
  std::uint64_t faults_injected = 0; // how many of them were corrupted
};

class FaultInjector {
 public:
  FaultInjector(double fault_rate, const BitDistribution& bits, std::uint64_t seed)
      : bits_(bits), rng_(seed ^ 0xA5A5A5A55A5A5A5Aull) {
    if (fault_rate <= 0.0) {
      threshold_ = 0;
    } else if (fault_rate >= 1.0) {
      threshold_ = ~0ull;
    } else {
      threshold_ = static_cast<std::uint64_t>(fault_rate * 18446744073709551616.0);
      if (threshold_ == 0) threshold_ = 1;
    }
  }

  // Hot path: count the op, rarely corrupt it.
  double Execute(double clean_result) {
    ++stats_.faulty_flops;
    if (threshold_ != 0 && rng_.next() < threshold_) return Corrupt(clean_result);
    return clean_result;
  }

  // FP comparisons run through the subtractor and the comparator flags; a
  // timing fault there inverts the predicate outcome.
  bool ExecuteComparison(bool clean_result) {
    ++stats_.faulty_flops;
    if (threshold_ != 0 && rng_.next() < threshold_) {
      ++stats_.faults_injected;
      return !clean_result;
    }
    return clean_result;
  }

  const ContextStats& stats() const { return stats_; }

 private:
  double Corrupt(double value) {
    ++stats_.faults_injected;
    const int bit = bits_.sample(rng_);
    std::uint64_t word;
    std::memcpy(&word, &value, sizeof(word));
    word ^= (1ull << bit);
    std::memcpy(&value, &word, sizeof(value));
    return value;
  }

  BitDistribution bits_;
  Lfsr rng_;
  std::uint64_t threshold_ = 0;  // fault_rate scaled to the uint64 range
  ContextStats stats_;
};

namespace detail {

// The active injector for this thread; null means "clean FPU".
inline thread_local FaultInjector* tls_injector = nullptr;

// Swap the active injector, returning the previous one (for RAII restore).
inline FaultInjector* ExchangeThreadInjector(FaultInjector* next) {
  FaultInjector* prev = tls_injector;
  tls_injector = next;
  return prev;
}

}  // namespace detail

// Routes one FP result through the thread's injector (clean when inactive).
inline double Execute(double clean_result) {
  FaultInjector* inj = detail::tls_injector;
  return inj ? inj->Execute(clean_result) : clean_result;
}

// Routes one FP comparison outcome through the thread's injector.
inline bool ExecuteComparison(bool clean_result) {
  FaultInjector* inj = detail::tls_injector;
  return inj ? inj->ExecuteComparison(clean_result) : clean_result;
}

// True when a fault-injection scope is active on this thread.
inline bool InjectorActive() { return detail::tls_injector != nullptr; }

}  // namespace robustify::faulty
