#include "faulty/gap_sampler.h"

#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "faulty/alias_table.h"

namespace robustify::faulty {

GeometricGapSampler::GeometricGapSampler(double rate) : rate_(rate) {
  inv_log1m_rate_ = 1.0 / std::log1p(-rate);
  table_ = rate >= kTableMinRate;
  if (table_) BuildAliasTable();
}

// Inverse CDF from one draw: u in (0, 1] (53 uniform bits shifted into the
// open-at-zero interval so log(u) is finite), gap = log(u) / log(1 - rate).
std::uint64_t GeometricGapSampler::SampleInverseCdf(Lfsr& rng) const {
  const double u = (static_cast<double>(rng.next() >> 11) + 1.0) * 0x1.0p-53;
  const double gap = std::log(u) * inv_log1m_rate_;  // >= 0
  // Casting a double >= 2^64 is undefined; clamp far gaps to "never".
  if (!(gap < 18446744073709549568.0)) return kNever;
  return static_cast<std::uint64_t>(gap);
}

// 32-bit fused-draw variant: u quantizes the uniform at 2^-32 (centered so
// it stays in (0, 1)).  The coarser grid truncates the geometric tail at
// ~22 mean gaps — probability e^-22 — and perturbs bin masses by O(2^-32),
// both far below the statistical gates' resolution.
std::uint64_t GeometricGapSampler::SampleInverseCdf32(std::uint32_t u) const {
  const double ud = (static_cast<double>(u) + 0.5) * 0x1.0p-32;
  const double gap = std::log(ud) * inv_log1m_rate_;  // >= 0
  if (!(gap < 18446744073709549568.0)) return kNever;
  return static_cast<std::uint64_t>(gap);
}

void GeometricGapSampler::BuildAliasTable() {
  // Outcome probabilities: P(gap = k) = r (1-r)^k for k < 63, and the tail
  // P(gap >= 63) = (1-r)^63 in the last slot.
  std::array<double, kTableSlots> p{};
  double remaining = 1.0;
  for (int k = 0; k < kTableGaps; ++k) {
    p[static_cast<std::size_t>(k)] = rate_ * remaining;
    remaining *= 1.0 - rate_;
  }
  p[kTableGaps] = remaining;
  BuildWalkerAliasTable(p.data(), kTableSlots, stay_threshold_.data(), alias_.data());
}

const GeometricGapSampler& GeometricGapSampler::Shared(double rate) {
  // Keyed by the exact bit pattern: sweeps pass the same literal rates every
  // trial, so the map stays a handful of entries.  node-based map + mutex:
  // entries are never invalidated once handed out.
  static std::mutex mu;
  static std::unordered_map<std::uint64_t, std::unique_ptr<GeometricGapSampler>>
      cache;
  std::uint64_t key;
  std::memcpy(&key, &rate, sizeof(key));
  std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<GeometricGapSampler>& slot = cache[key];
  if (!slot) slot = std::make_unique<GeometricGapSampler>(rate);
  return *slot;
}

}  // namespace robustify::faulty
