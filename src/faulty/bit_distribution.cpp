#include "faulty/bit_distribution.h"

#include <cmath>
#include <vector>

namespace robustify::faulty {

namespace {

std::array<double, kWordBits> ModelWeights(BitModel model) {
  std::array<double, kWordBits> w{};
  switch (model) {
    case BitModel::kBimodal: {
      // Low mode: short combinational paths, geometric decay upward from
      // bit 0.  High mode: the long carry chains feeding the top mantissa
      // bits, peaked just below the exponent boundary.  Exponent and sign
      // upsets are rare but present (they are what makes faults
      // occasionally catastrophic rather than merely noisy).
      for (int b = 0; b <= 11; ++b) {
        w[static_cast<std::size_t>(b)] = 0.115 * std::exp(-0.30 * b);
      }
      for (int b = 40; b <= 51; ++b) {
        w[static_cast<std::size_t>(b)] = 0.125 * std::exp(-0.35 * (51 - b));
      }
      for (int b = 12; b <= 39; ++b) {
        w[static_cast<std::size_t>(b)] = 0.0008;  // the valley
      }
      for (int b = kExponentLow; b <= 62; ++b) {  // full exponent field
        w[static_cast<std::size_t>(b)] = 0.006 / (b - kExponentLow + 1);
      }
      w[kSignBit] = 0.012;
      break;
    }
    case BitModel::kUniform:
      w.fill(1.0);
      break;
    case BitModel::kMsbOnly:
      for (int b = kExponentLow; b < kWordBits; ++b) w[static_cast<std::size_t>(b)] = 1.0;
      break;
    case BitModel::kLsbOnly:
      for (int b = 0; b <= 11; ++b) w[static_cast<std::size_t>(b)] = 1.0;
      break;
  }
  return w;
}

}  // namespace

BitDistribution::BitDistribution(const std::array<double, kWordBits>& weights)
    : weights_(weights) {
  Normalize();
  BuildAliasTable();
}

BitDistribution::BitDistribution(BitModel model) : weights_(ModelWeights(model)) {
  Normalize();
  BuildAliasTable();
}

void BitDistribution::Normalize() {
  double total = 0.0;
  for (double w : weights_) total += w;
  if (total <= 0.0) {
    weights_.fill(1.0 / kWordBits);
  } else {
    for (double& w : weights_) w /= total;
  }
}

void BitDistribution::BuildAliasTable() {
  // Vose's stable construction.  scaled[i] = p_i * 64; slots below 1 are
  // topped up by donors above 1, so every slot splits between at most two
  // outcomes: itself (with probability scaled[i] after top-up) and alias[i].
  constexpr double kSlotScale = static_cast<double>(1ull << 58);
  std::array<double, kWordBits> scaled{};
  std::vector<int> small, large;
  for (int b = 0; b < kWordBits; ++b) {
    scaled[static_cast<std::size_t>(b)] = weights_[static_cast<std::size_t>(b)] * kWordBits;
    (scaled[static_cast<std::size_t>(b)] < 1.0 ? small : large).push_back(b);
  }
  while (!small.empty() && !large.empty()) {
    const int s = small.back();
    small.pop_back();
    const int l = large.back();
    large.pop_back();
    stay_threshold_[static_cast<std::size_t>(s)] = static_cast<std::uint64_t>(
        scaled[static_cast<std::size_t>(s)] * kSlotScale);
    alias_[static_cast<std::size_t>(s)] = static_cast<std::uint8_t>(l);
    scaled[static_cast<std::size_t>(l)] -= 1.0 - scaled[static_cast<std::size_t>(s)];
    (scaled[static_cast<std::size_t>(l)] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are exactly 1 up to rounding: the slot always returns itself.
  for (const int b : large) {
    stay_threshold_[static_cast<std::size_t>(b)] = ~0ull;
    alias_[static_cast<std::size_t>(b)] = static_cast<std::uint8_t>(b);
  }
  for (const int b : small) {
    stay_threshold_[static_cast<std::size_t>(b)] = ~0ull;
    alias_[static_cast<std::size_t>(b)] = static_cast<std::uint8_t>(b);
  }
}

const BitDistribution& SharedBitDistribution(BitModel model) {
  // Magic statics: built once, thread-safe, immutable afterwards.
  static const BitDistribution bimodal(BitModel::kBimodal);
  static const BitDistribution uniform(BitModel::kUniform);
  static const BitDistribution msb(BitModel::kMsbOnly);
  static const BitDistribution lsb(BitModel::kLsbOnly);
  switch (model) {
    case BitModel::kBimodal: return bimodal;
    case BitModel::kUniform: return uniform;
    case BitModel::kMsbOnly: return msb;
    case BitModel::kLsbOnly: return lsb;
  }
  return bimodal;
}

}  // namespace robustify::faulty
