#include "faulty/bit_distribution.h"

#include <cmath>

#include "faulty/alias_table.h"

namespace robustify::faulty {

namespace {

std::array<double, kWordBits> ModelWeights(BitModel model) {
  std::array<double, kWordBits> w{};
  switch (model) {
    case BitModel::kBimodal: {
      // Low mode: short combinational paths, geometric decay upward from
      // bit 0.  High mode: the long carry chains feeding the top mantissa
      // bits, peaked just below the exponent boundary.  Exponent and sign
      // upsets are rare but present (they are what makes faults
      // occasionally catastrophic rather than merely noisy).
      for (int b = 0; b <= 11; ++b) {
        w[static_cast<std::size_t>(b)] = 0.115 * std::exp(-0.30 * b);
      }
      for (int b = 40; b <= 51; ++b) {
        w[static_cast<std::size_t>(b)] = 0.125 * std::exp(-0.35 * (51 - b));
      }
      for (int b = 12; b <= 39; ++b) {
        w[static_cast<std::size_t>(b)] = 0.0008;  // the valley
      }
      for (int b = kExponentLow; b <= 62; ++b) {  // full exponent field
        w[static_cast<std::size_t>(b)] = 0.006 / (b - kExponentLow + 1);
      }
      w[kSignBit] = 0.012;
      break;
    }
    case BitModel::kUniform:
      w.fill(1.0);
      break;
    case BitModel::kMsbOnly:
      for (int b = kExponentLow; b < kWordBits; ++b) w[static_cast<std::size_t>(b)] = 1.0;
      break;
    case BitModel::kLsbOnly:
      for (int b = 0; b <= 11; ++b) w[static_cast<std::size_t>(b)] = 1.0;
      break;
  }
  return w;
}

}  // namespace

BitDistribution::BitDistribution(const std::array<double, kWordBits>& weights)
    : weights_(weights) {
  Normalize();
  BuildAliasTable();
}

BitDistribution::BitDistribution(BitModel model) : weights_(ModelWeights(model)) {
  Normalize();
  BuildAliasTable();
}

void BitDistribution::Normalize() {
  double total = 0.0;
  for (double w : weights_) total += w;
  if (total <= 0.0) {
    weights_.fill(1.0 / kWordBits);
  } else {
    for (double& w : weights_) w /= total;
  }
}

void BitDistribution::BuildAliasTable() {
  BuildWalkerAliasTable(weights_.data(), kWordBits, stay_threshold_.data(),
                        alias_.data());
}

const BitDistribution& SharedBitDistribution(BitModel model) {
  // Magic statics: built once, thread-safe, immutable afterwards.
  static const BitDistribution bimodal(BitModel::kBimodal);
  static const BitDistribution uniform(BitModel::kUniform);
  static const BitDistribution msb(BitModel::kMsbOnly);
  static const BitDistribution lsb(BitModel::kLsbOnly);
  switch (model) {
    case BitModel::kBimodal: return bimodal;
    case BitModel::kUniform: return uniform;
    case BitModel::kMsbOnly: return msb;
    case BitModel::kLsbOnly: return lsb;
  }
  return bimodal;
}

}  // namespace robustify::faulty
