#include "faulty/bit_distribution.h"

#include <cmath>

namespace robustify::faulty {

namespace {

std::array<double, kWordBits> ModelWeights(BitModel model) {
  std::array<double, kWordBits> w{};
  switch (model) {
    case BitModel::kBimodal: {
      // Low mode: short combinational paths, geometric decay upward from
      // bit 0.  High mode: the long carry chains feeding the top mantissa
      // bits, peaked just below the exponent boundary.  Exponent and sign
      // upsets are rare but present (they are what makes faults
      // occasionally catastrophic rather than merely noisy).
      for (int b = 0; b <= 11; ++b) {
        w[static_cast<std::size_t>(b)] = 0.115 * std::exp(-0.30 * b);
      }
      for (int b = 40; b <= 51; ++b) {
        w[static_cast<std::size_t>(b)] = 0.125 * std::exp(-0.35 * (51 - b));
      }
      for (int b = 12; b <= 39; ++b) {
        w[static_cast<std::size_t>(b)] = 0.0008;  // the valley
      }
      for (int b = kExponentLow; b <= 62; ++b) {  // full exponent field
        w[static_cast<std::size_t>(b)] = 0.006 / (b - kExponentLow + 1);
      }
      w[kSignBit] = 0.012;
      break;
    }
    case BitModel::kUniform:
      w.fill(1.0);
      break;
    case BitModel::kMsbOnly:
      for (int b = kExponentLow; b < kWordBits; ++b) w[static_cast<std::size_t>(b)] = 1.0;
      break;
    case BitModel::kLsbOnly:
      for (int b = 0; b <= 11; ++b) w[static_cast<std::size_t>(b)] = 1.0;
      break;
  }
  return w;
}

}  // namespace

BitDistribution::BitDistribution(const std::array<double, kWordBits>& weights)
    : weights_(weights) {
  Normalize();
}

BitDistribution::BitDistribution(BitModel model) : weights_(ModelWeights(model)) {
  Normalize();
}

void BitDistribution::Normalize() {
  double total = 0.0;
  for (double w : weights_) total += w;
  if (total <= 0.0) {
    weights_.fill(1.0 / kWordBits);
    total = 1.0;
  } else {
    for (double& w : weights_) w /= total;
  }
  double acc = 0.0;
  for (int b = 0; b < kWordBits; ++b) {
    acc += weights_[static_cast<std::size_t>(b)];
    cdf_[static_cast<std::size_t>(b)] = acc;
  }
  cdf_[kWordBits - 1] = 1.0;  // guard against rounding drift
}

int BitDistribution::sample(Lfsr& rng) const {
  const double u = rng.uniform();
  // 64 entries: linear scan is branch-predictable and as fast as a binary
  // search at this size.
  for (int b = 0; b < kWordBits; ++b) {
    if (u < cdf_[static_cast<std::size_t>(b)]) return b;
  }
  return kWordBits - 1;
}

}  // namespace robustify::faulty
