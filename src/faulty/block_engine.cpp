#include "faulty/block_engine.h"

#include <cstdlib>
#include <string>

namespace robustify::faulty {

// ROBUSTIFY_ENGINE=block|scalar pins every kAuto fault scope to one kernel
// engine (the scalar CI leg is what keeps the oracle path from rotting).
// Read once per process.
Engine EnvEngine() {
  static const Engine cached = [] {
    const char* env = std::getenv("ROBUSTIFY_ENGINE");
    if (env != nullptr) {
      const std::string value(env);
      if (value == "block") return Engine::kBlock;
      if (value == "scalar") return Engine::kScalar;
    }
    return Engine::kAuto;
  }();
  return cached;
}

}  // namespace robustify::faulty
