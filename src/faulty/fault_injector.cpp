#include "faulty/fault_injector.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

namespace robustify::faulty {

// ROBUSTIFY_INJECTOR=skip|perop forces a strategy for every kAuto injector
// (measurement and A/B testing knob).  Read once per process.
FaultInjector::Strategy EnvInjectorStrategy() {
  static const FaultInjector::Strategy cached = [] {
    const char* env = std::getenv("ROBUSTIFY_INJECTOR");
    if (env != nullptr) {
      const std::string value(env);
      if (value == "skip" || value == "skipahead" || value == "skip-ahead") {
        return FaultInjector::Strategy::kSkipAhead;
      }
      if (value == "perop" || value == "per-op") {
        return FaultInjector::Strategy::kPerOp;
      }
    }
    return FaultInjector::Strategy::kAuto;
  }();
  return cached;
}

FaultInjector::FaultInjector(double fault_rate, const BitDistribution& bits,
                             std::uint64_t seed, Strategy strategy)
    : bits_(&bits), rng_(seed ^ 0xA5A5A5A55A5A5A5Aull) {
  if (fault_rate <= 0.0) {
    threshold_ = 0;
  } else if (fault_rate >= 1.0) {
    threshold_ = kNever;
  } else {
    threshold_ = static_cast<std::uint64_t>(fault_rate * 18446744073709551616.0);
    if (threshold_ == 0) threshold_ = 1;
    inv_log1m_rate_ = 1.0 / std::log1p(-fault_rate);
  }

  if (strategy == Strategy::kAuto) strategy = EnvInjectorStrategy();
  if (strategy == Strategy::kAuto) {
    strategy = fault_rate <= kSkipAheadMaxRate ? Strategy::kSkipAhead
                                               : Strategy::kPerOp;
  }
  per_op_ = strategy == Strategy::kPerOp;

  if (per_op_) {
    countdown_ = 0;  // every op takes the fault path's Bernoulli decision
  } else if (threshold_ == 0) {
    countdown_ = kNever;
    scheduled_ = kNever;
  } else if (threshold_ == kNever) {
    countdown_ = 0;  // rate 1: every op faults
    scheduled_ = 0;
  } else {
    countdown_ = SampleGap();
    scheduled_ = countdown_;
  }
}

// Number of clean ops before the next fault: K ~ Geometric(rate),
// P(K = k) = rate * (1 - rate)^k, via inverse CDF from one LFSR draw.
std::uint64_t FaultInjector::SampleGap() {
  // u in (0, 1]: 53 uniform bits, shifted into the open-at-zero interval so
  // log(u) is finite.
  const double u =
      (static_cast<double>(rng_.next() >> 11) + 1.0) * 0x1.0p-53;
  const double gap = std::log(u) * inv_log1m_rate_;  // >= 0
  // Casting a double >= 2^64 is undefined; clamp far gaps to "never" (the
  // scheduled_ arithmetic wraps mod 2^64, which keeps flop accounting exact).
  if (!(gap < 18446744073709549568.0)) return kNever;
  return static_cast<std::uint64_t>(gap);
}

double FaultInjector::Corrupt(double value) {
  ++faults_;
  const int bit = bits_->sample(rng_);
  std::uint64_t word;
  std::memcpy(&word, &value, sizeof(word));
  word ^= (1ull << bit);
  std::memcpy(&value, &word, sizeof(value));
  return value;
}

double FaultInjector::FaultPath(double clean_result) {
  if (threshold_ == 0) {
    // Rate 0 (reachable only after 2^64-1 ops): re-arm without faulting.
    // scheduled_ += kNever + 1 is += 0 mod 2^64, so the invariant
    // flops = scheduled_ - countdown_ still counts this op.
    countdown_ = kNever;
    return clean_result;
  }
  const std::uint64_t gap = SampleGap();
  scheduled_ += gap + 1;  // this op plus the next clean stretch
  countdown_ = gap;
  return Corrupt(clean_result);
}

bool FaultInjector::FaultPathComparison(bool clean_result) {
  if (threshold_ == 0) {
    countdown_ = kNever;
    return clean_result;
  }
  const std::uint64_t gap = SampleGap();
  scheduled_ += gap + 1;
  countdown_ = gap;
  ++faults_;
  return !clean_result;
}

}  // namespace robustify::faulty
