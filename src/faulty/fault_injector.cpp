#include "faulty/fault_injector.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace robustify::faulty {

// ROBUSTIFY_INJECTOR=skip|perop forces a strategy for every kAuto injector
// (measurement and A/B testing knob; the perop CI leg keeps the oracle from
// rotting).  Read once per process.
FaultInjector::Strategy EnvInjectorStrategy() {
  static const FaultInjector::Strategy cached = [] {
    const char* env = std::getenv("ROBUSTIFY_INJECTOR");
    if (env != nullptr) {
      const std::string value(env);
      if (value == "skip" || value == "skipahead" || value == "skip-ahead") {
        return FaultInjector::Strategy::kSkipAhead;
      }
      if (value == "perop" || value == "per-op") {
        return FaultInjector::Strategy::kPerOp;
      }
    }
    return FaultInjector::Strategy::kAuto;
  }();
  return cached;
}

// ROBUSTIFY_RNG=fused|split pins the per-fault draw layout for every kAuto
// scope (split remains the default).  Read once per process.
RngMode EnvRngMode() {
  static const RngMode cached = [] {
    const char* env = std::getenv("ROBUSTIFY_RNG");
    if (env != nullptr) {
      const std::string value(env);
      if (value == "fused") return RngMode::kFused;
      if (value == "split") return RngMode::kSplit;
    }
    return RngMode::kAuto;
  }();
  return cached;
}

const char* RngModeName(RngMode mode) {
  switch (mode) {
    case RngMode::kFused: return "fused";
    case RngMode::kSplit: return "split";
    case RngMode::kAuto: break;
  }
  return "";
}

FaultInjector::FaultInjector(double fault_rate, const BitDistribution& bits,
                             std::uint64_t seed, Strategy strategy, RngMode rng)
    : bits_(&bits), rng_(seed ^ 0xA5A5A5A55A5A5A5Aull) {
  if (fault_rate <= 0.0) {
    threshold_ = 0;
  } else if (fault_rate >= 1.0) {
    threshold_ = kNever;
  } else {
    threshold_ = static_cast<std::uint64_t>(fault_rate * 18446744073709551616.0);
    if (threshold_ == 0) threshold_ = 1;
    gaps_ = &GeometricGapSampler::Shared(fault_rate);
  }

  bulk_profitable_ = fault_rate < kBulkProfitableMaxRate;

  if (strategy == Strategy::kAuto) strategy = EnvInjectorStrategy();
  // Skip-ahead covers the whole rate range (the gap sampler's alias table
  // keeps the per-fault cost flat even at rate 0.5); per-op exists only as
  // the explicitly requested reference oracle.
  per_op_ = strategy == Strategy::kPerOp;

  if (rng == RngMode::kAuto) rng = EnvRngMode();
  // The fused layout only applies where a fault draws gap + bit together:
  // the skip-ahead strategy at rates with a gap sampler.  The per-op
  // oracle keeps its historical split stream.
  fused_ = rng == RngMode::kFused && !per_op_ && gaps_ != nullptr;

  if (per_op_) {
    countdown_ = 0;  // every op takes the fault path's Bernoulli decision
  } else if (threshold_ == 0) {
    countdown_ = kNever;
    scheduled_ = kNever;
  } else if (threshold_ == kNever) {
    countdown_ = 0;  // rate 1: every op faults
    scheduled_ = 0;
  } else {
    countdown_ = SampleGap();
    scheduled_ = countdown_;
  }
}

// Number of clean ops before the next fault: K ~ Geometric(rate),
// P(K = k) = rate * (1 - rate)^k, drawn from the shared per-rate sampler
// (alias table at high rates, inverse CDF at low ones — see gap_sampler.h).
std::uint64_t FaultInjector::SampleGap() { return gaps_->Sample(rng_); }

double FaultInjector::FlipBit(double value, int bit) {
  std::uint64_t word;
  std::memcpy(&word, &value, sizeof(word));
  word ^= (1ull << bit);
  std::memcpy(&value, &word, sizeof(value));
  return value;
}

double FaultInjector::Corrupt(double value) {
  ++faults_;
  return FlipBit(value, bits_->sample(rng_));
}

double FaultInjector::FaultPath(double clean_result) {
  if (threshold_ == 0) {
    // Rate 0 (reachable only after 2^64-1 ops): re-arm without faulting.
    // scheduled_ += kNever + 1 is += 0 mod 2^64, so the invariant
    // flops = scheduled_ - countdown_ still counts this op.
    countdown_ = kNever;
    return clean_result;
  }
  if (threshold_ == kNever) {
    // Rate 1: every op faults; no gap to sample (gaps_ is null here).
    scheduled_ += 1;
    return Corrupt(clean_result);
  }
  if (fused_) {
    // One word pays for the whole fault: high half seeds the gap draw, low
    // half the bit draw.
    const std::uint64_t u = rng_.next();
    const std::uint64_t gap =
        gaps_->SampleFused(static_cast<std::uint32_t>(u >> 32), rng_);
    scheduled_ += gap + 1;
    countdown_ = gap;
    ++faults_;
    // Telemetry on the already-cold per-fault path only: the countdown hot
    // path stays untouched, and nothing here reads the simulation RNG.
    telemetry::Observe(telemetry::Histogram::kInjectorCleanRun, gap);
    telemetry::FaultInstant();
    return FlipBit(clean_result,
                   bits_->sample_fused(static_cast<std::uint32_t>(u)));
  }
  const std::uint64_t gap = SampleGap();
  scheduled_ += gap + 1;  // this op plus the next clean stretch
  countdown_ = gap;
  telemetry::Observe(telemetry::Histogram::kInjectorCleanRun, gap);
  telemetry::FaultInstant();
  return Corrupt(clean_result);
}

bool FaultInjector::FaultPathComparison(bool clean_result) {
  if (threshold_ == 0) {
    countdown_ = kNever;
    return clean_result;
  }
  if (threshold_ == kNever) {
    scheduled_ += 1;
    ++faults_;
    return !clean_result;
  }
  // A comparison fault flips the predicate instead of a stored bit, so
  // only the gap half of a fused word is consumed.
  const std::uint64_t gap =
      fused_ ? gaps_->SampleFused(static_cast<std::uint32_t>(rng_.next() >> 32), rng_)
             : SampleGap();
  scheduled_ += gap + 1;
  countdown_ = gap;
  ++faults_;
  telemetry::Observe(telemetry::Histogram::kInjectorCleanRun, gap);
  telemetry::FaultInstant();
  return !clean_result;
}

}  // namespace robustify::faulty
