#include "faulty/fault_injector.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace robustify::faulty {

// ROBUSTIFY_INJECTOR=skip|perop forces a strategy for every kAuto injector
// (measurement and A/B testing knob; the perop CI leg keeps the oracle from
// rotting).  Read once per process.
FaultInjector::Strategy EnvInjectorStrategy() {
  static const FaultInjector::Strategy cached = [] {
    const char* env = std::getenv("ROBUSTIFY_INJECTOR");
    if (env != nullptr) {
      const std::string value(env);
      if (value == "skip" || value == "skipahead" || value == "skip-ahead") {
        return FaultInjector::Strategy::kSkipAhead;
      }
      if (value == "perop" || value == "per-op") {
        return FaultInjector::Strategy::kPerOp;
      }
    }
    return FaultInjector::Strategy::kAuto;
  }();
  return cached;
}

// ROBUSTIFY_RNG=fused|split pins the per-fault draw layout for every kAuto
// scope (split remains the default).  Read once per process.
RngMode EnvRngMode() {
  static const RngMode cached = [] {
    const char* env = std::getenv("ROBUSTIFY_RNG");
    if (env != nullptr) {
      const std::string value(env);
      if (value == "fused") return RngMode::kFused;
      if (value == "split") return RngMode::kSplit;
    }
    return RngMode::kAuto;
  }();
  return cached;
}

const char* RngModeName(RngMode mode) {
  switch (mode) {
    case RngMode::kFused: return "fused";
    case RngMode::kSplit: return "split";
    case RngMode::kAuto: break;
  }
  return "";
}

FaultInjector::FaultInjector(double fault_rate, const BitDistribution& bits,
                             std::uint64_t seed, Strategy strategy, RngMode rng)
    : bits_(&bits), rng_(seed ^ 0xA5A5A5A55A5A5A5Aull) {
  if (fault_rate <= 0.0) {
    threshold_ = 0;
  } else if (fault_rate >= 1.0) {
    threshold_ = kNever;
  } else {
    threshold_ = static_cast<std::uint64_t>(fault_rate * 18446744073709551616.0);
    if (threshold_ == 0) threshold_ = 1;
    gaps_ = &GeometricGapSampler::Shared(fault_rate);
  }

  bulk_profitable_ = fault_rate < kBulkProfitableMaxRate;

  if (strategy == Strategy::kAuto) strategy = EnvInjectorStrategy();
  // Skip-ahead covers the whole rate range (the gap sampler's alias table
  // keeps the per-fault cost flat even at rate 0.5); per-op exists only as
  // the explicitly requested reference oracle.
  per_op_ = strategy == Strategy::kPerOp;

  if (rng == RngMode::kAuto) rng = EnvRngMode();
  // The fused layout only applies where a fault draws gap + bit together:
  // the skip-ahead strategy at rates with a gap sampler.  The per-op
  // oracle keeps its historical split stream.
  fused_ = rng == RngMode::kFused && !per_op_ && gaps_ != nullptr;

  if (per_op_) {
    countdown_ = 0;  // every op takes the fault path's Bernoulli decision
  } else if (threshold_ == 0) {
    countdown_ = kNever;
    scheduled_ = kNever;
  } else if (threshold_ == kNever) {
    countdown_ = 0;  // rate 1: every op faults
    scheduled_ = 0;
  } else {
    countdown_ = SampleGap();
    scheduled_ = countdown_;
  }
}

FaultInjector::FaultInjector(double fault_rate, const BitDistribution& bits,
                             std::uint64_t seed, const FaultModel& model,
                             Strategy strategy, RngMode rng)
    : FaultInjector(fault_rate, bits, seed, strategy, rng) {
  model_ = model;
  // kAuto is taken as kTransient here by contract: the environment override
  // is resolved by the scope layer (core::WithFaultyFpu), so directly
  // constructed injectors are immune to ROBUSTIFY_FAULT_MODEL.
  if (model_.temporal == Temporal::kAuto) model_.temporal = Temporal::kTransient;
  // Clamp the sampled-law parameters into their supported domains once, so
  // the per-fault samplers and window bookkeeping never re-validate.
  if (!(model_.stuck_mean_ops >= 1.0)) model_.stuck_mean_ops = 1.0;
  if (model_.burst_width_max < 1) model_.burst_width_max = 1;
  if (model_.burst_width_max > 64) model_.burst_width_max = 64;
  if (!(model_.window_mean_ops >= 1.0)) model_.window_mean_ops = 1.0;
  if (!(model_.window_rate >= 0.0)) model_.window_rate = 0.0;
  if (model_.window_rate > 1.0) model_.window_rate = 1.0;
  model_default_ = IsDefaultModel(model_);
  if (!model_default_) {
    routes_loads_ = (model_.op_classes & kOpClassMemory) != 0;
    if (model_.window_rate > 0.0) {
      window_threshold_ = model_.window_rate >= 1.0
                              ? kNever
                              : static_cast<std::uint64_t>(
                                    model_.window_rate * 18446744073709551616.0);
      if (window_threshold_ == 0) window_threshold_ = 1;
    }
    // Non-default models always draw split RNG words: the fused gap+bit
    // layout is an optimization of the default transient stream only.
    fused_ = false;
  }
}

// Number of clean ops before the next fault: K ~ Geometric(rate),
// P(K = k) = rate * (1 - rate)^k, drawn from the shared per-rate sampler
// (alias table at high rates, inverse CDF at low ones — see gap_sampler.h).
std::uint64_t FaultInjector::SampleGap() { return gaps_->Sample(rng_); }

double FaultInjector::FlipBit(double value, int bit) {
  std::uint64_t word;
  std::memcpy(&word, &value, sizeof(word));
  word ^= (1ull << bit);
  std::memcpy(&value, &word, sizeof(value));
  return value;
}

double FaultInjector::Corrupt(double value) {
  ++faults_;
  ++faults_arith_;
  return FlipBit(value, bits_->sample(rng_));
}

double FaultInjector::FaultPath(double clean_result) {
  if (!model_default_) return ModelFault(clean_result, kOpClassArith);
  if (threshold_ == 0) {
    // Rate 0 (reachable only after 2^64-1 ops): re-arm without faulting.
    // scheduled_ += kNever + 1 is += 0 mod 2^64, so the invariant
    // flops = scheduled_ - countdown_ still counts this op.
    countdown_ = kNever;
    return clean_result;
  }
  if (threshold_ == kNever) {
    // Rate 1: every op faults; no gap to sample (gaps_ is null here).
    scheduled_ += 1;
    return Corrupt(clean_result);
  }
  if (fused_) {
    // One word pays for the whole fault: high half seeds the gap draw, low
    // half the bit draw.
    const std::uint64_t u = rng_.next();
    const std::uint64_t gap =
        gaps_->SampleFused(static_cast<std::uint32_t>(u >> 32), rng_);
    scheduled_ += gap + 1;
    countdown_ = gap;
    ++faults_;
    ++faults_arith_;
    // Telemetry on the already-cold per-fault path only: the countdown hot
    // path stays untouched, and nothing here reads the simulation RNG.
    telemetry::Observe(telemetry::Histogram::kInjectorCleanRun, gap);
    telemetry::FaultInstant();
    return FlipBit(clean_result,
                   bits_->sample_fused(static_cast<std::uint32_t>(u)));
  }
  const std::uint64_t gap = SampleGap();
  scheduled_ += gap + 1;  // this op plus the next clean stretch
  countdown_ = gap;
  telemetry::Observe(telemetry::Histogram::kInjectorCleanRun, gap);
  telemetry::FaultInstant();
  return Corrupt(clean_result);
}

bool FaultInjector::FaultPathComparison(bool clean_result) {
  if (!model_default_) return ModelComparisonFault(clean_result);
  if (threshold_ == 0) {
    countdown_ = kNever;
    return clean_result;
  }
  if (threshold_ == kNever) {
    scheduled_ += 1;
    ++faults_;
    ++faults_compare_;
    return !clean_result;
  }
  // A comparison fault flips the predicate instead of a stored bit, so
  // only the gap half of a fused word is consumed.
  const std::uint64_t gap =
      fused_ ? gaps_->SampleFused(static_cast<std::uint32_t>(rng_.next() >> 32), rng_)
             : SampleGap();
  scheduled_ += gap + 1;
  countdown_ = gap;
  ++faults_;
  ++faults_compare_;
  telemetry::Observe(telemetry::Histogram::kInjectorCleanRun, gap);
  telemetry::FaultInstant();
  return !clean_result;
}

// ---- non-default temporal models --------------------------------------------
//
// Everything below runs only when model_default_ is false.  The default
// transient stream never reaches these paths, so the pre-model goldens
// (tests/test_model_golden.cpp) stay byte-identical by construction.

void FaultInjector::CountClassFault(unsigned op_class) {
  ++faults_;
  if (op_class == kOpClassArith) {
    ++faults_arith_;
  } else if (op_class == kOpClassCompare) {
    ++faults_compare_;
  } else {
    ++faults_memory_;
  }
  telemetry::FaultInstant();
}

// One transient single-bit corruption attributed to `op_class` — the model
// analog of Corrupt() with per-class accounting.
double FaultInjector::CorruptClass(double value, unsigned op_class) {
  CountClassFault(op_class);
  return FlipBit(value, bits_->sample(rng_));
}

// Samples a stuck bit, its stuck value, and the window duration, then arms
// the forcing masks.  Shared by the arithmetic and comparison fire paths —
// a comparator fault latches the same datapath bit even though the
// predicate itself carries no result word to force.
void FaultInjector::ArmStuckWindow() {
  const int bit = bits_->sample(rng_);
  const bool stuck_one = (rng_.next() & 1) != 0;
  const std::uint64_t duration = SampleStuckDuration(model_.stuck_mean_ops, rng_);
  OpenWindow(duration);
  stuck_or_ = stuck_one ? (1ull << bit) : 0;
  stuck_and_ = stuck_one ? ~0ull : ~(1ull << bit);
}

// Opens (or, from a nested fire, replaces) a sticky window of `length`
// routed ops.  On first open in skip-ahead mode the remainder of the live
// gap moves to pending_gap_ and countdown_ is pinned at zero: CleanRun()
// reports 0, bulk clean runs are disabled, and every routed op takes the
// model path until the window expires.  scheduled_ gives the suspended gap
// back so the flops invariant (scheduled_ - countdown_) is unchanged by the
// suspension; windowed ops then bump scheduled_ one by one.
void FaultInjector::OpenWindow(std::uint64_t length) {
  ++windows_opened_;
  const bool was_open = window_ops_left_ != 0;
  window_ops_left_ = length;
  if (!per_op_ && !was_open) {
    pending_gap_ = countdown_;
    scheduled_ -= pending_gap_;
    countdown_ = 0;
  }
}

// Restores the base schedule suspended by OpenWindow and clears the stuck
// forcing masks.
void FaultInjector::CloseWindow() {
  stuck_or_ = 0;
  stuck_and_ = ~0ull;
  if (!per_op_) {
    countdown_ = pending_gap_;
    scheduled_ += pending_gap_;
    pending_gap_ = 0;
  }
}

// Applies one scheduled fault to an arithmetic or memory-load result under
// the active temporal model.  A fault landing on a masked-out op class
// re-arms the schedule without corrupting (the caller already consumed the
// gap draw), so each enabled class independently sees the configured rate
// and a disabled class sees exactly zero.
double FaultInjector::FireScheduledFault(double value, unsigned op_class) {
  if ((model_.op_classes & op_class) == 0) return value;
  switch (model_.temporal) {
    case Temporal::kTransient:
      return CorruptClass(value, op_class);
    case Temporal::kBurst: {
      // k adjacent bits flip starting at the sampled base position,
      // clamped at the top of the word.
      const int base = bits_->sample(rng_);
      const int width = SampleBurstWidth(model_.burst_width_max, rng_);
      CountClassFault(op_class);
      std::uint64_t word;
      std::memcpy(&word, &value, sizeof(word));
      for (int b = base; b < base + width && b < 64; ++b) word ^= 1ull << b;
      std::memcpy(&value, &word, sizeof(value));
      return value;
    }
    case Temporal::kStuckAt:
      // The forcing (and the per-op fault accounting) is applied by the
      // window-effect step in ModelFault, so the opening op is covered too.
      ArmStuckWindow();
      return value;
    case Temporal::kIntermittent:
      // The opening fault corrupts like a transient and starts the
      // high-rate window.
      OpenWindow(SampleWindowLength(model_.window_mean_ops, rng_));
      return CorruptClass(value, op_class);
    case Temporal::kAuto: break;  // resolved away in the constructor
  }
  return value;
}

CarriedWindow FaultInjector::ExportWindow() const {
  CarriedWindow window;
  if (model_default_ || window_ops_left_ == 0) return window;
  window.ops_left = window_ops_left_;
  window.stuck_or = stuck_or_;
  window.stuck_and = stuck_and_;
  window.temporal = model_.temporal;
  return window;
}

void FaultInjector::AdoptWindow(const CarriedWindow& window) {
  if (!window.live() || model_default_ || model_.temporal != window.temporal) {
    return;
  }
  // Suspend the fresh gap schedule exactly as OpenWindow does on first open
  // (adoption happens right after construction, before any routed op, but
  // guard on an already-open window for safety).
  if (!per_op_ && window_ops_left_ == 0) {
    pending_gap_ = countdown_;
    scheduled_ -= pending_gap_;
    countdown_ = 0;
  }
  window_ops_left_ = window.ops_left;
  stuck_or_ = window.stuck_or;
  stuck_and_ = window.stuck_and;
}

// The whole per-op decision for arithmetic/load results under a non-default
// model: schedule bookkeeping (fresh gap, suspended-gap countdown inside a
// window, or the per-op Bernoulli oracle), firing, and the live window
// effect.  Reached via FaultPath / the per-op branch / ExecuteLoad, always
// with countdown_ == 0.
double FaultInjector::ModelFault(double clean_result, unsigned op_class) {
  const bool in_window = window_ops_left_ != 0;
  bool fire = false;
  if (per_op_) {
    ++scheduled_;
    fire = threshold_ != 0 && rng_.next() < threshold_;
  } else if (in_window) {
    // The window pins countdown_ at 0; the base gap schedule keeps running
    // in pending_gap_ so the scheduled fault rate is unchanged inside the
    // window.  Each windowed op is accounted for individually.
    ++scheduled_;
    if (threshold_ == kNever) {
      fire = true;
    } else if (threshold_ != 0) {
      if (pending_gap_ == 0) {
        fire = true;
        pending_gap_ = SampleGap();
      } else {
        --pending_gap_;
      }
    }
  } else {
    if (threshold_ == 0) {
      // Rate 0: re-arm without faulting, exactly like the default path.
      countdown_ = kNever;
      return clean_result;
    }
    const std::uint64_t gap = threshold_ == kNever ? 0 : SampleGap();
    scheduled_ += gap + 1;
    countdown_ = gap;
    fire = true;
    telemetry::Observe(telemetry::Histogram::kInjectorCleanRun, gap);
  }
  double result = clean_result;
  if (fire) result = FireScheduledFault(result, op_class);
  if (window_ops_left_ != 0) {
    if (model_.temporal == Temporal::kStuckAt) {
      if ((model_.op_classes & op_class) != 0) {
        // The stuck line drives its bit on every routed op in the window, so
        // every forced op counts as a fault — including ops whose result
        // already carried the stuck value.  Counting only value-changing ops
        // would make the count depend on the exact bits of intermediate
        // results, which are not stable across kernel engines (bulk loops
        // and per-scalar code round identically but the compiler is free to
        // schedule them differently); the structural count depends only on
        // the op stream and window placement, which are.
        CountClassFault(op_class);
        std::uint64_t word;
        std::memcpy(&word, &result, sizeof(word));
        const std::uint64_t forced = (word | stuck_or_) & stuck_and_;
        std::memcpy(&result, &forced, sizeof(result));
      }
    } else if (model_.temporal == Temporal::kIntermittent) {
      // Ops that already fired the scheduled fault skip the in-window
      // Bernoulli; everything else in an enabled class faults at
      // window_rate.  One RNG word per windowed op keeps the stream shape
      // independent of the outcome.
      if (!fire && (model_.op_classes & op_class) != 0 &&
          rng_.next() < window_threshold_) {
        result = CorruptClass(result, op_class);
      }
    }
    --window_ops_left_;
    if (window_ops_left_ == 0) CloseWindow();
  }
  return result;
}

// Comparison analog of ModelFault.  Predicates carry no result word:
// transient and burst invert the outcome, a stuck fault opens its window
// without altering the predicate (the stuck bit lives in the datapath, not
// the flag), and intermittent inverts + opens.
bool FaultInjector::ModelComparisonFault(bool clean_result) {
  const bool in_window = window_ops_left_ != 0;
  bool fire = false;
  if (per_op_) {
    ++scheduled_;
    fire = threshold_ != 0 && rng_.next() < threshold_;
  } else if (in_window) {
    ++scheduled_;
    if (threshold_ == kNever) {
      fire = true;
    } else if (threshold_ != 0) {
      if (pending_gap_ == 0) {
        fire = true;
        pending_gap_ = SampleGap();
      } else {
        --pending_gap_;
      }
    }
  } else {
    if (threshold_ == 0) {
      countdown_ = kNever;
      return clean_result;
    }
    const std::uint64_t gap = threshold_ == kNever ? 0 : SampleGap();
    scheduled_ += gap + 1;
    countdown_ = gap;
    fire = true;
    telemetry::Observe(telemetry::Histogram::kInjectorCleanRun, gap);
  }
  bool result = clean_result;
  if (fire && (model_.op_classes & kOpClassCompare) != 0) {
    switch (model_.temporal) {
      case Temporal::kTransient:
      case Temporal::kBurst:
        // No word for a burst to spread across: both invert the predicate
        // (and draw nothing extra — the width has nowhere to land).
        CountClassFault(kOpClassCompare);
        result = !result;
        break;
      case Temporal::kStuckAt:
        ArmStuckWindow();
        break;
      case Temporal::kIntermittent:
        OpenWindow(SampleWindowLength(model_.window_mean_ops, rng_));
        CountClassFault(kOpClassCompare);
        result = !result;
        break;
      case Temporal::kAuto: break;
    }
  }
  if (window_ops_left_ != 0) {
    if (model_.temporal == Temporal::kIntermittent && !fire &&
        (model_.op_classes & kOpClassCompare) != 0 &&
        rng_.next() < window_threshold_) {
      CountClassFault(kOpClassCompare);
      result = !result;
    }
    --window_ops_left_;
    if (window_ops_left_ == 0) CloseWindow();
  }
  return result;
}

}  // namespace robustify::faulty
