// Shared Walker alias-table construction (Vose's stable variant).
//
// Used by BitDistribution (64 bit positions) and GeometricGapSampler
// (63 gap values + tail slot).  Both samplers split one 64-bit draw into a
// slot index (top bits) and a 58-bit residual compared against the slot's
// stay threshold, so the construction scales thresholds by 2^58.
#pragma once

#include <cstdint>
#include <vector>

namespace robustify::faulty {

// Fills stay_threshold/alias (each `n` slots, n <= 256) from the normalized
// probabilities `probs` (must sum to ~1).  Slot i resolves to itself when
// the 58-bit residual draw is below stay_threshold[i], else to alias[i].
inline void BuildWalkerAliasTable(const double* probs, int n,
                                  std::uint64_t* stay_threshold,
                                  std::uint8_t* alias) {
  // scaled[i] = p_i * n; slots below 1 are topped up by donors above 1, so
  // every slot splits between at most two outcomes: itself (with
  // probability scaled[i] after top-up) and alias[i].
  constexpr double kSlotScale = static_cast<double>(1ull << 58);
  std::vector<double> scaled(static_cast<std::size_t>(n));
  std::vector<int> small, large;
  for (int i = 0; i < n; ++i) {
    scaled[static_cast<std::size_t>(i)] = probs[i] * n;
    (scaled[static_cast<std::size_t>(i)] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const int s = small.back();
    small.pop_back();
    const int l = large.back();
    large.pop_back();
    stay_threshold[s] =
        static_cast<std::uint64_t>(scaled[static_cast<std::size_t>(s)] * kSlotScale);
    alias[s] = static_cast<std::uint8_t>(l);
    scaled[static_cast<std::size_t>(l)] -= 1.0 - scaled[static_cast<std::size_t>(s)];
    (scaled[static_cast<std::size_t>(l)] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are exactly 1 up to rounding: the slot always returns itself.
  for (const int i : large) {
    stay_threshold[i] = ~0ull;
    alias[i] = static_cast<std::uint8_t>(i);
  }
  for (const int i : small) {
    stay_threshold[i] = ~0ull;
    alias[i] = static_cast<std::uint8_t>(i);
  }
}

}  // namespace robustify::faulty
