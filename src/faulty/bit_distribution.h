// Bit-position distribution of injected faults.
//
// The paper calibrates its injector against circuit-level simulation of an
// overscaled FPU: errors are not uniform over the 64-bit word but bimodal —
// most upsets land either in the high-order mantissa bits (long carry
// chains) or in the low-order mantissa bits (short paths that fail first),
// with a valley in between and only rare corruption of the exponent and
// sign.  BitDistribution captures that histogram and supports sampling a
// bit index from it with an Lfsr.
#pragma once

#include <array>
#include <cstdint>

#include "faulty/lfsr.h"

namespace robustify::faulty {

inline constexpr int kWordBits = 64;

// binary64 layout reference points used by the models below.
inline constexpr int kMantissaBits = 52;   // bits [0, 51]
inline constexpr int kExponentLow = 52;    // bits [52, 62]
inline constexpr int kSignBit = 63;

enum class BitModel {
  kBimodal,  // paper-calibrated: low-bit and high-mantissa modes
  kUniform,  // every bit equally likely (hostile: frequent exponent hits)
  kMsbOnly,  // top 12 bits only (exponent + sign; worst case)
  kLsbOnly,  // bottom 12 bits only (benign noise)
};

class BitDistribution {
 public:
  // Build from an explicit (unnormalized) 64-entry weight table.
  explicit BitDistribution(const std::array<double, kWordBits>& weights);

  // Build one of the named models.
  explicit BitDistribution(BitModel model);

  // Probability that an injected fault flips bit `bit` (normalized).
  double probability(int bit) const { return weights_[static_cast<std::size_t>(bit)]; }

  // Sample a bit index from the distribution.
  int sample(Lfsr& rng) const;

 private:
  void Normalize();

  std::array<double, kWordBits> weights_{};
  std::array<double, kWordBits> cdf_{};
};

}  // namespace robustify::faulty
