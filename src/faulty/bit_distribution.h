// Bit-position distribution of injected faults.
//
// The paper calibrates its injector against circuit-level simulation of an
// overscaled FPU: errors are not uniform over the 64-bit word but bimodal —
// most upsets land either in the high-order mantissa bits (long carry
// chains) or in the low-order mantissa bits (short paths that fail first),
// with a valley in between and only rare corruption of the exponent and
// sign.  BitDistribution captures that histogram and supports sampling a
// bit index from it with an Lfsr.
//
// Sampling uses a Walker alias table: one RNG draw and one table probe per
// fault, O(1) regardless of the histogram shape.  (The previous linear CDF
// scan was the single hottest function of the whole fig-6 sweep suite.)
#pragma once

#include <array>
#include <cstdint>

#include "faulty/lfsr.h"

namespace robustify::faulty {

inline constexpr int kWordBits = 64;

// binary64 layout reference points used by the models below.
inline constexpr int kMantissaBits = 52;   // bits [0, 51]
inline constexpr int kExponentLow = 52;    // bits [52, 62]
inline constexpr int kSignBit = 63;

enum class BitModel {
  kBimodal,  // paper-calibrated: low-bit and high-mantissa modes
  kUniform,  // every bit equally likely (hostile: frequent exponent hits)
  kMsbOnly,  // top 12 bits only (exponent + sign; worst case)
  kLsbOnly,  // bottom 12 bits only (benign noise)
};

class BitDistribution {
 public:
  // Build from an explicit (unnormalized) 64-entry weight table.
  explicit BitDistribution(const std::array<double, kWordBits>& weights);

  // Build one of the named models.
  explicit BitDistribution(BitModel model);

  // Probability that an injected fault flips bit `bit` (normalized).
  double probability(int bit) const { return weights_[static_cast<std::size_t>(bit)]; }

  // Sample a bit index from the distribution: one draw, one alias probe.
  // The top 6 bits of the draw pick the slot, the remaining 58 decide
  // between the slot and its alias.
  int sample(Lfsr& rng) const {
    const std::uint64_t u = rng.next();
    const int slot = static_cast<int>(u >> 58);
    const std::uint64_t r = u & ((1ull << 58) - 1);
    return r < stay_threshold_[static_cast<std::size_t>(slot)]
               ? slot
               : static_cast<int>(alias_[static_cast<std::size_t>(slot)]);
  }

  // Fused-draw variant (ROBUSTIFY_RNG=fused): samples from the 32 bits the
  // injector carved out of a word shared with the gap draw.  The 26-bit
  // residual compares against the top 26 bits of the 58-bit thresholds —
  // probabilities quantized at 2^-26, held to the same chi-square gates as
  // sample() by tests/test_statistical.cpp.
  int sample_fused(std::uint32_t u) const {
    const int slot = static_cast<int>(u >> 26);
    const std::uint32_t r = u & ((1u << 26) - 1);
    return r < static_cast<std::uint32_t>(
                   stay_threshold_[static_cast<std::size_t>(slot)] >> 32)
               ? slot
               : static_cast<int>(alias_[static_cast<std::size_t>(slot)]);
  }

 private:
  void Normalize();
  void BuildAliasTable();

  std::array<double, kWordBits> weights_{};
  // Walker alias table: slot i is returned when the 58-bit residual draw is
  // below stay_threshold_[i], otherwise alias_[i] is returned.
  std::array<std::uint64_t, kWordBits> stay_threshold_{};
  std::array<std::uint8_t, kWordBits> alias_{};
};

// The four built-in models, constructed once per process and shared by every
// injector (an injector is built per trial; rebuilding and copying the
// tables there was measurable across a million-trial sweep).
const BitDistribution& SharedBitDistribution(BitModel model);

}  // namespace robustify::faulty
