#include "faulty/voltage_model.h"

#include <algorithm>
#include <cmath>

namespace robustify::faulty {

VoltageModel::VoltageModel() {
  // Calibration points (voltage, log10 errors/OP), shaped after the paper's
  // circuit-level curve: ~1e-15 at nominal, knee near 0.9 V, ~0.3 at 0.6 V.
  table_ = {
      {1.000, -15.0}, {0.975, -13.0}, {0.950, -11.0}, {0.925, -10.0},
      {0.900, -9.0},  {0.875, -7.5},  {0.850, -6.0},  {0.825, -5.0},
      {0.800, -4.0},  {0.775, -3.3},  {0.750, -2.7},  {0.725, -2.2},
      {0.700, -1.8},  {0.675, -1.5},  {0.650, -1.15}, {0.625, -0.85},
      {0.600, -0.52},
  };
}

double VoltageModel::error_rate(double v) const {
  if (v >= table_.front().voltage) return std::pow(10.0, table_.front().log10_rate);
  if (v <= table_.back().voltage) return std::pow(10.0, table_.back().log10_rate);
  for (std::size_t i = 1; i < table_.size(); ++i) {
    if (v >= table_[i].voltage) {
      const Point& hi = table_[i - 1];
      const Point& lo = table_[i];
      const double t = (v - lo.voltage) / (hi.voltage - lo.voltage);
      return std::pow(10.0, lo.log10_rate + t * (hi.log10_rate - lo.log10_rate));
    }
  }
  return std::pow(10.0, table_.back().log10_rate);
}

double VoltageModel::voltage_for_error_rate(double rate) const {
  const double lr = std::log10(std::max(rate, 1e-300));
  if (lr <= table_.front().log10_rate) return table_.front().voltage;
  if (lr >= table_.back().log10_rate) return table_.back().voltage;
  for (std::size_t i = 1; i < table_.size(); ++i) {
    if (lr <= table_[i].log10_rate) {
      const Point& hi = table_[i - 1];  // higher voltage, lower rate
      const Point& lo = table_[i];
      const double t = (lr - lo.log10_rate) / (hi.log10_rate - lo.log10_rate);
      return lo.voltage + t * (hi.voltage - lo.voltage);
    }
  }
  return table_.back().voltage;
}

}  // namespace robustify::faulty
