// 64-bit Galois LFSR used as the fault injector's random source.
//
// The paper's FPGA emulator drives its bit-error injector from an on-chip
// LFSR rather than a software PRNG; this mirrors that: a maximal-length
// Galois LFSR over GF(2) with the x^64 + x^63 + x^61 + x^60 + 1 feedback
// polynomial.  The sequence is fully determined by the seed, which is what
// makes every trial in the harness reproducible.
#pragma once

#include <cstdint>

namespace robustify::faulty {

class Lfsr {
 public:
  // Taps for a maximal-length 64-bit Galois LFSR.
  static constexpr std::uint64_t kTaps = 0xD800000000000000ull;

  explicit Lfsr(std::uint64_t seed = 1) : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  // Advances one full word (64 shifts folded into the Galois update applied
  // word-at-a-time): one step of the classic bitwise form.
  std::uint64_t next() {
    // Galois form: shift right, conditionally XOR the tap mask.
    const std::uint64_t lsb = state_ & 1u;
    state_ >>= 1;
    if (lsb) state_ ^= kTaps;
    // One raw Galois step only decorrelates one bit; mix the state through a
    // splitmix finalizer so consecutive outputs look word-random while the
    // underlying LFSR sequence (and hence the period) is unchanged.
    std::uint64_t z = state_ + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Raw register contents (exposed for the deterministic-sequence tests).
  std::uint64_t state() const { return state_; }

  // Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  std::uint64_t state_;
};

// Seed for an auxiliary deterministic stream derived from a base seed and a
// stream ordinal — the key the tiled engine uses to give every tile task its
// own injector stream (ordinal = task id).  A splitmix64 finalizer over the
// golden-ratio-stepped ordinal decorrelates neighboring ordinals far beyond
// what the LFSR's own seeding mixes, and never returns 0 for ordinal 0
// unless seed + step collides — Lfsr treats 0 as "use default" anyway.
inline std::uint64_t DeriveStreamSeed(std::uint64_t seed, std::uint64_t ordinal) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (ordinal + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace robustify::faulty
