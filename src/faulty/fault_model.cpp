#include "faulty/fault_model.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace robustify::faulty {

bool IsDefaultModel(const FaultModel& model) {
  const Temporal temporal =
      model.temporal == Temporal::kAuto ? Temporal::kTransient : model.temporal;
  return temporal == Temporal::kTransient && model.op_classes == kOpClassDefault;
}

namespace {

// ROBUSTIFY_FAULT_MODEL pins the temporal model for every kAuto scope (the
// sticky-model CI leg runs the whole suite under "stuck").  Read once per
// process, like the strategy/engine/rng overrides.
Temporal EnvTemporal() {
  static const Temporal cached = [] {
    const char* env = std::getenv("ROBUSTIFY_FAULT_MODEL");
    if (env != nullptr) {
      const Temporal parsed = ParseTemporal(env);
      if (parsed != Temporal::kAuto) return parsed;
    }
    return Temporal::kAuto;
  }();
  return cached;
}

}  // namespace

FaultModel ResolveFaultModel(const FaultModel& model) {
  FaultModel resolved = model;
  if (resolved.temporal == Temporal::kAuto) {
    const Temporal env = EnvTemporal();
    resolved.temporal = env == Temporal::kAuto ? Temporal::kTransient : env;
  }
  return resolved;
}

const char* TemporalName(Temporal temporal) {
  switch (temporal) {
    case Temporal::kTransient: return "transient";
    case Temporal::kStuckAt: return "stuck";
    case Temporal::kBurst: return "burst";
    case Temporal::kIntermittent: return "intermittent";
    case Temporal::kAuto: break;
  }
  return "";
}

Temporal ParseTemporal(const std::string& text) {
  if (text == "transient") return Temporal::kTransient;
  if (text == "stuck" || text == "stuck-at" || text == "stuckat") {
    return Temporal::kStuckAt;
  }
  if (text == "burst") return Temporal::kBurst;
  if (text == "intermittent") return Temporal::kIntermittent;
  return Temporal::kAuto;
}

std::string OpClassesName(unsigned op_classes) {
  std::string out;
  const auto append = [&out](const char* name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if (op_classes & kOpClassArith) append("arith");
  if (op_classes & kOpClassCompare) append("cmp");
  if (op_classes & kOpClassMemory) append("mem");
  return out;
}

unsigned ParseOpClasses(const std::string& text) {
  unsigned mask = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    std::string item = comma == std::string::npos ? text.substr(pos)
                                                  : text.substr(pos, comma - pos);
    // Trim ASCII whitespace on both ends.
    const std::size_t b = item.find_first_not_of(" \t");
    const std::size_t e = item.find_last_not_of(" \t");
    item = b == std::string::npos ? "" : item.substr(b, e - b + 1);
    if (item == "arith") {
      mask |= kOpClassArith;
    } else if (item == "cmp" || item == "compare") {
      mask |= kOpClassCompare;
    } else if (item == "mem" || item == "memory") {
      mask |= kOpClassMemory;
    } else {
      throw std::runtime_error("unknown op class '" + item +
                               "' (arith|cmp|mem)");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (mask == 0) throw std::runtime_error("op-class mask is empty");
  return mask;
}

namespace {

// Geometric on {1, 2, ...} with success probability p = 1/mean by inverse
// CDF: d = 1 + floor(log(u) / log(1 - p)) for u uniform on (0, 1].  The
// law matches the gap sampler's convention shifted by one — a window always
// covers at least the op that opened it.
std::uint64_t SampleGeometricAtLeastOne(double mean, Lfsr& rng) {
  if (!(mean > 1.0)) return 1;
  const double p = 1.0 / mean;
  // Map the 64-bit draw to (0, 1]: (u + 1) / 2^64 never gives log(0).
  const double u =
      (static_cast<double>(rng.next() >> 11) + 1.0) * (1.0 / 9007199254740992.0);
  const double draws = std::floor(std::log(u) / std::log1p(-p));
  if (!(draws >= 0.0)) return 1;
  if (draws >= 18446744073709549568.0) return ~0ull;  // saturate, never wraps
  return 1 + static_cast<std::uint64_t>(draws);
}

}  // namespace

std::uint64_t SampleStuckDuration(double mean_ops, Lfsr& rng) {
  return SampleGeometricAtLeastOne(mean_ops, rng);
}

int SampleBurstWidth(int width_max, Lfsr& rng) {
  if (width_max <= 1) return 1;
  const std::uint64_t u = rng.next() >> 32;
  return 1 + static_cast<int>((u * static_cast<std::uint64_t>(width_max)) >> 32);
}

std::uint64_t SampleWindowLength(double mean_ops, Lfsr& rng) {
  return SampleGeometricAtLeastOne(mean_ops, rng);
}

}  // namespace robustify::faulty
