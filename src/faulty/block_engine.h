// Engine dispatch for the block-faulty kernel layer (faulty BLAS).
//
// Two execution engines produce the *same* fault stream for a fixed seed:
//
//  * scalar — every faulty::Real arithmetic op routes through
//    FaultInjector::Execute one scalar at a time (the original path, kept
//    as the equivalence oracle).
//  * block  — linalg kernels ask the injector how many ops of the
//    deterministic gap schedule are guaranteed clean, execute that run as a
//    tight auto-vectorizable loop over raw doubles, bulk-consume the ops,
//    and fall back to per-scalar Execute only for the element containing
//    the scheduled fault (src/linalg/faulty_blas.h).
//
// Because the block path executes the identical IEEE-754 operation sequence
// (the build pins -ffp-contract=off so no bulk loop fuses what the scalar
// path rounds twice) and consumes the injector's RNG/gap stream at exactly
// the same op positions, trials are bit-identical across engines — which
// tests/test_block_engine.cpp locks in at the sweep-CSV level.
//
// Selection mirrors the injector-strategy knob: a FaultEnvironment::engine
// of kAuto defers to ROBUSTIFY_ENGINE ("block"/"scalar"), which defaults to
// block; core::WithFaultyFpu installs the choice for the scope of a trial
// via EngineScope.
#pragma once

namespace robustify::faulty {

enum class Engine {
  kAuto,    // defer to ROBUSTIFY_ENGINE, else block
  kBlock,   // bulk clean runs between scheduled faults (production)
  kScalar,  // per-scalar Execute for every op (equivalence oracle)
};

// The ROBUSTIFY_ENGINE override every kAuto scope resolves through: kBlock
// for "block", kScalar for "scalar", kAuto when unset or unrecognized.
// Cached on first use.
Engine EnvEngine();

namespace detail {

// The engine the current thread's kernels dispatch on; kAuto means "no
// scope installed an explicit choice" and resolves through EnvEngine.
inline thread_local Engine tls_engine = Engine::kAuto;

}  // namespace detail

// True when linalg kernels on this thread should take the block path.
// Resolution order: thread scope (EngineScope) > ROBUSTIFY_ENGINE > block.
inline bool BlockEngineActive() {
  Engine e = detail::tls_engine;
  if (e == Engine::kAuto) e = EnvEngine();
  return e != Engine::kScalar;
}

// RAII: pin the thread's engine for one fault scope, restore on exit.
class EngineScope {
 public:
  explicit EngineScope(Engine engine) : previous_(detail::tls_engine) {
    detail::tls_engine = engine;
  }
  ~EngineScope() { detail::tls_engine = previous_; }
  EngineScope(const EngineScope&) = delete;
  EngineScope& operator=(const EngineScope&) = delete;

 private:
  Engine previous_;
};

}  // namespace robustify::faulty
