// Per-rate geometric gap sampler: how many clean ops until the next fault.
//
// The skip-ahead injector draws the fault-to-fault gap K ~ Geometric(rate),
// P(K = k) = rate * (1 - rate)^k, once per *fault*.  Two precomputed forms
// cover the whole rate range with one strategy:
//
//  * rate >= kTableMinRate (1/64): a Walker alias table over the gap values
//    {0 .. 62} plus a tail slot.  One RNG draw and one probe yield the gap;
//    the tail slot (gap >= 63, probability (1 - r)^63 <= 0.38) adds 63 and
//    redraws — valid because the geometric distribution is memoryless.  This
//    replaces the log() of the inverse-CDF form, which above ~1/16 faults
//    per op used to cost more than the per-op Bernoulli draw it was saving.
//  * rate <  kTableMinRate: inverse CDF, gap = log(u) / log(1 - rate).  At
//    these rates the mean gap exceeds 64 ops, so one log() per fault is
//    already amortized to well under a draw per op, while the alias table's
//    tail slot would dominate and make it loop.
//
// Both forms are deterministic in the LFSR stream, and the choice between
// them depends only on the rate, so a fixed (seed, rate) reproduces a trial
// bit-for-bit.  Tables are built once per process and shared across trials
// via Shared() (a sweep revisits the same handful of rates thousands of
// times).
#pragma once

#include <array>
#include <cstdint>

#include "faulty/lfsr.h"
#include "telemetry/telemetry.h"

namespace robustify::faulty {

class GeometricGapSampler {
 public:
  // Gaps too large to represent: the injector treats this as "no fault in
  // any realizable run" and its mod-2^64 flop accounting stays exact.
  static constexpr std::uint64_t kNever = ~0ull;

  // Slots 0..62 of the alias table are literal gap values; slot 63 is the
  // memoryless tail (gap >= 63).
  static constexpr int kTableGaps = 63;
  static constexpr int kTableSlots = 64;

  // Below this rate the mean gap is >= 64 ops and the inverse-CDF form wins;
  // at or above it the tail probability (1 - r)^63 is <= 0.38 and the alias
  // table terminates in ~1.6 draws.
  static constexpr double kTableMinRate = 1.0 / 64.0;

  // `rate` must be in (0, 1); rates 0 and 1 never sample a gap and are
  // handled by the injector itself.
  explicit GeometricGapSampler(double rate);

  double rate() const { return rate_; }
  bool uses_table() const { return table_; }

  // One gap draw from `rng`; kNever when the sampled gap exceeds 2^64.
  std::uint64_t Sample(Lfsr& rng) const {
    if (!table_) {
      telemetry::Count(telemetry::Counter::kGapDrawsInvCdf);
      return SampleInverseCdf(rng);
    }
    telemetry::Count(telemetry::Counter::kGapDrawsTable);
    std::uint64_t base = 0;
    for (;;) {
      // Same draw split as BitDistribution: top 6 bits pick the slot, the
      // 58-bit residual decides between the slot and its alias.
      const std::uint64_t u = rng.next();
      const int slot = static_cast<int>(u >> 58);
      const std::uint64_t r = u & ((1ull << 58) - 1);
      const int outcome = r < stay_threshold_[static_cast<std::size_t>(slot)]
                              ? slot
                              : static_cast<int>(alias_[static_cast<std::size_t>(slot)]);
      if (outcome < kTableGaps) return base + static_cast<std::uint64_t>(outcome);
      base += kTableGaps;  // tail: gap >= 63; memorylessness restarts the draw
    }
  }

  // Fused-draw form (ROBUSTIFY_RNG=fused): the caller hands the 32 bits it
  // carved out of a shared LFSR word; `rng` is touched only by the alias
  // table's memoryless tail (probability (1-r)^63 per level), never in the
  // common case.  The 26-bit residual compares against the top 26 bits of
  // the 58-bit stay thresholds, quantizing slot probabilities at 2^-26 —
  // far below what the statistical gates resolve (test_statistical.cpp
  // holds this stream to the same chi-square/KS criteria as Sample()).
  std::uint64_t SampleFused(std::uint32_t u, Lfsr& rng) const {
    telemetry::Count(telemetry::Counter::kGapDrawsFused);
    if (!table_) return SampleInverseCdf32(u);
    const int slot = static_cast<int>(u >> 26);
    const std::uint32_t r = u & ((1u << 26) - 1);
    const int outcome =
        r < static_cast<std::uint32_t>(
                stay_threshold_[static_cast<std::size_t>(slot)] >> 32)
            ? slot
            : static_cast<int>(alias_[static_cast<std::size_t>(slot)]);
    if (outcome < kTableGaps) return static_cast<std::uint64_t>(outcome);
    // Tail (gap >= 63): memorylessness restarts the draw at full width.
    std::uint64_t base = kTableGaps;
    for (;;) {
      const std::uint64_t w = rng.next();
      const int s = static_cast<int>(w >> 58);
      const std::uint64_t rr = w & ((1ull << 58) - 1);
      const int o = rr < stay_threshold_[static_cast<std::size_t>(s)]
                        ? s
                        : static_cast<int>(alias_[static_cast<std::size_t>(s)]);
      if (o < kTableGaps) return base + static_cast<std::uint64_t>(o);
      base += kTableGaps;
    }
  }

  // Process-wide cache keyed by the rate's bit pattern: built on first use,
  // immutable and lock-free to read afterwards (the injector constructor
  // runs once per trial, so the lookup lock is off the per-op path).
  static const GeometricGapSampler& Shared(double rate);

 private:
  std::uint64_t SampleInverseCdf(Lfsr& rng) const;
  std::uint64_t SampleInverseCdf32(std::uint32_t u) const;
  void BuildAliasTable();

  double rate_ = 0.0;
  double inv_log1m_rate_ = 0.0;  // 1 / ln(1 - rate)
  bool table_ = false;
  // Walker alias table over {gap 0..62, tail}: slot i is returned when the
  // 58-bit residual draw is below stay_threshold_[i], else alias_[i].
  std::array<std::uint64_t, kTableSlots> stay_threshold_{};
  std::array<std::uint8_t, kTableSlots> alias_{};
};

}  // namespace robustify::faulty
