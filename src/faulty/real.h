// faulty::Real — a double whose arithmetic runs on the faulty FPU.
//
// Real wraps a binary64 value.  Construction, copies, and loads/stores are
// reliable (memory is protected in the paper's machine model); every
// arithmetic operation — including comparisons, which the FPU implements as
// a subtraction — routes its result through the thread-local FaultInjector.
// Templated kernels written against a generic scalar T therefore run
// bit-exactly on `double` and run "on the stochastic processor" on Real.
#pragma once

#include <cmath>
#include <type_traits>

#include "faulty/fault_injector.h"

namespace robustify::faulty {

class Real {
 public:
  Real() = default;
  template <class U, std::enable_if_t<std::is_arithmetic_v<U>, int> = 0>
  Real(U v) : v_(static_cast<double>(v)) {}  // NOLINT: implicit by design

  double value() const { return v_; }
  explicit operator double() const { return v_; }

  Real& operator+=(Real o) { v_ = Execute(v_ + o.v_); return *this; }
  Real& operator-=(Real o) { v_ = Execute(v_ - o.v_); return *this; }
  Real& operator*=(Real o) { v_ = Execute(v_ * o.v_); return *this; }
  Real& operator/=(Real o) { v_ = Execute(v_ / o.v_); return *this; }

 private:
  double v_ = 0.0;
};

inline Real operator+(Real a, Real b) { return Real(Execute(a.value() + b.value())); }
inline Real operator-(Real a, Real b) { return Real(Execute(a.value() - b.value())); }
inline Real operator*(Real a, Real b) { return Real(Execute(a.value() * b.value())); }
inline Real operator/(Real a, Real b) { return Real(Execute(a.value() / b.value())); }
inline Real operator-(Real a) { return Real(-a.value()); }  // sign flip: not an FPU op
inline Real operator+(Real a) { return a; }

// Comparisons run through the faulty subtractor and comparator flags: a
// timing fault inverts the branch a baseline algorithm takes, which is
// exactly how a comparison sort misplaces elements on the stochastic
// processor.
inline bool operator<(Real a, Real b) { return ExecuteComparison(a.value() < b.value()); }
inline bool operator>(Real a, Real b) { return ExecuteComparison(a.value() > b.value()); }
inline bool operator<=(Real a, Real b) { return ExecuteComparison(a.value() <= b.value()); }
inline bool operator>=(Real a, Real b) { return ExecuteComparison(a.value() >= b.value()); }
inline bool operator==(Real a, Real b) { return ExecuteComparison(a.value() == b.value()); }
inline bool operator!=(Real a, Real b) { return ExecuteComparison(a.value() != b.value()); }

// Math functions found by ADL from templated code (`using std::sqrt;`).
inline Real sqrt(Real a) { return Real(Execute(std::sqrt(a.value()))); }
inline Real fabs(Real a) { return Real(std::fabs(a.value())); }  // sign clear: reliable
inline Real abs(Real a) { return fabs(a); }

// Validity checks read the stored bits without an FP op — in the paper's
// model the reliable integer core can always test an exponent field, which
// is what lets robust kernels scrub non-finite iterates.
inline bool isfinite(Real a) { return std::isfinite(a.value()); }
inline bool isnan(Real a) { return std::isnan(a.value()); }

// A memory load of a kernel element, routed through the injector when the
// active fault model corrupts loads (kOpClassMemory — see
// fault_model.h).  Identity under the default model and for clean double
// data, so the historical op stream is untouched; when loads are routed,
// the engine dispatch forces the templated per-scalar kernels so every
// element read passes through here on both engines.
inline Real LoadElem(Real a) {
  return LoadsRouted() ? Real(ExecuteLoad(a.value())) : a;
}
inline double LoadElem(double v) { return v; }

// The block kernel layer (linalg/faulty_blas.h) executes arrays of Real as
// raw double arrays — storage is reliable either way, only the arithmetic
// performed on it differs.  Real is a single stored double by construction;
// these asserts are what that layer's reinterpretation relies on.
static_assert(sizeof(Real) == sizeof(double), "Real must wrap exactly one double");
static_assert(std::is_standard_layout_v<Real>, "Real must be standard-layout");
inline double* AsDoubleArray(Real* p) { return reinterpret_cast<double*>(p); }
inline const double* AsDoubleArray(const Real* p) {
  return reinterpret_cast<const double*>(p);
}
// Identity overloads so generic dispatch code type-checks when instantiated
// with T = double (the branch is dead there — UseBlockKernels<double>() is a
// compile-time false — but it must still compile).
inline double* AsDoubleArray(double* p) { return p; }
inline const double* AsDoubleArray(const double* p) { return p; }

}  // namespace robustify::faulty
