// FPU energy model for the voltage-overscaling experiments (Figure 6.7).
//
// Energy is the paper's axis: relative dynamic power (~V^2, normalized to
// the nominal 1.0 V supply) times the number of FP operations executed.
#pragma once

#include <cstdint>

#include "faulty/voltage_model.h"

namespace robustify::faulty {

class EnergyModel {
 public:
  EnergyModel() = default;

  // Dynamic power relative to the nominal voltage (V^2 scaling).
  double relative_power(double voltage) const {
    const double n = voltage_model_.nominal_voltage();
    return (voltage * voltage) / (n * n);
  }

  // Relative energy of running `flops` FP ops at `voltage`.
  double energy(std::uint64_t flops, double voltage) const {
    return relative_power(voltage) * static_cast<double>(flops);
  }

  const VoltageModel& voltage_model() const { return voltage_model_; }

 private:
  VoltageModel voltage_model_;
};

}  // namespace robustify::faulty
