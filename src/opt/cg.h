// Restarted CGLS: conjugate gradient on the normal equations A^T A x = A^T b
// without forming A^T A.  The periodic restart recomputes the residual from
// scratch, which is what lets the method shed fault-induced drift in its
// recurrences — the paper's key iterative-refinement insight for Figure 6.6.
//
// All recurrence vectors are workspace scratch and every matrix-vector
// product runs in place, so a solve on a warmed workspace performs no heap
// allocation (the SolveCglsInto form is fully allocation-free; the
// by-value SolveCgls wrapper allocates only its returned CgResult).
#pragma once

#include <cmath>
#include <cstddef>

#include "core/guard.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "opt/workspace.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace robustify::opt {

struct CgOptions {
  int iterations = 10;
  int restart_every = 5;  // recompute the true residual this often
};

struct CgResult {
  linalg::Vector<double> x;
  int iterations = 0;
  double residual_norm = 0.0;
};

// Solves into `result`, reusing its x storage (resize-without-free): calling
// again with the same result object and workspace allocates nothing.
template <class T>
void SolveCglsInto(const linalg::Matrix<T>& a, const linalg::Vector<T>& b,
                   const CgOptions& options, Workspace<T>* workspace,
                   CgResult* result) {
  using linalg::AsDouble;
  telemetry::SpanScope solve_span("solve.cgls");
  telemetry::Count(telemetry::Counter::kCglsSolves);
  Workspace<T>& ws = workspace != nullptr ? *workspace : ThreadWorkspace<T>();
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  typename Workspace<T>::Lease x_lease = ws.Borrow(n);
  typename Workspace<T>::Lease r_lease = ws.Borrow(m);
  typename Workspace<T>::Lease s_lease = ws.Borrow(n);
  typename Workspace<T>::Lease p_lease = ws.Borrow(n);
  typename Workspace<T>::Lease q_lease = ws.Borrow(m);
  typename Workspace<T>::Lease ax_lease = ws.Borrow(m);
  linalg::Vector<T>& x = *x_lease;
  linalg::Vector<T>& r = *r_lease;
  linalg::Vector<T>& s = *s_lease;
  linalg::Vector<T>& p = *p_lease;
  linalg::Vector<T>& q = *q_lease;
  linalg::Vector<T>& ax = *ax_lease;

  for (std::size_t j = 0; j < n; ++j) x[j] = T(0);
  r.CopyFrom(b);                // b - A x with x = 0
  MatTVecInto(a, r, &s);        // A^T r
  p.CopyFrom(s);
  T gamma = NormSquared(s);

  // Guarded execution (core/guard.h): budget caps stop the solve at the
  // current iterate (the final scrub + true-residual readout below still
  // runs); with bailout enabled, 4 consecutive non-finite-triggered
  // restarts — alpha or beta non-finite with no clean iteration between —
  // abandon the solve as diverged.  Inactive guards change nothing.
  const bool guard_bailout = core::GuardBailoutEnabled();
  constexpr int kNonFiniteRestartLimit = 4;
  int nonfinite_restarts = 0;

  int performed = 0;
  std::uint64_t restarts = 0;
  bool need_restart = false;
  for (int it = 0; it < options.iterations; ++it, ++performed) {
    if (core::GuardStop()) break;
    if (guard_bailout && nonfinite_restarts >= kNonFiniteRestartLimit) {
      core::GuardReportDivergence();
      break;
    }
    if (need_restart || (options.restart_every > 0 && it > 0 && it % options.restart_every == 0)) {
      ++restarts;
      // Scrub any non-finite coordinates, then restart from the true residual.
      for (std::size_t j = 0; j < n; ++j) {
        if (!std::isfinite(AsDouble(x[j]))) x[j] = T(0);
      }
      r.CopyFrom(b);
      MatVecInto(a, x, &ax);
      SubInPlace(ax, &r);
      MatTVecInto(a, r, &s);
      p.CopyFrom(s);
      gamma = NormSquared(s);
      need_restart = false;
    }
    if (AsDouble(gamma) == 0.0) break;  // exactly converged (reliable readout)

    MatVecInto(a, p, &q);
    const T qq = NormSquared(q);
    const T alpha = gamma / qq;
    if (!std::isfinite(AsDouble(alpha))) {
      need_restart = true;
      ++nonfinite_restarts;
      continue;
    }
    AxpyInPlace(alpha, p, &x);
    AxmyInPlace(alpha, q, &r);
    MatTVecInto(a, r, &s);
    const T gamma_new = NormSquared(s);
    const T beta = gamma_new / gamma;
    if (!std::isfinite(AsDouble(beta))) {
      need_restart = true;
      ++nonfinite_restarts;
      continue;
    }
    XpbyInPlace(s, beta, &p);
    gamma = gamma_new;
    nonfinite_restarts = 0;  // a clean iteration breaks the streak
  }

  // Final scrub + true residual norm.
  for (std::size_t j = 0; j < n; ++j) {
    if (!std::isfinite(AsDouble(x[j]))) x[j] = T(0);
  }
  r.CopyFrom(b);
  MatVecInto(a, x, &ax);
  SubInPlace(ax, &r);

  result->x.resize(n);
  for (std::size_t j = 0; j < n; ++j) result->x[j] = AsDouble(x[j]);
  result->iterations = performed;
  result->residual_norm = AsDouble(Norm(r));
  telemetry::Count(telemetry::Counter::kCglsIterations,
                   static_cast<std::uint64_t>(performed));
  telemetry::Count(telemetry::Counter::kCglsRestarts, restarts);
}

template <class T>
CgResult SolveCgls(const linalg::Matrix<T>& a, const linalg::Vector<T>& b,
                   const CgOptions& options, Workspace<T>* workspace = nullptr) {
  CgResult result;
  SolveCglsInto(a, b, options, workspace, &result);
  return result;
}

}  // namespace robustify::opt
