// Restarted CGLS: conjugate gradient on the normal equations A^T A x = A^T b
// without forming A^T A.  The periodic restart recomputes the residual from
// scratch, which is what lets the method shed fault-induced drift in its
// recurrences — the paper's key iterative-refinement insight for Figure 6.6.
#pragma once

#include <cmath>
#include <cstddef>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace robustify::opt {

struct CgOptions {
  int iterations = 10;
  int restart_every = 5;  // recompute the true residual this often
};

struct CgResult {
  linalg::Vector<double> x;
  int iterations = 0;
  double residual_norm = 0.0;
};

template <class T>
CgResult SolveCgls(const linalg::Matrix<T>& a, const linalg::Vector<T>& b,
                   const CgOptions& options) {
  using linalg::AsDouble;
  const std::size_t n = a.cols();
  linalg::Vector<T> x(n);
  linalg::Vector<T> r = b;                 // b - A x with x = 0
  linalg::Vector<T> s = MatTVec(a, r);     // A^T r
  linalg::Vector<T> p = s;
  T gamma = NormSquared(s);

  int performed = 0;
  bool need_restart = false;
  for (int it = 0; it < options.iterations; ++it, ++performed) {
    if (need_restart || (options.restart_every > 0 && it > 0 && it % options.restart_every == 0)) {
      // Scrub any non-finite coordinates, then restart from the true residual.
      for (std::size_t j = 0; j < n; ++j) {
        if (!std::isfinite(AsDouble(x[j]))) x[j] = T(0);
      }
      r = b;
      const linalg::Vector<T> ax = MatVec(a, x);
      for (std::size_t i = 0; i < r.size(); ++i) r[i] -= ax[i];
      s = MatTVec(a, r);
      p = s;
      gamma = NormSquared(s);
      need_restart = false;
    }
    if (AsDouble(gamma) == 0.0) break;  // exactly converged (reliable readout)

    const linalg::Vector<T> q = MatVec(a, p);
    const T qq = NormSquared(q);
    const T alpha = gamma / qq;
    if (!std::isfinite(AsDouble(alpha))) {
      need_restart = true;
      continue;
    }
    for (std::size_t j = 0; j < n; ++j) x[j] += alpha * p[j];
    for (std::size_t i = 0; i < r.size(); ++i) r[i] -= alpha * q[i];
    s = MatTVec(a, r);
    const T gamma_new = NormSquared(s);
    const T beta = gamma_new / gamma;
    if (!std::isfinite(AsDouble(beta))) {
      need_restart = true;
      continue;
    }
    for (std::size_t j = 0; j < n; ++j) p[j] = s[j] + beta * p[j];
    gamma = gamma_new;
  }

  // Final scrub + true residual norm.
  for (std::size_t j = 0; j < n; ++j) {
    if (!std::isfinite(AsDouble(x[j]))) x[j] = T(0);
  }
  linalg::Vector<T> final_r = b;
  const linalg::Vector<T> ax = MatVec(a, x);
  for (std::size_t i = 0; i < final_r.size(); ++i) final_r[i] -= ax[i];

  CgResult result;
  result.x = ToDouble(x);
  result.iterations = performed;
  result.residual_norm = AsDouble(Norm(final_r));
  return result;
}

}  // namespace robustify::opt
