// Restarted CGLS: conjugate gradient on the normal equations A^T A x = A^T b
// without forming A^T A.  The periodic restart recomputes the residual from
// scratch, which is what lets the method shed fault-induced drift in its
// recurrences — the paper's key iterative-refinement insight for Figure 6.6.
//
// All recurrence vectors are workspace scratch and every matrix-vector
// product runs in place, so a solve on a warmed workspace performs no heap
// allocation (the SolveCglsInto form is fully allocation-free; the
// by-value SolveCgls wrapper allocates only its returned CgResult).
#pragma once

#include <cmath>
#include <cstddef>

#include "core/guard.h"
#include "linalg/matrix.h"
#include "linalg/strided.h"
#include "linalg/vector.h"
#include "opt/workspace.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace robustify::opt {

struct CgOptions {
  int iterations = 10;
  int restart_every = 5;  // recompute the true residual this often
  // Paper-faithful iteration on *precomputed* normal equations: form
  // G = A^T A and c = A^T b once (faulty strided dots over the columns of
  // A), then iterate CG on G x = c at n^2 ops per iteration instead of
  // CGLS's two full m x n mat-vecs.  That 2m/n flop ratio is what the
  // paper's Figure 6.7 energy frontier assumes; the historical
  // double-matvec stream (the default here) is golden-pinned, so the
  // fix is flag-selectable (README "Known deviations").
  bool normal_equations = false;
};

struct CgResult {
  linalg::Vector<double> x;
  int iterations = 0;
  double residual_norm = 0.0;
};

namespace detail {

// CG on the precomputed normal equations G x = c (options.normal_equations).
// The restart recurrence, guard hooks, non-finite scrubbing, and the final
// true-residual readout (||b - A x||, against A itself) mirror SolveCglsInto;
// only the per-iteration product changes: one n x n row-dot sweep over G
// instead of A p followed by A^T q.
template <class T>
void SolveCgNormalInto(const linalg::Matrix<T>& a, const linalg::Vector<T>& b,
                       const CgOptions& options, Workspace<T>* workspace,
                       CgResult* result) {
  using linalg::AsDouble;
  telemetry::SpanScope solve_span("solve.cgne");
  telemetry::Count(telemetry::Counter::kCglsSolves);
  Workspace<T>& ws = workspace != nullptr ? *workspace : ThreadWorkspace<T>();
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::ptrdiff_t col = static_cast<std::ptrdiff_t>(n);  // column stride

  typename Workspace<T>::Lease g_lease = ws.Borrow(n * n);
  typename Workspace<T>::Lease c_lease = ws.Borrow(n);
  typename Workspace<T>::Lease x_lease = ws.Borrow(n);
  typename Workspace<T>::Lease r_lease = ws.Borrow(n);
  typename Workspace<T>::Lease p_lease = ws.Borrow(n);
  typename Workspace<T>::Lease q_lease = ws.Borrow(n);
  typename Workspace<T>::Lease ax_lease = ws.Borrow(m);
  typename Workspace<T>::Lease rm_lease = ws.Borrow(m);
  linalg::Vector<T>& g = *g_lease;
  linalg::Vector<T>& c = *c_lease;
  linalg::Vector<T>& x = *x_lease;
  linalg::Vector<T>& r = *r_lease;
  linalg::Vector<T>& p = *p_lease;
  linalg::Vector<T>& q = *q_lease;
  linalg::Vector<T>& ax = *ax_lease;
  linalg::Vector<T>& rm = *rm_lease;

  // G = A^T A (computed once, mirrored by reliable stores) and c = A^T b:
  // one strided dot per entry over the columns of A.
  const T* a0 = m > 0 ? a.row(0) : nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const T acc =
          linalg::detail::StridedDotAcc(T(0), m, a0 + i, col, a0 + j, col);
      g[i * n + j] = acc;
      g[j * n + i] = acc;
    }
    c[i] = linalg::detail::StridedDotAcc(T(0), m, a0 + i, col, b.data(), 1);
  }
  // q = G v, one contiguous row dot per entry.
  const auto gram_matvec = [&](const linalg::Vector<T>& v, linalg::Vector<T>* out) {
    for (std::size_t i = 0; i < n; ++i) {
      (*out)[i] = linalg::detail::StridedDotAcc(T(0), n, g.data() + i * n, 1,
                                                v.data(), 1);
    }
  };

  for (std::size_t j = 0; j < n; ++j) x[j] = T(0);
  r.CopyFrom(c);  // c - G x with x = 0
  p.CopyFrom(r);
  T gamma = NormSquared(r);

  const bool guard_bailout = core::GuardBailoutEnabled();
  constexpr int kNonFiniteRestartLimit = 4;
  int nonfinite_restarts = 0;

  int performed = 0;
  std::uint64_t restarts = 0;
  bool need_restart = false;
  for (int it = 0; it < options.iterations; ++it, ++performed) {
    if (core::GuardStop()) break;
    if (guard_bailout && nonfinite_restarts >= kNonFiniteRestartLimit) {
      core::GuardReportDivergence();
      break;
    }
    if (need_restart ||
        (options.restart_every > 0 && it > 0 && it % options.restart_every == 0)) {
      ++restarts;
      for (std::size_t j = 0; j < n; ++j) {
        if (!std::isfinite(AsDouble(x[j]))) x[j] = T(0);
      }
      gram_matvec(x, &q);
      r.CopyFrom(c);
      SubInPlace(q, &r);
      p.CopyFrom(r);
      gamma = NormSquared(r);
      need_restart = false;
    }
    if (AsDouble(gamma) == 0.0) break;  // exactly converged (reliable readout)

    gram_matvec(p, &q);
    const T pq = Dot(p, q);
    const T alpha = gamma / pq;
    if (!std::isfinite(AsDouble(alpha))) {
      need_restart = true;
      ++nonfinite_restarts;
      continue;
    }
    AxpyInPlace(alpha, p, &x);
    AxmyInPlace(alpha, q, &r);
    const T gamma_new = NormSquared(r);
    const T beta = gamma_new / gamma;
    if (!std::isfinite(AsDouble(beta))) {
      need_restart = true;
      ++nonfinite_restarts;
      continue;
    }
    XpbyInPlace(r, beta, &p);
    gamma = gamma_new;
    nonfinite_restarts = 0;
  }

  // Final scrub + the *true* residual against A, same readout as CGLS —
  // the frontiers stay comparable across the two iterations.
  for (std::size_t j = 0; j < n; ++j) {
    if (!std::isfinite(AsDouble(x[j]))) x[j] = T(0);
  }
  rm.CopyFrom(b);
  MatVecInto(a, x, &ax);
  SubInPlace(ax, &rm);

  result->x.resize(n);
  for (std::size_t j = 0; j < n; ++j) result->x[j] = AsDouble(x[j]);
  result->iterations = performed;
  result->residual_norm = AsDouble(Norm(rm));
  telemetry::Count(telemetry::Counter::kCglsIterations,
                   static_cast<std::uint64_t>(performed));
  telemetry::Count(telemetry::Counter::kCglsRestarts, restarts);
}

}  // namespace detail

// Solves into `result`, reusing its x storage (resize-without-free): calling
// again with the same result object and workspace allocates nothing.
template <class T>
void SolveCglsInto(const linalg::Matrix<T>& a, const linalg::Vector<T>& b,
                   const CgOptions& options, Workspace<T>* workspace,
                   CgResult* result) {
  using linalg::AsDouble;
  if (options.normal_equations) {
    detail::SolveCgNormalInto(a, b, options, workspace, result);
    return;
  }
  telemetry::SpanScope solve_span("solve.cgls");
  telemetry::Count(telemetry::Counter::kCglsSolves);
  Workspace<T>& ws = workspace != nullptr ? *workspace : ThreadWorkspace<T>();
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  typename Workspace<T>::Lease x_lease = ws.Borrow(n);
  typename Workspace<T>::Lease r_lease = ws.Borrow(m);
  typename Workspace<T>::Lease s_lease = ws.Borrow(n);
  typename Workspace<T>::Lease p_lease = ws.Borrow(n);
  typename Workspace<T>::Lease q_lease = ws.Borrow(m);
  typename Workspace<T>::Lease ax_lease = ws.Borrow(m);
  linalg::Vector<T>& x = *x_lease;
  linalg::Vector<T>& r = *r_lease;
  linalg::Vector<T>& s = *s_lease;
  linalg::Vector<T>& p = *p_lease;
  linalg::Vector<T>& q = *q_lease;
  linalg::Vector<T>& ax = *ax_lease;

  for (std::size_t j = 0; j < n; ++j) x[j] = T(0);
  r.CopyFrom(b);                // b - A x with x = 0
  MatTVecInto(a, r, &s);        // A^T r
  p.CopyFrom(s);
  T gamma = NormSquared(s);

  // Guarded execution (core/guard.h): budget caps stop the solve at the
  // current iterate (the final scrub + true-residual readout below still
  // runs); with bailout enabled, 4 consecutive non-finite-triggered
  // restarts — alpha or beta non-finite with no clean iteration between —
  // abandon the solve as diverged.  Inactive guards change nothing.
  const bool guard_bailout = core::GuardBailoutEnabled();
  constexpr int kNonFiniteRestartLimit = 4;
  int nonfinite_restarts = 0;

  int performed = 0;
  std::uint64_t restarts = 0;
  bool need_restart = false;
  for (int it = 0; it < options.iterations; ++it, ++performed) {
    if (core::GuardStop()) break;
    if (guard_bailout && nonfinite_restarts >= kNonFiniteRestartLimit) {
      core::GuardReportDivergence();
      break;
    }
    if (need_restart || (options.restart_every > 0 && it > 0 && it % options.restart_every == 0)) {
      ++restarts;
      // Scrub any non-finite coordinates, then restart from the true residual.
      for (std::size_t j = 0; j < n; ++j) {
        if (!std::isfinite(AsDouble(x[j]))) x[j] = T(0);
      }
      r.CopyFrom(b);
      MatVecInto(a, x, &ax);
      SubInPlace(ax, &r);
      MatTVecInto(a, r, &s);
      p.CopyFrom(s);
      gamma = NormSquared(s);
      need_restart = false;
    }
    if (AsDouble(gamma) == 0.0) break;  // exactly converged (reliable readout)

    MatVecInto(a, p, &q);
    const T qq = NormSquared(q);
    const T alpha = gamma / qq;
    if (!std::isfinite(AsDouble(alpha))) {
      need_restart = true;
      ++nonfinite_restarts;
      continue;
    }
    AxpyInPlace(alpha, p, &x);
    AxmyInPlace(alpha, q, &r);
    MatTVecInto(a, r, &s);
    const T gamma_new = NormSquared(s);
    const T beta = gamma_new / gamma;
    if (!std::isfinite(AsDouble(beta))) {
      need_restart = true;
      ++nonfinite_restarts;
      continue;
    }
    XpbyInPlace(s, beta, &p);
    gamma = gamma_new;
    nonfinite_restarts = 0;  // a clean iteration breaks the streak
  }

  // Final scrub + true residual norm.
  for (std::size_t j = 0; j < n; ++j) {
    if (!std::isfinite(AsDouble(x[j]))) x[j] = T(0);
  }
  r.CopyFrom(b);
  MatVecInto(a, x, &ax);
  SubInPlace(ax, &r);

  result->x.resize(n);
  for (std::size_t j = 0; j < n; ++j) result->x[j] = AsDouble(x[j]);
  result->iterations = performed;
  result->residual_norm = AsDouble(Norm(r));
  telemetry::Count(telemetry::Counter::kCglsIterations,
                   static_cast<std::uint64_t>(performed));
  telemetry::Count(telemetry::Counter::kCglsRestarts, restarts);
}

template <class T>
CgResult SolveCgls(const linalg::Matrix<T>& a, const linalg::Vector<T>& b,
                   const CgOptions& options, Workspace<T>* workspace = nullptr) {
  CgResult result;
  SolveCglsInto(a, b, options, workspace, &result);
  return result;
}

}  // namespace robustify::opt
