// The robustification engine: gradient descent with the paper's
// enhancements — step scaling (LS: 1/t, SQS: 1/sqrt(t)), adaptive scaling
// (AS: reject steps that raise the objective and shrink the step), momentum,
// gradient scrubbing/clipping, and phase schedules (large-step/refinement,
// penalty annealing).
//
// The descent itself runs on the faulty FPU when instantiated with
// faulty::Real; only iteration counting, step-size bookkeeping, and
// non-finite scrubbing run on the reliable control core (plain double /
// integer math on stored values).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "core/guard.h"
#include "core/phases.h"
#include "linalg/scalar.h"
#include "linalg/vector.h"
#include "opt/workspace.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace robustify::opt {

enum class StepScaling {
  kNone,    // constant step
  kLinear,  // LS: step_t = base / (1 + t / tau)
  kSqrt,    // SQS: step_t = base / sqrt(1 + t / tau)
};

struct SgdOptions {
  int iterations = 1000;
  double base_step = 0.1;
  StepScaling scaling = StepScaling::kLinear;
  double scaling_time_constant = 0.0;  // 0 -> iterations / 10
  bool adaptive = false;               // AS: accept/reject with step adaptation
  int adaptive_refresh = 16;           // re-evaluate f(x) every N iterations
  int gradient_votes = 1;              // >1: per-component median of repeated
                                       // gradient evaluations (TMR-style)
  double momentum_beta = 0.0;
  double gradient_clip = 1e6;          // component clamp; 0 disables
  double iterate_clamp = 0.0;          // reliable |x_j| bound; 0 disables
  double average_tail = 0.0;           // >0: return the (reliable) average of
                                       // the final fraction of iterates
  core::PhaseSchedule phases;          // empty -> one uniform phase
};

inline double StepScale(StepScaling scaling, int t, double tau) {
  switch (scaling) {
    case StepScaling::kNone: return 1.0;
    case StepScaling::kLinear: return 1.0 / (1.0 + t / tau);
    case StepScaling::kSqrt: return 1.0 / std::sqrt(1.0 + t / tau);
  }
  return 1.0;
}

namespace detail {

// Median-of-3 objective readout (reliable selection of faulty evaluations).
// The spread of the votes doubles as a free noise-scale estimate: under
// faults, accept/reject must tolerate objective changes smaller than the
// evaluation noise or the descent freezes.
struct VotedReadout {
  double median = 0.0;
  double spread = 0.0;
};

template <class T, class Objective>
VotedReadout VotedValue(const Objective& objective, const linalg::Vector<T>& x) {
  const double a = linalg::AsDouble(objective.Value(x));
  const double b = linalg::AsDouble(objective.Value(x));
  const double c = linalg::AsDouble(objective.Value(x));
  VotedReadout out;
  out.median = std::max(std::min(a, b), std::min(std::max(a, b), c));
  const double hi = std::max(std::max(a, b), c);
  const double lo = std::min(std::min(a, b), c);
  out.spread = (std::isfinite(hi) && std::isfinite(lo)) ? hi - lo : 0.0;
  return out;
}

}  // namespace detail

// Objective concept:
//   T Value(const linalg::Vector<T>& x) const;
//   void Gradient(const linalg::Vector<T>& x, linalg::Vector<T>* g) const;
//   void SetPenaltyScale(double s);   // no-op for unconstrained objectives
//
// All solver state lives in `workspace` scratch buffers (the caller's
// per-thread pool by default), so from the second solve on a warmed
// workspace the whole descent — engine and objective evaluations — runs
// without heap allocation (tests/test_allocation.cpp).
template <class T, class Objective>
linalg::Vector<T> MinimizeSgd(Objective& objective, linalg::Vector<T> x,
                              const SgdOptions& options,
                              Workspace<T>* workspace = nullptr) {
  using linalg::AsDouble;
  telemetry::SpanScope solve_span("solve.sgd");
  telemetry::Count(telemetry::Counter::kSgdSolves);
  Workspace<T>& ws = workspace != nullptr ? *workspace : ThreadWorkspace<T>();
  const std::size_t n = x.size();
  const double tau = options.scaling_time_constant > 0.0
                         ? options.scaling_time_constant
                         : std::max(1.0, options.iterations / 10.0);
  // Read the schedule in place (copying it was one allocation per solve);
  // an empty schedule means one uniform phase.
  static constexpr core::Phase kUniformPhase{1.0, 1.0, 1.0};
  const core::Phase* schedule =
      options.phases.empty() ? &kUniformPhase : options.phases.data();
  const std::size_t phase_count = options.phases.empty() ? 1 : options.phases.size();

  const bool votes = options.gradient_votes >= 3;
  typename Workspace<T>::Lease gradient_lease = ws.Borrow(n);
  typename Workspace<T>::Lease velocity_lease = ws.Borrow(n);
  typename Workspace<T>::Lease candidate_lease = ws.Borrow(n);
  typename Workspace<T>::Lease vote2_lease = ws.Borrow(votes ? n : 0);
  typename Workspace<T>::Lease vote3_lease = ws.Borrow(votes ? n : 0);
  linalg::Vector<T>& gradient = *gradient_lease;
  linalg::Vector<T>& velocity = *velocity_lease;
  linalg::Vector<T>& candidate = *candidate_lease;
  linalg::Vector<T>& vote2 = *vote2_lease;
  linalg::Vector<T>& vote3 = *vote3_lease;
  for (std::size_t j = 0; j < n; ++j) velocity[j] = T(0);  // momentum state

  // Polyak tail averaging: accumulated by the reliable controller, it
  // concentrates the stationary fault-noise distribution around the optimum.
  // The sums are stored in a T buffer but accumulated in plain double on
  // the readouts — reliable arithmetic, never routed through the injector.
  const int average_from =
      options.average_tail > 0.0
          ? options.iterations - static_cast<int>(options.average_tail * options.iterations)
          : options.iterations + 1;
  const bool averaging = options.average_tail > 0.0;
  typename Workspace<T>::Lease average_lease = ws.Borrow(averaging ? n : 0);
  linalg::Vector<T>& average_sum = *average_lease;
  for (std::size_t j = 0; j < average_sum.size(); ++j) average_sum[j] = T(0);
  int averaged_iterates = 0;

  // Guarded execution (core/guard.h): budget caps stop the descent where it
  // stands; with bailout enabled, a sustained non-finite streak — 8
  // consecutive iterations of a non-finite candidate objective (adaptive)
  // or a fully non-finite raw gradient (plain descent) — abandons the solve
  // as diverged.  All checks read reliable-core state only; an inactive
  // guard (the default) changes nothing.
  const bool guard_bailout = core::GuardBailoutEnabled();
  constexpr int kNonFiniteStreakLimit = 8;
  int nonfinite_streak = 0;
  bool guard_stopped = false;

  int t = 0;
  for (std::size_t phase_idx = 0; phase_idx < phase_count; ++phase_idx) {
    if (guard_stopped) break;
    const core::Phase& phase = schedule[phase_idx];
    telemetry::SpanScope phase_span("phase");
    telemetry::Count(telemetry::Counter::kSgdPhases);
    objective.SetPenaltyScale(phase.penalty_scale);
    int phase_iters = static_cast<int>(phase.fraction * options.iterations + 0.5);
    if (phase_idx + 1 == phase_count) phase_iters = options.iterations - t;

    // AS tracks the current objective value; re-evaluate after the penalty
    // weight changes so accept/reject compares like with like.
    double adapt = 1.0;
    detail::VotedReadout fx;
    if (options.adaptive) fx = detail::VotedValue(objective, x);

    for (int i = 0; i < phase_iters; ++i, ++t) {
      if (core::GuardStop()) {
        guard_stopped = true;
        break;
      }
      if (options.gradient_votes >= 3) {
        // Redundant evaluation with reliable per-component median voting:
        // a catastrophic fault must hit the same component in two of three
        // evaluations to survive into the update.
        telemetry::Count(telemetry::Counter::kSgdTmrVotes);
        objective.Gradient(x, &gradient);
        objective.Gradient(x, &vote2);
        objective.Gradient(x, &vote3);
        for (std::size_t j = 0; j < n; ++j) {
          const double a = AsDouble(gradient[j]);
          const double b = AsDouble(vote2[j]);
          const double c = AsDouble(vote3[j]);
          const double median =
              std::max(std::min(a, b), std::min(std::max(a, b), c));
          gradient[j] = T(median);
        }
      } else {
        objective.Gradient(x, &gradient);
      }

      // Scrub & clip on the reliable core: a single exponent-flipped
      // gradient component must not catapult the whole iterate.
      std::size_t nonfinite_components = 0;
      for (std::size_t j = 0; j < n; ++j) {
        const double g = AsDouble(gradient[j]);
        if (!std::isfinite(g)) {
          gradient[j] = T(0);
          ++nonfinite_components;
        } else if (options.gradient_clip > 0.0) {
          if (g > options.gradient_clip) gradient[j] = T(options.gradient_clip);
          if (g < -options.gradient_clip) gradient[j] = T(-options.gradient_clip);
        }
      }
      if (guard_bailout && !options.adaptive) {
        // Plain descent has no objective readout to watch: a raw gradient
        // with every component non-finite is the divergence signal.
        nonfinite_streak =
            (n > 0 && nonfinite_components == n) ? nonfinite_streak + 1 : 0;
        if (nonfinite_streak >= kNonFiniteStreakLimit) {
          core::GuardReportDivergence();
          guard_stopped = true;
          break;
        }
      }

      const double step =
          options.base_step * phase.step_scale * StepScale(options.scaling, t, tau) * adapt;
      const T step_t(step);

      double direction_bound = options.gradient_clip;
      if (options.momentum_beta > 0.0) {
        const T beta(options.momentum_beta);
        if (options.gradient_clip > 0.0) {
          direction_bound = options.gradient_clip / (1.0 - options.momentum_beta);
        }
        for (std::size_t j = 0; j < n; ++j) {
          velocity[j] = beta * velocity[j] + gradient[j];
          // The velocity recurrence is faulty too: scrub its readout.
          const double v = AsDouble(velocity[j]);
          if (!std::isfinite(v)) {
            velocity[j] = T(0);
          } else if (direction_bound > 0.0) {
            if (v > direction_bound) velocity[j] = T(direction_bound);
            if (v < -direction_bound) velocity[j] = T(-direction_bound);
          }
        }
      }
      const linalg::Vector<T>& direction =
          options.momentum_beta > 0.0 ? velocity : gradient;

      // Trust region enforced by the reliable controller: the update
      // arithmetic (mul + sub per coordinate) is faulty, and a corrupted
      // write lands directly in the iterate, bypassing the gradient clip.
      // No legitimate update can move a coordinate further than
      // step * |direction| <= step * direction_bound, so cap |dx| there.
      const double move_limit =
          direction_bound > 0.0 ? step * direction_bound : 0.0;

      bool candidate_finite = true;
      for (std::size_t j = 0; j < n; ++j) {
        candidate[j] = x[j] - step_t * direction[j];
        double c = AsDouble(candidate[j]);
        const double x0 = AsDouble(x[j]);
        if (!std::isfinite(c)) {
          candidate[j] = x[j];  // keep the old coordinate
          candidate_finite = false;
          continue;
        }
        if (move_limit > 0.0 && std::abs(c - x0) > move_limit) {
          c = x0 + (c > x0 ? move_limit : -move_limit);
          candidate[j] = T(c);
        }
        if (options.iterate_clamp > 0.0) {
          // Domain bound: a corrupted coordinate must not poison the
          // penalty landscape for the rest of the run.
          if (c > options.iterate_clamp) candidate[j] = T(options.iterate_clamp);
          if (c < -options.iterate_clamp) candidate[j] = T(-options.iterate_clamp);
        }
      }

      if (options.adaptive) {
        // A corrupted Value() readout could make fx unbeatably small and
        // freeze the descent; refresh it periodically.
        if (options.adaptive_refresh > 0 && t % options.adaptive_refresh == 0) {
          fx = detail::VotedValue(objective, x);
        }
        const detail::VotedReadout fc = detail::VotedValue(objective, candidate);
        if (guard_bailout) {
          // Adaptive descent watches the candidate objective: a voted
          // median that stays non-finite for a sustained streak means the
          // iterate left the representable region for good.
          nonfinite_streak = std::isfinite(fc.median) ? 0 : nonfinite_streak + 1;
          if (nonfinite_streak >= kNonFiniteStreakLimit) {
            core::GuardReportDivergence();
            guard_stopped = true;
            break;
          }
        }
        // Accept unless the increase is significant against the evaluation
        // noise (the vote spreads): rejecting on sub-noise differences would
        // freeze the descent under heavy fault rates.
        const double tolerance = fx.spread + fc.spread;
        if (candidate_finite && std::isfinite(fc.median) &&
            fc.median <= fx.median + tolerance) {
          for (std::size_t j = 0; j < n; ++j) x[j] = candidate[j];
          fx = fc;
          adapt = std::min(1.0, adapt * 1.15);
          telemetry::Count(telemetry::Counter::kSgdAccepts);
        } else {
          adapt = std::max(0.05, adapt * 0.7);
          telemetry::Count(telemetry::Counter::kSgdRejects);
        }
      } else {
        for (std::size_t j = 0; j < n; ++j) x[j] = candidate[j];
      }
      if (t >= average_from) {
        for (std::size_t j = 0; j < n; ++j) {
          // Reliable accumulate: double math on readouts, stored back as T.
          average_sum[j] = T(AsDouble(average_sum[j]) + AsDouble(x[j]));
        }
        ++averaged_iterates;
      }
    }
  }
  objective.SetPenaltyScale(1.0);
  telemetry::Count(telemetry::Counter::kSgdIterations,
                   static_cast<std::uint64_t>(t));
  if (averaged_iterates > 0) {
    for (std::size_t j = 0; j < n; ++j) {
      x[j] = T(AsDouble(average_sum[j]) / averaged_iterates);
    }
  }
  return x;
}

}  // namespace robustify::opt
