// Quadratic-penalty LP objective (paper Sections 4.2-4.6).
//
// The paper robustifies discrete kernels by writing them as linear programs
//   min c.x   s.t.  A x (<=|==) rhs,  lo <= x <= hi
// and descending the smooth penalty function
//   F(x) = c.x + W * [ sum_i viol_i(x)^2 + box violations ]
// with SGD.  Constraint coefficients live in reliable memory; every
// evaluation of F and its gradient runs on the faulty FPU, which is why the
// descent — unlike a one-shot combinatorial algorithm — can average the
// faults away.
//
// Supports the Figure 6.5 enhancements: penalty annealing is driven from the
// phase schedule via SetPenaltyScale, and Jacobi preconditioning divides
// each gradient component by the penalty Hessian's diagonal estimate.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "linalg/scalar.h"
#include "linalg/vector.h"

namespace robustify::opt {

struct LpConstraint {
  std::vector<std::pair<int, double>> terms;  // (variable index, coefficient)
  double rhs = 0.0;
  bool equality = false;  // false: sum <= rhs; true: sum == rhs
};

template <class T>
class PenalizedLp {
 public:
  PenalizedLp(std::vector<double> cost, std::vector<LpConstraint> constraints,
              std::vector<double> lower, std::vector<double> upper, double weight,
              bool precondition)
      : cost_(std::move(cost)),
        lower_(std::move(lower)),
        upper_(std::move(upper)),
        weight_(weight),
        precondition_(precondition) {
    // Flatten the constraint rows into CSR form once: Value and Gradient
    // walk only each row's nonzeros through two flat arrays (index, coef)
    // instead of chasing a vector-of-vectors — the constraint scan is the
    // inner loop of every descent step on the LP apps.
    row_ptr_.reserve(constraints.size() + 1);
    row_ptr_.push_back(0);
    for (const LpConstraint& con : constraints) {
      for (const auto& [j, coef] : con.terms) {
        idx_.push_back(j);
        coef_.push_back(coef);
      }
      row_ptr_.push_back(idx_.size());
      rhs_.push_back(con.rhs);
      equality_.push_back(con.equality);
    }
    if (precondition_) BuildPreconditioner();
  }

  std::size_t variables() const { return cost_.size(); }

  void SetPenaltyScale(double s) { penalty_scale_ = s; }

  T Value(const linalg::Vector<T>& x) const {
    const T w(weight_ * penalty_scale_);
    T value(0);
    for (std::size_t j = 0; j < cost_.size(); ++j) value += T(cost_[j]) * x[j];
    const std::size_t rows = rhs_.size();
    for (std::size_t row = 0; row < rows; ++row) {
      T lhs(0);
      for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
        lhs += T(coef_[k]) * x[static_cast<std::size_t>(idx_[k])];
      }
      T viol = lhs - T(rhs_[row]);
      // Penalty activity is a branch decision: taken by the reliable
      // controller on the stored value (the value itself is faulty).
      if (!equality_[row] && !(linalg::AsDouble(viol) > 0.0)) viol = T(0);
      value += w * viol * viol;
    }
    for (std::size_t j = 0; j < cost_.size(); ++j) {
      const T lo_viol = T(lower_[j]) - x[j];
      if (linalg::AsDouble(lo_viol) > 0.0) value += w * lo_viol * lo_viol;
      const T hi_viol = x[j] - T(upper_[j]);
      if (linalg::AsDouble(hi_viol) > 0.0) value += w * hi_viol * hi_viol;
    }
    return value;
  }

  void Gradient(const linalg::Vector<T>& x, linalg::Vector<T>* g) const {
    const T two_w(2.0 * weight_ * penalty_scale_);
    for (std::size_t j = 0; j < cost_.size(); ++j) (*g)[j] = T(cost_[j]);
    const std::size_t rows = rhs_.size();
    for (std::size_t row = 0; row < rows; ++row) {
      const std::size_t lo = row_ptr_[row], hi = row_ptr_[row + 1];
      T lhs(0);
      for (std::size_t k = lo; k < hi; ++k) {
        lhs += T(coef_[k]) * x[static_cast<std::size_t>(idx_[k])];
      }
      T viol = lhs - T(rhs_[row]);
      if (!equality_[row] && !(linalg::AsDouble(viol) > 0.0)) continue;
      const T scale = two_w * viol;
      for (std::size_t k = lo; k < hi; ++k) {
        (*g)[static_cast<std::size_t>(idx_[k])] += T(coef_[k]) * scale;
      }
    }
    for (std::size_t j = 0; j < cost_.size(); ++j) {
      const T lo_viol = T(lower_[j]) - x[j];
      if (linalg::AsDouble(lo_viol) > 0.0) (*g)[j] -= two_w * lo_viol;
      const T hi_viol = x[j] - T(upper_[j]);
      if (linalg::AsDouble(hi_viol) > 0.0) (*g)[j] += two_w * hi_viol;
    }
    if (precondition_) {
      for (std::size_t j = 0; j < cost_.size(); ++j) (*g)[j] *= T(inv_diag_[j]);
    }
  }

  // Reliable clamp of the final iterate into the box (controller action).
  void ClampToBox(linalg::Vector<T>* x) const {
    for (std::size_t j = 0; j < cost_.size(); ++j) {
      const double v = linalg::AsDouble((*x)[j]);
      if (!std::isfinite(v)) {
        (*x)[j] = T(lower_[j]);
      } else if (v < lower_[j]) {
        (*x)[j] = T(lower_[j]);
      } else if (v > upper_[j]) {
        (*x)[j] = T(upper_[j]);
      }
    }
  }

 private:
  void BuildPreconditioner() {
    // Diagonal of the active-penalty Hessian: d_j = 1 + 2W sum_i A_ij^2,
    // normalized to mean 1 so preconditioning reshapes the landscape without
    // uniformly shrinking the effective step.
    inv_diag_.assign(cost_.size(), 1.0);
    std::vector<double> diag(cost_.size(), 1.0);
    for (std::size_t k = 0; k < idx_.size(); ++k) {
      diag[static_cast<std::size_t>(idx_[k])] += 2.0 * weight_ * coef_[k] * coef_[k];
    }
    double mean = 0.0;
    for (const double d : diag) mean += d / static_cast<double>(diag.size());
    for (std::size_t j = 0; j < cost_.size(); ++j) inv_diag_[j] = mean / diag[j];
  }

  std::vector<double> cost_;
  // Constraint rows in CSR form: row r's nonzeros are (idx_[k], coef_[k])
  // for k in [row_ptr_[r], row_ptr_[r+1]), with right-hand side rhs_[r] and
  // sense equality_[r].
  std::vector<std::size_t> row_ptr_;
  std::vector<int> idx_;
  std::vector<double> coef_;
  std::vector<double> rhs_;
  std::vector<std::uint8_t> equality_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  double weight_;
  bool precondition_;
  double penalty_scale_ = 1.0;
  std::vector<double> inv_diag_;
};

}  // namespace robustify::opt
