// Per-trial scratch-buffer pool: the allocation-free backbone of the hot
// paths.
//
// Profile context: one fig-6.1 run used to perform 6.3 million heap
// allocations because every SortObjective::Gradient call constructed two
// std::vector<T>, and the CGLS inner loop built a fresh vector per
// matrix-vector product.  A Workspace owns those buffers instead: Borrow(n)
// hands out a vector resized to n (resize-without-free — capacity is never
// returned to the allocator), and the RAII Lease puts it back on a free
// list when it goes out of scope.  After the first pass over a code path
// ("warm-up") every Borrow is a free-list pop + bounds-checked resize: zero
// heap traffic, which tests/test_allocation.cpp locks in with a counting
// operator new.
//
// Ownership model: the harness's unit of work is the trial, and each sweep
// worker thread runs many trials back to back, so the natural owner is the
// thread — ThreadWorkspace<T>() hands every trial on a worker the same
// warmed pool.  App entry points default to it and accept an explicit
// Workspace* for callers (tests, nested solvers) that want isolation.
//
// Borrowed contents are unspecified: callers overwrite every element they
// read (gradient evaluations write the full output; in-place MatTVec zeroes
// its target first).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "linalg/vector.h"

namespace robustify::opt {

template <class T>
class Workspace {
 public:
  // RAII handle on a pooled vector: releases the buffer back to the free
  // list on destruction.  Movable, not copyable.
  class Lease {
   public:
    Lease(Workspace* owner, std::size_t index) : owner_(owner), index_(index) {}
    Lease(Lease&& other) noexcept : owner_(other.owner_), index_(other.index_) {
      other.owner_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        owner_ = other.owner_;
        index_ = other.index_;
        other.owner_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    linalg::Vector<T>& operator*() const { return *owner_->pool_[index_]; }
    linalg::Vector<T>* operator->() const { return owner_->pool_[index_].get(); }

   private:
    void Release() {
      if (owner_ != nullptr) owner_->free_.push_back(index_);
      owner_ = nullptr;
    }

    Workspace* owner_;
    std::size_t index_;
  };

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // A pooled vector resized to n (contents unspecified).  Allocates only
  // when the pool has no free buffer or the buffer has never been this
  // large; steady state is pop + resize-within-capacity.
  Lease Borrow(std::size_t n) {
    std::size_t index;
    if (free_.empty()) {
      index = pool_.size();
      pool_.push_back(std::make_unique<linalg::Vector<T>>());
    } else {
      index = free_.back();
      free_.pop_back();
    }
    pool_[index]->resize(n);
    return Lease(this, index);
  }

  std::size_t pooled() const { return pool_.size(); }

 private:
  friend class Lease;

  // unique_ptr entries keep vector addresses stable while pool_ regrows.
  std::vector<std::unique_ptr<linalg::Vector<T>>> pool_;
  std::vector<std::size_t> free_;
};

// The worker thread's workspace: every trial that runs on this thread
// shares (and keeps warm) the same pool.  See the ownership note above.
template <class T>
Workspace<T>& ThreadWorkspace() {
  thread_local Workspace<T> workspace;
  return workspace;
}

}  // namespace robustify::opt
