#include "store/result_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <utility>

#include "campaign/adaptive.h"
#include "telemetry/telemetry.h"

namespace robustify::store {

namespace {

namespace fs = std::filesystem;

using campaign::CampaignJournal;
using campaign::CampaignSpec;
using campaign::TrialRecord;

using CellKey = std::pair<int, int>;  // (series, rate)

std::string FingerprintHex(std::uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, fingerprint);
  return std::string(buf);
}

// Buckets records per cell and normalizes each bucket to the contiguous
// trial-index prefix from 0 — the only shape a valid journal can produce,
// and the shape the prefix-wins merge below relies on.  std::map keys give
// deterministic (series, rate) iteration order for the rewrite.
std::map<CellKey, std::vector<TrialRecord>> Normalize(
    const std::vector<TrialRecord>& records) {
  std::map<CellKey, std::vector<TrialRecord>> cells;
  for (const TrialRecord& r : records) {
    if (r.series < 0 || r.rate < 0 || r.trial < 0) continue;
    cells[{r.series, r.rate}].push_back(r);
  }
  for (auto& [key, bucket] : cells) {
    std::sort(bucket.begin(), bucket.end(),
              [](const TrialRecord& a, const TrialRecord& b) {
                return a.trial < b.trial;
              });
    std::size_t keep = 0;
    while (keep < bucket.size() &&
           bucket[keep].trial == static_cast<int>(keep)) {
      ++keep;
    }
    bucket.resize(keep);
  }
  return cells;
}

std::string JournalPath(const std::string& dir) { return dir + "/cells.journal"; }

}  // namespace

std::string ResultStore::CampaignDir(const CampaignSpec& spec) const {
  return root_ + "/" + FingerprintHex(campaign::SpecFingerprint(spec));
}

StoredCells ResultStore::Load(const CampaignSpec& spec) const {
  StoredCells stored;
  const std::uint64_t fingerprint = campaign::SpecFingerprint(spec);
  CampaignJournal::Loaded loaded =
      CampaignJournal::Load(JournalPath(CampaignDir(spec)));
  if (!loaded.exists) return stored;
  if (loaded.fingerprint != fingerprint) {
    throw std::runtime_error(
        "result store corrupt: " + JournalPath(CampaignDir(spec)) +
        " carries fingerprint " + FingerprintHex(loaded.fingerprint) +
        " but is filed under " + FingerprintHex(fingerprint));
  }
  stored.exists = true;
  std::map<CellKey, std::vector<TrialRecord>> cells = Normalize(loaded.records);
  for (auto& [key, bucket] : cells) {
    stored.records.insert(stored.records.end(), bucket.begin(), bucket.end());
  }
  return stored;
}

ResultStore::IngestStats ResultStore::IngestRecords(
    const CampaignSpec& spec, const std::vector<TrialRecord>& records) {
  const std::uint64_t fingerprint = campaign::SpecFingerprint(spec);
  const std::string dir = CampaignDir(spec);

  std::map<CellKey, std::vector<TrialRecord>> merged;
  {
    CampaignJournal::Loaded existing = CampaignJournal::Load(JournalPath(dir));
    if (existing.exists && existing.fingerprint != fingerprint) {
      throw std::runtime_error(
          "result store corrupt: " + JournalPath(dir) +
          " carries fingerprint " + FingerprintHex(existing.fingerprint) +
          " but is filed under " + FingerprintHex(fingerprint));
    }
    merged = Normalize(existing.records);
  }

  IngestStats stats;
  std::map<CellKey, std::vector<TrialRecord>> incoming = Normalize(records);
  for (auto& [key, bucket] : incoming) {
    std::vector<TrialRecord>& current = merged[key];
    if (bucket.size() > current.size()) {
      stats.records_added +=
          static_cast<long>(bucket.size() - current.size());
      ++stats.cells_updated;
      current = std::move(bucket);
    }
  }
  if (stats.cells_updated == 0) return stats;  // idempotent re-ingest: no I/O

  fs::create_directories(dir);
  {
    std::ofstream spec_out(dir + "/spec.txt", std::ios::trunc);
    spec_out << campaign::CanonicalSpecText(spec);
  }
  // Rewrite the whole journal on a tmp path, then rename into place: readers
  // never observe a partially merged store.
  const std::string tmp = JournalPath(dir) + ".tmp";
  {
    CampaignJournal journal(tmp);
    journal.Start(fingerprint);
    for (const auto& [key, bucket] : merged) {
      journal.Append(bucket.data(), bucket.size());
    }
  }
  fs::rename(tmp, JournalPath(dir));

  telemetry::Count(telemetry::Counter::kStoreIngestedCells,
                   static_cast<std::uint64_t>(stats.cells_updated));
  return stats;
}

std::vector<ResultStore::ManifestEntry> ResultStore::Manifest() const {
  std::vector<ManifestEntry> manifest;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(root_, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() != 16 ||
        name.find_first_not_of("0123456789abcdef") != std::string::npos) {
      continue;  // not a fingerprint directory
    }
    CampaignJournal::Loaded loaded =
        CampaignJournal::Load(JournalPath(entry.path().string()));
    if (!loaded.exists) continue;

    ManifestEntry campaign;
    campaign.fingerprint = name;
    // spec.txt's "app = ..." line names the scenario; best-effort only.
    std::ifstream spec_in(entry.path().string() + "/spec.txt");
    std::string line;
    while (std::getline(spec_in, line)) {
      if (line.rfind("app = ", 0) == 0) {
        campaign.app = line.substr(6);
        break;
      }
    }
    for (const auto& [key, bucket] : Normalize(loaded.records)) {
      if (bucket.empty()) continue;
      ManifestCell cell;
      cell.series = key.first;
      cell.rate = key.second;
      cell.trials = static_cast<int>(bucket.size());
      for (const TrialRecord& r : bucket) {
        if (r.success) ++cell.successes;
      }
      cell.half_width = campaign::WilsonHalfWidth(cell.successes, cell.trials);
      campaign.cells.push_back(cell);
    }
    if (!campaign.cells.empty()) manifest.push_back(std::move(campaign));
  }
  std::sort(manifest.begin(), manifest.end(),
            [](const ManifestEntry& a, const ManifestEntry& b) {
              return a.fingerprint < b.fingerprint;
            });
  return manifest;
}

ResultStore::IngestStats ResultStore::IngestJournal(const CampaignSpec& spec,
                                                    const std::string& path) {
  CampaignJournal::Loaded loaded = CampaignJournal::Load(path);
  if (!loaded.exists) {
    throw std::runtime_error("cannot ingest: no readable journal at " + path);
  }
  const std::uint64_t fingerprint = campaign::SpecFingerprint(spec);
  if (loaded.fingerprint != fingerprint) {
    throw std::runtime_error(
        "cannot ingest " + path + ": journal fingerprint " +
        FingerprintHex(loaded.fingerprint) + " does not match spec " +
        FingerprintHex(fingerprint) +
        " (different campaign — merging would mix incompatible tallies)");
  }
  return IngestRecords(spec, loaded.records);
}

}  // namespace robustify::store
