// Content-addressed campaign result store.
//
// The store is a directory of per-campaign sub-directories keyed by spec
// fingerprint (campaign/spec.h): `<root>/<%016x fingerprint>/` holds
// `cells.journal` — every accepted trial of the campaign, in the standard
// checkpoint journal format (campaign/checkpoint.h), sorted by
// (series, rate, trial) with each cell a contiguous trial-index prefix —
// plus `spec.txt`, the canonical spec text the fingerprint hashes, so a
// store directory is self-describing.
//
// Content addressing is what makes merging trivial: per-cell seeding makes
// a cell's outcome sequence a pure function of the canonical spec, so two
// journals with the same fingerprint can only hold *prefixes of the same
// sequence* per cell.  Merge therefore reduces to "longest contiguous
// prefix wins" — duplicate cells from overlapping shard runs resolve
// deterministically (higher trial count wins), re-ingesting a journal is a
// no-op, and a cell extended by a tighter-CI query subsumes the original.
// Ingesting a journal whose fingerprint does not match the target spec is
// rejected outright.
//
// Writes are atomic: the merged journal lands on `cells.journal.tmp` and is
// renamed into place, so a crash mid-ingest leaves the previous store state
// intact (and CampaignJournal::Load tolerates a torn tail in the *incoming*
// journal — the torn line and anything after it are dropped, never merged).
#pragma once

#include <string>
#include <vector>

#include "campaign/checkpoint.h"
#include "campaign/spec.h"

namespace robustify::store {

struct StoredCells {
  bool exists = false;  // the campaign has a directory with a readable journal
  // Sorted by (series, rate, trial); every cell a contiguous prefix from 0.
  std::vector<campaign::TrialRecord> records;
};

class ResultStore {
 public:
  explicit ResultStore(std::string root) : root_(std::move(root)) {}

  const std::string& root() const { return root_; }

  // `<root>/<%016x>` for the spec's fingerprint.
  std::string CampaignDir(const campaign::CampaignSpec& spec) const;

  // Reads the campaign's stored records (normalized: sorted, contiguous
  // prefixes).  exists == false when the campaign has no stored journal.
  StoredCells Load(const campaign::CampaignSpec& spec) const;

  struct IngestStats {
    int cells_updated = 0;   // cells that gained at least one record
    long records_added = 0;  // net new records across those cells
  };

  // Merges `records` into the campaign's store entry: per cell, the longer
  // contiguous trial-index prefix of {stored, incoming} wins.  Incoming
  // records that are not a contiguous prefix from trial 0 are truncated at
  // the first gap (they could not have come from a valid journal).  Creates
  // the campaign directory (and spec.txt) on first ingest.  Idempotent.
  IngestStats IngestRecords(const campaign::CampaignSpec& spec,
                            const std::vector<campaign::TrialRecord>& records);

  // Loads the journal at `path` (tolerating a torn tail), validates its
  // fingerprint against the spec, and ingests its records.  Throws
  // std::runtime_error when the journal is unreadable or was written by a
  // different spec.
  IngestStats IngestJournal(const campaign::CampaignSpec& spec,
                            const std::string& path);

  struct ManifestCell {
    int series = 0;
    int rate = 0;        // index into the campaign's rate axis
    int trials = 0;      // stored contiguous prefix length
    int successes = 0;
    double half_width = 0.0;  // achieved Wilson 95% on the full tally
  };
  struct ManifestEntry {
    std::string fingerprint;  // 16-hex campaign directory name
    std::string app;          // from spec.txt; empty when unreadable
    std::vector<ManifestCell> cells;  // sorted by (series, rate); nonempty
  };

  // Summarizes every campaign directory under the root: which fingerprints
  // are stored, and per cell how many trials the store holds and the
  // precision they achieve.  Sorted by fingerprint; unreadable journals and
  // non-campaign directories are skipped, never an error (the manifest is a
  // status report, not a validator).
  std::vector<ManifestEntry> Manifest() const;

 private:
  std::string root_;
};

}  // namespace robustify::store
