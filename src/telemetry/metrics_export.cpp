#include "telemetry/metrics_export.h"

#include <fstream>
#include <stdexcept>

#include "telemetry/provenance.h"

namespace robustify::telemetry {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void WriteMetricsJson(const std::string& path, const MetricsContext& context) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open metrics JSON for writing: " + path);

  const BuildProvenance& prov = Provenance();
  const CounterSnapshot snapshot = SnapshotCounters();

  out << "{\n"
      << "  \"bench\": \"" << JsonEscape(context.bench) << "\",\n"
      << "  \"threads\": " << context.threads << ",\n"
      << "  \"env\": {\"injector_strategy\": \""
      << JsonEscape(context.injector_strategy) << "\", \"engine\": \""
      << JsonEscape(context.engine) << "\"";
  if (!context.rng.empty()) {
    out << ", \"rng\": \"" << JsonEscape(context.rng) << "\"";
  }
  out << "},\n"
      << "  \"provenance\": {\"git_sha\": \"" << JsonEscape(prov.git_sha)
      << "\", \"git_status\": \"" << JsonEscape(prov.git_status)
      << "\", \"compiler\": \"" << JsonEscape(prov.compiler)
      << "\", \"cxx_flags\": \"" << JsonEscape(prov.cxx_flags)
      << "\", \"build_type\": \"" << JsonEscape(prov.build_type) << "\"},\n"
      << "  \"telemetry\": \""
      << (ROBUSTIFY_TELEMETRY_ENABLED ? "enabled" : "compiled-out") << "\",\n";

  out << "  \"counters\": {";
  bool first = true;
  for (int c = 0; c < kNumCounters; ++c) {
    if (snapshot.counters[c] == 0) continue;
    out << (first ? "\n" : ",\n") << "    \""
        << CounterName(static_cast<Counter>(c)) << "\": " << snapshot.counters[c];
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"histograms\": {";
  first = true;
  for (int h = 0; h < kNumHistograms; ++h) {
    const Histogram hist = static_cast<Histogram>(h);
    const std::uint64_t total = snapshot.histogram_total(hist);
    if (total == 0) continue;
    // Sparse map keyed by bucket lower bound (log2 buckets: 0, 1, 2, 4,
    // ...), empty buckets omitted, plus interpolated quantiles.
    out << (first ? "\n" : ",\n") << "    \"" << HistogramName(hist)
        << "\": {\"total\": " << total
        << ", \"p50\": " << HistogramQuantile(snapshot.histograms[h], 0.50)
        << ", \"p90\": " << HistogramQuantile(snapshot.histograms[h], 0.90)
        << ", \"p99\": " << HistogramQuantile(snapshot.histograms[h], 0.99)
        << ", \"buckets\": {";
    bool first_bucket = true;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      const std::uint64_t count = snapshot.histograms[h][b];
      if (count == 0) continue;
      out << (first_bucket ? "" : ", ") << "\"" << HistogramBucketLowerBound(b)
          << "\": " << count;
      first_bucket = false;
    }
    out << "}}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";

  if (!out.good()) throw std::runtime_error("failed writing metrics JSON: " + path);
}

}  // namespace robustify::telemetry
