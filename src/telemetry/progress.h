// Flight-recorder telemetry, part 3: the --progress stderr heartbeat.
//
// Long sweeps and campaigns are silent until their final table; with
// --progress the runner emits a throttled heartbeat line to stderr:
//
//   [progress] campaign: 12/35 cells, 480 trials, 123.4 trials/s, ETA 8.2s
//
// Units are the runner's parallel grain (grid trials for a sweep, cells for
// a campaign); the ETA comes from an EWMA of per-unit completion intervals,
// so wildly unequal adaptive cells converge onto a usable estimate instead
// of whipsawing on each cheap saturated cell.  Heartbeats go only to
// stderr and never touch results, CSVs, or the simulation RNG.  Disabled
// (the default) the per-unit cost is one relaxed bool load.
#pragma once

#include <atomic>
#include <cstdint>

#include "telemetry/telemetry.h"

namespace robustify::telemetry {

#if ROBUSTIFY_TELEMETRY_ENABLED

namespace detail {
extern std::atomic<bool> g_progress_enabled;
}

// Master switch, set once by the CLI/bench flag parser before running.
void EnableProgress();
inline bool ProgressEnabled() {
  return detail::g_progress_enabled.load(std::memory_order_relaxed);
}

// Begin a phase of `total_units` parallel units labeled `label` (a string
// literal).  Nested phases are not tracked — the innermost Begin wins.
void ProgressBegin(const char* label, long total_units);

// One unit finished, contributing `trials` trials.  Thread-safe; prints a
// heartbeat at most every ~700 ms.
void ProgressUnitDone(long trials);

// Final summary line for the current phase.
void ProgressEnd();

#else  // compiled out

inline void EnableProgress() {}
inline bool ProgressEnabled() { return false; }
inline void ProgressBegin(const char*, long) {}
inline void ProgressUnitDone(long) {}
inline void ProgressEnd() {}

#endif  // ROBUSTIFY_TELEMETRY_ENABLED

}  // namespace robustify::telemetry
