#include "telemetry/telemetry.h"

#include <mutex>

namespace robustify::telemetry {

namespace {

constexpr const char* kCounterNames[kNumCounters] = {
    "injector.scopes",
    "injector.faults",
    "injector.flops",
    "gap.draws.table",
    "gap.draws.invcdf",
    "gap.draws.fused",
    "sgd.solves",
    "sgd.iterations",
    "sgd.phases",
    "sgd.accepts",
    "sgd.rejects",
    "sgd.tmr_votes",
    "cgls.solves",
    "cgls.iterations",
    "cgls.restarts",
    "campaign.cells",
    "campaign.cells_settled",
    "campaign.trials",
    "campaign.trials_resumed",
    "checkpoint.flushes",
    "checkpoint.records",
    "injector.faults_arith",
    "injector.faults_compare",
    "injector.faults_memory",
    "injector.windows",
    "trials.diverged",
    "trials.budget_exhausted",
    "store.hits",
    "store.misses",
    "store.fresh_trials",
    "store.ingested_cells",
};

constexpr const char* kHistogramNames[kNumHistograms] = {
    "injector.clean_run",
    "campaign.trials_to_stop",
    "campaign.stop_half_width_ppm",
    "query.latency_us.cache",
    "query.latency_us.fresh_trials",
    "query.latency_us.surrogate",
};

}  // namespace

const char* CounterName(Counter c) {
  const int i = static_cast<int>(c);
  return i >= 0 && i < kNumCounters ? kCounterNames[i] : "?";
}

const char* HistogramName(Histogram h) {
  const int i = static_cast<int>(h);
  return i >= 0 && i < kNumHistograms ? kHistogramNames[i] : "?";
}

double HistogramQuantile(const std::uint64_t* buckets, double q) {
  std::uint64_t total = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) total += buckets[b];
  if (total == 0) return 0.0;
  if (!(q > 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double next = cumulative + static_cast<double>(buckets[b]);
    if (next >= target) {
      if (b == 0) return 0.0;
      // Bucket b >= 1 spans [2^(b-1), 2^b): width == lower bound.
      const double lower = static_cast<double>(HistogramBucketLowerBound(b));
      const double frac = (target - cumulative) / static_cast<double>(buckets[b]);
      return lower + lower * frac;
    }
    cumulative = next;
  }
  for (int b = kHistogramBuckets - 1; b >= 0; --b) {
    if (buckets[b] != 0) {
      return b == 0 ? 0.0
                    : 2.0 * static_cast<double>(HistogramBucketLowerBound(b));
    }
  }
  return 0.0;
}

#if ROBUSTIFY_TELEMETRY_ENABLED

namespace detail {

std::atomic<bool> g_counters_enabled{true};

namespace {

// Registry of live shards plus the folded totals of exited threads.  A
// Meyers singleton so it outlives every thread_local ShardHolder (function
// statics are destroyed after thread-local storage on normal exit).
struct Registry {
  std::mutex mu;
  Shard* head = nullptr;              // live shards, intrusively linked
  std::uint64_t retired_counters[kNumCounters] = {};
  std::uint64_t retired_histograms[kNumHistograms][kHistogramBuckets] = {};
};

Registry& GetRegistry() {
  static Registry registry;
  return registry;
}

void FoldInto(const Shard& shard, std::uint64_t* counters,
              std::uint64_t (*histograms)[kHistogramBuckets]) {
  for (int c = 0; c < kNumCounters; ++c) {
    counters[c] += shard.counters[c].load(std::memory_order_relaxed);
  }
  for (int h = 0; h < kNumHistograms; ++h) {
    for (int b = 0; b < kHistogramBuckets; ++b) {
      histograms[h][b] += shard.histograms[h][b].load(std::memory_order_relaxed);
    }
  }
}

void ZeroShard(Shard* shard) {
  for (int c = 0; c < kNumCounters; ++c) {
    shard->counters[c].store(0, std::memory_order_relaxed);
  }
  for (int h = 0; h < kNumHistograms; ++h) {
    for (int b = 0; b < kHistogramBuckets; ++b) {
      shard->histograms[h][b].store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace

ShardHolder::ShardHolder() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  shard.next = registry.head;
  shard.prev = nullptr;
  if (registry.head != nullptr) registry.head->prev = &shard;
  registry.head = &shard;
}

ShardHolder::~ShardHolder() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  FoldInto(shard, registry.retired_counters, registry.retired_histograms);
  if (shard.prev != nullptr) {
    shard.prev->next = shard.next;
  } else {
    registry.head = shard.next;
  }
  if (shard.next != nullptr) shard.next->prev = shard.prev;
}

}  // namespace detail

void SetCountersEnabled(bool enabled) {
  detail::g_counters_enabled.store(enabled, std::memory_order_relaxed);
}

CounterSnapshot SnapshotCounters() {
  CounterSnapshot snapshot;
  detail::Registry& registry = detail::GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (int c = 0; c < kNumCounters; ++c) {
    snapshot.counters[c] = registry.retired_counters[c];
  }
  for (int h = 0; h < kNumHistograms; ++h) {
    for (int b = 0; b < kHistogramBuckets; ++b) {
      snapshot.histograms[h][b] = registry.retired_histograms[h][b];
    }
  }
  for (detail::Shard* shard = registry.head; shard != nullptr; shard = shard->next) {
    detail::FoldInto(*shard, snapshot.counters, snapshot.histograms);
  }
  return snapshot;
}

void ResetCounters() {
  detail::Registry& registry = detail::GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (int c = 0; c < kNumCounters; ++c) registry.retired_counters[c] = 0;
  for (int h = 0; h < kNumHistograms; ++h) {
    for (int b = 0; b < kHistogramBuckets; ++b) {
      registry.retired_histograms[h][b] = 0;
    }
  }
  for (detail::Shard* shard = registry.head; shard != nullptr; shard = shard->next) {
    detail::ZeroShard(shard);
  }
}

#else  // compiled out

CounterSnapshot SnapshotCounters() { return CounterSnapshot{}; }
void ResetCounters() {}

#endif  // ROBUSTIFY_TELEMETRY_ENABLED

}  // namespace robustify::telemetry
