// Flight-recorder telemetry, part 1: counters and histograms.
//
// A process-wide registry of named uint64 counters and fixed-bucket (log2)
// histograms, sharded per thread so a hot-path increment is one relaxed
// store to the calling thread's own slot — no atomic RMW, no cache-line
// ping-pong, no allocation (shards are thread_local objects with static
// storage).  SnapshotCounters() merges the live shards with the folded
// totals of threads that have already exited (sweep worker pools are
// created and joined per ParallelFor, so most shards retire quickly).
//
// Determinism contract: telemetry observes, it never participates.  No
// counter or histogram touches the simulation RNG, reorders a fault
// stream, or feeds back into any result — sweep and campaign CSVs are
// byte-identical with counters disabled, enabled, and with full tracing on,
// at any thread count (tests/test_telemetry.cpp).  Counter totals are a
// pure function of the work performed, so they too are thread-count
// independent.
//
// Compile-out: building with -DROBUSTIFY_TELEMETRY=OFF (which defines
// ROBUSTIFY_NO_TELEMETRY) turns every call in this header into an empty
// inline — the zero-allocation and hot-path contracts hold trivially.
// ContextStats (the per-trial fault/flop accounting that feeds the CSVs)
// deliberately does NOT route through here: results must not depend on
// whether observability is compiled in.
#pragma once

#include <atomic>
#include <cstdint>

#if defined(ROBUSTIFY_NO_TELEMETRY)
#define ROBUSTIFY_TELEMETRY_ENABLED 0
#else
#define ROBUSTIFY_TELEMETRY_ENABLED 1
#endif

namespace robustify::telemetry {

// The counter catalog.  Fixed at compile time: stable ids keep the shard a
// plain array and an increment a single indexed add (a dynamic string
// registry would buy nothing here — every producer is in this repo).
enum class Counter : int {
  kInjectorScopes,       // WithFaultyFpu activations (≈ trials)
  kInjectorFaults,       // bits flipped / predicates inverted
  kInjectorFlops,        // FP ops routed through the injector
  kGapDrawsTable,        // gap samples served by the Walker alias table
  kGapDrawsInvCdf,       // gap samples served by the inverse-CDF form
  kGapDrawsFused,        // gap samples carved from a fused gap+bit word
  kSgdSolves,            // MinimizeSgd calls
  kSgdIterations,        // descent iterations across all solves
  kSgdPhases,            // phase-schedule segments entered
  kSgdAccepts,           // AS accept decisions
  kSgdRejects,           // AS reject decisions
  kSgdTmrVotes,          // TMR gradient vote rounds (3 evaluations each)
  kCglsSolves,           // SolveCglsInto calls
  kCglsIterations,       // CG iterations across all solves
  kCglsRestarts,         // residual-recompute restarts (scheduled + scrub)
  kCampaignCells,        // campaign cells executed
  kCampaignCellsSettled, // of those, stopped by the CI rule within budget
  kCampaignTrials,       // accepted campaign trials
  kCampaignTrialsResumed,// of those, replayed from a checkpoint journal
  kCheckpointFlushes,    // journal batch appends (one locked write each)
  kCheckpointRecords,    // trial records journaled
  kInjectorFaultsArith,  // corrupted arithmetic results (per op class)
  kInjectorFaultsCompare,// inverted comparison predicates
  kInjectorFaultsMemory, // corrupted memory loads (kOpClassMemory models)
  kInjectorWindows,      // stuck/intermittent windows opened
  kTrialsDiverged,       // trials ended by the non-finite bailout guard
  kTrialsBudgetExhausted,// trials ended by a flop/iteration budget cap
  kStoreHits,            // queries answered from a cached cell tally
  kStoreMisses,          // queries whose cell missed the precision request
  kStoreFreshTrials,     // trials executed to answer store misses
  kStoreIngestedCells,   // store cells created or extended by an ingest
  kCount
};

// Histograms bucket by log2: bucket 0 holds value 0, bucket b >= 1 holds
// values in [2^(b-1), 2^b).  64-bit values need 65 buckets.
enum class Histogram : int {
  kInjectorCleanRun,         // sampled clean-run (gap) lengths, in ops
  kCampaignTrialsToStop,     // accepted trials per campaign cell
  kCampaignStopHalfWidthPpm, // Wilson half-width at stop, parts-per-million
  // Per-query wall latency, microseconds, tagged by answer source.  These
  // hold *timing* values, so unlike every other histogram they are not a
  // pure function of the work — exports carry them, exact-diff gates and
  // the thread-invariance test do not run queries.
  kQueryLatencyCacheUs,      // answered from a cached cell tally
  kQueryLatencyFreshUs,      // answered by running fresh trials
  kQueryLatencySurrogateUs,  // answered from the logistic cliff surrogate
  kCount
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kCount);
inline constexpr int kNumHistograms = static_cast<int>(Histogram::kCount);
inline constexpr int kHistogramBuckets = 65;

// Dotted metric name for exports ("injector.faults", ...).
const char* CounterName(Counter c);
const char* HistogramName(Histogram h);

// Lower bound of a histogram bucket (0, 1, 2, 4, 8, ...).
inline std::uint64_t HistogramBucketLowerBound(int bucket) {
  return bucket == 0 ? 0 : 1ull << (bucket - 1);
}

// Interpolated quantile over one histogram's kHistogramBuckets counts:
// ranks interpolate linearly inside a bucket's [2^(b-1), 2^b) value range
// (bucket 0 is exactly 0).  q clamps to [0, 1]; an empty histogram reads
// 0.  Feeds the --metrics p50/p90/p99 fields and the serve-loop stats.
double HistogramQuantile(const std::uint64_t* buckets, double q);

#if ROBUSTIFY_TELEMETRY_ENABLED

namespace detail {

// One thread's slice of every counter and histogram.  The slots are
// relaxed atomics so the owning thread's plain-speed increments and a
// concurrent SnapshotCounters() read are race-free; only the owner writes.
struct Shard {
  std::atomic<std::uint64_t> counters[kNumCounters];
  std::atomic<std::uint64_t> histograms[kNumHistograms][kHistogramBuckets];
  Shard* next = nullptr;  // intrusive registry list: no allocation, ever
  Shard* prev = nullptr;
};

// Registers with the process registry on construction (first touch on the
// thread) and folds its totals into the retired accumulator on thread exit.
struct ShardHolder {
  Shard shard{};
  ShardHolder();
  ~ShardHolder();
};

inline thread_local ShardHolder tls_shard;

// Master switch for counter/histogram collection.  On by default when
// compiled in; bench_telemetry_overhead toggles it to measure the cost of
// "on" against "off" inside one binary.  Relaxed: flipped only between
// runs, never mid-trial.
extern std::atomic<bool> g_counters_enabled;

inline std::uint64_t Log2Bucket(std::uint64_t value) {
#if defined(__GNUC__) || defined(__clang__)
  return value == 0 ? 0 : 64 - static_cast<unsigned>(__builtin_clzll(value));
#else
  int b = 0;
  while (value != 0) {
    ++b;
    value >>= 1;
  }
  return static_cast<std::uint64_t>(b);
#endif
}

}  // namespace detail

// Single-owner increment: load + store on this thread's slot (compiles to
// one add), never an atomic RMW.
inline void Count(Counter c, std::uint64_t n = 1) {
  if (!detail::g_counters_enabled.load(std::memory_order_relaxed)) return;
  std::atomic<std::uint64_t>& slot =
      detail::tls_shard.shard.counters[static_cast<int>(c)];
  slot.store(slot.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
}

inline void Observe(Histogram h, std::uint64_t value) {
  if (!detail::g_counters_enabled.load(std::memory_order_relaxed)) return;
  std::atomic<std::uint64_t>& slot =
      detail::tls_shard.shard
          .histograms[static_cast<int>(h)][detail::Log2Bucket(value)];
  slot.store(slot.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

inline bool CountersEnabled() {
  return detail::g_counters_enabled.load(std::memory_order_relaxed);
}

// Toggle collection at a run boundary (overhead A/B measurement; tests).
void SetCountersEnabled(bool enabled);

#else  // compiled out: every call is a no-op the optimizer deletes

inline void Count(Counter, std::uint64_t = 1) {}
inline void Observe(Histogram, std::uint64_t) {}
inline bool CountersEnabled() { return false; }
inline void SetCountersEnabled(bool) {}

#endif  // ROBUSTIFY_TELEMETRY_ENABLED

// Merged view of every shard, live and retired.  Call when the producers
// of interest are quiescent (worker pools joined) for exact totals; a
// mid-flight snapshot is a consistent-enough progress reading.  Compiled
// out, it is all zeros.
struct CounterSnapshot {
  std::uint64_t counters[kNumCounters] = {};
  std::uint64_t histograms[kNumHistograms][kHistogramBuckets] = {};

  std::uint64_t value(Counter c) const { return counters[static_cast<int>(c)]; }
  std::uint64_t histogram_total(Histogram h) const {
    std::uint64_t total = 0;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      total += histograms[static_cast<int>(h)][b];
    }
    return total;
  }
};

CounterSnapshot SnapshotCounters();

// Zeroes every live shard and the retired totals.  Test/bench support
// only; callers must be quiescent (no concurrent producers).
void ResetCounters();

}  // namespace robustify::telemetry
