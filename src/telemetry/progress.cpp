#include "telemetry/progress.h"

#if ROBUSTIFY_TELEMETRY_ENABLED

#include <chrono>
#include <cstdio>
#include <mutex>

namespace robustify::telemetry {

namespace detail {
std::atomic<bool> g_progress_enabled{false};
}

namespace {

using Clock = std::chrono::steady_clock;

constexpr double kHeartbeatSeconds = 0.7;
// EWMA weight of the newest per-unit interval: heavy enough to adapt as a
// campaign moves from cheap saturated cells to expensive transition cells,
// light enough not to whipsaw on a single outlier.
constexpr double kEwmaAlpha = 0.2;

struct ProgressState {
  std::mutex mu;
  const char* label = "run";
  long total_units = 0;
  long done_units = 0;
  long trials = 0;
  Clock::time_point started;
  Clock::time_point last_unit;
  Clock::time_point last_print;
  double ewma_unit_seconds = 0.0;
  bool active = false;
};

ProgressState& GetState() {
  static ProgressState state;
  return state;
}

void PrintLine(const ProgressState& s, bool final_line) {
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - s.started).count();
  const double rate = elapsed > 0.0 ? static_cast<double>(s.trials) / elapsed : 0.0;
  if (final_line) {
    std::fprintf(stderr,
                 "[progress] %s: done, %ld/%ld units, %ld trials in %.1fs "
                 "(%.1f trials/s)\n",
                 s.label, s.done_units, s.total_units, s.trials, elapsed, rate);
    return;
  }
  const long remaining = s.total_units - s.done_units;
  const double eta = s.ewma_unit_seconds * static_cast<double>(remaining);
  std::fprintf(stderr,
               "[progress] %s: %ld/%ld units, %ld trials, %.1f trials/s, "
               "ETA %.1fs\n",
               s.label, s.done_units, s.total_units, s.trials, rate, eta);
}

}  // namespace

void EnableProgress() {
  detail::g_progress_enabled.store(true, std::memory_order_relaxed);
}

void ProgressBegin(const char* label, long total_units) {
  if (!ProgressEnabled()) return;
  ProgressState& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  s.label = label;
  s.total_units = total_units;
  s.done_units = 0;
  s.trials = 0;
  s.started = Clock::now();
  s.last_unit = s.started;
  s.last_print = s.started;
  s.ewma_unit_seconds = 0.0;
  s.active = true;
}

void ProgressUnitDone(long trials) {
  if (!ProgressEnabled()) return;
  ProgressState& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.active) return;
  const Clock::time_point now = Clock::now();
  const double interval = std::chrono::duration<double>(now - s.last_unit).count();
  s.last_unit = now;
  ++s.done_units;
  s.trials += trials;
  s.ewma_unit_seconds = s.ewma_unit_seconds == 0.0
                            ? interval
                            : kEwmaAlpha * interval +
                                  (1.0 - kEwmaAlpha) * s.ewma_unit_seconds;
  if (std::chrono::duration<double>(now - s.last_print).count() >=
      kHeartbeatSeconds) {
    s.last_print = now;
    PrintLine(s, /*final_line=*/false);
  }
}

void ProgressEnd() {
  if (!ProgressEnabled()) return;
  ProgressState& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.active) return;
  s.active = false;
  PrintLine(s, /*final_line=*/true);
}

}  // namespace robustify::telemetry

#endif  // ROBUSTIFY_TELEMETRY_ENABLED
