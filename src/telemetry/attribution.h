// Flight-recorder telemetry, part 3: the wall-time attribution ledger.
//
// Answers "where does the wall time go?" without paying for the Chrome
// trace ring: every SpanScope, when attribution is enabled, pushes a frame
// on its thread's fixed-depth stack and, on exit, folds the span's duration
// into that thread's per-category totals.  Two numbers per category:
//
//   total  wall time with the category anywhere on the stack (outermost
//          occurrence only, so recursion never double-counts), and
//   self   total minus the time spent in child spans — the category's own
//          machinery.
//
// By construction self + child == total per (thread, category), and the
// sum of a span's children's totals can never exceed its own total
// (tests/test_attribution.cpp holds both).  A campaign run therefore
// decomposes into campaign self (scheduling + serial reduction), pool.wait
// (the main thread parked on the worker pool), cell/trial self (injector +
// controller machinery), solve.* self (kernel loops), phase, and
// checkpoint.flush — per thread, with exited workers keeping their own
// ledgers.
//
// Determinism contract: identical to the rest of the telemetry layer — the
// ledger observes steady-clock timestamps and touches nothing the
// simulation reads, so CSVs are byte-identical with attribution off/on at
// any thread count.  Off (the default) costs one relaxed bool load per
// span; category lookup (strcmp over a dozen literals) happens only when
// enabled.  Compiled out (-DROBUSTIFY_TELEMETRY=OFF) every call here is an
// empty inline.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace robustify::telemetry {

// Fixed category catalog: one entry per span name emitted anywhere in the
// repo (trace.h documents the hierarchy), plus kOther so a future span name
// degrades to an aggregated bucket instead of vanishing.
enum class AttrCategory : int {
  kCampaign,
  kCell,
  kTrial,
  kSolveSgd,
  kSolveCgls,
  kSolveCgne,
  kPhase,
  kCheckpointFlush,
  kSweep,
  kQuery,
  kStats,
  kReduce,
  kPoolWait,
  kCalibrate,
  kOther,
  kCount
};

inline constexpr int kNumAttrCategories = static_cast<int>(AttrCategory::kCount);

// The span name the category folds ("campaign", "solve.sgd", ...).
const char* AttrCategoryName(AttrCategory c);

// Per-(thread, category) accumulated wall time, in steady-clock ns.
struct AttrTotals {
  std::uint64_t count = 0;     // outermost span entries
  std::uint64_t total_ns = 0;  // wall time with the category on the stack
  std::uint64_t self_ns = 0;   // total minus time inside child spans
  std::uint64_t child_ns() const { return total_ns - self_ns; }
};

struct AttributionSnapshot {
  struct ThreadLedger {
    int tid = 0;  // stable per-thread id, 1-based in registration order
    AttrTotals totals[kNumAttrCategories];
  };
  std::vector<ThreadLedger> threads;        // live + exited, by tid
  AttrTotals merged[kNumAttrCategories];    // summed across threads

  const AttrTotals& total(AttrCategory c) const {
    return merged[static_cast<int>(c)];
  }
};

#if ROBUSTIFY_TELEMETRY_ENABLED

namespace detail {

extern std::atomic<bool> g_attribution;

// Out of line: resolves the category and pushes/pops the thread's frame
// stack.  Called from SpanScope only when attribution is enabled.
void AttrEnter(const char* name);
void AttrExit();

}  // namespace detail

// True when the attribution ledger is collecting (--attr or tests).
inline bool AttributionActive() {
  return detail::g_attribution.load(std::memory_order_relaxed);
}

// Toggle at a run boundary (like SetCountersEnabled); never mid-span.
void SetAttributionEnabled(bool enabled);

#else  // compiled out

inline bool AttributionActive() { return false; }
inline void SetAttributionEnabled(bool) {}

#endif  // ROBUSTIFY_TELEMETRY_ENABLED

// Merged view of every per-thread ledger, live and exited, in stable tid
// order.  Call when producers are quiescent (pools joined) for exact
// totals.  Compiled out (or never enabled): no threads, all zeros.
AttributionSnapshot SnapshotAttribution();

// Zeroes every ledger, live and exited.  Callers must be quiescent.
void ResetAttribution();

// Human-readable self/total table (one row per thread x active category,
// then the merged totals).  WriteAttributionReport(path) returns false
// when the report cannot be written or telemetry is compiled out.
void FormatAttributionReport(const AttributionSnapshot& snapshot,
                             std::ostream& out);
bool WriteAttributionReport(const std::string& path);

}  // namespace robustify::telemetry
