// --metrics JSON export: the merged counter/histogram snapshot plus
// provenance and the resolved runtime environment, as one queryable file.
//
// Shape:
//   {
//     "bench": "...", "threads": N,
//     "env": {"injector_strategy": "...", "engine": "...", "rng": "..."},
//     "provenance": {"git_sha": "...", "compiler": "...", ...},
//     "telemetry": "enabled" | "compiled-out",
//     "counters": {"injector.faults": 123, ...},          // nonzero only
//     "histograms": {"injector.clean_run":
//         {"total": N, "buckets": [[lower_bound, count], ...]}}
//   }
#pragma once

#include <string>

#include "telemetry/telemetry.h"

namespace robustify::telemetry {

struct MetricsContext {
  std::string bench;
  int threads = 0;
  std::string injector_strategy;  // resolved labels, as the perf report uses
  std::string engine;
  std::string rng;  // empty = unset (omitted)
};

// Snapshots the registry and writes the JSON.  Throws std::runtime_error
// when the file cannot be written.  With telemetry compiled out the file is
// still written (provenance stays useful) with empty counter maps and
// "telemetry": "compiled-out".
void WriteMetricsJson(const std::string& path, const MetricsContext& context);

}  // namespace robustify::telemetry
