// Build provenance: who built this binary, from what, and how.
//
// Every published number (perf baseline, counter snapshot, campaign CSV)
// should be attributable to the exact source revision and compiler
// configuration that produced it.  The CMake configure step captures the
// git SHA, dirty state, compiler id/version, and the effective CXX flags
// into a generated provenance.cpp (src/telemetry/provenance.cpp.in), and
// perf reports plus --metrics JSON embed the block verbatim.  Building
// outside git yields "unknown" fields rather than a configure failure.
#pragma once

namespace robustify::telemetry {

struct BuildProvenance {
  const char* git_sha;     // full commit hash, or "unknown"
  const char* git_status;  // "clean", "dirty", or "unknown"
  const char* compiler;    // e.g. "GNU 12.2.0"
  const char* cxx_flags;   // global flags + build-type flags, as configured
  const char* build_type;  // CMAKE_BUILD_TYPE
};

// The values baked in at configure time (always available; independent of
// the ROBUSTIFY_TELEMETRY compile gate).
const BuildProvenance& Provenance();

}  // namespace robustify::telemetry
