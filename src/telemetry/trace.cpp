#include "telemetry/trace.h"

#if ROBUSTIFY_TELEMETRY_ENABLED

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

namespace robustify::telemetry {

namespace detail {

std::atomic<bool> g_tracing{false};

namespace {

// 32768 events * 24 bytes = 768 KiB per traced thread; old events are
// overwritten once the window fills (flight-recorder semantics).
constexpr std::uint32_t kRingCapacity = 1u << 15;

// Retired rings (from exited pool workers) are bounded globally so a long
// test run under ROBUSTIFY_TRACE=1, which creates thousands of short-lived
// workers, cannot accumulate unbounded memory.
constexpr std::uint64_t kMaxRetiredEvents = 1u << 18;

struct TraceEvent {
  const char* name;
  std::int64_t ts_ns;  // steady-clock ns since the trace clock anchor
  char phase;          // 'B', 'E', or 'i'
};

struct TraceRing {
  explicit TraceRing(std::uint32_t tid_)
      : tid(tid_), events(new TraceEvent[kRingCapacity]) {}

  void Append(const char* name, char phase, std::int64_t ts_ns) {
    events[head] = TraceEvent{name, ts_ns, phase};
    head = (head + 1) & (kRingCapacity - 1);
    if (count < kRingCapacity) {
      ++count;
    } else {
      ++dropped;
    }
  }

  std::uint32_t tid;
  std::uint32_t head = 0;   // next write slot
  std::uint32_t count = 0;  // valid events (<= capacity)
  std::uint64_t dropped = 0;
  std::unique_ptr<TraceEvent[]> events;
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<TraceRing*> live;
  std::vector<std::unique_ptr<TraceRing>> retired;
  std::uint64_t retired_events = 0;
  std::uint32_t next_tid = 1;
};

TraceRegistry& GetTraceRegistry() {
  static TraceRegistry registry;
  return registry;
}

// One clock anchor per process: timestamps are positive and shared across
// threads (steady_clock, so per-tid monotonicity is structural).
std::int64_t NowNs() {
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - anchor)
      .count();
}

// Owns the thread's ring while the thread lives; hands it to the retired
// list on exit so its events survive pool teardown.
struct RingHolder {
  TraceRing* ring = nullptr;
  ~RingHolder() {
    if (ring == nullptr) return;
    TraceRegistry& registry = GetTraceRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    for (std::size_t i = 0; i < registry.live.size(); ++i) {
      if (registry.live[i] == ring) {
        registry.live.erase(registry.live.begin() +
                            static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    registry.retired_events += ring->count;
    registry.retired.emplace_back(ring);
    // Drop the oldest retired rings once over budget: flight recorder.
    while (registry.retired_events > kMaxRetiredEvents &&
           registry.retired.size() > 1) {
      registry.retired_events -= registry.retired.front()->count;
      registry.retired.erase(registry.retired.begin());
    }
  }
};

thread_local RingHolder tls_ring;

// Honor ROBUSTIFY_TRACE=1 without any call-site wiring: force-enables
// collection for the whole process (the CI telemetry leg runs the entire
// test suite this way).
struct EnvTraceInit {
  EnvTraceInit() {
    const char* env = std::getenv("ROBUSTIFY_TRACE");
    if (env != nullptr && env[0] != '\0' && env[0] != '0') {
      g_tracing.store(true, std::memory_order_relaxed);
    }
  }
};
EnvTraceInit env_trace_init;

}  // namespace

void EmitEvent(const char* name, char phase) {
  TraceRing* ring = tls_ring.ring;
  if (ring == nullptr) {
    TraceRegistry& registry = GetTraceRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    ring = new TraceRing(registry.next_tid++);
    registry.live.push_back(ring);
    tls_ring.ring = ring;
  }
  ring->Append(name, phase, NowNs());
}

}  // namespace detail

void StartTracing() {
  detail::g_tracing.store(true, std::memory_order_relaxed);
}

void StopTracing() {
  detail::g_tracing.store(false, std::memory_order_relaxed);
}

bool WriteTrace(const std::string& path) {
  StopTracing();
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;

  detail::TraceRegistry& registry = detail::GetTraceRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);

  std::fputs("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n", out);
  std::fputs(
      "{\"name\": \"process_name\", \"ph\": \"M\", \"ts\": 0, \"pid\": 1, "
      "\"tid\": 0, \"args\": {\"name\": \"robustify\"}}",
      out);

  // Per-ring repair pass for what ring overwrite can tear: an orphan E
  // whose B was overwritten is dropped, and any span still open at the end
  // is closed at the ring's final timestamp — so the output always carries
  // balanced B/E pairs per tid, which tools/trace_validate.py enforces.
  std::vector<const char*> stack;
  const auto emit_ring = [&](const detail::TraceRing& ring) {
    const std::uint32_t capacity_mask = detail::kRingCapacity - 1;
    const std::uint32_t oldest = ring.count < detail::kRingCapacity ? 0 : ring.head;
    stack.clear();
    std::int64_t last_ts = 0;
    for (std::uint32_t i = 0; i < ring.count; ++i) {
      const auto& e = ring.events[(oldest + i) & capacity_mask];
      last_ts = e.ts_ns;
      if (e.phase == 'E') {
        if (stack.empty()) continue;  // its B was overwritten: drop
        stack.pop_back();
      } else if (e.phase == 'B') {
        stack.push_back(e.name);
      }
      const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
      std::fprintf(out,
                   ",\n{\"name\": \"%s\", \"ph\": \"%c\", \"ts\": %.3f, "
                   "\"pid\": 1, \"tid\": %u%s}",
                   e.name, e.phase, ts_us, ring.tid,
                   e.phase == 'i' ? ", \"s\": \"t\"" : "");
    }
    // Close spans the ring saw begin but never end (an unfinished run or a
    // SpanScope still alive on another frame): balance is a validator
    // invariant, truncation is not.
    const double close_us = static_cast<double>(last_ts) / 1000.0;
    while (!stack.empty()) {
      std::fprintf(out,
                   ",\n{\"name\": \"%s\", \"ph\": \"E\", \"ts\": %.3f, "
                   "\"pid\": 1, \"tid\": %u}",
                   stack.back(), close_us, ring.tid);
      stack.pop_back();
    }
    if (ring.dropped > 0) {
      std::fprintf(out,
                   ",\n{\"name\": \"trace.dropped\", \"ph\": \"M\", \"ts\": 0, "
                   "\"pid\": 1, \"tid\": %u, \"args\": {\"events\": %llu}}",
                   ring.tid, static_cast<unsigned long long>(ring.dropped));
    }
  };

  for (const std::unique_ptr<detail::TraceRing>& ring : registry.retired) {
    emit_ring(*ring);
  }
  for (const detail::TraceRing* ring : registry.live) {
    emit_ring(*ring);
  }

  std::fputs("\n]}\n", out);
  const bool ok = std::fclose(out) == 0;
  return ok;
}

}  // namespace robustify::telemetry

#else  // compiled out

namespace robustify::telemetry {

bool WriteTrace(const std::string&) { return false; }

}  // namespace robustify::telemetry

#endif  // ROBUSTIFY_TELEMETRY_ENABLED
