// Flight-recorder telemetry, part 2: trace spans.
//
// A per-thread ring buffer of begin/end/instant events that WriteTrace()
// serializes as Chrome trace-event JSON — loadable in chrome://tracing and
// Perfetto.  The span hierarchy mirrors the execution layers:
//
//   campaign            one RunCampaign invocation
//     cell              one (series, fault-rate) adaptive cell
//       trial           one RunSingleTrial (also under plain sweeps)
//         solve.sgd     one MinimizeSgd descent
//           phase       one phase-schedule segment
//         solve.cgls    one restarted-CGLS solve
//       checkpoint.flush one journal batch append
//   sweep               one RunFaultRateSweep grid
//
// plus sampled "fault" instant events: every Nth injected fault per thread
// (a deterministic modulo counter — telemetry consumes NO simulation RNG,
// so the fault stream is identical with tracing on or off).
//
// Collection is off unless StartTracing() runs (the --trace flags) or
// ROBUSTIFY_TRACE=1 is set; off costs one relaxed bool load per span.
// Rings are fixed-capacity and overwrite their oldest events (flight
// recorder: the most recent window survives, a run that outlives the ring
// loses its beginning, never its end).  Events carry only a static string
// pointer and a steady-clock timestamp — appending never allocates, so the
// zero-allocation hot-path tests hold even with tracing forced on.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "telemetry/attribution.h"
#include "telemetry/telemetry.h"

namespace robustify::telemetry {

#if ROBUSTIFY_TELEMETRY_ENABLED

namespace detail {

extern std::atomic<bool> g_tracing;

// Out of line: looks up (or creates) the thread's ring and appends.
void EmitEvent(const char* name, char phase);

// Every kFaultSampleEvery-th injected fault on a thread becomes an instant
// event; the counter is thread-local and deterministic.
inline constexpr std::uint64_t kFaultSampleEvery = 64;
inline thread_local std::uint64_t tls_fault_modulus = 0;

}  // namespace detail

// True when span collection is active (ROBUSTIFY_TRACE=1 or StartTracing).
inline bool TracingActive() {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

void StartTracing();
void StopTracing();

// One sampled instant event per kFaultSampleEvery injected faults.  Called
// from the injector's (already cold) fault path.
inline void FaultInstant() {
  if (!TracingActive()) return;
  if (++detail::tls_fault_modulus % detail::kFaultSampleEvery != 0) return;
  detail::EmitEvent("fault", 'i');
}

inline void Instant(const char* name) {
  if (TracingActive()) detail::EmitEvent(name, 'i');
}

// RAII span: emits a B event now and the matching E on destruction.  The
// name must be a string literal (the ring stores the pointer).  The same
// scope feeds the attribution ledger (attribution.h) when --attr enabled
// it — with or without the trace ring; both off costs two relaxed loads.
class SpanScope {
 public:
  explicit SpanScope(const char* name) {
    const bool traced = TracingActive();
    const bool attributed = AttributionActive();
    if (!(traced || attributed)) return;
    name_ = name;
    traced_ = traced;
    attributed_ = attributed;
    if (traced) detail::EmitEvent(name, 'B');
    if (attributed) detail::AttrEnter(name);
  }
  ~SpanScope() {
    if (traced_) detail::EmitEvent(name_, 'E');
    if (attributed_) detail::AttrExit();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_ = nullptr;
  bool traced_ = false;
  bool attributed_ = false;
};

#else  // compiled out

inline bool TracingActive() { return false; }
inline void StartTracing() {}
inline void StopTracing() {}
inline void FaultInstant() {}
inline void Instant(const char*) {}
class SpanScope {
 public:
  explicit SpanScope(const char*) {}
};

#endif  // ROBUSTIFY_TELEMETRY_ENABLED

// Serializes every ring (live and retired) as Chrome trace-event JSON and
// stops collection.  Call when worker pools are joined.  The writer repairs
// ring-overwrite artifacts so the output always has balanced B/E pairs and
// per-tid monotonic timestamps (tools/trace_validate.py enforces this).
// Returns false (without throwing) when tracing is compiled out or the file
// cannot be written.
bool WriteTrace(const std::string& path);

}  // namespace robustify::telemetry
