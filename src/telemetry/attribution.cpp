#include "telemetry/attribution.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <ostream>

namespace robustify::telemetry {

namespace {

constexpr const char* kAttrCategoryNames[kNumAttrCategories] = {
    "campaign",
    "cell",
    "trial",
    "solve.sgd",
    "solve.cgls",
    "solve.cgne",
    "phase",
    "checkpoint.flush",
    "sweep",
    "query",
    "stats",
    "reduce",
    "pool.wait",
    "calibrate",
    "other",
};

}  // namespace

const char* AttrCategoryName(AttrCategory c) {
  const int i = static_cast<int>(c);
  return i >= 0 && i < kNumAttrCategories ? kAttrCategoryNames[i] : "?";
}

#if ROBUSTIFY_TELEMETRY_ENABLED

namespace detail {

std::atomic<bool> g_attribution{false};

namespace {

inline std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Span nesting in this repo is ~6 deep (campaign > cell > trial > solve >
// phase); 64 leaves room for future layers.  Deeper entries are dropped —
// the matching exits unwind the overflow counter, never the wrong frame.
inline constexpr int kMaxDepth = 64;

struct Frame {
  int category = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t child_ns = 0;  // summed durations of directly nested spans
};

// One thread's ledger.  Totals are relaxed atomics (single writer: the
// owning thread; concurrent readers: SnapshotAttribution) exactly like the
// counter shards; the frame stack is owner-only plain data.
struct Ledger {
  std::atomic<std::uint64_t> count[kNumAttrCategories];
  std::atomic<std::uint64_t> total_ns[kNumAttrCategories];
  std::atomic<std::uint64_t> self_ns[kNumAttrCategories];
  Frame stack[kMaxDepth];
  int depth = 0;
  int overflow = 0;                      // enters dropped past kMaxDepth
  int category_depth[kNumAttrCategories] = {};  // recursion guard for total
  int tid = 0;
  Ledger* next = nullptr;
  Ledger* prev = nullptr;
};

struct RetiredLedger {
  int tid = 0;
  AttrTotals totals[kNumAttrCategories];
};

struct Registry {
  std::mutex mu;
  Ledger* head = nullptr;  // live ledgers, intrusively linked
  int next_tid = 1;        // stable ids in registration order
  std::vector<RetiredLedger> retired;
};

Registry& GetRegistry() {
  static Registry registry;
  return registry;
}

void FoldInto(const Ledger& ledger, AttrTotals* totals) {
  for (int c = 0; c < kNumAttrCategories; ++c) {
    totals[c].count += ledger.count[c].load(std::memory_order_relaxed);
    totals[c].total_ns += ledger.total_ns[c].load(std::memory_order_relaxed);
    totals[c].self_ns += ledger.self_ns[c].load(std::memory_order_relaxed);
  }
}

void ZeroLedger(Ledger* ledger) {
  for (int c = 0; c < kNumAttrCategories; ++c) {
    ledger->count[c].store(0, std::memory_order_relaxed);
    ledger->total_ns[c].store(0, std::memory_order_relaxed);
    ledger->self_ns[c].store(0, std::memory_order_relaxed);
  }
}

// Registers on first span entry (threads that never span never appear) and
// folds into the retired list on thread exit, keeping the tid so exited
// workers still report individually.
struct LedgerHolder {
  Ledger ledger{};
  LedgerHolder() {
    ZeroLedger(&ledger);
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    ledger.tid = registry.next_tid++;
    ledger.next = registry.head;
    if (registry.head != nullptr) registry.head->prev = &ledger;
    registry.head = &ledger;
  }
  ~LedgerHolder() {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    RetiredLedger retired;
    retired.tid = ledger.tid;
    FoldInto(ledger, retired.totals);
    registry.retired.push_back(retired);
    if (ledger.prev != nullptr) {
      ledger.prev->next = ledger.next;
    } else {
      registry.head = ledger.next;
    }
    if (ledger.next != nullptr) ledger.next->prev = ledger.prev;
  }
};

thread_local LedgerHolder tls_ledger;

int ResolveCategory(const char* name) {
  for (int c = 0; c < kNumAttrCategories; ++c) {
    if (std::strcmp(name, kAttrCategoryNames[c]) == 0) return c;
  }
  return static_cast<int>(AttrCategory::kOther);
}

}  // namespace

void AttrEnter(const char* name) {
  Ledger& ledger = tls_ledger.ledger;
  if (ledger.depth >= kMaxDepth) {
    ++ledger.overflow;
    return;
  }
  Frame& frame = ledger.stack[ledger.depth++];
  frame.category = ResolveCategory(name);
  frame.child_ns = 0;
  frame.start_ns = NowNs();
  ++ledger.category_depth[frame.category];
}

void AttrExit() {
  Ledger& ledger = tls_ledger.ledger;
  if (ledger.overflow > 0) {
    --ledger.overflow;
    return;
  }
  if (ledger.depth == 0) return;  // enabled mid-span: exit without an enter
  const Frame& frame = ledger.stack[--ledger.depth];
  const std::uint64_t now = NowNs();
  const std::uint64_t dur = now > frame.start_ns ? now - frame.start_ns : 0;
  const std::uint64_t self = dur > frame.child_ns ? dur - frame.child_ns : 0;
  const int c = frame.category;
  ledger.self_ns[c].store(
      ledger.self_ns[c].load(std::memory_order_relaxed) + self,
      std::memory_order_relaxed);
  // Only the outermost occurrence contributes to total (and count):
  // recursive spans would otherwise multiply their shared wall time.
  if (--ledger.category_depth[c] == 0) {
    ledger.total_ns[c].store(
        ledger.total_ns[c].load(std::memory_order_relaxed) + dur,
        std::memory_order_relaxed);
    ledger.count[c].store(ledger.count[c].load(std::memory_order_relaxed) + 1,
                          std::memory_order_relaxed);
  }
  if (ledger.depth > 0) {
    ledger.stack[ledger.depth - 1].child_ns += dur;
  }
}

}  // namespace detail

void SetAttributionEnabled(bool enabled) {
  detail::g_attribution.store(enabled, std::memory_order_relaxed);
}

AttributionSnapshot SnapshotAttribution() {
  AttributionSnapshot snapshot;
  detail::Registry& registry = detail::GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const detail::RetiredLedger& retired : registry.retired) {
    AttributionSnapshot::ThreadLedger thread;
    thread.tid = retired.tid;
    for (int c = 0; c < kNumAttrCategories; ++c) {
      thread.totals[c] = retired.totals[c];
    }
    snapshot.threads.push_back(thread);
  }
  for (detail::Ledger* ledger = registry.head; ledger != nullptr;
       ledger = ledger->next) {
    AttributionSnapshot::ThreadLedger thread;
    thread.tid = ledger->tid;
    detail::FoldInto(*ledger, thread.totals);
    snapshot.threads.push_back(thread);
  }
  // Drop all-zero ledgers (threads that spanned only while attribution was
  // off) and present the rest in stable tid order.
  snapshot.threads.erase(
      std::remove_if(snapshot.threads.begin(), snapshot.threads.end(),
                     [](const AttributionSnapshot::ThreadLedger& t) {
                       for (int c = 0; c < kNumAttrCategories; ++c) {
                         if (t.totals[c].count != 0 ||
                             t.totals[c].total_ns != 0 ||
                             t.totals[c].self_ns != 0) {
                           return false;
                         }
                       }
                       return true;
                     }),
      snapshot.threads.end());
  std::sort(snapshot.threads.begin(), snapshot.threads.end(),
            [](const AttributionSnapshot::ThreadLedger& a,
               const AttributionSnapshot::ThreadLedger& b) {
              return a.tid < b.tid;
            });
  for (const AttributionSnapshot::ThreadLedger& thread : snapshot.threads) {
    for (int c = 0; c < kNumAttrCategories; ++c) {
      snapshot.merged[c].count += thread.totals[c].count;
      snapshot.merged[c].total_ns += thread.totals[c].total_ns;
      snapshot.merged[c].self_ns += thread.totals[c].self_ns;
    }
  }
  return snapshot;
}

void ResetAttribution() {
  detail::Registry& registry = detail::GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.retired.clear();
  for (detail::Ledger* ledger = registry.head; ledger != nullptr;
       ledger = ledger->next) {
    detail::ZeroLedger(ledger);
  }
}

#else  // compiled out

AttributionSnapshot SnapshotAttribution() { return AttributionSnapshot{}; }
void ResetAttribution() {}

#endif  // ROBUSTIFY_TELEMETRY_ENABLED

void FormatAttributionReport(const AttributionSnapshot& snapshot,
                             std::ostream& out) {
  out << "# wall-time attribution: self = total - time in child spans\n"
      << "# thread    category             count       total_s        self_s\n";
  char line[160];
  const auto row = [&](const char* thread_label, const AttrTotals& t, int c) {
    if (t.count == 0 && t.total_ns == 0 && t.self_ns == 0) return;
    std::snprintf(line, sizeof(line), "%-10s  %-18s %7llu  %12.6f  %12.6f\n",
                  thread_label, AttrCategoryName(static_cast<AttrCategory>(c)),
                  static_cast<unsigned long long>(t.count),
                  static_cast<double>(t.total_ns) * 1e-9,
                  static_cast<double>(t.self_ns) * 1e-9);
    out << line;
  };
  for (const AttributionSnapshot::ThreadLedger& thread : snapshot.threads) {
    char label[16];
    std::snprintf(label, sizeof(label), "t%d", thread.tid);
    for (int c = 0; c < kNumAttrCategories; ++c) row(label, thread.totals[c], c);
  }
  for (int c = 0; c < kNumAttrCategories; ++c) {
    row("merged", snapshot.merged[c], c);
  }
}

bool WriteAttributionReport(const std::string& path) {
#if ROBUSTIFY_TELEMETRY_ENABLED
  std::ofstream out(path);
  if (!out) return false;
  FormatAttributionReport(SnapshotAttribution(), out);
  return out.good();
#else
  (void)path;
  return false;
#endif
}

}  // namespace robustify::telemetry
