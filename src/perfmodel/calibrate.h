// Machine calibration: what does this host actually allow?
//
// Three microbenchmark probes measure the ceilings the roofline model
// (perfmodel/roofline.h) places kernels against:
//
//   scalar peak   interleaved independent mul+add chains, vectorization
//                 disabled — the per-scalar engine's compute ceiling;
//   vector peak   the same arithmetic auto-vectorized (dual interleaved
//                 Horner chains per element, L1-resident) — the block
//                 engine's compute ceiling;
//   bandwidth     STREAM-style triad a[i] = b[i] + s*c[i] on buffers far
//                 past the LLC, counting 24 B/element (two reads + one
//                 write, STREAM convention), plus an in-place scale
//                 x[i] *= s (16 B/element, no write-allocate traffic —
//                 the two-stream pattern most faulty-BLAS kernels are).
//                 The better of the two is the memory ceiling: a triad's
//                 uncounted write-allocate stream understates what the
//                 read+modify+write kernels can sustain.
//
// The probes follow the LARM flops.c exemplar (SNIPPETS.md): many
// independent chains so throughput, not latency, is measured — but in
// portable C++ rather than per-ISA asm, compiled exactly like the kernels
// they model (same flags; the build pins -ffp-contract=off, so "mul+add"
// is two rounded ops here and in every kernel — no FMA on either side).
//
// Results are cached as a provenance-stamped machine_profile.json
// (`robustify_cli calibrate`): measurements, not simulation — two runs
// give slightly different numbers, so regenerate per host and keep the
// profile next to the BENCH_*.json it normalizes.  Nothing in the
// simulation reads it; determinism contracts are untouched.
#pragma once

#include <cstddef>
#include <string>

namespace robustify::perfmodel {

struct CalibrationOptions {
  double seconds_per_probe = 0.25;  // minimum measured time per round
  int rounds = 3;                   // best-of-N (max rate survives)
  std::size_t triad_elements = std::size_t{1} << 22;  // 32 MiB per array

  // Short enough for unit tests and CI smoke (noisy, but valid > 0).
  static CalibrationOptions Quick() {
    CalibrationOptions o;
    o.seconds_per_probe = 0.02;
    o.rounds = 1;
    o.triad_elements = std::size_t{1} << 19;
    return o;
  }
};

struct MachineProfile {
  bool valid = false;               // all rates finite and > 0
  double scalar_peak_gops = 0.0;    // scalar mul+add throughput, Gops/s
  double vector_peak_gops = 0.0;    // vectorized mul+add throughput, Gops/s
  double triad_bandwidth_gbps = 0.0;  // 3-stream triad bandwidth, GB/s
  double sustained_bandwidth_gbps = 0.0;  // best stream probe — roofline roof
  double calibration_seconds = 0.0;   // total probe wall time
  std::string created_utc;          // ISO-8601 UTC stamp of the calibration
};

// Runs the three probes on the calling thread (per-core ceilings: the
// sweep scales per worker, so per-kernel efficiency is per-core too).
MachineProfile Calibrate(const CalibrationOptions& options = {});

// Writes the profile as machine_profile.json, stamped with the build
// provenance block (git SHA, compiler, flags).  Throws std::runtime_error
// when the file cannot be written.
void WriteMachineProfile(const std::string& path, const MachineProfile& profile);

// Reads a profile written by WriteMachineProfile.  Returns valid == false
// (never throws) when the file is missing, unparsable, or holds
// non-positive rates.
MachineProfile LoadMachineProfile(const std::string& path);

}  // namespace robustify::perfmodel
