#include "perfmodel/calibrate.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "telemetry/provenance.h"
#include "telemetry/trace.h"

namespace robustify::perfmodel {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Keeps the compiler from deleting a probe loop whose results are never
// read.  The empty asm claims to read the pointed-to memory.
inline void KeepAlive(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r"(p) : "memory");
#else
  static volatile const void* sink;
  sink = p;
#endif
}

// Dual interleaved Horner chains on x^2, recombined as p*x + q: per element
// 1 (x*x) + 4*(kHalfTerms-1) (two mul+add chains) + 2 (recombine) ops, all
// mul/add — the op mix every faulty-BLAS kernel is built from.  Two
// independent chains per element plus independence across elements keeps
// the FP ports busy instead of serializing on one dependency chain.
constexpr int kHalfTerms = 5;
constexpr double kFlopsPerElement = 1.0 + 4.0 * (kHalfTerms - 1) + 2.0;

// The polynomial pass both compute probes share (duplicated rather than
// shared through a helper: GCC's optimize attribute is function-scoped and
// must not leak between the two variants).  Coefficients below 1 and
// |x| <= 1 keep every intermediate finite across unbounded repetition.
#define ROBUSTIFY_POLYNOMIAL_PASS_BODY                                        \
  constexpr double kP[kHalfTerms] = {0.251, -0.127, 0.0633, -0.0317, 0.0158}; \
  constexpr double kQ[kHalfTerms] = {-0.249, 0.1255, -0.0629, 0.0311,         \
                                     -0.0156};                                \
  for (std::size_t i = 0; i < n; ++i) {                                       \
    const double x = src[i];                                                  \
    const double x2 = x * x;                                                  \
    double p = kP[0];                                                         \
    double q = kQ[0];                                                         \
    for (int k = 1; k < kHalfTerms; ++k) {                                    \
      p = p * x2 + kP[k];                                                     \
      q = q * x2 + kQ[k];                                                     \
    }                                                                         \
    dst[i] = p * x + q;                                                       \
  }

// Non-GCC builds may still vectorize this variant; the scalar peak then
// degrades to a duplicate of the vector peak, which only loosens the
// scalar engine's (informational) ceiling.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("no-tree-vectorize")))
#endif
void PolynomialPassScalar(const double* src, double* dst, std::size_t n) {
  ROBUSTIFY_POLYNOMIAL_PASS_BODY
}

void PolynomialPassVector(const double* src, double* dst, std::size_t n) {
  ROBUSTIFY_POLYNOMIAL_PASS_BODY
}

#undef ROBUSTIFY_POLYNOMIAL_PASS_BODY

// Best-of-N rate for `flops_per_pass` ops: each round repeats the pass
// until it has run for at least `min_seconds`, and the fastest round wins
// (peak probes want the least-disturbed measurement, not the average).
template <typename PassFn>
double MeasureGopsPerSec(const PassFn& pass, double flops_per_pass,
                         const CalibrationOptions& options) {
  double best = 0.0;
  for (int round = 0; round < options.rounds; ++round) {
    std::size_t passes = 0;
    const double start = NowSeconds();
    double elapsed = 0.0;
    do {
      pass();
      ++passes;
      elapsed = NowSeconds() - start;
    } while (elapsed < options.seconds_per_probe);
    if (elapsed > 0.0) {
      const double gops =
          flops_per_pass * static_cast<double>(passes) / elapsed / 1e9;
      if (gops > best) best = gops;
    }
  }
  return best;
}

double ComputePeakGops(bool vectorize, const CalibrationOptions& options) {
  // L1-resident working set: the probe measures arithmetic issue rate, not
  // memory.  16 KiB in, 16 KiB out.
  constexpr std::size_t kN = 2048;
  std::vector<double> src(kN), dst(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    src[i] = 0.25 + 0.5 * static_cast<double>(i % 97) / 97.0;
  }
  const auto pass = [&] {
    if (vectorize) {
      PolynomialPassVector(src.data(), dst.data(), kN);
    } else {
      PolynomialPassScalar(src.data(), dst.data(), kN);
    }
    KeepAlive(dst.data());
  };
  return MeasureGopsPerSec(pass, kFlopsPerElement * static_cast<double>(kN),
                           options);
}

double TriadBandwidthGbps(const CalibrationOptions& options) {
  const std::size_t n = options.triad_elements;
  std::vector<double> a(n, 0.0), b(n), c(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<double>(i % 1024) * 0.001;
    c[i] = static_cast<double>((i + 7) % 1024) * 0.002;
  }
  const double scalar = 3.0;
  double* pa = a.data();
  const double* pb = b.data();
  const double* pc = c.data();
  const auto pass = [&] {
    for (std::size_t i = 0; i < n; ++i) pa[i] = pb[i] + scalar * pc[i];
    KeepAlive(pa);
  };
  // STREAM triad convention: 24 bytes per element (read b, read c, write
  // a); write-allocate traffic is not counted, matching published numbers.
  const double bytes_per_pass = 24.0 * static_cast<double>(n);
  double best = 0.0;
  for (int round = 0; round < options.rounds; ++round) {
    std::size_t passes = 0;
    const double start = NowSeconds();
    double elapsed = 0.0;
    do {
      pass();
      ++passes;
      elapsed = NowSeconds() - start;
    } while (elapsed < options.seconds_per_probe);
    if (elapsed > 0.0) {
      const double gbps =
          bytes_per_pass * static_cast<double>(passes) / elapsed / 1e9;
      if (gbps > best) best = gbps;
    }
  }
  return best;
}

// Two-stream probe: x[i] *= s in place.  16 bytes/element (one read, one
// write of the same line, no write-allocate) — the access pattern of the
// read+modify+write kernels (axpy, scal, rot, ...), which sustain more
// than a 3-stream triad on most hosts.
double InplaceScaleBandwidthGbps(const CalibrationOptions& options) {
  const std::size_t n = options.triad_elements;
  std::vector<double> x(n, 1.0);
  double* px = x.data();
  // Alternate a shrink and its exact inverse so unbounded repetition never
  // drifts toward denormals (multiplying by s then 1/s is exact here).
  const double down = 0.5;
  const double up = 2.0;
  const double bytes_per_pass = 16.0 * static_cast<double>(n);
  double best = 0.0;
  for (int round = 0; round < options.rounds; ++round) {
    std::size_t passes = 0;
    const double start = NowSeconds();
    double elapsed = 0.0;
    do {
      const double s = (passes % 2 == 0) ? down : up;
      for (std::size_t i = 0; i < n; ++i) px[i] *= s;
      KeepAlive(px);
      ++passes;
      elapsed = NowSeconds() - start;
    } while (elapsed < options.seconds_per_probe);
    if (elapsed > 0.0) {
      const double gbps =
          bytes_per_pass * static_cast<double>(passes) / elapsed / 1e9;
      if (gbps > best) best = gbps;
    }
  }
  return best;
}

std::string UtcNowIso8601() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
#if defined(_WIN32)
  gmtime_s(&tm_utc, &now);
#else
  gmtime_r(&now, &tm_utc);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

// Finds `"key"` at object level and parses the number after the colon.
// The profile is our own flat writer's output, so a scan is unambiguous.
bool ScanNumberField(const std::string& text, const std::string& key,
                     double* value) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  std::size_t i = at + needle.size();
  while (i < text.size() && (text[i] == ' ' || text[i] == ':')) ++i;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str() + i, &end);
  if (end == text.c_str() + i) return false;
  *value = parsed;
  return true;
}

}  // namespace

MachineProfile Calibrate(const CalibrationOptions& options) {
  telemetry::SpanScope calibrate_span("calibrate");
  MachineProfile profile;
  const double start = NowSeconds();
  profile.scalar_peak_gops = ComputePeakGops(/*vectorize=*/false, options);
  profile.vector_peak_gops = ComputePeakGops(/*vectorize=*/true, options);
  profile.triad_bandwidth_gbps = TriadBandwidthGbps(options);
  const double inplace = InplaceScaleBandwidthGbps(options);
  profile.sustained_bandwidth_gbps =
      inplace > profile.triad_bandwidth_gbps ? inplace
                                             : profile.triad_bandwidth_gbps;
  profile.calibration_seconds = NowSeconds() - start;
  profile.created_utc = UtcNowIso8601();
  profile.valid = std::isfinite(profile.scalar_peak_gops) &&
                  profile.scalar_peak_gops > 0.0 &&
                  std::isfinite(profile.vector_peak_gops) &&
                  profile.vector_peak_gops > 0.0 &&
                  std::isfinite(profile.triad_bandwidth_gbps) &&
                  profile.triad_bandwidth_gbps > 0.0 &&
                  std::isfinite(profile.sustained_bandwidth_gbps) &&
                  profile.sustained_bandwidth_gbps > 0.0;
  return profile;
}

void WriteMachineProfile(const std::string& path,
                         const MachineProfile& profile) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open machine profile for writing: " + path);
  }
  const telemetry::BuildProvenance& prov = telemetry::Provenance();
  std::ostringstream body;
  body.precision(9);
  body << "{\n"
       << "  \"format\": 1,\n"
       << "  \"created_utc\": \"" << JsonEscape(profile.created_utc) << "\",\n"
       << "  \"scalar_peak_gops\": " << profile.scalar_peak_gops << ",\n"
       << "  \"vector_peak_gops\": " << profile.vector_peak_gops << ",\n"
       << "  \"triad_bandwidth_gbps\": " << profile.triad_bandwidth_gbps << ",\n"
       << "  \"sustained_bandwidth_gbps\": " << profile.sustained_bandwidth_gbps
       << ",\n"
       << "  \"calibration_seconds\": " << profile.calibration_seconds << ",\n"
       << "  \"provenance\": {\"git_sha\": \"" << JsonEscape(prov.git_sha)
       << "\", \"git_status\": \"" << JsonEscape(prov.git_status)
       << "\", \"compiler\": \"" << JsonEscape(prov.compiler)
       << "\", \"cxx_flags\": \"" << JsonEscape(prov.cxx_flags)
       << "\", \"build_type\": \"" << JsonEscape(prov.build_type) << "\"}\n"
       << "}\n";
  out << body.str();
  if (!out.good()) {
    throw std::runtime_error("failed writing machine profile: " + path);
  }
}

MachineProfile LoadMachineProfile(const std::string& path) {
  MachineProfile profile;
  std::ifstream in(path);
  if (!in) return profile;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (!ScanNumberField(text, "scalar_peak_gops", &profile.scalar_peak_gops) ||
      !ScanNumberField(text, "vector_peak_gops", &profile.vector_peak_gops) ||
      !ScanNumberField(text, "triad_bandwidth_gbps",
                       &profile.triad_bandwidth_gbps)) {
    return profile;
  }
  // Profiles from before the two-stream probe fall back to the triad roof.
  if (!ScanNumberField(text, "sustained_bandwidth_gbps",
                       &profile.sustained_bandwidth_gbps)) {
    profile.sustained_bandwidth_gbps = profile.triad_bandwidth_gbps;
  }
  ScanNumberField(text, "calibration_seconds", &profile.calibration_seconds);
  const std::size_t created = text.find("\"created_utc\"");
  if (created != std::string::npos) {
    const std::size_t open = text.find('"', created + 13 + 1);
    const std::size_t close =
        open == std::string::npos ? std::string::npos : text.find('"', open + 1);
    if (close != std::string::npos) {
      profile.created_utc = text.substr(open + 1, close - open - 1);
    }
  }
  profile.valid = std::isfinite(profile.scalar_peak_gops) &&
                  profile.scalar_peak_gops > 0.0 &&
                  std::isfinite(profile.vector_peak_gops) &&
                  profile.vector_peak_gops > 0.0 &&
                  std::isfinite(profile.triad_bandwidth_gbps) &&
                  profile.triad_bandwidth_gbps > 0.0 &&
                  std::isfinite(profile.sustained_bandwidth_gbps) &&
                  profile.sustained_bandwidth_gbps > 0.0;
  return profile;
}

}  // namespace robustify::perfmodel
