#include "perfmodel/roofline.h"

#include <cmath>

namespace robustify::perfmodel {

namespace {

// Doubles throughout: 8 bytes per element read or written.  Flop counts
// mirror the per-element op sequences documented in linalg/faulty_blas.h;
// byte counts are the DRAM-streamed operands only (accumulators, scalars,
// and the matvec vectors stay in registers or cache).
const std::vector<KernelTraits>& Table() {
  static const std::vector<KernelTraits> table = {
      // family        flops  bytes   streamed operands
      {"dot",          2.0,   16.0},  // read x, read y; mul + add
      {"axpy",         2.0,   24.0},  // read x, read+write y; mul + add
      {"xpby",         2.0,   24.0},  // read s, read+write p; mul + add
      {"scal",         1.0,   16.0},  // read+write x; mul
      {"sub",          1.0,   24.0},  // read x, read+write y; sub
      {"sub_scaled2",  3.0,   24.0},  // read x, read+write y; mul + mul + sub
      {"nrm2",         2.0,    8.0},  // read x; mul + add (one sqrt per call)
      {"matvec",       2.0,    8.0},  // stream A; x, y cache-resident
      {"mattvec",      2.0,    8.0},  // stream A (row-major transposed apply)
      {"residual",     3.0,   16.0},  // read ax, read b; sub + mul + add
      {"rot",          6.0,   32.0},  // read+write x and y; 4 mul + 2 add
      {"jacobi_dots",  6.0,   16.0},  // read x, read y; three fused dots
  };
  return table;
}

}  // namespace

const std::vector<KernelTraits>& KernelFamilyTable() { return Table(); }

const KernelTraits* FindKernelTraits(const std::string& family) {
  for (const KernelTraits& traits : Table()) {
    if (family == traits.family) return &traits;
  }
  return nullptr;
}

RooflinePlacement PlaceKernel(const KernelTraits& traits, double measured_gops,
                              const MachineProfile& profile,
                              bool use_vector_peak) {
  RooflinePlacement placement;
  if (!profile.valid || traits.flops_per_element <= 0.0 ||
      traits.bytes_per_element <= 0.0) {
    return placement;
  }
  placement.arithmetic_intensity = traits.arithmetic_intensity();
  const double compute_roof =
      use_vector_peak ? profile.vector_peak_gops : profile.scalar_peak_gops;
  const double memory_roof =
      placement.arithmetic_intensity * profile.sustained_bandwidth_gbps;
  placement.memory_bound = memory_roof < compute_roof;
  placement.ceiling_gops = placement.memory_bound ? memory_roof : compute_roof;
  if (placement.ceiling_gops > 0.0 && std::isfinite(measured_gops) &&
      measured_gops >= 0.0) {
    placement.efficiency = measured_gops / placement.ceiling_gops;
    placement.valid = true;
  }
  return placement;
}

}  // namespace robustify::perfmodel
