// Roofline placement: measured kernel throughput against what the machine
// allows.
//
// For each faulty-BLAS kernel family the analytic table below records the
// clean-path flops and streamed bytes per element (doubles; counts match
// the per-element op sequences documented in linalg/faulty_blas.h, with
// -ffp-contract=off a mul+add is 2 ops there and in the calibration
// probes).  Arithmetic intensity AI = flops / bytes then pins the kernel's
// ceiling on the machine profile (perfmodel/calibrate.h):
//
//   ceiling = min(vector peak, AI * sustained bandwidth)   [Gops/s]
//
// and efficiency = measured / ceiling — the fraction of what the hardware
// allows that the kernel actually achieves.  Unlike raw Mops/s, efficiency
// is comparable across hosts, which is what makes it a CI-gateable number
// (tools/perf_diff.py --efficiency-threshold).
//
// Byte counts assume DRAM-resident operands (bench_roofline sizes its
// working sets accordingly).  Matrix kernels count only the streamed
// matrix (the vectors stay cache-resident); cache-resident sweeps run
// faster than the DRAM ceiling — placement is only meaningful at the sizes
// the bench measures.
#pragma once

#include <string>
#include <vector>

#include "perfmodel/calibrate.h"

namespace robustify::perfmodel {

struct KernelTraits {
  const char* family = "";          // "dot", "axpy", ... (perf section name)
  double flops_per_element = 0.0;   // clean-path FP ops per element
  double bytes_per_element = 0.0;   // streamed bytes per element (doubles)

  double arithmetic_intensity() const {
    return bytes_per_element > 0.0 ? flops_per_element / bytes_per_element
                                   : 0.0;
  }
};

// One row per faulty-BLAS kernel family (dot/axpy/matvec/residual/rot and
// the rest of linalg/faulty_blas.h).  Fixed order, stable names.
const std::vector<KernelTraits>& KernelFamilyTable();

// nullptr when `family` is not in the table.
const KernelTraits* FindKernelTraits(const std::string& family);

struct RooflinePlacement {
  bool valid = false;                // profile valid and traits well-formed
  double arithmetic_intensity = 0.0; // flops per streamed byte
  double ceiling_gops = 0.0;         // min(compute peak, AI * bandwidth)
  double efficiency = 0.0;           // measured / ceiling
  bool memory_bound = false;         // bandwidth roof below the compute roof
};

// Places one kernel's measured clean-path throughput (Gops/s) under the
// profile's ceilings.  `use_vector_peak` selects the block engine's
// compute roof (default) vs. the scalar engine's.
RooflinePlacement PlaceKernel(const KernelTraits& traits, double measured_gops,
                              const MachineProfile& profile,
                              bool use_vector_peak = true);

}  // namespace robustify::perfmodel
