// IIR filtering (paper Section 4.3, Figure 6.3).
//
// Baseline: the direct-form recursion — feedback makes every faulted output
// sample contaminate all later samples, so error accrues with t.
//
// Robust: the variational form.  The recursion T y = B u (T unit lower
// triangular banded with the feedback taps) is solved as
// min 0.5 ||T y - B u||^2 by the SGD engine; faults perturb single descent
// steps instead of the recursion state.
#pragma once

#include <algorithm>
#include <cstddef>

#include "linalg/scalar.h"
#include "linalg/vector.h"
#include "opt/sgd.h"
#include "opt/workspace.h"
#include "signal/signals.h"

namespace robustify::apps {

template <class T>
linalg::Vector<double> BaselineIir(const signal::IirCoefficients& coeffs,
                                   const linalg::Vector<double>& input) {
  const std::size_t n = input.size();
  const std::size_t nb = coeffs.b.size();
  const std::size_t na = coeffs.a.size();
  linalg::Vector<T> y(n);
  for (std::size_t t = 0; t < n; ++t) {
    T acc(0);
    for (std::size_t k = 0; k < nb && k <= t; ++k) {
      acc += T(coeffs.b[k]) * T(input[t - k]);
    }
    for (std::size_t k = 1; k <= na && k <= t; ++k) {
      acc -= T(coeffs.a[k - 1]) * y[t - k];
    }
    y[t] = acc;
  }
  return linalg::ToDouble(y);
}

namespace detail {

// 0.5 || T y - f ||^2 with f = B u precomputed in T (the forcing term is
// re-derived from reliable inputs once per solve; the residual and gradient
// are re-evaluated on the faulty FPU every iteration).
template <class T>
class IirObjective {
 public:
  IirObjective(const signal::IirCoefficients& coeffs, const linalg::Vector<double>& input,
               opt::Workspace<T>* workspace)
      : a_(coeffs.a),
        n_(input.size()),
        forcing_(input.size()),
        r_lease_(workspace->Borrow(input.size())) {
    const std::size_t nb = coeffs.b.size();
    // The forcing term is computed once and then read every iteration, so a
    // fault here would persist for the whole solve.  Compute it three times
    // and take the per-sample median (TMR, selected by reliable readout).
    for (std::size_t t = 0; t < n_; ++t) {
      double votes[3];
      for (int rep = 0; rep < 3; ++rep) {
        T acc(0);
        for (std::size_t k = 0; k < nb && k <= t; ++k) {
          acc += T(coeffs.b[k]) * T(input[t - k]);
        }
        votes[rep] = linalg::AsDouble(acc);
      }
      const double median =
          std::max(std::min(votes[0], votes[1]),
                   std::min(std::max(votes[0], votes[1]), votes[2]));
      forcing_[t] = T(median);
    }
  }

  void SetPenaltyScale(double) {}

  T Value(const linalg::Vector<T>& y) const {
    if (linalg::detail::UseBlockKernels<T>()) {
      // Fused banded readout: residual + square + accumulate per sample.
      const double acc = linalg::blas::IirValueAcc(
          n_, a_.size(), a_.data(), faulty::AsDoubleArray(y.data()),
          faulty::AsDoubleArray(forcing_.data()), 0.0);
      return T(0.5) * T(acc);
    }
    T acc(0);
    for (std::size_t t = 0; t < n_; ++t) {
      const T r = Residual(y, t);
      acc += r * r;
    }
    return T(0.5) * acc;
  }

  void Gradient(const linalg::Vector<T>& y, linalg::Vector<T>* g) const {
    // r_t = y_t + sum_k a_k y_{t-k} - f_t;  dF/dy_s = r_s + sum_k a_k r_{s+k}.
    // The residual scratch is a lifetime lease (see the constructor);
    // restrict restores the no-alias fact the pooled buffer loses.
    const std::size_t na = a_.size();
    if (linalg::detail::UseBlockKernels<T>()) {
      double* r = faulty::AsDoubleArray(r_lease_->data());
      linalg::blas::IirResidualInto(n_, na, a_.data(), faulty::AsDoubleArray(y.data()),
                                    faulty::AsDoubleArray(forcing_.data()), r);
      linalg::blas::IirGradientInto(n_, na, a_.data(), r,
                                    faulty::AsDoubleArray(g->data()));
      return;
    }
    T* ROBUSTIFY_RESTRICT r = r_lease_->data();
    T* ROBUSTIFY_RESTRICT gp = g->data();
    for (std::size_t t = 0; t < n_; ++t) r[t] = Residual(y, t);
    for (std::size_t s = 0; s < n_; ++s) {
      T acc = r[s];
      for (std::size_t k = 1; k <= na && s + k < n_; ++k) {
        acc += T(a_[k - 1]) * r[s + k];
      }
      gp[s] = acc;
    }
  }

 private:
  T Residual(const linalg::Vector<T>& y, std::size_t t) const {
    T acc = y[t] - forcing_[t];
    const std::size_t na = a_.size();
    for (std::size_t k = 1; k <= na && k <= t; ++k) {
      acc += T(a_[k - 1]) * y[t - k];
    }
    return acc;
  }

  const std::vector<double>& a_;
  std::size_t n_;
  linalg::Vector<T> forcing_;
  // Residual scratch held for the objective's lifetime (Gradient is const).
  mutable typename opt::Workspace<T>::Lease r_lease_;
};

}  // namespace detail

template <class T>
linalg::Vector<double> RobustIir(const signal::IirCoefficients& coeffs,
                                 const linalg::Vector<double>& input,
                                 const opt::SgdOptions& options,
                                 opt::Workspace<T>* workspace = nullptr) {
  opt::Workspace<T>& ws =
      workspace != nullptr ? *workspace : opt::ThreadWorkspace<T>();
  detail::IirObjective<T> objective(coeffs, input, &ws);
  linalg::Vector<T> y(input.size());
  y = opt::MinimizeSgd(objective, std::move(y), options, &ws);
  return linalg::ToDouble(y);
}

}  // namespace robustify::apps
