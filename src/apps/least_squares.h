// Least squares (paper Section 4.1, Figures 6.2/6.6/6.7): direct baselines
// vs the SGD and restarted-CG robustifications.
#pragma once

#include <cstdint>

#include "linalg/lsq.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "opt/cg.h"
#include "opt/sgd.h"

namespace robustify::apps {

struct LsqProblem {
  linalg::Matrix<double> a;
  linalg::Vector<double> b;
  linalg::Vector<double> exact;  // the true minimizer (b = A * exact)
};

// Gaussian A (m x n, entries N(0,1)/sqrt(m)) and consistent b = A x*.
LsqProblem MakeRandomLsqProblem(std::size_t m, std::size_t n, std::uint64_t seed);

// Direct solve on the (possibly faulty) FPU; result read out as double.
template <class T>
linalg::Vector<double> SolveLsqBaseline(const LsqProblem& problem, linalg::LsqBaseline which) {
  const linalg::Matrix<T> a = linalg::Cast<T>(problem.a);
  const linalg::Vector<T> b = linalg::Cast<T>(problem.b);
  return linalg::ToDouble(linalg::SolveLsqDirect(a, b, which));
}

namespace detail {

// 0.5 * ||A x - b||^2 for the SGD engine.
template <class T>
class LsqObjective {
 public:
  LsqObjective(const linalg::Matrix<T>& a, const linalg::Vector<T>& b) : a_(a), b_(b) {}

  T Value(const linalg::Vector<T>& x) const {
    const linalg::Vector<T> ax = MatVec(a_, x);
    T acc(0);
    for (std::size_t i = 0; i < ax.size(); ++i) {
      const T r = ax[i] - b_[i];
      acc += r * r;
    }
    return T(0.5) * acc;
  }

  void Gradient(const linalg::Vector<T>& x, linalg::Vector<T>* g) const {
    linalg::Vector<T> r = MatVec(a_, x);
    for (std::size_t i = 0; i < r.size(); ++i) r[i] -= b_[i];
    linalg::Vector<T> grad = MatTVec(a_, r);
    for (std::size_t j = 0; j < grad.size(); ++j) (*g)[j] = grad[j];
  }

  void SetPenaltyScale(double) {}

 private:
  const linalg::Matrix<T>& a_;
  const linalg::Vector<T>& b_;
};

}  // namespace detail

template <class T>
linalg::Vector<double> SolveLsqSgd(const LsqProblem& problem, const opt::SgdOptions& options) {
  const linalg::Matrix<T> a = linalg::Cast<T>(problem.a);
  const linalg::Vector<T> b = linalg::Cast<T>(problem.b);
  detail::LsqObjective<T> objective(a, b);
  linalg::Vector<T> x(problem.a.cols());
  x = opt::MinimizeSgd(objective, std::move(x), options);
  return linalg::ToDouble(x);
}

template <class T>
opt::CgResult SolveLsqCg(const LsqProblem& problem, const opt::CgOptions& options) {
  const linalg::Matrix<T> a = linalg::Cast<T>(problem.a);
  const linalg::Vector<T> b = linalg::Cast<T>(problem.b);
  return opt::SolveCgls(a, b, options);
}

}  // namespace robustify::apps
