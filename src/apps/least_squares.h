// Least squares (paper Section 4.1, Figures 6.2/6.6/6.7): direct baselines
// vs the SGD and restarted-CG robustifications.
#pragma once

#include <cstdint>

#include "core/fault_env.h"
#include "linalg/lsq.h"
#include "linalg/matrix.h"
#include "linalg/tiled.h"
#include "linalg/vector.h"
#include "opt/cg.h"
#include "opt/sgd.h"
#include "opt/workspace.h"

namespace robustify::apps {

struct LsqProblem {
  linalg::Matrix<double> a;
  linalg::Vector<double> b;
  linalg::Vector<double> exact;  // the true minimizer (b = A * exact)
};

// Gaussian A (m x n, entries N(0,1)/sqrt(m)) and consistent b = A x*.
LsqProblem MakeRandomLsqProblem(std::size_t m, std::size_t n, std::uint64_t seed);

// Direct solve on the (possibly faulty) FPU; result read out as double.
template <class T>
linalg::Vector<double> SolveLsqBaseline(const LsqProblem& problem, linalg::LsqBaseline which) {
  const linalg::Matrix<T> a = linalg::Cast<T>(problem.a);
  const linalg::Vector<T> b = linalg::Cast<T>(problem.b);
  return linalg::ToDouble(linalg::SolveLsqDirect(a, b, which));
}

namespace detail {

// 0.5 * ||A x - b||^2 for the SGD engine.  The residual scratch is a
// lifetime workspace lease and A^T r lands directly in the caller's
// gradient buffer, so both evaluations are allocation-free.
template <class T>
class LsqObjective {
 public:
  LsqObjective(const linalg::Matrix<T>& a, const linalg::Vector<T>& b,
               opt::Workspace<T>* workspace)
      : a_(a), b_(b), r_lease_(workspace->Borrow(a.rows())) {}

  T Value(const linalg::Vector<T>& x) const {
    linalg::Vector<T>& ax = *r_lease_;
    MatVecInto(a_, x, &ax);
    if (linalg::detail::UseBlockKernels<T>()) {
      // Fused residual readout: one pass of (sub, mul, add) per element.
      const double acc =
          linalg::blas::ResidualSsqAcc(ax.size(), 0.0, faulty::AsDoubleArray(ax.data()),
                                       faulty::AsDoubleArray(b_.data()));
      return T(0.5) * T(acc);
    }
    T acc(0);
    for (std::size_t i = 0; i < ax.size(); ++i) {
      const T r = ax[i] - b_[i];
      acc += r * r;
    }
    return T(0.5) * acc;
  }

  void Gradient(const linalg::Vector<T>& x, linalg::Vector<T>* g) const {
    linalg::Vector<T>& r = *r_lease_;
    MatVecInto(a_, x, &r);
    SubInPlace(b_, &r);
    MatTVecInto(a_, r, g);
  }

  void SetPenaltyScale(double) {}

 private:
  const linalg::Matrix<T>& a_;
  const linalg::Vector<T>& b_;
  // A·x / residual scratch (rows-sized), shared by Value and Gradient and
  // held for the objective's lifetime; both methods are const, it is not.
  mutable typename opt::Workspace<T>::Lease r_lease_;
};

}  // namespace detail

template <class T>
linalg::Vector<double> SolveLsqSgd(const LsqProblem& problem, const opt::SgdOptions& options,
                                   opt::Workspace<T>* workspace = nullptr) {
  opt::Workspace<T>& ws =
      workspace != nullptr ? *workspace : opt::ThreadWorkspace<T>();
  const linalg::Matrix<T> a = linalg::Cast<T>(problem.a);
  const linalg::Vector<T> b = linalg::Cast<T>(problem.b);
  detail::LsqObjective<T> objective(a, b, &ws);
  linalg::Vector<T> x(problem.a.cols());
  x = opt::MinimizeSgd(objective, std::move(x), options, &ws);
  return linalg::ToDouble(x);
}

template <class T>
opt::CgResult SolveLsqCg(const LsqProblem& problem, const opt::CgOptions& options,
                         opt::Workspace<T>* workspace = nullptr) {
  const linalg::Matrix<T> a = linalg::Cast<T>(problem.a);
  const linalg::Vector<T> b = linalg::Cast<T>(problem.b);
  return opt::SolveCgls(a, b, options, workspace);
}

// Per-solve fault configuration for the tiled engine, built from a trial's
// FaultEnvironment — same resolution a WithFaultyFpu scope performs (shared
// bit tables, env-var fault-model override).
inline linalg::TileFaultConfig TileConfigFromEnv(const core::FaultEnvironment& env) {
  linalg::TileFaultConfig cfg;
  cfg.inject = env.fault_rate > 0.0;
  cfg.fault_rate = env.fault_rate;
  cfg.bits = &faulty::SharedBitDistribution(env.bit_model);
  cfg.seed = env.seed;
  cfg.strategy = env.strategy;
  cfg.engine = env.engine;
  cfg.rng = env.rng;
  cfg.model = faulty::ResolveFaultModel(env.model);
  return cfg;
}

// Tiled direct baselines (linalg/tiled.h).  Unlike the monolithic
// SolveLsqBaseline these are called OUTSIDE WithFaultyFpu: every tile task
// runs its own deterministically-seeded injector, and the summed per-task
// stats come back through *stats (and the telemetry counters) so trial CSVs
// report faults exactly like the scoped kernels do.  kSvd has no tiled
// form; it falls back on Cholesky.
template <class T>
linalg::Vector<double> SolveLsqTiled(const LsqProblem& problem,
                                     linalg::LsqBaseline which,
                                     const linalg::TiledOptions& options,
                                     faulty::ContextStats* stats = nullptr) {
  thread_local linalg::TiledLsqEngine<T> engine;
  linalg::Vector<double> x;
  faulty::ContextStats local;
  if (which == linalg::LsqBaseline::kQr) {
    engine.SolveQr(problem.a, problem.b, options, &x, &local);
  } else {
    engine.SolveCholesky(problem.a, problem.b, options, &x, &local);
  }
  if (stats) *stats = local;
  core::detail::CountScopeTelemetry(local);
  return x;
}

}  // namespace robustify::apps
