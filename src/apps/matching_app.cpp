#include "apps/matching_app.h"

#include <cmath>
#include <set>

namespace robustify::apps {

bool MatchesOptimal(const graph::BipartiteGraph& g, const graph::Matching& m) {
  if (static_cast<int>(m.right_of_left.size()) != g.left) return false;
  // Well-formedness: matched pairs must be real edges, rights distinct.
  std::set<std::pair<int, int>> edge_set;
  for (const auto& e : g.edges) edge_set.insert({e.u, e.v});
  std::set<int> rights;
  double weight = 0.0;
  for (int u = 0; u < g.left; ++u) {
    const int v = m.right_of_left[static_cast<std::size_t>(u)];
    if (v == -1) continue;
    if (v < 0 || v >= g.right) return false;
    if (!rights.insert(v).second) return false;
    if (edge_set.find({u, v}) == edge_set.end()) return false;
  }
  for (const auto& e : g.edges) {
    if (m.right_of_left[static_cast<std::size_t>(e.u)] == e.v) weight += e.weight;
  }
  const double optimal = graph::OptimalMatchingWeight(g);
  return std::abs(weight - optimal) <= 1e-9 * std::max(1.0, std::abs(optimal));
}

}  // namespace robustify::apps
