#include "apps/configs.h"

namespace robustify::apps {

namespace {

opt::SgdOptions BaseSgd(int iterations, double base_step, opt::StepScaling scaling,
                        bool adaptive) {
  opt::SgdOptions o;
  o.iterations = iterations;
  o.base_step = base_step;
  o.scaling = scaling;
  o.adaptive = adaptive;
  return o;
}

constexpr int kSortIters = 10000;
constexpr int kMatchIters = 10000;
constexpr int kLsqIters = 1000;
constexpr int kIirIters = 1000;

}  // namespace

// ---- Sort -----------------------------------------------------------------

LpSolveConfig SortSgdLs() {
  LpSolveConfig c;
  c.sgd = BaseSgd(kSortIters, 0.05, opt::StepScaling::kLinear, false);
  c.sgd.gradient_clip = 1.0;
  c.sgd.gradient_votes = 3;
  c.sgd.iterate_clamp = 1.5;
  c.sgd.average_tail = 0.3;
  c.penalty_weight = 2.0;
  return c;
}

LpSolveConfig SortSgdAsLs() {
  LpSolveConfig c = SortSgdLs();
  c.sgd.adaptive = true;
  return c;
}

LpSolveConfig SortSgdAsSqs() {
  LpSolveConfig c = SortSgdAsLs();
  c.sgd.scaling = opt::StepScaling::kSqrt;
  return c;
}

// ---- Least squares --------------------------------------------------------

opt::SgdOptions LsqSgdLs() {
  opt::SgdOptions o = BaseSgd(kLsqIters, 0.5, opt::StepScaling::kLinear, false);
  o.gradient_clip = 10.0;
  o.gradient_votes = 3;
  o.iterate_clamp = 100.0;
  o.average_tail = 0.25;
  return o;
}

opt::SgdOptions LsqSgdAsLs() {
  opt::SgdOptions o = LsqSgdLs();
  o.adaptive = true;
  return o;
}

opt::SgdOptions LsqSgdAsSqs() {
  // The large-step opening phase is what inflates SQS's error on this
  // objective: sqrt scaling does not shrink it below the stability
  // threshold fast enough once faults perturb the gradient.
  opt::SgdOptions o = BaseSgd(kLsqIters, 0.5, opt::StepScaling::kSqrt, true);
  o.gradient_clip = 10.0;
  o.gradient_votes = 3;
  o.iterate_clamp = 100.0;
  o.phases = core::LargeStepRefine(0.3, 4.5);
  return o;
}

opt::CgOptions LsqCg(int iterations) {
  opt::CgOptions o;
  o.iterations = iterations;
  o.restart_every = 5;
  return o;
}

opt::CgOptions LsqCgNormal(int iterations) {
  opt::CgOptions o = LsqCg(iterations);
  o.normal_equations = true;
  return o;
}

// ---- IIR ------------------------------------------------------------------

opt::SgdOptions IirSgdLs() {
  opt::SgdOptions o = BaseSgd(kIirIters, 0.12, opt::StepScaling::kLinear, false);
  o.momentum_beta = 0.90;  // heavy-ball: quadratic objective + noise low-pass
  o.scaling_time_constant = 250.0;
  o.gradient_clip = 5.0;
  o.iterate_clamp = 50.0;
  o.average_tail = 0.2;
  return o;
}

opt::SgdOptions IirSgdAsLs() {
  opt::SgdOptions o = IirSgdLs();
  o.adaptive = true;
  return o;
}

opt::SgdOptions IirSgdAsSqs() {
  opt::SgdOptions o = IirSgdAsLs();
  o.scaling = opt::StepScaling::kSqrt;
  return o;
}

// ---- Matching -------------------------------------------------------------

LpSolveConfig MatchingBasicLs() {
  LpSolveConfig c;
  c.sgd = BaseSgd(kMatchIters, 0.05, opt::StepScaling::kLinear, false);
  c.sgd.gradient_clip = 2.0;
  c.sgd.gradient_votes = 3;
  c.sgd.iterate_clamp = 1.5;
  c.sgd.average_tail = 0.3;
  // Sharp vertices need a stiff penalty; without AS the descent oscillates
  // against it for most of the run — which is exactly the paper's finding
  // that basic SGD underperforms the non-robust baseline at low rates.
  c.penalty_weight = 20.0;
  return c;
}

LpSolveConfig MatchingSgdAsLs() {
  LpSolveConfig c = MatchingBasicLs();
  c.sgd.adaptive = true;
  return c;
}

LpSolveConfig MatchingSgdAsSqs() {
  LpSolveConfig c = MatchingSgdAsLs();
  c.sgd.scaling = opt::StepScaling::kSqrt;
  return c;
}

LpSolveConfig MatchingSqs() {
  LpSolveConfig c = MatchingBasicLs();
  c.sgd.scaling = opt::StepScaling::kSqrt;
  return c;
}

LpSolveConfig MatchingPrecond() {
  LpSolveConfig c = MatchingSgdAsLs();
  c.precondition = true;
  return c;
}

LpSolveConfig MatchingAnneal() {
  // Annealing needs step budget left for the final stiff phases: pair it
  // with the slower sqrt decay.
  LpSolveConfig c = MatchingSgdAsSqs();
  c.sgd.gradient_clip = 5.0;
  c.anneal = true;
  c.anneal_phases = 6;
  c.anneal_factor = 4.0;
  return c;
}

LpSolveConfig MatchingAll() {
  LpSolveConfig c = MatchingSgdAsSqs();
  c.sgd.gradient_clip = 5.0;
  c.sgd.momentum_beta = 0.5;
  c.precondition = true;
  c.anneal = true;
  c.anneal_phases = 6;
  c.anneal_factor = 4.0;
  return c;
}

// ---- Max flow / APSP ------------------------------------------------------

LpSolveConfig DefaultMaxFlowLp() {
  LpSolveConfig c;
  c.sgd = BaseSgd(4000, 0.02, opt::StepScaling::kLinear, true);
  c.sgd.gradient_clip = 10.0;
  c.sgd.gradient_votes = 3;
  c.sgd.iterate_clamp = 20.0;
  c.sgd.average_tail = 0.2;
  c.penalty_weight = 50.0;
  c.anneal = true;
  c.anneal_phases = 6;
  c.anneal_factor = 4.0;
  return c;
}

LpSolveConfig DefaultApspLp() {
  LpSolveConfig c;
  c.sgd = BaseSgd(4000, 0.02, opt::StepScaling::kLinear, true);
  c.sgd.gradient_clip = 10.0;
  c.sgd.gradient_votes = 3;
  c.sgd.iterate_clamp = 100.0;
  c.sgd.average_tail = 0.2;
  // Distance accuracy is the penalty softness 1/(2W) accumulated along the
  // path tree, so the APSP LP needs a stiff penalty.
  c.penalty_weight = 400.0;
  c.anneal = true;
  c.anneal_phases = 6;
  c.anneal_factor = 4.0;
  return c;
}

}  // namespace robustify::apps
