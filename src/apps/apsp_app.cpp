#include "apps/apsp_app.h"

#include <cmath>
#include <limits>

namespace robustify::apps {

double MaxAbsDistanceError(const linalg::Matrix<double>& d,
                           const linalg::Matrix<double>& exact) {
  if (d.rows() != exact.rows() || d.cols() != exact.cols()) {
    return std::numeric_limits<double>::infinity();
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < d.rows(); ++i) {
    for (std::size_t j = 0; j < d.cols(); ++j) {
      if (exact(i, j) >= graph::kUnreachable) continue;  // unreachable pair
      const double err = std::abs(d(i, j) - exact(i, j));
      if (!std::isfinite(err)) return std::numeric_limits<double>::infinity();
      if (err > worst) worst = err;
    }
  }
  return worst;
}

}  // namespace robustify::apps
