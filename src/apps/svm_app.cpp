#include "apps/svm_app.h"

#include <cmath>
#include <random>

namespace robustify::apps {

SvmDataset MakeBlobsDataset(int per_class, int dim, double separation, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> normal(0.0, 1.0);

  // Random unit separation direction.
  std::vector<double> direction(static_cast<std::size_t>(dim));
  double norm2 = 0.0;
  for (double& d : direction) {
    d = normal(rng);
    norm2 += d * d;
  }
  const double inv_norm = 1.0 / std::sqrt(std::max(norm2, 1e-12));
  for (double& d : direction) d *= inv_norm;

  SvmDataset data;
  data.x = linalg::Matrix<double>(static_cast<std::size_t>(2 * per_class),
                                  static_cast<std::size_t>(dim));
  data.y.resize(static_cast<std::size_t>(2 * per_class));
  for (int i = 0; i < 2 * per_class; ++i) {
    const int label = i < per_class ? 1 : -1;
    data.y[static_cast<std::size_t>(i)] = label;
    for (int j = 0; j < dim; ++j) {
      data.x(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          normal(rng) + 0.5 * separation * label * direction[static_cast<std::size_t>(j)];
    }
  }
  return data;
}

}  // namespace robustify::apps
