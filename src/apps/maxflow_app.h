// Max flow as an LP (paper Section 4.5, Eqs. 4.6-4.9).
//
//   max sum_{e out of s} f_e - sum_{e into s} f_e
//   s.t. conservation at every interior node, 0 <= f_e <= cap_e
// descended in penalty form on the faulty FPU.
#pragma once

#include <cstddef>
#include <vector>

#include "apps/configs.h"
#include "graph/types.h"
#include "linalg/scalar.h"
#include "linalg/vector.h"
#include "opt/lp.h"
#include "opt/sgd.h"
#include "opt/workspace.h"

namespace robustify::apps {

struct FlowResult {
  bool valid = false;
  double value = 0.0;
  std::vector<double> edge_flow;
};

template <class T>
FlowResult RobustMaxFlow(const graph::FlowNetwork& net, const MaxFlowConfig& config,
                         opt::Workspace<T>* workspace = nullptr) {
  opt::Workspace<T>& ws =
      workspace != nullptr ? *workspace : opt::ThreadWorkspace<T>();
  const std::size_t e = net.edges.size();
  std::vector<double> cost(e, 0.0);
  std::vector<double> lower(e, 0.0);
  std::vector<double> upper(e);
  for (std::size_t k = 0; k < e; ++k) {
    upper[k] = net.edges[k].capacity;
    if (net.edges[k].from == net.source) cost[k] -= 1.0;  // maximize outflow
    if (net.edges[k].to == net.source) cost[k] += 1.0;
  }
  // Bucket each node's incident edges in one pass — O(V + E) instead of
  // rescanning the edge list per conservation row.  Within a node the +1
  // (inflow) term of an edge precedes its -1 (outflow) term exactly as in
  // the old per-row scan, so self-loops keep the same term order.
  std::vector<std::vector<std::pair<int, double>>> node_terms(
      static_cast<std::size_t>(net.nodes));
  for (std::size_t k = 0; k < e; ++k) {
    const int to = net.edges[k].to;
    const int from = net.edges[k].from;
    // Out-of-range endpoints fell out of the old per-row scans silently;
    // keep that failure mode rather than indexing out of bounds.
    if (to >= 0 && to < net.nodes) {
      node_terms[static_cast<std::size_t>(to)].push_back({static_cast<int>(k), 1.0});
    }
    if (from >= 0 && from < net.nodes) {
      node_terms[static_cast<std::size_t>(from)].push_back({static_cast<int>(k), -1.0});
    }
  }
  std::vector<opt::LpConstraint> constraints;
  constraints.reserve(static_cast<std::size_t>(net.nodes));
  for (int v = 0; v < net.nodes; ++v) {
    if (v == net.source || v == net.sink) continue;
    auto& terms = node_terms[static_cast<std::size_t>(v)];
    if (terms.empty()) continue;
    opt::LpConstraint con;
    con.equality = true;
    con.rhs = 0.0;
    con.terms = std::move(terms);
    constraints.push_back(std::move(con));
  }
  opt::PenalizedLp<T> lp(std::move(cost), std::move(constraints), std::move(lower),
                         std::move(upper), config.lp.penalty_weight,
                         config.lp.precondition);
  opt::SgdOptions options = config.lp.sgd;
  if (config.lp.anneal && options.phases.empty()) {
    options.phases = core::AnnealedPenalty(config.lp.anneal_phases, config.lp.anneal_factor);
  }
  linalg::Vector<T> f(e);
  f = opt::MinimizeSgd(lp, std::move(f), options, &ws);
  lp.ClampToBox(&f);

  FlowResult result;
  result.valid = AllFinite(f);
  // Flow value measured at the source (faulty arithmetic: part of the app).
  T value(0);
  for (std::size_t k = 0; k < e; ++k) {
    if (net.edges[k].from == net.source) value += f[k];
    if (net.edges[k].to == net.source) value -= f[k];
  }
  result.value = linalg::AsDouble(value);
  result.edge_flow.resize(e);
  for (std::size_t k = 0; k < e; ++k) result.edge_flow[k] = linalg::AsDouble(f[k]);
  return result;
}

}  // namespace robustify::apps
