#include "apps/eigen_app.h"

#include <algorithm>
#include <cmath>

namespace robustify::apps {

std::vector<Eigenpair> JacobiEigenSym(const linalg::Matrix<double>& input) {
  const std::size_t n = input.rows();
  linalg::Matrix<double> a = input;
  linalg::Matrix<double> v(n, n);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  constexpr int kMaxSweeps = 50;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (off < 1e-24) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(a(p, q)) < 1e-15) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t i = 0; i < n; ++i) {
          const double aip = a(i, p);
          const double aiq = a(i, q);
          a(i, p) = c * aip - s * aiq;
          a(i, q) = s * aip + c * aiq;
        }
        for (std::size_t j = 0; j < n; ++j) {
          const double apj = a(p, j);
          const double aqj = a(q, j);
          a(p, j) = c * apj - s * aqj;
          a(q, j) = s * apj + c * aqj;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  std::vector<Eigenpair> pairs(n);
  for (std::size_t j = 0; j < n; ++j) {
    pairs[j].value = a(j, j);
    pairs[j].vector = linalg::Vector<double>(n);
    for (std::size_t i = 0; i < n; ++i) pairs[j].vector[i] = v(i, j);
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Eigenpair& x, const Eigenpair& y) { return x.value > y.value; });
  return pairs;
}

}  // namespace robustify::apps
