// Linear SVM training (paper Section 4.7): an intrinsically robust
// data-fitting workload.  Hinge loss + L2 in the Pegasos style, descended by
// the shared SGD engine so every SgdOptions robustification (AS, TMR voting,
// momentum, clipping, averaging) applies here too.  Training accuracy is
// the quality metric.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/scalar.h"
#include "linalg/vector.h"
#include "opt/sgd.h"
#include "opt/workspace.h"

namespace robustify::apps {

struct SvmDataset {
  linalg::Matrix<double> x;  // one row per point
  std::vector<int> y;        // labels in {-1, +1}
};

// Two Gaussian blobs of `per_class` points in `dim` dimensions whose
// centers are `separation` apart along a random direction.
SvmDataset MakeBlobsDataset(int per_class, int dim, double separation, std::uint64_t seed);

struct SvmResult {
  linalg::Vector<double> w;
  double bias = 0.0;
  double train_accuracy = 0.0;
};

namespace detail {

// Variables: [w_0..w_{dim-1}, bias].
// F(v) = lambda/2 ||w||^2 + (1/n) sum_i max(0, 1 - y_i (w.x_i + b)).
template <class T>
class SvmObjective {
 public:
  SvmObjective(const linalg::Matrix<T>& x, const std::vector<int>& y, double lambda)
      : x_(x), y_(y), lambda_(lambda) {}

  void SetPenaltyScale(double) {}

  T Value(const linalg::Vector<T>& v) const {
    const std::size_t n = x_.rows();
    const std::size_t dim = x_.cols();
    T reg(0);
    if (linalg::detail::UseBlockKernels<T>()) {
      reg = T(linalg::blas::DotAcc(dim, 0.0, faulty::AsDoubleArray(v.data()), 1,
                                   faulty::AsDoubleArray(v.data()), 1));
    } else {
      for (std::size_t j = 0; j < dim; ++j) reg += v[j] * v[j];
    }
    T loss(0);
    for (std::size_t i = 0; i < n; ++i) {
      const T margin = Margin(v, i);
      const T hinge = T(1) - T(static_cast<double>(y_[i])) * margin;
      // Hinge activity decided by the reliable controller on the readout.
      if (linalg::AsDouble(hinge) > 0.0) loss += hinge;
    }
    return T(0.5 * lambda_) * reg + loss / T(static_cast<double>(n));
  }

  void Gradient(const linalg::Vector<T>& v, linalg::Vector<T>* g) const {
    const std::size_t n = x_.rows();
    const std::size_t dim = x_.cols();
    const T lam(lambda_);
    const T inv_n(1.0 / static_cast<double>(n));
    const bool block = linalg::detail::UseBlockKernels<T>();
    if (block) {
      // Same op stream as the scalar loop: one multiplication per
      // component (copy is reliable, the scale is the faulty op).
      for (std::size_t j = 0; j < dim; ++j) (*g)[j] = v[j];
      linalg::blas::Scal(dim, lambda_, faulty::AsDoubleArray(g->data()));
    } else {
      for (std::size_t j = 0; j < dim; ++j) (*g)[j] = lam * v[j];
    }
    (*g)[dim] = T(0);
    for (std::size_t i = 0; i < n; ++i) {
      const T ylabel(static_cast<double>(y_[i]));
      if (linalg::AsDouble(ylabel * Margin(v, i)) < 1.0) {
        const T* row = x_.row(i);
        if (block) {
          linalg::blas::SubScaled2(dim, linalg::AsDouble(inv_n),
                                   linalg::AsDouble(ylabel), faulty::AsDoubleArray(row),
                                   faulty::AsDoubleArray(g->data()));
        } else {
          for (std::size_t j = 0; j < dim; ++j) (*g)[j] -= inv_n * ylabel * row[j];
        }
        (*g)[dim] -= inv_n * ylabel;
      }
    }
  }

  T Margin(const linalg::Vector<T>& v, std::size_t i) const {
    const std::size_t dim = x_.cols();
    const T* row = x_.row(i);
    if (linalg::detail::UseBlockKernels<T>()) {
      return T(linalg::blas::DotAcc(dim, linalg::AsDouble(v[dim]),
                                    faulty::AsDoubleArray(row), 1,
                                    faulty::AsDoubleArray(v.data()), 1));
    }
    T margin = v[dim];  // bias
    for (std::size_t j = 0; j < dim; ++j) margin += row[j] * v[j];
    return margin;
  }

 private:
  const linalg::Matrix<T>& x_;
  const std::vector<int>& y_;
  double lambda_;
};

}  // namespace detail

template <class T>
SvmResult TrainSvm(const SvmDataset& data, double lambda, const opt::SgdOptions& options,
                   opt::Workspace<T>* workspace = nullptr) {
  const std::size_t n = data.x.rows();
  const std::size_t dim = data.x.cols();
  opt::Workspace<T>& ws =
      workspace != nullptr ? *workspace : opt::ThreadWorkspace<T>();
  const linalg::Matrix<T> x = linalg::Cast<T>(data.x);
  detail::SvmObjective<T> objective(x, data.y, lambda);
  linalg::Vector<T> v(dim + 1);
  v = opt::MinimizeSgd(objective, std::move(v), options, &ws);

  SvmResult result;
  result.w = linalg::Vector<double>(dim);
  for (std::size_t j = 0; j < dim; ++j) result.w[j] = linalg::AsDouble(v[j]);
  result.bias = linalg::AsDouble(v[dim]);
  // Training accuracy, classified on the faulty FPU (part of the app).
  int correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool positive = objective.Margin(v, i) > T(0);
    if ((data.y[i] > 0) == positive) ++correct;
  }
  result.train_accuracy = static_cast<double>(correct) / static_cast<double>(n);
  return result;
}

}  // namespace robustify::apps
