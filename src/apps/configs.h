// Tuned presets for the paper's robustified kernels.
//
// Naming follows the figure legends: LS = linear step scaling, SQS = sqrt
// step scaling, AS = adaptive scaling; the Figure 6.5 matching enhancements
// add SQS / PRECOND / ANNEAL / ALL on top of Basic,LS.
#pragma once

#include "core/phases.h"
#include "opt/cg.h"
#include "opt/sgd.h"

namespace robustify::apps {

// Shared configuration for the LP-formulated kernels (sort, matching,
// max-flow, APSP): the SGD engine options plus the penalty-form knobs.
struct LpSolveConfig {
  opt::SgdOptions sgd;
  double penalty_weight = 10.0;
  bool precondition = false;
  bool anneal = false;
  int anneal_phases = 4;
  double anneal_factor = 8.0;
};

// Sort (Figure 6.1): 10 000 iterations, 5-element arrays.
LpSolveConfig SortSgdLs();
LpSolveConfig SortSgdAsLs();
LpSolveConfig SortSgdAsSqs();

// Least squares (Figure 6.2): 1000 iterations on the 100x10 problem.
opt::SgdOptions LsqSgdLs();
opt::SgdOptions LsqSgdAsLs();
opt::SgdOptions LsqSgdAsSqs();

// CG least squares (Figures 6.6/6.7).  LsqCg iterates on A directly (two
// mat-vecs per step); LsqCgNormal precomputes G = A^T A once and iterates
// q = G p, the paper's Section 4.2 formulation.
opt::CgOptions LsqCg(int iterations);
opt::CgOptions LsqCgNormal(int iterations);

// IIR (Figure 6.3): 1000 iterations on the 500-sample variational form.
opt::SgdOptions IirSgdLs();
opt::SgdOptions IirSgdAsLs();
opt::SgdOptions IirSgdAsSqs();

// Matching (Figures 6.4/6.5): 10 000 iterations on the 5x6 graph.
LpSolveConfig MatchingBasicLs();
LpSolveConfig MatchingSgdAsLs();
LpSolveConfig MatchingSgdAsSqs();
LpSolveConfig MatchingSqs();
LpSolveConfig MatchingPrecond();
LpSolveConfig MatchingAnneal();
LpSolveConfig MatchingAll();

// Max-flow / APSP LP robustifications (Sections 4.5-4.6).
LpSolveConfig DefaultMaxFlowLp();
LpSolveConfig DefaultApspLp();

struct MaxFlowConfig {
  LpSolveConfig lp = DefaultMaxFlowLp();
};

struct ApspConfig {
  LpSolveConfig lp = DefaultApspLp();
};

}  // namespace robustify::apps
