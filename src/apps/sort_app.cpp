#include "apps/sort_app.h"

#include <algorithm>

namespace robustify::apps {

bool IsSortedCopyOf(const std::vector<double>& output, const std::vector<double>& input) {
  if (output.size() != input.size()) return false;
  for (std::size_t i = 1; i < output.size(); ++i) {
    if (output[i - 1] > output[i]) return false;
  }
  // Exact multiset equality: the kernels move values, never recompute them.
  std::vector<double> a = output;
  std::vector<double> b = input;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace robustify::apps
