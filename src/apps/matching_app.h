// Bipartite matching (paper Section 4.4, Figures 6.4/6.5).
//
// Baseline: Hungarian on the faulty FPU.  Robust: the matching LP
//   max sum_e w_e x_e   s.t.  sum_{e at left u} x_e == 1,
//                             sum_{e at right v} x_e <= 1,  0 <= x_e <= 1
// descended in penalty form, then rounded greedily by reliable readout.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <numeric>
#include <vector>

#include "apps/configs.h"
#include "graph/matching.h"
#include "graph/types.h"
#include "linalg/scalar.h"
#include "linalg/vector.h"
#include "opt/lp.h"
#include "opt/sgd.h"
#include "opt/workspace.h"

namespace robustify::apps {

struct MatchingResult {
  bool valid = false;
  graph::Matching matching;
};

// True when `m` is a well-formed matching whose (cleanly recomputed) weight
// equals the optimum.
bool MatchesOptimal(const graph::BipartiteGraph& g, const graph::Matching& m);

template <class T>
graph::Matching BaselineMatching(const graph::BipartiteGraph& g) {
  return graph::HungarianMatching<T>(g);
}

namespace detail {

template <class T>
opt::PenalizedLp<T> BuildMatchingLp(const graph::BipartiteGraph& g,
                                    const LpSolveConfig& config) {
  const std::size_t e = g.edges.size();
  std::vector<double> cost(e);
  for (std::size_t k = 0; k < e; ++k) cost[k] = -g.edges[k].weight;  // maximize
  // One pass over the edges buckets each endpoint's incident-edge list —
  // O(V + E) instead of rescanning every edge per constraint row.  Edge
  // order within a bucket matches the scan order, so the constraints are
  // identical to the old quadratic build.
  std::vector<std::vector<std::pair<int, double>>> left_terms(
      static_cast<std::size_t>(g.left));
  std::vector<std::vector<std::pair<int, double>>> right_terms(
      static_cast<std::size_t>(g.right));
  for (std::size_t k = 0; k < e; ++k) {
    const int u = g.edges[k].u;
    const int v = g.edges[k].v;
    // Out-of-range endpoints fell out of the old per-row scans silently;
    // keep that failure mode rather than indexing out of bounds.
    if (u >= 0 && u < g.left) {
      left_terms[static_cast<std::size_t>(u)].push_back({static_cast<int>(k), 1.0});
    }
    if (v >= 0 && v < g.right) {
      right_terms[static_cast<std::size_t>(v)].push_back({static_cast<int>(k), 1.0});
    }
  }
  std::vector<opt::LpConstraint> constraints;
  constraints.reserve(static_cast<std::size_t>(g.left + g.right));
  for (int u = 0; u < g.left; ++u) {
    auto& terms = left_terms[static_cast<std::size_t>(u)];
    if (terms.empty()) continue;
    opt::LpConstraint con;
    con.equality = true;
    con.rhs = 1.0;
    con.terms = std::move(terms);
    constraints.push_back(std::move(con));
  }
  for (int v = 0; v < g.right; ++v) {
    auto& terms = right_terms[static_cast<std::size_t>(v)];
    if (terms.empty()) continue;
    opt::LpConstraint con;
    con.equality = false;
    con.rhs = 1.0;
    con.terms = std::move(terms);
    constraints.push_back(std::move(con));
  }
  return opt::PenalizedLp<T>(std::move(cost), std::move(constraints),
                             std::vector<double>(e, 0.0), std::vector<double>(e, 1.0),
                             config.penalty_weight, config.precondition);
}

}  // namespace detail

template <class T>
MatchingResult RobustMatching(const graph::BipartiteGraph& g, const LpSolveConfig& config,
                              opt::Workspace<T>* workspace = nullptr) {
  opt::Workspace<T>& ws =
      workspace != nullptr ? *workspace : opt::ThreadWorkspace<T>();
  opt::PenalizedLp<T> lp = detail::BuildMatchingLp<T>(g, config);
  opt::SgdOptions options = config.sgd;
  if (config.anneal && options.phases.empty()) {
    options.phases = core::AnnealedPenalty(config.anneal_phases, config.anneal_factor);
  }
  linalg::Vector<T> x(g.edges.size(), T(0.5));
  x = opt::MinimizeSgd(lp, std::move(x), options, &ws);

  MatchingResult result;
  result.valid = AllFinite(x);

  // Greedy rounding by reliable readout: edges in decreasing x order, skip
  // edges whose endpoint is taken.  NaN iterates (possible at high fault
  // rates) are scrubbed to -inf before sorting: comparing through NaN is
  // not a strict weak ordering, and std::sort on one is undefined behavior
  // — in practice libstdc++'s unguarded insertion sort walks out of the
  // array and the result (even the op count upstream via code layout)
  // becomes a function of adjacent memory.
  std::vector<std::size_t> order(g.edges.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double xa = linalg::AsDouble(x[a]);
    const double xb = linalg::AsDouble(x[b]);
    const double ka = std::isnan(xa) ? -std::numeric_limits<double>::infinity() : xa;
    const double kb = std::isnan(xb) ? -std::numeric_limits<double>::infinity() : xb;
    if (ka != kb) return ka > kb;
    return a < b;  // total order: ties (and scrubbed NaNs) break by index
  });
  result.matching.right_of_left.assign(static_cast<std::size_t>(g.left), -1);
  std::vector<bool> right_used(static_cast<std::size_t>(g.right), false);
  double weight = 0.0;
  for (const std::size_t k : order) {
    const auto& edge = g.edges[k];
    if (result.matching.right_of_left[static_cast<std::size_t>(edge.u)] != -1) continue;
    if (right_used[static_cast<std::size_t>(edge.v)]) continue;
    result.matching.right_of_left[static_cast<std::size_t>(edge.u)] = edge.v;
    right_used[static_cast<std::size_t>(edge.v)] = true;
    weight += edge.weight;
  }
  result.matching.weight = weight;
  return result;
}

}  // namespace robustify::apps
