// Eigenpairs via Rayleigh-quotient ascent with deflation (paper Section 4.7).
//
// Robust variant: shifted projected ascent — x <- normalize(B x + c x) with
// c = ||B||_F so the top *algebraic* eigenvalue dominates, projecting out
// previously found vectors each step.  Every iteration re-reads the matrix
// from reliable memory, so faults perturb single steps, not the problem.
// Oracle: cyclic Jacobi on the clean FPU.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/scalar.h"
#include "linalg/vector.h"
#include "opt/workspace.h"

namespace robustify::apps {

struct Eigenpair {
  double value = 0.0;
  linalg::Vector<double> vector;
};

// All eigenpairs of symmetric `a`, sorted by descending eigenvalue.
std::vector<Eigenpair> JacobiEigenSym(const linalg::Matrix<double>& a);

struct RayleighOptions {
  int iterations = 200;
};

template <class T>
std::vector<Eigenpair> TopEigenpairsRayleigh(const linalg::Matrix<double>& a, std::size_t k,
                                             const RayleighOptions& options,
                                             opt::Workspace<T>* workspace = nullptr) {
  using std::sqrt;
  opt::Workspace<T>& ws =
      workspace != nullptr ? *workspace : opt::ThreadWorkspace<T>();
  const std::size_t n = a.rows();
  const linalg::Matrix<T> b = linalg::Cast<T>(a);

  // Shift so the largest algebraic eigenvalue dominates the power ascent.
  double frob = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) frob += a(i, j) * a(i, j);
  }
  const double shift = std::sqrt(frob) + 1.0;  // reliable setup constant

  std::vector<Eigenpair> pairs;
  std::vector<linalg::Vector<T>> found;
  for (std::size_t pair_idx = 0; pair_idx < k && pair_idx < n; ++pair_idx) {
    linalg::Vector<T> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = T(1.0 / static_cast<double>(1 + i + pair_idx));
    }
    typename opt::Workspace<T>::Lease y_lease = ws.Borrow(n);
    linalg::Vector<T>& y = *y_lease;
    for (int it = 0; it < options.iterations; ++it) {
      // Deflate: project out previously found eigenvectors.
      for (const auto& v : found) {
        const T coef = Dot(v, x);
        AxmyInPlace(coef, v, &x);
      }
      MatVecInto(b, x, &y);
      const T c(shift);
      AxpyInPlace(c, x, &y);
      const T norm = Norm(y);
      bool ok = std::isfinite(linalg::AsDouble(norm)) && linalg::AsDouble(norm) > 1e-30;
      if (ok) {
        DivInPlace(norm, &y);
        for (std::size_t i = 0; i < n; ++i) {
          if (!std::isfinite(linalg::AsDouble(y[i]))) ok = false;
        }
      }
      if (ok) {
        x = y;
      } else {
        // Scrubbed restart from the deterministic seed direction.
        for (std::size_t i = 0; i < n; ++i) {
          x[i] = T(1.0 / static_cast<double>(1 + i + pair_idx));
        }
      }
    }
    // Rayleigh quotient of the converged direction.
    const linalg::Vector<T> bx = MatVec(b, x);
    const T num = Dot(x, bx);
    const T den = Dot(x, x);
    Eigenpair pair;
    pair.value = linalg::AsDouble(num / den);
    pair.vector = ToDouble(x);
    pairs.push_back(std::move(pair));
    found.push_back(std::move(x));
  }
  return pairs;
}

}  // namespace robustify::apps
