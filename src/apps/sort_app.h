// Sort (paper Section 4.2, Figure 6.1).
//
// Baseline: insertion sort whose comparisons run on the faulty FPU — one
// inverted comparison permanently misplaces an element.
//
// Robust: sorting as the assignment LP  max sum_ij P_ij * v_i * r_j  over
// doubly-stochastic P with increasing position scores r_j (rearrangement
// inequality: the maximizer places larger values at larger positions).  The
// cost products are recomputed inside every objective/gradient evaluation,
// so a faulted product perturbs one descent step instead of the problem.
#pragma once

#include <cstddef>
#include <vector>

#include "apps/configs.h"
#include "linalg/scalar.h"
#include "linalg/vector.h"
#include "opt/sgd.h"
#include "opt/workspace.h"

namespace robustify::apps {

struct RobustSortResult {
  bool valid = false;
  std::vector<double> output;
};

// Exact multiset copy of `input`, in non-decreasing order (clean check).
bool IsSortedCopyOf(const std::vector<double>& output, const std::vector<double>& input);

template <class T>
std::vector<double> BaselineSort(const std::vector<double>& input) {
  std::vector<T> work;
  work.reserve(input.size());
  for (const double v : input) work.push_back(T(v));
  // Insertion sort: every comparison is a faulty FPU subtraction.  Moves
  // copy the stored bits, so values are never corrupted — only the order.
  for (std::size_t i = 1; i < work.size(); ++i) {
    const T key = work[i];
    std::size_t j = i;
    while (j > 0 && key < work[j - 1]) {
      work[j] = work[j - 1];
      --j;
    }
    work[j] = key;
  }
  std::vector<double> out;
  out.reserve(work.size());
  for (const T& v : work) out.push_back(linalg::AsDouble(v));
  return out;
}

namespace detail {

// Penalized assignment objective for sorting.  Variables: P (n x n,
// row-major).  F(P) = -sum P_ij v_i r_j + W * (row/column sums == 1)^2
// penalties + box penalties.  v_i and r_j live in reliable memory; their
// products are evaluated in T on each call.
template <class T>
class SortObjective {
 public:
  // `workspace` provides the row/column-excess scratch; the two
  // std::vector<T> this replaces were the hottest allocation site of the
  // whole fig-6 suite (6.3M heap allocations per fig6_1 run).  The leases
  // are taken once here — at 5-element problem sizes even a free-list
  // Borrow per Gradient call shows up against ~100 flops of work.
  SortObjective(const std::vector<double>& values, double weight,
                opt::Workspace<T>* workspace)
      : values_(values),
        n_(values.size()),
        weight_(weight),
        row_lease_(workspace->Borrow(values.size())),
        col_lease_(workspace->Borrow(values.size())) {}

  void SetPenaltyScale(double s) { penalty_scale_ = s; }

  T Value(const linalg::Vector<T>& p) const {
    const T w(weight_ * penalty_scale_);
    T value(0);
    for (std::size_t i = 0; i < n_; ++i) {
      const T vi(values_[i]);
      for (std::size_t j = 0; j < n_; ++j) {
        value -= vi * T(Rank(j)) * p[i * n_ + j];
      }
    }
    for (std::size_t i = 0; i < n_; ++i) {
      T row(0);
      for (std::size_t j = 0; j < n_; ++j) row += p[i * n_ + j];
      const T excess = row - T(1);
      value += w * excess * excess;
    }
    for (std::size_t j = 0; j < n_; ++j) {
      T col(0);
      for (std::size_t i = 0; i < n_; ++i) col += p[i * n_ + j];
      const T excess = col - T(1);
      value += w * excess * excess;
    }
    for (std::size_t k = 0; k < n_ * n_; ++k) {
      // Box-penalty activity decided by the reliable controller.
      const T lo = T(0) - p[k];
      if (linalg::AsDouble(lo) > 0.0) value += w * lo * lo;
      const T hi = p[k] - T(1);
      if (linalg::AsDouble(hi) > 0.0) value += w * hi * hi;
    }
    return value;
  }

  void Gradient(const linalg::Vector<T>& p, linalg::Vector<T>* g) const {
    const T two_w(2.0 * weight_ * penalty_scale_);
    // Raw restrict pointers: the pooled buffers are distinct from p and g,
    // but unlike a fresh operator-new block the compiler cannot see that on
    // its own, and the lost no-alias fact costs ~25% in these loops.
    T* ROBUSTIFY_RESTRICT row_excess = row_lease_->data();
    T* ROBUSTIFY_RESTRICT col_excess = col_lease_->data();
    const T* ROBUSTIFY_RESTRICT pp = p.data();
    T* ROBUSTIFY_RESTRICT gp = g->data();
    for (std::size_t i = 0; i < n_; ++i) {
      T row(0);
      for (std::size_t j = 0; j < n_; ++j) row += pp[i * n_ + j];
      row_excess[i] = row - T(1);
    }
    for (std::size_t j = 0; j < n_; ++j) {
      T col(0);
      for (std::size_t i = 0; i < n_; ++i) col += pp[i * n_ + j];
      col_excess[j] = col - T(1);
    }
    for (std::size_t i = 0; i < n_; ++i) {
      const T vi(values_[i]);
      for (std::size_t j = 0; j < n_; ++j) {
        T grad = -(vi * T(Rank(j))) + two_w * (row_excess[i] + col_excess[j]);
        const T& pij = pp[i * n_ + j];
        const T lo = T(0) - pij;
        if (linalg::AsDouble(lo) > 0.0) grad -= two_w * lo;
        const T hi = pij - T(1);
        if (linalg::AsDouble(hi) > 0.0) grad += two_w * hi;
        gp[i * n_ + j] = grad;
      }
    }
  }

 private:
  double Rank(std::size_t j) const {
    return static_cast<double>(j + 1) / static_cast<double>(n_);
  }

  const std::vector<double>& values_;
  std::size_t n_;
  double weight_;
  // Held for the objective's lifetime; Gradient is const, the scratch is not.
  mutable typename opt::Workspace<T>::Lease row_lease_;
  mutable typename opt::Workspace<T>::Lease col_lease_;
  double penalty_scale_ = 1.0;
};

}  // namespace detail

template <class T>
RobustSortResult RobustSort(const std::vector<double>& input, const LpSolveConfig& config,
                            opt::Workspace<T>* workspace = nullptr) {
  const std::size_t n = input.size();
  opt::Workspace<T>& ws =
      workspace != nullptr ? *workspace : opt::ThreadWorkspace<T>();
  detail::SortObjective<T> objective(input, config.penalty_weight, &ws);
  opt::SgdOptions options = config.sgd;
  if (config.anneal && options.phases.empty()) {
    options.phases = core::AnnealedPenalty(config.anneal_phases, config.anneal_factor);
  }
  // Start from the uniform doubly-stochastic matrix.
  linalg::Vector<T> p(n * n, T(1.0 / static_cast<double>(n)));
  p = opt::MinimizeSgd(objective, std::move(p), options, &ws);

  RobustSortResult result;
  result.valid = AllFinite(p);
  result.output.assign(n, 0.0);
  // Round: per position (largest rank first), take the best unused element
  // by the reliable readout of P.
  std::vector<bool> used(n, false);
  for (std::size_t j = 0; j < n; ++j) {
    int best = -1;
    double best_score = -1e300;
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const double score = linalg::AsDouble(p[i * n + j]);
      if (best < 0 || score > best_score) {
        best = static_cast<int>(i);
        best_score = score;
      }
    }
    used[static_cast<std::size_t>(best)] = true;
    result.output[j] = input[static_cast<std::size_t>(best)];
  }
  return result;
}

}  // namespace robustify::apps
