#include "apps/least_squares.h"

#include <random>

#include "linalg/random.h"

namespace robustify::apps {

LsqProblem MakeRandomLsqProblem(std::size_t m, std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  LsqProblem p;
  p.a = linalg::RandomMatrix(m, n, rng);
  p.exact = linalg::RandomVector(n, rng);
  p.b = linalg::MatVec(p.a, p.exact);
  return p;
}

}  // namespace robustify::apps
