// All-pairs shortest paths as per-source LPs (paper Section 4.6,
// Eqs. 4.10-4.12):
//   max sum_v d_v   s.t.  d_v - d_u <= w_uv for every edge (u,v), d_s = 0
// whose optimum is exactly the shortest-path distances.
#pragma once

#include <cstddef>
#include <vector>

#include "apps/configs.h"
#include "graph/shortest_paths.h"
#include "graph/types.h"
#include "linalg/matrix.h"
#include "linalg/scalar.h"
#include "linalg/vector.h"
#include "opt/lp.h"
#include "opt/sgd.h"
#include "opt/workspace.h"

namespace robustify::apps {

struct ApspResult {
  bool valid = false;
  linalg::Matrix<double> distances;
};

// max_{ij} |d(i,j) - exact(i,j)| over reachable pairs; +inf on non-finite.
double MaxAbsDistanceError(const linalg::Matrix<double>& d,
                           const linalg::Matrix<double>& exact);

template <class T>
ApspResult RobustApsp(const graph::Digraph& g, const ApspConfig& config,
                      opt::Workspace<T>* workspace = nullptr) {
  opt::Workspace<T>& ws =
      workspace != nullptr ? *workspace : opt::ThreadWorkspace<T>();
  const std::size_t n = static_cast<std::size_t>(g.nodes);
  ApspResult result;
  result.valid = true;
  result.distances = linalg::Matrix<double>(n, n);

  for (int s = 0; s < g.nodes; ++s) {
    // Variables: d_v for v != s (index v, with v>s shifted down by one).
    const std::size_t vars = n - 1;
    auto var_of = [&](int v) {
      return static_cast<int>(v < s ? v : v - 1);
    };
    std::vector<double> cost(vars, -1.0);  // maximize sum d_v
    std::vector<double> lower(vars, 0.0);
    std::vector<double> upper(vars, 1e6);
    std::vector<opt::LpConstraint> constraints;
    for (const auto& e : g.edges) {
      opt::LpConstraint con;  // d_to - d_from <= w
      con.rhs = e.weight;
      if (e.to != s) con.terms.push_back({var_of(e.to), 1.0});
      if (e.from != s) con.terms.push_back({var_of(e.from), -1.0});
      if (con.terms.empty()) continue;
      constraints.push_back(std::move(con));
    }
    opt::PenalizedLp<T> lp(std::move(cost), std::move(constraints), std::move(lower),
                           std::move(upper), config.lp.penalty_weight,
                           config.lp.precondition);
    opt::SgdOptions options = config.lp.sgd;
    if (config.lp.anneal && options.phases.empty()) {
      options.phases =
          core::AnnealedPenalty(config.lp.anneal_phases, config.lp.anneal_factor);
    }
    linalg::Vector<T> d(vars);
    d = opt::MinimizeSgd(lp, std::move(d), options, &ws);

    if (!AllFinite(d)) result.valid = false;
    result.distances(static_cast<std::size_t>(s), static_cast<std::size_t>(s)) = 0.0;
    for (int v = 0; v < g.nodes; ++v) {
      if (v == s) continue;
      result.distances(static_cast<std::size_t>(s), static_cast<std::size_t>(v)) =
          linalg::AsDouble(d[static_cast<std::size_t>(var_of(v))]);
    }
  }
  return result;
}

}  // namespace robustify::apps
