// Dense vector templated on the scalar type.
//
// Instantiated with `double` for clean/oracle math and with faulty::Real to
// run "on the stochastic processor".  Element storage and moves are
// reliable (protected memory); only arithmetic on the elements is faulty.
#pragma once

#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <type_traits>
#include <vector>

#include "faulty/block_engine.h"
#include "faulty/real.h"
#include "linalg/faulty_blas.h"
#include "linalg/scalar.h"

// No-alias annotation for hot loops over pooled scratch buffers.  A buffer
// from opt::Workspace really is distinct from every other live vector, but
// unlike a fresh operator-new block the compiler cannot prove that; without
// the annotation the reuse costs ~25% in the gradient kernels.
#if defined(__GNUC__) || defined(__clang__)
#define ROBUSTIFY_RESTRICT __restrict__
#else
#define ROBUSTIFY_RESTRICT
#endif

namespace robustify::linalg {

template <class T>
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n) : data_(n, T(0)) {}
  Vector(std::size_t n, T value) : data_(n, value) {}
  Vector(std::initializer_list<T> init) : data_(init) {}
  explicit Vector(std::vector<T> data) : data_(std::move(data)) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  // Resize-without-free: growing past capacity reallocates, but shrinking
  // (or regrowing within capacity) never returns memory to the allocator —
  // the contract opt::Workspace relies on to keep hot paths allocation-free
  // after warm-up.  New elements are value-initialized to T(0).
  void resize(std::size_t n) { data_.resize(n, T(0)); }

  // Reliable element-wise copy into existing (same-capacity) storage.
  void CopyFrom(const Vector<T>& other) {
    data_.resize(other.data_.size(), T(0));
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] = other.data_[i];
  }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  std::vector<T> data_;
};

namespace detail {

// The engine fork every faulty::Real kernel takes: block dispatches to the
// bulk faulty-BLAS layer, scalar (the equivalence oracle) falls through to
// the templated per-op loop below it.  `double` data never forks — clean
// math touches the injector in neither engine.
template <class T>
inline bool UseBlockKernels() {
  if constexpr (std::is_same_v<T, faulty::Real>) {
    // Routed memory loads force the templated per-scalar loops on both
    // engines — the load hooks (faulty::LoadElem) live there, and running
    // them everywhere is what keeps block and scalar bit-identical when
    // the model corrupts loads.
    return faulty::BlockEngineActive() && !faulty::LoadsRouted();
  } else {
    return false;
  }
}

// Short-row kernels (the solvers' 10-column matvec chains) lose to the
// per-scalar path once the mean clean run shrinks below a row: the fault
// machinery dominates and the bulk probe is pure overhead.  They
// additionally gate on the active injector's rate
// (FaultInjector::kBulkProfitableMaxRate); the long contiguous kernels keep
// bulk runs at every rate.  Purely a speed choice — both paths are
// bit-identical.
inline bool BulkMatVecProfitable() {
  const faulty::FaultInjector* inj = faulty::detail::tls_injector;
  return inj == nullptr || inj->BulkProfitable();
}

}  // namespace detail

template <class T>
T Dot(const Vector<T>& a, const Vector<T>& b) {
  if (detail::UseBlockKernels<T>()) {
    return T(blas::DotAcc(a.size(), 0.0, faulty::AsDoubleArray(a.data()), 1,
                          faulty::AsDoubleArray(b.data()), 1));
  }
  T acc(0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Explicit statements pin the load order (a, then b) — the injector's
    // routed-load stream must not depend on unspecified operand evaluation
    // order.  LoadElem is the identity unless the model corrupts loads.
    const T av = faulty::LoadElem(a[i]);
    const T bv = faulty::LoadElem(b[i]);
    acc += av * bv;
  }
  return acc;
}

// y += alpha * x — the Axpy update under CG, SGD, and power iteration.
// x and y must not alias.
template <class T>
void AxpyInPlace(const T& alpha, const Vector<T>& x, Vector<T>* y) {
  const std::size_t n = x.size();
  if (detail::UseBlockKernels<T>()) {
    blas::Axpy(n, AsDouble(alpha), faulty::AsDoubleArray(x.data()), 1,
               faulty::AsDoubleArray(y->data()), 1);
    return;
  }
  const T* ROBUSTIFY_RESTRICT xp = x.data();
  T* ROBUSTIFY_RESTRICT yp = y->data();
  for (std::size_t i = 0; i < n; ++i) {
    const T xv = faulty::LoadElem(xp[i]);
    const T yv = faulty::LoadElem(yp[i]);
    yp[i] = yv + alpha * xv;
  }
}

// y -= alpha * x.  x and y must not alias.
template <class T>
void AxmyInPlace(const T& alpha, const Vector<T>& x, Vector<T>* y) {
  const std::size_t n = x.size();
  if (detail::UseBlockKernels<T>()) {
    blas::Axmy(n, AsDouble(alpha), faulty::AsDoubleArray(x.data()), 1,
               faulty::AsDoubleArray(y->data()), 1);
    return;
  }
  const T* ROBUSTIFY_RESTRICT xp = x.data();
  T* ROBUSTIFY_RESTRICT yp = y->data();
  for (std::size_t i = 0; i < n; ++i) {
    const T xv = faulty::LoadElem(xp[i]);
    const T yv = faulty::LoadElem(yp[i]);
    yp[i] = yv - alpha * xv;
  }
}

// y -= x.  x and y must not alias.
template <class T>
void SubInPlace(const Vector<T>& x, Vector<T>* y) {
  const std::size_t n = x.size();
  if (detail::UseBlockKernels<T>()) {
    blas::Sub(n, faulty::AsDoubleArray(x.data()), faulty::AsDoubleArray(y->data()));
    return;
  }
  const T* ROBUSTIFY_RESTRICT xp = x.data();
  T* ROBUSTIFY_RESTRICT yp = y->data();
  for (std::size_t i = 0; i < n; ++i) {
    const T xv = faulty::LoadElem(xp[i]);
    const T yv = faulty::LoadElem(yp[i]);
    yp[i] = yv - xv;
  }
}

// p = s + beta * p — the CG search-direction recurrence.  s and p must not
// alias.
template <class T>
void XpbyInPlace(const Vector<T>& s, const T& beta, Vector<T>* p) {
  const std::size_t n = s.size();
  if (detail::UseBlockKernels<T>()) {
    blas::Xpby(n, faulty::AsDoubleArray(s.data()), AsDouble(beta),
               faulty::AsDoubleArray(p->data()));
    return;
  }
  const T* ROBUSTIFY_RESTRICT sp = s.data();
  T* ROBUSTIFY_RESTRICT pp = p->data();
  for (std::size_t i = 0; i < n; ++i) {
    const T sv = faulty::LoadElem(sp[i]);
    const T pv = faulty::LoadElem(pp[i]);
    pp[i] = sv + beta * pv;
  }
}

// x /= divisor (one faulty division per element).
template <class T>
void DivInPlace(const T& divisor, Vector<T>* x) {
  const std::size_t n = x->size();
  if (detail::UseBlockKernels<T>()) {
    blas::DivScal(n, AsDouble(divisor), faulty::AsDoubleArray(x->data()));
    return;
  }
  T* ROBUSTIFY_RESTRICT xp = x->data();
  for (std::size_t i = 0; i < n; ++i) {
    const T xv = faulty::LoadElem(xp[i]);
    xp[i] = xv / divisor;
  }
}

// x *= alpha (one faulty multiplication per element).
template <class T>
void ScalInPlace(const T& alpha, Vector<T>* x) {
  const std::size_t n = x->size();
  if (detail::UseBlockKernels<T>()) {
    blas::Scal(n, AsDouble(alpha), faulty::AsDoubleArray(x->data()));
    return;
  }
  T* ROBUSTIFY_RESTRICT xp = x->data();
  for (std::size_t i = 0; i < n; ++i) {
    const T xv = faulty::LoadElem(xp[i]);
    xp[i] = xv * alpha;
  }
}

template <class T>
T NormSquared(const Vector<T>& v) {
  return Dot(v, v);
}

template <class T>
T Norm(const Vector<T>& v) {
  if (detail::UseBlockKernels<T>()) {
    return T(blas::Nrm2(v.size(), faulty::AsDoubleArray(v.data())));
  }
  using std::sqrt;
  return sqrt(NormSquared(v));
}

template <class T>
bool AllFinite(const Vector<T>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(AsDouble(v[i]))) return false;
  }
  return true;
}

template <class T>
Vector<double> ToDouble(const Vector<T>& v) {
  Vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = AsDouble(v[i]);
  return out;
}

template <class T>
Vector<T> Cast(const Vector<double>& v) {
  Vector<T> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = T(v[i]);
  return out;
}

}  // namespace robustify::linalg
