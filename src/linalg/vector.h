// Dense vector templated on the scalar type.
//
// Instantiated with `double` for clean/oracle math and with faulty::Real to
// run "on the stochastic processor".  Element storage and moves are
// reliable (protected memory); only arithmetic on the elements is faulty.
#pragma once

#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <vector>

#include "linalg/scalar.h"

// No-alias annotation for hot loops over pooled scratch buffers.  A buffer
// from opt::Workspace really is distinct from every other live vector, but
// unlike a fresh operator-new block the compiler cannot prove that; without
// the annotation the reuse costs ~25% in the gradient kernels.
#if defined(__GNUC__) || defined(__clang__)
#define ROBUSTIFY_RESTRICT __restrict__
#else
#define ROBUSTIFY_RESTRICT
#endif

namespace robustify::linalg {

template <class T>
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n) : data_(n, T(0)) {}
  Vector(std::size_t n, T value) : data_(n, value) {}
  Vector(std::initializer_list<T> init) : data_(init) {}
  explicit Vector(std::vector<T> data) : data_(std::move(data)) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  // Resize-without-free: growing past capacity reallocates, but shrinking
  // (or regrowing within capacity) never returns memory to the allocator —
  // the contract opt::Workspace relies on to keep hot paths allocation-free
  // after warm-up.  New elements are value-initialized to T(0).
  void resize(std::size_t n) { data_.resize(n, T(0)); }

  // Reliable element-wise copy into existing (same-capacity) storage.
  void CopyFrom(const Vector<T>& other) {
    data_.resize(other.data_.size(), T(0));
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] = other.data_[i];
  }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  std::vector<T> data_;
};

template <class T>
T Dot(const Vector<T>& a, const Vector<T>& b) {
  T acc(0);
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

template <class T>
T NormSquared(const Vector<T>& v) {
  return Dot(v, v);
}

template <class T>
T Norm(const Vector<T>& v) {
  using std::sqrt;
  return sqrt(NormSquared(v));
}

template <class T>
bool AllFinite(const Vector<T>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(AsDouble(v[i]))) return false;
  }
  return true;
}

template <class T>
Vector<double> ToDouble(const Vector<T>& v) {
  Vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = AsDouble(v[i]);
  return out;
}

template <class T>
Vector<T> Cast(const Vector<double>& v) {
  Vector<T> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = T(v[i]);
  return out;
}

}  // namespace robustify::linalg
