// Tiled faulty direct solvers: blocked Cholesky and blocked Householder QR
// as dependency-graph tile tasks over the faulty-BLAS strided primitives.
//
// The monolithic baselines in lsq.h cap problem size at toy n and leave
// every core but one idle inside a trial.  This engine stores the Gram
// matrix by contiguous tiles and decomposes the factorization into the
// classic potrf / trsm / syrk / gemm tile tasks (QR into Householder panel
// tasks + trailing-block updates), executed by harness::TaskGraph on the
// ParallelFor pool — parallelism *inside* one solve, faults per solve
// instead of per sweep.
//
// Determinism contract:
//  * Every task owns its own FaultInjector, seeded from
//    faulty::DeriveStreamSeed(solve seed, task id).  Task ids are assigned
//    by graph construction order, which depends only on (n, tile), never on
//    the worker count or execution interleaving — so a solve is
//    bit-reproducible at any thread count, including the campaign CSVs
//    built from it.
//  * At fault rate 0 the tiled solve is bit-identical to the monolithic
//    lsq.h baseline: every tile kernel subtracts its partial dot products
//    in exactly the global element order the monolithic solver uses (gemm
//    chains run in increasing k, then trsm/potrf finish the within-tile
//    prefix), and carried accumulators make the chunked chains the same
//    IEEE-754 op sequence as one full-length StridedDotAccNeg (the build
//    pins -ffp-contract=off, so the compiler cannot reassociate them).
//  * All faulty FP work happens inside tasks; packing and readout are
//    reliable copies.  The solve consumes nothing from any ambient
//    (thread-local) injector the caller may have installed.
//
// The engine owns its workspace and reuses it across solves: after a warm
// solve of the same shape, another solve with threads <= 1 performs no
// allocation (pinned by tests/test_allocation.cpp).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "faulty/block_engine.h"
#include "faulty/fault_injector.h"
#include "faulty/fault_model.h"
#include "faulty/lfsr.h"
#include "harness/task_graph.h"
#include "linalg/matrix.h"
#include "linalg/scalar.h"
#include "linalg/strided.h"
#include "linalg/vector.h"

namespace robustify::linalg {

// Per-solve fault configuration.  With inject == false (the default) the
// solve is clean regardless of scalar type — the oracle path.  The model is
// taken as-is; callers wanting the ROBUSTIFY_FAULT_MODEL env override must
// resolve it first (faulty::ResolveFaultModel), exactly like direct
// FaultInjector construction.
struct TileFaultConfig {
  bool inject = false;
  double fault_rate = 0.0;
  // Captured by pointer; must outlive the solve (use SharedBitDistribution).
  const faulty::BitDistribution* bits = nullptr;
  std::uint64_t seed = 1;
  faulty::FaultInjector::Strategy strategy = faulty::FaultInjector::Strategy::kAuto;
  faulty::Engine engine = faulty::Engine::kAuto;
  faulty::RngMode rng = faulty::RngMode::kAuto;
  faulty::FaultModel model;
};

struct TiledOptions {
  // Tile edge (Cholesky) / panel width (QR); clamped to the problem size.
  std::size_t tile = 128;
  // In-solve workers: > 0 explicit, else the ROBUSTIFY_TILE_THREADS env var
  // (re-read every solve, not cached), else the harness default
  // (ROBUSTIFY_THREADS / hardware concurrency).  Results never depend on it.
  int threads = 0;
  TileFaultConfig fault;
};

namespace detail {

// Worker-count resolution for the in-solve task pool (tiled.cpp).
int ResolveTileThreads(int requested);

// Sums the per-task scope stats into one solve-level ContextStats.
faulty::ContextStats SumTaskStats(const std::vector<faulty::ContextStats>& stats);

// RAII: install a task's injector as the thread-local one, restore after.
class TileInjectorScope {
 public:
  explicit TileInjectorScope(faulty::FaultInjector* injector)
      : previous_(faulty::detail::ExchangeThreadInjector(injector)) {}
  ~TileInjectorScope() { faulty::detail::ExchangeThreadInjector(previous_); }
  TileInjectorScope(const TileInjectorScope&) = delete;
  TileInjectorScope& operator=(const TileInjectorScope&) = delete;

 private:
  faulty::FaultInjector* previous_;
};

}  // namespace detail

// Square matrix stored by contiguous tiles: tile (i, j) is a packed
// row-major dim(i) x dim(j) block at a fixed tile*tile slot stride (edge
// tiles leave their slot tail unused).  Only the lower triangle of tiles is
// written by the Cholesky path; the rest is never read.
template <class T>
class TiledMatrix {
 public:
  // Resize-without-free, same contract as Vector::resize.  Contents are
  // unspecified; the packing / formation step overwrites what is read.
  void Reset(std::size_t n, std::size_t tile) {
    n_ = n;
    b_ = tile == 0 ? n : std::min(tile, n == 0 ? std::size_t{1} : n);
    nt_ = n_ == 0 ? 0 : (n_ + b_ - 1) / b_;
    data_.resize(nt_ * nt_ * b_ * b_, T(0));
  }

  std::size_t n() const { return n_; }
  std::size_t tile_size() const { return b_; }
  std::size_t tiles() const { return nt_; }
  // Edge dimension of tile row/column t.
  std::size_t dim(std::size_t t) const { return std::min(b_, n_ - t * b_); }

  T* tile(std::size_t i, std::size_t j) { return data_.data() + (i * nt_ + j) * b_ * b_; }
  const T* tile(std::size_t i, std::size_t j) const {
    return data_.data() + (i * nt_ + j) * b_ * b_;
  }

 private:
  std::size_t n_ = 0;
  std::size_t b_ = 1;
  std::size_t nt_ = 0;
  std::vector<T> data_;
};

// Task kinds for the tile graphs (TaskTag::kind).
enum TiledTaskKind : int {
  kTileFormG = 1,   // (i, j): Gram tile A_i^T A_j from the packed A^T strips
  kTileFormC,       // (i):    rhs tile A_i^T b
  kTilePotrf,       // (k):    Cholesky of diagonal tile
  kTileTrsm,        // (i, k): triangular solve of panel tile against (k, k)
  kTileSyrk,        // (i, k): rank-b update of diagonal tile (i, i)
  kTileGemm,        // (i, j, k): rank-b update of tile (i, j)
  kTileFwdUpdate,   // (i, k): rhs_i -= L(i,k) y_k
  kTileFwdSolve,    // (i):    forward solve against diagonal tile
  kTileBackSolve,   // (i):    back-substitution chain tile (merged updates)
  kTileQrPanel,     // (p):    Householder panel + in-panel and rhs updates
  kTileQrUpdate,    // (p, j): apply panel p's reflectors to column block j
  kTileQrBackSub,   // ():     back-substitution on R
};

// The tiled solver engine.  One instance per thread (or per caller); reuse
// it to amortize the workspace.  Instantiated with faulty::Real for faulty
// solves and double as the clean oracle.
template <class T>
class TiledLsqEngine {
 public:
  // Solves G x = c for SPD G via tiled Cholesky.
  void SolveSpd(const Matrix<double>& g, const Vector<double>& c,
                const TiledOptions& opts, Vector<double>* x,
                faulty::ContextStats* stats = nullptr) {
    const std::size_t n = g.rows();
    Prepare(n, opts.tile);
    PackSpd(g);
    PackRhs(c);
    BuildCholeskyGraph(/*form_gram=*/false, /*rows=*/n);
    RunCholesky(opts);
    ReadOutRhs(x);
    if (stats) *stats = detail::SumTaskStats(task_stats_);
  }

  // min ||A x - b|| via the normal equations and tiled Cholesky
  // (the tiled form of lsq.h's SolveLsqCholesky; bit-identical to it at
  // fault rate 0).
  void SolveCholesky(const Matrix<double>& a, const Vector<double>& b,
                     const TiledOptions& opts, Vector<double>* x,
                     faulty::ContextStats* stats = nullptr) {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    Prepare(n, opts.tile);
    PackTranspose(a);
    PackVector(b, &b_);
    rhs_.resize(n);
    BuildCholeskyGraph(/*form_gram=*/true, /*rows=*/m);
    RunCholesky(opts);
    ReadOutRhs(x);
    if (stats) *stats = detail::SumTaskStats(task_stats_);
  }

  // min ||A x - b|| via blocked Householder QR (panel width = opts.tile;
  // bit-identical to lsq.h's SolveLsqQr at fault rate 0).
  void SolveQr(const Matrix<double>& a, const Vector<double>& b,
               const TiledOptions& opts, Vector<double>* x,
               faulty::ContextStats* stats = nullptr) {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    panel_ = opts.tile == 0 ? n : std::min(opts.tile, n == 0 ? std::size_t{1} : n);
    PackTranspose(a);
    PackVector(b, &b_);
    v_.Reset(n, m);
    vtv_.resize(n);
    x_.resize(n);
    BuildQrGraph(m, n);
    RunQr(opts, m, n);
    x->resize(n);
    for (std::size_t i = 0; i < n; ++i) (*x)[i] = AsDouble(x_[i]);
    if (stats) *stats = detail::SumTaskStats(task_stats_);
  }

 private:
  // ---- resource ids --------------------------------------------------------
  std::size_t GramRes(std::size_t i, std::size_t j) const { return i * g_.tiles() + j; }
  std::size_t RhsRes(std::size_t i) const { return g_.tiles() * g_.tiles() + i; }
  std::size_t QrColRes(std::size_t p) const { return p; }
  std::size_t QrRhsRes(std::size_t np) const { return np; }
  std::size_t QrPanelRes(std::size_t np, std::size_t p) const { return np + 1 + p; }

  // ---- packing (reliable copies, no FP ops) --------------------------------
  void Prepare(std::size_t n, std::size_t tile) {
    g_.Reset(n, tile);
    rhs_.resize(n);
  }

  void PackSpd(const Matrix<double>& g) {
    const std::size_t b = g_.tile_size();
    for (std::size_t ti = 0; ti < g_.tiles(); ++ti) {
      for (std::size_t tj = 0; tj <= ti; ++tj) {
        T* t = g_.tile(ti, tj);
        const std::size_t ld = g_.dim(tj);
        for (std::size_t r = 0; r < g_.dim(ti); ++r) {
          const double* src = g.row(ti * b + r) + tj * b;
          for (std::size_t c = 0; c < ld; ++c) t[r * ld + c] = T(src[c]);
        }
      }
    }
  }

  void PackRhs(const Vector<double>& c) {
    for (std::size_t i = 0; i < c.size(); ++i) rhs_[i] = T(c[i]);
  }

  void PackTranspose(const Matrix<double>& a) {
    at_.Reset(a.cols(), a.rows());
    for (std::size_t r = 0; r < a.rows(); ++r) {
      const double* src = a.row(r);
      for (std::size_t j = 0; j < a.cols(); ++j) at_(j, r) = T(src[j]);
    }
  }

  void PackVector(const Vector<double>& src, Vector<T>* dst) {
    dst->resize(src.size());
    for (std::size_t i = 0; i < src.size(); ++i) (*dst)[i] = T(src[i]);
  }

  void ReadOutRhs(Vector<double>* x) {
    x->resize(rhs_.size());
    for (std::size_t i = 0; i < rhs_.size(); ++i) (*x)[i] = AsDouble(rhs_[i]);
  }

  // ---- graph construction --------------------------------------------------
  void BuildCholeskyGraph(bool form_gram, std::size_t rows) {
    form_rows_ = rows;
    const std::size_t nt = g_.tiles();
    graph_.Reset(nt * nt + nt);
    if (form_gram) {
      for (std::size_t i = 0; i < nt; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
          const int t = graph_.AddTask({kTileFormG, static_cast<int>(i),
                                        static_cast<int>(j), 0});
          graph_.Writes(t, GramRes(i, j));
        }
        const int t = graph_.AddTask({kTileFormC, static_cast<int>(i), 0, 0});
        graph_.Writes(t, RhsRes(i));
      }
    }
    for (std::size_t k = 0; k < nt; ++k) {
      const int potrf = graph_.AddTask({kTilePotrf, 0, 0, static_cast<int>(k)});
      graph_.Writes(potrf, GramRes(k, k));
      for (std::size_t i = k + 1; i < nt; ++i) {
        const int trsm = graph_.AddTask({kTileTrsm, static_cast<int>(i), 0,
                                         static_cast<int>(k)});
        graph_.Reads(trsm, GramRes(k, k));
        graph_.Writes(trsm, GramRes(i, k));
      }
      for (std::size_t i = k + 1; i < nt; ++i) {
        const int syrk = graph_.AddTask({kTileSyrk, static_cast<int>(i), 0,
                                         static_cast<int>(k)});
        graph_.Reads(syrk, GramRes(i, k));
        graph_.Writes(syrk, GramRes(i, i));
        for (std::size_t j = k + 1; j < i; ++j) {
          const int gemm = graph_.AddTask({kTileGemm, static_cast<int>(i),
                                           static_cast<int>(j), static_cast<int>(k)});
          graph_.Reads(gemm, GramRes(i, k));
          graph_.Reads(gemm, GramRes(j, k));
          graph_.Writes(gemm, GramRes(i, j));
        }
      }
    }
    // Forward substitution: cross-tile updates in increasing k (the
    // monolithic subtraction order), then the within-tile solve.
    for (std::size_t i = 0; i < nt; ++i) {
      for (std::size_t k = 0; k < i; ++k) {
        const int upd = graph_.AddTask({kTileFwdUpdate, static_cast<int>(i), 0,
                                        static_cast<int>(k)});
        graph_.Reads(upd, GramRes(i, k));
        graph_.Reads(upd, RhsRes(k));
        graph_.Writes(upd, RhsRes(i));
      }
      const int fwd = graph_.AddTask({kTileFwdSolve, static_cast<int>(i), 0, 0});
      graph_.Reads(fwd, GramRes(i, i));
      graph_.Writes(fwd, RhsRes(i));
    }
    // Back substitution: one chain task per tile, which also applies the
    // cross-tile updates itself — per element the monolithic order is
    // within-tile first, then tiles k > i in increasing k, which a separate
    // pre-applied update task could not reproduce.
    for (std::size_t i = nt; i-- > 0;) {
      const int back = graph_.AddTask({kTileBackSolve, static_cast<int>(i), 0, 0});
      graph_.Reads(back, GramRes(i, i));
      for (std::size_t k = i + 1; k < nt; ++k) {
        graph_.Reads(back, GramRes(k, i));
        graph_.Reads(back, RhsRes(k));
      }
      graph_.Writes(back, RhsRes(i));
    }
  }

  void BuildQrGraph(std::size_t m, std::size_t n) {
    const std::size_t np = n == 0 ? 0 : (n + panel_ - 1) / panel_;
    graph_.Reset(2 * np + 1);
    for (std::size_t p = 0; p < np; ++p) {
      const int panel = graph_.AddTask({kTileQrPanel, static_cast<int>(p), 0, 0});
      graph_.Writes(panel, QrColRes(p));
      graph_.Writes(panel, QrPanelRes(np, p));
      graph_.Writes(panel, QrRhsRes(np));
      for (std::size_t jb = p + 1; jb < np; ++jb) {
        const int upd = graph_.AddTask({kTileQrUpdate, static_cast<int>(p),
                                        static_cast<int>(jb), 0});
        graph_.Reads(upd, QrPanelRes(np, p));
        graph_.Writes(upd, QrColRes(jb));
      }
    }
    const int back = graph_.AddTask({kTileQrBackSub, 0, 0, 0});
    graph_.Reads(back, QrRhsRes(np));
    for (std::size_t p = 0; p < np; ++p) graph_.Reads(back, QrColRes(p));
    (void)m;
  }

  // ---- execution -----------------------------------------------------------
  template <class Exec>
  void RunAll(const TiledOptions& opts, Exec&& exec) {
    const TileFaultConfig& cfg = opts.fault;
    task_stats_.assign(static_cast<std::size_t>(graph_.size()), faulty::ContextStats{});
    const int workers = detail::ResolveTileThreads(opts.threads);
    graph_.Run(workers, [&](int id, const harness::TaskTag& tag) {
      if constexpr (std::is_same_v<T, faulty::Real>) {
        if (cfg.inject) {
          faulty::FaultInjector injector(
              cfg.fault_rate, *cfg.bits,
              faulty::DeriveStreamSeed(cfg.seed, static_cast<std::uint64_t>(id)),
              cfg.model, cfg.strategy, cfg.rng);
          faulty::EngineScope engine_scope(cfg.engine);
          detail::TileInjectorScope scope(&injector);
          exec(tag);
          task_stats_[static_cast<std::size_t>(id)] = injector.stats();
          return;
        }
      }
      // Clean path (oracle scalar type or inject == false): make sure no
      // ambient injector leaks into the tile kernels.
      detail::TileInjectorScope scope(nullptr);
      exec(tag);
    });
  }

  void RunCholesky(const TiledOptions& opts) {
    RunAll(opts, [this](const harness::TaskTag& tag) { ExecCholeskyTask(tag); });
  }

  void RunQr(const TiledOptions& opts, std::size_t m, std::size_t n) {
    RunAll(opts, [this, m, n](const harness::TaskTag& tag) { ExecQrTask(tag, m, n); });
  }

  // ---- Cholesky tile kernels ----------------------------------------------
  //
  // Every kernel carries the accumulator through detail::StridedDotAcc* so
  // the chunked per-element subtraction chains execute the exact op
  // sequence of the monolithic solver's full-length dots.
  void ExecCholeskyTask(const harness::TaskTag& tag) {
    using std::sqrt;
    const std::size_t b = g_.tile_size();
    switch (tag.kind) {
      case kTileFormG: {
        const std::size_t i = static_cast<std::size_t>(tag.i);
        const std::size_t j = static_cast<std::size_t>(tag.j);
        T* t = g_.tile(i, j);
        const std::size_t ld = g_.dim(j);
        for (std::size_t r = 0; r < g_.dim(i); ++r) {
          // Diagonal tiles: only the lower half is ever read.
          const std::size_t cmax = (i == j) ? r + 1 : ld;
          for (std::size_t c = 0; c < cmax; ++c) {
            // Monolithic operand order: row min(gi,gj) is x, row max is y.
            t[r * ld + c] = detail::StridedDotAcc(T(0), form_rows_, at_.row(j * b + c),
                                                  1, at_.row(i * b + r), 1);
          }
        }
        break;
      }
      case kTileFormC: {
        const std::size_t i = static_cast<std::size_t>(tag.i);
        for (std::size_t r = 0; r < g_.dim(i); ++r) {
          rhs_[i * b + r] = detail::StridedDotAcc(T(0), form_rows_, at_.row(i * b + r),
                                                  1, b_.data(), 1);
        }
        break;
      }
      case kTilePotrf: {
        const std::size_t k = static_cast<std::size_t>(tag.k);
        T* t = g_.tile(k, k);
        const std::size_t d = g_.dim(k);
        for (std::size_t r = 0; r < d; ++r) {
          for (std::size_t c = 0; c <= r; ++c) {
            T acc = detail::StridedDotAccNeg(t[r * d + c], c, t + r * d, 1, t + c * d, 1);
            t[r * d + c] = (r == c) ? sqrt(acc) : acc / t[c * d + c];
          }
        }
        break;
      }
      case kTileTrsm: {
        const std::size_t i = static_cast<std::size_t>(tag.i);
        const std::size_t k = static_cast<std::size_t>(tag.k);
        const T* diag = g_.tile(k, k);
        T* t = g_.tile(i, k);
        const std::size_t d = g_.dim(k);
        for (std::size_t r = 0; r < g_.dim(i); ++r) {
          for (std::size_t c = 0; c < d; ++c) {
            T acc = detail::StridedDotAccNeg(t[r * d + c], c, t + r * d, 1,
                                             diag + c * d, 1);
            t[r * d + c] = acc / diag[c * d + c];
          }
        }
        break;
      }
      case kTileSyrk: {
        const std::size_t i = static_cast<std::size_t>(tag.i);
        const std::size_t k = static_cast<std::size_t>(tag.k);
        const T* src = g_.tile(i, k);
        const std::size_t len = g_.dim(k);
        T* t = g_.tile(i, i);
        const std::size_t d = g_.dim(i);
        for (std::size_t r = 0; r < d; ++r) {
          for (std::size_t c = 0; c <= r; ++c) {
            t[r * d + c] = detail::StridedDotAccNeg(t[r * d + c], len, src + r * len, 1,
                                                    src + c * len, 1);
          }
        }
        break;
      }
      case kTileGemm: {
        const std::size_t i = static_cast<std::size_t>(tag.i);
        const std::size_t j = static_cast<std::size_t>(tag.j);
        const std::size_t k = static_cast<std::size_t>(tag.k);
        const T* left = g_.tile(i, k);
        const T* right = g_.tile(j, k);
        const std::size_t len = g_.dim(k);
        T* t = g_.tile(i, j);
        const std::size_t ld = g_.dim(j);
        for (std::size_t r = 0; r < g_.dim(i); ++r) {
          for (std::size_t c = 0; c < ld; ++c) {
            t[r * ld + c] = detail::StridedDotAccNeg(t[r * ld + c], len, left + r * len,
                                                     1, right + c * len, 1);
          }
        }
        break;
      }
      case kTileFwdUpdate: {
        const std::size_t i = static_cast<std::size_t>(tag.i);
        const std::size_t k = static_cast<std::size_t>(tag.k);
        const T* t = g_.tile(i, k);
        const std::size_t len = g_.dim(k);
        T* yi = rhs_.data() + i * b;
        const T* yk = rhs_.data() + k * b;
        for (std::size_t r = 0; r < g_.dim(i); ++r) {
          yi[r] = detail::StridedDotAccNeg(yi[r], len, t + r * len, 1, yk, 1);
        }
        break;
      }
      case kTileFwdSolve: {
        const std::size_t i = static_cast<std::size_t>(tag.i);
        const T* diag = g_.tile(i, i);
        const std::size_t d = g_.dim(i);
        T* yi = rhs_.data() + i * b;
        for (std::size_t r = 0; r < d; ++r) {
          T acc = detail::StridedDotAccNeg(yi[r], r, diag + r * d, 1, yi, 1);
          yi[r] = acc / diag[r * d + r];
        }
        break;
      }
      case kTileBackSolve: {
        const std::size_t i = static_cast<std::size_t>(tag.i);
        const T* diag = g_.tile(i, i);
        const std::size_t d = g_.dim(i);
        T* xi = rhs_.data() + i * b;
        for (std::size_t r = d; r-- > 0;) {
          // Monolithic order for element i*b + r: the within-tile rest of
          // the column first, then every tile below, k increasing.
          T acc = detail::StridedDotAccNeg(xi[r], d - r - 1, diag + (r + 1) * d + r,
                                           static_cast<std::ptrdiff_t>(d), xi + r + 1, 1);
          for (std::size_t k = i + 1; k < g_.tiles(); ++k) {
            acc = detail::StridedDotAccNeg(acc, g_.dim(k), g_.tile(k, i) + r,
                                           static_cast<std::ptrdiff_t>(g_.dim(i)),
                                           rhs_.data() + k * b, 1);
          }
          xi[r] = acc / diag[r * d + r];
        }
        break;
      }
      default: break;
    }
  }

  // ---- QR tasks ------------------------------------------------------------
  void ExecQrTask(const harness::TaskTag& tag, std::size_t m, std::size_t n) {
    using std::sqrt;
    switch (tag.kind) {
      case kTileQrPanel: {
        const std::size_t p = static_cast<std::size_t>(tag.i);
        const std::size_t k0 = p * panel_;
        const std::size_t k1 = std::min(k0 + panel_, n);
        for (std::size_t k = k0; k < k1; ++k) {
          T* colk = at_.row(k);
          const T norm2 =
              detail::StridedDotAcc(T(0), m - k, colk + k, 1, colk + k, 1);
          T alpha = sqrt(norm2);
          if (AsDouble(colk[k]) > 0.0) alpha = -alpha;
          T* vk = v_.row(k);
          vk[k] = colk[k] - alpha;
          for (std::size_t i = k + 1; i < m; ++i) vk[i] = colk[i];
          vtv_[k] = detail::StridedDotAcc(T(0), m - k, vk + k, 1, vk + k, 1);
          colk[k] = alpha;
          for (std::size_t i = k + 1; i < m; ++i) colk[i] = T(0);
          if (AsDouble(vtv_[k]) == 0.0) continue;
          // In-panel trailing columns, then the right-hand side — column j
          // and b both see H_k in increasing k, exactly like the monolithic
          // elimination.
          for (std::size_t j = k + 1; j < k1; ++j) {
            ApplyReflector(k, at_.row(j) + k, m - k);
          }
          ApplyReflector(k, b_.data() + k, m - k);
        }
        break;
      }
      case kTileQrUpdate: {
        const std::size_t p = static_cast<std::size_t>(tag.i);
        const std::size_t jb = static_cast<std::size_t>(tag.j);
        const std::size_t k0 = p * panel_;
        const std::size_t k1 = std::min(k0 + panel_, n);
        const std::size_t j0 = jb * panel_;
        const std::size_t j1 = std::min(j0 + panel_, n);
        for (std::size_t k = k0; k < k1; ++k) {
          if (AsDouble(vtv_[k]) == 0.0) continue;
          for (std::size_t j = j0; j < j1; ++j) {
            ApplyReflector(k, at_.row(j) + k, m - k);
          }
        }
        break;
      }
      case kTileQrBackSub: {
        const std::ptrdiff_t col = static_cast<std::ptrdiff_t>(m);
        for (std::size_t kk = n; kk-- > 0;) {
          T acc = b_[kk];
          if (kk + 1 < n) {
            acc = detail::StridedDotAccNeg(acc, n - kk - 1, &at_(kk + 1, kk), col,
                                           x_.data() + kk + 1, 1);
          }
          x_[kk] = acc / at_(kk, kk);
        }
        break;
      }
      default: break;
    }
  }

  // H_k v = v - (2 <v_k, v> / <v_k, v_k>) v_k applied to `len` elements
  // starting at row k — the same dot / scale / axmy triple as lsq.h.
  void ApplyReflector(std::size_t k, T* target, std::size_t len) {
    const T* vk = v_.row(k) + k;
    const T dot = detail::StridedDotAcc(T(0), len, vk, 1, target, 1);
    const T scale = T(2) * dot / vtv_[k];
    detail::StridedAxmy(len, scale, vk, 1, target, 1);
  }

  harness::TaskGraph graph_;
  TiledMatrix<T> g_;
  Matrix<T> at_;    // A^T: row j = column j of A (Cholesky-from-A and QR)
  Matrix<T> v_;     // QR Householder vectors, row k holds v_k at offset k
  Vector<T> rhs_;   // Cholesky rhs: c -> y -> x through the solve chain
  Vector<T> b_;     // packed right-hand side (QR works on it in place)
  Vector<T> vtv_;   // QR <v_k, v_k>
  Vector<T> x_;     // QR solution
  std::vector<faulty::ContextStats> task_stats_;
  std::size_t form_rows_ = 0;  // m of the A the Gram tiles are formed from
  std::size_t panel_ = 128;    // QR panel width
};

}  // namespace robustify::linalg
