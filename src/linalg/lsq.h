// Direct least-squares baselines: Householder QR, one-sided Jacobi SVD, and
// Cholesky on the normal equations.  Templated on the scalar so the same
// code is the clean oracle (double) and the faulty baseline (faulty::Real).
//
// Every loop bound is an integer decided by problem shape — never by a
// floating-point convergence test alone — so the solvers terminate even
// when faults corrupt the values they iterate on.
#pragma once

#include <cmath>
#include <cstddef>

#include "linalg/matrix.h"
#include "linalg/strided.h"
#include "linalg/vector.h"

namespace robustify::linalg {

enum class LsqBaseline { kSvd, kQr, kCholesky };

// min ||A x - b|| via Householder QR (A m x n, m >= n).
//
// Works on A^T so every Householder column is a contiguous row (the
// transpose is reliable copies, no FP op — the faulty op sequence is the
// column-oriented one).
template <class T>
Vector<T> SolveLsqQr(const Matrix<T>& a_in, Vector<T> b) {
  using std::sqrt;
  const std::size_t m = a_in.rows();
  const std::size_t n = a_in.cols();
  Matrix<T> a(n, m);  // row j = column j of A
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(j, i) = a_in(i, j);
  }
  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k (= row k of the transpose).
    T* colk = a.row(k);
    const T norm2 = detail::StridedDotAcc(T(0), m - k, colk + k, 1, colk + k, 1);
    T alpha = sqrt(norm2);
    if (AsDouble(colk[k]) > 0.0) alpha = -alpha;
    Vector<T> v(m - k);
    v[0] = colk[k] - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = colk[i];
    const T vtv = detail::StridedDotAcc(T(0), v.size(), v.data(), 1, v.data(), 1);
    colk[k] = alpha;
    for (std::size_t i = k + 1; i < m; ++i) colk[i] = T(0);
    if (AsDouble(vtv) == 0.0) continue;
    // Apply H = I - 2 v v^T / (v^T v) to the trailing columns and to b.
    for (std::size_t j = k + 1; j < n; ++j) {
      T* colj = a.row(j);
      const T dot = detail::StridedDotAcc(T(0), m - k, v.data(), 1, colj + k, 1);
      const T scale = T(2) * dot / vtv;
      detail::StridedAxmy(m - k, scale, v.data(), 1, colj + k, 1);
    }
    const T dot = detail::StridedDotAcc(T(0), m - k, v.data(), 1, b.data() + k, 1);
    const T scale = T(2) * dot / vtv;
    detail::StridedAxmy(m - k, scale, v.data(), 1, b.data() + k, 1);
  }
  // Back substitution on the n x n upper triangle: R(kk, j) = a(j, kk).
  const std::ptrdiff_t col = static_cast<std::ptrdiff_t>(m);  // stride in A^T
  Vector<T> x(n);
  for (std::size_t kk = n; kk-- > 0;) {
    T acc = b[kk];
    if (kk + 1 < n) {
      acc = detail::StridedDotAccNeg(acc, n - kk - 1, &a(kk + 1, kk), col,
                                     x.data() + kk + 1, 1);
    }
    x[kk] = acc / a(kk, kk);
  }
  return x;
}

// min ||A x - b|| via one-sided Jacobi SVD (A = U S V^T, x = V S^+ U^T b).
//
// Works on A^T and V^T so every column the sweep touches is a contiguous
// row: the rotation kernels vectorize and even the per-scalar oracle walks
// cache lines instead of strides.  The transposes are reliable copies — no
// FP op — so the faulty op sequence is exactly the column-oriented one.
template <class T>
Vector<T> SolveLsqSvd(const Matrix<T>& a, const Vector<T>& b) {
  using std::sqrt;
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix<T> at(n, m);  // at row j = column j of A
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) at(j, i) = a(i, j);
  }
  // V^T accumulates the right rotations (row i = column i of V).
  Matrix<T> vt(n, n);
  for (std::size_t i = 0; i < n; ++i) vt(i, i) = T(1);

  constexpr int kMaxSweeps = 12;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        T app(0), aqq(0), apq(0);
        detail::JacobiColumnDots(m, at.row(p), 1, at.row(q), 1, &app, &aqq, &apq);
        const double apq_d = AsDouble(apq);
        const double den_d = AsDouble(app) * AsDouble(aqq);
        if (!(apq_d * apq_d > 1e-30 * den_d)) continue;  // already orthogonal
        // Jacobi rotation angle.
        const T tau = (aqq - app) / (T(2) * apq);
        T t;
        if (AsDouble(tau) >= 0.0) {
          t = T(1) / (tau + sqrt(T(1) + tau * tau));
        } else {
          t = T(-1) / (-tau + sqrt(T(1) + tau * tau));
        }
        const T c = T(1) / sqrt(T(1) + t * t);
        const T s = c * t;
        detail::StridedRot(m, at.row(p), 1, at.row(q), 1, c, s);
        detail::StridedRot(n, vt.row(p), 1, vt.row(q), 1, c, s);
      }
    }
  }

  // Singular values are the column norms; x = V S^{-2} (A' )^T b with
  // A' = U S the rotated columns, i.e. x = sum_j v_j (u_j . b) / s_j.
  Vector<T> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    const T s2 = detail::StridedDotAcc(T(0), m, at.row(j), 1, at.row(j), 1);
    const T proj = detail::StridedDotAcc(T(0), m, at.row(j), 1, b.data(), 1);
    if (AsDouble(s2) <= 1e-24) continue;  // null direction: pseudo-inverse drops it
    const T coef = proj / s2;
    detail::StridedAxpy(n, coef, vt.row(j), 1, x.data(), 1);
  }
  return x;
}

// min ||A x - b|| via the normal equations and Cholesky.
template <class T>
Vector<T> SolveLsqCholesky(const Matrix<T>& a, const Vector<T>& b) {
  using std::sqrt;
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::ptrdiff_t col = static_cast<std::ptrdiff_t>(n);  // column stride
  Matrix<T> at(n, m);  // at row j = column j of A (reliable copies, no FP op)
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t j = 0; j < n; ++j) at(j, r) = a(r, j);
  }
  Matrix<T> g(n, n);  // A^T A over contiguous column rows
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const T acc = detail::StridedDotAcc(T(0), m, at.row(i), 1, at.row(j), 1);
      g(i, j) = acc;
      g(j, i) = acc;
    }
  }
  Vector<T> c(n);  // A^T b: c[j] = column_j . b, one contiguous dot per entry
  for (std::size_t j = 0; j < n; ++j) {
    c[j] = detail::StridedDotAcc(T(0), m, at.row(j), 1, b.data(), 1);
  }
  // Cholesky G = L L^T (in place, lower triangle).
  Matrix<T> l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      T acc = detail::StridedDotAccNeg(g(i, j), j, l.row(i), 1, l.row(j), 1);
      if (i == j) {
        l(i, j) = sqrt(acc);
      } else {
        l(i, j) = acc / l(j, j);
      }
    }
  }
  // Forward then back substitution.
  Vector<T> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    T acc = detail::StridedDotAccNeg(c[i], i, l.row(i), 1, y.data(), 1);
    y[i] = acc / l(i, i);
  }
  Vector<T> x(n);
  for (std::size_t i = n; i-- > 0;) {
    T acc = y[i];
    if (i + 1 < n) {
      acc = detail::StridedDotAccNeg(acc, n - i - 1, &l(i + 1, i), col,
                                     x.data() + i + 1, 1);
    }
    x[i] = acc / l(i, i);
  }
  return x;
}

template <class T>
Vector<T> SolveLsqDirect(const Matrix<T>& a, const Vector<T>& b, LsqBaseline which) {
  switch (which) {
    case LsqBaseline::kQr: return SolveLsqQr(a, b);
    case LsqBaseline::kSvd: return SolveLsqSvd(a, b);
    case LsqBaseline::kCholesky: return SolveLsqCholesky(a, b);
  }
  return Vector<T>(a.cols());
}

}  // namespace robustify::linalg
