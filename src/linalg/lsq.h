// Direct least-squares baselines: Householder QR, one-sided Jacobi SVD, and
// Cholesky on the normal equations.  Templated on the scalar so the same
// code is the clean oracle (double) and the faulty baseline (faulty::Real).
//
// Every loop bound is an integer decided by problem shape — never by a
// floating-point convergence test alone — so the solvers terminate even
// when faults corrupt the values they iterate on.
#pragma once

#include <cmath>
#include <cstddef>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace robustify::linalg {

enum class LsqBaseline { kSvd, kQr, kCholesky };

// min ||A x - b|| via Householder QR (A m x n, m >= n).
template <class T>
Vector<T> SolveLsqQr(Matrix<T> a, Vector<T> b) {
  using std::sqrt;
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k.
    T norm2(0);
    for (std::size_t i = k; i < m; ++i) norm2 += a(i, k) * a(i, k);
    T alpha = sqrt(norm2);
    if (AsDouble(a(k, k)) > 0.0) alpha = -alpha;
    Vector<T> v(m - k);
    v[0] = a(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = a(i, k);
    T vtv(0);
    for (std::size_t i = 0; i < v.size(); ++i) vtv += v[i] * v[i];
    a(k, k) = alpha;
    for (std::size_t i = k + 1; i < m; ++i) a(i, k) = T(0);
    if (AsDouble(vtv) == 0.0) continue;
    // Apply H = I - 2 v v^T / (v^T v) to the trailing columns and to b.
    for (std::size_t j = k + 1; j < n; ++j) {
      T dot(0);
      for (std::size_t i = k; i < m; ++i) dot += v[i - k] * a(i, j);
      const T scale = T(2) * dot / vtv;
      for (std::size_t i = k; i < m; ++i) a(i, j) -= scale * v[i - k];
    }
    T dot(0);
    for (std::size_t i = k; i < m; ++i) dot += v[i - k] * b[i];
    const T scale = T(2) * dot / vtv;
    for (std::size_t i = k; i < m; ++i) b[i] -= scale * v[i - k];
  }
  // Back substitution on the n x n upper triangle.
  Vector<T> x(n);
  for (std::size_t kk = n; kk-- > 0;) {
    T acc = b[kk];
    for (std::size_t j = kk + 1; j < n; ++j) acc -= a(kk, j) * x[j];
    x[kk] = acc / a(kk, kk);
  }
  return x;
}

// min ||A x - b|| via one-sided Jacobi SVD (A = U S V^T, x = V S^+ U^T b).
template <class T>
Vector<T> SolveLsqSvd(Matrix<T> a, const Vector<T>& b) {
  using std::sqrt;
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  // V accumulates the right rotations.
  Matrix<T> v(n, n);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = T(1);

  constexpr int kMaxSweeps = 12;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        T app(0), aqq(0), apq(0);
        for (std::size_t i = 0; i < m; ++i) {
          app += a(i, p) * a(i, p);
          aqq += a(i, q) * a(i, q);
          apq += a(i, p) * a(i, q);
        }
        const double apq_d = AsDouble(apq);
        const double den_d = AsDouble(app) * AsDouble(aqq);
        if (!(apq_d * apq_d > 1e-30 * den_d)) continue;  // already orthogonal
        // Jacobi rotation angle.
        const T tau = (aqq - app) / (T(2) * apq);
        T t;
        if (AsDouble(tau) >= 0.0) {
          t = T(1) / (tau + sqrt(T(1) + tau * tau));
        } else {
          t = T(-1) / (-tau + sqrt(T(1) + tau * tau));
        }
        const T c = T(1) / sqrt(T(1) + t * t);
        const T s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const T aip = a(i, p);
          const T aiq = a(i, q);
          a(i, p) = c * aip - s * aiq;
          a(i, q) = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const T vip = v(i, p);
          const T viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  // Singular values are the column norms; x = V S^{-2} (A' )^T b with
  // A' = U S the rotated columns, i.e. x = sum_j v_j (u_j . b) / s_j.
  Vector<T> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    T s2(0);
    for (std::size_t i = 0; i < m; ++i) s2 += a(i, j) * a(i, j);
    T proj(0);
    for (std::size_t i = 0; i < m; ++i) proj += a(i, j) * b[i];
    if (AsDouble(s2) <= 1e-24) continue;  // null direction: pseudo-inverse drops it
    const T coef = proj / s2;
    for (std::size_t i = 0; i < n; ++i) x[i] += coef * v(i, j);
  }
  return x;
}

// min ||A x - b|| via the normal equations and Cholesky.
template <class T>
Vector<T> SolveLsqCholesky(const Matrix<T>& a, const Vector<T>& b) {
  using std::sqrt;
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix<T> g(n, n);  // A^T A
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      T acc(0);
      for (std::size_t r = 0; r < m; ++r) acc += a(r, i) * a(r, j);
      g(i, j) = acc;
      g(j, i) = acc;
    }
  }
  Vector<T> c(n);  // A^T b
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t j = 0; j < n; ++j) c[j] += a(r, j) * b[r];
  }
  // Cholesky G = L L^T (in place, lower triangle).
  Matrix<T> l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      T acc = g(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      if (i == j) {
        l(i, j) = sqrt(acc);
      } else {
        l(i, j) = acc / l(j, j);
      }
    }
  }
  // Forward then back substitution.
  Vector<T> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    T acc = c[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
    y[i] = acc / l(i, i);
  }
  Vector<T> x(n);
  for (std::size_t i = n; i-- > 0;) {
    T acc = y[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= l(k, i) * x[k];
    x[i] = acc / l(i, i);
  }
  return x;
}

template <class T>
Vector<T> SolveLsqDirect(const Matrix<T>& a, const Vector<T>& b, LsqBaseline which) {
  switch (which) {
    case LsqBaseline::kQr: return SolveLsqQr(a, b);
    case LsqBaseline::kSvd: return SolveLsqSvd(a, b);
    case LsqBaseline::kCholesky: return SolveLsqCholesky(a, b);
  }
  return Vector<T>(a.cols());
}

}  // namespace robustify::linalg
