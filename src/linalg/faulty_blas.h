// Block-faulty BLAS: the kernels under the solvers.
//
// Each kernel executes the same IEEE-754 operation sequence a templated
// faulty::Real loop would, but in runs: it asks the thread's FaultInjector
// how many ops of the deterministic gap schedule are guaranteed clean
// (FaultInjector::CleanRun), executes that many whole elements as a tight
// loop over raw doubles — no per-op countdown, no thread-local probe, free
// to auto-vectorize — bulk-consumes the ops, and routes only the element
// containing the scheduled fault through the per-scalar Execute path.  At
// realistic fault rates (mean gap 1e3..1e7 ops) a whole kernel is one bulk
// run; at rate 0.25 the runs are a few elements long and the bulk loop
// still amortizes the injector probe.
//
// Fault-stream contract: for a fixed (seed, rate, strategy) every kernel
// consumes the injector's gap/bit RNG streams at exactly the same op
// positions as the per-scalar faulty::Real code it replaces, and the clean
// values are bit-identical (each kernel documents its per-element op
// sequence; the build pins -ffp-contract=off so a bulk loop never fuses a
// mul+add the scalar path rounds separately).  tests/test_block_engine.cpp
// holds every kernel to bitwise equivalence against the scalar engine.
//
// With no injector active the kernels are plain clean loops, so the clean
// oracle path benefits too.  Callers dispatch here only for faulty::Real
// data (see the linalg vector/matrix headers); `double` math never touches
// the injector in either engine.
//
// Strides are in elements; kernels with stride parameters take 1 for the
// contiguous fast path (column access in the row-major direct solvers uses
// stride = cols).  Unless noted, in/out arrays must not overlap (read-only
// arguments may alias each other, e.g. Dot(x, x)).
#pragma once

#include <cstddef>

namespace robustify::linalg::blas {

// acc += x.y          per element: mul, add.
double DotAcc(std::size_t n, double acc, const double* x, std::ptrdiff_t incx,
              const double* y, std::ptrdiff_t incy);

// acc -= x.y          per element: mul, sub.
double DotAccNeg(std::size_t n, double acc, const double* x, std::ptrdiff_t incx,
                 const double* y, std::ptrdiff_t incy);

// y += alpha * x      per element: mul, add.
void Axpy(std::size_t n, double alpha, const double* x, std::ptrdiff_t incx,
          double* y, std::ptrdiff_t incy);

// y -= alpha * x      per element: mul, sub.
void Axmy(std::size_t n, double alpha, const double* x, std::ptrdiff_t incx,
          double* y, std::ptrdiff_t incy);

// x *= alpha          per element: mul.
void Scal(std::size_t n, double alpha, double* x);

// x /= divisor        per element: div.
void DivScal(std::size_t n, double divisor, double* x);

// y -= x              per element: sub.
void Sub(std::size_t n, const double* x, double* y);

// p = s + beta * p    per element: mul, add.
void Xpby(std::size_t n, const double* s, double beta, double* p);

// sqrt(x.x)           per element: mul, add; plus one final sqrt op.
double Nrm2(std::size_t n, const double* x);

// y = A x (A row-major m x n)      per row: DotAcc(0, row, x).
void MatVecInto(std::size_t m, std::size_t n, const double* a, const double* x,
                double* y);

// y = A^T x (A row-major m x n); y is zeroed by reliable stores first.
// Per row: Axpy(x[row], a_row, y).
void MatTVecInto(std::size_t m, std::size_t n, const double* a, const double* x,
                 double* y);

// acc += sum (ax[i] - b[i])^2      per element: sub, mul, add.
// The fused least-squares objective readout (0.5 * is the caller's op).
double ResidualSsqAcc(std::size_t n, double acc, const double* ax, const double* b);

// y[i] -= (s1 * s2) * x[i]         per element: mul, mul, sub.
// The SVM hinge-gradient row update, with the scale product recomputed per
// element exactly as the templated loop does.
void SubScaled2(std::size_t n, double s1, double s2, const double* x, double* y);

// One-sided Jacobi column rotation: (x, y) <- (c x - s y, s x + c y).
// Per element: mul, mul, mul, mul, sub, add — the canonical order the
// templated rotation in linalg/lsq.h is written in.
void Rot(std::size_t n, double* x, std::ptrdiff_t incx, double* y, std::ptrdiff_t incy,
         double c, double s);

// Fused Jacobi pre-rotation column moments: app += x.x, aqq += y.y,
// apq += x.y in one pass.  Per element: mul, add, mul, add, mul, add.
void JacobiDots(std::size_t n, const double* x, std::ptrdiff_t incx, const double* y,
                std::ptrdiff_t incy, double* app, double* aqq, double* apq);

// ---- IIR variational-form kernels (apps/iir_app.h) -------------------------
//
// Residual of the banded recursion at sample t (taps a[0..na-1]):
//   r_t = (y[t] - f[t]) + sum_{k=1..min(na,t)} a[k-1] * y[t-k]
// per element: sub, then (mul, add) per tap in range.

// acc += sum_t r_t^2   per element: residual ops, then mul, add.
double IirValueAcc(std::size_t n, std::size_t na, const double* a, const double* y,
                   const double* f, double acc);

// r[t] = r_t for every t.
void IirResidualInto(std::size_t n, std::size_t na, const double* a, const double* y,
                     const double* f, double* r);

// g[s] = r[s] + sum_{k=1..na, s+k<n} a[k-1] * r[s+k]
// per element: (mul, add) per tap in range (the leading r[s] is a copy).
void IirGradientInto(std::size_t n, std::size_t na, const double* a, const double* r,
                     double* g);

}  // namespace robustify::linalg::blas
