#include "linalg/random.h"

#include <cmath>

namespace robustify::linalg {

Matrix<double> RandomMatrix(std::size_t rows, std::size_t cols, std::mt19937_64& rng) {
  std::normal_distribution<double> dist(0.0, 1.0);
  const double scale = 1.0 / std::sqrt(static_cast<double>(rows));
  Matrix<double> a(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) a(i, j) = dist(rng) * scale;
  }
  return a;
}

Vector<double> RandomVector(std::size_t n, std::mt19937_64& rng) {
  std::normal_distribution<double> dist(0.0, 1.0);
  Vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = dist(rng);
  return v;
}

Matrix<double> RandomSymmetricMatrix(std::size_t n, std::mt19937_64& rng) {
  std::normal_distribution<double> dist(0.0, 1.0);
  Matrix<double> a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double g = dist(rng);
      a(i, j) = g;
      a(j, i) = g;
    }
  }
  return a;
}

}  // namespace robustify::linalg
