// Strided faulty primitives shared by the column-oriented solvers (lsq.h),
// the tiled engine (tiled.h), and the normal-equations CG path (opt/cg.h).
//
// Row-major storage: a column walks with stride = cols.  Each primitive
// states its exact per-element faulty-op sequence; the block path dispatches
// to the matching faulty-BLAS kernel, the scalar path is the loop spelled
// out — the two are bit-identical per the engine contract (faulty_blas.h).
#pragma once

#include <cstddef>

#include "linalg/matrix.h"

namespace robustify::linalg::detail {

// acc += sum x.y       per element: mul, add.
template <class T>
T StridedDotAcc(T acc, std::size_t n, const T* x, std::ptrdiff_t incx, const T* y,
                std::ptrdiff_t incy) {
  if (UseBlockKernels<T>()) {
    return T(blas::DotAcc(n, AsDouble(acc), faulty::AsDoubleArray(x), incx,
                          faulty::AsDoubleArray(y), incy));
  }
  for (std::size_t i = 0; i < n; ++i) {
    acc += x[static_cast<std::ptrdiff_t>(i) * incx] *
           y[static_cast<std::ptrdiff_t>(i) * incy];
  }
  return acc;
}

// acc -= sum x.y       per element: mul, sub.
template <class T>
T StridedDotAccNeg(T acc, std::size_t n, const T* x, std::ptrdiff_t incx, const T* y,
                   std::ptrdiff_t incy) {
  if (UseBlockKernels<T>()) {
    return T(blas::DotAccNeg(n, AsDouble(acc), faulty::AsDoubleArray(x), incx,
                             faulty::AsDoubleArray(y), incy));
  }
  for (std::size_t i = 0; i < n; ++i) {
    acc -= x[static_cast<std::ptrdiff_t>(i) * incx] *
           y[static_cast<std::ptrdiff_t>(i) * incy];
  }
  return acc;
}

// y += alpha * x       per element: mul, add.  x and y must not alias.
template <class T>
void StridedAxpy(std::size_t n, const T& alpha, const T* x, std::ptrdiff_t incx, T* y,
                 std::ptrdiff_t incy) {
  if (UseBlockKernels<T>()) {
    blas::Axpy(n, AsDouble(alpha), faulty::AsDoubleArray(x), incx,
               faulty::AsDoubleArray(y), incy);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    y[static_cast<std::ptrdiff_t>(i) * incy] +=
        alpha * x[static_cast<std::ptrdiff_t>(i) * incx];
  }
}

// y -= alpha * x       per element: mul, sub.  x and y must not alias.
template <class T>
void StridedAxmy(std::size_t n, const T& alpha, const T* x, std::ptrdiff_t incx, T* y,
                 std::ptrdiff_t incy) {
  if (UseBlockKernels<T>()) {
    blas::Axmy(n, AsDouble(alpha), faulty::AsDoubleArray(x), incx,
               faulty::AsDoubleArray(y), incy);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    y[static_cast<std::ptrdiff_t>(i) * incy] -=
        alpha * x[static_cast<std::ptrdiff_t>(i) * incx];
  }
}

// Jacobi rotation (x, y) <- (c x - s y, s x + c y).
// Per element: mul, mul, mul, mul, sub, add — spelled out with temporaries
// so both engines execute the same deterministic op order.
template <class T>
void StridedRot(std::size_t n, T* x, std::ptrdiff_t incx, T* y, std::ptrdiff_t incy,
                const T& c, const T& s) {
  if (UseBlockKernels<T>()) {
    blas::Rot(n, faulty::AsDoubleArray(x), incx, faulty::AsDoubleArray(y), incy,
              AsDouble(c), AsDouble(s));
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    T& xi = x[static_cast<std::ptrdiff_t>(i) * incx];
    T& yi = y[static_cast<std::ptrdiff_t>(i) * incy];
    const T tp = c * xi;
    const T tq = s * yi;
    const T up = s * xi;
    const T uq = c * yi;
    xi = tp - tq;
    yi = up + uq;
  }
}

// Fused pre-rotation column moments: app += x.x, aqq += y.y, apq += x.y.
// Per element: mul, add, mul, add, mul, add.
template <class T>
void JacobiColumnDots(std::size_t n, const T* x, std::ptrdiff_t incx, const T* y,
                      std::ptrdiff_t incy, T* app, T* aqq, T* apq) {
  if (UseBlockKernels<T>()) {
    double vpp = AsDouble(*app), vqq = AsDouble(*aqq), vpq = AsDouble(*apq);
    blas::JacobiDots(n, faulty::AsDoubleArray(x), incx, faulty::AsDoubleArray(y), incy,
                     &vpp, &vqq, &vpq);
    *app = T(vpp);
    *aqq = T(vqq);
    *apq = T(vpq);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const T xi = x[static_cast<std::ptrdiff_t>(i) * incx];
    const T yi = y[static_cast<std::ptrdiff_t>(i) * incy];
    *app += xi * xi;
    *aqq += yi * yi;
    *apq += xi * yi;
  }
}

}  // namespace robustify::linalg::detail
