// Deterministic random problem generators (clean double data).
#pragma once

#include <cstddef>
#include <random>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace robustify::linalg {

// Entries ~ N(0, 1) / sqrt(rows): keeps A^T A's spectrum O(1) so descent
// step sizes are problem-size independent.
Matrix<double> RandomMatrix(std::size_t rows, std::size_t cols, std::mt19937_64& rng);

// Entries ~ N(0, 1).
Vector<double> RandomVector(std::size_t n, std::mt19937_64& rng);

// Symmetric with entries ~ N(0, 1) (A = (G + G^T) / 2).
Matrix<double> RandomSymmetricMatrix(std::size_t n, std::mt19937_64& rng);

}  // namespace robustify::linalg
