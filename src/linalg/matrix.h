// Dense row-major matrix templated on the scalar type.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/scalar.h"
#include "linalg/vector.h"

namespace robustify::linalg {

template <class T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, T(0)) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  // Resize-without-free (same contract as Vector::resize): shrinking or
  // regrowing within capacity never returns memory to the allocator, which
  // is what lets the tiled engine reuse a warmed workspace allocation-free.
  // Contents are unspecified after the call — callers overwrite before use.
  void Reset(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols, T(0));
  }

  T& operator()(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  const T& operator()(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

  T* row(std::size_t i) { return data_.data() + i * cols_; }
  const T* row(std::size_t i) const { return data_.data() + i * cols_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

// y = A x into preallocated storage (resized without freeing): the
// allocation-free form the solver inner loops and objectives run on.
// Precondition: y aliases neither a nor x (restrict is asserted below).
template <class T>
void MatVecInto(const Matrix<T>& a, const Vector<T>& x, Vector<T>* y) {
  y->resize(a.rows());
  const std::size_t rows = a.rows(), cols = a.cols();
  if (detail::UseBlockKernels<T>() && detail::BulkMatVecProfitable() && rows > 0) {
    blas::MatVecInto(rows, cols, faulty::AsDoubleArray(a.row(0)),
                     faulty::AsDoubleArray(x.data()),
                     faulty::AsDoubleArray(y->data()));
    return;
  }
  const T* ROBUSTIFY_RESTRICT xp = x.data();
  T* ROBUSTIFY_RESTRICT yp = y->data();
  for (std::size_t i = 0; i < rows; ++i) {
    T acc(0);
    const T* ROBUSTIFY_RESTRICT row = a.row(i);
    for (std::size_t j = 0; j < cols; ++j) {
      // Explicit statements pin the routed-load order (matrix element,
      // then vector element); LoadElem is the identity unless the fault
      // model corrupts memory loads.
      const T av = faulty::LoadElem(row[j]);
      const T xv = faulty::LoadElem(xp[j]);
      acc += av * xv;
    }
    yp[i] = acc;
  }
}

// y = A^T x into preallocated storage (zeroed first).  Same no-alias
// precondition as MatVecInto.
template <class T>
void MatTVecInto(const Matrix<T>& a, const Vector<T>& x, Vector<T>* y) {
  y->resize(a.cols());
  const std::size_t rows = a.rows(), cols = a.cols();
  if (detail::UseBlockKernels<T>() && detail::BulkMatVecProfitable() && rows > 0) {
    blas::MatTVecInto(rows, cols, faulty::AsDoubleArray(a.row(0)),
                      faulty::AsDoubleArray(x.data()),
                      faulty::AsDoubleArray(y->data()));
    return;
  }
  const T* ROBUSTIFY_RESTRICT xp = x.data();
  T* ROBUSTIFY_RESTRICT yp = y->data();
  for (std::size_t j = 0; j < cols; ++j) yp[j] = T(0);
  for (std::size_t i = 0; i < rows; ++i) {
    const T* ROBUSTIFY_RESTRICT row = a.row(i);
    // x[i] is register-resident across the row: one routed load per row,
    // not one per column.
    const T xv = faulty::LoadElem(xp[i]);
    for (std::size_t j = 0; j < cols; ++j) {
      const T av = faulty::LoadElem(row[j]);
      const T yv = faulty::LoadElem(yp[j]);
      yp[j] = yv + av * xv;
    }
  }
}

// y = A x
template <class T>
Vector<T> MatVec(const Matrix<T>& a, const Vector<T>& x) {
  Vector<T> y(a.rows());
  MatVecInto(a, x, &y);
  return y;
}

// y = A^T x
template <class T>
Vector<T> MatTVec(const Matrix<T>& a, const Vector<T>& x) {
  Vector<T> y(a.cols());
  MatTVecInto(a, x, &y);
  return y;
}

template <class T>
Matrix<double> ToDouble(const Matrix<T>& m) {
  Matrix<double> out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) out(i, j) = AsDouble(m(i, j));
  }
  return out;
}

template <class T>
Matrix<T> Cast(const Matrix<double>& m) {
  Matrix<T> out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) out(i, j) = T(m(i, j));
  }
  return out;
}

}  // namespace robustify::linalg
