// Scalar helpers shared by the templated kernels.
#pragma once

namespace robustify::linalg {

// Reliable readout of a scalar's stored value.  For faulty::Real this is a
// plain bit copy (no FP op), so control logic that inspects it models the
// paper's reliable integer core, not the faulty FPU.
template <class T>
inline double AsDouble(const T& x) {
  return static_cast<double>(x);
}

}  // namespace robustify::linalg
