#include "linalg/faulty_blas.h"

#include <cmath>
#include <cstdint>

#include "faulty/fault_injector.h"

#if defined(__GNUC__) || defined(__clang__)
#define BLAS_RESTRICT __restrict__
#else
#define BLAS_RESTRICT
#endif

namespace robustify::linalg::blas {

namespace {

using faulty::FaultInjector;

// Drives one kernel over `n` elements of `ops_per_elem` faulty ops each:
// whole elements that fit in the injector's clean run go through `bulk`
// (a raw loop, no injector), the element containing the scheduled fault
// goes through `boundary` (per-scalar Execute, which corrupts and re-arms
// the countdown).  With no injector active the whole kernel is one bulk
// call.  In per-op oracle mode CleanRun() is always 0, so every element is
// a boundary element and the oracle's RNG stream is consumed op by op.
template <class Bulk, class Boundary>
inline void RunBlockedDyn(std::size_t n, std::uint64_t ops_per_elem, const Bulk& bulk,
                          const Boundary& boundary) {
  FaultInjector* inj = faulty::detail::tls_injector;
  if (inj == nullptr) {
    bulk(std::size_t{0}, n);
    return;
  }
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t fit = inj->CleanRun() / ops_per_elem;
    const std::size_t left = n - i;
    const std::size_t chunk = fit < left ? static_cast<std::size_t>(fit) : left;
    if (chunk != 0) {
      bulk(i, i + chunk);
      inj->ConsumeClean(static_cast<std::uint64_t>(chunk) * ops_per_elem);
      i += chunk;
      if (i == n) break;
    }
    boundary(inj, i);
    ++i;
  }
}

// Compile-time op count: the per-chunk division folds to a shift (or a
// reciprocal multiply), which matters at high fault rates where chunks are
// a handful of elements long.
template <std::uint64_t kOpsPerElem, class Bulk, class Boundary>
inline void RunBlocked(std::size_t n, const Bulk& bulk, const Boundary& boundary) {
  RunBlockedDyn(n, kOpsPerElem, bulk, boundary);
}

// One faulty op outside any element loop (e.g. the final sqrt of Nrm2).
inline double OneOp(double v) {
  FaultInjector* inj = faulty::detail::tls_injector;
  return inj != nullptr ? inj->Execute(v) : v;
}

// kContig pins the strides to compile-time 1 so the contiguous entry points
// vectorize; the strided instantiation keeps runtime strides (column access
// in the row-major direct solvers — still countdown-free on the clean run).
template <bool kContig>
double DotAccImpl(std::size_t n, double acc, const double* BLAS_RESTRICT x,
                  std::ptrdiff_t incx, const double* BLAS_RESTRICT y,
                  std::ptrdiff_t incy) {
  const std::ptrdiff_t sx = kContig ? 1 : incx;
  const std::ptrdiff_t sy = kContig ? 1 : incy;
  RunBlocked<2>(
      n,
      [&](std::size_t lo, std::size_t hi) {
        double a = acc;
        for (std::size_t i = lo; i < hi; ++i) {
          const double t = x[static_cast<std::ptrdiff_t>(i) * sx] *
                           y[static_cast<std::ptrdiff_t>(i) * sy];
          a = a + t;
        }
        acc = a;
      },
      [&](FaultInjector* inj, std::size_t i) {
        const double t = inj->Execute(x[static_cast<std::ptrdiff_t>(i) * sx] *
                                      y[static_cast<std::ptrdiff_t>(i) * sy]);
        acc = inj->Execute(acc + t);
      });
  return acc;
}

template <bool kContig>
double DotAccNegImpl(std::size_t n, double acc, const double* BLAS_RESTRICT x,
                     std::ptrdiff_t incx, const double* BLAS_RESTRICT y,
                     std::ptrdiff_t incy) {
  const std::ptrdiff_t sx = kContig ? 1 : incx;
  const std::ptrdiff_t sy = kContig ? 1 : incy;
  RunBlocked<2>(
      n,
      [&](std::size_t lo, std::size_t hi) {
        double a = acc;
        for (std::size_t i = lo; i < hi; ++i) {
          const double t = x[static_cast<std::ptrdiff_t>(i) * sx] *
                           y[static_cast<std::ptrdiff_t>(i) * sy];
          a = a - t;
        }
        acc = a;
      },
      [&](FaultInjector* inj, std::size_t i) {
        const double t = inj->Execute(x[static_cast<std::ptrdiff_t>(i) * sx] *
                                      y[static_cast<std::ptrdiff_t>(i) * sy]);
        acc = inj->Execute(acc - t);
      });
  return acc;
}

template <bool kContig>
void AxpyImpl(std::size_t n, double alpha, const double* BLAS_RESTRICT x,
              std::ptrdiff_t incx, double* BLAS_RESTRICT y, std::ptrdiff_t incy) {
  const std::ptrdiff_t sx = kContig ? 1 : incx;
  const std::ptrdiff_t sy = kContig ? 1 : incy;
  RunBlocked<2>(
      n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const double t = alpha * x[static_cast<std::ptrdiff_t>(i) * sx];
          double& yi = y[static_cast<std::ptrdiff_t>(i) * sy];
          yi = yi + t;
        }
      },
      [&](FaultInjector* inj, std::size_t i) {
        const double t = inj->Execute(alpha * x[static_cast<std::ptrdiff_t>(i) * sx]);
        double& yi = y[static_cast<std::ptrdiff_t>(i) * sy];
        yi = inj->Execute(yi + t);
      });
}

template <bool kContig>
void AxmyImpl(std::size_t n, double alpha, const double* BLAS_RESTRICT x,
              std::ptrdiff_t incx, double* BLAS_RESTRICT y, std::ptrdiff_t incy) {
  const std::ptrdiff_t sx = kContig ? 1 : incx;
  const std::ptrdiff_t sy = kContig ? 1 : incy;
  RunBlocked<2>(
      n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const double t = alpha * x[static_cast<std::ptrdiff_t>(i) * sx];
          double& yi = y[static_cast<std::ptrdiff_t>(i) * sy];
          yi = yi - t;
        }
      },
      [&](FaultInjector* inj, std::size_t i) {
        const double t = inj->Execute(alpha * x[static_cast<std::ptrdiff_t>(i) * sx]);
        double& yi = y[static_cast<std::ptrdiff_t>(i) * sy];
        yi = inj->Execute(yi - t);
      });
}

}  // namespace

double DotAcc(std::size_t n, double acc, const double* x, std::ptrdiff_t incx,
              const double* y, std::ptrdiff_t incy) {
  if (incx == 1 && incy == 1) return DotAccImpl<true>(n, acc, x, 1, y, 1);
  return DotAccImpl<false>(n, acc, x, incx, y, incy);
}

double DotAccNeg(std::size_t n, double acc, const double* x, std::ptrdiff_t incx,
                 const double* y, std::ptrdiff_t incy) {
  if (incx == 1 && incy == 1) return DotAccNegImpl<true>(n, acc, x, 1, y, 1);
  return DotAccNegImpl<false>(n, acc, x, incx, y, incy);
}

void Axpy(std::size_t n, double alpha, const double* x, std::ptrdiff_t incx, double* y,
          std::ptrdiff_t incy) {
  if (incx == 1 && incy == 1) {
    AxpyImpl<true>(n, alpha, x, 1, y, 1);
  } else {
    AxpyImpl<false>(n, alpha, x, incx, y, incy);
  }
}

void Axmy(std::size_t n, double alpha, const double* x, std::ptrdiff_t incx, double* y,
          std::ptrdiff_t incy) {
  if (incx == 1 && incy == 1) {
    AxmyImpl<true>(n, alpha, x, 1, y, 1);
  } else {
    AxmyImpl<false>(n, alpha, x, incx, y, incy);
  }
}

void Scal(std::size_t n, double alpha, double* x) {
  RunBlocked<1>(
      n,
      [&](std::size_t lo, std::size_t hi) {
        double* BLAS_RESTRICT xp = x;
        for (std::size_t i = lo; i < hi; ++i) xp[i] = xp[i] * alpha;
      },
      [&](FaultInjector* inj, std::size_t i) { x[i] = inj->Execute(x[i] * alpha); });
}

void DivScal(std::size_t n, double divisor, double* x) {
  RunBlocked<1>(
      n,
      [&](std::size_t lo, std::size_t hi) {
        double* BLAS_RESTRICT xp = x;
        for (std::size_t i = lo; i < hi; ++i) xp[i] = xp[i] / divisor;
      },
      [&](FaultInjector* inj, std::size_t i) { x[i] = inj->Execute(x[i] / divisor); });
}

void Sub(std::size_t n, const double* x, double* y) {
  RunBlocked<1>(
      n,
      [&](std::size_t lo, std::size_t hi) {
        const double* BLAS_RESTRICT xp = x;
        double* BLAS_RESTRICT yp = y;
        for (std::size_t i = lo; i < hi; ++i) yp[i] = yp[i] - xp[i];
      },
      [&](FaultInjector* inj, std::size_t i) { y[i] = inj->Execute(y[i] - x[i]); });
}

void Xpby(std::size_t n, const double* s, double beta, double* p) {
  RunBlocked<2>(
      n,
      [&](std::size_t lo, std::size_t hi) {
        const double* BLAS_RESTRICT sp = s;
        double* BLAS_RESTRICT pp = p;
        for (std::size_t i = lo; i < hi; ++i) {
          const double t = beta * pp[i];
          pp[i] = sp[i] + t;
        }
      },
      [&](FaultInjector* inj, std::size_t i) {
        const double t = inj->Execute(beta * p[i]);
        p[i] = inj->Execute(s[i] + t);
      });
}

double Nrm2(std::size_t n, const double* x) {
  return OneOp(std::sqrt(DotAcc(n, 0.0, x, 1, x, 1)));
}

// The matrix kernels block at element granularity *inline* — no per-row
// function call, and the clean-run probe is a load + shift + compare.  At
// realistic rates one probe covers the whole product; at high rates even
// the row containing the scheduled fault bulk-runs its clean prefix and
// suffix, paying Execute only for the two ops around the fault.
void MatVecInto(std::size_t m, std::size_t n, const double* a, const double* x,
                double* y) {
  FaultInjector* inj = faulty::detail::tls_injector;
  const double* BLAS_RESTRICT xp = x;
  if (inj == nullptr) {
    double* BLAS_RESTRICT yp = y;
    for (std::size_t r = 0; r < m; ++r) {
      const double* BLAS_RESTRICT row = a + r * n;
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double t = row[j] * xp[j];
        acc = acc + t;
      }
      yp[r] = acc;  // store is reliable
    }
    return;
  }
  for (std::size_t r = 0; r < m; ++r) {
    const double* BLAS_RESTRICT row = a + r * n;
    double acc = 0.0;
    std::size_t j = 0;
    while (j < n) {
      const std::uint64_t fit = inj->CleanRun() >> 1;
      const std::size_t left = n - j;
      const std::size_t chunk = fit < left ? static_cast<std::size_t>(fit) : left;
      if (chunk != 0) {
        const std::size_t end = j + chunk;
        for (; j < end; ++j) {
          const double t = row[j] * xp[j];
          acc = acc + t;
        }
        inj->ConsumeClean(static_cast<std::uint64_t>(chunk) * 2);
        if (j == n) break;
      }
      const double t = inj->Execute(row[j] * xp[j]);
      acc = inj->Execute(acc + t);
      ++j;
    }
    y[r] = acc;
  }
}

void MatTVecInto(std::size_t m, std::size_t n, const double* a, const double* x,
                 double* y) {
  for (std::size_t j = 0; j < n; ++j) y[j] = 0.0;  // reliable stores
  FaultInjector* inj = faulty::detail::tls_injector;
  if (inj == nullptr) {
    const double* BLAS_RESTRICT xp = x;
    double* BLAS_RESTRICT yp = y;
    for (std::size_t r = 0; r < m; ++r) {
      const double* BLAS_RESTRICT row = a + r * n;
      const double alpha = xp[r];
      for (std::size_t j = 0; j < n; ++j) {
        const double t = row[j] * alpha;
        yp[j] = yp[j] + t;
      }
    }
    return;
  }
  for (std::size_t r = 0; r < m; ++r) {
    const double* BLAS_RESTRICT row = a + r * n;
    const double alpha = x[r];
    double* BLAS_RESTRICT yp = y;
    std::size_t j = 0;
    while (j < n) {
      const std::uint64_t fit = inj->CleanRun() >> 1;
      const std::size_t left = n - j;
      const std::size_t chunk = fit < left ? static_cast<std::size_t>(fit) : left;
      if (chunk != 0) {
        const std::size_t end = j + chunk;
        for (; j < end; ++j) {
          const double t = row[j] * alpha;
          yp[j] = yp[j] + t;
        }
        inj->ConsumeClean(static_cast<std::uint64_t>(chunk) * 2);
        if (j == n) break;
      }
      yp[j] = inj->Execute(yp[j] + inj->Execute(row[j] * alpha));
      ++j;
    }
  }
}

double ResidualSsqAcc(std::size_t n, double acc, const double* ax, const double* b) {
  RunBlocked<3>(
      n,
      [&](std::size_t lo, std::size_t hi) {
        const double* BLAS_RESTRICT axp = ax;
        const double* BLAS_RESTRICT bp = b;
        double a = acc;
        for (std::size_t i = lo; i < hi; ++i) {
          const double r = axp[i] - bp[i];
          const double sq = r * r;
          a = a + sq;
        }
        acc = a;
      },
      [&](FaultInjector* inj, std::size_t i) {
        const double r = inj->Execute(ax[i] - b[i]);
        const double sq = inj->Execute(r * r);
        acc = inj->Execute(acc + sq);
      });
  return acc;
}

void SubScaled2(std::size_t n, double s1, double s2, const double* x, double* y) {
  RunBlocked<3>(
      n,
      [&](std::size_t lo, std::size_t hi) {
        const double* BLAS_RESTRICT xp = x;
        double* BLAS_RESTRICT yp = y;
        for (std::size_t i = lo; i < hi; ++i) {
          const double t1 = s1 * s2;
          const double t2 = t1 * xp[i];
          yp[i] = yp[i] - t2;
        }
      },
      [&](FaultInjector* inj, std::size_t i) {
        const double t1 = inj->Execute(s1 * s2);
        const double t2 = inj->Execute(t1 * x[i]);
        y[i] = inj->Execute(y[i] - t2);
      });
}

void Rot(std::size_t n, double* x, std::ptrdiff_t incx, double* y, std::ptrdiff_t incy,
         double c, double s) {
  RunBlocked<6>(
      n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          double& xi = x[static_cast<std::ptrdiff_t>(i) * incx];
          double& yi = y[static_cast<std::ptrdiff_t>(i) * incy];
          const double tp = c * xi;
          const double tq = s * yi;
          const double up = s * xi;
          const double uq = c * yi;
          xi = tp - tq;
          yi = up + uq;
        }
      },
      [&](FaultInjector* inj, std::size_t i) {
        double& xi = x[static_cast<std::ptrdiff_t>(i) * incx];
        double& yi = y[static_cast<std::ptrdiff_t>(i) * incy];
        const double tp = inj->Execute(c * xi);
        const double tq = inj->Execute(s * yi);
        const double up = inj->Execute(s * xi);
        const double uq = inj->Execute(c * yi);
        xi = inj->Execute(tp - tq);
        yi = inj->Execute(up + uq);
      });
}

void JacobiDots(std::size_t n, const double* x, std::ptrdiff_t incx, const double* y,
                std::ptrdiff_t incy, double* app, double* aqq, double* apq) {
  double vpp = *app, vqq = *aqq, vpq = *apq;
  RunBlocked<6>(
      n,
      [&](std::size_t lo, std::size_t hi) {
        double app_a = vpp, aqq_a = vqq, apq_a = vpq;
        for (std::size_t i = lo; i < hi; ++i) {
          const double xi = x[static_cast<std::ptrdiff_t>(i) * incx];
          const double yi = y[static_cast<std::ptrdiff_t>(i) * incy];
          const double txx = xi * xi;
          app_a = app_a + txx;
          const double tyy = yi * yi;
          aqq_a = aqq_a + tyy;
          const double txy = xi * yi;
          apq_a = apq_a + txy;
        }
        vpp = app_a;
        vqq = aqq_a;
        vpq = apq_a;
      },
      [&](FaultInjector* inj, std::size_t i) {
        const double xi = x[static_cast<std::ptrdiff_t>(i) * incx];
        const double yi = y[static_cast<std::ptrdiff_t>(i) * incy];
        vpp = inj->Execute(vpp + inj->Execute(xi * xi));
        vqq = inj->Execute(vqq + inj->Execute(yi * yi));
        vpq = inj->Execute(vpq + inj->Execute(xi * yi));
      });
  *app = vpp;
  *aqq = vqq;
  *apq = vpq;
}

// ---- IIR kernels -----------------------------------------------------------
//
// Per-element faulty op counts (taps in range = min(na, t) at sample t):
//   residual: 1 + 2 * taps      value: residual + 2      gradient: 2 * taps'
// The first min(na, n) samples ramp the count up one tap at a time, so they
// are handled element by element; the steady region runs through the bulk
// machinery with a fixed count.  Gradient ramps *down* at the tail instead
// (taps' = min(na, n-1-s)).

namespace {

// One residual element computed through the injector (boundary path).
inline double IirResidualOp(FaultInjector* inj, std::size_t t, std::size_t na,
                            const double* a, const double* y, const double* f) {
  double r = inj->Execute(y[t] - f[t]);
  for (std::size_t k = 1; k <= na && k <= t; ++k) {
    const double m = inj->Execute(a[k - 1] * y[t - k]);
    r = inj->Execute(r + m);
  }
  return r;
}

// One residual element on the clean path (raw doubles, no injector).
inline double IirResidualRaw(std::size_t t, std::size_t na, const double* a,
                             const double* y, const double* f) {
  double r = y[t] - f[t];
  for (std::size_t k = 1; k <= na && k <= t; ++k) {
    const double m = a[k - 1] * y[t - k];
    r = r + m;
  }
  return r;
}

}  // namespace

double IirValueAcc(std::size_t n, std::size_t na, const double* a, const double* y,
                   const double* f, double acc) {
  FaultInjector* inj = faulty::detail::tls_injector;
  const std::size_t ramp = na < n ? na : n;
  std::size_t t = 0;
  // Ramp: per-element op count 3 + 2t.
  for (; t < ramp; ++t) {
    const std::uint64_t ops = 3 + 2 * static_cast<std::uint64_t>(t);
    if (inj == nullptr || inj->CleanRun() >= ops) {
      const double r = IirResidualRaw(t, na, a, y, f);
      const double sq = r * r;
      acc = acc + sq;
      if (inj != nullptr) inj->ConsumeClean(ops);
    } else {
      const double r = IirResidualOp(inj, t, na, a, y, f);
      const double sq = inj->Execute(r * r);
      acc = inj->Execute(acc + sq);
    }
  }
  // Steady region: fixed 3 + 2*na ops per element.
  const std::uint64_t ops = 3 + 2 * static_cast<std::uint64_t>(na);
  RunBlockedDyn(
      n - t, ops,
      [&](std::size_t lo, std::size_t hi) {
        double acc_a = acc;
        for (std::size_t i = lo; i < hi; ++i) {
          const std::size_t s = t + i;
          const double r = IirResidualRaw(s, na, a, y, f);
          const double sq = r * r;
          acc_a = acc_a + sq;
        }
        acc = acc_a;
      },
      [&](FaultInjector* fi, std::size_t i) {
        const std::size_t s = t + i;
        const double r = IirResidualOp(fi, s, na, a, y, f);
        const double sq = fi->Execute(r * r);
        acc = fi->Execute(acc + sq);
      });
  return acc;
}

void IirResidualInto(std::size_t n, std::size_t na, const double* a, const double* y,
                     const double* f, double* r) {
  FaultInjector* inj = faulty::detail::tls_injector;
  const std::size_t ramp = na < n ? na : n;
  std::size_t t = 0;
  for (; t < ramp; ++t) {
    const std::uint64_t ops = 1 + 2 * static_cast<std::uint64_t>(t);
    if (inj == nullptr || inj->CleanRun() >= ops) {
      r[t] = IirResidualRaw(t, na, a, y, f);
      if (inj != nullptr) inj->ConsumeClean(ops);
    } else {
      r[t] = IirResidualOp(inj, t, na, a, y, f);
    }
  }
  const std::uint64_t ops = 1 + 2 * static_cast<std::uint64_t>(na);
  RunBlockedDyn(
      n - t, ops,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const std::size_t s = t + i;
          r[s] = IirResidualRaw(s, na, a, y, f);
        }
      },
      [&](FaultInjector* fi, std::size_t i) {
        const std::size_t s = t + i;
        r[s] = IirResidualOp(fi, s, na, a, y, f);
      });
}

void IirGradientInto(std::size_t n, std::size_t na, const double* a, const double* r,
                     double* g) {
  if (n == 0) return;
  if (na == 0) {
    for (std::size_t s = 0; s < n; ++s) g[s] = r[s];  // copies: no faulty op
    return;
  }
  FaultInjector* inj = faulty::detail::tls_injector;
  // Steady region: samples with all na taps in range (s + na <= n - 1).
  const std::size_t steady = n - 1 >= na ? n - na : 0;
  const std::uint64_t ops = 2 * static_cast<std::uint64_t>(na);
  RunBlockedDyn(
      steady, ops,
      [&](std::size_t lo, std::size_t hi) {
        const double* BLAS_RESTRICT rp = r;
        double* BLAS_RESTRICT gp = g;
        for (std::size_t s = lo; s < hi; ++s) {
          double acc = rp[s];
          for (std::size_t k = 1; k <= na; ++k) {
            const double m = a[k - 1] * rp[s + k];
            acc = acc + m;
          }
          gp[s] = acc;
        }
      },
      [&](FaultInjector* fi, std::size_t s) {
        double acc = r[s];
        for (std::size_t k = 1; k <= na; ++k) {
          const double m = fi->Execute(a[k - 1] * r[s + k]);
          acc = fi->Execute(acc + m);
        }
        g[s] = acc;
      });
  // Tail ramp-down: taps in range shrink to zero; per-element handling.
  for (std::size_t s = steady; s < n; ++s) {
    const std::size_t taps = n - 1 - s;  // < na here
    const std::uint64_t tail_ops = 2 * static_cast<std::uint64_t>(taps);
    if (inj == nullptr || inj->CleanRun() >= tail_ops) {
      double acc = r[s];
      for (std::size_t k = 1; k <= taps; ++k) {
        const double m = a[k - 1] * r[s + k];
        acc = acc + m;
      }
      g[s] = acc;
      if (inj != nullptr) inj->ConsumeClean(tail_ops);
    } else {
      double acc = r[s];
      for (std::size_t k = 1; k <= taps; ++k) {
        const double m = inj->Execute(a[k - 1] * r[s + k]);
        acc = inj->Execute(acc + m);
      }
      g[s] = acc;
    }
  }
}

}  // namespace robustify::linalg::blas
