#include "linalg/tiled.h"

#include <cstdlib>

#include "harness/parallel.h"

namespace robustify::linalg::detail {

int ResolveTileThreads(int requested) {
  if (requested > 0) return requested;
  // Re-read every solve (not cached): the determinism tests flip it between
  // solves to prove results never depend on the worker count.
  const char* env = std::getenv("ROBUSTIFY_TILE_THREADS");
  if (env != nullptr && *env != '\0') {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  return harness::ResolveThreadCount(0);
}

faulty::ContextStats SumTaskStats(const std::vector<faulty::ContextStats>& stats) {
  faulty::ContextStats total;
  for (const faulty::ContextStats& s : stats) {
    total.faulty_flops += s.faulty_flops;
    total.faults_injected += s.faults_injected;
    total.faults_arith += s.faults_arith;
    total.faults_compare += s.faults_compare;
    total.faults_memory += s.faults_memory;
    total.windows_opened += s.windows_opened;
  }
  return total;
}

}  // namespace robustify::linalg::detail
