#include "graph/maxflow.h"

#include <algorithm>

namespace robustify::graph {

// FIFO push-relabel with exact double arithmetic: the reliable oracle the
// robustified LP solution is judged against.
double PushRelabelMaxFlow(const FlowNetwork& net) {
  const std::size_t n = static_cast<std::size_t>(net.nodes);
  auto adj = detail::BuildResidual(net);

  std::vector<double> excess(n, 0.0);
  std::vector<int> height(n, 0);
  height[static_cast<std::size_t>(net.source)] = net.nodes;

  std::queue<int> active;
  auto push = [&](int u, detail::ResidualEdge& e) {
    const double amount = std::min(excess[static_cast<std::size_t>(u)], e.capacity);
    if (amount <= 0.0) return;
    e.capacity -= amount;
    adj[static_cast<std::size_t>(e.to)][static_cast<std::size_t>(e.rev)].capacity += amount;
    excess[static_cast<std::size_t>(u)] -= amount;
    const bool was_inactive = excess[static_cast<std::size_t>(e.to)] == 0.0;
    excess[static_cast<std::size_t>(e.to)] += amount;
    if (was_inactive && e.to != net.source && e.to != net.sink) active.push(e.to);
  };

  // Saturate all source edges.
  excess[static_cast<std::size_t>(net.source)] = 0.0;
  for (auto& e : adj[static_cast<std::size_t>(net.source)]) {
    excess[static_cast<std::size_t>(net.source)] += e.capacity;
  }
  for (auto& e : adj[static_cast<std::size_t>(net.source)]) push(net.source, e);

  while (!active.empty()) {
    const int u = active.front();
    active.pop();
    while (excess[static_cast<std::size_t>(u)] > 1e-12) {
      int min_height = 2 * net.nodes + 1;
      for (auto& e : adj[static_cast<std::size_t>(u)]) {
        if (e.capacity <= 1e-12) continue;
        if (height[static_cast<std::size_t>(e.to)] == height[static_cast<std::size_t>(u)] - 1) {
          push(u, e);
          if (excess[static_cast<std::size_t>(u)] <= 1e-12) break;
        }
        min_height = std::min(min_height, height[static_cast<std::size_t>(e.to)]);
      }
      if (excess[static_cast<std::size_t>(u)] > 1e-12) {
        if (min_height >= 2 * net.nodes + 1) break;  // no admissible or relabelable edge
        height[static_cast<std::size_t>(u)] = min_height + 1;  // relabel
      }
    }
  }
  // Excess accumulated at the sink is exactly the max-flow value.
  return excess[static_cast<std::size_t>(net.sink)];
}

}  // namespace robustify::graph
