// All-pairs shortest paths: Floyd-Warshall (templated; the faulty
// combinatorial baseline) and a clean repeated-Dijkstra oracle.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.h"
#include "linalg/matrix.h"

namespace robustify::graph {

inline constexpr double kUnreachable = 1e30;  // finite sentinel: no Inf arithmetic

// Floyd-Warshall with the min/add relaxations in T: a corrupted relaxation
// poisons every later path that reads the entry, which is why the baseline
// loses correctness with fault rate.
template <class T>
linalg::Matrix<T> FloydWarshall(const Digraph& g) {
  const std::size_t n = static_cast<std::size_t>(g.nodes);
  linalg::Matrix<T> dist(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) dist(i, j) = T(i == j ? 0.0 : kUnreachable);
  }
  for (const auto& e : g.edges) {
    const auto u = static_cast<std::size_t>(e.from);
    const auto v = static_cast<std::size_t>(e.to);
    if (T(e.weight) < dist(u, v)) dist(u, v) = T(e.weight);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const T through = dist(i, k) + dist(k, j);
        if (through < dist(i, j)) dist(i, j) = through;
      }
    }
  }
  return dist;
}

// Clean oracle: Dijkstra from every source (reliable double arithmetic).
linalg::Matrix<double> AllPairsDijkstra(const Digraph& g);

}  // namespace robustify::graph
