#include "graph/shortest_paths.h"

namespace robustify::graph {

linalg::Matrix<double> AllPairsDijkstra(const Digraph& g) {
  const std::size_t n = static_cast<std::size_t>(g.nodes);
  std::vector<std::vector<std::pair<int, double>>> adj(n);
  for (const auto& e : g.edges) {
    adj[static_cast<std::size_t>(e.from)].push_back({e.to, e.weight});
  }
  linalg::Matrix<double> dist(n, n);
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<double> d(n, kUnreachable);
    std::vector<bool> done(n, false);
    d[s] = 0.0;
    for (std::size_t round = 0; round < n; ++round) {
      int best = -1;
      for (std::size_t v = 0; v < n; ++v) {
        if (!done[v] && (best < 0 || d[v] < d[static_cast<std::size_t>(best)])) {
          best = static_cast<int>(v);
        }
      }
      if (best < 0 || d[static_cast<std::size_t>(best)] >= kUnreachable) break;
      done[static_cast<std::size_t>(best)] = true;
      for (const auto& [to, w] : adj[static_cast<std::size_t>(best)]) {
        const double cand = d[static_cast<std::size_t>(best)] + w;
        if (cand < d[static_cast<std::size_t>(to)]) d[static_cast<std::size_t>(to)] = cand;
      }
    }
    for (std::size_t v = 0; v < n; ++v) dist(s, v) = d[v];
  }
  return dist;
}

}  // namespace robustify::graph
