// Maximum-weight bipartite matching (Hungarian / Kuhn-Munkres with
// potentials), templated on the scalar.  On faulty::Real its comparisons
// and reductions run on the faulty FPU — a single inverted comparison
// commits a wrong augmenting path, which is why the combinatorial baseline
// degrades with fault rate.  All loop bounds are integers, so it terminates
// regardless of what the arithmetic does.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.h"
#include "linalg/scalar.h"

namespace robustify::graph {

template <class T>
Matching HungarianMatching(const BipartiteGraph& g) {
  using linalg::AsDouble;
  const int n = g.left;
  const int m = g.right;
  constexpr double kBig = 1e30;

  // Dense min-cost matrix: cost = maxw - w so max weight == min cost;
  // missing edges get a large cost.  Built by data moves (reliable).
  double maxw = 0.0;
  for (const auto& e : g.edges) {
    if (e.weight > maxw) maxw = e.weight;
  }
  std::vector<std::vector<double>> cost(static_cast<std::size_t>(n),
                                        std::vector<double>(static_cast<std::size_t>(m), kBig));
  for (const auto& e : g.edges) {
    cost[static_cast<std::size_t>(e.u)][static_cast<std::size_t>(e.v)] = maxw - e.weight;
  }

  // Jonker-Volgenant style shortest augmenting paths with potentials, all
  // arithmetic in T.  1-based helper arrays as in the classic formulation.
  std::vector<T> potential_u(static_cast<std::size_t>(n) + 1, T(0));
  std::vector<T> potential_v(static_cast<std::size_t>(m) + 1, T(0));
  std::vector<int> match_v(static_cast<std::size_t>(m) + 1, 0);  // left matched to right j
  std::vector<int> way(static_cast<std::size_t>(m) + 1, 0);

  for (int i = 1; i <= n; ++i) {
    match_v[0] = i;
    int j0 = 0;
    std::vector<T> min_slack(static_cast<std::size_t>(m) + 1, T(kBig));
    std::vector<bool> used(static_cast<std::size_t>(m) + 1, false);
    // At most m+1 column scans per augmentation: integer-bounded.
    for (int scan = 0; scan <= m && match_v[static_cast<std::size_t>(j0)] != 0; ++scan) {
      used[static_cast<std::size_t>(j0)] = true;
      const int i0 = match_v[static_cast<std::size_t>(j0)];
      T delta(kBig);
      int j1 = -1;
      for (int j = 1; j <= m; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        const T cur = T(cost[static_cast<std::size_t>(i0 - 1)][static_cast<std::size_t>(j - 1)]) -
                      potential_u[static_cast<std::size_t>(i0)] -
                      potential_v[static_cast<std::size_t>(j)];
        if (cur < min_slack[static_cast<std::size_t>(j)]) {
          min_slack[static_cast<std::size_t>(j)] = cur;
          way[static_cast<std::size_t>(j)] = j0;
        }
        if (min_slack[static_cast<std::size_t>(j)] < delta) {
          delta = min_slack[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      if (j1 < 0) break;  // no free column reachable (shouldn't happen when m >= n)
      for (int j = 0; j <= m; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          potential_u[static_cast<std::size_t>(match_v[static_cast<std::size_t>(j)])] += delta;
          potential_v[static_cast<std::size_t>(j)] -= delta;
        } else {
          min_slack[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    }
    // Augment along the found path.
    for (int guard = 0; guard <= m && j0 != 0; ++guard) {
      const int j1 = way[static_cast<std::size_t>(j0)];
      match_v[static_cast<std::size_t>(j0)] = match_v[static_cast<std::size_t>(j1)];
      j0 = j1;
    }
  }

  Matching result;
  result.right_of_left.assign(static_cast<std::size_t>(n), -1);
  for (int j = 1; j <= m; ++j) {
    const int i = match_v[static_cast<std::size_t>(j)];
    if (i >= 1 && i <= n) result.right_of_left[static_cast<std::size_t>(i - 1)] = j - 1;
  }
  T total(0);
  for (const auto& e : g.edges) {
    if (result.right_of_left[static_cast<std::size_t>(e.u)] == e.v) total += T(e.weight);
  }
  result.weight = AsDouble(total);
  return result;
}

// Clean oracle: the optimal matching weight on a reliable FPU.
double OptimalMatchingWeight(const BipartiteGraph& g);

}  // namespace robustify::graph
