// Graph problem types (clean double data in reliable memory).
#pragma once

#include <vector>

namespace robustify::graph {

struct BipartiteGraph {
  struct Edge {
    int u = 0;  // left vertex
    int v = 0;  // right vertex
    double weight = 0.0;
  };
  int left = 0;
  int right = 0;
  std::vector<Edge> edges;
};

// A matching over a BipartiteGraph: right_of_left[u] is the matched right
// vertex of left vertex u, or -1.
struct Matching {
  std::vector<int> right_of_left;
  double weight = 0.0;
};

struct FlowNetwork {
  struct Edge {
    int from = 0;
    int to = 0;
    double capacity = 0.0;
  };
  int nodes = 0;
  int source = 0;
  int sink = 0;
  std::vector<Edge> edges;
};

struct Digraph {
  struct Edge {
    int from = 0;
    int to = 0;
    double weight = 0.0;
  };
  int nodes = 0;
  std::vector<Edge> edges;
};

struct MaxFlowResult {
  double value = 0.0;
  int augmentations = 0;
};

}  // namespace robustify::graph
