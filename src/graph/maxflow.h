// Max flow: Edmonds-Karp (templated; the faulty combinatorial baseline) and
// a clean push-relabel oracle.
#pragma once

#include <cmath>
#include <cstddef>
#include <queue>
#include <vector>

#include "graph/types.h"
#include "linalg/scalar.h"

namespace robustify::graph {

namespace detail {

struct ResidualEdge {
  int to;
  int rev;  // index of the reverse edge in adj[to]
  double capacity;
};

inline std::vector<std::vector<ResidualEdge>> BuildResidual(const FlowNetwork& net) {
  std::vector<std::vector<ResidualEdge>> adj(static_cast<std::size_t>(net.nodes));
  for (const auto& e : net.edges) {
    const auto u = static_cast<std::size_t>(e.from);
    const auto v = static_cast<std::size_t>(e.to);
    adj[u].push_back({e.to, static_cast<int>(adj[v].size()), e.capacity});
    adj[v].push_back({e.from, static_cast<int>(adj[u].size()) - 1, 0.0});
  }
  return adj;
}

}  // namespace detail

// Edmonds-Karp with residual arithmetic in T.  Faults can misjudge residual
// capacities or augmentation amounts; the augmentation count is capped so
// the algorithm always terminates.
template <class T>
MaxFlowResult EdmondsKarpMaxFlow(const FlowNetwork& net) {
  using linalg::AsDouble;
  const std::size_t n = static_cast<std::size_t>(net.nodes);
  // Residual capacities held in T.
  std::vector<std::vector<detail::ResidualEdge>> shape = detail::BuildResidual(net);
  std::vector<std::vector<T>> residual(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (const auto& e : shape[u]) residual[u].push_back(T(e.capacity));
  }

  T flow(0);
  // Clean Edmonds-Karp needs at most O(V*E/2) augmentations; the cap only
  // has to bound runs whose residual arithmetic is corrupted.
  const int max_augmentations =
      net.nodes * static_cast<int>(net.edges.size()) + 16;
  int augmentations = 0;
  for (; augmentations < max_augmentations; ++augmentations) {
    // BFS for the shortest augmenting path (integer control; the residual
    // test `cap > eps` is a faulty comparison).
    std::vector<int> prev_node(n, -1);
    std::vector<int> prev_edge(n, -1);
    std::queue<int> frontier;
    frontier.push(net.source);
    prev_node[static_cast<std::size_t>(net.source)] = net.source;
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      const auto& edges = shape[static_cast<std::size_t>(u)];
      for (std::size_t k = 0; k < edges.size(); ++k) {
        const int v = edges[k].to;
        if (prev_node[static_cast<std::size_t>(v)] != -1) continue;
        if (!(residual[static_cast<std::size_t>(u)][k] > T(1e-9))) continue;
        prev_node[static_cast<std::size_t>(v)] = u;
        prev_edge[static_cast<std::size_t>(v)] = static_cast<int>(k);
        frontier.push(v);
      }
    }
    if (prev_node[static_cast<std::size_t>(net.sink)] == -1) break;

    // Bottleneck along the path (faulty min), then push.
    T bottleneck(1e30);
    for (int v = net.sink; v != net.source;) {
      const int u = prev_node[static_cast<std::size_t>(v)];
      const auto k = static_cast<std::size_t>(prev_edge[static_cast<std::size_t>(v)]);
      if (residual[static_cast<std::size_t>(u)][k] < bottleneck) {
        bottleneck = residual[static_cast<std::size_t>(u)][k];
      }
      v = u;
    }
    if (!std::isfinite(AsDouble(bottleneck)) || AsDouble(bottleneck) <= 0.0) break;
    for (int v = net.sink; v != net.source;) {
      const int u = prev_node[static_cast<std::size_t>(v)];
      const auto k = static_cast<std::size_t>(prev_edge[static_cast<std::size_t>(v)]);
      residual[static_cast<std::size_t>(u)][k] -= bottleneck;
      const auto rev = static_cast<std::size_t>(shape[static_cast<std::size_t>(u)][k].rev);
      residual[static_cast<std::size_t>(v)][rev] += bottleneck;
      v = u;
    }
    flow += bottleneck;
  }

  MaxFlowResult result;
  result.value = AsDouble(flow);
  result.augmentations = augmentations;
  return result;
}

// Clean FIFO push-relabel oracle (reliable double arithmetic).
double PushRelabelMaxFlow(const FlowNetwork& net);

}  // namespace robustify::graph
