// Deterministic random graph generators for the paper's problem families.
#pragma once

#include <cstdint>

#include "graph/types.h"

namespace robustify::graph {

// Bipartite graph with `left` x `right` vertices and up to `edges` edges
// (complete when edges >= left*right, as in the paper's 5x6/30-edge family);
// weights uniform in [0.1, 1.0).
BipartiteGraph RandomBipartite(int left, int right, int edges, std::uint64_t seed);

// Flow network: source 0, sink nodes-1, two node-disjoint source->sink
// backbone paths (so max flow is positive) plus `extra_edges` random edges;
// capacities uniform in [1, 4).
FlowNetwork RandomFlowNetwork(int nodes, int extra_edges, std::uint64_t seed);

// Strongly connected digraph: a Hamiltonian cycle plus random extra edges up
// to `edges` total; weights uniform in [0.1, 2.0).
Digraph RandomDigraph(int nodes, int edges, std::uint64_t seed);

}  // namespace robustify::graph
