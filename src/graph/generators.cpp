#include "graph/generators.h"

#include <random>
#include <set>
#include <utility>

namespace robustify::graph {

BipartiteGraph RandomBipartite(int left, int right, int edges, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> weight(0.1, 1.0);
  BipartiteGraph g;
  g.left = left;
  g.right = right;
  if (edges >= left * right) {
    for (int u = 0; u < left; ++u) {
      for (int v = 0; v < right; ++v) g.edges.push_back({u, v, weight(rng)});
    }
    return g;
  }
  std::set<std::pair<int, int>> used;
  std::uniform_int_distribution<int> pick_u(0, left - 1);
  std::uniform_int_distribution<int> pick_v(0, right - 1);
  // Cover every left vertex first so a perfect matching on the smaller side
  // can exist, then fill with random distinct pairs.
  for (int u = 0; u < left && static_cast<int>(g.edges.size()) < edges; ++u) {
    const int v = pick_v(rng);
    used.insert({u, v});
    g.edges.push_back({u, v, weight(rng)});
  }
  while (static_cast<int>(g.edges.size()) < edges) {
    const int u = pick_u(rng);
    const int v = pick_v(rng);
    if (!used.insert({u, v}).second) continue;
    g.edges.push_back({u, v, weight(rng)});
  }
  return g;
}

FlowNetwork RandomFlowNetwork(int nodes, int extra_edges, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> capacity(1.0, 4.0);
  FlowNetwork net;
  net.nodes = nodes;
  net.source = 0;
  net.sink = nodes - 1;
  std::set<std::pair<int, int>> used;
  auto add_edge = [&](int from, int to) {
    if (from == to || !used.insert({from, to}).second) return;
    // Source-adjacent edges get extra headroom so the min cut lives in the
    // interior: otherwise the LP's box clamp alone would solve the problem.
    const double scale = from == net.source ? 3.0 : 1.0;
    net.edges.push_back({from, to, scale * capacity(rng)});
  };
  // Two node-disjoint backbone paths through the interior.
  const int interior = nodes - 2;
  const int half = interior / 2;
  int prev = net.source;
  for (int i = 1; i <= half; ++i) {
    add_edge(prev, i);
    prev = i;
  }
  add_edge(prev, net.sink);
  prev = net.source;
  for (int i = half + 1; i <= interior; ++i) {
    add_edge(prev, i);
    prev = i;
  }
  add_edge(prev, net.sink);

  std::uniform_int_distribution<int> pick(0, nodes - 1);
  const int target = static_cast<int>(net.edges.size()) + extra_edges;
  int attempts = 0;
  while (static_cast<int>(net.edges.size()) < target && attempts < 20 * (extra_edges + 1)) {
    ++attempts;
    const int from = pick(rng);
    const int to = pick(rng);
    if (to == net.source || from == net.sink) continue;
    add_edge(from, to);
  }
  return net;
}

Digraph RandomDigraph(int nodes, int edges, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> weight(0.1, 2.0);
  Digraph g;
  g.nodes = nodes;
  std::set<std::pair<int, int>> used;
  for (int u = 0; u < nodes; ++u) {  // Hamiltonian cycle: strong connectivity
    const int v = (u + 1) % nodes;
    used.insert({u, v});
    g.edges.push_back({u, v, weight(rng)});
  }
  std::uniform_int_distribution<int> pick(0, nodes - 1);
  int attempts = 0;
  while (static_cast<int>(g.edges.size()) < edges && attempts < 40 * edges) {
    ++attempts;
    const int u = pick(rng);
    const int v = pick(rng);
    if (u == v || !used.insert({u, v}).second) continue;
    g.edges.push_back({u, v, weight(rng)});
  }
  return g;
}

}  // namespace robustify::graph
