#include "graph/matching.h"

namespace robustify::graph {

double OptimalMatchingWeight(const BipartiteGraph& g) {
  return HungarianMatching<double>(g).weight;
}

}  // namespace robustify::graph
