// Journaled campaign state: crash-safe progress for long campaigns.
//
// The journal is an append-only text file.  Line 1 is a header carrying the
// spec fingerprint (campaign/spec.h); every subsequent line records one
// accepted trial: cell coordinates, trial index, success flag, the quality
// metric as a C99 %a hex float (exact binary64 round-trip — resuming must
// reproduce the uninterrupted run's CSV byte for byte), and the exact
// uint64 flop/fault counters.
//
// Workers append whole batches under one lock with a flush per batch, so a
// SIGKILL can lose at most the batches in flight and can tear at most the
// final line.  Load() therefore accepts a truncated tail: the first
// malformed line and everything after it are dropped (they can only be the
// torn end of the final write).  Trials past a cell's deterministic
// stopping point are never journaled, so replaying a journal rebuilds
// exactly the accepted-outcome prefix of every cell.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

namespace robustify::campaign {

struct TrialRecord {
  int series = 0;  // index into the scenario's series list
  int rate = 0;    // index into the spec's fault-rate axis
  int trial = 0;   // trial index within the cell (seed = base_seed + trial)
  bool success = false;
  double metric = 0.0;
  std::uint64_t faulty_flops = 0;
  std::uint64_t faults_injected = 0;
  // core::TrialVerdict as an int.  Journals written before the guarded
  // executor carry seven fields per line; Load() derives the verdict from
  // the success flag for those, so old journals resume cleanly.
  int verdict = 0;
};

class CampaignJournal {
 public:
  struct Loaded {
    bool exists = false;            // a readable journal with a valid header
    std::uint64_t fingerprint = 0;  // from the header, when exists
    std::vector<TrialRecord> records;
  };

  // Reads `path`, tolerating a torn trailing line.  exists == false when
  // the file is absent or its header is unreadable.
  static Loaded Load(const std::string& path);

  explicit CampaignJournal(std::string path) : path_(std::move(path)) {}

  // Truncates and writes a fresh header (a new campaign run).
  void Start(std::uint64_t fingerprint);

  // Resume path: atomically replaces the journal with a fresh header plus
  // the already-loaded records (write to <path>.tmp, then rename), then
  // opens it for appending.  This heals a torn trailing line — appending
  // directly after one would concatenate the next record onto it and lose
  // both — without ever leaving a window where the journal is truncated
  // but not yet rewritten.
  void RewriteAndOpen(std::uint64_t fingerprint,
                      const std::vector<TrialRecord>& records);

  // Appends `count` records as one locked write + flush.  Safe to call from
  // multiple workers.  Throws std::runtime_error when the write fails.
  void Append(const TrialRecord* records, std::size_t count);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::mutex mu_;
  std::ofstream os_;
};

}  // namespace robustify::campaign
