// Declarative campaign specifications: *what* to run, separated from the
// harness's *how to run one trial*.
//
// A CampaignSpec names an application scenario (see campaign/scenarios.h),
// the series subset, the fault-rate axis, and the trial-allocation policy —
// either a fixed per-cell budget (the historical sweep behavior every bench
// defaults to) or the adaptive sequential policy (campaign/adaptive.h) that
// stops a (series, rate) cell as soon as the success-rate Wilson interval
// is tight enough.  Specs parse from a small key=value text format and the
// registry below maps every figure/bench sweep to its canonical spec, so
// axis definitions live in one table instead of being scattered over the
// bench mains.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/guard.h"
#include "faulty/bit_distribution.h"
#include "faulty/fault_model.h"
#include "harness/sweep.h"

namespace robustify::campaign {

struct CampaignSpec {
  std::string name;  // campaign tag: journal header, default output names
  std::string app;   // scenario key (campaign/scenarios.h), e.g. "fig6_1"
  // Series subset to run, in this order; empty = every series the scenario
  // defines, in scenario order.
  std::vector<std::string> series;
  std::vector<double> fault_rates;

  // Fixed-budget mode (the bench defaults): repetitions per cell.
  int fixed_trials = 10;

  // Adaptive mode: per-cell budget cap, floor before the stopping rule may
  // fire, trials executed (and journaled) per round, and the target Wilson
  // 95% half-width on the success fraction.  The stopping point of a cell
  // is a pure function of its outcome sequence in trial order — never of
  // batch size or thread count (campaign/adaptive.h).  batch > 1 runs
  // speculative trials that are discarded if the rule fires mid-round
  // (deterministic, but wasted wall time — a cell settling at 9 executes
  // 16 under batch=8); since trials within a cell are serial on one worker
  // and the stop check is trivially cheap, batch=1 is the default and
  // larger batches exist for coarser journal flushing and the
  // batch-invariance tests.
  int max_trials = 100;
  int min_trials = 4;
  int batch = 1;
  double ci_half_width = 0.15;

  std::uint64_t base_seed = 1;
  faulty::BitModel bit_model = faulty::BitModel::kBimodal;

  // Shard selection: this process owns the cells whose grid index is
  // congruent to shard_index mod shard_count.  Cells are location-
  // independent (per-cell seeding), so N shard runs of the same spec
  // produce, cell for cell, exactly the records one unsharded run would —
  // their journals merge into the result store (store/result_store.h) and
  // reduce to a byte-identical CSV.  Like batch, sharding schedules work
  // without changing any accepted tally, so it is canonicalized away by
  // SpecFingerprint: every shard of a campaign shares one fingerprint.
  int shard_index = 0;
  int shard_count = 1;

  // Fault-model axis (faulty/fault_model.h): temporal behavior, op-class
  // mask, and the per-model law parameters.  The default (kAuto temporal,
  // arith+cmp classes) reproduces the historical transient injector; specs
  // that set `model` pin the temporal behavior explicitly and are immune to
  // the ROBUSTIFY_FAULT_MODEL override.
  faulty::FaultModel model;

  // Guarded trial executor (core/guard.h): per-trial flop/iteration budget
  // caps and the non-finite bailout.  Inactive by default.  When any guard
  // field is set, campaign and sweep CSVs gain the outcome-taxonomy columns
  // (wrong/diverged/budget percentages) — schema is a pure function of the
  // spec.
  core::TrialGuard guard;
};

// ---- key=value spec files ---------------------------------------------------
//
// One `key = value` pair per line; '#' starts a comment; unknown keys are
// errors (a typoed key silently falling back to a default would produce a
// plausible-but-wrong campaign).  `series` may repeat, one series name per
// line (names contain commas, e.g. "SGD+AS,LS", so no list syntax).  Keys:
//   name, app, rates (comma-separated), trials (fixed budget),
//   budget (adaptive cap), min_trials, batch, ci (half-width fraction),
//   seed, bit_model (bimodal|uniform|msb|lsb), series, shard (i/N),
//   model (transient|stuck|burst|intermittent),
//   op_classes (comma-joined arith|cmp|mem subset),
//   stuck_mean / burst_width / window_mean / window_rate (model params),
//   guard_flops / guard_iters (budget caps), guard_bailout (0|1).
// FormatSpec emits the model/guard keys only when they differ from the
// defaults, so fingerprints of pre-model specs are unchanged.

// Throws std::runtime_error with a line-numbered message on malformed input.
CampaignSpec ParseSpec(std::istream& is);
CampaignSpec ParseSpecFile(const std::string& path);

// The rate-axis list parser the spec format uses ("0, 1e-4, 0.25"); shared
// with the CLI's --rates flag so the two surfaces cannot drift.  Throws
// std::runtime_error on malformed or empty input.
std::vector<double> ParseRateAxis(const std::string& text);

// The "i/N" shard selector parser, shared between the spec format's `shard`
// key and the CLI's --shard flag.  Throws std::runtime_error on malformed
// input, N == 0, or i >= N — a shard that silently owned zero cells would
// look like a completed (empty) campaign.
std::pair<int, int> ParseShard(const std::string& text);

// Canonical round-trip text form (ParseSpec(FormatSpec(s)) == s).
std::string FormatSpec(const CampaignSpec& spec);

// FormatSpec with the scheduling and trial-allocation knobs (batch, shard,
// fixed trials, adaptive budget/floor/ci target) reset to their defaults:
// the text whose FNV hash is the fingerprint, and the spec.txt a result
// store directory carries so its key is self-describing.
std::string CanonicalSpecText(const CampaignSpec& spec);

// FNV-1a of the canonical form: the checkpoint journal stores it so a
// resume with a mismatched spec is rejected instead of silently merging
// incompatible tallies.  The fingerprint identifies the campaign's
// deterministic per-cell outcome *sequences* (scenario, series, rates,
// seed, bit model, fault model, guard) — not how far they were sampled:
// batch, shard, and the trial-allocation knobs are canonicalized away, so
// shard journals merge under one store key and the query service can
// extend a stored cell at any requested precision.
std::uint64_t SpecFingerprint(const CampaignSpec& spec);

// ---- registry ---------------------------------------------------------------

// Names of every registered figure/bench sweep, in presentation order.
const std::vector<std::string>& RegistryNames();

// Null when `name` is not registered.
const CampaignSpec* FindRegistrySpec(const std::string& name);

// Throws std::runtime_error (listing the valid names) when unknown.
const CampaignSpec& RegistrySpec(const std::string& name);

// The fixed-budget bridge the bench mains run through: the spec's axis,
// fixed trial count, seed, and bit model as a harness sweep configuration.
harness::SweepConfig ToSweepConfig(const CampaignSpec& spec);

}  // namespace robustify::campaign
