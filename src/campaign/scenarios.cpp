#include "campaign/scenarios.h"

#include <cmath>
#include <memory>
#include <random>
#include <stdexcept>
#include <utility>

#include "apps/apsp_app.h"
#include "apps/configs.h"
#include "apps/eigen_app.h"
#include "apps/iir_app.h"
#include "apps/least_squares.h"
#include "apps/matching_app.h"
#include "apps/maxflow_app.h"
#include "apps/sort_app.h"
#include "apps/svm_app.h"
#include "core/fault_env.h"
#include "core/phases.h"
#include "core/variants.h"
#include "graph/generators.h"
#include "graph/maxflow.h"
#include "graph/shortest_paths.h"
#include "linalg/random.h"
#include "linalg/tiled.h"
#include "signal/metrics.h"
#include "signal/signals.h"

namespace robustify::campaign {

namespace {

// ---- fig6_1 / momentum_sort: sorting ---------------------------------------

std::vector<double> SortInput(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> v(5);
  for (double& x : v) x = dist(rng);
  return v;
}

harness::TrialFn SortBaseFn() {
  return [](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const std::vector<double> input = SortInput(env.seed * 7919);
    const std::vector<double> sorted = core::WithFaultyFpu(
        env, [&] { return apps::BaselineSort<faulty::Real>(input); },
        &out.fpu_stats);
    out.success = apps::IsSortedCopyOf(sorted, input);
    return out;
  };
}

harness::TrialFn SortVariantFn(const apps::LpSolveConfig& config) {
  return [config](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const std::vector<double> input = SortInput(env.seed * 7919);
    const apps::RobustSortResult r = core::WithFaultyFpu(
        env, [&] { return apps::RobustSort<faulty::Real>(input, config); },
        &out.fpu_stats);
    out.success = r.valid && apps::IsSortedCopyOf(r.output, input);
    return out;
  };
}

Scenario MakeSortScenario() {
  Scenario s;
  s.app = "fig6_1";
  s.title = "Accuracy of Sort - 10000 Iterations";
  s.value = harness::TableValue::kSuccessRatePct;
  s.value_label = "success rate (%)";
  s.csv_name = "fig6_1_sort.csv";
  s.series = {
      {"Base", SortBaseFn()},
      {"SGD", SortVariantFn(apps::SortSgdLs())},
      {"SGD+AS,LS", SortVariantFn(apps::SortSgdAsLs())},
      {"SGD+AS,SQS", SortVariantFn(apps::SortSgdAsSqs())},
  };
  return s;
}

Scenario MakeMomentumSortScenario() {
  apps::LpSolveConfig plain = apps::SortSgdAsSqs();
  apps::LpSolveConfig momentum = plain;
  momentum.sgd.momentum_beta = 0.5;
  Scenario s;
  s.app = "momentum_sort";
  s.title = "Sorting: momentum ablation";
  s.value = harness::TableValue::kSuccessRatePct;
  s.value_label = "success rate (%)";
  s.csv_name = "momentum_sort.csv";
  s.series = {
      {"sort (no momentum)", SortVariantFn(plain)},
      {"sort (momentum 0.5)", SortVariantFn(momentum)},
  };
  return s;
}

// ---- fig6_2 / fig6_6: least squares ----------------------------------------

harness::TrialFn LsqSgdFn(std::shared_ptr<const apps::LsqProblem> problem,
                          const opt::SgdOptions& options) {
  return [problem, options](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const linalg::Vector<double> x = core::WithFaultyFpu(
        env, [&] { return apps::SolveLsqSgd<faulty::Real>(*problem, options); },
        &out.fpu_stats);
    out.metric = signal::RelativeError(x, problem->exact);
    out.success = out.metric < 1e-2;
    return out;
  };
}

harness::TrialFn LsqBaselineFn(std::shared_ptr<const apps::LsqProblem> problem,
                               linalg::LsqBaseline which, double threshold) {
  return [problem, which, threshold](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const linalg::Vector<double> x = core::WithFaultyFpu(
        env,
        [&] { return apps::SolveLsqBaseline<faulty::Real>(*problem, which); },
        &out.fpu_stats);
    out.metric = signal::RelativeError(x, problem->exact);
    out.success = out.metric < threshold;
    return out;
  };
}

Scenario MakeLsqScenario() {
  const auto problem =
      std::make_shared<const apps::LsqProblem>(apps::MakeRandomLsqProblem(100, 10, 7));
  Scenario s;
  s.app = "fig6_2";
  s.title = "Accuracy of Least Squares - 1000 Iterations (median rel. error)";
  s.value = harness::TableValue::kMedianMetric;
  s.value_label = "median relative error w.r.t. ideal";
  s.csv_name = "fig6_2_least_squares.csv";
  s.series = {
      {"Base:SVD", LsqBaselineFn(problem, linalg::LsqBaseline::kSvd, 1e-2)},
      {"SGD,LS", LsqSgdFn(problem, apps::LsqSgdLs())},
      {"SGD+AS,LS", LsqSgdFn(problem, apps::LsqSgdAsLs())},
      {"SGD+AS,SQS", LsqSgdFn(problem, apps::LsqSgdAsSqs())},
  };
  return s;
}

harness::TrialFn LsqCgFn(std::shared_ptr<const apps::LsqProblem> problem) {
  return [problem](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const opt::CgResult r = core::WithFaultyFpu(
        env, [&] { return apps::SolveLsqCg<faulty::Real>(*problem, apps::LsqCg(10)); },
        &out.fpu_stats);
    out.metric = signal::RelativeError(r.x, problem->exact);
    out.success = out.metric < 1e-3;
    return out;
  };
}

Scenario MakeCgLsqScenario() {
  const auto problem =
      std::make_shared<const apps::LsqProblem>(apps::MakeRandomLsqProblem(100, 10, 8));
  Scenario s;
  s.app = "fig6_6";
  s.title = "Accuracy of Least Squares (median relative error)";
  s.value = harness::TableValue::kMedianMetric;
  s.value_label = "median rel. error w.r.t. ideal";
  s.csv_name = "fig6_6_cg_least_squares.csv";
  s.series = {
      {"Base:QR", LsqBaselineFn(problem, linalg::LsqBaseline::kQr, 1e-3)},
      {"Base:SVD", LsqBaselineFn(problem, linalg::LsqBaseline::kSvd, 1e-3)},
      {"Base:Cholesky", LsqBaselineFn(problem, linalg::LsqBaseline::kCholesky, 1e-3)},
      {"CG,N=10", LsqCgFn(problem)},
  };
  return s;
}

// ---- tiled_cholesky: tiled direct solvers with in-trial task parallelism ----

harness::TrialFn TiledLsqFn(std::shared_ptr<const apps::LsqProblem> problem,
                            linalg::LsqBaseline which, std::size_t tile,
                            double threshold) {
  return [problem, which, tile, threshold](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    linalg::TiledOptions options;
    options.tile = tile;
    options.fault = apps::TileConfigFromEnv(env);
    // No WithFaultyFpu scope: the engine runs one injector per tile task,
    // seeded from (env.seed, task id) — bit-reproducible at any worker count.
    const linalg::Vector<double> x = apps::SolveLsqTiled<faulty::Real>(
        *problem, which, options, &out.fpu_stats);
    out.metric = signal::RelativeError(x, problem->exact);
    out.success = out.metric < threshold;
    return out;
  };
}

Scenario MakeTiledCholeskyScenario() {
  const auto problem = std::make_shared<const apps::LsqProblem>(
      apps::MakeRandomLsqProblem(160, 96, 75));
  Scenario s;
  s.app = "tiled_cholesky";
  s.title = "Tiled direct solvers (median rel. error)";
  s.value = harness::TableValue::kMedianMetric;
  s.value_label = "median relative error w.r.t. ideal";
  s.csv_name = "tiled_cholesky.csv";
  s.series = {
      {"Tiled:Cholesky", TiledLsqFn(problem, linalg::LsqBaseline::kCholesky, 32, 1e-6)},
      {"Tiled:QR", TiledLsqFn(problem, linalg::LsqBaseline::kQr, 32, 1e-6)},
  };
  return s;
}

// ---- fig6_3: IIR filtering -------------------------------------------------

struct IirData {
  signal::IirCoefficients coeffs;
  linalg::Vector<double> input;
  linalg::Vector<double> clean;
};

harness::TrialFn IirRobustFn(std::shared_ptr<const IirData> data,
                             const opt::SgdOptions& options) {
  return [data, options](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const linalg::Vector<double> y = core::WithFaultyFpu(
        env,
        [&] { return apps::RobustIir<faulty::Real>(data->coeffs, data->input, options); },
        &out.fpu_stats);
    out.metric = signal::ErrorToSignalRatio(y, data->clean);
    out.success = out.metric < 1e-2;
    return out;
  };
}

Scenario MakeIirScenario() {
  auto data = std::make_shared<IirData>();
  data->coeffs = signal::MakeStableIir(5, 5, 63);
  data->input = signal::SineMix(500, {3.0, 17.0, 41.0}, {1.0, 0.5, 0.25});
  data->clean = apps::BaselineIir<double>(data->coeffs, data->input);
  const std::shared_ptr<const IirData> shared = data;
  Scenario s;
  s.app = "fig6_3";
  s.title = "Accuracy of IIR - 1000 Iterations (median error/signal)";
  s.value = harness::TableValue::kMedianMetric;
  s.value_label = "median ||y-y*||/||y*||";
  s.csv_name = "fig6_3_iir.csv";
  s.series = {
      {"Base",
       [shared](const core::FaultEnvironment& env) {
         harness::TrialOutcome out;
         const linalg::Vector<double> y = core::WithFaultyFpu(
             env,
             [&] { return apps::BaselineIir<faulty::Real>(shared->coeffs, shared->input); },
             &out.fpu_stats);
         out.metric = signal::ErrorToSignalRatio(y, shared->clean);
         out.success = out.metric < 1e-2;
         return out;
       }},
      {"SGD,LS", IirRobustFn(shared, apps::IirSgdLs())},
      {"SGD+AS,LS", IirRobustFn(shared, apps::IirSgdAsLs())},
      {"SGD+AS,SQS", IirRobustFn(shared, apps::IirSgdAsSqs())},
  };
  return s;
}

// ---- fig6_4 / fig6_5 / momentum_matching: bipartite matching ---------------

harness::TrialFn MatchingBaseFn(std::shared_ptr<const graph::BipartiteGraph> g) {
  return [g](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const graph::Matching m = core::WithFaultyFpu(
        env, [&] { return apps::BaselineMatching<faulty::Real>(*g); }, &out.fpu_stats);
    out.success = apps::MatchesOptimal(*g, m);
    return out;
  };
}

harness::TrialFn MatchingRobustFn(std::shared_ptr<const graph::BipartiteGraph> g,
                                  const apps::LpSolveConfig& config) {
  return [g, config](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const apps::MatchingResult r = core::WithFaultyFpu(
        env, [&] { return apps::RobustMatching<faulty::Real>(*g, config); },
        &out.fpu_stats);
    out.success = r.valid && apps::MatchesOptimal(*g, r.matching);
    return out;
  };
}

std::shared_ptr<const graph::BipartiteGraph> PaperMatchingGraph() {
  // The paper's graph: 11 nodes, 30 edges (complete 5x6 bipartite).
  return std::make_shared<const graph::BipartiteGraph>(
      graph::RandomBipartite(5, 6, 30, 3));
}

Scenario MakeMatchingScenario() {
  const auto g = PaperMatchingGraph();
  Scenario s;
  s.app = "fig6_4";
  s.title = "Accuracy of Matching - 10000 Iterations";
  s.value = harness::TableValue::kSuccessRatePct;
  s.value_label = "success rate (%)";
  s.csv_name = "fig6_4_matching.csv";
  s.series = {
      {"Base", MatchingBaseFn(g)},
      {"SGD,LS", MatchingRobustFn(g, apps::MatchingBasicLs())},
      {"SGD+AS,LS", MatchingRobustFn(g, apps::MatchingSgdAsLs())},
      {"SGD+AS,SQS", MatchingRobustFn(g, apps::MatchingSgdAsSqs())},
  };
  return s;
}

Scenario MakeMatchingEnhancementsScenario() {
  const auto g = PaperMatchingGraph();
  Scenario s;
  s.app = "fig6_5";
  s.title = "Accuracy of Matching - enhancements";
  s.value = harness::TableValue::kSuccessRatePct;
  s.value_label = "success rate (%)";
  s.csv_name = "fig6_5_matching_enhancements.csv";
  s.series = {
      {"Non-robust", MatchingBaseFn(g)},
      {"Basic,LS", MatchingRobustFn(g, apps::MatchingBasicLs())},
      {"SQS", MatchingRobustFn(g, apps::MatchingSqs())},
      {"PRECOND", MatchingRobustFn(g, apps::MatchingPrecond())},
      {"ANNEAL", MatchingRobustFn(g, apps::MatchingAnneal())},
      {"ALL", MatchingRobustFn(g, apps::MatchingAll())},
  };
  return s;
}

Scenario MakeMomentumMatchingScenario() {
  const auto g = PaperMatchingGraph();
  apps::LpSolveConfig plain = apps::MatchingSgdAsSqs();
  apps::LpSolveConfig momentum = plain;
  momentum.sgd.momentum_beta = 0.5;
  Scenario s;
  s.app = "momentum_matching";
  s.title = "Matching: momentum ablation";
  s.value = harness::TableValue::kSuccessRatePct;
  s.value_label = "success rate (%)";
  s.csv_name = "momentum_matching.csv";
  s.series = {
      {"matching (no momentum)", MatchingRobustFn(g, plain)},
      {"matching (momentum 0.5)", MatchingRobustFn(g, momentum)},
  };
  return s;
}

// ---- maxflow / apsp: LP robustifications -----------------------------------

Scenario MakeMaxFlowScenario() {
  auto net = std::make_shared<const graph::FlowNetwork>(
      graph::RandomFlowNetwork(6, 6, 12));
  const double exact_flow = graph::PushRelabelMaxFlow(*net);
  Scenario s;
  s.app = "maxflow";
  s.title = "Max flow: median relative flow-value error";
  s.value = harness::TableValue::kMedianMetric;
  s.value_label = "median |F-F*|/F*";
  s.csv_name = "maxflow.csv";
  s.series = {
      {"Base: Ford-Fulkerson",
       [net, exact_flow](const core::FaultEnvironment& env) {
         harness::TrialOutcome out;
         const graph::MaxFlowResult r = core::WithFaultyFpu(
             env, [&] { return graph::EdmondsKarpMaxFlow<faulty::Real>(*net); },
             &out.fpu_stats);
         out.metric = std::abs(r.value - exact_flow) / exact_flow;
         out.success = out.metric < 1e-6;
         return out;
       }},
      {"SGD LP",
       [net, exact_flow](const core::FaultEnvironment& env) {
         harness::TrialOutcome out;
         const apps::FlowResult r = core::WithFaultyFpu(
             env,
             [&] { return apps::RobustMaxFlow<faulty::Real>(*net, apps::MaxFlowConfig()); },
             &out.fpu_stats);
         out.metric = r.valid ? std::abs(r.value - exact_flow) / exact_flow : 1e9;
         out.success = r.valid && out.metric < 0.05;
         return out;
       }},
  };
  return s;
}

Scenario MakeApspScenario() {
  auto g = std::make_shared<const graph::Digraph>(graph::RandomDigraph(5, 6, 15));
  auto exact =
      std::make_shared<const linalg::Matrix<double>>(graph::AllPairsDijkstra(*g));
  Scenario s;
  s.app = "apsp";
  s.title = "APSP: median max-abs distance error";
  s.value = harness::TableValue::kMedianMetric;
  s.value_label = "median max |D-D*|";
  s.csv_name = "apsp.csv";
  s.series = {
      {"Base: Floyd-Warshall",
       [g, exact](const core::FaultEnvironment& env) {
         harness::TrialOutcome out;
         const linalg::Matrix<double> d = core::WithFaultyFpu(
             env,
             [&] { return linalg::ToDouble(graph::FloydWarshall<faulty::Real>(*g)); },
             &out.fpu_stats);
         out.metric = apps::MaxAbsDistanceError(d, *exact);
         out.success = out.metric < 1e-6;
         return out;
       }},
      {"SGD LP",
       [g, exact](const core::FaultEnvironment& env) {
         harness::TrialOutcome out;
         const apps::ApspResult r = core::WithFaultyFpu(
             env, [&] { return apps::RobustApsp<faulty::Real>(*g, apps::ApspConfig()); },
             &out.fpu_stats);
         out.metric = r.valid ? apps::MaxAbsDistanceError(r.distances, *exact) : 1e9;
         out.success = r.valid && out.metric < 0.05;
         return out;
       }},
  };
  return s;
}

// ---- eigen_rayleigh ---------------------------------------------------------

struct EigenData {
  linalg::Matrix<double> a;
  std::vector<apps::Eigenpair> oracle;
};

harness::TrialFn RayleighFn(std::shared_ptr<const EigenData> data, std::size_t k) {
  return [data, k](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    apps::RayleighOptions options;
    options.iterations = 400;
    const auto pairs = core::WithFaultyFpu(
        env,
        [&] { return apps::TopEigenpairsRayleigh<faulty::Real>(data->a, k + 1, options); },
        &out.fpu_stats);
    const double got = pairs.back().value;
    const double want = data->oracle[k].value;
    out.metric = std::abs(got - want) / std::max(1e-9, std::abs(want));
    out.success = out.metric < 0.05;
    return out;
  };
}

Scenario MakeEigenScenario() {
  auto data = std::make_shared<EigenData>();
  std::mt19937_64 rng(72);
  data->a = linalg::RandomSymmetricMatrix(8, rng);
  data->oracle = apps::JacobiEigenSym(data->a);
  const std::shared_ptr<const EigenData> shared = data;
  Scenario s;
  s.app = "eigen_rayleigh";
  s.title = "Rayleigh eigenpairs: median relative eigenvalue error";
  s.value = harness::TableValue::kMedianMetric;
  s.value_label = "median |l - l*| / |l*|";
  s.csv_name = "eigen_rayleigh.csv";
  s.series = {
      {"lambda_1", RayleighFn(shared, 0)},
      {"lambda_2", RayleighFn(shared, 1)},
      {"lambda_3", RayleighFn(shared, 2)},
  };
  return s;
}

// ---- svm --------------------------------------------------------------------

harness::TrialFn SvmFn(std::shared_ptr<const apps::SvmDataset> data) {
  return [data](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const apps::SvmResult r = core::WithFaultyFpu(
        env,
        [&] {
          return apps::TrainSvm<faulty::Real>(
              *data, 0.01, core::MakeSgd(300, 1.0, opt::StepScaling::kSqrt));
        },
        &out.fpu_stats);
    out.metric = 1.0 - r.train_accuracy;  // error rate, lower is better
    out.success = r.train_accuracy >= 0.95;
    return out;
  };
}

Scenario MakeSvmScenario() {
  const auto easy = std::make_shared<const apps::SvmDataset>(
      apps::MakeBlobsDataset(40, 6, 4.0, 11));
  const auto hard = std::make_shared<const apps::SvmDataset>(
      apps::MakeBlobsDataset(40, 6, 1.5, 12));
  Scenario s;
  s.app = "svm";
  s.title = "SVM training error rate vs fault rate";
  s.value = harness::TableValue::kMedianMetric;
  s.value_label = "median training error rate";
  s.csv_name = "svm.csv";
  s.series = {
      {"margin=4.0", SvmFn(easy)},
      {"margin=1.5", SvmFn(hard)},
  };
  return s;
}

// ---- dispatch ---------------------------------------------------------------

struct ScenarioEntry {
  const char* app;
  Scenario (*make)();
};

constexpr ScenarioEntry kScenarios[] = {
    {"fig6_1", MakeSortScenario},
    {"fig6_2", MakeLsqScenario},
    {"fig6_3", MakeIirScenario},
    {"fig6_4", MakeMatchingScenario},
    {"fig6_5", MakeMatchingEnhancementsScenario},
    {"fig6_6", MakeCgLsqScenario},
    {"tiled_cholesky", MakeTiledCholeskyScenario},
    {"momentum_sort", MakeMomentumSortScenario},
    {"momentum_matching", MakeMomentumMatchingScenario},
    {"maxflow", MakeMaxFlowScenario},
    {"apsp", MakeApspScenario},
    {"eigen_rayleigh", MakeEigenScenario},
    {"svm", MakeSvmScenario},
};

Scenario MakeScenario(const std::string& app) {
  for (const ScenarioEntry& entry : kScenarios) {
    if (app == entry.app) return entry.make();
  }
  throw std::runtime_error("unknown scenario app '" + app + "'");
}

}  // namespace

std::vector<std::string> ScenarioSeriesNames(const std::string& app) {
  const Scenario s = MakeScenario(app);
  std::vector<std::string> names;
  names.reserve(s.series.size());
  for (const harness::NamedTrial& t : s.series) names.push_back(t.name);
  return names;
}

Scenario BuildScenario(const CampaignSpec& spec) {
  Scenario s = MakeScenario(spec.app);
  if (spec.series.empty()) return s;
  std::vector<harness::NamedTrial> selected;
  selected.reserve(spec.series.size());
  for (const std::string& name : spec.series) {
    bool found = false;
    for (const harness::NamedTrial& t : s.series) {
      if (t.name == name) {
        selected.push_back(t);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::runtime_error("scenario '" + spec.app + "' has no series '" + name +
                               "'");
    }
  }
  s.series = std::move(selected);
  return s;
}

}  // namespace robustify::campaign
