// Sequential CI-driven trial allocation for one campaign cell.
//
// A (series, fault-rate) cell of a success-rate sweep settles statistically
// long before a generous fixed budget is spent — a rate-0 cell succeeds
// every time, a far-past-the-cliff cell fails every time, and only cells on
// the figure's transition need many trials.  The controller implements a
// sequential stopping rule on the Wilson 95% score interval of the success
// fraction: scanning trial outcomes in seed order, a cell stops at the
// first trial count n >= min_trials whose interval half-width is <= the
// target (or at the budget cap).
//
// Determinism contract: the stopping point is a pure function of the
// outcome sequence in trial-index order, and trial t of a cell always runs
// with seed base_seed + t (harness::RunSingleTrial).  Batch size and thread
// count only decide how much speculative work is in flight when the rule
// fires — trials past the stopping point are discarded, never tallied — so
// a cell's accepted outcome set is bit-identical for every execution
// schedule, and an adaptive cell is always an exact prefix of the fixed
// sweep at the same seed.
#pragma once

namespace robustify::campaign {

struct AdaptiveConfig {
  int min_trials = 4;   // floor before the stopping rule may fire
  int max_trials = 100; // budget cap per cell
  double ci_half_width = 0.15;  // target Wilson 95% half-width (fraction)
};

// Half-width of the Wilson 95% score interval for `successes` out of
// `trials`.  Returns +inf for trials == 0 (no information).
double WilsonHalfWidth(int successes, int trials);

// Feeds outcomes one at a time, in trial-index order, and reports when the
// stopping rule fires.  Record() must not be called once done().
class CellController {
 public:
  explicit CellController(const AdaptiveConfig& config);

  // Index of the next trial to run (= outcomes recorded so far).
  int next_trial() const { return trials_; }
  int trials() const { return trials_; }
  int successes() const { return successes_; }
  bool done() const { return done_; }
  // True when done() fired because the interval met the target (rather
  // than the budget running out).
  bool settled() const { return settled_; }

  void Record(bool success);

 private:
  AdaptiveConfig config_;
  int trials_ = 0;
  int successes_ = 0;
  bool done_ = false;
  bool settled_ = false;
};

}  // namespace robustify::campaign
