#include "campaign/runner.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include "campaign/adaptive.h"
#include "core/fault_env.h"
#include "harness/parallel.h"
#include "harness/trial.h"
#include "telemetry/progress.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace robustify::campaign {

namespace {

harness::TrialOutcome ToOutcome(const TrialRecord& r) {
  harness::TrialOutcome out;
  out.success = r.success;
  out.metric = r.metric;
  out.fpu_stats.faulty_flops = r.faulty_flops;
  out.fpu_stats.faults_injected = r.faults_injected;
  out.verdict = static_cast<core::TrialVerdict>(r.verdict);
  return out;
}

TrialRecord ToRecord(const harness::TrialOutcome& out, int series, int rate,
                     int trial) {
  TrialRecord r;
  r.series = series;
  r.rate = rate;
  r.trial = trial;
  r.success = out.success;
  r.metric = out.metric;
  r.faulty_flops = out.fpu_stats.faulty_flops;
  r.faults_injected = out.fpu_stats.faults_injected;
  r.verdict = static_cast<int>(out.verdict);
  return r;
}

// Serial in-order reduction shared by RunCampaign and ReduceRecords: the
// accumulation order is fixed by cell order, never by execution schedule.
CampaignResult BuildResult(const CampaignSpec& spec, const Scenario& scenario,
                           const std::vector<std::vector<harness::TrialOutcome>>& accepted,
                           const std::vector<CellStats>& stats) {
  const int series_count = static_cast<int>(scenario.series.size());
  const int rate_count = static_cast<int>(spec.fault_rates.size());
  CampaignResult result;
  result.cell_count = series_count * rate_count;
  result.series.reserve(static_cast<std::size_t>(series_count));
  result.cells.resize(static_cast<std::size_t>(series_count));
  for (int s = 0; s < series_count; ++s) {
    harness::Series series;
    series.name = scenario.series[static_cast<std::size_t>(s)].name;
    for (int r = 0; r < rate_count; ++r) {
      const std::size_t cell = static_cast<std::size_t>(s * rate_count + r);
      const std::vector<harness::TrialOutcome>& outcomes = accepted[cell];
      harness::SeriesPoint point;
      point.fault_rate = spec.fault_rates[static_cast<std::size_t>(r)];
      point.summary = harness::SummarizeOutcomes(outcomes);
      series.points.push_back(point);
      result.cells[static_cast<std::size_t>(s)].push_back(stats[cell]);
      result.total_trials += stats[cell].trials;
      if (stats[cell].settled) ++result.settled_cells;
      for (const harness::TrialOutcome& out : outcomes) {
        result.faulty_flops += static_cast<double>(out.fpu_stats.faulty_flops);
      }
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

}  // namespace

AdaptiveConfig SpecAdaptiveConfig(const CampaignSpec& spec, bool adaptive) {
  AdaptiveConfig config;
  if (adaptive) {
    config.min_trials = spec.min_trials;
    config.max_trials = spec.max_trials;
    config.ci_half_width = spec.ci_half_width;
  } else {
    // Fixed budget: the stopping rule can never fire early, so every cell
    // runs exactly spec.fixed_trials — the historical sweep behavior.
    config.min_trials = spec.fixed_trials;
    config.max_trials = spec.fixed_trials;
    config.ci_half_width = 0.0;
  }
  return config;
}

CampaignResult ReduceRecords(const CampaignSpec& spec, const Scenario& scenario,
                             const std::vector<TrialRecord>& records,
                             bool adaptive) {
  const int series_count = static_cast<int>(scenario.series.size());
  const int rate_count = static_cast<int>(spec.fault_rates.size());
  const int cell_count = series_count * rate_count;
  const AdaptiveConfig config = SpecAdaptiveConfig(spec, adaptive);

  // Bucket by cell, accepting the contiguous trial-index prefix (records
  // arrive sorted from the store; a journal's per-cell order is already
  // trial order, but sort defensively like the resume path does).
  std::vector<std::vector<TrialRecord>> by_cell(static_cast<std::size_t>(cell_count));
  for (const TrialRecord& r : records) {
    if (r.series < 0 || r.series >= series_count || r.rate < 0 ||
        r.rate >= rate_count) {
      continue;
    }
    by_cell[static_cast<std::size_t>(r.series * rate_count + r.rate)].push_back(r);
  }

  std::vector<std::vector<harness::TrialOutcome>> accepted(
      static_cast<std::size_t>(cell_count));
  std::vector<CellStats> stats(static_cast<std::size_t>(cell_count));
  for (int cell = 0; cell < cell_count; ++cell) {
    std::vector<TrialRecord>& bucket = by_cell[static_cast<std::size_t>(cell)];
    std::sort(bucket.begin(), bucket.end(),
              [](const TrialRecord& a, const TrialRecord& b) {
                return a.trial < b.trial;
              });
    CellController controller(config);
    for (const TrialRecord& r : bucket) {
      if (controller.done()) break;
      if (r.trial != controller.next_trial()) break;  // gap: drop the rest
      controller.Record(r.success);
      accepted[static_cast<std::size_t>(cell)].push_back(ToOutcome(r));
    }
    CellStats& cs = stats[static_cast<std::size_t>(cell)];
    cs.trials = controller.trials();
    cs.settled = controller.settled();
  }

  CampaignResult result = BuildResult(spec, scenario, accepted, stats);
  result.budget_trials = static_cast<long>(config.max_trials) * cell_count;
  result.resumed_trials = result.total_trials;  // everything came from records
  return result;
}

CampaignResult RunCampaign(const CampaignSpec& spec, const Scenario& scenario,
                           const RunnerOptions& options) {
  telemetry::SpanScope campaign_span("campaign");
  const int series_count = static_cast<int>(scenario.series.size());
  const int rate_count = static_cast<int>(spec.fault_rates.size());
  const int cell_count = series_count * rate_count;
  const int batch = std::max(1, spec.batch);

  if (spec.shard_count < 1 || spec.shard_index < 0 ||
      spec.shard_index >= spec.shard_count) {
    throw std::runtime_error("invalid shard selection " +
                             std::to_string(spec.shard_index) + "/" +
                             std::to_string(spec.shard_count));
  }
  const auto owns = [&](int cell) {
    return cell % spec.shard_count == spec.shard_index;
  };
  int owned_cells = 0;
  for (int cell = 0; cell < cell_count; ++cell) {
    if (owns(cell)) ++owned_cells;
  }

  const AdaptiveConfig adaptive = SpecAdaptiveConfig(spec, options.adaptive);

  // Per-cell accepted outcomes, in trial order.  Workers write disjoint
  // cells; the reduction below reads them serially in cell order.
  std::vector<std::vector<harness::TrialOutcome>> accepted(
      static_cast<std::size_t>(cell_count));
  std::vector<CellStats> stats(static_cast<std::size_t>(cell_count));

  // ---- checkpoint plumbing --------------------------------------------------
  std::unique_ptr<CampaignJournal> journal;
  long resumed_trials = 0;
  if (!options.journal_path.empty()) {
    journal = std::make_unique<CampaignJournal>(options.journal_path);
    const std::uint64_t fingerprint = SpecFingerprint(spec);
    if (options.resume) {
      CampaignJournal::Loaded loaded = CampaignJournal::Load(options.journal_path);
      if (!loaded.exists) {
        throw std::runtime_error("cannot resume: no readable journal at " +
                                 options.journal_path);
      }
      if (loaded.fingerprint != fingerprint) {
        throw std::runtime_error(
            "cannot resume: journal " + options.journal_path +
            " was written by a different campaign spec (fingerprint mismatch)");
      }
      // Bucket records by cell; trials within a cell were journaled in
      // order by a single worker, but sort defensively and drop anything
      // out of contract (duplicate or out-of-range indices).
      for (const TrialRecord& r : loaded.records) {
        if (r.series < 0 || r.series >= series_count || r.rate < 0 ||
            r.rate >= rate_count) {
          continue;
        }
        const std::size_t cell =
            static_cast<std::size_t>(r.series * rate_count + r.rate);
        if (!owns(static_cast<int>(cell))) continue;  // re-sharded journal
        if (r.trial == static_cast<int>(accepted[cell].size())) {
          accepted[cell].push_back(ToOutcome(r));
          ++resumed_trials;
        }
      }
      // Heal any torn tail before new appends land after it.
      std::vector<TrialRecord> kept;
      kept.reserve(static_cast<std::size_t>(resumed_trials));
      for (int cell = 0; cell < cell_count; ++cell) {
        const int s = cell / rate_count;
        const int r = cell % rate_count;
        for (std::size_t t = 0; t < accepted[static_cast<std::size_t>(cell)].size();
             ++t) {
          kept.push_back(ToRecord(accepted[static_cast<std::size_t>(cell)][t], s, r,
                                  static_cast<int>(t)));
        }
      }
      journal->RewriteAndOpen(fingerprint, kept);
    } else {
      journal->Start(fingerprint);
    }
  } else if (options.resume) {
    throw std::runtime_error("cannot resume without a journal path");
  }

  // ---- the cell grid, dynamically claimed -----------------------------------
  telemetry::ProgressBegin("campaign", owned_cells);
  harness::ParallelFor(cell_count, options.threads, [&](int cell) {
    if (!owns(cell)) return;  // another shard's cell — not even journaled
    telemetry::SpanScope cell_span("cell");
    const int s = cell / rate_count;
    const int r = cell % rate_count;
    std::vector<harness::TrialOutcome>& outcomes =
        accepted[static_cast<std::size_t>(cell)];

    CellController controller(adaptive);
    // Replay journaled outcomes through the stopping rule.  A journal never
    // holds trials past the stopping point, but the rule is cheap — replay
    // guards against hand-edited journals and re-derives settled state.
    std::size_t replayed = 0;
    while (replayed < outcomes.size() && !controller.done()) {
      controller.Record(outcomes[replayed].success);
      ++replayed;
    }
    outcomes.resize(replayed);

    core::FaultEnvironment env;
    env.fault_rate = spec.fault_rates[static_cast<std::size_t>(r)];
    env.seed = spec.base_seed;
    env.bit_model = spec.bit_model;
    env.model = spec.model;
    env.guard = spec.guard;
    const harness::TrialFn& fn = scenario.series[static_cast<std::size_t>(s)].fn;

    std::vector<harness::TrialOutcome> round(static_cast<std::size_t>(batch));
    std::vector<TrialRecord> journal_batch;
    while (!controller.done()) {
      const int base = controller.next_trial();
      const int want = std::min(batch, adaptive.max_trials - base);
      for (int i = 0; i < want; ++i) {
        round[static_cast<std::size_t>(i)] = harness::RunSingleTrial(fn, env, base + i);
      }
      // Accept speculative outcomes in trial order up to the stopping
      // point; anything past it is discarded so the accepted set never
      // depends on the batch size.
      journal_batch.clear();
      for (int i = 0; i < want && !controller.done(); ++i) {
        const harness::TrialOutcome& out = round[static_cast<std::size_t>(i)];
        controller.Record(out.success);
        outcomes.push_back(out);
        journal_batch.push_back(ToRecord(out, s, r, base + i));
      }
      if (journal) journal->Append(journal_batch.data(), journal_batch.size());
    }

    CellStats& cs = stats[static_cast<std::size_t>(cell)];
    cs.trials = controller.trials();
    cs.settled = controller.settled();

    // Per-cell telemetry, from the same controller state that feeds the
    // result (counter totals are thread-count independent by construction).
    telemetry::Count(telemetry::Counter::kCampaignCells);
    if (controller.settled()) {
      telemetry::Count(telemetry::Counter::kCampaignCellsSettled);
    }
    telemetry::Count(telemetry::Counter::kCampaignTrials,
                     static_cast<std::uint64_t>(controller.trials()));
    telemetry::Count(telemetry::Counter::kCampaignTrialsResumed,
                     static_cast<std::uint64_t>(replayed));
    telemetry::Observe(telemetry::Histogram::kCampaignTrialsToStop,
                       static_cast<std::uint64_t>(controller.trials()));
    const double half_width =
        WilsonHalfWidth(controller.successes(), controller.trials());
    telemetry::Observe(telemetry::Histogram::kCampaignStopHalfWidthPpm,
                       static_cast<std::uint64_t>(half_width * 1e6));
    telemetry::ProgressUnitDone(controller.trials() -
                                static_cast<int>(replayed));
  });
  telemetry::ProgressEnd();

  // ---- serial in-order reduction --------------------------------------------
  telemetry::SpanScope reduce_span("reduce");
  CampaignResult result = BuildResult(spec, scenario, accepted, stats);
  result.budget_trials = static_cast<long>(adaptive.max_trials) * owned_cells;
  result.resumed_trials = resumed_trials;
  return result;
}

}  // namespace robustify::campaign
