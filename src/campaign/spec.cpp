#include "campaign/spec.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace robustify::campaign {

namespace {

std::string Trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

[[noreturn]] void Fail(int line, const std::string& what) {
  throw std::runtime_error("spec line " + std::to_string(line) + ": " + what);
}

long ParseLong(int line, const std::string& key, const std::string& value) {
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    Fail(line, "malformed integer for '" + key + "': " + value);
  }
  return parsed;
}

double ParseDouble(int line, const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    Fail(line, "malformed number for '" + key + "': " + value);
  }
  return parsed;
}

std::vector<double> ParseRateList(int line, const std::string& value) {
  std::vector<double> rates;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    const std::size_t comma = value.find(',', pos);
    const std::string item =
        Trim(comma == std::string::npos ? value.substr(pos)
                                        : value.substr(pos, comma - pos));
    if (item.empty()) Fail(line, "empty entry in rates list");
    rates.push_back(ParseDouble(line, "rates", item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (rates.empty()) Fail(line, "rates list is empty");
  return rates;
}

const char* BitModelName(faulty::BitModel model) {
  switch (model) {
    case faulty::BitModel::kBimodal: return "bimodal";
    case faulty::BitModel::kUniform: return "uniform";
    case faulty::BitModel::kMsbOnly: return "msb";
    case faulty::BitModel::kLsbOnly: return "lsb";
  }
  return "bimodal";
}

faulty::BitModel ParseBitModel(int line, const std::string& value) {
  if (value == "bimodal") return faulty::BitModel::kBimodal;
  if (value == "uniform") return faulty::BitModel::kUniform;
  if (value == "msb") return faulty::BitModel::kMsbOnly;
  if (value == "lsb") return faulty::BitModel::kLsbOnly;
  Fail(line, "unknown bit_model '" + value + "' (bimodal|uniform|msb|lsb)");
}

// Shortest-round-trip formatting for the rate axis: %.17g always round-trips
// binary64, and the parse side accepts anything strtod does.
std::string FormatRate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", rate);
  return buf;
}

}  // namespace

CampaignSpec ParseSpec(std::istream& is) {
  CampaignSpec spec;
  spec.fault_rates.clear();
  bool saw_rates = false;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = Trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) Fail(line_no, "expected 'key = value': " + line);
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (value.empty()) Fail(line_no, "empty value for '" + key + "'");
    if (key == "name") {
      spec.name = value;
    } else if (key == "app") {
      spec.app = value;
    } else if (key == "series") {
      spec.series.push_back(value);
    } else if (key == "rates") {
      spec.fault_rates = ParseRateList(line_no, value);
      saw_rates = true;
    } else if (key == "trials") {
      spec.fixed_trials = static_cast<int>(ParseLong(line_no, key, value));
    } else if (key == "budget") {
      spec.max_trials = static_cast<int>(ParseLong(line_no, key, value));
    } else if (key == "min_trials") {
      spec.min_trials = static_cast<int>(ParseLong(line_no, key, value));
    } else if (key == "batch") {
      spec.batch = static_cast<int>(ParseLong(line_no, key, value));
    } else if (key == "ci") {
      spec.ci_half_width = ParseDouble(line_no, key, value);
    } else if (key == "seed") {
      spec.base_seed = static_cast<std::uint64_t>(ParseLong(line_no, key, value));
    } else if (key == "bit_model") {
      spec.bit_model = ParseBitModel(line_no, value);
    } else if (key == "shard") {
      try {
        const std::pair<int, int> shard = ParseShard(value);
        spec.shard_index = shard.first;
        spec.shard_count = shard.second;
      } catch (const std::runtime_error& e) {
        Fail(line_no, e.what());
      }
    } else if (key == "model") {
      const faulty::Temporal temporal = faulty::ParseTemporal(value);
      if (temporal == faulty::Temporal::kAuto) {
        Fail(line_no, "unknown model '" + value +
                          "' (transient|stuck|burst|intermittent)");
      }
      spec.model.temporal = temporal;
    } else if (key == "op_classes") {
      try {
        spec.model.op_classes = faulty::ParseOpClasses(value);
      } catch (const std::runtime_error& e) {
        Fail(line_no, e.what());
      }
    } else if (key == "stuck_mean") {
      spec.model.stuck_mean_ops = ParseDouble(line_no, key, value);
    } else if (key == "burst_width") {
      spec.model.burst_width_max = static_cast<int>(ParseLong(line_no, key, value));
    } else if (key == "window_mean") {
      spec.model.window_mean_ops = ParseDouble(line_no, key, value);
    } else if (key == "window_rate") {
      spec.model.window_rate = ParseDouble(line_no, key, value);
    } else if (key == "guard_flops") {
      spec.guard.max_flops = static_cast<std::uint64_t>(ParseLong(line_no, key, value));
    } else if (key == "guard_iters") {
      spec.guard.max_iterations = static_cast<int>(ParseLong(line_no, key, value));
    } else if (key == "guard_bailout") {
      if (value == "1" || value == "true") {
        spec.guard.nonfinite_bailout = true;
      } else if (value == "0" || value == "false") {
        spec.guard.nonfinite_bailout = false;
      } else {
        Fail(line_no, "guard_bailout must be 0|1|true|false, got '" + value + "'");
      }
    } else {
      Fail(line_no, "unknown key '" + key + "'");
    }
  }
  if (spec.app.empty()) throw std::runtime_error("spec: missing required key 'app'");
  if (!saw_rates) throw std::runtime_error("spec: missing required key 'rates'");
  if (spec.name.empty()) spec.name = spec.app;
  if (spec.fixed_trials < 1 || spec.max_trials < 1 || spec.min_trials < 1 ||
      spec.batch < 1) {
    throw std::runtime_error("spec: trials/budget/min_trials/batch must be >= 1");
  }
  if (spec.min_trials > spec.max_trials) {
    throw std::runtime_error("spec: min_trials exceeds budget");
  }
  if (!(spec.ci_half_width > 0.0)) {
    throw std::runtime_error("spec: ci must be > 0");
  }
  if (!(spec.model.stuck_mean_ops >= 1.0)) {
    throw std::runtime_error("spec: stuck_mean must be >= 1");
  }
  if (spec.model.burst_width_max < 1 || spec.model.burst_width_max > 64) {
    throw std::runtime_error("spec: burst_width must be in [1, 64]");
  }
  if (!(spec.model.window_mean_ops >= 1.0)) {
    throw std::runtime_error("spec: window_mean must be >= 1");
  }
  if (!(spec.model.window_rate >= 0.0 && spec.model.window_rate <= 1.0)) {
    throw std::runtime_error("spec: window_rate must be in [0, 1]");
  }
  if (spec.guard.max_iterations < 0) {
    throw std::runtime_error("spec: guard_iters must be >= 0");
  }
  return spec;
}

CampaignSpec ParseSpecFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open spec file " + path);
  return ParseSpec(is);
}

std::vector<double> ParseRateAxis(const std::string& text) {
  return ParseRateList(0, text);
}

std::pair<int, int> ParseShard(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) {
    throw std::runtime_error("malformed shard '" + text + "' (expected i/N)");
  }
  const auto parse_part = [&](const std::string& part) {
    char* end = nullptr;
    const long parsed = std::strtol(part.c_str(), &end, 10);
    if (part.empty() || end == part.c_str() || *end != '\0') {
      throw std::runtime_error("malformed shard '" + text + "' (expected i/N)");
    }
    return parsed;
  };
  const long index = parse_part(text.substr(0, slash));
  const long count = parse_part(text.substr(slash + 1));
  if (count < 1) {
    throw std::runtime_error("shard '" + text + "': N must be >= 1");
  }
  if (index < 0 || index >= count) {
    throw std::runtime_error("shard '" + text +
                             "': index must be in [0, N) — this shard would own "
                             "zero cells");
  }
  return {static_cast<int>(index), static_cast<int>(count)};
}

std::string FormatSpec(const CampaignSpec& spec) {
  std::ostringstream os;
  os << "name = " << spec.name << "\n";
  os << "app = " << spec.app << "\n";
  for (const std::string& s : spec.series) os << "series = " << s << "\n";
  os << "rates = ";
  for (std::size_t i = 0; i < spec.fault_rates.size(); ++i) {
    if (i) os << ",";
    os << FormatRate(spec.fault_rates[i]);
  }
  os << "\n";
  os << "trials = " << spec.fixed_trials << "\n";
  os << "budget = " << spec.max_trials << "\n";
  os << "min_trials = " << spec.min_trials << "\n";
  os << "batch = " << spec.batch << "\n";
  os << "ci = " << FormatRate(spec.ci_half_width) << "\n";
  os << "seed = " << spec.base_seed << "\n";
  os << "bit_model = " << BitModelName(spec.bit_model) << "\n";
  if (spec.shard_count != 1) {
    os << "shard = " << spec.shard_index << "/" << spec.shard_count << "\n";
  }
  // Model and guard keys are emitted only when non-default: pre-model specs
  // keep their historical canonical form, so their fingerprints — and every
  // journal recorded against them — stay valid.
  const faulty::FaultModel defaults;
  if (spec.model.temporal != faulty::Temporal::kAuto) {
    os << "model = " << faulty::TemporalName(spec.model.temporal) << "\n";
  }
  if (spec.model.op_classes != faulty::kOpClassDefault) {
    os << "op_classes = " << faulty::OpClassesName(spec.model.op_classes) << "\n";
  }
  if (spec.model.stuck_mean_ops != defaults.stuck_mean_ops) {
    os << "stuck_mean = " << FormatRate(spec.model.stuck_mean_ops) << "\n";
  }
  if (spec.model.burst_width_max != defaults.burst_width_max) {
    os << "burst_width = " << spec.model.burst_width_max << "\n";
  }
  if (spec.model.window_mean_ops != defaults.window_mean_ops) {
    os << "window_mean = " << FormatRate(spec.model.window_mean_ops) << "\n";
  }
  if (spec.model.window_rate != defaults.window_rate) {
    os << "window_rate = " << FormatRate(spec.model.window_rate) << "\n";
  }
  if (spec.guard.max_flops != 0) {
    os << "guard_flops = " << spec.guard.max_flops << "\n";
  }
  if (spec.guard.max_iterations != 0) {
    os << "guard_iters = " << spec.guard.max_iterations << "\n";
  }
  if (spec.guard.nonfinite_bailout) os << "guard_bailout = 1\n";
  return os.str();
}

std::string CanonicalSpecText(const CampaignSpec& spec) {
  // Canonical form minus every knob that provably cannot change a journaled
  // outcome: trial t of a cell always runs at seed base_seed + t, so the
  // per-cell outcome *sequence* is a pure function of the scenario, series
  // subset, rate axis, seed, bit model, fault model, and guard.  Batch size
  // only schedules speculation, sharding only selects which cells this
  // process runs, and the trial-allocation knobs (fixed trials, adaptive
  // budget/floor/ci target) only decide how far along each cell's sequence
  // sampling stops — every run of the campaign journals a *prefix* of the
  // same sequences.  Hashing any of them would make resume reject journals
  // it could continue byte-identically, keep one campaign's shard journals
  // from merging into one store key, and fragment the result store into a
  // key per precision target instead of one cache the query service can
  // serve at any requested ci.
  CampaignSpec canonical = spec;
  const CampaignSpec defaults;
  canonical.batch = defaults.batch;
  canonical.shard_index = defaults.shard_index;
  canonical.shard_count = defaults.shard_count;
  canonical.fixed_trials = defaults.fixed_trials;
  canonical.min_trials = defaults.min_trials;
  canonical.max_trials = defaults.max_trials;
  canonical.ci_half_width = defaults.ci_half_width;
  return FormatSpec(canonical);
}

std::uint64_t SpecFingerprint(const CampaignSpec& spec) {
  const std::string text = CanonicalSpecText(spec);
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

// ---- registry ---------------------------------------------------------------

namespace {

CampaignSpec MakeSpec(const char* name, const char* app,
                      std::vector<double> rates, int fixed_trials,
                      std::uint64_t seed) {
  CampaignSpec spec;
  spec.name = name;
  spec.app = app;
  spec.fault_rates = std::move(rates);
  spec.fixed_trials = fixed_trials;
  spec.base_seed = seed;
  return spec;
}

// The one table the benches and the CLI share.  Axis, default fixed trial
// count, and seed are exactly the historical values of each bench main, so
// registry-driven sweeps reproduce the committed figures bit-for-bit.
const std::vector<CampaignSpec>& Registry() {
  static const std::vector<CampaignSpec> specs = {
      MakeSpec("fig6_1", "fig6_1", {0.0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5}, 10, 61),
      MakeSpec("fig6_2", "fig6_2", {0.0, 0.0001, 0.001, 0.01, 0.05, 0.1}, 10, 62),
      MakeSpec("fig6_3", "fig6_3", {0.0, 0.001, 0.005, 0.01, 0.02}, 8, 63),
      MakeSpec("fig6_4", "fig6_4", {0.0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5}, 10, 64),
      MakeSpec("fig6_5", "fig6_5", {0.0, 0.02, 0.1, 0.3, 0.5}, 8, 65),
      MakeSpec("fig6_6", "fig6_6", {0.0, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}, 10, 66),
      MakeSpec("tiled_cholesky", "tiled_cholesky", {0.0, 1e-7, 1e-6, 1e-5, 1e-4}, 4,
               75),
      MakeSpec("momentum_sort", "momentum_sort", {0.1, 0.3, 0.5}, 10, 70),
      MakeSpec("momentum_matching", "momentum_matching", {0.1, 0.3, 0.5}, 10, 70),
      MakeSpec("maxflow", "maxflow", {0.0, 0.01, 0.05, 0.1, 0.2}, 6, 71),
      MakeSpec("apsp", "apsp", {0.0, 0.01, 0.05, 0.1, 0.2}, 6, 71),
      MakeSpec("eigen_rayleigh", "eigen_rayleigh", {0.0, 0.001, 0.01, 0.05, 0.1}, 6,
               72),
      MakeSpec("svm", "svm", {0.0, 0.01, 0.05, 0.1, 0.3, 0.5}, 6, 74),
  };
  return specs;
}

}  // namespace

const std::vector<std::string>& RegistryNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const CampaignSpec& spec : Registry()) out.push_back(spec.name);
    return out;
  }();
  return names;
}

const CampaignSpec* FindRegistrySpec(const std::string& name) {
  for (const CampaignSpec& spec : Registry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

const CampaignSpec& RegistrySpec(const std::string& name) {
  if (const CampaignSpec* spec = FindRegistrySpec(name)) return *spec;
  std::string known;
  for (const std::string& n : RegistryNames()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::runtime_error("unknown campaign '" + name + "' (registered: " + known +
                           ")");
}

harness::SweepConfig ToSweepConfig(const CampaignSpec& spec) {
  harness::SweepConfig sweep;
  sweep.fault_rates = spec.fault_rates;
  sweep.trials = spec.fixed_trials;
  sweep.base_seed = spec.base_seed;
  sweep.bit_model = spec.bit_model;
  sweep.model = spec.model;
  sweep.guard = spec.guard;
  return sweep;
}

}  // namespace robustify::campaign
