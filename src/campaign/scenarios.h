// Scenario construction: the trial functions behind every registered
// campaign app.
//
// A Scenario is the executable half of a CampaignSpec: the named TrialFns
// (one per figure series), the table/CSV presentation metadata, and
// ownership of whatever fixed problem data the trials close over (the LSQ
// matrix, the matching graph, the IIR signal...).  The bench mains and the
// campaign runner both build their series here, so a figure's definition
// lives in exactly one place.
#pragma once

#include <string>
#include <vector>

#include "campaign/spec.h"
#include "harness/sweep.h"
#include "harness/table.h"

namespace robustify::campaign {

struct Scenario {
  std::string app;
  std::string title;        // sweep table heading
  std::string value_label;  // y-axis label of the figure's primary table
  harness::TableValue value = harness::TableValue::kSuccessRatePct;
  std::string csv_name;     // default CSV output name
  // One entry per series, in figure-legend order; each TrialFn owns (via
  // shared_ptr captures) every input it needs, so a Scenario outlives the
  // scope that built it and is safe to fan across worker threads.
  std::vector<harness::NamedTrial> series;
};

// Names of every series scenario `app` defines, in legend order.
std::vector<std::string> ScenarioSeriesNames(const std::string& app);

// Builds the scenario for spec.app, restricted (and reordered) to
// spec.series when non-empty.  Throws std::runtime_error on an unknown app
// or series name.
Scenario BuildScenario(const CampaignSpec& spec);

}  // namespace robustify::campaign
