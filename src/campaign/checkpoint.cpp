#include "campaign/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace robustify::campaign {

namespace {

constexpr char kHeaderTag[] = "robustify-campaign v1 fingerprint ";

// One record per line.  %a prints the metric's exact bits ("0x1.8p+1",
// "inf", "nan"); strtod parses all of them back exactly.  The trailing
// verdict field postdates the guarded executor; ParseRecord accepts lines
// without it.
std::string FormatRecord(const TrialRecord& r) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "t %d %d %d %d %a %" PRIu64 " %" PRIu64 " %d\n", r.series,
                r.rate, r.trial, r.success ? 1 : 0, r.metric, r.faulty_flops,
                r.faults_injected, r.verdict);
  return buf;
}

// Strict field-by-field parse; any deviation (including trailing garbage)
// rejects the line, which Load() treats as the torn end of the file.
bool ParseRecord(const std::string& line, TrialRecord* out) {
  const char* p = line.c_str();
  if (*p != 't' || p[1] != ' ') return false;
  p += 2;
  char* end = nullptr;
  const auto parse_long = [&](long* value) {
    *value = std::strtol(p, &end, 10);
    if (end == p) return false;
    p = end;
    return true;
  };
  long series = 0, rate = 0, trial = 0, success = 0;
  if (!parse_long(&series) || !parse_long(&rate) || !parse_long(&trial) ||
      !parse_long(&success)) {
    return false;
  }
  if (series < 0 || rate < 0 || trial < 0 || (success != 0 && success != 1)) {
    return false;
  }
  const double metric = std::strtod(p, &end);
  if (end == p) return false;
  p = end;
  const auto parse_u64 = [&](std::uint64_t* value) {
    if (*p != ' ') return false;
    *value = std::strtoull(p, &end, 10);
    if (end == p) return false;
    p = end;
    return true;
  };
  std::uint64_t flops = 0, faults = 0;
  if (!parse_u64(&flops) || !parse_u64(&faults)) return false;
  // Optional trailing verdict (journals predating the guarded executor lack
  // it; derive the two-way verdict from the success flag for those).
  long verdict = success == 1 ? 0 : 1;
  if (*p == ' ') {
    if (!parse_long(&verdict)) return false;
    if (verdict < 0 || verdict > 3) return false;
    if ((verdict == 0) != (success == 1)) return false;
  }
  if (*p != '\0') return false;
  out->series = static_cast<int>(series);
  out->rate = static_cast<int>(rate);
  out->trial = static_cast<int>(trial);
  out->success = success == 1;
  out->metric = metric;
  out->faulty_flops = flops;
  out->faults_injected = faults;
  out->verdict = static_cast<int>(verdict);
  return true;
}

}  // namespace

CampaignJournal::Loaded CampaignJournal::Load(const std::string& path) {
  Loaded loaded;
  std::ifstream is(path);
  if (!is) return loaded;
  std::string line;
  if (!std::getline(is, line)) return loaded;
  if (line.rfind(kHeaderTag, 0) != 0) return loaded;
  char* end = nullptr;
  const char* hex = line.c_str() + sizeof(kHeaderTag) - 1;
  loaded.fingerprint = std::strtoull(hex, &end, 16);
  if (end == hex || *end != '\0') return loaded;
  loaded.exists = true;
  while (std::getline(is, line)) {
    TrialRecord record;
    if (!ParseRecord(line, &record)) break;  // torn tail: drop the rest
    loaded.records.push_back(record);
  }
  return loaded;
}

namespace {

std::string FormatHeader(std::uint64_t fingerprint) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s%016" PRIx64 "\n", kHeaderTag, fingerprint);
  return buf;
}

}  // namespace

void CampaignJournal::Start(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  os_.open(path_, std::ios::out | std::ios::trunc);
  if (!os_) throw std::runtime_error("cannot open journal " + path_ + " for writing");
  os_ << FormatHeader(fingerprint);
  os_.flush();
  if (!os_) throw std::runtime_error("failed writing journal header to " + path_);
}

void CampaignJournal::RewriteAndOpen(std::uint64_t fingerprint,
                                     const std::vector<TrialRecord>& records) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::out | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + tmp + " for writing");
    out << FormatHeader(fingerprint);
    for (const TrialRecord& r : records) out << FormatRecord(r);
    out.flush();
    if (!out) throw std::runtime_error("failed writing " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    throw std::runtime_error("cannot rename " + tmp + " over " + path_);
  }
  os_.open(path_, std::ios::out | std::ios::app);
  if (!os_) throw std::runtime_error("cannot open journal " + path_ + " for append");
}

void CampaignJournal::Append(const TrialRecord* records, std::size_t count) {
  if (count == 0) return;
  telemetry::SpanScope flush_span("checkpoint.flush");
  telemetry::Count(telemetry::Counter::kCheckpointFlushes);
  telemetry::Count(telemetry::Counter::kCheckpointRecords, count);
  std::string block;
  for (std::size_t i = 0; i < count; ++i) block += FormatRecord(records[i]);
  std::lock_guard<std::mutex> lock(mu_);
  if (!os_.is_open()) throw std::runtime_error("journal " + path_ + " is not open");
  os_ << block;
  os_.flush();
  if (!os_) throw std::runtime_error("failed appending to journal " + path_);
}

}  // namespace robustify::campaign
