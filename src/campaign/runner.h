// Campaign execution: adaptive cells fanned across the harness thread pool.
//
// The parallel unit is the *cell* — one (series, fault rate) point — not
// the trial: cells have wildly unequal cost under adaptive allocation (a
// saturated cell stops after a handful of trials, a transition cell runs to
// its budget), which is exactly the skewed-load shape ParallelFor's dynamic
// index claiming exists for.  Each cell runs its sequential controller
// (campaign/adaptive.h) on one worker, journals accepted batches
// (campaign/checkpoint.h), and the final reduction runs serially in cell
// order — so campaign output is byte-identical for every thread count,
// batch size, and kill/resume schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/adaptive.h"
#include "campaign/checkpoint.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"
#include "harness/sweep.h"

namespace robustify::campaign {

struct RunnerOptions {
  int threads = 0;           // 0 = auto (ROBUSTIFY_THREADS, else hardware)
  std::string journal_path;  // empty = run without checkpointing
  bool resume = false;       // load the journal and continue it
  bool adaptive = true;      // false = fixed budget (spec.fixed_trials per cell)
};

struct CellStats {
  int trials = 0;
  bool settled = false;  // stopping rule met the CI target within budget
};

struct CampaignResult {
  // One Series per scenario series, one point per fault rate — the same
  // shape the fixed sweep produces, so tables/CSV plumbing is shared.
  std::vector<harness::Series> series;
  std::vector<std::vector<CellStats>> cells;  // [series][rate]
  long total_trials = 0;     // accepted trials, all cells
  long resumed_trials = 0;   // of those, replayed from the journal
  long budget_trials = 0;    // per-cell cap * cell count
  int settled_cells = 0;
  int cell_count = 0;
  double faulty_flops = 0.0;  // ops through the injector, accepted trials
};

// Runs (or resumes) the campaign described by `spec` over `scenario`.
// Throws std::runtime_error on journal problems, including resuming against
// a journal whose fingerprint does not match the spec.
//
// Sharding: when spec.shard_count > 1, only the cells with grid index
// congruent to spec.shard_index (mod shard_count) are executed and
// journaled; every other cell stays empty in the result.  Per-cell seeding
// makes the owned cells' records identical to the same cells of an
// unsharded run, so N shard journals merge (store/result_store.h) into
// exactly the unsharded record set.
CampaignResult RunCampaign(const CampaignSpec& spec, const Scenario& scenario,
                           const RunnerOptions& options);

// The stopping-rule configuration RunCampaign derives from a spec — shared
// with ReduceRecords and the query service so every consumer of stored
// records replays them under the same rule the runner journaled them under.
AdaptiveConfig SpecAdaptiveConfig(const CampaignSpec& spec, bool adaptive);

// Reduces already-recorded trials (a merged store's records, a journal) to
// a CampaignResult without running anything: per cell, the contiguous
// trial-index prefix is replayed through the stopping rule — exactly the
// resume path — and the reduction runs serially in cell order.  Records
// beyond a cell's deterministic stopping point are ignored (a store cell
// extended by a tighter-CI query still reduces to the campaign's own
// answer), so a store merged from N complete shard runs reduces to a CSV
// byte-identical to the single-process run of the same spec.
CampaignResult ReduceRecords(const CampaignSpec& spec, const Scenario& scenario,
                             const std::vector<TrialRecord>& records,
                             bool adaptive);

}  // namespace robustify::campaign
