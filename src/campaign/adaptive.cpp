#include "campaign/adaptive.h"

#include <cmath>
#include <limits>

namespace robustify::campaign {

double WilsonHalfWidth(int successes, int trials) {
  if (trials <= 0) return std::numeric_limits<double>::infinity();
  constexpr double z = 1.959963984540054;  // Phi^{-1}(0.975)
  constexpr double z2 = z * z;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double denom = 1.0 + z2 / n;
  return z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
}

CellController::CellController(const AdaptiveConfig& config) : config_(config) {
  if (config_.min_trials < 1) config_.min_trials = 1;
  if (config_.max_trials < config_.min_trials) config_.max_trials = config_.min_trials;
}

void CellController::Record(bool success) {
  ++trials_;
  if (success) ++successes_;
  if (trials_ >= config_.min_trials &&
      WilsonHalfWidth(successes_, trials_) <= config_.ci_half_width) {
    done_ = true;
    settled_ = true;
  } else if (trials_ >= config_.max_trials) {
    done_ = true;
  }
}

}  // namespace robustify::campaign
