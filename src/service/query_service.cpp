#include "service/query_service.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "campaign/adaptive.h"
#include "campaign/runner.h"
#include "core/fault_env.h"
#include "harness/timer.h"
#include "harness/trial.h"
#include "service/surrogate.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace robustify::service {

namespace {

using campaign::CampaignSpec;
using campaign::Scenario;
using campaign::TrialRecord;

struct CellRecords {
  std::vector<TrialRecord> records;  // trial order, contiguous prefix
  int successes = 0;
};

CellRecords LoadCell(const store::StoredCells& stored, int series, int rate) {
  CellRecords cell;
  for (const TrialRecord& r : stored.records) {
    if (r.series != series || r.rate != rate) continue;
    cell.records.push_back(r);
    if (r.success) ++cell.successes;
  }
  return cell;
}

bool SameRate(double a, double b) {
  if (a == b) return true;
  return std::abs(a - b) <= 1e-12 * std::max(std::abs(a), std::abs(b));
}

Answer Fail(std::string error) {
  Answer answer;
  answer.error = std::move(error);
  return answer;
}

// ---- minimal flat-object JSON ----------------------------------------------
//
// The serve protocol is one flat object per line with string / number /
// boolean values — small enough that a hand-rolled scanner beats growing a
// dependency.  Strings support the \" \\ / \n \t escapes; anything fancier
// is rejected with a parse error rather than mis-read.

void SkipWs(const std::string& s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r')) ++i;
}

bool ParseJsonString(const std::string& s, std::size_t& i, std::string* out,
                     std::string* error) {
  if (i >= s.size() || s[i] != '"') {
    *error = "expected string";
    return false;
  }
  ++i;
  out->clear();
  while (i < s.size() && s[i] != '"') {
    char c = s[i++];
    if (c == '\\') {
      if (i >= s.size()) break;
      const char esc = s[i++];
      switch (esc) {
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case '/': c = '/'; break;
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        default:
          *error = std::string("unsupported escape \\") + esc;
          return false;
      }
    }
    out->push_back(c);
  }
  if (i >= s.size()) {
    *error = "unterminated string";
    return false;
  }
  ++i;  // closing quote
  return true;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

void QueryService::RegisterSpec(const CampaignSpec& spec, Scenario scenario) {
  apps_.insert_or_assign(spec.app, AppEntry{spec, std::move(scenario)});
}

const QueryService::AppEntry* QueryService::ResolveApp(const std::string& app,
                                                       std::string* error) {
  const auto it = apps_.find(app);
  if (it != apps_.end()) return &it->second;
  const CampaignSpec* registry = campaign::FindRegistrySpec(app);
  if (registry == nullptr) {
    *error = "unknown app '" + app + "' (not registered, not in the registry)";
    return nullptr;
  }
  try {
    Scenario scenario = campaign::BuildScenario(*registry);
    const auto [inserted, ok] =
        apps_.emplace(app, AppEntry{*registry, std::move(scenario)});
    (void)ok;
    return &inserted->second;
  } catch (const std::exception& e) {
    *error = e.what();
    return nullptr;
  }
}

Answer QueryService::AnswerCell(const CampaignSpec& spec,
                                const Scenario& scenario, int series_index,
                                int rate_index, double ci, bool allow_fresh) {
  const store::StoredCells stored = store_->Load(spec);
  CellRecords cell = LoadCell(stored, series_index, rate_index);
  const int full_trials = static_cast<int>(cell.records.size());
  const double full_hw = campaign::WilsonHalfWidth(cell.successes, full_trials);

  Answer answer;
  answer.trials = full_trials;
  answer.successes = cell.successes;
  answer.half_width = full_hw;
  answer.success_rate =
      full_trials > 0 ? static_cast<double>(cell.successes) / full_trials : 0.0;

  // Cache hit: the full stored tally already meets the requested precision.
  // Serving the full tally (never a replayed prefix) is what makes a
  // repeated query return the identical interval.
  if (full_trials >= spec.min_trials && full_hw <= ci) {
    telemetry::Count(telemetry::Counter::kStoreHits);
    answer.ok = true;
    answer.source = "cache";
    answer.settled = true;
    return answer;
  }

  telemetry::Count(telemetry::Counter::kStoreMisses);
  if (!allow_fresh) {
    return Fail("cell not cached at the requested precision (stored trials=" +
                std::to_string(full_trials) + ") and fresh trials disallowed");
  }

  // Fresh path: replay the stored prefix through the stopping rule at the
  // requested ci, then continue the cell's deterministic trial sequence
  // from where the store left off.
  campaign::AdaptiveConfig config;
  config.min_trials = spec.min_trials;
  config.max_trials = spec.max_trials;
  config.ci_half_width = ci;
  campaign::CellController controller(config);
  std::size_t replayed = 0;
  while (replayed < cell.records.size() && !controller.done()) {
    controller.Record(cell.records[replayed].success);
    ++replayed;
  }

  core::FaultEnvironment env;
  env.fault_rate = spec.fault_rates[static_cast<std::size_t>(rate_index)];
  env.seed = spec.base_seed;
  env.bit_model = spec.bit_model;
  env.model = spec.model;
  env.guard = spec.guard;
  const harness::TrialFn& fn =
      scenario.series[static_cast<std::size_t>(series_index)].fn;

  std::vector<TrialRecord> fresh;
  while (!controller.done()) {
    const int t = controller.next_trial();
    const harness::TrialOutcome out = harness::RunSingleTrial(fn, env, t);
    controller.Record(out.success);
    TrialRecord r;
    r.series = series_index;
    r.rate = rate_index;
    r.trial = t;
    r.success = out.success;
    r.metric = out.metric;
    r.faulty_flops = out.fpu_stats.faulty_flops;
    r.faults_injected = out.fpu_stats.faults_injected;
    r.verdict = static_cast<int>(out.verdict);
    fresh.push_back(r);
  }

  if (fresh.empty()) {
    // The sequential rule fired inside the stored prefix (possible when the
    // full tally's half-width is wider than an early prefix's): nothing to
    // run, nothing to write back — serve the full tally as a cache answer.
    answer.ok = true;
    answer.source = "cache";
    answer.settled = full_hw <= ci;
    return answer;
  }

  telemetry::Count(telemetry::Counter::kStoreFreshTrials,
                   static_cast<std::uint64_t>(fresh.size()));
  // Write back the extended prefix.  `fresh` continues the stored records
  // (replay consumed them all before running anything), so stored + fresh
  // is the cell's new contiguous prefix.
  std::vector<TrialRecord> prefix = cell.records;
  prefix.insert(prefix.end(), fresh.begin(), fresh.end());
  store_->IngestRecords(spec, prefix);

  int successes = cell.successes;
  for (const TrialRecord& r : fresh) {
    if (r.success) ++successes;
  }
  const int trials = static_cast<int>(prefix.size());
  const double hw = campaign::WilsonHalfWidth(successes, trials);
  answer.ok = true;
  answer.source = "fresh-trials";
  answer.trials = trials;
  answer.successes = successes;
  answer.fresh_trials = static_cast<int>(fresh.size());
  answer.success_rate = static_cast<double>(successes) / trials;
  answer.half_width = hw;
  answer.settled = hw <= ci;
  return answer;
}

Answer QueryService::AnswerSurrogate(const CampaignSpec& spec,
                                     const Scenario& scenario,
                                     int series_index, double rate) {
  (void)scenario;
  const store::StoredCells stored = store_->Load(spec);
  std::vector<CellTally> tallies;
  for (std::size_t r = 0; r < spec.fault_rates.size(); ++r) {
    const CellRecords cell = LoadCell(stored, series_index, static_cast<int>(r));
    if (cell.records.empty()) continue;
    CellTally tally;
    tally.rate = spec.fault_rates[r];
    tally.successes = cell.successes;
    tally.trials = static_cast<int>(cell.records.size());
    tallies.push_back(tally);
  }
  const CliffSurrogate fit = FitCliffSurrogate(tallies);
  if (!fit.valid) {
    return Fail("surrogate unavailable: need >= 3 stored cells at distinct "
                "nonzero rates for this series (have " +
                std::to_string(tallies.size()) + ")");
  }
  if (!fit.InSupport(rate)) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "rate %g outside surrogate support [%g, %g] — refusing to "
                  "extrapolate",
                  rate, fit.rate_min, fit.rate_max);
    return Fail(buf);
  }
  Answer answer;
  answer.ok = true;
  answer.source = "surrogate";
  answer.success_rate = fit.Predict(rate);
  answer.half_width = fit.HalfWidthAt(rate);
  return answer;
}

Answer QueryService::Handle(const Query& query) {
  telemetry::SpanScope query_span("query");
  harness::WallTimer timer;
  Answer answer = HandleQuery(query);
  if (answer.ok) {
    // Latency is a timing observation, not a function of the work — the
    // histograms exist for the stats reply, never for exact-diff gates.
    const auto us = static_cast<std::uint64_t>(timer.Seconds() * 1e6);
    if (answer.source == "cache") {
      telemetry::Observe(telemetry::Histogram::kQueryLatencyCacheUs, us);
    } else if (answer.source == "fresh-trials") {
      telemetry::Observe(telemetry::Histogram::kQueryLatencyFreshUs, us);
    } else if (answer.source == "surrogate") {
      telemetry::Observe(telemetry::Histogram::kQueryLatencySurrogateUs, us);
    }
  }
  return answer;
}

Answer QueryService::HandleQuery(const Query& query) {
  try {
    std::string error;
    const AppEntry* app = ResolveApp(query.app, &error);
    if (app == nullptr) return Fail(std::move(error));

    int series_index = -1;
    for (std::size_t s = 0; s < app->scenario.series.size(); ++s) {
      if (app->scenario.series[s].name == query.series) {
        series_index = static_cast<int>(s);
        break;
      }
    }
    if (series_index < 0) {
      std::string names;
      for (const auto& s : app->scenario.series) {
        if (!names.empty()) names += "; ";
        names += s.name;
      }
      return Fail("unknown series '" + query.series + "' for app '" +
                  query.app + "' (valid: " + names + ")");
    }
    if (!(query.rate >= 0.0) || !std::isfinite(query.rate)) {
      return Fail("rate must be a finite nonnegative number");
    }
    const double ci =
        query.ci > 0.0 ? query.ci : app->spec.ci_half_width;

    int rate_index = -1;
    for (std::size_t r = 0; r < app->spec.fault_rates.size(); ++r) {
      if (SameRate(app->spec.fault_rates[r], query.rate)) {
        rate_index = static_cast<int>(r);
        break;
      }
    }

    if (rate_index >= 0) {
      Answer answer = AnswerCell(app->spec, app->scenario, series_index,
                                 rate_index, ci, query.allow_fresh);
      answer.on_grid = true;
      if (!answer.ok && !query.allow_fresh && query.allow_surrogate) {
        Answer fallback = AnswerSurrogate(app->spec, app->scenario,
                                          series_index, query.rate);
        if (fallback.ok) {
          fallback.on_grid = true;
          fallback.settled = fallback.half_width <= ci;
          return fallback;
        }
      }
      return answer;
    }

    // Off-grid: surrogate first (free), else a fresh single-rate campaign
    // derived from the spec — its own fingerprint, so the cell is content-
    // addressed like any other.
    if (query.allow_surrogate) {
      Answer answer = AnswerSurrogate(app->spec, app->scenario, series_index,
                                      query.rate);
      if (answer.ok) {
        answer.settled = answer.half_width <= ci;
        return answer;
      }
      if (!query.allow_fresh) return answer;
    }
    if (!query.allow_fresh) {
      return Fail("rate " + std::to_string(query.rate) +
                  " is off-grid and both surrogate and fresh trials are "
                  "disallowed");
    }
    if (query.rate <= 0.0) {
      return Fail("off-grid fresh trials need rate > 0");
    }
    CampaignSpec derived = app->spec;
    derived.fault_rates = {query.rate};
    Answer answer = AnswerCell(derived, app->scenario, series_index,
                               /*rate_index=*/0, ci, /*allow_fresh=*/true);
    answer.on_grid = false;
    return answer;
  } catch (const std::exception& e) {
    return Fail(e.what());
  }
}

bool QueryService::ParseQueryJson(const std::string& line, Query* query,
                                  std::string* error) {
  *query = Query{};
  bool have_app = false, have_series = false, have_rate = false;
  std::size_t i = 0;
  SkipWs(line, i);
  if (i >= line.size() || line[i] != '{') {
    *error = "expected a JSON object";
    return false;
  }
  ++i;
  SkipWs(line, i);
  if (i < line.size() && line[i] == '}') {
    *error = "empty query";
    return false;
  }
  while (true) {
    SkipWs(line, i);
    std::string key;
    if (!ParseJsonString(line, i, &key, error)) return false;
    SkipWs(line, i);
    if (i >= line.size() || line[i] != ':') {
      *error = "expected ':' after key '" + key + "'";
      return false;
    }
    ++i;
    SkipWs(line, i);
    if (key == "app" || key == "series" || key == "cmd") {
      std::string value;
      if (!ParseJsonString(line, i, &value, error)) return false;
      if (key == "app") {
        query->app = value;
        have_app = true;
      } else if (key == "series") {
        query->series = value;
        have_series = true;
      } else {
        if (value != "stats") {
          *error = "unknown cmd '" + value + "' (supported: stats)";
          return false;
        }
        query->cmd = value;
      }
    } else if (key == "rate" || key == "ci") {
      const char* begin = line.c_str() + i;
      char* end = nullptr;
      const double value = std::strtod(begin, &end);
      if (end == begin) {
        *error = "expected a number for '" + key + "'";
        return false;
      }
      i += static_cast<std::size_t>(end - begin);
      if (key == "rate") {
        query->rate = value;
        have_rate = true;
      } else {
        query->ci = value;
      }
    } else if (key == "fresh" || key == "surrogate") {
      bool value;
      if (line.compare(i, 4, "true") == 0) {
        value = true;
        i += 4;
      } else if (line.compare(i, 5, "false") == 0) {
        value = false;
        i += 5;
      } else {
        *error = "expected true/false for '" + key + "'";
        return false;
      }
      if (key == "fresh") {
        query->allow_fresh = value;
      } else {
        query->allow_surrogate = value;
      }
    } else {
      *error = "unknown key '" + key + "'";
      return false;
    }
    SkipWs(line, i);
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    if (i < line.size() && line[i] == '}') break;
    *error = "expected ',' or '}'";
    return false;
  }
  if (query->cmd.empty() && (!have_app || !have_series || !have_rate)) {
    *error = "query needs \"app\", \"series\", and \"rate\"";
    return false;
  }
  return true;
}

std::string QueryService::AnswerJson(const Answer& answer) {
  if (!answer.ok) {
    return "{\"ok\":false,\"error\":\"" + EscapeJson(answer.error) + "\"}";
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ",\"success_rate\":%.17g,\"half_width\":%.17g,\"trials\":%d,"
                "\"successes\":%d,\"fresh_trials\":%d,\"on_grid\":%s,"
                "\"settled\":%s}",
                answer.success_rate, answer.half_width, answer.trials,
                answer.successes, answer.fresh_trials,
                answer.on_grid ? "true" : "false",
                answer.settled ? "true" : "false");
  return "{\"ok\":true,\"source\":\"" + EscapeJson(answer.source) + "\"" + buf;
}

std::string QueryService::StatsJson() const {
  telemetry::SpanScope stats_span("stats");
  const telemetry::CounterSnapshot snapshot = telemetry::SnapshotCounters();
  char buf[160];
  std::string out = "{\"ok\":true,\"cmd\":\"stats\",\"counters\":{";

  bool first = true;
  for (int c = 0; c < telemetry::kNumCounters; ++c) {
    if (snapshot.counters[c] == 0) continue;
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", first ? "" : ",",
                  telemetry::CounterName(static_cast<telemetry::Counter>(c)),
                  static_cast<unsigned long long>(snapshot.counters[c]));
    out += buf;
    first = false;
  }

  out += "},\"latency_us\":{";
  const struct {
    const char* key;
    telemetry::Histogram histogram;
  } sources[] = {
      {"cache", telemetry::Histogram::kQueryLatencyCacheUs},
      {"fresh_trials", telemetry::Histogram::kQueryLatencyFreshUs},
      {"surrogate", telemetry::Histogram::kQueryLatencySurrogateUs},
  };
  for (std::size_t s = 0; s < 3; ++s) {
    const std::uint64_t* buckets =
        snapshot.histograms[static_cast<int>(sources[s].histogram)];
    std::uint64_t count = 0;
    for (int b = 0; b < telemetry::kHistogramBuckets; ++b) count += buckets[b];
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"count\":%llu,\"p50\":%.6g,\"p90\":%.6g,"
                  "\"p99\":%.6g}",
                  s == 0 ? "" : ",", sources[s].key,
                  static_cast<unsigned long long>(count),
                  telemetry::HistogramQuantile(buckets, 0.50),
                  telemetry::HistogramQuantile(buckets, 0.90),
                  telemetry::HistogramQuantile(buckets, 0.99));
    out += buf;
  }

  out += "},\"store\":{\"root\":\"" + EscapeJson(store_->root()) +
         "\",\"campaigns\":[";
  bool first_campaign = true;
  for (const store::ResultStore::ManifestEntry& entry : store_->Manifest()) {
    if (!first_campaign) out += ",";
    first_campaign = false;
    out += "{\"fingerprint\":\"" + entry.fingerprint + "\",\"app\":\"" +
           EscapeJson(entry.app) + "\",\"cells\":[";
    for (std::size_t c = 0; c < entry.cells.size(); ++c) {
      const store::ResultStore::ManifestCell& cell = entry.cells[c];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"series\":%d,\"rate\":%d,\"trials\":%d,"
                    "\"successes\":%d,\"half_width\":%.17g}",
                    c == 0 ? "" : ",", cell.series, cell.rate, cell.trials,
                    cell.successes, cell.half_width);
      out += buf;
    }
    out += "]}";
  }
  out += "]}}";
  return out;
}

void QueryService::Serve(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    std::size_t i = 0;
    SkipWs(line, i);
    if (i >= line.size()) continue;  // blank keep-alive line
    Query query;
    std::string error;
    Answer answer;
    if (ParseQueryJson(line, &query, &error)) {
      if (query.cmd == "stats") {
        out << StatsJson() << '\n' << std::flush;
        continue;
      }
      answer = Handle(query);
    } else {
      answer.error = "bad query: " + error;
    }
    out << AnswerJson(answer) << '\n' << std::flush;
  }
}

}  // namespace robustify::service
