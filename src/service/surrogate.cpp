#include "service/surrogate.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "campaign/adaptive.h"

namespace robustify::service {

double CliffSurrogate::Predict(double rate) const {
  const double logit = intercept + slope * std::log(rate);
  return 1.0 / (1.0 + std::exp(-logit));
}

bool CliffSurrogate::InSupport(double rate) const {
  return valid && rate >= rate_min && rate <= rate_max;
}

double CliffSurrogate::HalfWidthAt(double rate) const {
  const double x = std::log(rate);
  double best = std::numeric_limits<double>::infinity();
  double best_dist = std::numeric_limits<double>::infinity();
  for (const Support& s : support) {
    const double dist = std::abs(s.log_rate - x);
    if (dist < best_dist) {
      best_dist = dist;
      best = s.half_width;
    }
  }
  return best;
}

CliffSurrogate FitCliffSurrogate(const std::vector<CellTally>& cells) {
  CliffSurrogate fit;
  constexpr double z = 1.959963984540054;  // match WilsonHalfWidth
  constexpr double z2 = z * z;

  double sw = 0.0, swx = 0.0, swy = 0.0, swxx = 0.0, swxy = 0.0;
  int points = 0;
  for (const CellTally& cell : cells) {
    if (cell.rate <= 0.0 || cell.trials <= 0) continue;
    const double n = static_cast<double>(cell.trials);
    const double center =
        (static_cast<double>(cell.successes) + z2 / 2.0) / (n + z2);
    const double x = std::log(cell.rate);
    const double y = std::log(center / (1.0 - center));
    const double w = n * center * (1.0 - center);
    sw += w;
    swx += w * x;
    swy += w * y;
    swxx += w * x * x;
    swxy += w * x * y;
    ++points;

    CliffSurrogate::Support support;
    support.log_rate = x;
    support.half_width = campaign::WilsonHalfWidth(cell.successes, cell.trials);
    fit.support.push_back(support);
    fit.rate_min = (points == 1) ? cell.rate : std::min(fit.rate_min, cell.rate);
    fit.rate_max = (points == 1) ? cell.rate : std::max(fit.rate_max, cell.rate);
  }

  const double det = sw * swxx - swx * swx;
  // Scale-aware degeneracy check: det of a Gram matrix is nonnegative up to
  // roundoff, and collinear points drive it to ~0 relative to its terms.
  if (points < 3 || det <= 1e-12 * std::max(sw * swxx, swx * swx)) {
    fit.support.clear();
    return fit;
  }
  fit.slope = (sw * swxy - swx * swy) / det;
  fit.intercept = (swxx * swy - swx * swxy) / det;
  fit.valid = true;
  return fit;
}

}  // namespace robustify::service
