// Query engine over the result store: (app, series, rate) → success rate
// ± Wilson CI, answered from cached cells when their achieved precision
// already meets the request, from the logistic cliff surrogate for
// supported off-grid rates, and from fresh adaptive trials (written back to
// the store) only when a query actually misses.
//
// Cache-hit contract: a stored cell serves a query iff its FULL stored
// tally has >= min_trials trials and a Wilson half-width <= the requested
// ci.  Serving the full tally — never a replay-truncated prefix — makes
// repeated queries reproducible: asking again at the same or a looser ci
// returns the *identical interval* and runs zero trials.  A miss replays
// the stored prefix through the sequential stopping rule at the requested
// ci and continues trials from where the store left off (per-cell seeding:
// trial t always runs at seed base_seed + t, so fresh trials extend the
// same deterministic sequence), then writes the extended prefix back.
// Tightening ci only ever *extends* a stored prefix — the stopping rule
// fires at the first trial count meeting the target, and a tighter target
// can only fire later — so the store's prefix-wins merge absorbs write-
// backs without conflict, and campaign CSV exports stay byte-identical
// (ReduceRecords truncates at the spec's own stopping point).
//
// Off-grid rates are served by the surrogate when the fit is valid and the
// rate lies inside the fitted support; otherwise (or with the surrogate
// disallowed) the service derives a single-rate spec — same campaign, axis
// = {rate} — whose own fingerprint content-addresses the fresh cell.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "campaign/scenarios.h"
#include "campaign/spec.h"
#include "store/result_store.h"

namespace robustify::service {

struct Query {
  std::string cmd;     // "" = answer a query; "stats" = serve-loop status
  std::string app;     // registered app / registry spec name
  std::string series;  // series name within the app's scenario
  double rate = 0.0;
  double ci = 0.0;             // requested half-width; <= 0 → the spec's own
  bool allow_fresh = true;     // may the service run trials on a miss?
  bool allow_surrogate = true; // may the service answer from the fit?
};

struct Answer {
  bool ok = false;
  std::string error;   // when !ok
  std::string source;  // "cache" | "fresh-trials" | "surrogate"
  double success_rate = 0.0;  // fraction in [0, 1]
  double half_width = 0.0;    // Wilson 95% (nearest-cell for surrogate)
  int trials = 0;
  int successes = 0;
  int fresh_trials = 0;  // trials executed to answer this query
  bool on_grid = false;  // rate is a cell of the spec's own axis
  bool settled = false;  // achieved half-width meets the requested ci
};

class QueryService {
 public:
  // `store` must outlive the service.  `threads` is reserved for future
  // parallel cell fills; fresh trials currently run on the calling thread
  // (a query misses at most one cell).
  explicit QueryService(store::ResultStore* store) : store_(store) {}

  // Registers an app the service may answer for.  Unregistered apps fall
  // back to the campaign registry (campaign/spec.h) at query time; tests
  // register synthetic specs/scenarios the registry cannot build.
  void RegisterSpec(const campaign::CampaignSpec& spec,
                    campaign::Scenario scenario);

  // Answers one query.  Never throws: failures come back as ok == false
  // with a human-readable error.  Emits the `query` trace span, the
  // store.{hits,misses,fresh_trials} counters, and the per-source
  // query.latency_us.* histogram sample for answered queries.
  Answer Handle(const Query& query);

  // Newline-delimited JSON serve loop: one flat JSON object per input line
  // ({"app":..., "series":..., "rate":..., "ci":...,
  //   "fresh":true|false, "surrogate":true|false} — ci/fresh/surrogate
  // optional), one answer object per output line, flushed per answer.
  // Blank lines are skipped; EOF ends the loop.  A {"cmd":"stats"} line is
  // answered with StatsJson() instead of running a query.
  void Serve(std::istream& in, std::ostream& out);

  // One-line JSON status of the serve loop: telemetry counters (nonzero
  // only), per-answer-source latency quantiles (count/p50/p90/p99, in
  // microseconds, interpolated from the log2 histograms — process-lifetime
  // totals), and the store manifest (stored fingerprints with per-cell
  // trials and achieved Wilson half-width).
  std::string StatsJson() const;

  // JSON plumbing, exposed for tests.  ParseQueryJson returns false (with
  // `error` set) on malformed input or missing required keys.
  static bool ParseQueryJson(const std::string& line, Query* query,
                             std::string* error);
  static std::string AnswerJson(const Answer& answer);

 private:
  struct AppEntry {
    campaign::CampaignSpec spec;
    campaign::Scenario scenario;
  };

  // Looks up (registering from the campaign registry on first use) the
  // app's spec + scenario.  Returns nullptr with `error` set when unknown.
  const AppEntry* ResolveApp(const std::string& app, std::string* error);

  // Handle() minus the latency accounting that wraps it.
  Answer HandleQuery(const Query& query);

  Answer AnswerCell(const campaign::CampaignSpec& spec,
                    const campaign::Scenario& scenario, int series_index,
                    int rate_index, double ci, bool allow_fresh);

  Answer AnswerSurrogate(const campaign::CampaignSpec& spec,
                         const campaign::Scenario& scenario, int series_index,
                         double rate);

  store::ResultStore* store_;
  std::map<std::string, AppEntry> apps_;
};

}  // namespace robustify::service
