// Logistic cliff surrogate: a closed-form fit of the success-rate-vs-rate
// curve of one (series, model) campaign slice, so off-grid rate lookups
// cost nothing once the grid cells are stored.
//
// The paper's curves share one shape: success probability near 1 at low
// fault rates, a cliff, then near 0 — a logistic in log(rate).  The fit is
// weighted linear regression in logit space:
//
//   logit(p) ≈ a + b·log(rate)
//
// over the stored cells with rate > 0 and trials > 0, where each cell
// contributes the *Wilson center* p̃ = (s + z²/2)/(n + z²) rather than the
// raw fraction s/n.  The Wilson center is strictly interior to (0, 1), so
// the all-success and all-failure cells that dominate a cliff curve map to
// finite logits (raw fractions would put them at ±inf — the perfect-
// separation failure of plain logistic regression) with a shrinkage that
// matches exactly the interval the query service already reports.  Weights
// n·p̃(1−p̃) are the usual inverse-variance weights for a logit transform.
//
// The fit is deterministic (a 2×2 normal-equation solve, no iteration) and
// refuses to extrapolate: Predict is only meaningful inside the fitted
// rate support, and the reported half-width is the Wilson half-width of
// the nearest support cell in log-rate — honest in the sense that the
// surrogate can never claim tighter precision than the data under it.
#pragma once

#include <vector>

namespace robustify::service {

// One stored grid cell, as the surrogate consumes it.
struct CellTally {
  double rate = 0.0;
  int successes = 0;
  int trials = 0;
};

struct CliffSurrogate {
  bool valid = false;     // >= 3 usable cells and a well-conditioned solve
  double intercept = 0.0; // a: logit(p) at log(rate) = 0
  double slope = 0.0;     // b: logits per log-rate decade-e
  double rate_min = 0.0;  // fitted support (smallest / largest rate > 0)
  double rate_max = 0.0;

  struct Support {
    double log_rate = 0.0;
    double half_width = 0.0;  // Wilson half-width of the cell's tally
  };
  std::vector<Support> support;

  // Predicted success fraction at `rate` (valid && rate > 0 required).
  double Predict(double rate) const;

  // True when `rate` lies inside [rate_min, rate_max].
  bool InSupport(double rate) const;

  // Wilson half-width of the nearest support cell in log-rate: the
  // precision the surrogate is allowed to claim at `rate`.
  double HalfWidthAt(double rate) const;
};

// Fits the surrogate over `cells` (cells with rate <= 0 or trials == 0 are
// ignored).  Returns valid == false when fewer than three cells remain or
// the normal equations are degenerate (e.g. all cells at one rate).
CliffSurrogate FitCliffSurrogate(const std::vector<CellTally>& cells);

}  // namespace robustify::service
