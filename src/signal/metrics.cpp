#include "signal/metrics.h"

#include <cmath>
#include <limits>

namespace robustify::signal {

namespace {

double RelativeNormError(const linalg::Vector<double>& x,
                         const linalg::Vector<double>& reference) {
  if (x.size() != reference.size()) return std::numeric_limits<double>::infinity();
  double diff2 = 0.0;
  double ref2 = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!std::isfinite(x[i])) return std::numeric_limits<double>::infinity();
    const double d = x[i] - reference[i];
    diff2 += d * d;
    ref2 += reference[i] * reference[i];
  }
  return std::sqrt(diff2) / std::max(std::sqrt(ref2), 1e-300);
}

}  // namespace

double RelativeError(const linalg::Vector<double>& x,
                     const linalg::Vector<double>& reference) {
  return RelativeNormError(x, reference);
}

double ErrorToSignalRatio(const linalg::Vector<double>& y,
                          const linalg::Vector<double>& clean) {
  return RelativeNormError(y, clean);
}

}  // namespace robustify::signal
