// Quality metrics used by the figure benches (clean double math — metrics
// are computed by the experiment harness, not on the faulty FPU).
#pragma once

#include "linalg/vector.h"

namespace robustify::signal {

// ||x - reference|| / ||reference||; +inf if x has non-finite entries.
double RelativeError(const linalg::Vector<double>& x,
                     const linalg::Vector<double>& reference);

// ||y - clean|| / ||clean|| — the paper's error-to-signal ratio.
double ErrorToSignalRatio(const linalg::Vector<double>& y,
                          const linalg::Vector<double>& clean);

}  // namespace robustify::signal
