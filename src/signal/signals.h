// Signal-processing primitives: IIR coefficient generation and test inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/vector.h"

namespace robustify::signal {

// Direct-form-I IIR filter:
//   y[t] = sum_k b[k] u[t-k]  -  sum_{k>=1} a[k] y[t-k]
// b has `nb` feed-forward taps (b[0..nb-1]); a has `na` feedback taps stored
// as a[0..na-1] meaning a_1..a_na (a_0 = 1 implied).
struct IirCoefficients {
  std::vector<double> b;
  std::vector<double> a;
};

// A deterministic stable filter: poles sampled inside the unit disk (radius
// <= 0.7) and expanded into real feedback coefficients.
IirCoefficients MakeStableIir(int nb, int na, std::uint64_t seed);

// sum_k amps[k] * sin(2 pi freqs[k] t / n), t = 0..n-1.
linalg::Vector<double> SineMix(std::size_t n, const std::vector<double>& freqs,
                               const std::vector<double>& amps);

}  // namespace robustify::signal
