#include "signal/signals.h"

#include <cmath>
#include <random>

namespace robustify::signal {

IirCoefficients MakeStableIir(int nb, int na, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> radius(0.30, 0.70);
  std::uniform_real_distribution<double> angle(0.4, 2.6);
  std::uniform_real_distribution<double> tap(-0.5, 0.5);

  // Denominator: expand conjugate pole pairs (1 - 2 r cos(th) z^-1 + r^2 z^-2)
  // and, if na is odd, one real pole (1 - p z^-1).  poly holds a_0..a_na.
  std::vector<double> poly{1.0};
  auto multiply = [&poly](const std::vector<double>& factor) {
    std::vector<double> out(poly.size() + factor.size() - 1, 0.0);
    for (std::size_t i = 0; i < poly.size(); ++i) {
      for (std::size_t j = 0; j < factor.size(); ++j) out[i + j] += poly[i] * factor[j];
    }
    poly = out;
  };
  int remaining = na;
  while (remaining >= 2) {
    const double r = radius(rng);
    const double th = angle(rng);
    multiply({1.0, -2.0 * r * std::cos(th), r * r});
    remaining -= 2;
  }
  if (remaining == 1) {
    const double p = radius(rng) * 0.8;
    multiply({1.0, -p});
  }

  IirCoefficients c;
  c.a.assign(poly.begin() + 1, poly.end());  // a_1..a_na
  c.b.resize(static_cast<std::size_t>(nb));
  for (double& bk : c.b) bk = tap(rng);
  if (!c.b.empty()) c.b[0] = 1.0;  // keep unit direct gain
  return c;
}

linalg::Vector<double> SineMix(std::size_t n, const std::vector<double>& freqs,
                               const std::vector<double>& amps) {
  linalg::Vector<double> x(n);
  constexpr double kTwoPi = 6.283185307179586;
  for (std::size_t t = 0; t < n; ++t) {
    double acc = 0.0;
    for (std::size_t k = 0; k < freqs.size(); ++k) {
      const double amp = k < amps.size() ? amps[k] : 1.0;
      acc += amp * std::sin(kTwoPi * freqs[k] * static_cast<double>(t) / static_cast<double>(n));
    }
    x[t] = acc;
  }
  return x;
}

}  // namespace robustify::signal
