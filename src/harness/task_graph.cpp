#include "harness/task_graph.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>

#include "harness/parallel.h"

namespace robustify::harness {

void TaskGraph::Reset(std::size_t resources) {
  tags_.clear();
  indegree_.clear();
  // Inner vectors keep their capacity; AddTask / Writes clear them lazily.
  if (last_writer_.size() < resources) last_writer_.resize(resources);
  std::fill(last_writer_.begin(), last_writer_.begin() + static_cast<std::ptrdiff_t>(resources),
            -1);
  if (readers_.size() < resources) readers_.resize(resources);
  for (std::size_t r = 0; r < resources; ++r) readers_[r].clear();
}

int TaskGraph::AddTask(const TaskTag& tag) {
  const int id = static_cast<int>(tags_.size());
  tags_.push_back(tag);
  indegree_.push_back(0);
  if (succ_.size() < tags_.size()) {
    succ_.emplace_back();
  } else {
    succ_[static_cast<std::size_t>(id)].clear();
  }
  return id;
}

void TaskGraph::AddEdge(int pred, int succ) {
  if (pred < 0 || pred == succ) return;
  succ_[static_cast<std::size_t>(pred)].push_back(succ);
  ++indegree_[static_cast<std::size_t>(succ)];
}

void TaskGraph::Reads(int task, std::size_t resource) {
  AddEdge(last_writer_[resource], task);
  readers_[resource].push_back(task);
}

void TaskGraph::Writes(int task, std::size_t resource) {
  AddEdge(last_writer_[resource], task);
  for (int reader : readers_[resource]) AddEdge(reader, task);
  readers_[resource].clear();
  last_writer_[resource] = task;
}

void TaskGraph::SeedReady() {
  pending_.assign(indegree_.begin(), indegree_.end());
  ready_.clear();
  ready_.reserve(tags_.size());
  // Seed in reverse id order so the LIFO pop below starts from task 0.
  for (int id = size(); id-- > 0;) {
    if (pending_[static_cast<std::size_t>(id)] == 0) ready_.push_back(id);
  }
}

void TaskGraph::RunImpl(int threads, RawBody fn, void* ctx) {
  if (tags_.empty()) return;
  const int workers = std::min(std::max(threads, 1), size());
  SeedReady();
  if (workers <= 1) {
    RunSerial(fn, ctx);
  } else {
    RunParallel(workers, fn, ctx);
  }
}

void TaskGraph::RunSerial(RawBody fn, void* ctx) {
  int executed = 0;
  while (!ready_.empty()) {
    const int id = ready_.back();
    ready_.pop_back();
    fn(ctx, id, tags_[static_cast<std::size_t>(id)]);
    ++executed;
    for (int s : succ_[static_cast<std::size_t>(id)]) {
      if (--pending_[static_cast<std::size_t>(s)] == 0) ready_.push_back(s);
    }
  }
  if (executed != size()) {
    throw std::logic_error("TaskGraph: declared accesses form a cycle");
  }
}

void TaskGraph::RunParallel(int workers, RawBody fn, void* ctx) {
  std::mutex mu;
  std::condition_variable work;
  int remaining = size();
  int running = 0;
  bool stuck = false;
  std::exception_ptr error;

  ParallelFor(workers, workers, [&](int) {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      while (ready_.empty() && remaining > 0 && running > 0 && !error) {
        work.wait(lock);
      }
      if (remaining == 0 || error) return;
      if (ready_.empty()) {
        // No runnable task, nothing in flight: the graph has a cycle.
        stuck = true;
        remaining = 0;
        work.notify_all();
        return;
      }
      const int id = ready_.back();
      ready_.pop_back();
      ++running;
      lock.unlock();
      try {
        fn(ctx, id, tags_[static_cast<std::size_t>(id)]);
      } catch (...) {
        lock.lock();
        if (!error) error = std::current_exception();
        --running;
        work.notify_all();
        return;
      }
      lock.lock();
      --running;
      --remaining;
      for (int s : succ_[static_cast<std::size_t>(id)]) {
        if (--pending_[static_cast<std::size_t>(s)] == 0) ready_.push_back(s);
      }
      // Wake everyone even when nothing became ready: with running now
      // possibly 0, sleepers must re-check the no-progress (cycle) case.
      work.notify_all();
    }
  });

  if (error) std::rethrow_exception(error);
  if (stuck) throw std::logic_error("TaskGraph: declared accesses form a cycle");
}

}  // namespace robustify::harness
