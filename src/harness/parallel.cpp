#include "harness/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <utility>

#include "telemetry/trace.h"

namespace robustify::harness {

int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("ROBUSTIFY_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();  // tasks must not throw (ParallelFor wraps user fns)
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

void ParallelFor(int count, int threads, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  const int workers = std::min(ResolveThreadCount(threads), count);
  if (workers <= 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  std::mutex error_mu;
  std::exception_ptr first_error;
  const auto drive = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::unique_lock<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  ThreadPool pool(workers);
  for (int w = 0; w < workers; ++w) pool.Submit(drive);
  {
    // The submitting thread parks here while workers drain the grid; the
    // attribution ledger books it as pool.wait so a parent span's self
    // time is its own machinery, not the wait.
    telemetry::SpanScope wait_span("pool.wait");
    pool.Wait();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace robustify::harness
