#include "harness/table.h"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace robustify::harness {

double ExtractValue(const TrialSummary& summary, TableValue value) {
  switch (value) {
    case TableValue::kSuccessRatePct: return summary.success_rate_pct;
    case TableValue::kMedianMetric: return summary.median_metric;
    case TableValue::kMeanMetric: return summary.mean_metric;
    case TableValue::kMeanFaultyFlops: return summary.mean_faulty_flops;
  }
  return 0.0;
}

namespace {

constexpr int kColWidth = 16;

std::string FormatCell(double v, TableValue value) {
  char buf[64];
  if (value == TableValue::kSuccessRatePct) {
    std::snprintf(buf, sizeof(buf), "%-*.1f", kColWidth, v);
  } else if (!std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%-*s", kColWidth, "inf");
  } else {
    std::snprintf(buf, sizeof(buf), "%-*.4e", kColWidth, v);
  }
  return buf;
}

}  // namespace

void PrintSweepTable(std::ostream& os, const std::string& title,
                     const std::vector<Series>& series, TableValue value,
                     const std::string& value_label) {
  os << title << "\n";
  os << "value: " << value_label << "\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%-*s", kColWidth, "fault_rate");
  os << buf;
  for (const Series& s : series) {
    std::string name = s.name;
    if (name.size() > kColWidth - 2) name = name.substr(0, kColWidth - 2);
    std::snprintf(buf, sizeof(buf), "%-*s", kColWidth, name.c_str());
    os << buf;
  }
  os << "\n";
  const std::size_t total_width = kColWidth * (series.size() + 1);
  os << std::string(total_width, '-') << "\n";
  if (series.empty()) return;
  for (std::size_t r = 0; r < series.front().points.size(); ++r) {
    std::snprintf(buf, sizeof(buf), "%-*.6g", kColWidth, series.front().points[r].fault_rate);
    os << buf;
    for (const Series& s : series) {
      const double v = r < s.points.size() ? ExtractValue(s.points[r].summary, value)
                                           : 0.0;
      os << FormatCell(v, value);
    }
    os << "\n";
  }
}

}  // namespace robustify::harness
