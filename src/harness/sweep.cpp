#include "harness/sweep.h"

#include "harness/parallel.h"
#include "telemetry/progress.h"
#include "telemetry/trace.h"

namespace robustify::harness {

std::vector<Series> RunFaultRateSweep(const SweepConfig& config,
                                      const std::vector<NamedTrial>& trials) {
  telemetry::SpanScope sweep_span("sweep");
  const int series_count = static_cast<int>(trials.size());
  const int rate_count = static_cast<int>(config.fault_rates.size());
  const int reps = config.trials > 0 ? config.trials : 0;

  // One preallocated slot per (series, rate, repetition) cell: workers write
  // disjoint slots, the reduction below reads them in deterministic order.
  std::vector<TrialOutcome> outcomes(
      static_cast<std::size_t>(series_count * rate_count * reps));
  telemetry::ProgressBegin("sweep", series_count * rate_count * reps);
  ParallelFor(series_count * rate_count * reps, config.threads, [&](int cell) {
    const int s = cell / (rate_count * reps);
    const int r = (cell / reps) % rate_count;
    const int t = cell % reps;
    core::FaultEnvironment env;
    env.fault_rate = config.fault_rates[static_cast<std::size_t>(r)];
    env.seed = config.base_seed;
    env.bit_model = config.bit_model;
    env.model = config.model;
    env.guard = config.guard;
    outcomes[static_cast<std::size_t>(cell)] =
        RunSingleTrial(trials[static_cast<std::size_t>(s)].fn, env, t);
    telemetry::ProgressUnitDone(1);
  });
  telemetry::ProgressEnd();

  std::vector<Series> result;
  result.reserve(trials.size());
  for (int s = 0; s < series_count; ++s) {
    Series series;
    series.name = trials[static_cast<std::size_t>(s)].name;
    for (int r = 0; r < rate_count; ++r) {
      const TrialOutcome* cell =
          outcomes.data() + static_cast<std::ptrdiff_t>((s * rate_count + r) * reps);
      series.points.push_back({config.fault_rates[static_cast<std::size_t>(r)],
                               SummarizeOutcomes(cell, reps)});
    }
    result.push_back(std::move(series));
  }
  return result;
}

}  // namespace robustify::harness
