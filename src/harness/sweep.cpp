#include "harness/sweep.h"

namespace robustify::harness {

std::vector<Series> RunFaultRateSweep(const SweepConfig& config,
                                      const std::vector<NamedTrial>& trials) {
  std::vector<Series> result;
  result.reserve(trials.size());
  for (const NamedTrial& trial : trials) {
    Series series;
    series.name = trial.name;
    for (const double rate : config.fault_rates) {
      core::FaultEnvironment env;
      env.fault_rate = rate;
      env.seed = config.base_seed;
      env.bit_model = config.bit_model;
      series.points.push_back({rate, RunTrials(trial.fn, env, config.trials)});
    }
    result.push_back(std::move(series));
  }
  return result;
}

}  // namespace robustify::harness
