#include "harness/perf_report.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "telemetry/provenance.h"
#include "telemetry/telemetry.h"

namespace robustify::harness {

namespace {

// Section/bench names are short identifiers, but escape the JSON-breaking
// characters anyway.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string Num(double v) {
  std::ostringstream os;
  os.precision(9);
  os << v;
  return os.str();
}

}  // namespace

void AttachCounters(PerfReport* report) {
  report->counters.clear();
  const telemetry::CounterSnapshot snapshot = telemetry::SnapshotCounters();
  for (int c = 0; c < telemetry::kNumCounters; ++c) {
    if (snapshot.counters[c] == 0) continue;
    report->counters.emplace_back(
        telemetry::CounterName(static_cast<telemetry::Counter>(c)),
        snapshot.counters[c]);
  }
}

void WritePerfJson(const std::string& path, const PerfReport& report) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open perf report for writing: " + path);
  out << "{\n"
      << "  \"bench\": \"" << JsonEscape(report.bench) << "\",\n"
      << "  \"threads\": " << report.threads << ",\n"
      << "  \"injector_strategy\": \"" << JsonEscape(report.injector_strategy)
      << "\",\n"
      << "  \"engine\": \"" << JsonEscape(report.engine) << "\",\n";
  if (!report.rng.empty()) {
    out << "  \"rng\": \"" << JsonEscape(report.rng) << "\",\n";
  }
  const telemetry::BuildProvenance& prov = telemetry::Provenance();
  out << "  \"provenance\": {\"git_sha\": \"" << JsonEscape(prov.git_sha)
      << "\", \"git_status\": \"" << JsonEscape(prov.git_status)
      << "\", \"compiler\": \"" << JsonEscape(prov.compiler)
      << "\", \"cxx_flags\": \"" << JsonEscape(prov.cxx_flags)
      << "\", \"build_type\": \"" << JsonEscape(prov.build_type) << "\"},\n";
  out << "  \"wall_seconds\": " << Num(report.wall_seconds) << ",\n"
      << "  \"sections\": [";
  for (std::size_t i = 0; i < report.sections.size(); ++i) {
    const PerfSection& s = report.sections[i];
    out << (i == 0 ? "\n" : ",\n")
        << "    {\"name\": \"" << JsonEscape(s.name) << "\","
        << " \"wall_seconds\": " << Num(s.wall_seconds) << ","
        << " \"faulty_flops\": " << Num(s.faulty_flops) << ","
        << " \"injector_mops_per_sec\": " << Num(s.injector_mops_per_sec) << ","
        << " \"serial_wall_seconds\": " << Num(s.serial_wall_seconds) << ","
        << " \"speedup_vs_serial\": " << Num(s.speedup_vs_serial);
    if (s.trials_budget > 0.0) {
      out << "," << " \"trials_run\": " << Num(s.trials_run) << ","
          << " \"trials_budget\": " << Num(s.trials_budget);
    }
    if (s.roofline_ceiling_gops > 0.0) {
      out << "," << " \"kernel_gops\": " << Num(s.kernel_gops) << ","
          << " \"arithmetic_intensity\": " << Num(s.arithmetic_intensity) << ","
          << " \"roofline_ceiling_gops\": " << Num(s.roofline_ceiling_gops)
          << "," << " \"roofline_efficiency\": " << Num(s.roofline_efficiency);
    }
    out << "}";
  }
  out << "\n  ],\n  \"counters\": {";
  for (std::size_t i = 0; i < report.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << JsonEscape(report.counters[i].first)
        << "\": " << report.counters[i].second;
  }
  out << (report.counters.empty() ? "" : "\n  ") << "}\n}\n";
  if (!out.good()) throw std::runtime_error("failed writing perf report: " + path);
}

}  // namespace robustify::harness
