// Small thread pool + parallel-for for the sweep harness.
//
// The Monte-Carlo grid of a fault-rate sweep — (trial fn, rate, repetition)
// cells — is embarrassingly parallel: every cell builds its own inputs from
// its own deterministic seed and runs on the thread-local FaultInjector, so
// cells never share mutable state.  ParallelFor fans a cell index range
// across a pool of workers pulling from one atomic counter (good load
// balancing: cells at different fault rates cost different amounts), and
// callers reduce the preallocated per-cell results serially in index order —
// which is what makes sweep output byte-identical for any thread count.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace robustify::harness {

// Worker count resolution: an explicit request (> 0) wins, else the
// ROBUSTIFY_THREADS environment variable, else hardware concurrency.
// Always at least 1.
int ResolveThreadCount(int requested);

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();  // waits for submitted work, then joins the workers
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  int active_ = 0;
  bool stopping_ = false;
};

// Runs fn(0) .. fn(count - 1) across ResolveThreadCount(threads) workers.
// Indices are claimed from a shared atomic counter; each index runs exactly
// once, in unspecified order and on an unspecified thread.  If any call
// throws, the first exception is rethrown in the caller after all workers
// finish.  With one worker (or count <= 1) this degenerates to a plain
// in-order serial loop.
void ParallelFor(int count, int threads, const std::function<void(int)>& fn);

}  // namespace robustify::harness
