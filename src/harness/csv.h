// CSV export of sweep results for offline plotting.
#pragma once

#include <string>
#include <vector>

#include "harness/sweep.h"

namespace robustify::harness {

// Writes fault_rate plus, per series, success_pct / median_metric /
// mean_faulty_flops columns.  Series names are quoted (they contain commas,
// e.g. "SGD+AS,LS").  Throws std::runtime_error if the file cannot be
// written.
void WriteSweepCsv(const std::string& path, const std::vector<Series>& series);

}  // namespace robustify::harness
