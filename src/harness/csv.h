// CSV export of sweep results for offline plotting.
#pragma once

#include <string>
#include <vector>

#include "harness/sweep.h"

namespace robustify::harness {

// Writes fault_rate plus, per series, success_pct / median_metric /
// mean_faulty_flops columns.  Series names are quoted (they contain commas,
// e.g. "SGD+AS,LS").  Throws std::runtime_error if the file cannot be
// written.
//
// With outcome_columns (opt-in so historical CSVs stay byte-identical),
// each series additionally gets wrong_pct / diverged_pct / budget_pct
// columns — the guarded executor's failure taxonomy.  Callers derive the
// flag from configuration (an active guard), never from the data, so a
// given config always produces the same schema.
void WriteSweepCsv(const std::string& path, const std::vector<Series>& series,
                   bool outcome_columns = false);

}  // namespace robustify::harness
