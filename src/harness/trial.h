// Trial primitives: run one robustness experiment many times at a fixed
// fault environment and summarize success rate and quality metrics.
//
// Scratch memory: the trial is the harness's unit of work, and each sweep
// worker thread runs trials back to back, so hot-path scratch is owned at
// the thread level — app kernels called inside a TrialFn draw their solver
// buffers from opt::ThreadWorkspace<T>() (see opt/workspace.h), which stays
// warm across every trial scheduled onto that worker.  After the first
// trial on a thread, a whole SGD/CGLS solve performs no heap allocation.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/fault_env.h"

namespace robustify::harness {

struct TrialOutcome {
  bool success = false;
  double metric = 0.0;  // app-specific quality (lower is better)
  faulty::ContextStats fpu_stats;
  // Four-way outcome (core/guard.h), resolved by RunSingleTrial from the
  // success flag plus the trial's guard state.  Trial functions leave it
  // alone; with no guard configured it is simply success/wrong-result.
  core::TrialVerdict verdict = core::TrialVerdict::kWrongResult;
};

using TrialFn = std::function<TrialOutcome(const core::FaultEnvironment&)>;

struct TrialSummary {
  int trials = 0;
  int successes = 0;
  double success_rate_pct = 0.0;
  double median_metric = 0.0;  // non-finite trial metrics count as +inf
  double mean_metric = 0.0;    // mean over finite metrics only
  double mean_faulty_flops = 0.0;
  double mean_faults_injected = 0.0;
  // Failure taxonomy (counts sum with successes to trials): clean-but-wrong
  // answers, non-finite bailouts, and budget-cap trips.  All wrong_results
  // unless the trials ran under an active guard.
  int wrong_results = 0;
  int diverged = 0;
  int budget_exhausted = 0;
};

// Runs repetition `trial_index` of `fn`: env.seed = env.seed + trial_index,
// so inputs and fault sequences differ per trial but are paired across
// fault rates.  This is the unit of work the parallel sweep fans out.
TrialOutcome RunSingleTrial(const TrialFn& fn, core::FaultEnvironment env,
                            int trial_index);

// Deterministic in-order reduction of per-trial outcomes (the accumulation
// order is fixed by the outcome order, never by thread scheduling).  The
// pointer+count form lets the sweep reduce each cell in place out of its
// preallocated grid.
TrialSummary SummarizeOutcomes(const TrialOutcome* outcomes, int count);
TrialSummary SummarizeOutcomes(const std::vector<TrialOutcome>& outcomes);

// Runs `trials` trials across `threads` workers (see ResolveThreadCount in
// harness/parallel.h; the default keeps the historical serial behavior).
// Results are identical for every thread count.
TrialSummary RunTrials(const TrialFn& fn, core::FaultEnvironment env, int trials,
                       int threads = 1);

}  // namespace robustify::harness
