// Trial primitives: run one robustness experiment many times at a fixed
// fault environment and summarize success rate and quality metrics.
#pragma once

#include <cstdint>
#include <functional>

#include "core/fault_env.h"

namespace robustify::harness {

struct TrialOutcome {
  bool success = false;
  double metric = 0.0;  // app-specific quality (lower is better)
  faulty::ContextStats fpu_stats;
};

using TrialFn = std::function<TrialOutcome(const core::FaultEnvironment&)>;

struct TrialSummary {
  int trials = 0;
  int successes = 0;
  double success_rate_pct = 0.0;
  double median_metric = 0.0;  // non-finite trial metrics count as +inf
  double mean_metric = 0.0;    // mean over finite metrics only
  double mean_faulty_flops = 0.0;
  double mean_faults_injected = 0.0;
};

// Runs `trials` trials; trial t uses env.seed = base.seed + t so inputs and
// fault sequences differ per trial but are paired across fault rates.
TrialSummary RunTrials(const TrialFn& fn, core::FaultEnvironment env, int trials);

}  // namespace robustify::harness
