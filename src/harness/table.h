// Fixed-width sweep tables: the textual analogue of the paper's plots.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/sweep.h"

namespace robustify::harness {

enum class TableValue {
  kSuccessRatePct,
  kMedianMetric,
  kMeanMetric,
  kMeanFaultyFlops,
};

double ExtractValue(const TrialSummary& summary, TableValue value);

// One row per fault rate, one fixed-width column per series.
void PrintSweepTable(std::ostream& os, const std::string& title,
                     const std::vector<Series>& series, TableValue value,
                     const std::string& value_label);

}  // namespace robustify::harness
