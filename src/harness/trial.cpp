#include "harness/trial.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/guard.h"
#include "harness/parallel.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace robustify::harness {

TrialOutcome RunSingleTrial(const TrialFn& fn, core::FaultEnvironment env,
                            int trial_index) {
  telemetry::SpanScope trial_span("trial");
  env.seed += static_cast<std::uint64_t>(trial_index);
  // Arm the guard for the whole trial (inactive guards are invisible), then
  // resolve the four-way verdict from the success flag plus the guard trips.
  // The fault session makes live sticky windows survive across every
  // injector scope the trial opens (no-op under the default model).
  core::TrialFaultScope fault_session;
  core::GuardScope guard(env.guard);
  TrialOutcome outcome = fn(env);
  outcome.verdict = core::ResolveVerdict(outcome.success);
  if (outcome.verdict == core::TrialVerdict::kDiverged) {
    telemetry::Count(telemetry::Counter::kTrialsDiverged);
  } else if (outcome.verdict == core::TrialVerdict::kBudgetExhausted) {
    telemetry::Count(telemetry::Counter::kTrialsBudgetExhausted);
  }
  return outcome;
}

TrialSummary SummarizeOutcomes(const TrialOutcome* outcomes, int count) {
  const int trials = count > 0 ? count : 0;
  TrialSummary summary;
  summary.trials = trials;
  std::vector<double> metrics;
  metrics.reserve(static_cast<std::size_t>(trials));
  double finite_sum = 0.0;
  int finite_count = 0;
  for (int t = 0; t < trials; ++t) {
    const TrialOutcome& outcome = outcomes[t];
    if (outcome.success) ++summary.successes;
    // Re-anchor the verdict on the success flag so outcomes that never
    // passed through RunSingleTrial (hand-built in tests, replayed from a
    // journal) still satisfy successes + failures == trials.
    const core::TrialVerdict verdict =
        outcome.success ? core::TrialVerdict::kSuccess
        : outcome.verdict == core::TrialVerdict::kSuccess
            ? core::TrialVerdict::kWrongResult
            : outcome.verdict;
    switch (verdict) {
      case core::TrialVerdict::kSuccess: break;
      case core::TrialVerdict::kWrongResult: ++summary.wrong_results; break;
      case core::TrialVerdict::kDiverged: ++summary.diverged; break;
      case core::TrialVerdict::kBudgetExhausted: ++summary.budget_exhausted; break;
    }
    const double metric = std::isfinite(outcome.metric)
                              ? outcome.metric
                              : std::numeric_limits<double>::infinity();
    metrics.push_back(metric);
    if (std::isfinite(metric)) {
      finite_sum += metric;
      ++finite_count;
    }
    summary.mean_faulty_flops +=
        static_cast<double>(outcome.fpu_stats.faulty_flops) / trials;
    summary.mean_faults_injected +=
        static_cast<double>(outcome.fpu_stats.faults_injected) / trials;
  }
  summary.success_rate_pct = trials > 0 ? 100.0 * summary.successes / trials : 0.0;
  if (!metrics.empty()) {
    std::sort(metrics.begin(), metrics.end());
    summary.median_metric = metrics[metrics.size() / 2];
  }
  summary.mean_metric = finite_count > 0 ? finite_sum / finite_count : 0.0;
  return summary;
}

TrialSummary SummarizeOutcomes(const std::vector<TrialOutcome>& outcomes) {
  return SummarizeOutcomes(outcomes.data(), static_cast<int>(outcomes.size()));
}

TrialSummary RunTrials(const TrialFn& fn, core::FaultEnvironment env, int trials,
                       int threads) {
  if (trials < 0) trials = 0;
  std::vector<TrialOutcome> outcomes(static_cast<std::size_t>(trials));
  ParallelFor(trials, threads,
              [&](int t) { outcomes[static_cast<std::size_t>(t)] = RunSingleTrial(fn, env, t); });
  return SummarizeOutcomes(outcomes);
}

}  // namespace robustify::harness
