#include "harness/trial.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace robustify::harness {

TrialSummary RunTrials(const TrialFn& fn, core::FaultEnvironment env, int trials) {
  const std::uint64_t base_seed = env.seed;
  TrialSummary summary;
  summary.trials = trials;
  std::vector<double> metrics;
  metrics.reserve(static_cast<std::size_t>(trials));
  double finite_sum = 0.0;
  int finite_count = 0;
  for (int t = 0; t < trials; ++t) {
    env.seed = base_seed + static_cast<std::uint64_t>(t);
    const TrialOutcome outcome = fn(env);
    if (outcome.success) ++summary.successes;
    const double metric = std::isfinite(outcome.metric)
                              ? outcome.metric
                              : std::numeric_limits<double>::infinity();
    metrics.push_back(metric);
    if (std::isfinite(metric)) {
      finite_sum += metric;
      ++finite_count;
    }
    summary.mean_faulty_flops +=
        static_cast<double>(outcome.fpu_stats.faulty_flops) / trials;
    summary.mean_faults_injected +=
        static_cast<double>(outcome.fpu_stats.faults_injected) / trials;
  }
  summary.success_rate_pct = trials > 0 ? 100.0 * summary.successes / trials : 0.0;
  if (!metrics.empty()) {
    std::sort(metrics.begin(), metrics.end());
    summary.median_metric = metrics[metrics.size() / 2];
  }
  summary.mean_metric = finite_count > 0 ? finite_sum / finite_count : 0.0;
  return summary;
}

}  // namespace robustify::harness
