// Monotonic wall-clock timer for the perf reporting subsystem.
#pragma once

#include <chrono>

namespace robustify::harness {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace robustify::harness
