#include "harness/csv.h"

#include <fstream>
#include <stdexcept>

namespace robustify::harness {

namespace {

std::string Quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';  // CSV escaping: double the quote
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void WriteSweepCsv(const std::string& path, const std::vector<Series>& series,
                   bool outcome_columns) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  os << "fault_rate";
  for (const Series& s : series) {
    os << "," << Quoted(s.name + " success_pct") << "," << Quoted(s.name + " median_metric")
       << "," << Quoted(s.name + " mean_faulty_flops");
    if (outcome_columns) {
      os << "," << Quoted(s.name + " wrong_pct") << ","
         << Quoted(s.name + " diverged_pct") << ","
         << Quoted(s.name + " budget_pct");
    }
  }
  os << "\n";
  if (series.empty()) return;
  const auto pct = [](int count, int trials) {
    return trials > 0 ? 100.0 * count / trials : 0.0;
  };
  for (std::size_t r = 0; r < series.front().points.size(); ++r) {
    os << series.front().points[r].fault_rate;
    for (const Series& s : series) {
      if (r < s.points.size()) {
        const TrialSummary& sum = s.points[r].summary;
        os << "," << sum.success_rate_pct << "," << sum.median_metric << ","
           << sum.mean_faulty_flops;
        if (outcome_columns) {
          os << "," << pct(sum.wrong_results, sum.trials) << ","
             << pct(sum.diverged, sum.trials) << ","
             << pct(sum.budget_exhausted, sum.trials);
        }
      } else {
        os << (outcome_columns ? ",,,,,," : ",,,");
      }
    }
    os << "\n";
  }
  if (!os) throw std::runtime_error("failed writing " + path);
}

}  // namespace robustify::harness
