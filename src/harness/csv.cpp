#include "harness/csv.h"

#include <fstream>
#include <stdexcept>

namespace robustify::harness {

namespace {

std::string Quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';  // CSV escaping: double the quote
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void WriteSweepCsv(const std::string& path, const std::vector<Series>& series) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  os << "fault_rate";
  for (const Series& s : series) {
    os << "," << Quoted(s.name + " success_pct") << "," << Quoted(s.name + " median_metric")
       << "," << Quoted(s.name + " mean_faulty_flops");
  }
  os << "\n";
  if (series.empty()) return;
  for (std::size_t r = 0; r < series.front().points.size(); ++r) {
    os << series.front().points[r].fault_rate;
    for (const Series& s : series) {
      if (r < s.points.size()) {
        const TrialSummary& sum = s.points[r].summary;
        os << "," << sum.success_rate_pct << "," << sum.median_metric << ","
           << sum.mean_faulty_flops;
      } else {
        os << ",,,";
      }
    }
    os << "\n";
  }
  if (!os) throw std::runtime_error("failed writing " + path);
}

}  // namespace robustify::harness
