// Machine-readable perf reports (BENCH_<name>.json).
//
// Every bench emits one report via bench_common.h: wall time per timed
// section, FP ops routed through the injector, injector throughput, and —
// when a serial rerun was requested — the measured speedup vs. one thread.
// The JSON files seed the perf trajectory that later optimization PRs
// compare against.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace robustify::harness {

struct PerfSection {
  std::string name;
  double wall_seconds = 0.0;
  double faulty_flops = 0.0;        // ops through the injector (0 = not tracked)
  double injector_mops_per_sec = 0.0;
  double serial_wall_seconds = 0.0; // 0 = serial rerun not measured
  double speedup_vs_serial = 0.0;   // 0 = not measured
  // Adaptive-campaign accounting (0 = fixed-budget section, not tracked):
  // accepted trials vs. the fixed budget the same spec would have spent.
  double trials_run = 0.0;
  double trials_budget = 0.0;
  // Roofline placement (0 ceiling = not placed; bench_roofline fills these
  // from perfmodel/roofline.h).  Efficiency = kernel_gops / ceiling — the
  // host-comparable fraction of what the machine allows.
  double kernel_gops = 0.0;
  double arithmetic_intensity = 0.0;
  double roofline_ceiling_gops = 0.0;
  double roofline_efficiency = 0.0;
};

struct PerfReport {
  std::string bench;
  int threads = 1;
  std::string injector_strategy;  // "auto", "skip-ahead", or "per-op"
  std::string engine;             // "auto", "block", or "scalar"
  std::string rng;                // "", "split", or "fused" (ROBUSTIFY_RNG)
  double wall_seconds = 0.0;      // whole-process wall time
  std::vector<PerfSection> sections;
  // Merged telemetry counter snapshot at report time (nonzero counters
  // only; empty when telemetry is compiled out).  Exact uint64 values —
  // tools/perf_diff.py --exact-counters diffs them bit for bit.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

// Copies the nonzero counters of the current merged telemetry snapshot
// into report->counters (replacing any previous contents).
void AttachCounters(PerfReport* report);

// Writes the report as JSON, embedding the build-provenance block (git SHA,
// compiler, flags) alongside the measurements.  Throws std::runtime_error
// when the file cannot be written.
void WritePerfJson(const std::string& path, const PerfReport& report);

}  // namespace robustify::harness
