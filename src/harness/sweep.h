// Fault-rate sweeps: the x-axis of every figure in the paper's Chapter 6.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/trial.h"

namespace robustify::harness {

struct SweepConfig {
  std::vector<double> fault_rates;
  int trials = 10;
  std::uint64_t base_seed = 1;
  faulty::BitModel bit_model = faulty::BitModel::kBimodal;
  // Worker threads for the (trial fn, rate, repetition) grid: 0 = auto
  // (ROBUSTIFY_THREADS env var, else hardware concurrency).  Results are
  // byte-identical for every thread count: each cell derives its seed from
  // base_seed + repetition alone and the reduction runs serially in grid
  // order.
  int threads = 0;
  // Fault model (temporal behavior + op-class mask) for every cell; the
  // default reproduces the historical transient injector.
  faulty::FaultModel model;
  // Per-trial budget caps / divergence bailout; inactive by default.
  core::TrialGuard guard;
};

struct SeriesPoint {
  double fault_rate = 0.0;
  TrialSummary summary;
};

struct Series {
  std::string name;
  std::vector<SeriesPoint> points;
};

struct NamedTrial {
  std::string name;
  TrialFn fn;
};

// Runs every named trial at every fault rate (one Series per trial), fanning
// the whole grid across the harness thread pool.
std::vector<Series> RunFaultRateSweep(const SweepConfig& config,
                                      const std::vector<NamedTrial>& trials);

}  // namespace robustify::harness
