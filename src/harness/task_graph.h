// Dependency-graph task scheduler for in-trial parallelism.
//
// The tiled solvers (linalg/tiled.h) decompose a factorization into tile
// tasks (potrf/trsm/syrk/gemm) whose ordering constraints are exactly the
// reads/writes each task performs on tile resources.  The builder declares
// those accesses and the graph derives the edges itself: a read depends on
// the resource's last writer; a write depends on the last writer plus every
// reader since (anti/output dependencies), then becomes the new last writer.
// Declaration order is the serial elaboration order, so an inout chain on
// one resource executes in submission order regardless of worker count —
// which is what lets each task own a deterministically-seeded injector
// stream and keep results bit-identical at any thread count.
//
// Run(threads <= 1, body) executes ready tasks inline with no locking and —
// once the graph buffers are warmed — no allocation, which is what the
// zero-allocation solver contract (tests/test_allocation.cpp) pins.  With
// more workers it fans the ready set across a ParallelFor pool.
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

namespace robustify::harness {

// Task payload: a kernel discriminator plus up to three tile coordinates.
// Plain data so the graph stores it by value and bodies switch on it.
struct TaskTag {
  int kind = 0;
  int i = 0;
  int j = 0;
  int k = 0;
};

class TaskGraph {
 public:
  // Clears all tasks and resets the access history for `resources` resource
  // slots.  Buffers are retained across Reset so a warmed graph rebuilds
  // without allocating.
  void Reset(std::size_t resources);

  // Appends a task and returns its id (dense, starting at 0).  Ids double as
  // the deterministic per-task ordinal for seed derivation.
  int AddTask(const TaskTag& tag);

  // Declares that `task` reads / writes resource slot `resource`.  Writes
  // are read-modify-write: a writer may also read the resource's prior
  // value without a separate Reads call.
  void Reads(int task, std::size_t resource);
  void Writes(int task, std::size_t resource);

  int size() const { return static_cast<int>(tags_.size()); }
  const TaskTag& tag(int id) const { return tags_[static_cast<std::size_t>(id)]; }

  // Executes every task exactly once, respecting the derived dependencies,
  // across min(threads, size()) workers (threads <= 1 runs inline on the
  // calling thread).  Throws std::logic_error if the declared accesses form
  // a cycle; rethrows the first body exception after idling the workers.
  template <class Body>
  void Run(int threads, Body&& body) {
    RunImpl(threads, &InvokeBody<std::remove_reference_t<Body>>, &body);
  }

 private:
  using RawBody = void (*)(void* ctx, int id, const TaskTag& tag);

  template <class Body>
  static void InvokeBody(void* ctx, int id, const TaskTag& tag) {
    (*static_cast<Body*>(ctx))(id, tag);
  }

  void AddEdge(int pred, int succ);
  void RunImpl(int threads, RawBody fn, void* ctx);
  void RunSerial(RawBody fn, void* ctx);
  void RunParallel(int workers, RawBody fn, void* ctx);
  void SeedReady();

  std::vector<TaskTag> tags_;
  std::vector<std::vector<int>> succ_;  // succ_[pred] -> dependent task ids
  std::vector<int> indegree_;
  // Per-resource access history used while building.
  std::vector<int> last_writer_;  // -1 = not written yet
  std::vector<std::vector<int>> readers_;  // readers since the last write
  // Run scratch, reused across runs.
  std::vector<int> pending_;
  std::vector<int> ready_;
};

}  // namespace robustify::harness
