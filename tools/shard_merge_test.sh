#!/usr/bin/env bash
# Sharded-campaign acceptance test for the result store + query service.
#
# 1. Runs a reference (unsharded) adaptive campaign  -> golden CSV.
# 2. Runs the identical campaign as 3 shards; one shard is SIGKILLed
#    mid-flight and resumed from its (possibly torn) journal.
# 3. Merges the 3 shard journals into a result store and asserts the
#    merged CSV is byte-identical to the golden.
# 4. Query smoke against the merged store: a cache hit serves with zero
#    fresh trials, a cold cell answers with fresh trials and is written
#    back (the repeat is a cache hit with the identical interval), and an
#    off-grid rate is answered by the logistic surrogate.
#
# Like kill_resume_test.sh, the campaign is sized to run for a while and
# the kill retries with shorter delays rather than passing vacuously when
# the shard finishes first.
#
# Usage: shard_merge_test.sh <path-to-robustify_cli> [workdir]
set -u

CLI=${1:?usage: shard_merge_test.sh <robustify_cli> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"
STORE="$WORKDIR/store"

# Outcome-defining spec flags (these feed the fingerprint — every command
# below must agree on them) vs. allocation flags (canonicalized away, but
# run/merge must agree so the reduction replays the same stopping rule).
SPEC=(fig6_1 --rates=0.05,0.1,0.2 --series=SGD+AS,SQS --series=Base)
ALLOC=(--ci=0.02 --budget=400 --batch=1)

echo "== golden run (unsharded) =="
"$CLI" run "${SPEC[@]}" "${ALLOC[@]}" --threads=1 \
    --journal="$WORKDIR/golden.journal" --csv="$WORKDIR/golden.csv" \
    --json="$WORKDIR/golden.json" > "$WORKDIR/golden.log" 2>&1 \
    || { echo "golden run failed"; cat "$WORKDIR/golden.log"; exit 1; }

run_shard() {
  local i=$1
  "$CLI" run "${SPEC[@]}" "${ALLOC[@]}" --threads=1 --shard="$i/3" \
      --journal="$WORKDIR/shard$i.journal" --csv="$WORKDIR/shard$i.csv" \
      --json="$WORKDIR/shard$i.json" > "$WORKDIR/shard$i.log" 2>&1
}

echo "== shards 0 and 2 (uninterrupted) =="
run_shard 0 || { echo "shard 0 failed"; cat "$WORKDIR/shard0.log"; exit 1; }
run_shard 2 || { echo "shard 2 failed"; cat "$WORKDIR/shard2.log"; exit 1; }

echo "== shard 1: SIGKILL mid-flight, then resume =="
killed=0
for delay in 0.8 0.4 0.2 0.1 0.05; do
  rm -f "$WORKDIR/shard1.journal"
  run_shard 1 &
  pid=$!
  sleep "$delay"
  if ! kill -KILL "$pid" 2>/dev/null; then
    wait "$pid" 2>/dev/null
    echo "   shard finished before the kill; retrying with a shorter delay"
    continue
  fi
  wait "$pid" 2>/dev/null
  if [ ! -s "$WORKDIR/shard1.journal" ]; then
    echo "   killed before the journal header was written; retrying"
    continue
  fi
  echo "   journal has $(wc -l < "$WORKDIR/shard1.journal") lines at kill time"
  killed=1
  break
done
if [ "$killed" = 1 ]; then
  "$CLI" resume "${SPEC[@]}" "${ALLOC[@]}" --threads=1 --shard=1/3 \
      --journal="$WORKDIR/shard1.journal" --csv="$WORKDIR/shard1.csv" \
      --json="$WORKDIR/shard1.json" > "$WORKDIR/shard1.log" 2>&1 \
      || { echo "shard 1 resume failed"; cat "$WORKDIR/shard1.log"; exit 1; }
else
  # Too fast to interrupt on this host: fall back to a clean shard run so
  # the merge identity is still checked (and say so loudly).
  echo "   WARNING: could not interrupt shard 1; running it to completion"
  run_shard 1 || { echo "shard 1 failed"; cat "$WORKDIR/shard1.log"; exit 1; }
fi

echo "== merge 3 shard journals -> store -> CSV =="
"$CLI" merge "${SPEC[@]}" "${ALLOC[@]}" --store="$STORE" \
    --csv="$WORKDIR/merged.csv" \
    "$WORKDIR/shard0.journal" "$WORKDIR/shard1.journal" \
    "$WORKDIR/shard2.journal" > "$WORKDIR/merge.log" 2>&1 \
    || { echo "merge failed"; cat "$WORKDIR/merge.log"; exit 1; }
if ! cmp -s "$WORKDIR/golden.csv" "$WORKDIR/merged.csv"; then
  echo "FAIL: merged CSV differs from the unsharded golden"
  diff "$WORKDIR/golden.csv" "$WORKDIR/merged.csv" | head -20
  exit 1
fi
echo "PASS: merged CSV is byte-identical to the unsharded run"

json_field() {  # json_field <file> <key>  — numeric field from a flat object
  sed -E "s/.*\"$2\":([-+0-9.eE]+).*/\1/" "$1"
}
expect_source() {
  local file=$1 want=$2 label=$3
  if ! grep -q "\"source\":\"$want\"" "$file"; then
    echo "FAIL: $label expected source=$want, got: $(cat "$file")"
    exit 1
  fi
  echo "PASS: $label answered from $want"
}

echo "== query smoke: cache hit at a looser ci =="
"$CLI" query fig6_1 'Base' 0.1 "${SPEC[@]:1}" --store="$STORE" --ci=0.2 --no-fresh \
    > "$WORKDIR/q_hit.json" 2> "$WORKDIR/q_hit.log" \
    || { echo "cache-hit query failed"; cat "$WORKDIR/q_hit.log"; exit 1; }
expect_source "$WORKDIR/q_hit.json" cache "cache-hit query"
grep -q '"fresh_trials":0' "$WORKDIR/q_hit.json" \
    || { echo "FAIL: cache hit ran trials: $(cat "$WORKDIR/q_hit.json")"; exit 1; }

echo "== query smoke: cold cell -> fresh trials, repeat -> cache =="
# A series subset the sharded campaign never ran: its own fingerprint, so
# the first query misses and fills the store; the repeat must serve the
# write-back with the identical interval and zero trials.
COLD=(fig6_1 --rates=0.05,0.1,0.2 --series=SGD)
"$CLI" query fig6_1 'SGD' 0.1 "${COLD[@]:1}" --store="$STORE" --ci=0.25 \
    > "$WORKDIR/q_miss.json" 2> "$WORKDIR/q_miss.log" \
    || { echo "cache-miss query failed"; cat "$WORKDIR/q_miss.log"; exit 1; }
expect_source "$WORKDIR/q_miss.json" fresh-trials "cache-miss query"
if grep -q '"fresh_trials":0' "$WORKDIR/q_miss.json"; then
  echo "FAIL: miss ran zero fresh trials: $(cat "$WORKDIR/q_miss.json")"
  exit 1
fi
"$CLI" query fig6_1 'SGD' 0.1 "${COLD[@]:1}" --store="$STORE" --ci=0.25 \
    > "$WORKDIR/q_repeat.json" 2> "$WORKDIR/q_repeat.log" \
    || { echo "repeat query failed"; cat "$WORKDIR/q_repeat.log"; exit 1; }
expect_source "$WORKDIR/q_repeat.json" cache "repeat query"
for key in success_rate half_width trials; do
  a=$(json_field "$WORKDIR/q_miss.json" "$key")
  b=$(json_field "$WORKDIR/q_repeat.json" "$key")
  if [ "$a" != "$b" ]; then
    echo "FAIL: repeat query changed $key: $a -> $b"
    exit 1
  fi
done
echo "PASS: repeat query returned the identical interval"

echo "== query smoke: off-grid rate -> surrogate =="
"$CLI" query fig6_1 'Base' 0.15 "${SPEC[@]:1}" --store="$STORE" --ci=0.5 --no-fresh \
    > "$WORKDIR/q_surr.json" 2> "$WORKDIR/q_surr.log" \
    || { echo "surrogate query failed"; cat "$WORKDIR/q_surr.log"; exit 1; }
expect_source "$WORKDIR/q_surr.json" surrogate "off-grid query"

echo "== list --fingerprints smoke =="
"$CLI" list --fingerprints > "$WORKDIR/list.txt" \
    || { echo "list --fingerprints failed"; exit 1; }
grep -Eq '^[0-9a-f]{16}  fig6_1$' "$WORKDIR/list.txt" \
    || { echo "FAIL: no fingerprint line for fig6_1"; cat "$WORKDIR/list.txt"; exit 1; }
echo "PASS: registry fingerprints listed"

echo "ALL PASS"
exit 0
