#!/usr/bin/env bash
# Flight-recorder smoke test (wired into ctest as `trace_validate`):
# run a small traced campaign through robustify_cli, then check that
#   1. the Chrome trace JSON passes tools/trace_validate.py,
#   2. the --metrics JSON carries provenance and injector/campaign counters.
#
# Usage: trace_ci_test.sh <path-to-robustify_cli>
# Env:   ROBUSTIFY_PYTHON  python interpreter (default: python3)
#        ROBUSTIFY_SRC_DIR repo root holding tools/ (default: script's ../)
set -euo pipefail

CLI="${1:?usage: trace_ci_test.sh <path-to-robustify_cli>}"
PYTHON="${ROBUSTIFY_PYTHON:-python3}"
SRC_DIR="${ROBUSTIFY_SRC_DIR:-$(cd "$(dirname "$0")/.." && pwd)}"

WORK_DIR="$(mktemp -d trace_ci.XXXXXX)"
trap 'rm -rf "$WORK_DIR"' EXIT

TRACE="$WORK_DIR/trace.json"
METRICS="$WORK_DIR/metrics.json"

"$CLI" run fig6_6 --rates=0,1e-3 --budget=6 --ci=0.2 \
  --journal="$WORK_DIR/trace_ci.journal" \
  --csv="$WORK_DIR/trace_ci.csv" \
  --json="$WORK_DIR/BENCH_trace_ci.json" \
  --trace="$TRACE" --metrics="$METRICS"

test -s "$TRACE" || { echo "FAIL: no trace written at $TRACE" >&2; exit 1; }
test -s "$METRICS" || { echo "FAIL: no metrics written at $METRICS" >&2; exit 1; }

"$PYTHON" "$SRC_DIR/tools/trace_validate.py" "$TRACE"

"$PYTHON" - "$METRICS" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

provenance = doc.get("provenance")
assert isinstance(provenance, dict), "metrics JSON missing provenance block"
for key in ("git_sha", "compiler", "cxx_flags", "build_type"):
    assert provenance.get(key), "provenance missing %s" % key

counters = doc.get("counters")
assert isinstance(counters, dict), "metrics JSON missing counters map"
for name in ("injector.scopes", "injector.flops", "campaign.cells",
             "campaign.trials", "cgls.solves"):
    assert counters.get(name, 0) > 0, "counter %s missing or zero" % name

print("metrics OK: %d counters, git %s" % (len(counters),
                                           provenance["git_sha"][:12]))
EOF

echo "trace_ci_test: OK"
