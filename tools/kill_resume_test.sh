#!/usr/bin/env bash
# Kill-and-resume acceptance test for the campaign checkpoint journal.
#
# 1. Runs a reference adaptive campaign to completion  -> reference CSV.
# 2. Starts the identical campaign fresh, SIGKILLs it mid-flight.
# 3. Resumes from the (possibly torn) journal.
# 4. Asserts the resumed CSV is byte-identical to the reference.
#
# The campaign is sized to run for several seconds (tight CI, generous
# budget, single thread, batch=1 so the journal grows continuously) and the
# kill lands early; if the process happens to finish before the kill, the
# script retries with an earlier kill rather than passing vacuously.
#
# Usage: kill_resume_test.sh <path-to-robustify_cli> [workdir]
set -u

CLI=${1:?usage: kill_resume_test.sh <robustify_cli> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"

# A deliberately slow allocation: high-rate sort cells cost the most per
# trial, and ci=0.02 forces transition cells to run deep into the budget.
ARGS=(run fig6_1 --rates=0.05,0.1,0.2 --series=SGD+AS,SQS --series=Base
      --ci=0.02 --budget=400 --batch=1 --threads=1)

REF_CSV="$WORKDIR/reference.csv"
REF_JOURNAL="$WORKDIR/reference.journal"
echo "== reference run (uninterrupted) =="
"$CLI" "${ARGS[@]}" --journal="$REF_JOURNAL" --csv="$REF_CSV" \
    --json="$WORKDIR/reference.json" > "$WORKDIR/reference.log" 2>&1 \
    || { echo "reference run failed"; cat "$WORKDIR/reference.log"; exit 1; }

KILL_CSV="$WORKDIR/killed.csv"
KILL_JOURNAL="$WORKDIR/killed.journal"

for delay in 2.0 1.0 0.5 0.25; do
  rm -f "$KILL_JOURNAL" "$KILL_CSV"
  echo "== interrupted run (SIGKILL after ${delay}s) =="
  "$CLI" "${ARGS[@]}" --journal="$KILL_JOURNAL" --csv="$KILL_CSV" \
      --json="$WORKDIR/killed.json" > "$WORKDIR/killed.log" 2>&1 &
  pid=$!
  sleep "$delay"
  if ! kill -KILL "$pid" 2>/dev/null; then
    wait "$pid" 2>/dev/null
    echo "   campaign finished before the kill; retrying with a shorter delay"
    continue
  fi
  wait "$pid" 2>/dev/null
  if [ ! -s "$KILL_JOURNAL" ]; then
    echo "   killed before the journal header was written; retrying"
    continue
  fi
  lines=$(wc -l < "$KILL_JOURNAL")
  echo "   journal has $lines lines at kill time"
  echo "== resume =="
  # Same flag list as the run ("${ARGS[@]:1}" drops the 'run' verb) so the
  # two command lines cannot drift apart.
  "$CLI" resume "${ARGS[@]:1}" \
      --journal="$KILL_JOURNAL" --csv="$KILL_CSV" \
      --json="$WORKDIR/resumed.json" > "$WORKDIR/resume.log" 2>&1 \
      || { echo "resume failed"; cat "$WORKDIR/resume.log"; exit 1; }
  grep -E "replayed from journal" "$WORKDIR/resume.log" || true
  if cmp -s "$REF_CSV" "$KILL_CSV"; then
    echo "PASS: resumed CSV is byte-identical to the uninterrupted run"
    exit 0
  fi
  echo "FAIL: resumed CSV differs from the uninterrupted run"
  diff "$REF_CSV" "$KILL_CSV" | head -20
  exit 1
done

echo "FAIL: could not interrupt the campaign mid-flight (too fast on this host?)"
exit 1
