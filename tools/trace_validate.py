#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file (as written by --trace).

Checks, per the trace-event format that chrome://tracing and Perfetto load:

  * the file parses as JSON: either a bare event array or an object with a
    "traceEvents" array;
  * every event has a string "name", a one-char "ph", a numeric "ts"
    (metadata "M" events may omit it), and integer "pid"/"tid";
  * "ph" is one of B, E, i, X, M ("X" additionally needs a numeric "dur");
  * timestamps are monotonically non-decreasing per (pid, tid) track;
  * B/E pairs are balanced per track (every E closes the most recent B,
    nothing left open at the end);
  * span names come from the known category catalog (the same names the
    attribution ledger folds); an unknown name is a warning, not an error,
    so a new producer degrades the report instead of breaking CI;
  * a nonzero trace.dropped metadata entry (ring overwrote events) is
    surfaced as a WARNING on stderr — the trace is valid but incomplete.

Exit status 0 when the trace is well-formed, 1 otherwise (with the first
few problems on stderr).

Usage: trace_validate.py TRACE.json
"""

import json
import sys

VALID_PHASES = {"B", "E", "i", "X", "M"}
# Every span/instant/metadata name the runtime emits (trace.cpp producers +
# the attribution categories in telemetry/attribution.cpp).
KNOWN_NAMES = {
    "campaign", "cell", "trial", "solve.sgd", "solve.cgls", "solve.cgne",
    "phase", "checkpoint.flush", "sweep", "query", "stats", "reduce",
    "pool.wait", "calibrate", "fault", "trace.dropped", "process_name",
}
MAX_REPORTED = 10


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if isinstance(doc, list):
        return doc
    if isinstance(doc, dict) and isinstance(doc.get("traceEvents"), list):
        return doc["traceEvents"]
    raise ValueError("expected a JSON array or an object with 'traceEvents'")


def validate(events):
    problems = []
    warnings = []
    last_ts = {}    # (pid, tid) -> last timestamp seen
    open_spans = {} # (pid, tid) -> stack of open B names
    unknown_names = set()
    dropped = {}    # tid -> events the ring overwrote

    def report(index, message):
        if len(problems) < MAX_REPORTED:
            problems.append("event %d: %s" % (index, message))
        return True

    bad = False
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            bad = report(i, "not an object")
            continue
        phase = ev.get("ph")
        if not isinstance(phase, str) or phase not in VALID_PHASES:
            bad = report(i, "invalid ph %r" % (phase,))
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            bad = report(i, "missing or empty name")
        elif ev["name"] not in KNOWN_NAMES:
            unknown_names.add(ev["name"])
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            bad = report(i, "pid/tid must be integers")
            continue
        track = (ev["pid"], ev["tid"])

        ts = ev.get("ts")
        if phase == "M":
            if ev.get("name") == "trace.dropped":
                count = (ev.get("args") or {}).get("events", 0)
                if isinstance(count, int) and count > 0:
                    dropped[ev["tid"]] = dropped.get(ev["tid"], 0) + count
            continue  # metadata events carry no timeline position
        if not isinstance(ts, (int, float)):
            bad = report(i, "missing or non-numeric ts")
            continue
        if phase == "X" and not isinstance(ev.get("dur"), (int, float)):
            bad = report(i, "X event without numeric dur")
        if track in last_ts and ts < last_ts[track]:
            bad = report(i, "ts %r goes backwards on track %r (last %r)"
                         % (ts, track, last_ts[track]))
        last_ts[track] = ts

        if phase == "B":
            open_spans.setdefault(track, []).append(ev["name"])
        elif phase == "E":
            stack = open_spans.get(track)
            if not stack:
                bad = report(i, "E %r on track %r with no open span"
                             % (ev["name"], track))
            else:
                stack.pop()

    for track, stack in sorted(open_spans.items()):
        if stack:
            bad = True
            if len(problems) < MAX_REPORTED:
                problems.append("track %r: %d span(s) left open: %s"
                                % (track, len(stack), ", ".join(stack)))
    if unknown_names:
        warnings.append("unknown span name(s) outside the category catalog: %s"
                        % ", ".join(sorted(unknown_names)))
    for tid, count in sorted(dropped.items()):
        warnings.append("trace.dropped: tid %d lost %d event(s) to ring "
                        "overwrite — trace is valid but incomplete" % (tid, count))
    return bad, problems, warnings


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        events = load_events(argv[1])
    except (OSError, ValueError) as e:
        print("trace_validate: %s: %s" % (argv[1], e), file=sys.stderr)
        return 1
    bad, problems, warnings = validate(events)
    for w in warnings:
        print("trace_validate: WARNING: %s" % w, file=sys.stderr)
    if bad:
        for p in problems:
            print("trace_validate: %s" % p, file=sys.stderr)
        print("trace_validate: %s: INVALID (%d event(s))"
              % (argv[1], len(events)), file=sys.stderr)
        return 1
    print("trace_validate: %s: OK (%d event(s))" % (argv[1], len(events)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
