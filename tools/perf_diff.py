#!/usr/bin/env python3
"""Compare fresh BENCH_*.json perf reports against committed baselines.

The perf/ directory holds measured reference points of the optimization
trajectory (see perf/README.md); every bench and the campaign CLI write a
BENCH_<name>.json next to their CSVs.  This tool matches fresh reports to
baselines and prints per-section wall-time and injector-throughput deltas.

Matching: a fresh report is compared against every baseline file whose
"bench" field is the same; section rows pair by section name.  Baselines
measured with different flags (axes, trial counts, strategies) are still
listed — the flags live in the baseline's filename by convention — so the
output is a comparison table to read, not a gate.  By default the exit code
is always 0 (warn-only, for CI); --strict exits 1 when any same-filename
baseline regresses by more than --threshold.

Reports may also carry a "counters" map (the telemetry snapshot: faults,
flops, trials, ...).  Counter values are exact uint64 work accounting, so
same-filename pairs print any mismatched counter, and --exact-counters turns
a mismatch into exit 1.  Counters depend on libm (the gap sampler's log), so
exact comparison is only sound between runs on the same machine and build —
CI compares two fresh same-host runs, not a committed baseline.  Between
*different* builds, --counter-tolerance PATTERN:FRAC (repeatable, fnmatch
patterns) lets named libm-dependent counters drift by a relative fraction
while every unmatched (structural) counter — faults, trials, cells — stays
exact.

Sections may carry a "roofline_efficiency" field (bench_roofline): the
kernel's measured throughput as a fraction of its machine-profile ceiling.
Unlike wall seconds or Mops/s, efficiency is host-comparable, so
--efficiency-threshold DROP gates clean-path kernel regressions in
percent-of-peak: a same-filename section whose efficiency falls more than
DROP (absolute, e.g. 0.15) below the baseline is flagged (exit 1 with
--strict, warn-only otherwise).

Usage:
  perf_diff.py --baseline perf/ --fresh build/ [--threshold 0.25] [--strict]
              [--exact-counters] [--counter-tolerance 'gap.draws.*:0.02']
              [--efficiency-threshold 0.15]
"""

import argparse
import fnmatch
import glob
import json
import os
import sys


def load_reports(directory):
    reports = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path) as f:
                reports[os.path.basename(path)] = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"perf_diff: skipping unreadable {path}: {e}", file=sys.stderr)
    return reports


def fmt_delta(fresh, base):
    if base <= 0.0:
        return "      n/a"
    ratio = fresh / base
    return f"{(ratio - 1.0) * 100.0:+8.1f}%"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed perf/ directory")
    parser.add_argument("--fresh", required=True, help="directory with fresh BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative wall-time regression considered notable")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when a same-filename baseline regresses past "
                             "the threshold (default: warn-only)")
    parser.add_argument("--exact-counters", action="store_true",
                        help="exit 1 when a same-filename pair's telemetry "
                             "counters differ (same-machine runs only)")
    parser.add_argument("--counter-tolerance", action="append", default=[],
                        metavar="PATTERN:FRAC",
                        help="allow counters matching the fnmatch PATTERN to "
                             "drift by a relative FRAC under --exact-counters "
                             "(libm-dependent counters; structural counters "
                             "stay exact); repeatable")
    parser.add_argument("--efficiency-threshold", type=float, default=None,
                        metavar="DROP",
                        help="flag a same-filename section whose "
                             "roofline_efficiency falls more than DROP "
                             "(absolute) below the baseline")
    args = parser.parse_args()

    tolerances = []
    for spec in args.counter_tolerance:
        pattern, sep, frac = spec.rpartition(":")
        try:
            frac = float(frac)
        except ValueError:
            sep = ""
        if not sep or not pattern or frac < 0.0:
            parser.error(f"--counter-tolerance needs PATTERN:FRAC, got {spec!r}")
        tolerances.append((pattern, frac))

    def tolerance_for(counter):
        return max((frac for pattern, frac in tolerances
                    if fnmatch.fnmatch(counter, pattern)), default=None)

    baselines = load_reports(args.baseline)
    fresh = load_reports(args.fresh)
    if not fresh:
        print(f"perf_diff: no fresh BENCH_*.json under {args.fresh}")
        return 0

    regressions = []
    efficiency_regressions = []
    counter_mismatches = []
    tolerated_drifts = []
    for fresh_name, fresh_report in fresh.items():
        bench = fresh_report.get("bench", "?")
        matches = {name: rep for name, rep in baselines.items()
                   if rep.get("bench") == bench}
        if not matches:
            print(f"{fresh_name} [{bench}]: no committed baseline")
            continue
        for base_name, base_report in sorted(matches.items()):
            same_file = base_name == fresh_name
            comparable = "=" if same_file else "~"  # ~: flags may differ, read with care
            base_sections = {s.get("name"): s for s in base_report.get("sections", [])}
            for section in fresh_report.get("sections", []):
                base = base_sections.get(section.get("name"))
                if base is None:
                    continue
                wall, base_wall = section.get("wall_seconds", 0.0), base.get("wall_seconds", 0.0)
                mops, base_mops = (section.get("injector_mops_per_sec", 0.0),
                                   base.get("injector_mops_per_sec", 0.0))
                print(f"{comparable} {fresh_name} [{section.get('name')}] vs {base_name}: "
                      f"wall {wall:.3f}s vs {base_wall:.3f}s ({fmt_delta(wall, base_wall)}), "
                      f"{mops:.0f} vs {base_mops:.0f} Mops/s ({fmt_delta(mops, base_mops)})")
                if same_file and base_wall > 0.0 and wall > base_wall * (1.0 + args.threshold):
                    regressions.append(
                        f"{fresh_name} [{section.get('name')}]: "
                        f"{wall:.3f}s vs {base_wall:.3f}s baseline")
                eff = section.get("roofline_efficiency")
                base_eff = base.get("roofline_efficiency")
                if eff is not None and base_eff is not None:
                    print(f"{comparable} {fresh_name} [{section.get('name')}] vs {base_name}: "
                          f"roofline efficiency {eff:.3f} vs {base_eff:.3f} "
                          f"({(eff - base_eff) * 100.0:+.1f} points of peak)")
                    if (same_file and args.efficiency_threshold is not None
                            and eff < base_eff - args.efficiency_threshold):
                        efficiency_regressions.append(
                            f"{fresh_name} [{section.get('name')}]: "
                            f"{eff:.3f} vs {base_eff:.3f} baseline "
                            f"(dropped {base_eff - eff:.3f} of peak)")
            if same_file:
                fresh_counters = fresh_report.get("counters") or {}
                base_counters = base_report.get("counters") or {}
                if fresh_counters or base_counters:
                    for key in sorted(set(fresh_counters) | set(base_counters)):
                        a, b = fresh_counters.get(key), base_counters.get(key)
                        if a == b:
                            continue
                        frac = tolerance_for(key)
                        if (frac is not None and a is not None and b is not None
                                and abs(a - b) <= frac * max(abs(a), abs(b))):
                            tolerated_drifts.append(
                                f"{fresh_name} [{key}]: {a} vs {b} baseline "
                                f"(within {frac:.3g} tolerance)")
                            continue
                        counter_mismatches.append(
                            f"{fresh_name} [{key}]: {a} vs {b} baseline")

    if tolerated_drifts:
        print("\nperf_diff: counter drifts within --counter-tolerance:")
        for m in tolerated_drifts:
            print(f"  {m}")

    if counter_mismatches:
        print("\nperf_diff: counter mismatches (exact work accounting differs):")
        for m in counter_mismatches:
            print(f"  {m}")
        if args.exact_counters:
            return 1
        print("perf_diff: counters differ across machines/libm builds; pass "
              "--exact-counters only for same-host pairs.")

    if efficiency_regressions:
        print("\nperf_diff: roofline efficiency regressions "
              f"(> {args.efficiency_threshold:.2f} of peak vs same-filename "
              "baseline):")
        for r in efficiency_regressions:
            print(f"  {r}")
        if args.strict:
            return 1
        print("perf_diff: warn-only mode (pass --strict to fail); efficiency "
              "is host-comparable, so repeated drops are real regressions.")

    if regressions:
        print("\nperf_diff: notable wall-time regressions "
              f"(> {args.threshold * 100:.0f}% vs same-filename baseline):")
        for r in regressions:
            print(f"  {r}")
        if args.strict:
            return 1
        print("perf_diff: warn-only mode (pass --strict to fail); hardware and "
              "load differ across hosts, so read deltas as trends, not gates.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
