// E1 / Figure 5.1: measured vs emulated distribution of fault bit positions.
//
// The paper compares the bit-error histogram measured from circuit-level
// simulation with the distribution its FPGA injector emulates.  Here the
// "measured" reference is a synthetic silicon-like histogram (an explicit
// 64-weight table with the same bimodal character) and the "emulated" series
// is what the injector actually produces, sampled over one million faults.
#include <array>
#include <cstdio>

#include "bench/bench_common.h"
#include "faulty/bit_distribution.h"
#include "faulty/fault_injector.h"

namespace {

using robustify::faulty::BitDistribution;
using robustify::faulty::BitModel;
using robustify::faulty::kWordBits;
using robustify::faulty::Lfsr;

// Synthetic "measured" histogram: the qualitative shape of Figure 5.1 with
// silicon-ish raggedness (hand-tuned irregular weights).
std::array<double, kWordBits> MeasuredHistogram() {
  std::array<double, kWordBits> w{};
  const double high[12] = {0.08, 0.11, 0.09, 0.06, 0.05, 0.035,
                           0.025, 0.02, 0.012, 0.01, 0.006, 0.004};
  for (int i = 0; i < 12; ++i) w[static_cast<std::size_t>(51 - i)] = high[i];
  const double low[10] = {0.10, 0.08, 0.05, 0.04, 0.025, 0.02, 0.012, 0.008,
                          0.005, 0.003};
  for (int i = 0; i < 10; ++i) w[static_cast<std::size_t>(i)] = low[i];
  w[63] = 0.035;                      // sign
  for (int b = 52; b <= 58; ++b) {    // low exponent bits, rare
    w[static_cast<std::size_t>(b)] = 0.008 / (b - 51);
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  robustify::bench::BenchContext ctx("fig5_1_fault_distribution", argc, argv);
  robustify::bench::Banner(
      "Figure 5.1 - fault bit-position distribution",
      "Chapter 5, Figure 5.1 (measured vs emulated bit-error distribution)",
      "emulated samples track the emulation model; both are bimodal like the "
      "measured silicon histogram (mass at high-order data bits and at "
      "low-order bits, valley in between)");

  const BitDistribution measured(MeasuredHistogram());
  const BitDistribution emulated(BitModel::kBimodal);

  // Sample one million injected faults from the emulated model.
  constexpr int kFaults = 1000000;
  Lfsr rng(2024);
  std::array<double, kWordBits> sampled{};
  robustify::harness::WallTimer sample_timer;
  for (int i = 0; i < kFaults; ++i) {
    sampled[static_cast<std::size_t>(emulated.sample(rng))] += 1.0 / kFaults;
  }
  // Records alias-sampler throughput (draws through the bit sampler, not FP
  // ops — this bench exercises the injector's corruption path in isolation).
  ctx.RecordSection("bit-sampling-1M", sample_timer.Seconds(), kFaults);

  std::printf("%-5s %-12s %-12s %-12s\n", "bit", "measured", "emulated", "sampled");
  std::printf("------------------------------------------------\n");
  for (int b = kWordBits - 1; b >= 0; --b) {
    const auto s = static_cast<std::size_t>(b);
    std::printf("%-5d %-12.5f %-12.5f %-12.5f\n", b, measured.probability(b),
                emulated.probability(b), sampled[s]);
  }

  // Aggregate check mirrored in the table: mass per region.
  const auto region_mass = [](const std::array<double, kWordBits>& w, int lo, int hi) {
    double m = 0.0;
    for (int b = lo; b <= hi; ++b) m += w[static_cast<std::size_t>(b)];
    return m;
  };
  std::array<double, kWordBits> mw{};
  std::array<double, kWordBits> ew{};
  for (int b = 0; b < kWordBits; ++b) {
    mw[static_cast<std::size_t>(b)] = measured.probability(b);
    ew[static_cast<std::size_t>(b)] = emulated.probability(b);
  }
  std::printf("\n%-24s %-10s %-10s %-10s\n", "region", "measured", "emulated", "sampled");
  std::printf("%-24s %-10.4f %-10.4f %-10.4f\n", "low bits [0,11]",
              region_mass(mw, 0, 11), region_mass(ew, 0, 11), region_mass(sampled, 0, 11));
  std::printf("%-24s %-10.4f %-10.4f %-10.4f\n", "middle [12,39]",
              region_mass(mw, 12, 39), region_mass(ew, 12, 39), region_mass(sampled, 12, 39));
  std::printf("%-24s %-10.4f %-10.4f %-10.4f\n", "high bits [40,63]",
              region_mass(mw, 40, 63), region_mass(ew, 40, 63), region_mass(sampled, 40, 63));
  return ctx.Finish();
}
