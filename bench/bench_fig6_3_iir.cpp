// E5 / Figure 6.3: error-to-signal ratio of IIR filtering vs fault rate.
//
// Series (paper legend): Base (feed-forward recursion), SGD,LS, SGD+AS,LS,
// SGD+AS,SQS — 1000 iterations, 10-tap filter (5 feed-forward + 5 feedback),
// 500 input samples; quality = ||y - y*|| / ||y*||.
//
// Axis, seed, and series definitions live in the campaign registry
// (src/campaign/spec.cpp + scenarios.cpp); this main is presentation only.
// The axis stops at 2% faulty FLOPs: beyond that this fault model (binary64
// with occasional exponent corruption) destabilizes the variational form as
// well, and the interesting crossover lives below it.
#include "bench/bench_common.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"

int main(int argc, char** argv) {
  using namespace robustify;
  bench::BenchContext ctx("fig6_3_iir", argc, argv);
  bench::Banner(
      "Figure 6.3 - Accuracy of IIR (1000 iterations)",
      "Section 6.1, Figure 6.3 (lower is better)",
      "the feed-forward recursion accrues noise with t and collapses; the "
      "variational (least-squares) form holds the error-to-signal ratio "
      "orders of magnitude lower once faults are frequent");

  const campaign::CampaignSpec& spec = campaign::RegistrySpec("fig6_3");
  const campaign::Scenario scenario = campaign::BuildScenario(spec);
  const auto series =
      ctx.RunSweep("iir", campaign::ToSweepConfig(spec), scenario.series);
  bench::EmitSweep(scenario.title, series, scenario.value, scenario.value_label,
                   scenario.csv_name);
  return ctx.Finish();
}
