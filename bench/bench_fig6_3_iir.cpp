// E5 / Figure 6.3: error-to-signal ratio of IIR filtering vs fault rate.
//
// Series (paper legend): Base (feed-forward recursion), SGD,LS, SGD+AS,LS,
// SGD+AS,SQS — 1000 iterations, 10-tap filter (5 feed-forward + 5 feedback),
// 500 input samples; quality = ||y - y*|| / ||y*||.
#include "apps/configs.h"
#include "apps/iir_app.h"
#include "bench/bench_common.h"
#include "core/phases.h"
#include "signal/metrics.h"
#include "signal/signals.h"

namespace {

using namespace robustify;

harness::TrialFn RobustVariant(const signal::IirCoefficients& coeffs,
                               const linalg::Vector<double>& input,
                               const linalg::Vector<double>& clean,
                               const opt::SgdOptions& options) {
  return [&coeffs, &input, &clean, options](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const linalg::Vector<double> y = core::WithFaultyFpu(
        env, [&] { return apps::RobustIir<faulty::Real>(coeffs, input, options); },
        &out.fpu_stats);
    out.metric = signal::ErrorToSignalRatio(y, clean);
    out.success = out.metric < 1e-2;
    return out;
  };
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("fig6_3_iir", argc, argv);
  bench::Banner(
      "Figure 6.3 - Accuracy of IIR (1000 iterations)",
      "Section 6.1, Figure 6.3 (lower is better)",
      "the feed-forward recursion accrues noise with t and collapses; the "
      "variational (least-squares) form holds the error-to-signal ratio "
      "orders of magnitude lower once faults are frequent");

  const signal::IirCoefficients coeffs = signal::MakeStableIir(5, 5, 63);
  const linalg::Vector<double> input =
      signal::SineMix(500, {3.0, 17.0, 41.0}, {1.0, 0.5, 0.25});
  const linalg::Vector<double> clean = apps::BaselineIir<double>(coeffs, input);

  // Beyond ~2% of FLOPs faulty, this fault model (binary64 with occasional
  // exponent corruption) destabilizes the variational form as well — see
  // EXPERIMENTS.md; the interesting crossover lives below that.
  harness::SweepConfig sweep;
  sweep.fault_rates = {0.0, 0.001, 0.005, 0.01, 0.02};
  sweep.trials = 8;
  sweep.base_seed = 63;

  const harness::TrialFn base = [&](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const linalg::Vector<double> y = core::WithFaultyFpu(
        env, [&] { return apps::BaselineIir<faulty::Real>(coeffs, input); },
        &out.fpu_stats);
    out.metric = signal::ErrorToSignalRatio(y, clean);
    out.success = out.metric < 1e-2;
    return out;
  };

  const auto series = ctx.RunSweep(
      "iir", sweep,
      {
                 {"Base", base},
                 {"SGD,LS", RobustVariant(coeffs, input, clean, apps::IirSgdLs())},
                 {"SGD+AS,LS", RobustVariant(coeffs, input, clean, apps::IirSgdAsLs())},
                 {"SGD+AS,SQS", RobustVariant(coeffs, input, clean, apps::IirSgdAsSqs())},
             });
  bench::EmitSweep("Accuracy of IIR - 1000 Iterations (median error/signal)", series,
                   harness::TableValue::kMedianMetric, "median ||y-y*||/||y*||",
                   "fig6_3_iir.csv");
  return ctx.Finish();
}
