// Roofline placement of every faulty-BLAS kernel family.
//
// Loads the machine profile (robustify_cli calibrate, cached as
// machine_profile.json) — or quick-calibrates one on the spot when the file
// is missing — then measures each kernel family's clean-path throughput on
// DRAM-resident working sets and places it under its analytic ceiling
// (perfmodel/roofline.h):
//
//   ceiling = min(vector peak, AI * triad bandwidth)
//   efficiency = measured / ceiling
//
// The per-family efficiency lands in BENCH_roofline.json as
// roofline_efficiency, which tools/perf_diff.py can gate host-comparably
// (--efficiency-threshold): raw Mops/s shifts with the host, the fraction
// of the host's own roofline does not.
//
// Extra flags (consumed before the shared BenchContext parser):
//   --profile=PATH   machine profile location (default machine_profile.json;
//                    quick-calibrated and written there when missing)
//   --quick          shrink probe durations for smoke runs (CI)
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "harness/timer.h"
#include "linalg/faulty_blas.h"
#include "perfmodel/calibrate.h"
#include "perfmodel/roofline.h"

namespace {

using robustify::perfmodel::KernelTraits;
using robustify::perfmodel::MachineProfile;
using robustify::perfmodel::RooflinePlacement;

struct ProbeOptions {
  double seconds_per_probe = 0.12;
  int rounds = 2;
};

// Best-of-rounds throughput for one kernel pass (same discipline as the
// calibration probes: the fastest round is the least-disturbed one).
template <typename PassFn>
double MeasureGops(const PassFn& pass, double ops_per_pass,
                   const ProbeOptions& options) {
  double best = 0.0;
  for (int round = 0; round < options.rounds; ++round) {
    std::size_t passes = 0;
    robustify::harness::WallTimer timer;
    double elapsed = 0.0;
    do {
      pass();
      ++passes;
      elapsed = timer.Seconds();
    } while (elapsed < options.seconds_per_probe);
    if (elapsed > 0.0) {
      const double gops =
          ops_per_pass * static_cast<double>(passes) / elapsed / 1e9;
      if (gops > best) best = gops;
    }
  }
  return best;
}

// The measured value escapes through the report; keep a sink anyway so a
// result-free pass (Scal, Sub, ...) cannot be hoisted.
volatile double g_sink = 0.0;

}  // namespace

int main(int argc, char** argv) {
  namespace blas = robustify::linalg::blas;
  namespace bench = robustify::bench;
  namespace perfmodel = robustify::perfmodel;

  // Split off the flags BenchContext does not know before handing it argv.
  std::string profile_path = "machine_profile.json";
  bool quick = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--profile=", 10) == 0) {
      profile_path = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  bench::BenchContext ctx("roofline", static_cast<int>(passthrough.size()),
                          passthrough.data());

  bench::Banner("Roofline: faulty-BLAS kernel efficiency vs. machine peaks",
                "observability tier (no paper figure)",
                "memory-bound kernels near their bandwidth roof; "
                "efficiency near or below 1");

  MachineProfile profile = perfmodel::LoadMachineProfile(profile_path);
  if (!profile.valid) {
    std::cout << "[no machine profile at " << profile_path
              << "; running quick calibration]\n";
    profile = perfmodel::Calibrate(quick
                                       ? perfmodel::CalibrationOptions::Quick()
                                       : perfmodel::CalibrationOptions{});
    try {
      perfmodel::WriteMachineProfile(profile_path, profile);
      std::cout << "[machine profile written: " << profile_path << "]\n";
    } catch (const std::exception& e) {
      std::cout << "[machine profile not cached: " << e.what() << "]\n";
    }
  }
  std::cout << "machine: scalar " << profile.scalar_peak_gops
            << " Gops/s, vector " << profile.vector_peak_gops
            << " Gops/s, triad " << profile.triad_bandwidth_gbps
            << " GB/s, sustained " << profile.sustained_bandwidth_gbps
            << " GB/s (" << profile.created_utc << ")\n\n";
  if (!profile.valid) {
    std::cerr << "calibration produced an invalid profile; aborting\n";
    return 1;
  }

  ProbeOptions probe;
  if (quick) {
    probe.seconds_per_probe = 0.01;
    probe.rounds = 1;
  }

  // DRAM-resident working sets, matching the analytic byte counts: 16 MiB
  // per vector, and a 512 x 4096 matrix (16 MiB) with cache-resident
  // vectors for the matvec pair.
  constexpr std::size_t kN = std::size_t{1} << 21;
  constexpr std::size_t kRows = 512;
  constexpr std::size_t kCols = 4096;
  std::vector<double> x(kN), y(kN), z(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    x[i] = 1e-6 * static_cast<double>(i % 1024);
    y[i] = 1e-6 * static_cast<double>((i + 37) % 1024);
    z[i] = 1e-6 * static_cast<double>((i + 511) % 1024);
  }
  std::vector<double> a(kRows * kCols);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = 1e-3 * static_cast<double>(i % 251);
  }
  std::vector<double> mv_x(kCols, 0.5), mv_y(kRows, 0.0), mt_x(kRows, 0.5),
      mt_y(kCols, 0.0);

  const double n_d = static_cast<double>(kN);
  const double mat_ops = 2.0 * static_cast<double>(kRows * kCols);

  struct FamilyProbe {
    const char* family;
    double ops_per_pass;
    std::function<void()> pass;
  };
  // Scale factors chosen so unbounded repetition keeps every value finite:
  // rotations preserve norms, accumulating updates use 1e-6-scale operands.
  const std::vector<FamilyProbe> probes = {
      {"dot", 2.0 * n_d,
       [&] { g_sink = blas::DotAcc(kN, 0.0, x.data(), 1, y.data(), 1); }},
      {"axpy", 2.0 * n_d,
       [&] { blas::Axpy(kN, 1e-6, x.data(), 1, y.data(), 1); }},
      {"xpby", 2.0 * n_d, [&] { blas::Xpby(kN, z.data(), 0.5, y.data()); }},
      {"scal", 1.0 * n_d, [&] { blas::Scal(kN, 1.0, x.data()); }},
      {"sub", 1.0 * n_d, [&] { blas::Sub(kN, x.data(), y.data()); }},
      {"sub_scaled2", 3.0 * n_d,
       [&] { blas::SubScaled2(kN, 1e-3, 1e-3, x.data(), y.data()); }},
      {"nrm2", 2.0 * n_d, [&] { g_sink = blas::Nrm2(kN, x.data()); }},
      {"matvec", mat_ops,
       [&] {
         blas::MatVecInto(kRows, kCols, a.data(), mv_x.data(), mv_y.data());
       }},
      {"mattvec", mat_ops,
       [&] {
         blas::MatTVecInto(kRows, kCols, a.data(), mt_x.data(), mt_y.data());
       }},
      {"residual", 3.0 * n_d,
       [&] { g_sink = blas::ResidualSsqAcc(kN, 0.0, x.data(), z.data()); }},
      {"rot", 6.0 * n_d,
       [&] { blas::Rot(kN, x.data(), 1, y.data(), 1, 0.8, 0.6); }},
      {"jacobi_dots", 6.0 * n_d,
       [&] {
         double app = 0.0, aqq = 0.0, apq = 0.0;
         blas::JacobiDots(kN, x.data(), 1, y.data(), 1, &app, &aqq, &apq);
         g_sink = app + aqq + apq;
       }},
  };

  std::printf("%-12s %10s %8s %12s %11s  %s\n", "family", "Gops/s", "AI",
              "ceiling", "efficiency", "bound");
  for (const FamilyProbe& fp : probes) {
    const KernelTraits* traits = perfmodel::FindKernelTraits(fp.family);
    if (traits == nullptr) {
      std::cerr << "kernel family missing from the analytic table: "
                << fp.family << "\n";
      return 1;
    }
    robustify::harness::WallTimer timer;
    const double gops = MeasureGops(fp.pass, fp.ops_per_pass, probe);
    const double wall = timer.Seconds();
    const RooflinePlacement placement =
        perfmodel::PlaceKernel(*traits, gops, profile);
    if (!placement.valid || !std::isfinite(placement.efficiency)) {
      std::cerr << "roofline placement failed for " << fp.family << "\n";
      return 1;
    }
    std::printf("%-12s %10.3f %8.3f %12.3f %11.3f  %s\n", fp.family, gops,
                placement.arithmetic_intensity, placement.ceiling_gops,
                placement.efficiency,
                placement.memory_bound ? "memory" : "compute");
    // Ops here stream through the faulty-BLAS clean path (no injector
    // installed), so the section's flops field carries the kernel ops.
    ctx.RecordSection(fp.family, wall, fp.ops_per_pass);
    robustify::harness::PerfSection* section = ctx.LastSection();
    section->kernel_gops = gops;
    section->arithmetic_intensity = placement.arithmetic_intensity;
    section->roofline_ceiling_gops = placement.ceiling_gops;
    section->roofline_efficiency = placement.efficiency;
  }
  std::cout << "\n";
  return ctx.Finish();
}
