// E13 / Sections 4.5-4.6: robustified max-flow and all-pairs shortest path.
//
// The paper gives the LP formulations but no measured figure; this bench
// provides the missing sweep: solution quality of the LP robustification vs
// the combinatorial baseline (Ford-Fulkerson / Floyd-Warshall) on the faulty
// FPU, as a function of fault rate.
//
// Axis, seed, and series definitions live in the campaign registry
// (src/campaign/spec.cpp + scenarios.cpp); this main is presentation only.
#include "bench/bench_common.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"

int main(int argc, char** argv) {
  using namespace robustify;
  bench::BenchContext ctx("maxflow_apsp", argc, argv);
  bench::Banner(
      "Max-flow and APSP robustification (Sections 4.5-4.6)",
      "Eqs. 4.6-4.9 (max-flow LP) and 4.10-4.12 (APSP LP); no paper figure "
      "— this is the formulations' evaluation",
      "combinatorial baselines lose correctness as fault rate grows; the LP "
      "penalty forms degrade gracefully");

  for (const char* name : {"maxflow", "apsp"}) {
    const campaign::CampaignSpec& spec = campaign::RegistrySpec(name);
    const campaign::Scenario scenario = campaign::BuildScenario(spec);
    const auto series =
        ctx.RunSweep(name, campaign::ToSweepConfig(spec), scenario.series);
    bench::EmitSweep(scenario.title, series, scenario.value, scenario.value_label,
                     scenario.csv_name);
  }
  return ctx.Finish();
}
