// E13 / Sections 4.5-4.6: robustified max-flow and all-pairs shortest path.
//
// The paper gives the LP formulations but no measured figure; this bench
// provides the missing sweep: solution quality of the LP robustification vs
// the combinatorial baseline (Ford-Fulkerson / Floyd-Warshall) on the faulty
// FPU, as a function of fault rate.
#include "apps/apsp_app.h"
#include "apps/configs.h"
#include "apps/maxflow_app.h"
#include "bench/bench_common.h"
#include "core/phases.h"
#include "graph/generators.h"
#include "graph/maxflow.h"
#include "graph/shortest_paths.h"

namespace {

using namespace robustify;

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("maxflow_apsp", argc, argv);
  bench::Banner(
      "Max-flow and APSP robustification (Sections 4.5-4.6)",
      "Eqs. 4.6-4.9 (max-flow LP) and 4.10-4.12 (APSP LP); no paper figure "
      "— this is the formulations' evaluation",
      "combinatorial baselines lose correctness as fault rate grows; the LP "
      "penalty forms degrade gracefully");

  harness::SweepConfig sweep;
  sweep.fault_rates = {0.0, 0.01, 0.05, 0.1, 0.2};
  sweep.trials = 6;
  sweep.base_seed = 71;

  // ---- max flow: relative flow-value error ---------------------------------
  const graph::FlowNetwork net = graph::RandomFlowNetwork(6, 6, 12);
  const double exact_flow = graph::PushRelabelMaxFlow(net);

  const harness::TrialFn flow_base = [&](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const graph::MaxFlowResult r = core::WithFaultyFpu(
        env, [&] { return graph::EdmondsKarpMaxFlow<faulty::Real>(net); },
        &out.fpu_stats);
    out.metric = std::abs(r.value - exact_flow) / exact_flow;
    out.success = out.metric < 1e-6;
    return out;
  };
  const harness::TrialFn flow_robust = [&](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const apps::FlowResult r = core::WithFaultyFpu(
        env,
        [&] { return apps::RobustMaxFlow<faulty::Real>(net, apps::MaxFlowConfig()); },
        &out.fpu_stats);
    out.metric = r.valid ? std::abs(r.value - exact_flow) / exact_flow : 1e9;
    out.success = r.valid && out.metric < 0.05;
    return out;
  };

  const auto flow_series = ctx.RunSweep(
      "maxflow", sweep, {{"Base: Ford-Fulkerson", flow_base}, {"SGD LP", flow_robust}});
  bench::EmitSweep("Max flow: median relative flow-value error", flow_series,
                   harness::TableValue::kMedianMetric, "median |F-F*|/F*",
                   "maxflow.csv");

  // ---- APSP: largest distance error ----------------------------------------
  const graph::Digraph g = graph::RandomDigraph(5, 6, 15);
  const linalg::Matrix<double> exact = graph::AllPairsDijkstra(g);

  const harness::TrialFn apsp_base = [&](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const linalg::Matrix<double> d = core::WithFaultyFpu(
        env, [&] { return linalg::ToDouble(graph::FloydWarshall<faulty::Real>(g)); },
        &out.fpu_stats);
    out.metric = apps::MaxAbsDistanceError(d, exact);
    out.success = out.metric < 1e-6;
    return out;
  };
  const harness::TrialFn apsp_robust = [&](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const apps::ApspResult r = core::WithFaultyFpu(
        env, [&] { return apps::RobustApsp<faulty::Real>(g, apps::ApspConfig()); },
        &out.fpu_stats);
    out.metric = r.valid ? apps::MaxAbsDistanceError(r.distances, exact) : 1e9;
    out.success = r.valid && out.metric < 0.05;
    return out;
  };

  const auto apsp_series = ctx.RunSweep(
      "apsp", sweep, {{"Base: Floyd-Warshall", apsp_base}, {"SGD LP", apsp_robust}});
  bench::EmitSweep("APSP: median max-abs distance error", apsp_series,
                   harness::TableValue::kMedianMetric, "median max |D-D*|",
                   "apsp.csv");
  return ctx.Finish();
}
