// E12 / Chapter 7 (text): FLOP overhead of robustification.
//
// "We observed that the number of floating point operations required by our
// applications could be up to 10 to 1000 times higher than that for the
// baseline implementations."  This bench counts FPU operations for the
// baseline and robust implementation of every application.
#include <cstdio>
#include <functional>
#include <random>
#include <string>

#include "apps/apsp_app.h"
#include "apps/configs.h"
#include "apps/iir_app.h"
#include "apps/least_squares.h"
#include "apps/matching_app.h"
#include "apps/sort_app.h"
#include "bench/bench_common.h"
#include "core/phases.h"
#include "graph/generators.h"
#include "graph/maxflow.h"
#include "graph/shortest_paths.h"
#include "apps/maxflow_app.h"
#include "signal/signals.h"

namespace {

using namespace robustify;

template <class Fn>
double Flops(const Fn& fn) {
  core::FaultEnvironment env;  // rate 0: count, never corrupt
  faulty::ContextStats stats;
  core::WithFaultyFpu(env, fn, &stats);
  return static_cast<double>(stats.faulty_flops);
}

void Row(const char* app, double base, double robust) {
  std::printf("%-18s %-14.0f %-14.0f %-10.1fx\n", app, base, robust, robust / base);
}

// Clean-path throughput of one faulty-BLAS kernel under one engine: run
// `fn` (a batch of kernel calls on faulty::Real data) inside a rate-0
// fault scope — the injector is live, so the block path exercises its
// clean-run accounting and the scalar path its per-op countdown — and
// report Mops/s through the injector.
template <class Fn>
double KernelMops(bench::BenchContext& ctx, const std::string& label,
                  faulty::Engine engine, const Fn& fn) {
  core::FaultEnvironment env;  // rate 0: clean path, full accounting
  env.engine = engine;
  faulty::ContextStats stats;
  core::WithFaultyFpu(env, fn, &stats);  // warm-up + op count
  const double flops = static_cast<double>(stats.faulty_flops);
  harness::WallTimer timer;
  constexpr int kReps = 20;
  for (int rep = 0; rep < kReps; ++rep) core::WithFaultyFpu(env, fn);
  const double seconds = timer.Seconds() / kReps;
  const double mops = seconds > 0.0 ? flops / seconds / 1e6 : 0.0;
  ctx.RecordSection(label, seconds * kReps, flops * kReps);
  return mops;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("flop_overhead", argc, argv);
  bench::Banner(
      "FLOP overhead of robustification (Chapter 7)",
      "Chapter 7 (text): robust implementations need 10-1000x more FLOPs",
      "every robust/baseline ratio falls in roughly the 10x-1000x band");
  harness::WallTimer table_timer;

  std::printf("%-18s %-14s %-14s %-10s\n", "application", "baseline", "robust",
              "overhead");
  std::printf("------------------------------------------------------------\n");

  {
    const std::vector<double> input{0.9, 0.1, 0.6, 0.3, 0.7};
    const double base = Flops([&] { return apps::BaselineSort<faulty::Real>(input); });
    const double robust = Flops(
        [&] { return apps::RobustSort<faulty::Real>(input, apps::SortSgdAsSqs()); });
    Row("sort (n=5)", base, robust);
  }
  {
    const apps::LsqProblem p = apps::MakeRandomLsqProblem(100, 10, 11);
    const double base = Flops([&] {
      return apps::SolveLsqBaseline<faulty::Real>(p, linalg::LsqBaseline::kCholesky);
    });
    const double sgd =
        Flops([&] { return apps::SolveLsqSgd<faulty::Real>(p, apps::LsqSgdLs()); });
    const double cg =
        Flops([&] { return apps::SolveLsqCg<faulty::Real>(p, apps::LsqCg(10)); });
    Row("lsq SGD (100x10)", base, sgd);
    Row("lsq CG,N=10", base, cg);
  }
  {
    const signal::IirCoefficients coeffs = signal::MakeStableIir(5, 5, 63);
    const linalg::Vector<double> u = signal::SineMix(500, {3.0}, {1.0});
    const double base = Flops([&] { return apps::BaselineIir<faulty::Real>(coeffs, u); });
    const double robust = Flops(
        [&] { return apps::RobustIir<faulty::Real>(coeffs, u, apps::IirSgdLs()); });
    Row("iir (500 samples)", base, robust);
  }
  {
    const graph::BipartiteGraph g = graph::RandomBipartite(5, 6, 30, 3);
    const double base = Flops([&] { return apps::BaselineMatching<faulty::Real>(g); });
    const double robust = Flops([&] {
      return apps::RobustMatching<faulty::Real>(g, apps::MatchingBasicLs());
    });
    Row("matching (5x6)", base, robust);
  }
  {
    const graph::FlowNetwork net = graph::RandomFlowNetwork(6, 6, 12);
    const double base =
        Flops([&] { return graph::EdmondsKarpMaxFlow<faulty::Real>(net); });
    const double robust = Flops(
        [&] { return apps::RobustMaxFlow<faulty::Real>(net, apps::MaxFlowConfig()); });
    Row("maxflow (6 nodes)", base, robust);
  }
  {
    const graph::Digraph g = graph::RandomDigraph(5, 6, 15);
    const double base =
        Flops([&] { return graph::FloydWarshall<faulty::Real>(g); });
    const double robust =
        Flops([&] { return apps::RobustApsp<faulty::Real>(g, apps::ApspConfig()); });
    Row("apsp (5 nodes)", base, robust);
  }
  ctx.RecordSection("flop-count-table", table_timer.Seconds(), 0.0);

  // Clean-path Mops/s per faulty-BLAS kernel under both engines: the
  // block/scalar ratio is the bulk-kernel dividend the sweeps collect at
  // realistic fault rates, where >99.99% of ops run on the clean path.
  std::printf("\nclean-path kernel throughput (Mops/s through the injector)\n");
  std::printf("%-18s %-14s %-14s %-10s\n", "kernel", "scalar", "block", "block/scalar");
  std::printf("------------------------------------------------------------\n");
  {
    const std::size_t n = 2048;
    const std::size_t rows = 192, cols = 96;
    std::mt19937_64 rng(2718);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    linalg::Vector<faulty::Real> x(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = faulty::Real(dist(rng));
      y[i] = faulty::Real(dist(rng));
    }
    linalg::Matrix<faulty::Real> a(rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) a(i, j) = faulty::Real(dist(rng));
    }
    linalg::Vector<faulty::Real> mx(cols), my(rows);
    for (std::size_t j = 0; j < cols; ++j) mx[j] = faulty::Real(dist(rng));

    struct Kernel {
      const char* name;
      std::function<void()> fn;
    };
    const Kernel kernels[] = {
        {"dot", [&] {
           faulty::Real acc(0);
           for (int r = 0; r < 200; ++r) acc += Dot(x, y);
           (void)acc;
         }},
        {"axpy", [&] {
           const faulty::Real alpha(1e-9);
           for (int r = 0; r < 200; ++r) AxpyInPlace(alpha, x, &y);
         }},
        {"matvec", [&] {
           for (int r = 0; r < 200; ++r) MatVecInto(a, mx, &my);
         }},
        {"mattvec", [&] {
           for (int r = 0; r < 200; ++r) MatTVecInto(a, my, &mx);
         }},
    };
    for (const Kernel& kernel : kernels) {
      const double scalar = KernelMops(ctx, std::string(kernel.name) + "-scalar",
                                       faulty::Engine::kScalar, kernel.fn);
      const double block = KernelMops(ctx, std::string(kernel.name) + "-block",
                                      faulty::Engine::kBlock, kernel.fn);
      std::printf("%-18s %-14.0f %-14.0f %-10.2fx\n", kernel.name, scalar, block,
                  scalar > 0.0 ? block / scalar : 0.0);
    }
  }
  return ctx.Finish();
}
