// E12 / Chapter 7 (text): FLOP overhead of robustification.
//
// "We observed that the number of floating point operations required by our
// applications could be up to 10 to 1000 times higher than that for the
// baseline implementations."  This bench counts FPU operations for the
// baseline and robust implementation of every application.
#include <cstdio>
#include <random>

#include "apps/apsp_app.h"
#include "apps/configs.h"
#include "apps/iir_app.h"
#include "apps/least_squares.h"
#include "apps/matching_app.h"
#include "apps/sort_app.h"
#include "bench/bench_common.h"
#include "core/phases.h"
#include "graph/generators.h"
#include "graph/maxflow.h"
#include "graph/shortest_paths.h"
#include "apps/maxflow_app.h"
#include "signal/signals.h"

namespace {

using namespace robustify;

template <class Fn>
double Flops(const Fn& fn) {
  core::FaultEnvironment env;  // rate 0: count, never corrupt
  faulty::ContextStats stats;
  core::WithFaultyFpu(env, fn, &stats);
  return static_cast<double>(stats.faulty_flops);
}

void Row(const char* app, double base, double robust) {
  std::printf("%-18s %-14.0f %-14.0f %-10.1fx\n", app, base, robust, robust / base);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("flop_overhead", argc, argv);
  bench::Banner(
      "FLOP overhead of robustification (Chapter 7)",
      "Chapter 7 (text): robust implementations need 10-1000x more FLOPs",
      "every robust/baseline ratio falls in roughly the 10x-1000x band");
  harness::WallTimer table_timer;

  std::printf("%-18s %-14s %-14s %-10s\n", "application", "baseline", "robust",
              "overhead");
  std::printf("------------------------------------------------------------\n");

  {
    const std::vector<double> input{0.9, 0.1, 0.6, 0.3, 0.7};
    const double base = Flops([&] { return apps::BaselineSort<faulty::Real>(input); });
    const double robust = Flops(
        [&] { return apps::RobustSort<faulty::Real>(input, apps::SortSgdAsSqs()); });
    Row("sort (n=5)", base, robust);
  }
  {
    const apps::LsqProblem p = apps::MakeRandomLsqProblem(100, 10, 11);
    const double base = Flops([&] {
      return apps::SolveLsqBaseline<faulty::Real>(p, linalg::LsqBaseline::kCholesky);
    });
    const double sgd =
        Flops([&] { return apps::SolveLsqSgd<faulty::Real>(p, apps::LsqSgdLs()); });
    const double cg =
        Flops([&] { return apps::SolveLsqCg<faulty::Real>(p, apps::LsqCg(10)); });
    Row("lsq SGD (100x10)", base, sgd);
    Row("lsq CG,N=10", base, cg);
  }
  {
    const signal::IirCoefficients coeffs = signal::MakeStableIir(5, 5, 63);
    const linalg::Vector<double> u = signal::SineMix(500, {3.0}, {1.0});
    const double base = Flops([&] { return apps::BaselineIir<faulty::Real>(coeffs, u); });
    const double robust = Flops(
        [&] { return apps::RobustIir<faulty::Real>(coeffs, u, apps::IirSgdLs()); });
    Row("iir (500 samples)", base, robust);
  }
  {
    const graph::BipartiteGraph g = graph::RandomBipartite(5, 6, 30, 3);
    const double base = Flops([&] { return apps::BaselineMatching<faulty::Real>(g); });
    const double robust = Flops([&] {
      return apps::RobustMatching<faulty::Real>(g, apps::MatchingBasicLs());
    });
    Row("matching (5x6)", base, robust);
  }
  {
    const graph::FlowNetwork net = graph::RandomFlowNetwork(6, 6, 12);
    const double base =
        Flops([&] { return graph::EdmondsKarpMaxFlow<faulty::Real>(net); });
    const double robust = Flops(
        [&] { return apps::RobustMaxFlow<faulty::Real>(net, apps::MaxFlowConfig()); });
    Row("maxflow (6 nodes)", base, robust);
  }
  {
    const graph::Digraph g = graph::RandomDigraph(5, 6, 15);
    const double base =
        Flops([&] { return graph::FloydWarshall<faulty::Real>(g); });
    const double robust =
        Flops([&] { return apps::RobustApsp<faulty::Real>(g, apps::ApspConfig()); });
    Row("apsp (5 nodes)", base, robust);
  }
  ctx.RecordSection("flop-count-table", table_timer.Seconds(), 0.0);
  return ctx.Finish();
}
