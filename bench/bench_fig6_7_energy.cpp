// E9 / Figure 6.7: FPU energy vs accuracy target for least squares, Cholesky
// baseline vs CG under voltage overscaling.
//
// The paper's insight: because CG tolerates FPU errors, one can "scale down
// the voltage and the number of iterations concurrently" — for every
// achievable accuracy target the CG configuration frontier costs less energy
// than running the direct Cholesky solve at the voltage it needs to stay
// correct.  Energy is the paper's axis: relative power (V^2, normalized to
// the 1.0 V nominal) times the number of FLOPs executed.
#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

#include "apps/configs.h"
#include "apps/least_squares.h"
#include "bench/bench_common.h"
#include "core/phases.h"
#include "faulty/energy.h"
#include "signal/metrics.h"

namespace {

using namespace robustify;

struct Operating {
  double voltage = 1.0;
  int iterations = 0;       // CG only
  double energy = std::numeric_limits<double>::infinity();
  bool feasible = false;
};

// Overridable via --trials (clamped to >= 2: the criterion below needs the
// second-largest error).
int g_trials = 15;

// Near-worst relative error over the trials (second-largest of g_trials),
// plus mean faulty FLOPs.  The figure's operating criterion is reliability:
// a solver "meets" an accuracy target at a voltage only if essentially
// every run does — a direct solver that usually succeeds but occasionally
// emits garbage has not met it, which is precisely why it cannot be
// overscaled far.  Taking the second-largest error discards a single freak
// trial so the frontier is not dictated by one unlucky arrival-sequence
// seed.
template <class Solver>
std::pair<double, double> Measure(const Solver& solve, double fault_rate,
                                  std::uint64_t seed) {
  std::vector<double> errors;
  errors.reserve(static_cast<std::size_t>(g_trials));
  double flops = 0.0;
  for (int t = 0; t < g_trials; ++t) {
    core::FaultEnvironment env;
    env.fault_rate = fault_rate;
    env.seed = seed + static_cast<std::uint64_t>(t) * 97;
    faulty::ContextStats stats;
    const double err = core::WithFaultyFpu(env, solve, &stats);
    errors.push_back(std::isfinite(err) ? err
                                        : std::numeric_limits<double>::infinity());
    flops += static_cast<double>(stats.faulty_flops) / g_trials;
  }
  std::sort(errors.begin(), errors.end());
  return {errors[errors.size() - 2], flops};
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("fig6_7_energy", argc, argv);
  g_trials = std::max(2, ctx.TrialsOr(g_trials));
  bench::Banner(
      "Figure 6.7 - Least Squares Energy (Power * #FLOPs) vs accuracy target",
      "Section 6.3, Figure 6.7",
      "CG's energy frontier sits below the Cholesky baseline across the "
      "achievable accuracy range; the tightest targets (< ~1e-7) are not "
      "reachable by CG, as in the paper");
  harness::WallTimer frontier_timer;

  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(100, 10, 9);
  const faulty::EnergyModel energy_model;
  const faulty::VoltageModel& vm = energy_model.voltage_model();

  std::vector<double> voltages;
  for (double v = 0.60; v <= 1.0001; v += 0.025) voltages.push_back(v);

  const std::vector<double> targets = {1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1};

  std::printf("%-16s %-34s %-41s %-41s\n", "accuracy", "Base: Cholesky", "CG",
              "CG-NE (precomputed A^T A)");
  std::printf("%-16s %-10s %-10s %-12s %-10s %-6s %-10s %-12s %-10s %-6s %-10s %-12s\n",
              "target", "V", "flops", "energy", "V", "N", "flops", "energy", "V", "N",
              "flops", "energy");
  std::printf("-----------------------------------------------------------------------"
              "---------------------------------------------------\n");

  for (const double target : targets) {
    // Feasibility in voltage is monotone (more overscaling, more faults), so
    // scan from nominal downward and stop at the first failure — this avoids
    // crediting a solver with a "lucky" low-voltage cell.
    // Cholesky: its FLOP count is fixed; only voltage varies.
    Operating chol;
    for (auto vit = voltages.rbegin(); vit != voltages.rend(); ++vit) {
      const double v = *vit;
      const auto [err, flops] = Measure(
          [&] {
            return signal::RelativeError(
                apps::SolveLsqBaseline<faulty::Real>(problem,
                                                     linalg::LsqBaseline::kCholesky),
                problem.exact);
          },
          vm.error_rate(v), 1000 + static_cast<std::uint64_t>(v * 1000));
      if (err > target) break;
      {
        const double e = energy_model.energy(static_cast<std::uint64_t>(flops), v);
        if (e < chol.energy) {
          chol = {v, 0, e, true};
        }
      }
    }

    // CG: joint frontier over (iterations, voltage).
    Operating cg;
    for (int iters = 2; iters <= 16; iters += 2) {
      for (auto vit = voltages.rbegin(); vit != voltages.rend(); ++vit) {
        const double v = *vit;
        const auto [err, flops] = Measure(
            [&] {
              return signal::RelativeError(
                  apps::SolveLsqCg<faulty::Real>(problem, apps::LsqCg(iters)).x,
                  problem.exact);
            },
            vm.error_rate(v),
            2000 + static_cast<std::uint64_t>(v * 1000) +
                static_cast<std::uint64_t>(iters));
        if (err > target) break;
        {
          const double e = energy_model.energy(static_cast<std::uint64_t>(flops), v);
          if (e < cg.energy) {
            cg = {v, iters, e, true};
          }
        }
      }
    }

    // CG-NE: the paper's iteration — G = A^T A precomputed once, one n x n
    // mat-vec per step instead of two m x n ones.  Same joint frontier.
    Operating cgne;
    for (int iters = 2; iters <= 16; iters += 2) {
      for (auto vit = voltages.rbegin(); vit != voltages.rend(); ++vit) {
        const double v = *vit;
        const auto [err, flops] = Measure(
            [&] {
              return signal::RelativeError(
                  apps::SolveLsqCg<faulty::Real>(problem, apps::LsqCgNormal(iters)).x,
                  problem.exact);
            },
            vm.error_rate(v),
            3000 + static_cast<std::uint64_t>(v * 1000) +
                static_cast<std::uint64_t>(iters));
        if (err > target) break;
        {
          const double e = energy_model.energy(static_cast<std::uint64_t>(flops), v);
          if (e < cgne.energy) {
            cgne = {v, iters, e, true};
          }
        }
      }
    }

    std::printf("%-16.0e ", target);
    if (chol.feasible) {
      std::printf("%-10.3f %-10.0f %-12.4e ", chol.voltage,
                  chol.energy / energy_model.relative_power(chol.voltage), chol.energy);
    } else {
      std::printf("%-10s %-10s %-12s ", "-", "-", "unreachable");
    }
    if (cg.feasible) {
      std::printf("%-10.3f %-6d %-10.0f %-12.4e ", cg.voltage, cg.iterations,
                  cg.energy / energy_model.relative_power(cg.voltage), cg.energy);
    } else {
      std::printf("%-10s %-6s %-10s %-12s ", "-", "-", "-", "unreachable");
    }
    if (cgne.feasible) {
      std::printf("%-10.3f %-6d %-10.0f %-12.4e\n", cgne.voltage, cgne.iterations,
                  cgne.energy / energy_model.relative_power(cgne.voltage), cgne.energy);
    } else {
      std::printf("%-10s %-6s %-10s %-12s\n", "-", "-", "-", "unreachable");
    }
  }
  ctx.RecordSection("energy-frontier", frontier_timer.Seconds(), 0.0);
  return ctx.Finish();
}
