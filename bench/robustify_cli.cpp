// robustify_cli: one driver for every registered campaign.
//
//   robustify_cli list [--fingerprints]
//       Registered campaigns, their axes, and their series; with
//       --fingerprints, each spec's FNV fingerprint (the result-store key).
//   robustify_cli run <fig|spec-file> [flags]
//       Run a campaign (adaptive trial allocation by default).  --shard=i/N
//       runs only the cells with grid index ≡ i (mod N); shard journals
//       merge into the result store.
//   robustify_cli resume <fig|spec-file> [flags]
//       Continue a journaled campaign after a crash or kill; the final CSV
//       is byte-identical to an uninterrupted run.
//   robustify_cli merge <fig|spec-file> --store=DIR [flags] <journal>...
//       Fold shard journals into the content-addressed result store
//       (fingerprint-validated, torn-tail tolerant, idempotent); with
//       --csv, export the merged campaign CSV — byte-identical to the
//       single-process run once every cell is present.
//   robustify_cli query <fig|spec-file> <series> <rate> [flags]
//       Answer success rate ± Wilson CI from the store: cached cells that
//       already meet --ci are served as-is, off-grid rates go through the
//       logistic cliff surrogate, and only actual misses run fresh trials
//       (written back to the store).
//   robustify_cli serve <fig|spec-file>... --store=DIR
//       Newline-delimited-JSON query loop on stdin/stdout; one answer
//       object per query line.  A {"cmd": "stats"} line answers with the
//       serve loop's counters, per-source latency quantiles, and the
//       store manifest instead of running a query.
//   robustify_cli calibrate [--out=PATH] [--quick] [--seconds=S] [--rounds=N]
//       Microbenchmark the host (scalar/vector FLOP peaks, triad memory
//       bandwidth) and cache the provenance-stamped profile as
//       machine_profile.json — the roofline denominators bench_roofline
//       places kernels against.
//
// Flags (run/resume):
//   --ci=H         target Wilson 95% half-width on the success fraction
//   --budget=N     per-cell trial cap
//   --min-trials=N floor before the stopping rule may fire
//   --batch=N      trials executed (and journaled) per round
//   --fixed        fixed budget (spec trials per cell; no early stopping)
//   --trials=N     override the fixed budget (implies nothing about --fixed)
//   --rates=a,b,c  override the fault-rate axis
//   --series=NAME  restrict to one series (repeatable)
//   --seed=N       override the base seed
//   --shard=i/N    run only this shard's cells (run/resume; i in [0, N))
//   --model=M      fault model: transient|stuck|burst|intermittent
//   --op-classes=C comma-joined arith|cmp|mem subset that can fault
//   --stuck-mean=D / --burst-width=K / --window-mean=W / --window-rate=P
//                  model parameters (faulty/fault_model.h)
//   --guard-flops=N / --guard-iters=N / --guard-bailout
//                  guarded executor budgets (adds outcome columns to the CSV)
//   --threads=N    worker threads (default ROBUSTIFY_THREADS, else hardware)
//   --journal=PATH checkpoint journal (default <name>.journal; run truncates,
//                  resume requires it)
//   --csv=PATH     output CSV (default campaign_<name>.csv)
//   --json=PATH    perf report (default BENCH_campaign_<name>.json)
//   --trace[=PATH] flight-recorder spans -> Chrome trace JSON
//                  (default TRACE_campaign_<name>.json; load in Perfetto)
//   --metrics=PATH merged counter/histogram snapshot + provenance JSON
//   --attr[=PATH]  wall-time attribution ledger -> per-category self/total
//                  report on stderr (or to PATH when given)
//   --progress     heartbeat lines on stderr (cells done, trials/s, ETA)
//
// Flags (merge/query/serve):
//   --store=DIR    result store root (default "store")
//   --csv=PATH     (merge) export the merged campaign CSV
//   --no-fresh     (query) never run trials; miss => error or surrogate
//   --no-surrogate (query) never answer from the fitted surrogate
//   --ci=H         (query) requested half-width (default: the spec's own)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "campaign/adaptive.h"
#include "campaign/runner.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"
#include "faulty/fault_model.h"
#include "harness/csv.h"
#include "harness/parallel.h"
#include "harness/perf_report.h"
#include "harness/table.h"
#include "harness/timer.h"
#include "perfmodel/calibrate.h"
#include "service/query_service.h"
#include "store/result_store.h"
#include "telemetry/metrics_export.h"
#include "telemetry/progress.h"
#include "telemetry/trace.h"

namespace {

using namespace robustify;

int Usage() {
  std::cerr
      << "usage: robustify_cli list [--fingerprints]\n"
      << "       robustify_cli {run,resume} <fig|spec-file> [--ci=H] [--budget=N]\n"
      << "           [--min-trials=N] [--batch=N] [--fixed] [--trials=N]\n"
      << "           [--rates=a,b,c] [--series=NAME]... [--seed=N] [--shard=i/N]\n"
      << "           [--threads=N]\n"
      << "           [--model=M] [--op-classes=C] [--stuck-mean=D] [--burst-width=K]\n"
      << "           [--window-mean=W] [--window-rate=P] [--guard-flops=N]\n"
      << "           [--guard-iters=N] [--guard-bailout]\n"
      << "           [--journal=PATH] [--csv=PATH] [--json=PATH]\n"
      << "           [--trace[=PATH]] [--metrics=PATH] [--attr[=PATH]]\n"
      << "           [--progress]\n"
      << "       robustify_cli merge <fig|spec-file> [--store=DIR] [--csv=PATH]\n"
      << "           [--fixed] [spec flags] <journal>...\n"
      << "       robustify_cli query <fig|spec-file> <series> <rate> [--ci=H]\n"
      << "           [--store=DIR] [--no-fresh] [--no-surrogate] [spec flags]\n"
      << "       robustify_cli serve [--store=DIR] [<fig|spec-file>...]\n"
      << "       robustify_cli calibrate [--out=PATH] [--quick] [--seconds=S]\n"
      << "           [--rounds=N]\n";
  return 2;
}

[[noreturn]] void Die(const std::string& message) {
  std::cerr << "robustify_cli: " << message << "\n";
  std::exit(2);
}

long ParseLongFlag(const std::string& flag, const std::string& value) {
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    Die("malformed " + flag + " value: " + value);
  }
  return parsed;
}

double ParseDoubleFlag(const std::string& flag, const std::string& value) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    Die("malformed " + flag + " value: " + value);
  }
  return parsed;
}

// One parser for the rate-axis format, shared with spec files
// (campaign::ParseRateAxis) so the two surfaces cannot drift.
std::vector<double> ParseRatesFlag(const std::string& value) {
  try {
    return campaign::ParseRateAxis(value);
  } catch (const std::exception& e) {
    Die(std::string("malformed --rates list: ") + e.what());
  }
}

int RunList(bool fingerprints) {
  if (fingerprints) {
    // One `fingerprint  name` line per registry spec: the hex fingerprint
    // is the result store's directory name, so this output correlates
    // store contents with specs without running anything.
    for (const std::string& name : campaign::RegistryNames()) {
      std::printf("%016llx  %s\n",
                  static_cast<unsigned long long>(
                      campaign::SpecFingerprint(campaign::RegistrySpec(name))),
                  name.c_str());
    }
    return 0;
  }
  std::cout << "registered campaigns (robustify_cli run <name>):\n\n";
  for (const std::string& name : campaign::RegistryNames()) {
    const campaign::CampaignSpec& spec = campaign::RegistrySpec(name);
    std::cout << "  " << name << "\n    rates:";
    for (const double r : spec.fault_rates) std::cout << " " << r;
    std::cout << "\n    trials: " << spec.fixed_trials
              << " fixed / budget " << spec.max_trials << ", ci "
              << spec.ci_half_width << ", seed " << spec.base_seed
              << "\n    model: "
              << (spec.model.temporal == faulty::Temporal::kAuto
                      ? "transient (auto)"
                      : faulty::TemporalName(spec.model.temporal))
              << ", classes " << faulty::OpClassesName(spec.model.op_classes);
    if (spec.guard.Active()) {
      std::cout << ", guard flops=" << spec.guard.max_flops
                << " iters=" << spec.guard.max_iterations
                << " bailout=" << (spec.guard.nonfinite_bailout ? 1 : 0);
    }
    std::cout << "\n    series:";
    for (const std::string& s : campaign::ScenarioSeriesNames(spec.app)) {
      std::cout << " [" << s << "]";
    }
    std::cout << "\n";
  }
  std::cout << "\nspec files (key = value, see README) run the same way:\n"
            << "  robustify_cli run my_campaign.spec\n";
  return 0;
}

struct CliOptions {
  campaign::CampaignSpec spec;
  campaign::RunnerOptions runner;
  std::string csv_path;
  std::string json_path;
  bool trace = false;
  std::string trace_path;
  std::string metrics_path;
  bool attr = false;
  std::string attr_path;  // empty with attr: report goes to stderr
};

// A spec file wins when the path exists; otherwise the registry.
campaign::CampaignSpec LoadTargetSpec(const std::string& target) {
  if (std::ifstream probe(target); probe.good()) {
    return campaign::ParseSpecFile(target);
  }
  return campaign::RegistrySpec(target);
}

// Applies one spec-mutation flag (the flags every subcommand that resolves
// a spec shares — run, merge, query, serve must agree on these to agree on
// the fingerprint).  Returns false when `arg` is not a spec flag.
bool ApplySpecFlag(campaign::CampaignSpec* spec, const std::string& arg) {
  if (arg.rfind("--ci=", 0) == 0) {
    spec->ci_half_width = ParseDoubleFlag("--ci", arg.substr(5));
    if (!(spec->ci_half_width > 0.0)) Die("--ci must be > 0");
  } else if (arg.rfind("--budget=", 0) == 0) {
    spec->max_trials = static_cast<int>(ParseLongFlag("--budget", arg.substr(9)));
  } else if (arg.rfind("--min-trials=", 0) == 0) {
    spec->min_trials =
        static_cast<int>(ParseLongFlag("--min-trials", arg.substr(13)));
  } else if (arg.rfind("--batch=", 0) == 0) {
    spec->batch = static_cast<int>(ParseLongFlag("--batch", arg.substr(8)));
  } else if (arg.rfind("--trials=", 0) == 0) {
    spec->fixed_trials = static_cast<int>(ParseLongFlag("--trials", arg.substr(9)));
  } else if (arg.rfind("--rates=", 0) == 0) {
    spec->fault_rates = ParseRatesFlag(arg.substr(8));
  } else if (arg.rfind("--series=", 0) == 0) {
    spec->series.push_back(arg.substr(9));
  } else if (arg.rfind("--seed=", 0) == 0) {
    spec->base_seed =
        static_cast<std::uint64_t>(ParseLongFlag("--seed", arg.substr(7)));
  } else if (arg.rfind("--shard=", 0) == 0) {
    try {
      const auto [index, count] = campaign::ParseShard(arg.substr(8));
      spec->shard_index = index;
      spec->shard_count = count;
    } catch (const std::exception& e) {
      Die(e.what());
    }
  } else if (arg.rfind("--model=", 0) == 0) {
    const faulty::Temporal t = faulty::ParseTemporal(arg.substr(8));
    if (t == faulty::Temporal::kAuto) Die("unknown --model: " + arg.substr(8));
    spec->model.temporal = t;
  } else if (arg.rfind("--op-classes=", 0) == 0) {
    try {
      spec->model.op_classes = faulty::ParseOpClasses(arg.substr(13));
    } catch (const std::exception& e) {
      Die(std::string("malformed --op-classes: ") + e.what());
    }
  } else if (arg.rfind("--stuck-mean=", 0) == 0) {
    spec->model.stuck_mean_ops = ParseDoubleFlag("--stuck-mean", arg.substr(13));
  } else if (arg.rfind("--burst-width=", 0) == 0) {
    spec->model.burst_width_max =
        static_cast<int>(ParseLongFlag("--burst-width", arg.substr(14)));
  } else if (arg.rfind("--window-mean=", 0) == 0) {
    spec->model.window_mean_ops =
        ParseDoubleFlag("--window-mean", arg.substr(14));
  } else if (arg.rfind("--window-rate=", 0) == 0) {
    spec->model.window_rate = ParseDoubleFlag("--window-rate", arg.substr(14));
  } else if (arg.rfind("--guard-flops=", 0) == 0) {
    spec->guard.max_flops = static_cast<std::uint64_t>(
        ParseLongFlag("--guard-flops", arg.substr(14)));
  } else if (arg.rfind("--guard-iters=", 0) == 0) {
    spec->guard.max_iterations =
        static_cast<int>(ParseLongFlag("--guard-iters", arg.substr(14)));
  } else if (arg == "--guard-bailout") {
    spec->guard.nonfinite_bailout = true;
  } else {
    return false;
  }
  return true;
}

int RunCampaignCommand(bool resume, const std::string& target,
                       const std::vector<std::string>& flags) {
  CliOptions cli;
  cli.spec = LoadTargetSpec(target);

  cli.runner.resume = resume;
  bool journal_set = false;
  for (const std::string& arg : flags) {
    if (ApplySpecFlag(&cli.spec, arg)) {
      continue;
    } else if (arg == "--fixed") {
      cli.runner.adaptive = false;
    } else if (arg.rfind("--threads=", 0) == 0) {
      cli.runner.threads = static_cast<int>(ParseLongFlag("--threads", arg.substr(10)));
    } else if (arg.rfind("--journal=", 0) == 0) {
      cli.runner.journal_path = arg.substr(10);
      journal_set = true;
    } else if (arg.rfind("--csv=", 0) == 0) {
      cli.csv_path = arg.substr(6);
    } else if (arg.rfind("--json=", 0) == 0) {
      cli.json_path = arg.substr(7);
    } else if (arg == "--trace") {
      cli.trace = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      cli.trace = true;
      cli.trace_path = arg.substr(8);
    } else if (arg.rfind("--metrics=", 0) == 0) {
      cli.metrics_path = arg.substr(10);
    } else if (arg == "--attr") {
      cli.attr = true;
    } else if (arg.rfind("--attr=", 0) == 0) {
      cli.attr = true;
      cli.attr_path = arg.substr(7);
    } else if (arg == "--progress") {
      telemetry::EnableProgress();
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return Usage();
    }
  }
  if (cli.spec.min_trials > cli.spec.max_trials ||
      cli.spec.min_trials < 1 || cli.spec.batch < 1 || cli.spec.fixed_trials < 1) {
    Die("invalid trial allocation: need 1 <= min-trials <= budget, batch >= 1");
  }
  if (!journal_set) {
    // Shards default to distinct journal names so N shard runs in one
    // directory never clobber each other's checkpoints.
    cli.runner.journal_path =
        cli.spec.shard_count > 1
            ? cli.spec.name + ".shard" + std::to_string(cli.spec.shard_index) +
                  "of" + std::to_string(cli.spec.shard_count) + ".journal"
            : cli.spec.name + ".journal";
  }
  if (cli.csv_path.empty()) cli.csv_path = "campaign_" + cli.spec.name + ".csv";
  if (cli.json_path.empty()) {
    cli.json_path = "BENCH_campaign_" + cli.spec.name + ".json";
  }

  if (cli.trace) telemetry::StartTracing();
  if (cli.attr) telemetry::SetAttributionEnabled(true);
  if (cli.trace_path.empty()) {
    cli.trace_path = "TRACE_campaign_" + cli.spec.name + ".json";
  }

  const campaign::Scenario scenario = campaign::BuildScenario(cli.spec);

  std::cout << "campaign " << cli.spec.name << " (" << scenario.series.size()
            << " series x " << cli.spec.fault_rates.size() << " rates, "
            << (cli.runner.adaptive
                    ? "adaptive: ci " + std::to_string(cli.spec.ci_half_width) +
                          ", budget " + std::to_string(cli.spec.max_trials)
                    : "fixed: " + std::to_string(cli.spec.fixed_trials) +
                          " trials/cell")
            << (resume ? ", resuming " + cli.runner.journal_path : "") << ")\n";

  harness::WallTimer timer;
  const campaign::CampaignResult result =
      campaign::RunCampaign(cli.spec, scenario, cli.runner);
  const double wall = timer.Seconds();

  harness::PrintSweepTable(std::cout, scenario.title, result.series, scenario.value,
                           scenario.value_label);
  harness::PrintSweepTable(std::cout, scenario.title + " (success rate)",
                           result.series, harness::TableValue::kSuccessRatePct,
                           "success rate (%)");

  // Per-cell allocation map: where the adaptive controller actually spent
  // the budget.
  std::cout << "trials per cell (* = budget hit before the CI target):\n";
  for (std::size_t s = 0; s < result.cells.size(); ++s) {
    std::printf("  %-24s", result.series[s].name.c_str());
    for (const campaign::CellStats& cell : result.cells[s]) {
      std::printf(" %5d%c", cell.trials, cell.settled ? ' ' : '*');
    }
    std::printf("\n");
  }
  std::printf(
      "total trials: %ld / %ld budget (%.1f%%), %d/%d cells settled%s\n",
      result.total_trials, result.budget_trials,
      100.0 * static_cast<double>(result.total_trials) /
          static_cast<double>(result.budget_trials > 0 ? result.budget_trials : 1),
      result.settled_cells, result.cell_count,
      result.resumed_trials > 0
          ? (" (" + std::to_string(result.resumed_trials) + " replayed from journal)")
                .c_str()
          : "");
  std::printf("wall: %.3f s, %.1f Mops/s through the injector\n", wall,
              wall > 0.0 ? result.faulty_flops / wall / 1e6 : 0.0);

  try {
    harness::WriteSweepCsv(cli.csv_path, result.series, cli.spec.guard.Active());
    std::cout << "[csv written: " << cli.csv_path << "]\n";
  } catch (const std::exception& e) {
    std::cout << "[csv skipped: " << e.what() << "]\n";
  }

  harness::PerfReport report;
  report.bench = "campaign_" + cli.spec.name;
  report.threads = harness::ResolveThreadCount(cli.runner.threads);
  report.injector_strategy = "auto";
  report.engine = "auto";
  report.rng = faulty::RngModeName(faulty::EnvRngMode());
  report.wall_seconds = wall;
  harness::PerfSection section;
  section.name = cli.runner.adaptive ? "adaptive" : "fixed";
  section.wall_seconds = wall;
  section.faulty_flops = result.faulty_flops;
  if (wall > 0.0) section.injector_mops_per_sec = result.faulty_flops / wall / 1e6;
  section.trials_run = static_cast<double>(result.total_trials);
  section.trials_budget = static_cast<double>(result.budget_trials);
  report.sections.push_back(section);
  harness::AttachCounters(&report);
  try {
    harness::WritePerfJson(cli.json_path, report);
    std::cout << "[perf json written: " << cli.json_path << "]\n";
  } catch (const std::exception& e) {
    std::cout << "[perf json skipped: " << e.what() << "]\n";
  }

  // ROBUSTIFY_TRACE=1 activates collection without the flag; dump in
  // either case so the recording is never silently lost.
  if (telemetry::TracingActive() || cli.trace) {
    if (telemetry::WriteTrace(cli.trace_path)) {
      std::cout << "[trace written: " << cli.trace_path << "]\n";
    }
  }
  if (!cli.metrics_path.empty()) {
    telemetry::MetricsContext context;
    context.bench = report.bench;
    context.threads = report.threads;
    context.injector_strategy = report.injector_strategy;
    context.engine = report.engine;
    context.rng = report.rng;
    try {
      telemetry::WriteMetricsJson(cli.metrics_path, context);
      std::cout << "[metrics json written: " << cli.metrics_path << "]\n";
    } catch (const std::exception& e) {
      std::cout << "[metrics json skipped: " << e.what() << "]\n";
    }
  }
  if (cli.attr) {
    if (cli.attr_path.empty()) {
      telemetry::FormatAttributionReport(telemetry::SnapshotAttribution(),
                                         std::cerr);
    } else if (telemetry::WriteAttributionReport(cli.attr_path)) {
      std::cout << "[attr report written: " << cli.attr_path << "]\n";
    } else {
      std::cout << "[attr report skipped: cannot write " << cli.attr_path
                << "]\n";
    }
  }
  return 0;
}

int RunMergeCommand(const std::string& target,
                    const std::vector<std::string>& flags) {
  campaign::CampaignSpec spec = LoadTargetSpec(target);
  std::string store_root = "store";
  std::string csv_path;
  bool adaptive = true;
  std::vector<std::string> journals;
  for (const std::string& arg : flags) {
    if (ApplySpecFlag(&spec, arg)) {
      continue;
    } else if (arg.rfind("--store=", 0) == 0) {
      store_root = arg.substr(8);
    } else if (arg.rfind("--csv=", 0) == 0) {
      csv_path = arg.substr(6);
    } else if (arg == "--fixed") {
      adaptive = false;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown argument: " << arg << "\n";
      return Usage();
    } else {
      journals.push_back(arg);
    }
  }
  if (journals.empty()) Die("merge: no journals given");

  store::ResultStore result_store(store_root);
  for (const std::string& path : journals) {
    const store::ResultStore::IngestStats stats =
        result_store.IngestJournal(spec, path);
    std::cout << "ingested " << path << ": " << stats.records_added
              << " new records across " << stats.cells_updated << " cells\n";
  }
  std::cout << "store: " << result_store.CampaignDir(spec) << "\n";

  const campaign::Scenario scenario = campaign::BuildScenario(spec);
  const store::StoredCells stored = result_store.Load(spec);
  const campaign::CampaignResult result =
      campaign::ReduceRecords(spec, scenario, stored.records, adaptive);
  std::printf("merged: %ld trials, %d/%d cells settled\n", result.total_trials,
              result.settled_cells, result.cell_count);
  if (!csv_path.empty()) {
    harness::WriteSweepCsv(csv_path, result.series, spec.guard.Active());
    std::cout << "[csv written: " << csv_path << "]\n";
  }
  return 0;
}

int RunQueryCommand(const std::string& target, const std::string& series,
                    const std::string& rate_text,
                    const std::vector<std::string>& flags) {
  campaign::CampaignSpec spec = LoadTargetSpec(target);
  service::Query query;
  query.series = series;
  query.rate = ParseDoubleFlag("rate", rate_text);
  std::string store_root = "store";
  std::string metrics_path;
  for (const std::string& arg : flags) {
    // --ci is a query parameter here, not a spec mutation: it asks for a
    // precision, it does not redefine the campaign.
    if (arg.rfind("--ci=", 0) == 0) {
      query.ci = ParseDoubleFlag("--ci", arg.substr(5));
      if (!(query.ci > 0.0)) Die("--ci must be > 0");
    } else if (ApplySpecFlag(&spec, arg)) {
      continue;
    } else if (arg.rfind("--store=", 0) == 0) {
      store_root = arg.substr(8);
    } else if (arg == "--no-fresh") {
      query.allow_fresh = false;
    } else if (arg == "--no-surrogate") {
      query.allow_surrogate = false;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return Usage();
    }
  }
  query.app = spec.app;

  store::ResultStore result_store(store_root);
  service::QueryService service_engine(&result_store);
  service_engine.RegisterSpec(spec, campaign::BuildScenario(spec));
  const service::Answer answer = service_engine.Handle(query);
  std::cout << service::QueryService::AnswerJson(answer) << "\n";
  if (answer.ok) {
    std::fprintf(stderr,
                 "%s / %s @ rate %g: success %.1f%% ± %.1fpp (n=%d, "
                 "source=%s%s%s)\n",
                 query.app.c_str(), query.series.c_str(), query.rate,
                 100.0 * answer.success_rate, 100.0 * answer.half_width,
                 answer.trials, answer.source.c_str(),
                 answer.settled ? ", settled" : "",
                 answer.on_grid ? "" : ", off-grid");
  } else {
    std::fprintf(stderr, "query failed: %s\n", answer.error.c_str());
  }
  if (!metrics_path.empty()) {
    telemetry::MetricsContext context;
    context.bench = "query_" + spec.name;
    telemetry::WriteMetricsJson(metrics_path, context);
  }
  return answer.ok ? 0 : 1;
}

int RunServeCommand(const std::vector<std::string>& args) {
  std::string store_root = "store";
  std::vector<std::string> targets;
  for (const std::string& arg : args) {
    if (arg.rfind("--store=", 0) == 0) {
      store_root = arg.substr(8);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown argument: " << arg << "\n";
      return Usage();
    } else {
      targets.push_back(arg);
    }
  }
  store::ResultStore result_store(store_root);
  service::QueryService service_engine(&result_store);
  // Pre-register any named targets (spec files need this — a query's "app"
  // key cannot name a file); registry apps also resolve lazily by name.
  for (const std::string& target : targets) {
    campaign::CampaignSpec spec = LoadTargetSpec(target);
    service_engine.RegisterSpec(spec, campaign::BuildScenario(spec));
  }
  service_engine.Serve(std::cin, std::cout);
  return 0;
}

int RunCalibrateCommand(const std::vector<std::string>& args) {
  std::string out_path = "machine_profile.json";
  perfmodel::CalibrationOptions options;
  for (const std::string& arg : args) {
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--quick") {
      options = perfmodel::CalibrationOptions::Quick();
    } else if (arg.rfind("--seconds=", 0) == 0) {
      options.seconds_per_probe = ParseDoubleFlag("--seconds", arg.substr(10));
      if (!(options.seconds_per_probe > 0.0)) Die("--seconds must be > 0");
    } else if (arg.rfind("--rounds=", 0) == 0) {
      options.rounds = static_cast<int>(ParseLongFlag("--rounds", arg.substr(9)));
      if (options.rounds < 1) Die("--rounds must be >= 1");
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return Usage();
    }
  }
  const perfmodel::MachineProfile profile = perfmodel::Calibrate(options);
  if (!profile.valid) Die("calibration produced an invalid profile");
  std::printf("scalar peak:      %8.3f Gops/s\n", profile.scalar_peak_gops);
  std::printf("vector peak:      %8.3f Gops/s\n", profile.vector_peak_gops);
  std::printf("triad bandwidth:  %8.3f GB/s\n", profile.triad_bandwidth_gbps);
  std::printf("sustained bw:     %8.3f GB/s\n", profile.sustained_bandwidth_gbps);
  std::printf("calibration took: %8.3f s\n", profile.calibration_seconds);
  perfmodel::WriteMachineProfile(out_path, profile);
  std::cout << "[machine profile written: " << out_path << "]\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  try {
    if (command == "list") {
      if (argc == 3 && std::string(argv[2]) == "--fingerprints") {
        return RunList(true);
      }
      if (argc != 2) return Usage();
      return RunList(false);
    }
    if (command == "run" || command == "resume") {
      if (argc < 3) return Usage();
      std::vector<std::string> flags;
      for (int i = 3; i < argc; ++i) flags.emplace_back(argv[i]);
      return RunCampaignCommand(command == "resume", argv[2], flags);
    }
    if (command == "merge") {
      if (argc < 3) return Usage();
      std::vector<std::string> flags;
      for (int i = 3; i < argc; ++i) flags.emplace_back(argv[i]);
      return RunMergeCommand(argv[2], flags);
    }
    if (command == "query") {
      if (argc < 5) return Usage();
      std::vector<std::string> flags;
      for (int i = 5; i < argc; ++i) flags.emplace_back(argv[i]);
      return RunQueryCommand(argv[2], argv[3], argv[4], flags);
    }
    if (command == "serve") {
      std::vector<std::string> args;
      for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
      return RunServeCommand(args);
    }
    if (command == "calibrate") {
      std::vector<std::string> args;
      for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
      return RunCalibrateCommand(args);
    }
  } catch (const std::exception& e) {
    std::cerr << "robustify_cli: " << e.what() << "\n";
    return 1;
  }
  return Usage();
}
