// E8 / Figure 6.6: accuracy of CG-based least squares (10 iterations) vs the
// QR / SVD / Cholesky direct baselines, as a function of fault rate.
#include "apps/configs.h"
#include "apps/least_squares.h"
#include "bench/bench_common.h"
#include "core/phases.h"
#include "signal/metrics.h"

namespace {

using namespace robustify;

harness::TrialFn Baseline(const apps::LsqProblem& problem, linalg::LsqBaseline which) {
  return [&problem, which](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const linalg::Vector<double> x = core::WithFaultyFpu(
        env, [&] { return apps::SolveLsqBaseline<faulty::Real>(problem, which); },
        &out.fpu_stats);
    out.metric = signal::RelativeError(x, problem.exact);
    out.success = out.metric < 1e-3;
    return out;
  };
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("fig6_6_cg_least_squares", argc, argv);
  bench::Banner(
      "Figure 6.6 - Accuracy of Least Squares, CG N=10 vs direct baselines",
      "Section 6.3, Figure 6.6 (lower is better)",
      "all three direct solvers collapse as the fault rate rises; 10 "
      "iterations of restarted CG track the exact answer to much higher "
      "rates (SVD is the most accurate baseline at rate ~0)");

  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(100, 10, 8);

  harness::SweepConfig sweep;
  sweep.fault_rates = {0.0, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1};
  sweep.trials = 10;
  sweep.base_seed = 66;

  const harness::TrialFn cg = [&problem](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const opt::CgResult r = core::WithFaultyFpu(
        env, [&] { return apps::SolveLsqCg<faulty::Real>(problem, apps::LsqCg(10)); },
        &out.fpu_stats);
    out.metric = signal::RelativeError(r.x, problem.exact);
    out.success = out.metric < 1e-3;
    return out;
  };

  const auto series = ctx.RunSweep(
      "cg-lsq", sweep,
      {
                 {"Base:QR", Baseline(problem, linalg::LsqBaseline::kQr)},
                 {"Base:SVD", Baseline(problem, linalg::LsqBaseline::kSvd)},
                 {"Base:Cholesky", Baseline(problem, linalg::LsqBaseline::kCholesky)},
                 {"CG,N=10", cg},
             });
  bench::EmitSweep("Accuracy of Least Squares (median relative error)", series,
                   harness::TableValue::kMedianMetric, "median rel. error w.r.t. ideal",
                   "fig6_6_cg_least_squares.csv");
  return ctx.Finish();
}
