// E8 / Figure 6.6: accuracy of CG-based least squares (10 iterations) vs the
// QR / SVD / Cholesky direct baselines, as a function of fault rate.
//
// Axis, seed, and series definitions live in the campaign registry
// (src/campaign/spec.cpp + scenarios.cpp); this main is presentation only.
#include "bench/bench_common.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"

int main(int argc, char** argv) {
  using namespace robustify;
  bench::BenchContext ctx("fig6_6_cg_least_squares", argc, argv);
  bench::Banner(
      "Figure 6.6 - Accuracy of Least Squares, CG N=10 vs direct baselines",
      "Section 6.3, Figure 6.6 (lower is better)",
      "all three direct solvers collapse as the fault rate rises; 10 "
      "iterations of restarted CG track the exact answer to much higher "
      "rates (SVD is the most accurate baseline at rate ~0)");

  const campaign::CampaignSpec& spec = campaign::RegistrySpec("fig6_6");
  const campaign::Scenario scenario = campaign::BuildScenario(spec);
  const auto series =
      ctx.RunSweep("cg-lsq", campaign::ToSweepConfig(spec), scenario.series);
  bench::EmitSweep(scenario.title, series, scenario.value, scenario.value_label,
                   scenario.csv_name);
  return ctx.Finish();
}
