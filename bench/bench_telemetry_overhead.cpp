// Telemetry overhead gate: counters on vs. off, same workload, one binary.
//
// The flight-recorder contract is that observability is (nearly) free: the
// hot paths carry at most one relaxed load + one thread-local add, and the
// injector/gap-sampler sites sit on the per-fault cold path.  This bench
// pins that down: it runs the fig6_2 least-squares sweep at realistic fault
// rates with counters disabled and enabled in interleaved A/B pairs, takes
// the min over several pairs (min-of-N discards scheduler noise), and fails
// when the "on" time exceeds the "off" time by more than 2%.
//
// With telemetry compiled out (-DROBUSTIFY_TELEMETRY=OFF) both arms run the
// same code and the gate passes trivially — which is itself the check that
// the compile-out path builds and runs.
#include <algorithm>
#include <cstdio>
#include <limits>

#include "bench/bench_common.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

int main(int argc, char** argv) {
  using namespace robustify;
  bench::BenchContext ctx("telemetry_overhead", argc, argv);
  bench::Banner("Telemetry overhead: counters on vs off (A/B, min-of-N)",
                "observability PR acceptance gate",
                "counters-on wall time within 2% of counters-off");

  campaign::CampaignSpec spec = campaign::RegistrySpec("fig6_2");
  // Realistic-rate axis: faults are rare, so the sweep spends its time on
  // the countdown hot path — exactly where telemetry overhead would hide.
  spec.fault_rates = {1e-5, 1e-4, 1e-3};
  spec.fixed_trials = 10;
  const campaign::Scenario scenario = campaign::BuildScenario(spec);
  harness::SweepConfig sweep = campaign::ToSweepConfig(spec);
  ctx.Configure(&sweep);

  constexpr int kPairs = 5;
  const double allowed_overhead = 0.02;

  // Tracing is a separate opt-in dimension; span emission runs in both arms
  // (SetCountersEnabled does not gate it) and its jitter would contaminate
  // the counters-only A/B gate, so pin it off even under ROBUSTIFY_TRACE=1.
  telemetry::StopTracing();

  // Warm-up: builds the shared sampling tables and faults in the thread
  // pool so neither arm pays first-run costs.
  harness::RunFaultRateSweep(sweep, scenario.series);

  // Machine noise (shared CI runners, frequency scaling) can only inflate
  // the measured delta, never hide real overhead below it, so a single clean
  // round is proof the true overhead sits under the gate.  Keep taking mins
  // over extra rounds until one passes or the retry budget runs out.
  constexpr int kMaxRounds = 3;
  double best_off = std::numeric_limits<double>::infinity();
  double best_on = std::numeric_limits<double>::infinity();
  double overhead = 0.0;
  int pairs_measured = 0;
  for (int round = 0; round < kMaxRounds; ++round) {
    for (int pair = 0; pair < kPairs; ++pair) {
      telemetry::SetCountersEnabled(false);
      harness::WallTimer off_timer;
      harness::RunFaultRateSweep(sweep, scenario.series);
      best_off = std::min(best_off, off_timer.Seconds());

      telemetry::SetCountersEnabled(true);
      harness::WallTimer on_timer;
      harness::RunFaultRateSweep(sweep, scenario.series);
      best_on = std::min(best_on, on_timer.Seconds());
      ++pairs_measured;
    }
    overhead = best_off > 0.0 ? best_on / best_off - 1.0 : 0.0;
    if (overhead <= allowed_overhead) break;
    std::printf("round %d: overhead %+.2f%% over gate, re-measuring\n",
                round + 1, 100.0 * overhead);
  }
  telemetry::SetCountersEnabled(true);
  std::printf("counters off: %.4f s (min of %d)\n", best_off, pairs_measured);
  std::printf("counters on:  %.4f s (min of %d)\n", best_on, pairs_measured);
  std::printf("overhead:     %+.2f%% (gate: <= %.0f%%)\n", 100.0 * overhead,
              100.0 * allowed_overhead);
  ctx.RecordSection("counters_off", best_off, 0.0);
  ctx.RecordSection("counters_on", best_on, 0.0);

  const int status = ctx.Finish();
  if (overhead > allowed_overhead) {
    std::fprintf(stderr,
                 "FAIL: counters-on overhead %.2f%% exceeds the %.0f%% gate\n",
                 100.0 * overhead, 100.0 * allowed_overhead);
    return 1;
  }
  return status;
}
