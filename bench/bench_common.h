// Shared helpers for the figure-reproduction benches.
//
// Every bench prints (a) the figure/table it reproduces, (b) a fixed-width
// table with one row per x-axis point and one column per series — the
// textual analogue of the paper's plot — and (c) writes the same data as
// CSV next to the binary for offline plotting.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "harness/csv.h"
#include "harness/sweep.h"
#include "harness/table.h"

namespace robustify::bench {

inline void Banner(const std::string& title, const std::string& paper_ref,
                   const std::string& expectation) {
  std::cout << "==================================================================\n"
            << title << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "Expected shape: " << expectation << "\n"
            << "==================================================================\n";
}

inline void EmitSweep(const std::string& title, const std::vector<harness::Series>& series,
                      harness::TableValue value, const std::string& value_label,
                      const std::string& csv_name) {
  harness::PrintSweepTable(std::cout, title, series, value, value_label);
  try {
    harness::WriteSweepCsv(csv_name, series);
    std::cout << "[csv written: " << csv_name << "]\n";
  } catch (const std::exception& e) {
    std::cout << "[csv skipped: " << e.what() << "]\n";
  }
  std::cout << "\n";
}

}  // namespace robustify::bench
