// Shared helpers for the figure-reproduction benches.
//
// Every bench prints (a) the figure/table it reproduces, (b) a fixed-width
// table with one row per x-axis point and one column per series — the
// textual analogue of the paper's plot — (c) writes the same data as CSV
// next to the binary, and (d) emits a BENCH_<name>.json perf report (wall
// time, injector throughput, speedup vs. serial when requested).
//
// Common CLI flags (parsed by BenchContext):
//   --trials=N         override the repetition count of every sweep
//   --rates=a,b,c      override the fault-rate axis of every sweep
//   --threads=N        worker threads (default: ROBUSTIFY_THREADS, else all)
//   --json=PATH        perf report path (default BENCH_<name>.json)
//   --compare-serial   rerun each sweep on one thread and report the speedup
//   --trace[=PATH]     flight-recorder spans -> Chrome trace JSON
//                      (default TRACE_<name>.json; load in Perfetto)
//   --metrics=PATH     merged counter/histogram snapshot + provenance JSON
//   --attr[=PATH]      wall-time attribution ledger -> report on stderr
//                      (or to PATH when given); per-category self/total
//   --progress         heartbeat lines on stderr (units done, trials/s, ETA)
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "harness/csv.h"
#include "harness/parallel.h"
#include "harness/perf_report.h"
#include "harness/sweep.h"
#include "harness/table.h"
#include "harness/timer.h"
#include "telemetry/metrics_export.h"
#include "telemetry/progress.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace robustify::bench {

inline void Banner(const std::string& title, const std::string& paper_ref,
                   const std::string& expectation) {
  std::cout << "==================================================================\n"
            << title << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "Expected shape: " << expectation << "\n"
            << "==================================================================\n";
}

inline void EmitSweep(const std::string& title, const std::vector<harness::Series>& series,
                      harness::TableValue value, const std::string& value_label,
                      const std::string& csv_name) {
  harness::PrintSweepTable(std::cout, title, series, value, value_label);
  try {
    harness::WriteSweepCsv(csv_name, series);
    std::cout << "[csv written: " << csv_name << "]\n";
  } catch (const std::exception& e) {
    std::cout << "[csv skipped: " << e.what() << "]\n";
  }
  std::cout << "\n";
}

struct BenchOptions {
  int trials = 0;              // 0: keep each sweep's default
  std::vector<double> rates;   // empty: keep each sweep's default
  int threads = 0;             // 0: auto (ROBUSTIFY_THREADS, else hardware)
  std::string json_path;       // empty: BENCH_<name>.json
  bool compare_serial = false;
  bool trace = false;          // --trace[=PATH]: span collection + JSON dump
  std::string trace_path;      // empty with trace: TRACE_<name>.json
  std::string metrics_path;    // empty: no --metrics export
  bool attr = false;           // --attr[=PATH]: wall-time attribution ledger
  std::string attr_path;       // empty with attr: report goes to stderr
};

// Parses the shared flags, applies sweep overrides, times every sweep, and
// accumulates the perf report written by Finish().
class BenchContext {
 public:
  BenchContext(const std::string& name, int argc, char** argv) {
    report_.bench = name;
    // Record the *resolved* override, not the raw env string: unknown
    // values silently mean kAuto and must be labeled as such.
    switch (faulty::EnvInjectorStrategy()) {
      case faulty::FaultInjector::Strategy::kSkipAhead:
        report_.injector_strategy = "skip-ahead";
        break;
      case faulty::FaultInjector::Strategy::kPerOp:
        report_.injector_strategy = "per-op";
        break;
      default:
        report_.injector_strategy = "auto";
        break;
    }
    switch (faulty::EnvEngine()) {
      case faulty::Engine::kBlock:
        report_.engine = "block";
        break;
      case faulty::Engine::kScalar:
        report_.engine = "scalar";
        break;
      default:
        report_.engine = "auto";  // resolves to block at dispatch time
        break;
    }
    // Unset (kAuto) maps to "" and is omitted from the report.
    report_.rng = faulty::RngModeName(faulty::EnvRngMode());
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--trials=", 0) == 0) {
        options_.trials = ParseIntOrDie("--trials", arg.substr(9));
      } else if (arg.rfind("--rates=", 0) == 0) {
        if (!ParseRates(arg.substr(8), &options_.rates) || options_.rates.empty()) {
          std::cerr << "malformed --rates list: " << arg.substr(8)
                    << " (expected comma-separated numbers)\n";
          std::exit(2);
        }
      } else if (arg.rfind("--threads=", 0) == 0) {
        options_.threads = ParseIntOrDie("--threads", arg.substr(10));
      } else if (arg.rfind("--json=", 0) == 0) {
        options_.json_path = arg.substr(7);
      } else if (arg == "--compare-serial") {
        options_.compare_serial = true;
      } else if (arg == "--trace") {
        options_.trace = true;
      } else if (arg.rfind("--trace=", 0) == 0) {
        options_.trace = true;
        options_.trace_path = arg.substr(8);
      } else if (arg.rfind("--metrics=", 0) == 0) {
        options_.metrics_path = arg.substr(10);
      } else if (arg == "--attr") {
        options_.attr = true;
      } else if (arg.rfind("--attr=", 0) == 0) {
        options_.attr = true;
        options_.attr_path = arg.substr(7);
      } else if (arg == "--progress") {
        telemetry::EnableProgress();
      } else {
        std::cerr << "unknown argument: " << arg << "\n"
                  << "usage: " << name
                  << " [--trials=N] [--rates=a,b,c] [--threads=N] [--json=PATH]"
                     " [--compare-serial] [--trace[=PATH]] [--metrics=PATH]"
                     " [--attr[=PATH]] [--progress]\n";
        std::exit(2);
      }
    }
    if (options_.trace) telemetry::StartTracing();
    if (options_.attr) telemetry::SetAttributionEnabled(true);
  }

  const BenchOptions& options() const { return options_; }

  // Trial-count override for benches with bespoke (non-sweep) loops.
  int TrialsOr(int default_trials) const {
    return options_.trials > 0 ? options_.trials : default_trials;
  }

  // Applies the CLI overrides to a sweep configuration.
  void Configure(harness::SweepConfig* sweep) const {
    if (options_.trials > 0) sweep->trials = options_.trials;
    if (!options_.rates.empty()) sweep->fault_rates = options_.rates;
    if (options_.threads != 0) sweep->threads = options_.threads;
  }

  // Configures, times, and runs one sweep; records a perf section.  With
  // --compare-serial the sweep is rerun on one thread to measure speedup.
  std::vector<harness::Series> RunSweep(const std::string& label,
                                        harness::SweepConfig sweep,
                                        const std::vector<harness::NamedTrial>& trials) {
    Configure(&sweep);
    harness::WallTimer timer;
    std::vector<harness::Series> series = harness::RunFaultRateSweep(sweep, trials);
    harness::PerfSection section;
    section.name = label;
    section.wall_seconds = timer.Seconds();
    for (const harness::Series& s : series) {
      for (const harness::SeriesPoint& p : s.points) {
        section.faulty_flops += p.summary.mean_faulty_flops * p.summary.trials;
      }
    }
    if (section.wall_seconds > 0.0) {
      section.injector_mops_per_sec =
          section.faulty_flops / section.wall_seconds / 1e6;
    }
    if (options_.compare_serial) {
      harness::SweepConfig serial = sweep;
      serial.threads = 1;
      harness::WallTimer serial_timer;
      harness::RunFaultRateSweep(serial, trials);
      section.serial_wall_seconds = serial_timer.Seconds();
      if (section.wall_seconds > 0.0) {
        section.speedup_vs_serial = section.serial_wall_seconds / section.wall_seconds;
      }
    }
    std::cout << "[perf] " << label << ": " << section.wall_seconds << " s, "
              << section.injector_mops_per_sec << " Mops/s through the injector";
    if (section.speedup_vs_serial > 0.0) {
      std::cout << ", " << section.speedup_vs_serial << "x vs serial";
    }
    std::cout << "\n";
    report_.sections.push_back(section);
    return series;
  }

  // Records a bespoke timed section (benches without a sweep grid).
  void RecordSection(const std::string& label, double wall_seconds,
                     double faulty_flops) {
    harness::PerfSection section;
    section.name = label;
    section.wall_seconds = wall_seconds;
    section.faulty_flops = faulty_flops;
    if (wall_seconds > 0.0 && faulty_flops > 0.0) {
      section.injector_mops_per_sec = faulty_flops / wall_seconds / 1e6;
    }
    report_.sections.push_back(section);
  }

  // The most recently recorded section, for benches that annotate it after
  // the fact (bench_roofline fills the roofline fields).  nullptr before
  // the first section.
  harness::PerfSection* LastSection() {
    return report_.sections.empty() ? nullptr : &report_.sections.back();
  }

  // Writes the perf report (and any requested trace/metrics exports); call
  // as the last statement of main().
  int Finish() {
    report_.threads = harness::ResolveThreadCount(options_.threads);
    report_.wall_seconds = total_.Seconds();
    harness::AttachCounters(&report_);
    const std::string path =
        options_.json_path.empty() ? "BENCH_" + report_.bench + ".json"
                                   : options_.json_path;
    try {
      harness::WritePerfJson(path, report_);
      std::cout << "[perf json written: " << path << "]\n";
    } catch (const std::exception& e) {
      std::cout << "[perf json skipped: " << e.what() << "]\n";
    }
    // ROBUSTIFY_TRACE=1 activates collection without the flag; dump in
    // either case so the recording is never silently lost.
    if (telemetry::TracingActive() || options_.trace) {
      const std::string trace_path =
          options_.trace_path.empty() ? "TRACE_" + report_.bench + ".json"
                                      : options_.trace_path;
      if (telemetry::WriteTrace(trace_path)) {
        std::cout << "[trace written: " << trace_path << "]\n";
      }
    }
    if (!options_.metrics_path.empty()) {
      telemetry::MetricsContext context;
      context.bench = report_.bench;
      context.threads = report_.threads;
      context.injector_strategy = report_.injector_strategy;
      context.engine = report_.engine;
      context.rng = report_.rng;
      try {
        telemetry::WriteMetricsJson(options_.metrics_path, context);
        std::cout << "[metrics json written: " << options_.metrics_path << "]\n";
      } catch (const std::exception& e) {
        std::cout << "[metrics json skipped: " << e.what() << "]\n";
      }
    }
    if (options_.attr) {
      if (options_.attr_path.empty()) {
        telemetry::FormatAttributionReport(telemetry::SnapshotAttribution(),
                                           std::cerr);
      } else if (telemetry::WriteAttributionReport(options_.attr_path)) {
        std::cout << "[attr report written: " << options_.attr_path << "]\n";
      } else {
        std::cout << "[attr report skipped: cannot write "
                  << options_.attr_path << "]\n";
      }
    }
    return 0;
  }

 private:
  // Strict integer parse: trailing garbage must reject the flag, not
  // silently truncate into a plausible-but-wrong configuration.
  static int ParseIntOrDie(const char* flag, const std::string& value) {
    char* end = nullptr;
    const long parsed = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
      std::cerr << "malformed " << flag << " value: " << value
                << " (expected an integer)\n";
      std::exit(2);
    }
    return static_cast<int>(parsed);
  }

  // Strict comma-separated parse: any trailing garbage rejects the whole
  // flag (a silently-truncated rate axis would still produce a plausible
  // sweep and a wrong perf baseline).
  static bool ParseRates(const std::string& csv, std::vector<double>* rates) {
    rates->clear();
    const char* p = csv.c_str();
    while (*p != '\0') {
      char* end = nullptr;
      const double v = std::strtod(p, &end);
      if (end == p) return false;
      rates->push_back(v);
      if (*end == ',') {
        p = end + 1;
      } else if (*end == '\0') {
        p = end;
      } else {
        return false;
      }
    }
    return !rates->empty();
  }

  BenchOptions options_;
  harness::PerfReport report_;
  harness::WallTimer total_;
};

}  // namespace robustify::bench
