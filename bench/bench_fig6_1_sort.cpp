// E3 / Figure 6.1: success rate of sorting as a function of fault rate.
//
// Series (paper legend): Base (comparison sort), SGD (plain, linear step
// scaling), SGD+AS,LS and SGD+AS,SQS — 10 000 descent iterations, 5-element
// arrays, success = entire array sorted exactly (NaN or mis-order = failure).
#include <random>

#include "apps/configs.h"
#include "apps/sort_app.h"
#include "bench/bench_common.h"
#include "core/phases.h"

namespace {

using namespace robustify;

std::vector<double> MakeInput(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> v(5);
  for (double& x : v) x = dist(rng);
  return v;
}

harness::TrialFn SortVariant(const apps::LpSolveConfig& config) {
  return [config](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const std::vector<double> input = MakeInput(env.seed * 7919);
    const apps::RobustSortResult r = core::WithFaultyFpu(
        env, [&] { return apps::RobustSort<faulty::Real>(input, config); },
        &out.fpu_stats);
    out.success = r.valid && apps::IsSortedCopyOf(r.output, input);
    return out;
  };
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("fig6_1_sort", argc, argv);
  bench::Banner(
      "Figure 6.1 - Accuracy of Sort (10000 iterations)",
      "Section 6.1, Figure 6.1",
      "Base collapses as fault rate grows; SGD with linear scaling (LS) "
      "performs poorly; sqrt scaling (SQS) keeps success high even at large "
      "fault rates");

  harness::SweepConfig sweep;
  sweep.fault_rates = {0.0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5};
  sweep.trials = 10;
  sweep.base_seed = 61;

  const harness::TrialFn base = [](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const std::vector<double> input = MakeInput(env.seed * 7919);
    const std::vector<double> sorted = core::WithFaultyFpu(
        env, [&] { return apps::BaselineSort<faulty::Real>(input); },
        &out.fpu_stats);
    out.success = apps::IsSortedCopyOf(sorted, input);
    return out;
  };

  const auto series = ctx.RunSweep(
      "sort", sweep,
      {
                 {"Base", base},
                 {"SGD", SortVariant(apps::SortSgdLs())},
                 {"SGD+AS,LS", SortVariant(apps::SortSgdAsLs())},
                 {"SGD+AS,SQS", SortVariant(apps::SortSgdAsSqs())},
             });
  bench::EmitSweep("Accuracy of Sort - 10000 Iterations", series,
                   harness::TableValue::kSuccessRatePct, "success rate (%)",
                   "fig6_1_sort.csv");
  return ctx.Finish();
}
