// E3 / Figure 6.1: success rate of sorting as a function of fault rate.
//
// Series (paper legend): Base (comparison sort), SGD (plain, linear step
// scaling), SGD+AS,LS and SGD+AS,SQS — 10 000 descent iterations, 5-element
// arrays, success = entire array sorted exactly (NaN or mis-order = failure).
//
// Axis, seed, and series definitions live in the campaign registry
// (src/campaign/spec.cpp + scenarios.cpp); this main is presentation only.
#include "bench/bench_common.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"

int main(int argc, char** argv) {
  using namespace robustify;
  bench::BenchContext ctx("fig6_1_sort", argc, argv);
  bench::Banner(
      "Figure 6.1 - Accuracy of Sort (10000 iterations)",
      "Section 6.1, Figure 6.1",
      "Base collapses as fault rate grows; SGD with linear scaling (LS) "
      "performs poorly; sqrt scaling (SQS) keeps success high even at large "
      "fault rates");

  const campaign::CampaignSpec& spec = campaign::RegistrySpec("fig6_1");
  const campaign::Scenario scenario = campaign::BuildScenario(spec);
  const auto series =
      ctx.RunSweep("sort", campaign::ToSweepConfig(spec), scenario.series);
  bench::EmitSweep(scenario.title, series, scenario.value, scenario.value_label,
                   scenario.csv_name);
  return ctx.Finish();
}
