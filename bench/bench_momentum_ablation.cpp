// E10 / Section 6.2.2 (text): momentum ablation.
//
// The paper reports that a momentum of 0.5 improved sorting success by
// 20-40% relative to basic gradient descent, but gave only a marginal
// (<5%) benefit for bipartite matching.
#include <random>

#include "apps/configs.h"
#include "apps/matching_app.h"
#include "apps/sort_app.h"
#include "bench/bench_common.h"
#include "core/phases.h"
#include "graph/generators.h"

namespace {

using namespace robustify;

std::vector<double> MakeInput(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> v(5);
  for (double& x : v) x = dist(rng);
  return v;
}

harness::TrialFn SortVariant(apps::LpSolveConfig config) {
  return [config](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const std::vector<double> input = MakeInput(env.seed * 7919);
    const apps::RobustSortResult r = core::WithFaultyFpu(
        env, [&] { return apps::RobustSort<faulty::Real>(input, config); },
        &out.fpu_stats);
    out.success = r.valid && apps::IsSortedCopyOf(r.output, input);
    return out;
  };
}

harness::TrialFn MatchVariant(const graph::BipartiteGraph& g,
                              apps::LpSolveConfig config) {
  return [&g, config](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const apps::MatchingResult r = core::WithFaultyFpu(
        env, [&] { return apps::RobustMatching<faulty::Real>(g, config); },
        &out.fpu_stats);
    out.success = r.valid && apps::MatchesOptimal(g, r.matching);
    return out;
  };
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("momentum_ablation", argc, argv);
  bench::Banner(
      "Momentum ablation (Section 6.2.2)",
      "Section 6.2.2 (text): momentum 0.5 improves sorting success 20-40%, "
      "matching by <5%",
      "sorting gains substantially from momentum at moderate/high fault "
      "rates; matching barely moves");

  harness::SweepConfig sweep;
  sweep.fault_rates = {0.1, 0.3, 0.5};
  sweep.trials = 10;
  sweep.base_seed = 70;

  apps::LpSolveConfig sort_plain = apps::SortSgdAsSqs();
  apps::LpSolveConfig sort_momentum = sort_plain;
  sort_momentum.sgd.momentum_beta = 0.5;

  const auto sort_series = ctx.RunSweep(
      "sort-momentum", sweep,
      {
                 {"sort (no momentum)", SortVariant(sort_plain)},
                 {"sort (momentum 0.5)", SortVariant(sort_momentum)},
             });
  bench::EmitSweep("Sorting: momentum ablation", sort_series,
                   harness::TableValue::kSuccessRatePct, "success rate (%)",
                   "momentum_sort.csv");

  const graph::BipartiteGraph g = graph::RandomBipartite(5, 6, 30, 3);
  apps::LpSolveConfig match_plain = apps::MatchingSgdAsSqs();
  apps::LpSolveConfig match_momentum = match_plain;
  match_momentum.sgd.momentum_beta = 0.5;

  const auto match_series = ctx.RunSweep(
      "matching-momentum", sweep,
      {
                 {"matching (no momentum)", MatchVariant(g, match_plain)},
                 {"matching (momentum 0.5)", MatchVariant(g, match_momentum)},
             });
  bench::EmitSweep("Matching: momentum ablation", match_series,
                   harness::TableValue::kSuccessRatePct, "success rate (%)",
                   "momentum_matching.csv");
  return ctx.Finish();
}
