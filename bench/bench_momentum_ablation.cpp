// E10 / Section 6.2.2 (text): momentum ablation.
//
// The paper reports that a momentum of 0.5 improved sorting success by
// 20-40% relative to basic gradient descent, but gave only a marginal
// (<5%) benefit for bipartite matching.
//
// Axis, seed, and series definitions live in the campaign registry
// (src/campaign/spec.cpp + scenarios.cpp); this main is presentation only.
#include "bench/bench_common.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"

int main(int argc, char** argv) {
  using namespace robustify;
  bench::BenchContext ctx("momentum_ablation", argc, argv);
  bench::Banner(
      "Momentum ablation (Section 6.2.2)",
      "Section 6.2.2 (text): momentum 0.5 improves sorting success 20-40%, "
      "matching by <5%",
      "sorting gains substantially from momentum at moderate/high fault "
      "rates; matching barely moves");

  for (const auto& [label, name] :
       {std::pair<const char*, const char*>{"sort-momentum", "momentum_sort"},
        std::pair<const char*, const char*>{"matching-momentum",
                                            "momentum_matching"}}) {
    const campaign::CampaignSpec& spec = campaign::RegistrySpec(name);
    const campaign::Scenario scenario = campaign::BuildScenario(spec);
    const auto series =
        ctx.RunSweep(label, campaign::ToSweepConfig(spec), scenario.series);
    bench::EmitSweep(scenario.title, series, scenario.value, scenario.value_label,
                     scenario.csv_name);
  }
  return ctx.Finish();
}
