// E14 / Section 4.7: eigenpairs via Rayleigh-quotient ascent with deflation.
//
// The paper sketches this formulation without measurements; this bench
// sweeps the fault rate and reports the relative eigenvalue error of the
// top-3 pairs against the reliable Jacobi oracle.
//
// Axis, seed, and series definitions live in the campaign registry
// (src/campaign/spec.cpp + scenarios.cpp); this main is presentation only.
#include "bench/bench_common.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"

int main(int argc, char** argv) {
  using namespace robustify;
  bench::BenchContext ctx("eigen_rayleigh", argc, argv);
  bench::Banner(
      "Eigenpairs via Rayleigh quotient ascent (Section 4.7)",
      "Section 4.7 ('Other numerical problems'); no paper figure",
      "eigenvalue error grows smoothly with fault rate instead of "
      "collapsing; the ascent remains finite at every rate");

  const campaign::CampaignSpec& spec = campaign::RegistrySpec("eigen_rayleigh");
  const campaign::Scenario scenario = campaign::BuildScenario(spec);
  const auto series =
      ctx.RunSweep("rayleigh", campaign::ToSweepConfig(spec), scenario.series);
  bench::EmitSweep(scenario.title, series, scenario.value, scenario.value_label,
                   scenario.csv_name);
  return ctx.Finish();
}
