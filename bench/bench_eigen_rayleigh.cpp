// E14 / Section 4.7: eigenpairs via Rayleigh-quotient ascent with deflation.
//
// The paper sketches this formulation without measurements; this bench
// sweeps the fault rate and reports the relative eigenvalue error of the
// top-3 pairs against the reliable Jacobi oracle.
#include <cmath>
#include <random>

#include "apps/eigen_app.h"
#include "bench/bench_common.h"
#include "core/phases.h"
#include "linalg/random.h"

namespace {

using namespace robustify;

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("eigen_rayleigh", argc, argv);
  bench::Banner(
      "Eigenpairs via Rayleigh quotient ascent (Section 4.7)",
      "Section 4.7 ('Other numerical problems'); no paper figure",
      "eigenvalue error grows smoothly with fault rate instead of "
      "collapsing; the ascent remains finite at every rate");

  std::mt19937_64 rng(72);
  const linalg::Matrix<double> a = linalg::RandomSymmetricMatrix(8, rng);
  const auto oracle = apps::JacobiEigenSym(a);

  harness::SweepConfig sweep;
  sweep.fault_rates = {0.0, 0.001, 0.01, 0.05, 0.1};
  sweep.trials = 6;
  sweep.base_seed = 72;

  const auto variant = [&](std::size_t k) {
    return [&a, &oracle, k](const core::FaultEnvironment& env) {
      harness::TrialOutcome out;
      apps::RayleighOptions options;
      options.iterations = 400;
      const auto pairs = core::WithFaultyFpu(
          env, [&] { return apps::TopEigenpairsRayleigh<faulty::Real>(a, k + 1, options); },
          &out.fpu_stats);
      const double got = pairs.back().value;
      const double want = oracle[k].value;
      out.metric = std::abs(got - want) / std::max(1e-9, std::abs(want));
      out.success = out.metric < 0.05;
      return out;
    };
  };

  const auto series = ctx.RunSweep(
      "rayleigh", sweep,
      {
                 {"lambda_1", variant(0)},
                 {"lambda_2", variant(1)},
                 {"lambda_3", variant(2)},
             });
  bench::EmitSweep("Rayleigh eigenpairs: median relative eigenvalue error", series,
                   harness::TableValue::kMedianMetric, "median |l - l*| / |l*|",
                   "eigen_rayleigh.csv");
  return ctx.Finish();
}
