// E16 / Section 4.7: robust SVM training — an "intrinsically robust"
// data-fitting workload.  The paper names SVM fitting as a variational
// problem with existing stochastic gradient solvers (Pegasos); this bench
// sweeps the fault rate and reports training accuracy of the separator.
#include "apps/svm_app.h"
#include "bench/bench_common.h"
#include "core/phases.h"
#include "core/variants.h"

namespace {

using namespace robustify;

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("svm", argc, argv);
  bench::Banner(
      "Robust SVM training (Section 4.7)",
      "Section 4.7 ('Other numerical problems'); no paper figure",
      "classification accuracy is intrinsically robust: it stays near 100% "
      "at fault rates that destroy exact-output kernels, and degrades "
      "smoothly only at extreme rates");

  const apps::SvmDataset easy = apps::MakeBlobsDataset(40, 6, 4.0, 11);
  const apps::SvmDataset hard = apps::MakeBlobsDataset(40, 6, 1.5, 12);

  harness::SweepConfig sweep;
  sweep.fault_rates = {0.0, 0.01, 0.05, 0.1, 0.3, 0.5};
  sweep.trials = 6;
  sweep.base_seed = 74;

  const auto variant = [](const apps::SvmDataset& data) {
    return [&data](const core::FaultEnvironment& env) {
      harness::TrialOutcome out;
      const apps::SvmResult r = core::WithFaultyFpu(
          env,
          [&] {
            return apps::TrainSvm<faulty::Real>(
                data, 0.01, core::MakeSgd(300, 1.0, opt::StepScaling::kSqrt));
          },
          &out.fpu_stats);
      out.metric = 1.0 - r.train_accuracy;  // error rate, lower is better
      out.success = r.train_accuracy >= 0.95;
      return out;
    };
  };

  const auto series = ctx.RunSweep(
      "svm", sweep,
      {
                 {"margin=4.0", variant(easy)},
                 {"margin=1.5", variant(hard)},
             });
  bench::EmitSweep("SVM training error rate vs fault rate", series,
                   harness::TableValue::kMedianMetric, "median training error rate",
                   "svm.csv");
  return ctx.Finish();
}
