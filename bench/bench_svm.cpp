// E16 / Section 4.7: robust SVM training — an "intrinsically robust"
// data-fitting workload.  The paper names SVM fitting as a variational
// problem with existing stochastic gradient solvers (Pegasos); this bench
// sweeps the fault rate and reports training accuracy of the separator.
//
// Axis, seed, and series definitions live in the campaign registry
// (src/campaign/spec.cpp + scenarios.cpp); this main is presentation only.
#include "bench/bench_common.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"

int main(int argc, char** argv) {
  using namespace robustify;
  bench::BenchContext ctx("svm", argc, argv);
  bench::Banner(
      "Robust SVM training (Section 4.7)",
      "Section 4.7 ('Other numerical problems'); no paper figure",
      "classification accuracy is intrinsically robust: it stays near 100% "
      "at fault rates that destroy exact-output kernels, and degrades "
      "smoothly only at extreme rates");

  const campaign::CampaignSpec& spec = campaign::RegistrySpec("svm");
  const campaign::Scenario scenario = campaign::BuildScenario(spec);
  const auto series =
      ctx.RunSweep("svm", campaign::ToSweepConfig(spec), scenario.series);
  bench::EmitSweep(scenario.title, series, scenario.value, scenario.value_label,
                   scenario.csv_name);
  return ctx.Finish();
}
