// E6 / Figure 6.4: success rate of bipartite matching vs fault rate.
//
// Series (paper legend): Base (Hungarian, the paper used OpenCV's solver),
// SGD,LS, SGD+AS,LS, SGD+AS,SQS — 10 000 iterations on the paper's graph
// family (11 nodes, 30 edges); success = exactly the optimal matching.
//
// The paper's headline for this figure: the plain quadratic-penalty SGD
// variants plateau *below 50%* regardless of aggressive stepping / step
// scaling — the enhancements of Figure 6.5 are needed to fix that.
#include "apps/configs.h"
#include "apps/matching_app.h"
#include "bench/bench_common.h"
#include "core/phases.h"
#include "graph/generators.h"

namespace {

using namespace robustify;

harness::TrialFn RobustVariant(const graph::BipartiteGraph& g,
                               const apps::LpSolveConfig& config) {
  return [&g, config](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const apps::MatchingResult r = core::WithFaultyFpu(
        env, [&] { return apps::RobustMatching<faulty::Real>(g, config); },
        &out.fpu_stats);
    out.success = r.valid && apps::MatchesOptimal(g, r.matching);
    return out;
  };
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("fig6_4_matching", argc, argv);
  bench::Banner(
      "Figure 6.4 - Accuracy of Matching (10000 iterations)",
      "Section 6.1, Figure 6.4",
      "the Hungarian baseline degrades with fault rate; plain "
      "quadratic-penalty SGD shows little degradation with rate but its "
      "absolute success rate stays capped well below 100% (paper: <50%)");

  // The paper's graph: 11 nodes, 30 edges (complete 5x6 bipartite).
  const graph::BipartiteGraph g = graph::RandomBipartite(5, 6, 30, 3);

  harness::SweepConfig sweep;
  sweep.fault_rates = {0.0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5};
  sweep.trials = 10;
  sweep.base_seed = 64;

  const harness::TrialFn base = [&g](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const graph::Matching m = core::WithFaultyFpu(
        env, [&] { return apps::BaselineMatching<faulty::Real>(g); },
        &out.fpu_stats);
    out.success = apps::MatchesOptimal(g, m);
    return out;
  };

  const auto series = ctx.RunSweep(
      "matching", sweep,
      {
                 {"Base", base},
                 {"SGD,LS", RobustVariant(g, apps::MatchingBasicLs())},
                 {"SGD+AS,LS", RobustVariant(g, apps::MatchingSgdAsLs())},
                 {"SGD+AS,SQS", RobustVariant(g, apps::MatchingSgdAsSqs())},
             });
  bench::EmitSweep("Accuracy of Matching - 10000 Iterations", series,
                   harness::TableValue::kSuccessRatePct, "success rate (%)",
                   "fig6_4_matching.csv");
  return ctx.Finish();
}
