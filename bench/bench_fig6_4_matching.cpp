// E6 / Figure 6.4: success rate of bipartite matching vs fault rate.
//
// Series (paper legend): Base (Hungarian, the paper used OpenCV's solver),
// SGD,LS, SGD+AS,LS, SGD+AS,SQS — 10 000 iterations on the paper's graph
// family (11 nodes, 30 edges); success = exactly the optimal matching.
//
// The paper's headline for this figure: the plain quadratic-penalty SGD
// variants plateau *below 50%* regardless of aggressive stepping / step
// scaling — the enhancements of Figure 6.5 are needed to fix that.
//
// Axis, seed, and series definitions live in the campaign registry
// (src/campaign/spec.cpp + scenarios.cpp); this main is presentation only.
#include "bench/bench_common.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"

int main(int argc, char** argv) {
  using namespace robustify;
  bench::BenchContext ctx("fig6_4_matching", argc, argv);
  bench::Banner(
      "Figure 6.4 - Accuracy of Matching (10000 iterations)",
      "Section 6.1, Figure 6.4",
      "the Hungarian baseline degrades with fault rate; plain "
      "quadratic-penalty SGD shows little degradation with rate but its "
      "absolute success rate stays capped well below 100% (paper: <50%)");

  const campaign::CampaignSpec& spec = campaign::RegistrySpec("fig6_4");
  const campaign::Scenario scenario = campaign::BuildScenario(spec);
  const auto series =
      ctx.RunSweep("matching", campaign::ToSweepConfig(spec), scenario.series);
  bench::EmitSweep(scenario.title, series, scenario.value, scenario.value_label,
                   scenario.csv_name);
  return ctx.Finish();
}
