// E2 / Figure 5.2: FPU error rate as supply voltage is overscaled.
//
// Prints the calibrated voltage -> errors/OP curve used by the energy
// experiments, plus the inverse lookup (how far one may overscale for a
// given tolerable fault rate).
#include <cstdio>

#include "bench/bench_common.h"
#include "faulty/voltage_model.h"

int main(int argc, char** argv) {
  robustify::bench::BenchContext ctx("fig5_2_voltage_error_rate", argc, argv);
  robustify::bench::Banner(
      "Figure 5.2 - FPU error rate vs supply voltage",
      "Chapter 5, Figure 5.2 (circuit-level voltage/error-rate curve)",
      "near-zero error rate at nominal voltage, steep orders-of-magnitude "
      "rise below the guardband knee (~0.9 V)");

  const robustify::faulty::VoltageModel model;
  std::printf("%-12s %-14s\n", "voltage(V)", "errors/OP");
  std::printf("---------------------------\n");
  for (double v = 0.60; v <= 1.001; v += 0.025) {
    std::printf("%-12.3f %-14.3e\n", v, model.error_rate(v));
  }

  std::printf("\nInverse lookup (overscaling headroom):\n");
  std::printf("%-18s %-12s\n", "tolerated rate", "voltage(V)");
  std::printf("-------------------------------\n");
  for (const double rate : {1e-9, 1e-7, 1e-5, 1e-3, 1e-2, 1e-1}) {
    std::printf("%-18.1e %-12.4f\n", rate, model.voltage_for_error_rate(rate));
  }
  return ctx.Finish();
}
