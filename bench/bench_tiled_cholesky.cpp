// Scaling grid for the tiled faulty Cholesky engine (linalg/tiled.h):
// problem size x tile size x in-solve workers, timed under injection.
//
// Two things to read off the table: (a) wall time vs worker count — the
// in-trial task parallelism the monolithic baselines cannot offer — and
// (b) the determinism contract, checked inline: every (n, tile) cell must
// produce byte-identical solutions at every worker count.
//
// Default grid is modest so the bench stays test-suite friendly; pass
// --trials=N for more repetitions per cell (min wall time is reported).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/least_squares.h"
#include "bench/bench_common.h"

namespace {

using namespace robustify;

// Byte-level equality: the contract is bit-identical, not approximately so.
bool SameBits(const linalg::Vector<double>& a, const linalg::Vector<double>& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("tiled_cholesky", argc, argv);
  const int reps = std::max(1, ctx.TrialsOr(1));
  bench::Banner(
      "Tiled faulty Cholesky - scaling grid (n x tile x workers)",
      "repo extension: in-trial task parallelism over the faulty BLAS",
      "wall time falls (or holds, on few cores) as workers grow while every "
      "cell's solution stays byte-identical across worker counts");

  const std::vector<std::size_t> sizes = {256, 512};
  const std::vector<std::size_t> tiles = {32, 64, 128};
  const std::vector<int> workers = {1, 2, 4};
  const double fault_rate = 1e-6;

  std::printf("%-6s %-6s %-8s %-12s %-14s %-10s\n", "n", "tile", "workers",
              "wall (s)", "faulty flops", "identical");
  std::printf("------------------------------------------------------------\n");

  linalg::TiledLsqEngine<faulty::Real> engine;
  for (const std::size_t n : sizes) {
    const apps::LsqProblem problem = apps::MakeRandomLsqProblem(n + 64, n, 77 + n);
    for (const std::size_t tile : tiles) {
      if (tile > n) continue;
      linalg::Vector<double> reference;
      for (const int w : workers) {
        core::FaultEnvironment env;
        env.fault_rate = fault_rate;
        env.seed = 1234;
        linalg::TiledOptions options;
        options.tile = tile;
        options.threads = w;
        options.fault = apps::TileConfigFromEnv(env);
        linalg::Vector<double> x;
        faulty::ContextStats stats;
        double best = 0.0;
        for (int r = 0; r < reps; ++r) {
          harness::WallTimer timer;
          engine.SolveCholesky(problem.a, problem.b, options, &x, &stats);
          const double s = timer.Seconds();
          if (r == 0 || s < best) best = s;
        }
        const bool first = reference.size() == 0;
        if (first) reference = x;
        const bool identical = SameBits(x, reference);
        std::printf("%-6zu %-6zu %-8d %-12.4f %-14.3e %-10s\n", n, tile, w, best,
                    static_cast<double>(stats.faulty_flops),
                    identical ? "yes" : "NO");
        char label[64];
        std::snprintf(label, sizeof(label), "chol_n%zu_b%zu_w%d", n, tile, w);
        ctx.RecordSection(label, best, static_cast<double>(stats.faulty_flops));
        if (!identical) {
          std::fprintf(stderr, "determinism violation at n=%zu tile=%zu w=%d\n", n,
                       tile, w);
          return 1;
        }
      }
    }
  }
  return ctx.Finish();
}
