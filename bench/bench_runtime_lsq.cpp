// E11 / Section 6.3 (text): runtime comparison of the least-squares solvers.
//
// The paper reports that "the CG implementation was on average 30% faster
// than the QR/SVD baselines, and 10 iterations of the CG were comparable to
// the execution time of the Cholesky baseline".  This bench measures wall
// time per solve (clean `double` arithmetic, median-of-repeats loop) and
// FLOP counts (the architecture-independent proxy the energy model uses; a
// faulty::Real run at rate 0 counts every op) on the paper's 100x10
// problem, and emits the standard BENCH_runtime_lsq.json perf report like
// every other bench.
#include <iomanip>
#include <string>
#include <vector>

#include "apps/configs.h"
#include "apps/least_squares.h"
#include "bench/bench_common.h"
#include "core/phases.h"

namespace {

using namespace robustify;

// FLOP counts come from a faulty::Real run at rate 0 (counting only).
template <class Fn>
double CountFlops(const Fn& fn) {
  core::FaultEnvironment env;  // rate 0
  faulty::ContextStats stats;
  core::WithFaultyFpu(env, fn, &stats);
  return static_cast<double>(stats.faulty_flops);
}

struct SolverRow {
  std::string name;
  double seconds_per_solve = 0.0;
  double flops = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("runtime_lsq", argc, argv);
  bench::Banner(
      "Runtime of the least-squares solvers (100x10 problem)",
      "Section 6.3 (text), E11",
      "CG(10) runs ~30% faster than the QR/SVD baselines and is comparable "
      "to Cholesky; SGD trades a large constant for fault tolerance");

  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(100, 10, 10);
  const int repeats = ctx.TrialsOr(200);

  const auto time_solver = [&](const std::string& name, auto solve,
                               auto faulty_solve) {
    solve();  // warm-up (thread workspace, caches)
    harness::WallTimer timer;
    for (int i = 0; i < repeats; ++i) solve();
    SolverRow row;
    row.name = name;
    row.seconds_per_solve = timer.Seconds() / repeats;
    row.flops = CountFlops(faulty_solve);
    ctx.RecordSection(name, row.seconds_per_solve * repeats, row.flops * repeats);
    return row;
  };

  std::vector<SolverRow> rows;
  rows.push_back(time_solver(
      "svd", [&] { apps::SolveLsqBaseline<double>(problem, linalg::LsqBaseline::kSvd); },
      [&] { return apps::SolveLsqBaseline<faulty::Real>(problem, linalg::LsqBaseline::kSvd); }));
  const SolverRow qr = time_solver(
      "qr", [&] { apps::SolveLsqBaseline<double>(problem, linalg::LsqBaseline::kQr); },
      [&] { return apps::SolveLsqBaseline<faulty::Real>(problem, linalg::LsqBaseline::kQr); });
  rows.push_back(qr);
  rows.push_back(time_solver(
      "cholesky",
      [&] { apps::SolveLsqBaseline<double>(problem, linalg::LsqBaseline::kCholesky); },
      [&] {
        return apps::SolveLsqBaseline<faulty::Real>(problem, linalg::LsqBaseline::kCholesky);
      }));
  rows.push_back(time_solver(
      "cg10", [&] { apps::SolveLsqCg<double>(problem, apps::LsqCg(10)); },
      [&] { return apps::SolveLsqCg<faulty::Real>(problem, apps::LsqCg(10)); }));
  rows.push_back(time_solver(
      "sgd1000", [&] { apps::SolveLsqSgd<double>(problem, apps::LsqSgdLs()); },
      [&] { return apps::SolveLsqSgd<faulty::Real>(problem, apps::LsqSgdLs()); }));

  const double qr_time = qr.seconds_per_solve;
  std::cout << "\n  " << std::left << std::setw(10) << "solver" << std::right
            << std::setw(14) << "us/solve" << std::setw(14) << "flops"
            << std::setw(12) << "vs QR" << "\n";
  for (const SolverRow& row : rows) {
    std::cout << "  " << std::left << std::setw(10) << row.name << std::right
              << std::setw(14) << std::fixed << std::setprecision(2)
              << row.seconds_per_solve * 1e6 << std::setw(14)
              << std::setprecision(0) << row.flops << std::setw(11)
              << std::setprecision(2) << row.seconds_per_solve / qr_time
              << "x\n";
  }
  std::cout << "\n";
  return ctx.Finish();
}
