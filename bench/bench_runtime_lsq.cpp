// E11 / Section 6.3 (text): runtime comparison of the least-squares solvers.
//
// The paper reports that "the CG implementation was on average 30% faster
// than the QR/SVD baselines, and 10 iterations of the CG were comparable to
// the execution time of the Cholesky baseline".  This bench measures both
// wall-clock time (google-benchmark) and FLOP counts (the architecture-
// independent proxy the energy model uses) on the paper's 100x10 problem.
#include <benchmark/benchmark.h>

#include "apps/configs.h"
#include "apps/least_squares.h"
#include "core/phases.h"

namespace {

using namespace robustify;

const apps::LsqProblem& Problem() {
  static const apps::LsqProblem problem = apps::MakeRandomLsqProblem(100, 10, 10);
  return problem;
}

// FLOP counts come from a faulty::Real run at rate 0 (counting only).
template <class Fn>
double CountFlops(const Fn& fn) {
  core::FaultEnvironment env;  // rate 0
  faulty::ContextStats stats;
  core::WithFaultyFpu(env, fn, &stats);
  return static_cast<double>(stats.faulty_flops);
}

void BM_LsqSvd(benchmark::State& state) {
  const auto& p = Problem();
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::SolveLsqBaseline<double>(p, linalg::LsqBaseline::kSvd));
  }
  state.counters["flops"] = CountFlops([&] {
    return apps::SolveLsqBaseline<faulty::Real>(p, linalg::LsqBaseline::kSvd);
  });
}
BENCHMARK(BM_LsqSvd);

void BM_LsqQr(benchmark::State& state) {
  const auto& p = Problem();
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::SolveLsqBaseline<double>(p, linalg::LsqBaseline::kQr));
  }
  state.counters["flops"] = CountFlops([&] {
    return apps::SolveLsqBaseline<faulty::Real>(p, linalg::LsqBaseline::kQr);
  });
}
BENCHMARK(BM_LsqQr);

void BM_LsqCholesky(benchmark::State& state) {
  const auto& p = Problem();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apps::SolveLsqBaseline<double>(p, linalg::LsqBaseline::kCholesky));
  }
  state.counters["flops"] = CountFlops([&] {
    return apps::SolveLsqBaseline<faulty::Real>(p, linalg::LsqBaseline::kCholesky);
  });
}
BENCHMARK(BM_LsqCholesky);

void BM_LsqCg10(benchmark::State& state) {
  const auto& p = Problem();
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::SolveLsqCg<double>(p, apps::LsqCg(10)));
  }
  state.counters["flops"] =
      CountFlops([&] { return apps::SolveLsqCg<faulty::Real>(p, apps::LsqCg(10)); });
}
BENCHMARK(BM_LsqCg10);

void BM_LsqSgd1000(benchmark::State& state) {
  const auto& p = Problem();
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::SolveLsqSgd<double>(p, apps::LsqSgdLs()));
  }
  state.counters["flops"] =
      CountFlops([&] { return apps::SolveLsqSgd<faulty::Real>(p, apps::LsqSgdLs()); });
}
BENCHMARK(BM_LsqSgd1000);

}  // namespace

BENCHMARK_MAIN();
