// E4 / Figure 6.2: relative error of least squares vs fault rate.
//
// Series (paper legend): Base:SVD, SGD,LS, SGD+AS,LS — 1000 iterations,
// A is 100x10, b is 100x1; quality = relative error w.r.t. the exact
// solution computed offline.  The paper notes that SQS "results in errors
// larger than 1.0"; an SGD,SQS series is included to show that too.
//
// Axis, seed, and series definitions live in the campaign registry
// (src/campaign/spec.cpp + scenarios.cpp); this main is presentation only.
#include "bench/bench_common.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"

int main(int argc, char** argv) {
  using namespace robustify;
  bench::BenchContext ctx("fig6_2_least_squares", argc, argv);
  bench::Banner(
      "Figure 6.2 - Accuracy of Least Squares (1000 iterations)",
      "Section 6.1, Figure 6.2 (lower is better)",
      "Base:SVD is disastrously unstable under faults; SGD with linear "
      "scaling stays accurate (paper: within 1e-6% with AS at low rates); "
      "sqrt scaling gives errors larger than 1.0 on this problem");

  const campaign::CampaignSpec& spec = campaign::RegistrySpec("fig6_2");
  const campaign::Scenario scenario = campaign::BuildScenario(spec);
  const auto series =
      ctx.RunSweep("lsq", campaign::ToSweepConfig(spec), scenario.series);
  bench::EmitSweep(scenario.title, series, scenario.value, scenario.value_label,
                   scenario.csv_name);
  bench::EmitSweep("Accuracy of Least Squares - success rate (rel. error < 1e-2)",
                   series, harness::TableValue::kSuccessRatePct, "success rate (%)",
                   "fig6_2_least_squares_success.csv");
  return ctx.Finish();
}
