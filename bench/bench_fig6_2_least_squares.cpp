// E4 / Figure 6.2: relative error of least squares vs fault rate.
//
// Series (paper legend): Base:SVD, SGD,LS, SGD+AS,LS — 1000 iterations,
// A is 100x10, b is 100x1; quality = relative error w.r.t. the exact
// solution computed offline.  The paper notes that SQS "results in errors
// larger than 1.0"; an SGD,SQS series is included to show that too.
#include "apps/configs.h"
#include "apps/least_squares.h"
#include "bench/bench_common.h"
#include "core/phases.h"
#include "signal/metrics.h"

namespace {

using namespace robustify;

harness::TrialFn SgdVariant(const apps::LsqProblem& problem,
                            const opt::SgdOptions& options) {
  return [&problem, options](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const linalg::Vector<double> x = core::WithFaultyFpu(
        env, [&] { return apps::SolveLsqSgd<faulty::Real>(problem, options); },
        &out.fpu_stats);
    out.metric = signal::RelativeError(x, problem.exact);
    out.success = out.metric < 1e-2;
    return out;
  };
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("fig6_2_least_squares", argc, argv);
  bench::Banner(
      "Figure 6.2 - Accuracy of Least Squares (1000 iterations)",
      "Section 6.1, Figure 6.2 (lower is better)",
      "Base:SVD is disastrously unstable under faults; SGD with linear "
      "scaling stays accurate (paper: within 1e-6% with AS at low rates); "
      "sqrt scaling gives errors larger than 1.0 on this problem");

  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(100, 10, 7);

  harness::SweepConfig sweep;
  sweep.fault_rates = {0.0, 0.0001, 0.001, 0.01, 0.05, 0.1};
  sweep.trials = 10;
  sweep.base_seed = 62;

  const harness::TrialFn base_svd = [&problem](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const linalg::Vector<double> x = core::WithFaultyFpu(
        env,
        [&] {
          return apps::SolveLsqBaseline<faulty::Real>(problem,
                                                      linalg::LsqBaseline::kSvd);
        },
        &out.fpu_stats);
    out.metric = signal::RelativeError(x, problem.exact);
    out.success = out.metric < 1e-2;
    return out;
  };

  // SGD with sqrt scaling uses the LSQ-tuned base step; the large-step
  // early phase is what inflates its error on this objective.
  opt::SgdOptions sqs = apps::LsqSgdAsSqs();

  const auto series = ctx.RunSweep(
      "lsq", sweep,
      {
                 {"Base:SVD", base_svd},
                 {"SGD,LS", SgdVariant(problem, apps::LsqSgdLs())},
                 {"SGD+AS,LS", SgdVariant(problem, apps::LsqSgdAsLs())},
                 {"SGD+AS,SQS", SgdVariant(problem, sqs)},
             });
  bench::EmitSweep("Accuracy of Least Squares - 1000 Iterations (median rel. error)",
                   series, harness::TableValue::kMedianMetric,
                   "median relative error w.r.t. ideal", "fig6_2_least_squares.csv");
  bench::EmitSweep("Accuracy of Least Squares - success rate (rel. error < 1e-2)",
                   series, harness::TableValue::kSuccessRatePct, "success rate (%)",
                   "fig6_2_least_squares_success.csv");
  return ctx.Finish();
}
