// E15 / Chapter 7 (future work): robustness under different fault models.
//
// The paper's evaluation fixes one bit-error distribution and one temporal
// behavior (transient single-bit upsets on arithmetic results); its
// future-work section calls for "investigating the robustness of the
// proposed methodology for different fault models".  This bench sweeps the
// full model grid — bit-position model x temporal model x op-class mask —
// at a fixed fault rate, rerunning sorting and least squares in every cell
// under the guarded trial executor (sticky models can otherwise let a
// solver grind; budget-capped trials are reported in the taxonomy column).
#include <cstdio>
#include <random>

#include "apps/configs.h"
#include "apps/least_squares.h"
#include "apps/sort_app.h"
#include "bench/bench_common.h"
#include "core/phases.h"
#include "harness/trial.h"
#include "signal/metrics.h"

namespace {

using namespace robustify;

const char* BitModelName(faulty::BitModel model) {
  switch (model) {
    case faulty::BitModel::kBimodal: return "bimodal";
    case faulty::BitModel::kUniform: return "uniform";
    case faulty::BitModel::kMsbOnly: return "msb-only";
    case faulty::BitModel::kLsbOnly: return "lsb-only";
    default: return "?";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("fault_model_ablation", argc, argv);
  bench::Banner(
      "Fault-model ablation (Chapter 7 future work)",
      "Chapter 7 (text): different fault models",
      "lsb-only faults are nearly free under every temporal model; sticky "
      "models (stuck-at, intermittent) and wider op-class masks (comparison "
      "and memory-load faults) degrade success beyond the transient "
      "baseline, with msb-only / uniform exponent corruption the most "
      "hostile axis");

  constexpr double kRate = 0.05;
  const int trials = ctx.TrialsOr(6);
  const int threads = ctx.options().threads;
  const std::vector<double> input{0.9, 0.1, 0.6, 0.3, 0.7};
  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(100, 10, 12);

  const struct {
    faulty::Temporal temporal;
    const char* name;
  } temporals[] = {
      {faulty::Temporal::kTransient, "transient"},
      {faulty::Temporal::kStuckAt, "stuck"},
      {faulty::Temporal::kBurst, "burst"},
      {faulty::Temporal::kIntermittent, "intermittent"},
  };
  const struct {
    unsigned mask;
    const char* name;
  } op_classes[] = {
      {faulty::kOpClassArith, "arith"},
      {faulty::kOpClassDefault, "arith+cmp"},
      {faulty::kOpClassAll, "arith+cmp+mem"},
  };

  std::printf("fault rate: %.0f%% of routed ops, %d trials per cell\n\n",
              100 * kRate, trials);
  std::printf("%-10s %-13s %-14s %-9s %-10s %-13s\n", "bit model", "temporal",
              "op classes", "sort(%)", "guarded(%)", "lsq med. err");
  std::printf(
      "----------------------------------------------------------------------\n");

  for (const auto& temporal : temporals) {
    harness::WallTimer section_timer;
    double section_flops = 0.0;
    for (const auto bit_model :
         {faulty::BitModel::kBimodal, faulty::BitModel::kUniform,
          faulty::BitModel::kMsbOnly, faulty::BitModel::kLsbOnly}) {
      for (const auto& classes : op_classes) {
        core::FaultEnvironment env;
        env.fault_rate = kRate;
        env.bit_model = bit_model;
        env.seed = 73;
        env.model.temporal = temporal.temporal;
        env.model.op_classes = classes.mask;
        // Sticky models can hold an exponent bit down for whole solves:
        // bound each trial so every cell terminates promptly, and report
        // how often the cap (rather than a clean wrong answer) ended it.
        env.guard.max_iterations = 20000;
        env.guard.nonfinite_bailout = true;

        const harness::TrialFn sort_fn = [&input](const core::FaultEnvironment& e) {
          harness::TrialOutcome out;
          const apps::RobustSortResult r = core::WithFaultyFpu(
              e,
              [&] { return apps::RobustSort<faulty::Real>(input, apps::SortSgdAsSqs()); },
              &out.fpu_stats);
          out.success = r.valid && apps::IsSortedCopyOf(r.output, input);
          return out;
        };
        const harness::TrialSummary sort_summary =
            harness::RunTrials(sort_fn, env, trials, threads);

        const harness::TrialFn lsq_fn = [&problem](const core::FaultEnvironment& e) {
          harness::TrialOutcome out;
          const linalg::Vector<double> x = core::WithFaultyFpu(
              e, [&] { return apps::SolveLsqSgd<faulty::Real>(problem, apps::LsqSgdAsLs()); },
              &out.fpu_stats);
          out.metric = signal::RelativeError(x, problem.exact);
          out.success = out.metric < 1e-2;
          return out;
        };
        const harness::TrialSummary lsq_summary =
            harness::RunTrials(lsq_fn, env, trials, threads);

        section_flops += (sort_summary.mean_faulty_flops +
                          lsq_summary.mean_faulty_flops) *
                         trials;
        // Trials the guard ended (divergence bailout or budget cap) rather
        // than a clean wrong answer.
        const int guarded = sort_summary.budget_exhausted +
                            sort_summary.diverged + lsq_summary.budget_exhausted +
                            lsq_summary.diverged;
        std::printf("%-10s %-13s %-14s %-9.1f %-10.1f %-13.3e\n",
                    BitModelName(bit_model), temporal.name, classes.name,
                    sort_summary.success_rate_pct,
                    100.0 * guarded / (2.0 * trials), lsq_summary.median_metric);
      }
    }
    ctx.RecordSection(std::string("grid-") + temporal.name,
                      section_timer.Seconds(), section_flops);
  }
  return ctx.Finish();
}
