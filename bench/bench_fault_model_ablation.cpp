// E15 / Chapter 7 (future work): robustness under different fault models.
//
// The paper's evaluation fixes one bit-error distribution; its future-work
// section calls for "investigating the robustness of the proposed
// methodology for different fault models".  This bench reruns sorting and
// least squares under four bit-position models at a fixed fault rate.
#include <cstdio>
#include <random>

#include "apps/configs.h"
#include "apps/least_squares.h"
#include "apps/sort_app.h"
#include "bench/bench_common.h"
#include "core/phases.h"
#include "harness/trial.h"
#include "signal/metrics.h"

namespace {

using namespace robustify;

const char* ModelName(faulty::BitModel model) {
  switch (model) {
    case faulty::BitModel::kBimodal: return "bimodal";
    case faulty::BitModel::kUniform: return "uniform";
    case faulty::BitModel::kMsbOnly: return "msb-only";
    case faulty::BitModel::kLsbOnly: return "lsb-only";
    default: return "?";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("fault_model_ablation", argc, argv);
  bench::Banner(
      "Fault-model ablation (Chapter 7 future work)",
      "Chapter 7 (text): different fault models",
      "lsb-only faults are nearly free; the bimodal (paper-calibrated) "
      "model sits between the benign lsb-only and the hostile msb-only / "
      "uniform models, which include frequent exponent corruption");

  constexpr double kRate = 0.05;
  const int trials = ctx.TrialsOr(10);
  const int threads = ctx.options().threads;
  const std::vector<double> input{0.9, 0.1, 0.6, 0.3, 0.7};
  const apps::LsqProblem problem = apps::MakeRandomLsqProblem(100, 10, 12);

  harness::WallTimer table_timer;
  std::printf("fault rate: %.0f%% of FLOPs, %d trials per cell\n\n", 100 * kRate,
              trials);
  std::printf("%-12s %-22s %-26s\n", "bit model", "sort success (%)",
              "lsq median rel. error (SGD+AS,LS)");
  std::printf("--------------------------------------------------------------\n");

  for (const auto model :
       {faulty::BitModel::kBimodal, faulty::BitModel::kUniform,
        faulty::BitModel::kMsbOnly, faulty::BitModel::kLsbOnly}) {
    core::FaultEnvironment env;
    env.fault_rate = kRate;
    env.bit_model = model;
    env.seed = 73;

    const harness::TrialFn sort_fn = [&input](const core::FaultEnvironment& e) {
      harness::TrialOutcome out;
      const apps::RobustSortResult r = core::WithFaultyFpu(
          e, [&] { return apps::RobustSort<faulty::Real>(input, apps::SortSgdAsSqs()); },
          &out.fpu_stats);
      out.success = r.valid && apps::IsSortedCopyOf(r.output, input);
      return out;
    };
    const harness::TrialSummary sort_summary =
        harness::RunTrials(sort_fn, env, trials, threads);

    const harness::TrialFn lsq_fn = [&problem](const core::FaultEnvironment& e) {
      harness::TrialOutcome out;
      const linalg::Vector<double> x = core::WithFaultyFpu(
          e, [&] { return apps::SolveLsqSgd<faulty::Real>(problem, apps::LsqSgdAsLs()); },
          &out.fpu_stats);
      out.metric = signal::RelativeError(x, problem.exact);
      out.success = out.metric < 1e-2;
      return out;
    };
    const harness::TrialSummary lsq_summary =
        harness::RunTrials(lsq_fn, env, trials, threads);

    std::printf("%-12s %-22.1f %-26.3e\n", ModelName(model),
                sort_summary.success_rate_pct, lsq_summary.median_metric);
  }
  ctx.RecordSection("ablation-table", table_timer.Seconds(), 0.0);
  return ctx.Finish();
}
