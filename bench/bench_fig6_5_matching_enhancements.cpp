// E7 / Figure 6.5: the effect of gradient-descent enhancements on bipartite
// matching success rate, up to 50% of FLOPs erroneous.
//
// Series (paper legend): Non-robust (Hungarian on the faulty FPU), Basic,LS,
// SQS, PRECOND, ANNEAL, ALL.  The paper's findings to reproduce:
//  * basic SGD is worse than the non-robust baseline at low error rates;
//  * preconditioning matches the non-robust version up to ~2% and beats it
//    above;
//  * annealing the penalty weight gives the biggest single win (88% at ~50%
//    fault rate in the paper);
//  * ALL enhancements together reach ~100% even at a 50% fault rate.
//
// Axis, seed, and series definitions live in the campaign registry
// (src/campaign/spec.cpp + scenarios.cpp); this main is presentation only.
#include "bench/bench_common.h"
#include "campaign/scenarios.h"
#include "campaign/spec.h"

int main(int argc, char** argv) {
  using namespace robustify;
  bench::BenchContext ctx("fig6_5_matching_enhancements", argc, argv);
  bench::Banner(
      "Figure 6.5 - Matching enhancements (10000 iterations)",
      "Section 6.2, Figure 6.5",
      "Non-robust degrades steadily; Basic,LS plateaus low; ANNEAL "
      "dominates the single enhancements; ALL reaches ~100% even at 50% "
      "fault rate");

  const campaign::CampaignSpec& spec = campaign::RegistrySpec("fig6_5");
  const campaign::Scenario scenario = campaign::BuildScenario(spec);
  const auto series = ctx.RunSweep("matching-enhancements",
                                   campaign::ToSweepConfig(spec), scenario.series);
  bench::EmitSweep(scenario.title, series, scenario.value, scenario.value_label,
                   scenario.csv_name);
  return ctx.Finish();
}
