// E7 / Figure 6.5: the effect of gradient-descent enhancements on bipartite
// matching success rate, up to 50% of FLOPs erroneous.
//
// Series (paper legend): Non-robust (Hungarian on the faulty FPU), Basic,LS,
// SQS, PRECOND, ANNEAL, ALL.  The paper's findings to reproduce:
//  * basic SGD is worse than the non-robust baseline at low error rates;
//  * preconditioning matches the non-robust version up to ~2% and beats it
//    above;
//  * annealing the penalty weight gives the biggest single win (88% at ~50%
//    fault rate in the paper);
//  * ALL enhancements together reach ~100% even at a 50% fault rate.
#include "apps/configs.h"
#include "apps/matching_app.h"
#include "bench/bench_common.h"
#include "core/phases.h"
#include "graph/generators.h"

namespace {

using namespace robustify;

harness::TrialFn RobustVariant(const graph::BipartiteGraph& g,
                               const apps::LpSolveConfig& config) {
  return [&g, config](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const apps::MatchingResult r = core::WithFaultyFpu(
        env, [&] { return apps::RobustMatching<faulty::Real>(g, config); },
        &out.fpu_stats);
    out.success = r.valid && apps::MatchesOptimal(g, r.matching);
    return out;
  };
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx("fig6_5_matching_enhancements", argc, argv);
  bench::Banner(
      "Figure 6.5 - Matching enhancements (10000 iterations)",
      "Section 6.2, Figure 6.5",
      "Non-robust degrades steadily; Basic,LS plateaus low; ANNEAL "
      "dominates the single enhancements; ALL reaches ~100% even at 50% "
      "fault rate");

  const graph::BipartiteGraph g = graph::RandomBipartite(5, 6, 30, 3);

  harness::SweepConfig sweep;
  sweep.fault_rates = {0.0, 0.02, 0.1, 0.3, 0.5};
  sweep.trials = 8;
  sweep.base_seed = 65;

  const harness::TrialFn non_robust = [&g](const core::FaultEnvironment& env) {
    harness::TrialOutcome out;
    const graph::Matching m = core::WithFaultyFpu(
        env, [&] { return apps::BaselineMatching<faulty::Real>(g); },
        &out.fpu_stats);
    out.success = apps::MatchesOptimal(g, m);
    return out;
  };

  apps::LpSolveConfig all = apps::MatchingAll();

  const auto series = ctx.RunSweep(
      "matching-enhancements", sweep,
      {
                 {"Non-robust", non_robust},
                 {"Basic,LS", RobustVariant(g, apps::MatchingBasicLs())},
                 {"SQS", RobustVariant(g, apps::MatchingSqs())},
                 {"PRECOND", RobustVariant(g, apps::MatchingPrecond())},
                 {"ANNEAL", RobustVariant(g, apps::MatchingAnneal())},
                 {"ALL", RobustVariant(g, all)},
             });
  bench::EmitSweep("Accuracy of Matching - enhancements", series,
                   harness::TableValue::kSuccessRatePct, "success rate (%)",
                   "fig6_5_matching_enhancements.csv");
  return ctx.Finish();
}
